(** TFTP (RFC 1350): the classic teaching protocol, expressible only once
    the DSL has NUL-terminated strings.  Opcode-dispatched variant with
    read/write requests (filename and mode as cstrings), data blocks,
    acknowledgements and errors. *)

val format : Netdsl_format.Desc.t

type packet =
  | Rrq of { filename : string; mode : string }
  | Wrq of { filename : string; mode : string }
  | Data of { block : int; data : string }
  | Ack of { block : int }
  | Error of { code : int; message : string }

val equal_packet : packet -> packet -> bool
val pp_packet : Format.formatter -> packet -> unit

val to_value : packet -> Netdsl_format.Value.t
(** The dynamic record {!to_bytes} encodes — also the innermost layer
    value of the eth→ipv4→udp→tftp chain in {!Stacks}. *)

val to_bytes : packet -> (string, Netdsl_format.Codec.error) result
(** Fails when a filename/mode/message contains a NUL byte. *)

val to_bytes_exn : packet -> string
val of_bytes : string -> (packet, string) result
