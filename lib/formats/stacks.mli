(** The shipped parse graphs: layered header chains over the format
    catalogue, plus canonical chained-packet builders.

    Each stack is a straight chain (branching graphs are separate chains
    sharing their prefix formats, exactly as the compiled plans want
    them):

    - {!inet_tftp} — Ethernet → IPv4 (proto 17) → UDP (dst port 69) →
      TFTP: the realistic internet-facing request path, and the 4-layer
      chain experiment E17 prices.
    - {!eth_arp} — Ethernet → ARP (ethertype 0x0806): the shortest chain,
      terminal layer fully linear.
    - {!ipv4_icmp} — IPv4 (proto 1) → ICMP: a chain ending in a
      variant-with-default format, exercising the flattened-case
      dispatcher's default arm. *)

val inet_tftp : Netdsl_format.Stack.t
val eth_arp : Netdsl_format.Stack.t
val ipv4_icmp : Netdsl_format.Stack.t

val all : (string * Netdsl_format.Stack.t) list
val find : string -> Netdsl_format.Stack.t option

(** {1 Chained-packet builders}

    Per-layer value arrays (outermost first) for {!Netdsl_format.Stack}'s
    encoders; carrier payload fields are left empty for the encoder to
    splice.  Deterministic sample addresses so corpus generation is
    reproducible. *)

val inet_tftp_values :
  ?src_port:int -> Tftp.packet -> Netdsl_format.Value.t array

val eth_arp_values : unit -> Netdsl_format.Value.t array
(** An ARP who-has request. *)

val ipv4_icmp_values : ?data:string -> unit -> Netdsl_format.Value.t array
(** An ICMP echo request. *)
