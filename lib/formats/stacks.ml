(* The shipped parse graphs over the format catalogue.  A stack is data:
   validation happens in [Stack.v], so a mistake here (bad demux field,
   misplaced payload) would fail at module init — the test suite loads
   this module, making the catalogue self-checking. *)

open Netdsl_format

let ok_exn = function Ok s -> s | Error e -> invalid_arg ("Stacks: " ^ e)

let inet_tftp =
  ok_exn
    (Stack.v ~name:"inet_tftp"
       [
         Stack.layer
           ~select:("ethertype", [ Int64.of_int Ethernet.ethertype_ipv4 ])
           Ethernet.format;
         Stack.layer
           ~select:("protocol", [ Int64.of_int Ipv4.protocol_udp ])
           Ipv4.format;
         Stack.layer ~select:("dst_port", [ 69L ]) Udp.format;
         Stack.layer Tftp.format;
       ])

let eth_arp =
  ok_exn
    (Stack.v ~name:"eth_arp"
       [
         Stack.layer
           ~select:("ethertype", [ Int64.of_int Ethernet.ethertype_arp ])
           Ethernet.format;
         Stack.layer Arp.format;
       ])

let ipv4_icmp =
  ok_exn
    (Stack.v ~name:"ipv4_icmp"
       [
         Stack.layer
           ~select:("protocol", [ Int64.of_int Ipv4.protocol_icmp ])
           Ipv4.format;
         Stack.layer Icmp.format;
       ])

let all =
  [ ("inet_tftp", inet_tftp); ("eth_arp", eth_arp); ("ipv4_icmp", ipv4_icmp) ]

let find name = List.assoc_opt name all

(* Deterministic sample endpoints for corpus generation and tests. *)
let mac_a = Ethernet.mac_of_string "02:00:00:00:00:0a"
let mac_b = Ethernet.mac_of_string "02:00:00:00:00:0b"
let ip_a = Ipv4.addr_of_string "192.0.2.1"
let ip_b = Ipv4.addr_of_string "192.0.2.2"

let inet_tftp_values ?(src_port = 50000) pkt =
  [|
    Ethernet.make ~dst:mac_b ~src:mac_a ~ethertype:Ethernet.ethertype_ipv4
      ~payload:"";
    Ipv4.make ~protocol:Ipv4.protocol_udp ~source:ip_a ~destination:ip_b
      ~payload:"" ();
    Udp.make ~src_port ~dst_port:69 ~payload:"" ();
    Tftp.to_value pkt;
  |]

let eth_arp_values () =
  [|
    Ethernet.make ~dst:mac_b ~src:mac_a ~ethertype:Ethernet.ethertype_arp
      ~payload:"";
    Arp.request ~sender_mac:mac_a ~sender_ip:ip_a ~target_ip:ip_b;
  |]

let ipv4_icmp_values ?(data = "abcdefgh") () =
  [|
    Ipv4.make ~protocol:Ipv4.protocol_icmp ~source:ip_a ~destination:ip_b
      ~payload:"" ();
    Icmp.echo_request ~id:0x1234 ~seq:1 ~data;
  |]
