(** Parser and elaborator for the [.ndsl] surface language.

    A source file is a sequence of [format], [machine] and [stack]
    definitions:

    {v
    // the paper's ARQ packet
    format arq_packet {
      seq     : uint8;
      kind    : enum uint8 { data = 0, ack = 1 };
      len     : uint16 = len(payload);
      chk     : checksum internet over message;
      payload : bytes[len];
    }

    machine sender {
      registers { seq : mod 256 = 0; }
      states { ready init; wait; timeout; sent accepting; }
      events { send, ok, fail, timer, finish, retry }
      on send:   ready -> wait;
      on ok:     wait -> ready { seq := seq + 1 };
      on fail:   wait -> ready;
      on timer:  wait -> timeout;
      on retry:  timeout -> ready;
      on finish: ready -> sent;
    }
    v}

    A [stack] names an ordered chain of earlier-defined formats — the
    layered parse graph {!Netdsl_format.Stack} compiles into one fused
    decode/encode plan.  Each layer is a format reference plus the demux
    edge routing to the next layer, and optionally the payload field
    carrying it ([via], default [payload]) and a layer alias ([as]):

    {v
    stack inet_tftp {
      ethernet select ethertype = 0x0800;
      ipv4     select protocol = 17;
      udp      select dst_port in { 69 };
      tftp;
    }
    v}

    Formats elaborate to {!Netdsl_format.Desc.t}, machines to
    {!Netdsl_fsm.Machine.t} and stacks to {!Netdsl_format.Stack.t}; all are
    checked (well-formedness / structural validation) as part of parsing,
    so a successfully parsed program is a checked program — names resolve,
    widths fit, guards reference declared registers, demux fields exist and
    fit.  Format references ([record]/array/variant bodies and stack
    layers) must be defined earlier in the file. *)

type program = {
  formats : (string * Netdsl_format.Desc.t) list;  (** definition order *)
  machines : (string * Netdsl_fsm.Machine.t) list;
  stacks : (string * Netdsl_format.Stack.t) list;
}

type error = { loc : Loc.t; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (program, error) result
val parse_string_exn : string -> program

val find_format : program -> string -> Netdsl_format.Desc.t option
val find_machine : program -> string -> Netdsl_fsm.Machine.t option
val find_stack : program -> string -> Netdsl_format.Stack.t option
