(** Pretty-printing elaborated definitions back to [.ndsl] surface syntax.

    Together with {!Parser} this closes the loop: formats and machines
    built with the combinator APIs can be exported as DSL source, reviewed,
    and re-parsed to the same definitions ([parse (print p)] elaborates to
    formats that encode byte-identically and machines with identical
    transition systems — property-tested in the suite). *)

val format_to_ndsl : Netdsl_format.Desc.t -> string
(** One [format name { ... }] block.  Nested array/record/variant bodies
    must be printed separately (they are format references in the surface
    syntax); {!program_to_ndsl} handles the ordering. *)

val machine_to_ndsl : Netdsl_fsm.Machine.t -> string

val stack_to_ndsl : Netdsl_format.Stack.t -> string
(** One [stack name { ... }] block.  The layer formats must be printed
    before it (stack layers are format references). *)

val program_to_ndsl : Parser.program -> string
(** The whole program: formats, then stacks, then machines — each
    sub-format before its user. *)
