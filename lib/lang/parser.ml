module D = Netdsl_format.Desc
module Wf = Netdsl_format.Wf
module S = Netdsl_format.Stack
module M = Netdsl_fsm.Machine
module L = Lexer

type program = {
  formats : (string * D.t) list;
  machines : (string * M.t) list;
  stacks : (string * S.t) list;
}

type error = { loc : Loc.t; message : string }

exception Parse_error of error

let pp_error ppf e = Format.fprintf ppf "%a: %s" Loc.pp e.loc e.message

let fail loc fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { loc; message })) fmt

(* ------------------------------------------------------------------ *)
(* Token stream *)

type stream = { toks : (L.token * Loc.t) array; mutable pos : int }

let peek s = fst s.toks.(s.pos)
let peek_loc s = snd s.toks.(s.pos)


let next s =
  let t, l = s.toks.(s.pos) in
  if s.pos < Array.length s.toks - 1 then s.pos <- s.pos + 1;
  (t, l)

let expect s tok what =
  let t, l = next s in
  if t <> tok then fail l "expected %s, found '%s'" what (L.token_to_string t)

let expect_ident s what =
  match next s with
  | L.IDENT name, _ -> name
  | t, l -> fail l "expected %s, found '%s'" what (L.token_to_string t)

let expect_int s what =
  match next s with
  | L.INT v, _ -> v
  | t, l -> fail l "expected %s, found '%s'" what (L.token_to_string t)

let accept s tok = if peek s = tok then (ignore (next s); true) else false

let accept_kw s kw =
  match peek s with
  | L.IDENT name when String.equal name kw ->
    ignore (next s);
    true
  | _ -> false


(* ------------------------------------------------------------------ *)
(* Shared small parsers *)

(* "uintN" -> N *)
let int_type_bits loc name =
  let prefix = "uint" in
  let plen = String.length prefix in
  if
    String.length name > plen
    && String.equal (String.sub name 0 plen) prefix
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name plen (String.length name - plen))
  then
    let bits = int_of_string (String.sub name plen (String.length name - plen)) in
    if bits < 1 || bits > 64 then fail loc "integer width %d not in [1, 64]" bits
    else bits
  else fail loc "expected an integer type like uint8, found %S" name

let is_int_type name =
  String.length name > 4
  && String.equal (String.sub name 0 4) "uint"
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name 4 (String.length name - 4))

(* Format expressions: + - * / over ints, fields and len(...). *)
let rec parse_fexpr s = parse_fadd s

and parse_fadd s =
  let lhs = parse_fmul s in
  let rec go lhs =
    if accept s L.PLUS then go (D.Add (lhs, parse_fmul s))
    else if accept s L.MINUS then go (D.Sub (lhs, parse_fmul s))
    else lhs
  in
  go lhs

and parse_fmul s =
  let lhs = parse_fatom s in
  let rec go lhs =
    if accept s L.STAR then go (D.Mul (lhs, parse_fatom s))
    else if accept s L.SLASH then go (D.Div (lhs, parse_fatom s))
    else lhs
  in
  go lhs

and parse_fatom s =
  match next s with
  | L.INT v, _ -> D.Const v
  | L.LPAREN, _ ->
    let e = parse_fexpr s in
    expect s L.RPAREN "')'";
    e
  | L.IDENT "len", _ when peek s = L.LPAREN ->
    expect s L.LPAREN "'(' after len";
    let target =
      match next s with
      | L.IDENT "message", _ -> D.Msg_len
      | L.IDENT field, _ -> D.Byte_len field
      | t, l -> fail l "expected a field name or 'message', found '%s'" (L.token_to_string t)
    in
    expect s L.RPAREN "')'";
    target
  | L.IDENT name, _ -> D.Field name
  | t, l -> fail l "expected an expression, found '%s'" (L.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Formats *)

let parse_constraint s =
  if accept_kw s "in" then begin
    expect s L.LBRACE "'{'";
    let rec values acc =
      let v = expect_int s "a constraint value" in
      if accept s L.COMMA then values (v :: acc) else List.rev (v :: acc)
    in
    let vs = values [] in
    expect s L.RBRACE "'}'";
    D.One_of vs
  end
  else if accept s L.NEQ then D.Not_equal (expect_int s "a value after '!='")
  else begin
    let lo = expect_int s "a range bound" in
    expect s L.DOTDOT "'..'";
    let hi = expect_int s "a range bound" in
    D.In_range (lo, hi)
  end

let parse_len_spec s =
  (* Inside [ ... ]. *)
  if accept s L.DOTDOT then D.Len_remaining
  else if accept_kw s "term" then
    D.Len_terminated (Int64.to_int (expect_int s "a terminator byte value"))
  else
    match parse_fexpr s with
    | D.Const v -> D.Len_fixed (Int64.to_int v) (* a literal is a fixed length *)
    | e -> D.Len_expr e

let parse_region s =
  if accept_kw s "message" then D.Region_message
  else if accept_kw s "rest" then D.Region_rest
  else begin
    let a = expect_ident s "a field name" in
    expect s L.DOTDOT "'..'";
    let b = expect_ident s "a field name" in
    D.Region_span (a, b)
  end

let parse_enum_cases s =
  expect s L.LBRACE "'{'";
  let rec go acc =
    let name = expect_ident s "an enum case name" in
    expect s L.EQ "'='";
    let v = expect_int s "an enum case value" in
    let acc = (name, v) :: acc in
    if accept s L.COMMA then
      if peek s = L.RBRACE then List.rev acc (* trailing comma *) else go acc
    else List.rev acc
  in
  let cases = go [] in
  expect s L.RBRACE "'}'";
  cases

let lookup_format env loc name =
  match List.assoc_opt name env with
  | Some fmt -> fmt
  | None -> fail loc "unknown format %S (formats must be defined before use)" name

let parse_ftype s env : D.ty =
  let loc = peek_loc s in
  if accept_kw s "flag" then D.Bool_flag
  else if accept_kw s "cstring" then D.cstring
  else if accept_kw s "padding" then
    D.Padding { bits = Int64.to_int (expect_int s "a padding width in bits") }
  else if accept_kw s "const" then begin
    let tloc = peek_loc s in
    let bits = int_type_bits tloc (expect_ident s "an integer type") in
    let endian = if accept_kw s "le" then D.Little else D.Big in
    expect s L.EQ "'='";
    let value = expect_int s "the constant value" in
    D.Const { bits; endian; value }
  end
  else if accept_kw s "checksum" then begin
    let aloc = peek_loc s in
    let alg_name = expect_ident s "a checksum algorithm" in
    let algorithm =
      match Netdsl_util.Checksum.algorithm_of_string alg_name with
      | Some a -> a
      | None ->
        fail aloc "unknown checksum algorithm %S (expected one of %s)" alg_name
          (String.concat ", "
             (List.map Netdsl_util.Checksum.algorithm_to_string
                Netdsl_util.Checksum.all_algorithms))
    in
    let region = if accept_kw s "over" then parse_region s else D.Region_message in
    D.Checksum { algorithm; region }
  end
  else if accept_kw s "bytes" then begin
    expect s L.LBRACKET "'['";
    let spec = parse_len_spec s in
    expect s L.RBRACKET "']'";
    D.Bytes spec
  end
  else if accept_kw s "enum" then begin
    let tloc = peek_loc s in
    let bits = int_type_bits tloc (expect_ident s "an integer type") in
    let endian = if accept_kw s "le" then D.Little else D.Big in
    let exhaustive = not (accept_kw s "open") in
    let cases = parse_enum_cases s in
    D.Enum { bits; endian; cases; exhaustive }
  end
  else if accept_kw s "variant" then begin
    if not (accept_kw s "on") then fail (peek_loc s) "expected 'on' after 'variant'";
    let tag = expect_ident s "the tag field name" in
    expect s L.LBRACE "'{'";
    let cases = ref [] and default = ref None in
    let rec go () =
      if accept s L.RBRACE then ()
      else if accept_kw s "default" then begin
        expect s L.COLON "':'";
        let dloc = peek_loc s in
        let body = expect_ident s "a format name" in
        expect s L.SEMI "';'";
        if !default <> None then fail dloc "duplicate default case";
        default := Some (lookup_format env dloc body);
        go ()
      end
      else begin
        let cname = expect_ident s "a variant case name" in
        expect s L.LPAREN "'('";
        let tagv = expect_int s "the tag value" in
        expect s L.RPAREN "')'";
        expect s L.COLON "':'";
        let bloc = peek_loc s in
        let body = expect_ident s "a format name" in
        expect s L.SEMI "';'";
        cases := (cname, tagv, lookup_format env bloc body) :: !cases;
        go ()
      end
    in
    go ();
    D.Variant { tag; cases = List.rev !cases; default = !default }
  end
  else begin
    match peek s with
    | L.IDENT name when is_int_type name ->
      ignore (next s);
      let bits = int_type_bits loc name in
      let endian = if accept_kw s "le" then D.Little else D.Big in
      if accept s L.EQ then D.Computed { bits; endian; expr = parse_fexpr s }
      else D.Uint { bits; endian }
    | L.IDENT name ->
      (* A reference to a previously defined format: plain (nested record)
         or with [..] (array). *)
      ignore (next s);
      let elem = lookup_format env loc name in
      if accept s L.LBRACKET then begin
        let length =
          if accept s L.DOTDOT then D.Len_remaining
          else if accept_kw s "bytes" then D.Len_bytes (parse_fexpr s)
          else
            match parse_fexpr s with
            | D.Const v -> D.Len_fixed (Int64.to_int v)
            | e -> D.Len_expr e
        in
        expect s L.RBRACKET "']'";
        D.Array { elem; length }
      end
      else D.Record elem
    | t -> fail loc "expected a field type, found '%s'" (L.token_to_string t)
  end

let parse_field s env =
  let name = expect_ident s "a field name" in
  expect s L.COLON "':'";
  let ty = parse_ftype s env in
  (* The doc string may appear before or after the constraint clause. *)
  let take_doc () =
    match peek s with
    | L.STRING d ->
      ignore (next s);
      Some d
    | _ -> None
  in
  let doc = take_doc () in
  let constraints =
    if accept_kw s "where" then [ parse_constraint s ] else []
  in
  let doc = match doc with Some _ -> doc | None -> take_doc () in
  (* The semicolon is optional after brace-closed types (enums, variants),
     matching common block syntax. *)
  (match ty with
  | D.Enum _ | D.Variant _ -> ignore (accept s L.SEMI)
  | _ -> expect s L.SEMI "';' after field");
  match doc with
  | Some d -> D.field ~doc:d ~constraints name ty
  | None -> D.field ~constraints name ty

let parse_format s env =
  let floc = peek_loc s in
  let name = expect_ident s "a format name" in
  if List.mem_assoc name env then fail floc "duplicate format name %S" name;
  expect s L.LBRACE "'{'";
  let rec fields acc =
    if accept s L.RBRACE then List.rev acc else fields (parse_field s env :: acc)
  in
  let fmt = D.format name (fields []) in
  (match Wf.errors fmt with
  | [] -> ()
  | errs ->
    fail floc "format %s is not well-formed: %s" name
      (String.concat "; "
         (List.map (fun d -> Format.asprintf "%a" Wf.pp_diagnostic d) errs)));
  (name, fmt)

(* ------------------------------------------------------------------ *)
(* Stacks *)

(* One layer:  fmt [as name] [select field (= v | in { v, v })] [via field] ;
   The format must be defined earlier in the file, like any reference. *)
let parse_stack_layer s env =
  let floc = peek_loc s in
  let fmt = lookup_format env floc (expect_ident s "a format name") in
  let lname = if accept_kw s "as" then Some (expect_ident s "a layer name") else None in
  let select =
    if accept_kw s "select" then begin
      let field = expect_ident s "a demux field name" in
      if accept s L.EQ then Some (field, [ expect_int s "a demux value" ])
      else if accept_kw s "in" then begin
        expect s L.LBRACE "'{'";
        let rec values acc =
          let v = expect_int s "a demux value" in
          if accept s L.COMMA then
            if peek s = L.RBRACE then List.rev (v :: acc) (* trailing comma *)
            else values (v :: acc)
          else List.rev (v :: acc)
        in
        let vs = values [] in
        expect s L.RBRACE "'}'";
        Some (field, vs)
      end
      else
        fail (peek_loc s) "expected '=' or 'in' after the demux field, found '%s'"
          (L.token_to_string (peek s))
    end
    else None
  in
  let via = if accept_kw s "via" then Some (expect_ident s "the payload field name") else None in
  expect s L.SEMI "';' after stack layer";
  S.layer ?name:lname ?via ?select fmt

let parse_stack s env =
  let sloc = peek_loc s in
  let name = expect_ident s "a stack name" in
  expect s L.LBRACE "'{'";
  let rec layers acc =
    if accept s L.RBRACE then List.rev acc
    else layers (parse_stack_layer s env :: acc)
  in
  match S.v ~name (layers []) with
  | Ok st -> (name, st)
  | Error e -> fail sloc "stack %s is not well-formed: %s" name e

(* ------------------------------------------------------------------ *)
(* Machines *)

let rec parse_mexpr s = parse_madd s

and parse_madd s =
  let lhs = parse_mmul s in
  let rec go lhs =
    if accept s L.PLUS then go (M.Add (lhs, parse_mmul s))
    else if accept s L.MINUS then go (M.Sub (lhs, parse_mmul s))
    else lhs
  in
  go lhs

and parse_mmul s =
  let lhs = parse_matom s in
  let rec go lhs =
    if accept s L.STAR then go (M.Mul (lhs, parse_matom s))
    else if accept_kw s "mod" then go (M.Mod (lhs, parse_matom s))
    else lhs
  in
  go lhs

and parse_matom s =
  match next s with
  | L.INT v, l ->
    if Int64.compare v (Int64.of_int max_int) > 0 then fail l "integer too large"
    else M.Int (Int64.to_int v)
  | L.LPAREN, _ ->
    let e = parse_mexpr s in
    expect s L.RPAREN "')'";
    e
  | L.IDENT name, _ -> M.Reg name
  | t, l -> fail l "expected an expression, found '%s'" (L.token_to_string t)

let rec parse_cond s = parse_or s

and parse_or s =
  let lhs = parse_and s in
  if accept s L.OROR then M.Or (lhs, parse_or s) else lhs

and parse_and s =
  let lhs = parse_catom s in
  if accept s L.ANDAND then M.And (lhs, parse_and s) else lhs

and parse_catom s =
  if accept s L.BANG then M.Not (parse_catom s)
  else if accept_kw s "true" then M.True
  else if accept_kw s "false" then M.False
  else if peek s = L.LPAREN then begin
    (* '(' may open a grouped condition or a grouped arithmetic operand of
       a comparison; try the condition reading first and fall back. *)
    let saved = s.pos in
    match
      ignore (next s);
      let c = parse_cond s in
      expect s L.RPAREN "')'";
      c
    with
    | c -> c
    | exception Parse_error _ ->
      s.pos <- saved;
      parse_comparison s
  end
  else parse_comparison s

and parse_comparison s =
  begin
    let lhs = parse_mexpr s in
    match next s with
    | L.EQEQ, _ -> M.Eq (lhs, parse_mexpr s)
    | L.NEQ, _ -> M.Ne (lhs, parse_mexpr s)
    | L.LT, _ -> M.Lt (lhs, parse_mexpr s)
    | L.LE, _ -> M.Le (lhs, parse_mexpr s)
    | L.GT, _ -> M.Lt (parse_mexpr s, lhs)
    | L.GE, _ -> M.Le (parse_mexpr s, lhs)
    | t, l -> fail l "expected a comparison operator, found '%s'" (L.token_to_string t)
  end

type m_acc = {
  mutable registers : M.register list;
  mutable states : (string * bool * bool) list; (* name, init, accepting *)
  mutable events : string list;
  mutable transitions : M.transition list;
  mutable m_ignores : (string * string) list;
}

let parse_registers s acc =
  expect s L.LBRACE "'{'";
  let rec go () =
    if accept s L.RBRACE then ()
    else begin
      let name = expect_ident s "a register name" in
      expect s L.COLON "':'";
      if not (accept_kw s "mod") then fail (peek_loc s) "expected 'mod'";
      let domain = Int64.to_int (expect_int s "the register modulus") in
      let init = if accept s L.EQ then Int64.to_int (expect_int s "the initial value") else 0 in
      expect s L.SEMI "';'";
      acc.registers <- acc.registers @ [ M.reg ~init name ~domain ];
      go ()
    end
  in
  go ()

let parse_states s acc =
  expect s L.LBRACE "'{'";
  let rec go () =
    if accept s L.RBRACE then ()
    else begin
      let name = expect_ident s "a state name" in
      let init = ref false and accepting = ref false in
      let rec flags () =
        if accept_kw s "init" || accept_kw s "initial" then begin
          init := true;
          flags ()
        end
        else if accept_kw s "accepting" then begin
          accepting := true;
          flags ()
        end
      in
      flags ();
      expect s L.SEMI "';'";
      acc.states <- acc.states @ [ (name, !init, !accepting) ];
      go ()
    end
  in
  go ()

let parse_events s acc =
  expect s L.LBRACE "'{'";
  let rec go () =
    let name = expect_ident s "an event name" in
    acc.events <- acc.events @ [ name ];
    if accept s L.COMMA then
      if peek s = L.RBRACE then () else go ()
  in
  if not (accept s L.RBRACE) then begin
    go ();
    expect s L.RBRACE "'}'"
  end

let parse_transition s acc =
  let event = expect_ident s "an event name" in
  expect s L.COLON "':'";
  let src = expect_ident s "a source state" in
  expect s L.ARROW "'->'";
  let dst = expect_ident s "a destination state" in
  (* The guard and the action block may come in either order. *)
  let guard = ref M.True and had_guard = ref false in
  let parse_guard () =
    if !had_guard then fail (peek_loc s) "duplicate 'when' clause";
    had_guard := true;
    guard := parse_cond s
  in
  if accept_kw s "when" then parse_guard ();
  let actions =
    if accept s L.LBRACE then begin
      (* Semicolons separate actions; the last one may omit it. *)
      let rec go acts =
        if accept s L.RBRACE then List.rev acts
        else begin
          let r = expect_ident s "a register name" in
          expect s L.ASSIGN "':='";
          let e = parse_mexpr s in
          let acts = M.Assign (r, e) :: acts in
          if accept s L.SEMI then go acts
          else begin
            expect s L.RBRACE "'}' after actions";
            List.rev acts
          end
        end
      in
      go []
    end
    else []
  in
  if accept_kw s "when" then parse_guard ();
  let guard = !guard in
  (* 'timeout 200 -> tick' arms the flow's timer (re-arming replaces the
     pending deadline); 'timeout cancel' clears it. *)
  let timer =
    if accept_kw s "timeout" then
      if accept_kw s "cancel" then M.Cancel_timer
      else begin
        let tloc = peek_loc s in
        let after_ms = Int64.to_int (expect_int s "a timeout duration in ms") in
        expect s L.ARROW "'->'";
        let fire = expect_ident s "the event a timeout fires" in
        if after_ms < 1 || after_ms > M.max_timer_ms then
          fail tloc "timeout duration %dms outside [1, %d]" after_ms M.max_timer_ms;
        M.Arm_timer { after_ms; fire }
      end
    else M.No_timer
  in
  let label =
    if accept_kw s "as" then
      match next s with
      | L.STRING l, _ -> Some l
      | t, l -> fail l "expected a label string after 'as', found '%s'" (L.token_to_string t)
    else None
  in
  expect s L.SEMI "';'";
  let label =
    match label with
    | Some l -> l
    | None ->
      (* Auto-label; disambiguate duplicates of the same triple. *)
      let base = Printf.sprintf "%s--%s->%s" src event dst in
      let existing =
        List.filter
          (fun (t : M.transition) ->
            String.length t.t_label >= String.length base
            && String.equal (String.sub t.t_label 0 (String.length base)) base)
          acc.transitions
      in
      if existing = [] then base
      else Printf.sprintf "%s#%d" base (List.length existing + 1)
  in
  acc.transitions <-
    acc.transitions @ [ { M.t_label = label; src; dst; event; guard; actions; timer } ]

let parse_machine s =
  let mloc = peek_loc s in
  let name = expect_ident s "a machine name" in
  expect s L.LBRACE "'{'";
  let acc =
    { registers = []; states = []; events = []; transitions = []; m_ignores = [] }
  in
  let rec go () =
    if accept s L.RBRACE then ()
    else begin
      (if accept_kw s "registers" then parse_registers s acc
       else if accept_kw s "states" then parse_states s acc
       else if accept_kw s "events" then parse_events s acc
       else if accept_kw s "on" then parse_transition s acc
       else if accept_kw s "ignore" then begin
         let event = expect_ident s "an event name" in
         if not (accept_kw s "in") then fail (peek_loc s) "expected 'in'";
         let state = expect_ident s "a state name" in
         expect s L.SEMI "';'";
         acc.m_ignores <- acc.m_ignores @ [ (state, event) ]
       end
       else
         fail (peek_loc s)
           "expected 'registers', 'states', 'events', 'on' or 'ignore', found '%s'"
           (L.token_to_string (peek s)));
      go ()
    end
  in
  go ();
  let initial =
    match List.filter (fun (_, i, _) -> i) acc.states with
    | [ (n, _, _) ] -> n
    | [] -> fail mloc "machine %s declares no 'init' state" name
    | _ -> fail mloc "machine %s declares more than one 'init' state" name
  in
  let m =
    M.machine ~name
      ~states:(List.map (fun (n, _, _) -> n) acc.states)
      ~events:acc.events ~registers:acc.registers ~initial
      ~accepting:(List.filter_map (fun (n, _, a) -> if a then Some n else None) acc.states)
      ~ignores:acc.m_ignores acc.transitions
  in
  (match M.validate m with
  | [] -> ()
  | defects ->
    fail mloc "machine %s is not valid: %s" name
      (String.concat "; "
         (List.map (fun d -> Format.asprintf "%a" M.pp_defect d) defects)));
  (name, m)

(* ------------------------------------------------------------------ *)
(* Program *)

let parse_program s =
  let formats = ref [] and machines = ref [] and stacks = ref [] in
  let rec go () =
    match peek s with
    | L.EOF -> ()
    | _ ->
      if accept_kw s "format" then begin
        let name, fmt = parse_format s (List.rev !formats) in
        formats := (name, fmt) :: !formats;
        go ()
      end
      else if accept_kw s "machine" then begin
        let (name, m) = parse_machine s in
        if List.mem_assoc name !machines then
          fail (peek_loc s) "duplicate machine name %S" name;
        machines := (name, m) :: !machines;
        go ()
      end
      else if accept_kw s "stack" then begin
        let sloc = peek_loc s in
        let name, st = parse_stack s (List.rev !formats) in
        if List.mem_assoc name !stacks then fail sloc "duplicate stack name %S" name;
        stacks := (name, st) :: !stacks;
        go ()
      end
      else
        fail (peek_loc s) "expected 'format', 'machine' or 'stack', found '%s'"
          (L.token_to_string (peek s))
  in
  go ();
  {
    formats = List.rev !formats;
    machines = List.rev !machines;
    stacks = List.rev !stacks;
  }

let parse_string_exn src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error { loc; message } -> raise (Parse_error { loc; message })
  in
  parse_program { toks = Array.of_list toks; pos = 0 }

let parse_string src =
  match parse_string_exn src with
  | p -> Ok p
  | exception Parse_error e -> Error e

let find_format p name = List.assoc_opt name p.formats
let find_machine p name = List.assoc_opt name p.machines
let find_stack p name = List.assoc_opt name p.stacks
