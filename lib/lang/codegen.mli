(** OCaml code generation from parsed DSL programs.

    The paper argues that "if an implementation is created from the DSL,
    then it must operate correctly, simply by the properties obtained from
    use of [the] type system" (§5).  This backend emits OCaml source that
    reconstructs each format as a [Netdsl_format.Desc.t] and each machine
    as a [Netdsl_fsm.Machine.t], so a specification written in [.ndsl]
    becomes a library module whose codecs and interpreters inherit every
    guarantee of the host implementation. *)

val to_ocaml : Parser.program -> string
(** A complete OCaml compilation unit.  Formats are bound as
    [format_<name>], stacks as [stack_<name>] and machines as
    [machine_<name>]; [formats] / [stacks] / [machines] assoc lists mirror
    {!Parser.program}. *)
