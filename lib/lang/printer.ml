module D = Netdsl_format.Desc
module S = Netdsl_format.Stack
module M = Netdsl_fsm.Machine

let bpf = Printf.bprintf

let rec fexpr buf (e : D.expr) =
  match e with
  | Const v -> bpf buf "%Ld" v
  | Field n -> bpf buf "%s" n
  | Byte_len n -> bpf buf "len(%s)" n
  | Msg_len -> bpf buf "len(message)"
  | Add (a, b) -> bpf buf "(%a + %a)" fexpr a fexpr b
  | Sub (a, b) -> bpf buf "(%a - %a)" fexpr a fexpr b
  | Mul (a, b) -> bpf buf "(%a * %a)" fexpr a fexpr b
  | Div (a, b) -> bpf buf "(%a / %a)" fexpr a fexpr b

let endian_suffix = function D.Big -> "" | D.Little -> " le"

let len_spec buf (spec : D.len_spec) =
  match spec with
  | Len_fixed n -> bpf buf "%d" n
  | Len_expr e -> fexpr buf e
  | Len_bytes e -> bpf buf "bytes %a" fexpr e
  | Len_remaining -> bpf buf ".."
  | Len_terminated t -> bpf buf "term %d" t

let region buf (r : D.region) =
  match r with
  | Region_message -> bpf buf "message"
  | Region_span (a, b) -> bpf buf "%s..%s" a b
  | Region_rest -> bpf buf "rest"

let constr buf (c : D.constr) =
  match c with
  | In_range (lo, hi) -> bpf buf " where %Ld..%Ld" lo hi
  | One_of vs ->
    bpf buf " where in { %s }" (String.concat ", " (List.map Int64.to_string vs))
  | Not_equal v -> bpf buf " where != %Ld" v

let ty buf (t : D.ty) =
  match t with
  | Uint { bits; endian } -> bpf buf "uint%d%s" bits (endian_suffix endian)
  | Bool_flag -> bpf buf "flag"
  | Const { bits; endian; value } ->
    bpf buf "const uint%d%s = %Ld" bits (endian_suffix endian) value
  | Enum { bits; endian; cases; exhaustive } ->
    bpf buf "enum uint%d%s%s { %s }" bits (endian_suffix endian)
      (if exhaustive then "" else " open")
      (String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s = %Ld" n v) cases))
  | Computed { bits; endian; expr } ->
    bpf buf "uint%d%s = %a" bits (endian_suffix endian) fexpr expr
  | Checksum { algorithm; region = r } ->
    bpf buf "checksum %s over %a"
      (Netdsl_util.Checksum.algorithm_to_string algorithm)
      region r
  | Bytes (Len_terminated 0) -> bpf buf "cstring"
  | Bytes spec -> bpf buf "bytes[%a]" len_spec spec
  | Array { elem; length } -> bpf buf "%s[%a]" elem.format_name len_spec length
  | Record sub -> bpf buf "%s" sub.format_name
  | Variant { tag; cases; default } ->
    bpf buf "variant on %s {\n" tag;
    List.iter
      (fun (n, v, (sub : D.t)) -> bpf buf "    %s(%Ld) : %s;\n" n v sub.format_name)
      cases;
    (match default with
    | None -> ()
    | Some (sub : D.t) -> bpf buf "    default : %s;\n" sub.format_name);
    bpf buf "  }"
  | Padding { bits } -> bpf buf "padding %d" bits

let field buf (f : D.field) =
  bpf buf "  %s : %a" f.name ty f.ty;
  List.iter (constr buf) f.constraints;
  (match f.doc with None -> () | Some d -> bpf buf " %S" d);
  bpf buf ";\n"

let format_to_ndsl (fmt : D.t) =
  let buf = Buffer.create 256 in
  bpf buf "format %s {\n" fmt.format_name;
  List.iter (field buf) fmt.fields;
  bpf buf "}\n";
  Buffer.contents buf

let stack_to_ndsl (st : S.t) =
  let buf = Buffer.create 128 in
  bpf buf "stack %s {\n" (S.name st);
  List.iteri
    (fun i lname ->
      let fmt : D.t = S.layer_format st i in
      bpf buf "  %s" fmt.format_name;
      if not (String.equal lname fmt.format_name) then bpf buf " as %s" lname;
      (match S.layer_select st i with
      | None -> ()
      | Some (field, [ v ]) -> bpf buf " select %s = %Ld" field v
      | Some (field, vs) ->
        bpf buf " select %s in { %s }" field
          (String.concat ", " (List.map Int64.to_string vs)));
      (match S.layer_select st i with
      | Some _ when not (String.equal (S.layer_via st i) "payload") ->
        bpf buf " via %s" (S.layer_via st i)
      | _ -> ());
      bpf buf ";\n")
    (S.layer_names st);
  bpf buf "}\n";
  Buffer.contents buf

let rec mexpr buf (e : M.expr) =
  match e with
  | Int n -> bpf buf "%d" n
  | Reg r -> bpf buf "%s" r
  | Add (a, b) -> bpf buf "(%a + %a)" mexpr a mexpr b
  | Sub (a, b) -> bpf buf "(%a - %a)" mexpr a mexpr b
  | Mul (a, b) -> bpf buf "(%a * %a)" mexpr a mexpr b
  | Mod (a, b) -> bpf buf "(%a mod %a)" mexpr a mexpr b

let rec mcond buf (c : M.cond) =
  match c with
  | True -> bpf buf "true"
  | False -> bpf buf "false"
  | Eq (a, b) -> bpf buf "%a == %a" mexpr a mexpr b
  | Ne (a, b) -> bpf buf "%a != %a" mexpr a mexpr b
  | Lt (a, b) -> bpf buf "%a < %a" mexpr a mexpr b
  | Le (a, b) -> bpf buf "%a <= %a" mexpr a mexpr b
  | Not c -> bpf buf "!(%a)" mcond c
  | And (a, b) -> bpf buf "(%a) && (%a)" mcond a mcond b
  | Or (a, b) -> bpf buf "(%a) || (%a)" mcond a mcond b

let machine_to_ndsl (m : M.t) =
  let buf = Buffer.create 512 in
  bpf buf "machine %s {\n" m.machine_name;
  if m.registers <> [] then begin
    bpf buf "  registers {";
    List.iter
      (fun (r : M.register) -> bpf buf " %s : mod %d = %d;" r.reg_name r.domain r.init)
      m.registers;
    bpf buf " }\n"
  end;
  bpf buf "  states {";
  List.iter
    (fun s ->
      bpf buf " %s%s%s;" s
        (if String.equal s m.initial then " init" else "")
        (if M.is_accepting m s then " accepting" else ""))
    m.states;
  bpf buf " }\n";
  bpf buf "  events { %s }\n" (String.concat ", " m.events);
  List.iter
    (fun (t : M.transition) ->
      bpf buf "  on %s: %s -> %s" t.event t.src t.dst;
      (match t.guard with
      | M.True -> ()
      | g -> bpf buf " when %a" mcond g);
      (match t.actions with
      | [] -> ()
      | acts ->
        bpf buf " {";
        List.iter (fun (M.Assign (r, e)) -> bpf buf " %s := %a;" r mexpr e) acts;
        bpf buf " }");
      (match t.timer with
      | M.No_timer -> ()
      | M.Arm_timer { after_ms; fire } -> bpf buf " timeout %d -> %s" after_ms fire
      | M.Cancel_timer -> bpf buf " timeout cancel");
      bpf buf " as %S;\n" t.t_label)
    m.transitions;
  List.iter (fun (s, e) -> bpf buf "  ignore %s in %s;\n" e s) m.ignores;
  bpf buf "}\n";
  Buffer.contents buf

let program_to_ndsl (p : Parser.program) =
  (* Formats first — stack layers must resolve against them on re-parse. *)
  String.concat "\n"
    (List.map (fun (_, fmt) -> format_to_ndsl fmt) p.formats
    @ List.map (fun (_, st) -> stack_to_ndsl st) p.stacks
    @ List.map (fun (_, m) -> machine_to_ndsl m) p.machines)
