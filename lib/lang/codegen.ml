module D = Netdsl_format.Desc
module S = Netdsl_format.Stack
module M = Netdsl_fsm.Machine

let bpf = Printf.bprintf

let rec fexpr buf (e : D.expr) =
  match e with
  | Const v -> bpf buf "(D.Const %LdL)" v
  | Field n -> bpf buf "(D.Field %S)" n
  | Byte_len n -> bpf buf "(D.Byte_len %S)" n
  | Msg_len -> bpf buf "D.Msg_len"
  | Add (a, b) -> bpf buf "(D.Add (%a, %a))" fexpr a fexpr b
  | Sub (a, b) -> bpf buf "(D.Sub (%a, %a))" fexpr a fexpr b
  | Mul (a, b) -> bpf buf "(D.Mul (%a, %a))" fexpr a fexpr b
  | Div (a, b) -> bpf buf "(D.Div (%a, %a))" fexpr a fexpr b

let endian buf = function
  | D.Big -> bpf buf "D.Big"
  | D.Little -> bpf buf "D.Little"

let len_spec buf = function
  | D.Len_fixed n -> bpf buf "(D.Len_fixed %d)" n
  | D.Len_expr e -> bpf buf "(D.Len_expr %a)" fexpr e
  | D.Len_bytes e -> bpf buf "(D.Len_bytes %a)" fexpr e
  | D.Len_remaining -> bpf buf "D.Len_remaining"
  | D.Len_terminated t -> bpf buf "(D.Len_terminated %d)" t

let region buf = function
  | D.Region_message -> bpf buf "D.Region_message"
  | D.Region_span (a, b) -> bpf buf "(D.Region_span (%S, %S))" a b
  | D.Region_rest -> bpf buf "D.Region_rest"

let constr buf = function
  | D.In_range (lo, hi) -> bpf buf "D.In_range (%LdL, %LdL)" lo hi
  | D.One_of vs ->
    bpf buf "D.One_of [%s]" (String.concat "; " (List.map (Printf.sprintf "%LdL") vs))
  | D.Not_equal v -> bpf buf "D.Not_equal %LdL" v

(* Sub-formats referenced by arrays/records/variants are emitted as their
   own bindings first; [binding_of] maps a format to its variable name. *)
let rec ty binding_of buf (t : D.ty) =
  match t with
  | Uint { bits; endian = e } -> bpf buf "(D.Uint { bits = %d; endian = %a })" bits endian e
  | Bool_flag -> bpf buf "D.Bool_flag"
  | Const { bits; endian = e; value } ->
    bpf buf "(D.Const { bits = %d; endian = %a; value = %LdL })" bits endian e value
  | Enum { bits; endian = e; cases; exhaustive } ->
    bpf buf "(D.Enum { bits = %d; endian = %a; cases = [%s]; exhaustive = %b })" bits
      endian e
      (String.concat "; " (List.map (fun (n, v) -> Printf.sprintf "(%S, %LdL)" n v) cases))
      exhaustive
  | Computed { bits; endian = e; expr } ->
    bpf buf "(D.Computed { bits = %d; endian = %a; expr = %a })" bits endian e fexpr expr
  | Checksum { algorithm; region = r } ->
    bpf buf
      "(D.Checksum { algorithm = Option.get (Netdsl_util.Checksum.algorithm_of_string %S); region = %a })"
      (Netdsl_util.Checksum.algorithm_to_string algorithm)
      region r
  | Bytes spec -> bpf buf "(D.Bytes %a)" len_spec spec
  | Array { elem; length } ->
    bpf buf "(D.Array { elem = %s; length = %a })" (binding_of elem) len_spec length
  | Record sub -> bpf buf "(D.Record %s)" (binding_of sub)
  | Variant { tag; cases; default } ->
    bpf buf "(D.Variant { tag = %S; cases = [%s]; default = %s })" tag
      (String.concat "; "
         (List.map
            (fun (n, v, sub) -> Printf.sprintf "(%S, %LdL, %s)" n v (binding_of sub))
            cases))
      (match default with
      | None -> "None"
      | Some sub -> Printf.sprintf "(Some %s)" (binding_of sub))
  | Padding { bits } -> bpf buf "(D.Padding { bits = %d })" bits

and field binding_of buf (f : D.field) =
  bpf buf "      D.field%s%s %S %a;\n"
    (match f.doc with
    | None -> ""
    | Some d -> Printf.sprintf " ~doc:%S" d)
    (match f.constraints with
    | [] -> ""
    | cs ->
      let b = Buffer.create 64 in
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_string b "; ";
          constr b c)
        cs;
      Printf.sprintf " ~constraints:[%s]" (Buffer.contents b))
    f.name (ty binding_of) f.ty

let format_binding binding_of buf name (fmt : D.t) =
  bpf buf "let %s : D.t =\n  D.format %S\n    [\n" name fmt.format_name;
  List.iter (field binding_of buf) fmt.fields;
  bpf buf "    ]\n\n"

let rec mexpr buf (e : M.expr) =
  match e with
  | Int n -> bpf buf "(M.Int %d)" n
  | Reg r -> bpf buf "(M.Reg %S)" r
  | Add (a, b) -> bpf buf "(M.Add (%a, %a))" mexpr a mexpr b
  | Sub (a, b) -> bpf buf "(M.Sub (%a, %a))" mexpr a mexpr b
  | Mul (a, b) -> bpf buf "(M.Mul (%a, %a))" mexpr a mexpr b
  | Mod (a, b) -> bpf buf "(M.Mod (%a, %a))" mexpr a mexpr b

let rec mcond buf (c : M.cond) =
  match c with
  | True -> bpf buf "M.True"
  | False -> bpf buf "M.False"
  | Eq (a, b) -> bpf buf "(M.Eq (%a, %a))" mexpr a mexpr b
  | Ne (a, b) -> bpf buf "(M.Ne (%a, %a))" mexpr a mexpr b
  | Lt (a, b) -> bpf buf "(M.Lt (%a, %a))" mexpr a mexpr b
  | Le (a, b) -> bpf buf "(M.Le (%a, %a))" mexpr a mexpr b
  | Not c -> bpf buf "(M.Not %a)" mcond c
  | And (a, b) -> bpf buf "(M.And (%a, %a))" mcond a mcond b
  | Or (a, b) -> bpf buf "(M.Or (%a, %a))" mcond a mcond b

let strings names = String.concat "; " (List.map (Printf.sprintf "%S") names)

let machine_binding buf name (m : M.t) =
  bpf buf "let %s : M.t =\n  M.machine ~name:%S\n" name m.machine_name;
  bpf buf "    ~states:[ %s ]\n" (strings m.states);
  bpf buf "    ~events:[ %s ]\n" (strings m.events);
  if m.registers <> [] then
    bpf buf "    ~registers:[ %s ]\n"
      (String.concat "; "
         (List.map
            (fun (r : M.register) ->
              Printf.sprintf "M.reg ~init:%d %S ~domain:%d" r.init r.reg_name r.domain)
            m.registers));
  bpf buf "    ~initial:%S\n" m.initial;
  if m.accepting <> [] then bpf buf "    ~accepting:[ %s ]\n" (strings m.accepting);
  if m.ignores <> [] then
    bpf buf "    ~ignores:[ %s ]\n"
      (String.concat "; "
         (List.map (fun (s, e) -> Printf.sprintf "(%S, %S)" s e) m.ignores));
  bpf buf "    [\n";
  List.iter
    (fun (t : M.transition) ->
      bpf buf "      M.trans ~label:%S ~src:%S ~event:%S ~dst:%S" t.t_label t.src
        t.event t.dst;
      (match t.guard with
      | M.True -> ()
      | g -> bpf buf " ~guard:%a" mcond g);
      (match t.actions with
      | [] -> ()
      | acts ->
        bpf buf " ~actions:[ %s ]"
          (String.concat "; "
             (List.map
                (fun (M.Assign (r, e)) ->
                  let b = Buffer.create 32 in
                  mexpr b e;
                  Printf.sprintf "M.Assign (%S, %s)" r (Buffer.contents b))
                acts)));
      (match t.timer with
      | M.No_timer -> ()
      | M.Arm_timer { after_ms; fire } ->
        bpf buf " ~timer:(M.Arm_timer { after_ms = %d; fire = %S })" after_ms fire
      | M.Cancel_timer -> bpf buf " ~timer:M.Cancel_timer");
      bpf buf " ();\n")
    m.transitions;
  bpf buf "    ]\n\n"

(* A parsed stack already validated, so [S.v] cannot fail on replay;
   [Result.get_ok] keeps the generated binding a plain value. *)
let stack_binding binding_of buf name (st : S.t) =
  bpf buf "let %s : S.t =\n  Result.get_ok\n    (S.v ~name:%S\n       [\n" name (S.name st);
  List.iteri
    (fun i lname ->
      let fmt : D.t = S.layer_format st i in
      bpf buf "         S.layer ~name:%S%s%s %s;\n" lname
        (match S.layer_select st i with
        | None -> ""
        | Some (f, vs) ->
          Printf.sprintf " ~select:(%S, [ %s ])" f
            (String.concat "; " (List.map (Printf.sprintf "%LdL") vs)))
        (if String.equal (S.layer_via st i) "payload" then ""
         else Printf.sprintf " ~via:%S" (S.layer_via st i))
        (binding_of fmt))
    (S.layer_names st);
  bpf buf "       ])\n\n"

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') name

let to_ocaml (p : Parser.program) =
  let buf = Buffer.create 4096 in
  bpf buf "(* Generated by the netdsl compiler — do not edit. *)\n";
  bpf buf "module D = Netdsl_format.Desc\n";
  bpf buf "module S = Netdsl_format.Stack\n";
  bpf buf "module M = Netdsl_fsm.Machine\n\n";
  (* Formats are in definition order, so every reference points backwards
     and the bindings below resolve. *)
  let binding_of (fmt : D.t) = "format_" ^ sanitize fmt.format_name in
  List.iter
    (fun (name, fmt) -> format_binding binding_of buf ("format_" ^ sanitize name) fmt)
    p.formats;
  List.iter
    (fun (name, st) -> stack_binding binding_of buf ("stack_" ^ sanitize name) st)
    p.stacks;
  List.iter
    (fun (name, m) -> machine_binding buf ("machine_" ^ sanitize name) m)
    p.machines;
  bpf buf "let formats : (string * D.t) list =\n  [ %s ]\n\n"
    (String.concat "; "
       (List.map (fun (n, _) -> Printf.sprintf "(%S, format_%s)" n (sanitize n)) p.formats));
  bpf buf "let stacks : (string * S.t) list =\n  [ %s ]\n\n"
    (String.concat "; "
       (List.map (fun (n, _) -> Printf.sprintf "(%S, stack_%s)" n (sanitize n)) p.stacks));
  bpf buf "let machines : (string * M.t) list =\n  [ %s ]\n"
    (String.concat "; "
       (List.map (fun (n, _) -> Printf.sprintf "(%S, machine_%s)" n (sanitize n)) p.machines));
  Buffer.contents buf
