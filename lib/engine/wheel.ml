(* A hierarchical timing wheel keyed by flow id, in the zero-allocation
   style of the pipeline's flow table: every structure is a parallel int
   array, membership is intrusive doubly-linked lists threaded through
   those arrays, and the key -> entry index is the same open-addressing
   Fibonacci-hash map.  Arm, re-arm and cancel are O(1); [advance] walks
   virtual time one tick at a time, cascading a higher-level slot down
   exactly when the level below wraps (the classic Varghese/Lauck layout:
   4 levels x 256 slots, level [l] spanning [2^(8*(l+1))] ticks, ~2^32
   ticks = ~49 days at 1ms resolution in total).

   One key holds at most one timer — arming an armed key replaces its
   deadline (the retransmission idiom) — so the map stays bijective and
   eviction-time cancellation needs no scan.

   Correctness does not depend on placement: a slot being fired or
   cascaded re-places any entry whose stored (absolute) expiry has not
   been reached, so far-future deadlines beyond the wheel's span simply
   sit in the top level and take another trip.  Within a tick, entries
   fire in arm order ([seq]), matching a sorted-list reference model
   ordered by (expiry, seq); the fire callback may freely arm, re-arm or
   cancel timers — including ones due in the same tick — and the pass
   honours those mutations. *)

let slot_bits = 8
let slots_per_level = 1 lsl slot_bits
let slot_mask = slots_per_level - 1
let levels = 4
let span = 1 lsl (slot_bits * levels)

(* [eprev] encodings for an entry that is not linked after a predecessor:
   [-(g+1)] marks the head of global slot [g]; [pending_mark] an entry
   collected for firing in the current tick; [free_mark] a freelist
   entry.  Slot count is far above any [-(g+1)], so the marks are
   unambiguous. *)
let pending_mark = min_int
let free_mark = min_int + 1

type t = {
  (* entry store: parallel arrays indexed by entry id *)
  mutable ekey : int array;
  mutable eexp : int array; (* absolute expiry tick *)
  mutable eev : int array; (* event id handed to the fire callback *)
  mutable eseq : int array; (* arm order; ties within a tick fire in it *)
  mutable enext : int array;
  mutable eprev : int array;
  mutable ecap : int;
  mutable used : int; (* entry-store high-water mark *)
  mutable free : int; (* freelist head through [enext], -1 when empty *)
  heads : int array; (* levels * 256 global slots; entry id or -1 *)
  (* key -> entry id: open addressing with linear probing, tombstones in
     [hstate] ('\000' empty, '\001' live, '\002' tombstone) *)
  mutable hkeys : int array;
  mutable hvals : int array;
  mutable hstate : Bytes.t;
  mutable hmask : int;
  mutable hused : int;
  mutable now : int;
  mutable live : int;
  mutable seq : int;
  mutable expired : int;
  mutable cancelled : int;
  mutable cascaded : int;
  (* per-tick fire scratch: due entry ids, insertion-sorted by [eseq] *)
  mutable scratch : int array;
  mutable scratch_n : int;
}

let create ?(now = 0) () =
  let cap = 64 in
  let buckets = 256 in
  {
    ekey = Array.make cap 0;
    eexp = Array.make cap 0;
    eev = Array.make cap 0;
    eseq = Array.make cap 0;
    enext = Array.make cap (-1);
    eprev = Array.make cap free_mark;
    ecap = cap;
    used = 0;
    free = -1;
    heads = Array.make (levels * slots_per_level) (-1);
    hkeys = Array.make buckets 0;
    hvals = Array.make buckets 0;
    hstate = Bytes.make buckets '\000';
    hmask = buckets - 1;
    hused = 0;
    now;
    live = 0;
    seq = 0;
    expired = 0;
    cancelled = 0;
    cascaded = 0;
    scratch = Array.make 64 0;
    scratch_n = 0;
  }

let now t = t.now
let live t = t.live
let expired t = t.expired
let cancelled t = t.cancelled
let cascaded t = t.cascaded

(* ---- key -> entry hash (the pipeline flow-table idiom) ---- *)

let hash k = (k * 0x2545F4914F6CDD1D) land max_int

(* probe order matters: the live-and-matching case leads because on the
   hot path (per-packet re-arm) the first probe is almost always the hit *)
let rec hprobe t k i mask =
  let c = Bytes.unsafe_get t.hstate i in
  if c = '\001' && Array.unsafe_get t.hkeys i = k then
    Array.unsafe_get t.hvals i
  else if c = '\000' then -1
  else hprobe t k ((i + 1) land mask) mask

let hfind t k = hprobe t k (hash k land t.hmask) t.hmask

let hadd t k v =
  let mask = t.hmask in
  let i = ref (hash k land mask) in
  while Bytes.unsafe_get t.hstate !i = '\001' do
    i := (!i + 1) land mask
  done;
  if Bytes.unsafe_get t.hstate !i = '\000' then t.hused <- t.hused + 1;
  Bytes.unsafe_set t.hstate !i '\001';
  t.hkeys.(!i) <- k;
  t.hvals.(!i) <- v

let hremove t k =
  let mask = t.hmask in
  let i = ref (hash k land mask) in
  let continue = ref true in
  while !continue do
    match Bytes.unsafe_get t.hstate !i with
    | '\000' -> continue := false
    | '\001' when Array.unsafe_get t.hkeys !i = k ->
      Bytes.unsafe_set t.hstate !i '\002';
      continue := false
    | _ -> i := (!i + 1) land mask
  done

let hrehash t buckets' =
  let okeys = t.hkeys and ovals = t.hvals and ostate = t.hstate in
  let on = t.hmask + 1 in
  t.hkeys <- Array.make buckets' 0;
  t.hvals <- Array.make buckets' 0;
  t.hstate <- Bytes.make buckets' '\000';
  t.hmask <- buckets' - 1;
  t.hused <- 0;
  for i = 0 to on - 1 do
    if Bytes.unsafe_get ostate i = '\001' then hadd t okeys.(i) ovals.(i)
  done

let hreserve t =
  let buckets = t.hmask + 1 in
  if (t.hused + 1) * 4 > buckets * 3 then
    hrehash t (if (t.live + 1) * 2 > buckets then buckets * 2 else buckets)

(* ---- entry store ---- *)

let grow_entries t =
  let cap' = t.ecap * 2 in
  let ext a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.ecap;
    a'
  in
  t.ekey <- ext t.ekey 0;
  t.eexp <- ext t.eexp 0;
  t.eev <- ext t.eev 0;
  t.eseq <- ext t.eseq 0;
  t.enext <- ext t.enext (-1);
  t.eprev <- ext t.eprev free_mark;
  t.ecap <- cap'

let alloc t =
  if t.free >= 0 then begin
    let i = t.free in
    t.free <- t.enext.(i);
    i
  end
  else begin
    if t.used >= t.ecap then grow_entries t;
    let i = t.used in
    t.used <- t.used + 1;
    i
  end

let free_entry t i =
  t.eprev.(i) <- free_mark;
  t.enext.(i) <- t.free;
  t.free <- i

(* ---- slot lists ---- *)

let unlink t i =
  let p = Array.unsafe_get t.eprev i and n = Array.unsafe_get t.enext i in
  if p >= 0 then Array.unsafe_set t.enext p n
  else Array.unsafe_set t.heads (-p - 1) n;
  if n >= 0 then Array.unsafe_set t.eprev n p

let link t g i =
  let h = Array.unsafe_get t.heads g in
  Array.unsafe_set t.enext i h;
  Array.unsafe_set t.eprev i (-(g + 1));
  if h >= 0 then Array.unsafe_set t.eprev h i;
  Array.unsafe_set t.heads g i

(* Global slot for an absolute expiry [e].  [imminent] is the level-0
   slot that stands for "already due": the slot about to be fired when
   re-placing during a cascade, the next tick's slot when arming. *)
let gslot_for t e ~imminent =
  let delta = e - t.now in
  if delta <= 0 then imminent
  else begin
    let delta = if delta >= span then span - 1 else delta in
    let e = t.now + delta in
    if delta < slots_per_level then e land slot_mask
    else if delta < 1 lsl (2 * slot_bits) then
      slots_per_level + ((e lsr slot_bits) land slot_mask)
    else if delta < 1 lsl (3 * slot_bits) then
      (2 * slots_per_level) + ((e lsr (2 * slot_bits)) land slot_mask)
    else (3 * slots_per_level) + ((e lsr (3 * slot_bits)) land slot_mask)
  end

(* ---- the public operations ---- *)

let armed t key = hfind t key >= 0

(* Re-arm a live (or pending) entry [i]: new deadline/payload/arm order.
   An {e identical} re-arm — same deadline tick, same event — is a
   complete no-op, keeping the original arm order: the entry it would
   produce is indistinguishable, and this is the per-packet idiom (a flow
   re-arming its retransmission deadline many times between clock ticks).
   A pending entry (collected for this tick's fire pass) can never look
   identical — its expiry is <= now, the new deadline > now — so the
   no-op path needs no pending check; the non-identical path must
   re-link, which is what clears a pending mark. *)
let rearm_entry t i ~e ~ev =
  if Array.unsafe_get t.eexp i = e && Array.unsafe_get t.eev i = ev then ()
  else begin
    if Array.unsafe_get t.eprev i <> pending_mark then unlink t i;
    Array.unsafe_set t.eexp i e;
    Array.unsafe_set t.eev i ev;
    Array.unsafe_set t.eseq i t.seq;
    t.seq <- t.seq + 1;
    link t (gslot_for t e ~imminent:((t.now + 1) land slot_mask)) i
  end

let arm_fresh t ~key ~e ~ev =
  let i = alloc t in
  t.ekey.(i) <- key;
  t.eexp.(i) <- e;
  t.eev.(i) <- ev;
  t.eseq.(i) <- t.seq;
  t.seq <- t.seq + 1;
  link t (gslot_for t e ~imminent:((t.now + 1) land slot_mask)) i;
  t.live <- t.live + 1;
  hreserve t;
  hadd t key i;
  i

let arm t ~key ~after ~ev =
  let after = if after < 1 then 1 else after in
  let e = t.now + after in
  let i = hfind t key in
  if i >= 0 then rearm_entry t i ~e ~ev
  else ignore (arm_fresh t ~key ~e ~ev)

(* [hint] is valid iff it designates [key]'s entry right now: in range,
   carrying [key], and not sitting on the freelist.  One key holds at
   most one timer, so a matching live key IS this key's entry; a freed
   entry re-allocated to another key fails the key compare, and one
   re-allocated to the same key is the current entry anyway. *)
let arm_hint t ~hint ~key ~after ~ev =
  let after = if after < 1 then 1 else after in
  let e = t.now + after in
  if
    hint >= 0
    && hint < t.used
    && Array.unsafe_get t.ekey hint = key
    && Array.unsafe_get t.eprev hint <> free_mark
  then begin
    rearm_entry t hint ~e ~ev;
    hint
  end
  else begin
    let i = hfind t key in
    if i >= 0 then begin
      rearm_entry t i ~e ~ev;
      i
    end
    else arm_fresh t ~key ~e ~ev
  end

let cancel t key =
  let i = hfind t key in
  if i < 0 then false
  else begin
    (* a pending entry (collected for this tick's fire pass) is already
       unlinked; freeing it flips [eprev] off [pending_mark], which is
       exactly what tells the pass to skip it *)
    if t.eprev.(i) <> pending_mark then unlink t i;
    hremove t key;
    free_entry t i;
    t.live <- t.live - 1;
    t.cancelled <- t.cancelled + 1;
    true
  end

let cascade t l tick =
  let g = (l * slots_per_level) + ((tick lsr (l * slot_bits)) land slot_mask) in
  let imminent = tick land slot_mask in
  let i = ref t.heads.(g) in
  t.heads.(g) <- -1;
  while !i >= 0 do
    let n = t.enext.(!i) in
    t.cascaded <- t.cascaded + 1;
    link t (gslot_for t t.eexp.(!i) ~imminent) !i;
    i := n
  done

let push_scratch t i =
  if t.scratch_n >= Array.length t.scratch then begin
    let s' = Array.make (2 * Array.length t.scratch) 0 in
    Array.blit t.scratch 0 s' 0 t.scratch_n;
    t.scratch <- s'
  end;
  t.scratch.(t.scratch_n) <- i;
  t.scratch_n <- t.scratch_n + 1

let fire_slot t tick fire_cb fired =
  let g = tick land slot_mask in
  if t.heads.(g) >= 0 then begin
    t.scratch_n <- 0;
    let i = ref t.heads.(g) in
    t.heads.(g) <- -1;
    while !i >= 0 do
      let n = t.enext.(!i) in
      if t.eexp.(!i) <= tick then begin
        t.eprev.(!i) <- pending_mark;
        push_scratch t !i
      end
      else
        (* not due: a longer-range deadline sharing the low slot bits, or
           a defensively re-placed stray — send it back by real expiry *)
        link t (gslot_for t t.eexp.(!i) ~imminent:g) !i;
      i := n
    done;
    (* insertion sort by arm order: cascades shuffled the slot list, and
       the contract is "within a tick, timers fire in arm order" *)
    let s = t.scratch and seqs = t.eseq in
    for k = 1 to t.scratch_n - 1 do
      let v = s.(k) in
      let sv = seqs.(v) in
      let j = ref (k - 1) in
      while !j >= 0 && seqs.(s.(!j)) > sv do
        s.(!j + 1) <- s.(!j);
        decr j
      done;
      s.(!j + 1) <- v
    done;
    for k = 0 to t.scratch_n - 1 do
      let i = s.(k) in
      (* anything the fire callbacks did to a later pending entry —
         cancel, re-arm — cleared its mark; fire only untouched ones *)
      if t.eprev.(i) = pending_mark then begin
        let key = t.ekey.(i) and ev = t.eev.(i) in
        hremove t key;
        free_entry t i;
        t.live <- t.live - 1;
        t.expired <- t.expired + 1;
        incr fired;
        fire_cb ~key ~ev
      end
    done
  end

let advance t ~now:target fire_cb =
  let fired = ref 0 in
  while t.now < target do
    if t.live = 0 then t.now <- target
    else begin
      t.now <- t.now + 1;
      let tick = t.now in
      if tick land slot_mask = 0 then begin
        cascade t 1 tick;
        if tick land ((1 lsl (2 * slot_bits)) - 1) = 0 then begin
          cascade t 2 tick;
          if tick land ((1 lsl (3 * slot_bits)) - 1) = 0 then cascade t 3 tick
        end
      end;
      fire_slot t tick fire_cb fired
    end
  done;
  !fired

let next_due t =
  if t.live = 0 then -1
  else begin
    (* scan level 0 up to the next cascade boundary; past it, the cascade
       itself is the next observable step, so the boundary is a sound
       "wake up no later than" deadline *)
    let b = slots_per_level - (t.now land slot_mask) in
    let r = ref (t.now + b) in
    (try
       for d = 1 to b do
         if t.heads.((t.now + d) land slot_mask) >= 0 then begin
           r := t.now + d;
           raise Exit
         end
       done
     with Exit -> ());
    !r
  end
