(** The batched packet pipeline: decode → verify → FSM-step → encode.

    One pipeline = one format, an optional semantic predicate, an optional
    protocol machine (compiled once to a {!Netdsl_fsm.Step} plan and
    instantiated per flow), and an optional responder.  Packets move
    through the stages in batches over a pool of reusable zero-copy
    {!Netdsl_format.View} slots — the decode stage validates everything
    the allocating codec would, later stages only ever see packets that
    survived it, and {!Stats} counts packets/bytes/rejects and latency
    per stage.

    The step stage runs entirely on integers: the classifier maps a view
    to an interned event id, the flow table stores flat
    {!Netdsl_fsm.Step.instance} records keyed by native-int flow keys,
    and {!Netdsl_fsm.Step.fire_id} allocates nothing on the accept path.
    Names and labels reappear only on opt-in slow paths ([on_transition],
    error reporting).

    Two execution modes over the same semantics:
    - {!Staged} (default): each stage walks the whole batch before the
      next starts — per-stage wall-clock timing, views materialised.
    - {!Fused}: a {!Flight} plan runs each packet to completion in one
      pass — demand-driven field extraction into native-int registers,
      no [View.t] on the fast tier, no per-packet allocation.  Requires
      [~flight]; the same spec also derives the staged closures, so the
      two modes are differentially testable against each other.

    Two driving modes:
    - synchronous: {!process} / {!process_batch} on the caller's domain
      (this is what the bench baselines use);
    - slab-driven: a producer {!feed}s packets into a preallocated
      {!Slab} (blitting into fixed slots — no per-packet allocation;
      blocking when full — backpressure) while a consumer domain sits in
      {!run}.  [Shard] runs one such consumer per worker domain. *)

type config = {
  batch : int;  (** batch size, and the number of pooled view slots *)
  ring_capacity : int;  (** input slab slot count — the backpressure depth *)
  max_flows : int;
      (** per-pipeline bound on live flow instances; when a new flow
          arrives at the bound, the oldest-idle one is evicted (counted in
          {!Stats.evicted_flows}) *)
  slot_bytes : int;
      (** input slab slot capacity; {!feed} rejects longer packets *)
}

val default_config : config
(** [{ batch = 64; ring_capacity = 1024; max_flows = 65536;
      slot_bytes = 2048 }] *)

type mode = Staged | Fused

type outcome =
  | Accepted
  | Rejected_decode of Netdsl_format.Codec.error
      (** failed syntactic/semantic validation (view decode) *)
  | Rejected_verify  (** failed the caller's predicate *)
  | Rejected_step  (** the machine refused the event *)
  | Rejected_encode  (** the responder produced an unencodable value *)

type t

val create :
  ?config:config ->
  ?mode:mode ->
  ?stack:Netdsl_format.Stack.t ->
  ?flight:Flight.spec ->
  ?verify:(Netdsl_format.View.t -> bool) ->
  ?classify:(Netdsl_format.View.t -> string option) ->
  ?classify_id:(Netdsl_format.View.t -> int) ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?flow_key:string ->
  ?on_transition:(Netdsl_fsm.Machine.transition -> unit) ->
  ?clock_ms:(unit -> int) ->
  ?now_ns:(unit -> int) ->
  ?tick_ms:int ->
  ?respond:
    (Netdsl_format.View.t -> Netdsl_fsm.Step.instance -> Netdsl_format.Value.t option) ->
  ?respond_patch:
    (Netdsl_format.View.t ->
    Netdsl_fsm.Step.instance ->
    (string * int64) list option) ->
  ?respond_fmt:Netdsl_format.Desc.t ->
  ?on_response:(string -> unit) ->
  ?on_reply:(Bytes.t -> int -> unit) ->
  ?on_reply_slot:(int -> Bytes.t -> int -> unit) ->
  Netdsl_format.Desc.t ->
  t
(** [create fmt] builds a pipeline for [fmt].

    - [stack] runs the pipeline over a layered {!Netdsl_format.Stack}
      instead of the single format [fmt] (pass the chain's outermost
      format as [fmt]; it only feeds staged-side machinery a stack
      pipeline never exercises).  Requires [~flight] with every spec field
      qualified as ["layer.field"], and [Fused] mode — a chain has no
      staged decomposition.  The spec compiles via
      {!Flight.compile_stack}; respond rules patch a byte copy of the
      request inside the owning layer's window.  Raises
      [Invalid_argument] with the compiler's reason when the chain or a
      spec reference cannot be fused.
    - [flight] is a declarative {!Flight.spec} of the whole per-packet
      semantics (verify, classify, flow key, respond-by-patch), compiled
      once against [fmt] and [machine].  It {e replaces} — and cannot be
      combined with — [verify]/[classify]/[classify_id]/[flow_key]/
      [respond]/[respond_patch].  [Staged] mode runs the spec through
      the derived closures; [Fused] mode (which requires [~flight]) runs
      it through the fused plan.
    - [classify_id] is the hot-path classifier: map a validated view
      straight to an interned event id of the compiled machine (resolve
      names once at setup with {!Netdsl_fsm.Step.event_id} on
      {!machine_plan}); any negative value means the packet does not
      concern the machine and passes through.  An id the plan does not
      know rejects the packet at the step stage.
    - [classify] is the name-returning convenience ([None]: pass
      through); it is translated to the id path at create time.  When
      both are given, [classify_id] wins.
    - [machine] is validated and compiled once ({!Netdsl_fsm.Step.compile})
      and instantiated per flow; [flow_key] names the field whose value
      identifies a flow (without it, one instance serves all packets).
      Keys are native ints; a key field wider than 62 bits truncates via
      [Int64.to_int], identically in both modes.  At most
      [config.max_flows] instances are live; beyond that the oldest-idle
      flow is evicted.
    - [clock_ms] is the pipeline's clock: a monotone millisecond counter
      consulted when polling timers ({!poll_timers}, and once per
      {!run}/{!process_ring_batch} window).  The default reads wall time;
      tests inject a virtual clock and drive it deterministically.
    - [now_ns] is the stage-timing clock (integer nanoseconds; only
      differences are taken, so any monotone base works).  The default
      reads [Unix.gettimeofday], which boxes a float per batch; callers
      with an allocation-free monotonic source (the socket front end's C
      stub) inject it here to keep batch timing off the GC entirely.
    - [tick_ms] (default 1, must be positive) is the timer granularity:
      one {!Wheel} tick per [tick_ms] milliseconds.  Timeout durations
      round up to whole ticks.  A wheel exists only when [machine] has
      at least one [timeout] clause ({!Netdsl_fsm.Step.has_timers});
      otherwise the timer path costs one branch per accepted packet.
    - [on_transition] is an opt-in trace hook called after every fired
      transition with the source {!Netdsl_fsm.Machine.transition}
      (reconstructed from the plan's intern tables — the slow path; leave
      it unset to keep the step stage allocation-free).
    - [respond] builds a reply value from the view and the flow's machine
      instance; it is encoded against [respond_fmt] (default: [fmt]) by a
      compiled {!Netdsl_format.Emit} plan into a reusable buffer and
      handed to the reply sink.
    - [respond_patch] is the fast path, consulted before [respond]: return
      [Some mutations] to answer with a copy of the request whose named
      scalar fields are rewritten in place ({!Netdsl_format.Emit.patch} —
      checksum updated incrementally, nothing re-encoded).  Return [None]
      to fall through to [respond].  A field that cannot be patched (see
      {!Netdsl_format.Emit.patcher}) rejects the packet at the encode
      stage.
    - replies go to [on_reply_slot] when given (the [on_reply] contract
      plus a leading window index: which slot of the current batch the
      reply answers, or [-1] for a reply fired outside packet context,
      e.g. timer-driven — lets a batched slab owner file the reply
      against its per-slot return-address sidecar), else to [on_reply]
      (borrowed buffer + length — zero-copy; the bytes are only valid
      during the call), else to [on_response] as a fresh string.  The
      reply buffer carries a per-batch high-water mark: one oversized
      reply grows it only until the end of the batch. *)

val process : t -> string -> outcome
val process_batch : t -> string array -> int -> unit
(** [process_batch t pkts n] runs packets [0, n)] of [pkts] through all
    stages ([n] at most [config.batch]); results land in {!stats}. *)

val process_buffer : t -> Bytes.t -> len:int -> outcome
(** [process_buffer t buf ~len] runs the first [len] bytes of [buf]
    through all stages without copying them — the batch-drain entry
    point for callers that own their ingest slab (the socket front end
    leases a {!Slab} slot, [recvfrom]s into it, and hands it here).
    The buffer is borrowed: it must not be mutated during the call.
    Raises [Invalid_argument] when [len] exceeds [buf]. *)

val process_ring_batch : t -> Spsc.t -> n:int -> unit
(** Run the [n] slots the caller has claimed (and not yet released) from
    its {!Spsc} ring through the batch window in place — the worker-side
    drain step of the sharded path.  The caller owns the claim lifetime:
    [Spsc.poll] before, [Spsc.release] after ({!Shard} checks bucket
    migration fences in between).  [n] at most [config.batch]. *)

val process_slab_batch : t -> Slab.t -> n:int -> unit
(** Run the [n] slots the caller has popped (and not yet released) from
    its own {!Slab} through the batch window in place — the slab sibling
    of {!process_ring_batch}, for front ends that batch their ingest
    (one engine window per [recvmmsg] run instead of one
    {!process_buffer} call per packet, so stats recording and timer
    polling cost per batch).  The caller owns the slot lifetime:
    [Slab.pop_batch] before, [Slab.release] after — and after flushing
    any replies staged via [on_reply_slot] whose return addresses live
    in per-slot sidecars.  [n] at most [config.batch]. *)

val feed : t -> string -> bool
(** Blit one packet into the input slab; blocks while the slab is full,
    [false] after {!close_input}.  Raises [Invalid_argument] if the
    packet exceeds [config.slot_bytes]. *)

val feed_batch : t -> string array -> int -> bool
(** [feed_batch t pkts n] publishes [pkts.(0 .. n-1)] taking the slab
    lock once per free run — the batch hand-off path. *)

val close_input : t -> unit

val run : t -> unit
(** Consume the input slab in whole-batch slot runs until it is closed
    and drained.  Intended to run on its own domain. *)

val stats : t -> Stats.t
(** Stage layout: {!stage_names}.  In [Fused] mode the counters mirror
    the staged rows exactly, but per-stage wall-clock cannot exist in a
    fused pass: the batch's whole latency lands on the decode row. *)

val stage_names : string list
(** [["decode"; "verify"; "step"; "encode"]] — the {!Stats} layout. *)

val format : t -> Netdsl_format.Desc.t

val mode : t -> mode

val flight_tier : t -> [ `Linear | `Interp | `Stacked ] option
(** Tier of the compiled flight plan, when [~flight] was given. *)

val stack_plan : t -> Netdsl_format.Stack.plan option
(** The compiled chain of a [~stack] pipeline: its registers and layer
    windows read the state of the last accepting decode. *)

val machine_plan : t -> Netdsl_fsm.Step.plan option
(** The compiled plan of the pipeline's machine, for resolving event ids
    at setup time ([classify_id]) or reconstructing labels. *)

val flow_count : t -> int
(** Number of per-flow machine instances currently live (bounded by
    [config.max_flows]). *)

val poll_timers : t -> int
(** Advance the timer wheel to the current [clock_ms] reading and fire
    every expired timer through the step stage: each expiry synthesizes
    its armed event against the owning flow's instance ([fire_id] — the
    same run-to-completion path packets take, so per-flow ordering
    holds), re-applies any [timeout] clause on the fired transition, and
    counts as one step-stage packet (a refused expiry — evicted flow, or
    a state with no transition on the timeout event — counts as a step
    reject).  Returns how many timers fired.  No-op (0) on a pipeline
    without timers; called automatically after every batch window, and
    explicitly by select-loop drivers between windows. *)

val timers_live : t -> int
(** Armed timers currently held (0 when the machine has no [timeout]
    clauses). *)

val next_timer_s : t -> float option
(** Seconds until the timer wheel next needs a {!poll_timers} call —
    a "sleep no longer than" bound for a select loop ([Some 0.] when
    already due).  [None] when no timers are armed. *)

val next_timer_ms : t -> int
(** {!next_timer_s} without the option or the float: whole milliseconds
    until the wheel is next due ([0] when already due), [-1] when no
    timers are armed.  Allocation-free — the epoll loop consults it
    every idle pass. *)

val peek_flow : t -> int -> Netdsl_fsm.Step.instance option
(** The live machine instance for a flow key, without touching LRU order
    — observability for tests comparing per-flow end states across
    sharded and single-pipeline runs.  [None] on unkeyed pipelines. *)

val reply_capacity : t -> int
(** Current size of the reusable reply buffer (observable for the
    high-water reset regression test). *)
