(* Bounded ring buffer with blocking hand-off between domains.

   A fixed circular buffer guarded by a mutex and two condition variables.
   [push] blocks while the ring is full — that *is* the backpressure: a
   producer outrunning its consumer is throttled to the consumer's pace
   rather than growing an unbounded queue.  [pop_into] drains up to a
   batch at a time so consumers amortise the lock over many items.

   Waiting is staged.  Going straight to [Condition.wait] costs a futex
   sleep/wake round trip on almost every batch when producer and consumer
   run at similar speed — the ring oscillates around empty/full and the
   sleeper is woken microseconds after it parked.  So a waiter first spins
   briefly with [Domain.cpu_relax] (exponentially more pauses per probe,
   lock released in between), then escalates to [Thread.yield], and only
   then parks on the condition variable.  The condvar remains the
   correctness backstop: [close] and the signal paths are unchanged, so a
   parked waiter can never be stranded. *)

let spin_rounds = 4 (* cpu_relax probes: 1, 2, 4, 8 pauses *)
let yield_rounds = 4

type 'a t = {
  buf : 'a option array;
  mutable head : int; (* next slot to pop *)
  mutable tail : int; (* next slot to push *)
  mutable count : int;
  mutable closed : bool;
  mu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    head = 0;
    tail = 0;
    count = 0;
    closed = false;
    mu = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let capacity t = Array.length t.buf

(* Wait until [pred ()] holds.  Called with [t.mu] held; returns with it
   held.  [pred] must also become true on close (both predicates below
   include [t.closed]) so a closed ring releases every waiter. *)
let backoff_wait t cond pred =
  let attempt = ref 0 in
  while not (pred ()) do
    if !attempt < spin_rounds then begin
      Mutex.unlock t.mu;
      for _ = 1 to 1 lsl !attempt do
        Domain.cpu_relax ()
      done;
      incr attempt;
      Mutex.lock t.mu
    end
    else if !attempt < spin_rounds + yield_rounds then begin
      Mutex.unlock t.mu;
      Thread.yield ();
      incr attempt;
      Mutex.lock t.mu
    end
    else Condition.wait cond t.mu
  done

let length t =
  Mutex.lock t.mu;
  let n = t.count in
  Mutex.unlock t.mu;
  n

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu

let push t x =
  Mutex.lock t.mu;
  let cap = Array.length t.buf in
  backoff_wait t t.not_full (fun () -> t.count < cap || t.closed);
  if t.closed then begin
    Mutex.unlock t.mu;
    false
  end
  else begin
    t.buf.(t.tail) <- Some x;
    t.tail <- (t.tail + 1) mod cap;
    t.count <- t.count + 1;
    Condition.signal t.not_empty;
    Mutex.unlock t.mu;
    true
  end

let pop t =
  Mutex.lock t.mu;
  backoff_wait t t.not_empty (fun () -> t.count > 0 || t.closed);
  if t.count = 0 then begin
    (* closed and drained *)
    Mutex.unlock t.mu;
    None
  end
  else begin
    let cap = Array.length t.buf in
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod cap;
    t.count <- t.count - 1;
    Condition.signal t.not_full;
    Mutex.unlock t.mu;
    x
  end

let pop_into t out =
  let max = Array.length out in
  if max = 0 then 0
  else begin
    Mutex.lock t.mu;
    backoff_wait t t.not_empty (fun () -> t.count > 0 || t.closed);
    let cap = Array.length t.buf in
    let n = min t.count max in
    for i = 0 to n - 1 do
      (match t.buf.(t.head) with
      | Some x -> out.(i) <- x
      | None -> assert false);
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod cap
    done;
    t.count <- t.count - n;
    if n > 0 then Condition.broadcast t.not_full;
    Mutex.unlock t.mu;
    n
  end
