(** First-class engine metrics: per-stage packet/byte/reject counters and
    latency histograms.

    A [t] is single-owner — each worker domain mutates its own instance
    with no atomics or locks on the hot path; cross-domain aggregation is
    an explicit {!merge_into} after (or between) runs.  Histograms use
    log2-of-nanoseconds buckets, so percentiles are approximate (upper
    bucket bounds) but recording is O(1) and allocation-free. *)

type t

val create : string list -> t
(** [create names] — one counter set per stage, in pipeline order. *)

val stage_names : t -> string list

val stage_index : t -> string -> int
(** Resolve a stage name once; the per-packet calls take the index. *)

val record : t -> int -> bytes:int -> ns:int -> unit
(** [record t stage ~bytes ~ns] counts one accepted packet. *)

val reject : t -> int -> bytes:int -> unit
(** Counts one packet that was dropped at this stage. *)

val record_batch :
  t -> int -> packets:int -> bytes:int -> rejects:int -> elapsed_ns:int -> unit
(** Batched variant: counters are bumped in bulk and the histogram gets the
    per-packet mean of the batch. *)

val note_evicted_flow : t -> unit
(** Counts one flow-table entry discarded to make room (see
    [Pipeline.config.max_flows]). *)

val evicted_flows : t -> int

val note_unkeyed : ?n:int -> t -> unit
(** Counts packets the sharding stage could not read a flow key from
    (too short for the key field) — they are steered to worker 0 for the
    decode stage to reject; this counter is how they reach reports. *)

val unkeyed : t -> int

val note_timers : ?expired:int -> ?cancelled:int -> ?cascaded:int -> t -> unit
(** Fold a batch of timer-wheel activity ([Wheel] counter deltas) into the
    counter set — bumped by the pipeline after each timer poll. *)

val timers_expired : t -> int
(** Timers whose deadline was reached and whose event was fired. *)

val timers_cancelled : t -> int
(** Timers cancelled before expiry (machine [Cancel_timer] ops and
    flow-eviction cleanup). *)

val timers_cascaded : t -> int
(** Entries moved down a wheel level on a tick boundary. *)

val note_warning : t -> string -> unit
(** Attach an operational warning (e.g. oversubscribed workers) to the
    counter set.  Duplicates are kept once; warnings survive
    {!merge_into} and are printed by {!pp}. *)

val warnings : t -> string list
(** Recorded warnings, oldest first. *)

val merge_into : into:t -> t -> unit
(** Adds [src] into [into] (same stage layout required; eviction and
    unkeyed counters are summed and warnings unioned too). *)

val merge : t list -> t
(** Fresh aggregate of a non-empty list (shard-wide totals). *)

val copy : t -> t

val totals : t -> int * int * int
(** [(packets, bytes, rejects)] summed over stages. *)

val stage_packets : t -> int -> int
val stage_bytes : t -> int -> int
val stage_rejects : t -> int -> int
val stage_mean_ns : t -> int -> int

val pp : Format.formatter -> t -> unit
(** Text table: packets, bytes, rejects, mean / ~p50 / ~p99 latency. *)

val to_text : t -> string
