module F = Netdsl_format

type config = {
  workers : int;
  pipeline : Pipeline.config;
}

let default_config = { workers = Domain.recommended_domain_count (); pipeline = Pipeline.default_config }

type t = {
  cfg : config;
  key : F.View.key_extractor;
  pipes : Pipeline.t array;
  mutable domains : unit Domain.t array;
  mutable running : bool;
  mutable unkeyed : int;
}

(* Fibonacci hashing of the flow key: adjacent key values (sequence
   numbers, ports) spread across workers instead of landing together. *)
let worker_of_key t k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lsr 33) mod Array.length t.pipes

let create ?(config = default_config) ~key ?verify ?classify ?classify_id
    ?machine ?flow_key ?on_transition ?respond ?respond_patch ?respond_fmt
    ?on_response fmt =
  if config.workers <= 0 then Error "Shard.create: workers must be positive"
  else
    match F.View.key_extractor fmt key with
    | Error e -> Error (Printf.sprintf "Shard.create: bad key field: %s" e)
    | Ok ke ->
      let pipes =
        Array.init config.workers (fun _ ->
            Pipeline.create ~config:config.pipeline ?verify ?classify
              ?classify_id ?machine ?flow_key ?on_transition ?respond
              ?respond_patch ?respond_fmt ?on_response fmt)
      in
      Ok { cfg = config; key = ke; pipes; domains = [||]; running = false; unkeyed = 0 }

let workers t = Array.length t.pipes

let start t =
  if t.running then invalid_arg "Shard.start: already running";
  t.running <- true;
  t.domains <-
    Array.map (fun p -> Domain.spawn (fun () -> Pipeline.run p)) t.pipes

let feed t pkt =
  let w =
    match F.View.extract_key t.key pkt with
    | Some k -> worker_of_key t k
    | None ->
      (* too short to carry the key: let worker 0's decode stage reject and
         count it, rather than dropping it invisibly here *)
      t.unkeyed <- t.unkeyed + 1;
      0
  in
  Pipeline.feed t.pipes.(w) pkt

let drain t =
  Array.iter Pipeline.close_input t.pipes;
  if t.running then begin
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    t.running <- false
  end

let unkeyed t = t.unkeyed
let pipelines t = t.pipes

let stats t =
  let merged = Stats.create Pipeline.stage_names in
  Array.iter (fun p -> Stats.merge_into ~into:merged (Pipeline.stats p)) t.pipes;
  merged
