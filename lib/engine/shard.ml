module F = Netdsl_format

type config = {
  workers : int;
  pipeline : Pipeline.config;
}

let default_config =
  { workers = Domain.recommended_domain_count ();
    pipeline = Pipeline.default_config }

(* ------------------------------------------------------------------ *)
(* Steering: the RSS discipline.  The flow key is hashed exactly once at
   ingest (Fibonacci hashing — adjacent key values spread instead of
   clustering), masked into a power-of-two bucket table, and the bucket's
   owner is the destination worker.  Workers never read the table; the
   single steering thread owns it outright, so re-owning a bucket (work
   stealing) is a plain store.

   Per-flow ordering across a migration is kept by a *fence* per bucket:
   when bucket [b] moves from victim [v] to a thief, the fence records
   [v]'s ring position at that instant.  The first post-migration packet
   of [b] the thief meets makes it wait until [v]'s released head passes
   the fence — everything [v] was ever handed for [b] is done before the
   thief touches the bucket.  Fences compose across repeated migrations
   because releases are FIFO (see DESIGN.md "Stealing whole buckets"). *)
module Steer = struct
  type t = {
    n_workers : int;
    b_bits : int;
    b_mask : int;
    owner : int array; (* bucket -> worker; steering thread only *)
    fence : int Atomic.t array; (* bucket -> (pos lsl 6) lor (victim+1); 0 = none *)
    hungry : bool Atomic.t array; (* worker raises; steering thread consumes *)
    stealing : bool;
    threshold : int; (* a victim needs a backlog deeper than this *)
    mutable last_bucket : int; (* bucket of the last routed packet; -1 unkeyed *)
    mutable routed : int;
    mutable unkeyed : int;
    mutable steals : int; (* buckets migrated so far *)
  }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let create ?(buckets = 256) ?(stealing = false) ?(steal_threshold = 64)
      ~workers () =
    if workers <= 0 then invalid_arg "Steer.create: workers must be positive";
    if workers > 62 then invalid_arg "Steer.create: at most 62 workers";
    if steal_threshold < 0 then
      invalid_arg "Steer.create: steal_threshold must be non-negative";
    let nb = next_pow2 (max buckets workers) in
    let b_bits =
      let rec go b = if 1 lsl b >= nb then b else go (b + 1) in
      go 0
    in
    {
      n_workers = workers;
      b_bits;
      b_mask = nb - 1;
      owner = Array.init nb (fun b -> b mod workers);
      fence = Array.init nb (fun _ -> Atomic.make 0);
      hungry = Array.init workers (fun _ -> Atomic.make false);
      stealing;
      threshold = steal_threshold;
      last_bucket = -1;
      routed = 0;
      unkeyed = 0;
      steals = 0;
    }

  let workers t = t.n_workers
  let buckets t = t.b_mask + 1
  let stealing t = t.stealing
  let steals t = t.steals
  let unkeyed t = t.unkeyed

  (* Fibonacci hashing: multiply by 2^64/phi (as a 63-bit int) and keep
     the *top* bucket-index bits — a mask, never a mod. *)
  let bucket_of_key t k = (k * 0x2545F4914F6CDD1D) lsr (63 - t.b_bits) land t.b_mask

  let worker_of_key t k =
    if k = F.View.no_key then 0 else t.owner.(bucket_of_key t k)

  (* Steering-thread only: route one packet, remembering its bucket so
     the caller can tag the published slot with it. *)
  let route t ~key =
    t.routed <- t.routed + 1;
    if key = F.View.no_key then begin
      (* too short to carry the key: let worker 0's decode stage reject
         and count it, rather than dropping it invisibly here *)
      t.unkeyed <- t.unkeyed + 1;
      t.last_bucket <- -1;
      0
    end
    else begin
      let b = bucket_of_key t key in
      t.last_bucket <- b;
      t.owner.(b)
    end

  let last_bucket t = t.last_bucket

  (* Worker side: raise the "I am out of work" flag the steering thread
     answers with a bucket migration.  No-op unless stealing is on. *)
  let mark_hungry t w = if t.stealing then Atomic.set t.hungry.(w) true

  (* Steering-thread only.  Serve one hungry worker: hand it every other
     bucket of the deepest-backlog victim, fencing each moved bucket at
     the victim's current ring position.  The fence word is written
     before the owner flip, and both are visible to the thief no later
     than the release-publish of the first post-migration packet. *)
  let rebalance t rings =
    let thief = ref (-1) in
    let w = ref 0 in
    while !thief < 0 && !w < t.n_workers do
      if Atomic.get t.hungry.(!w) then thief := !w;
      incr w
    done;
    if !thief >= 0 then begin
      let thief = !thief in
      Atomic.set t.hungry.(thief) false;
      (* only feed a worker that is still actually out of work *)
      if Spsc.length rings.(thief) = 0 then begin
        let victim = ref (-1) and depth = ref t.threshold in
        for w = 0 to t.n_workers - 1 do
          if w <> thief then begin
            let d = Spsc.length rings.(w) in
            if d > !depth then begin
              victim := w;
              depth := d
            end
          end
        done;
        if !victim >= 0 then begin
          let v = !victim in
          let fence_word = (Spsc.producer_pos rings.(v) lsl 6) lor (v + 1) in
          let moved = ref 0 and seen = ref 0 in
          for b = 0 to t.b_mask do
            if t.owner.(b) = v then begin
              incr seen;
              if !seen land 1 = 1 then begin
                Atomic.set t.fence.(b) fence_word;
                t.owner.(b) <- thief;
                incr moved
              end
            end
          done;
          t.steals <- t.steals + !moved
        end
      end
    end

  (* Steering-thread only; call once per routed packet.  Cheap when idle:
     one immediate-bool test and a mask. *)
  let maybe_rebalance t rings =
    if t.stealing && t.routed land 31 = 0 then rebalance t rings

  (* Worker side: before processing a claimed batch, honour any migration
     fence its packets carry — wait until the fence's victim has released
     past the recorded position.  A fence naming ourselves is vacuous
     (our own FIFO already orders those packets). *)
  let fence_wait t rings ~me ~ring ~n =
    if t.stealing then
      for i = 0 to n - 1 do
        let b = Spsc.tag ring i in
        if b >= 0 then begin
          let f = Atomic.get t.fence.(b) in
          if f <> 0 then begin
            let v = (f land 63) - 1 in
            if v <> me then begin
              let pos = f lsr 6 in
              let k = ref 0 in
              while Spsc.head_pos rings.(v) < pos do
                Spsc.backoff !k;
                incr k
              done
            end
          end
        end
      done
end

(* ------------------------------------------------------------------ *)

type t = {
  cfg : config;
  key : F.View.key_extractor;
  steer : Steer.t;
  pipes : Pipeline.t array;
  rings : Spsc.t array;
  mutable domains : unit Domain.t array;
  mutable running : bool;
  warning : string option;
}

let create ?(config = default_config) ?(allow_oversubscribe = false)
    ?(stealing = false) ?steal_threshold ?buckets ~key ?mode ?flight ?verify
    ?classify ?classify_id ?machine ?flow_key ?on_transition ?respond
    ?respond_patch ?respond_fmt ?on_response ?on_reply fmt =
  if config.workers <= 0 then Error "Shard.create: workers must be positive"
  else
    match F.View.key_extractor fmt key with
    | Error e -> Error (Printf.sprintf "Shard.create: bad key field: %s" e)
    | Ok ke ->
      (* More worker domains than cores is a benchmark lie waiting to
         happen: domains time-share, per-worker throughput collapses, and
         "scaling" rows measure the scheduler.  Clamp unless the caller
         explicitly opts into oversubscription, and say so in the stats
         either way. *)
      let cores = Domain.recommended_domain_count () in
      let workers, warning =
        if config.workers <= cores then (config.workers, None)
        else if allow_oversubscribe then
          ( config.workers,
            Some
              (Printf.sprintf
                 "shard: %d workers oversubscribe %d available core(s)"
                 config.workers cores) )
        else
          ( cores,
            Some
              (Printf.sprintf
                 "shard: requested %d workers, clamped to %d available \
                  core(s)"
                 config.workers cores) )
      in
      let steal_threshold =
        match steal_threshold with
        | Some th -> th
        | None -> config.pipeline.Pipeline.batch
      in
      let steer = Steer.create ?buckets ~stealing ~steal_threshold ~workers () in
      let pipes =
        Array.init workers (fun _ ->
            Pipeline.create ~config:config.pipeline ?mode ?flight ?verify
              ?classify ?classify_id ?machine ?flow_key ?on_transition
              ?respond ?respond_patch ?respond_fmt ?on_response ?on_reply fmt)
      in
      (match warning with
      | None -> ()
      | Some w -> Array.iter (fun p -> Stats.note_warning (Pipeline.stats p) w) pipes);
      let rings =
        Array.init workers (fun _ ->
            Spsc.create ~slot_bytes:config.pipeline.Pipeline.slot_bytes
              ~capacity:config.pipeline.Pipeline.ring_capacity ())
      in
      Ok
        {
          cfg = config;
          key = ke;
          steer;
          pipes;
          rings;
          domains = [||];
          running = false;
          warning;
        }

let workers t = Array.length t.pipes
let warning t = t.warning
let worker_of_key t k = Steer.worker_of_key t.steer k
let steering t = t.steer
let rings t = t.rings

(* One worker domain: claim a batch from the ring, honour migration
   fences, run it through the pipeline in place, release.  Empty polls
   raise the hungry flag (a work-stealing request) and back off. *)
let worker_loop t w =
  let ring = t.rings.(w) in
  let pipe = t.pipes.(w) in
  let batch = t.cfg.pipeline.Pipeline.batch in
  let rec loop idle =
    match Spsc.poll ring ~max:batch with
    | -1 -> ()
    | 0 ->
      Steer.mark_hungry t.steer w;
      Spsc.backoff idle;
      loop (idle + 1)
    | n ->
      Steer.fence_wait t.steer t.rings ~me:w ~ring ~n;
      Pipeline.process_ring_batch pipe ring ~n;
      Spsc.release ring;
      loop 0
  in
  loop 0

let start t =
  if t.running then invalid_arg "Shard.start: already running";
  t.running <- true;
  t.domains <-
    Array.init (Array.length t.pipes) (fun w ->
        Domain.spawn (fun () -> worker_loop t w))

(* The steering hot path: hash the key once, lease a slot in the
   destination worker's ring, blit once, publish the index.  Nothing
   here allocates and no lock or shared counter is touched — the only
   shared write is the ring's release-store, and the only shared read is
   the consumer's head when the ring looks full (backpressure). *)
let feed t pkt =
  let key = F.View.extract_key_int t.key pkt in
  let w = Steer.route t.steer ~key in
  let ring = t.rings.(w) in
  let len = String.length pkt in
  let n = ref 0 in
  while not (Spsc.has_space ring) do
    Spsc.backoff !n;
    incr n
  done;
  Bytes.blit_string pkt 0 (Spsc.slot ring) 0 len;
  Spsc.publish ring ~tag:(Steer.last_bucket t.steer) len;
  Steer.maybe_rebalance t.steer t.rings;
  true

(* Packets are published to the rings as they are fed — there is no
   staging layer to push out any more.  Kept so pause/resume call sites
   from the staged era still compile and read naturally. *)
let flush _t = ()

let drain t =
  Array.iter Spsc.close t.rings;
  if t.running then begin
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    t.running <- false
  end

let unkeyed t = Steer.unkeyed t.steer
let steals t = Steer.steals t.steer
let pipelines t = t.pipes

let stats t =
  let merged = Stats.create Pipeline.stage_names in
  Array.iter (fun p -> Stats.merge_into ~into:merged (Pipeline.stats p)) t.pipes;
  let u = unkeyed t in
  if u > 0 then Stats.note_unkeyed ~n:u merged;
  merged
