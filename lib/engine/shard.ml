module F = Netdsl_format

type config = {
  workers : int;
  pipeline : Pipeline.config;
}

let default_config =
  { workers = Domain.recommended_domain_count ();
    pipeline = Pipeline.default_config }

type t = {
  cfg : config;
  key : F.View.key_extractor;
  pipes : Pipeline.t array;
  (* per-worker staging: packets accumulate here and are handed off in
     batches ([Pipeline.feed_batch] — one slab lock per run), not one
     lock round-trip per packet *)
  staged : string array array;
  staged_n : int array;
  mutable domains : unit Domain.t array;
  mutable running : bool;
  mutable unkeyed : int;
  warning : string option;
}

(* Fibonacci hashing of the flow key: adjacent key values (sequence
   numbers, ports) spread across workers instead of landing together. *)
let worker_of_key t k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lsr 33) mod Array.length t.pipes

let create ?(config = default_config) ?(allow_oversubscribe = false) ~key
    ?mode ?flight ?verify ?classify ?classify_id ?machine ?flow_key
    ?on_transition ?respond ?respond_patch ?respond_fmt ?on_response ?on_reply
    fmt =
  if config.workers <= 0 then Error "Shard.create: workers must be positive"
  else
    match F.View.key_extractor fmt key with
    | Error e -> Error (Printf.sprintf "Shard.create: bad key field: %s" e)
    | Ok ke ->
      (* More worker domains than cores is a benchmark lie waiting to
         happen: domains time-share, per-worker throughput collapses, and
         "scaling" rows measure the scheduler.  Clamp unless the caller
         explicitly opts into oversubscription, and say so in the stats
         either way. *)
      let cores = Domain.recommended_domain_count () in
      let workers, warning =
        if config.workers <= cores then (config.workers, None)
        else if allow_oversubscribe then
          ( config.workers,
            Some
              (Printf.sprintf
                 "shard: %d workers oversubscribe %d available core(s)"
                 config.workers cores) )
        else
          ( cores,
            Some
              (Printf.sprintf
                 "shard: requested %d workers, clamped to %d available \
                  core(s)"
                 config.workers cores) )
      in
      let pipes =
        Array.init workers (fun _ ->
            Pipeline.create ~config:config.pipeline ?mode ?flight ?verify
              ?classify ?classify_id ?machine ?flow_key ?on_transition
              ?respond ?respond_patch ?respond_fmt ?on_response ?on_reply fmt)
      in
      (match warning with
      | None -> ()
      | Some w -> Array.iter (fun p -> Stats.note_warning (Pipeline.stats p) w) pipes);
      Ok
        {
          cfg = config;
          key = ke;
          pipes;
          staged =
            Array.init workers (fun _ ->
                Array.make config.pipeline.Pipeline.batch "");
          staged_n = Array.make workers 0;
          domains = [||];
          running = false;
          unkeyed = 0;
          warning;
        }

let workers t = Array.length t.pipes
let warning t = t.warning

let start t =
  if t.running then invalid_arg "Shard.start: already running";
  t.running <- true;
  t.domains <-
    Array.map (fun p -> Domain.spawn (fun () -> Pipeline.run p)) t.pipes

let flush_worker t w =
  let n = t.staged_n.(w) in
  if n > 0 then begin
    t.staged_n.(w) <- 0;
    ignore (Pipeline.feed_batch t.pipes.(w) t.staged.(w) n)
  end

let flush t =
  for w = 0 to Array.length t.pipes - 1 do
    flush_worker t w
  done

let feed t pkt =
  let w =
    match F.View.extract_key t.key pkt with
    | Some k -> worker_of_key t k
    | None ->
      (* too short to carry the key: let worker 0's decode stage reject and
         count it, rather than dropping it invisibly here *)
      t.unkeyed <- t.unkeyed + 1;
      0
  in
  let staged = t.staged.(w) in
  staged.(t.staged_n.(w)) <- pkt;
  t.staged_n.(w) <- t.staged_n.(w) + 1;
  if t.staged_n.(w) = Array.length staged then flush_worker t w;
  true

let drain t =
  flush t;
  Array.iter Pipeline.close_input t.pipes;
  if t.running then begin
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    t.running <- false
  end

let unkeyed t = t.unkeyed
let pipelines t = t.pipes

let stats t =
  let merged = Stats.create Pipeline.stage_names in
  Array.iter (fun p -> Stats.merge_into ~into:merged (Pipeline.stats p)) t.pipes;
  merged
