(** Multicore flow sharding over OCaml 5 domains — RSS in miniature.

    A shard group owns [workers] pipelines, each consuming its own
    lock-free {!Spsc} slot ring on its own domain.  {!feed} reads the
    DSL-declared key field straight from the raw packet (a precompiled
    fixed-offset read, no decode, no allocation), hashes it {e once}
    (Fibonacci hashing, masked into a power-of-two bucket table — never
    a [mod]), leases a slot in the destination worker's ring, blits the
    packet once and publishes the slot index.  All packets of a flow
    land on the same domain, which exclusively owns that flow's machine
    instance: no locks or shared counters anywhere on the hot path —
    the hand-off is one release store per packet.

    Backpressure is the rings' bound: a producer outrunning a worker
    spins (cpu_relax → yield → brief sleep) until that worker frees a
    slot.

    {b Work stealing} (optional, off by default): an idle worker raises
    a hungry flag; the steering stage answers by re-owning half of the
    deepest-backlog victim's flow-hash {e buckets} to the thief, each
    moved bucket carrying a fence at the victim's current ring position.
    The thief's first packet of a moved bucket waits until the victim
    has {e released} past the fence, so per-flow ordering (paper §3.4)
    survives the migration — see DESIGN.md "Stealing whole buckets".
    Note that a migrated flow re-mints its machine instance on the new
    owner: stealing is meant for spec-derived responders (which read
    only decoded fields — {!Flight} enforces this) and state-tolerant
    machines. *)

type config = {
  workers : int;
  pipeline : Pipeline.config;
}

val default_config : config
(** [workers = Domain.recommended_domain_count ()]. *)

(** The steering stage, usable on its own: {!Net.Server} drives it
    directly so [netdsl serve --workers N] steers datagrams with the
    same discipline (and sink bookkeeping the server owns).  All [t]
    operations are single-threaded on the steering side unless noted. *)
module Steer : sig
  type t

  val create :
    ?buckets:int ->
    ?stealing:bool ->
    ?steal_threshold:int ->
    workers:int ->
    unit ->
    t
  (** [buckets] (default 256, rounded up to a power of two, at least
      [workers]) sizes the flow-hash bucket table — the mask domain.
      [steal_threshold] (default 64): minimum victim backlog, in
      packets, before buckets migrate.  At most 62 workers (the fence
      word packs the victim into 6 bits). *)

  val workers : t -> int
  val buckets : t -> int
  val stealing : t -> bool

  val steals : t -> int
  (** Buckets migrated so far. *)

  val unkeyed : t -> int

  val worker_of_key : t -> int -> int
  (** Pure lookup: the worker currently owning the key's bucket
      ([View.no_key] → worker 0).  One multiply, one shift, one mask. *)

  val route : t -> key:int -> int
  (** Steering thread only: route one packet — {!worker_of_key} plus
      unkeyed accounting and remembering the bucket for {!last_bucket}. *)

  val last_bucket : t -> int
  (** Bucket of the last {!route}d packet ([-1] if it was unkeyed); tag
      the published slot with it so {!fence_wait} can look fences up. *)

  val mark_hungry : t -> int -> unit
  (** Worker side: request work (no-op when stealing is off). *)

  val maybe_rebalance : t -> Spsc.t array -> unit
  (** Steering thread only, once per routed packet: every 32 packets,
      serve one hungry worker by migrating buckets (with fences) from
      the deepest victim. *)

  val fence_wait : t -> Spsc.t array -> me:int -> ring:Spsc.t -> n:int -> unit
  (** Worker side, between [Spsc.poll] and processing: for each claimed
      slot whose bucket carries a migration fence naming another worker,
      wait until that victim's released head passes the fence. *)
end

type t

val create :
  ?config:config ->
  ?allow_oversubscribe:bool ->
  ?stealing:bool ->
  ?steal_threshold:int ->
  ?buckets:int ->
  key:string ->
  ?mode:Pipeline.mode ->
  ?flight:Flight.spec ->
  ?verify:(Netdsl_format.View.t -> bool) ->
  ?classify:(Netdsl_format.View.t -> string option) ->
  ?classify_id:(Netdsl_format.View.t -> int) ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?flow_key:string ->
  ?on_transition:(Netdsl_fsm.Machine.transition -> unit) ->
  ?respond:
    (Netdsl_format.View.t -> Netdsl_fsm.Step.instance -> Netdsl_format.Value.t option) ->
  ?respond_patch:
    (Netdsl_format.View.t ->
    Netdsl_fsm.Step.instance ->
    (string * int64) list option) ->
  ?respond_fmt:Netdsl_format.Desc.t ->
  ?on_response:(string -> unit) ->
  ?on_reply:(Bytes.t -> int -> unit) ->
  Netdsl_format.Desc.t ->
  (t, string) result
(** [create ~key fmt] — [key] names the top-level field to shard on; it
    must sit at a fixed wire offset (see
    {!Netdsl_format.View.key_extractor}).  [stealing] /
    [steal_threshold] / [buckets] configure the {!Steer} stage
    (stealing defaults off; [steal_threshold] defaults to the pipeline
    batch size).  Remaining arguments are passed to each worker's
    {!Pipeline.create}.  Note that [on_response] / [on_reply] run on
    worker domains — one shared closure sees calls from all of them.

    Worker counts above [Domain.recommended_domain_count ()] are clamped
    to it — oversubscribed domains time-share a core and measure the
    scheduler, not the pipeline — unless [allow_oversubscribe] is set.
    Either way the decision is recorded as a {!Stats} warning on every
    worker (see {!warning}).  The requested count is what reports show;
    the power-of-two constraint lives in the bucket table, not the
    worker count. *)

val start : t -> unit
(** Spawns the worker domains. *)

val feed : t -> string -> bool
(** Route one packet to its flow's worker: hash once, lease a slot in
    that worker's ring, blit once, publish the index.  Blocks (bounded
    backoff) while the destination ring is full.  Allocates nothing.
    Packets too short to carry the key go to worker 0, whose decode
    stage rejects and counts them. *)

val flush : t -> unit
(** No-op since the SPSC rework: {!feed} publishes immediately, there is
    no staging layer to push out.  Kept for call-site compatibility. *)

val drain : t -> unit
(** Close all rings, wait for the workers to finish the backlog, join
    the domains. *)

val workers : t -> int
(** Actual worker count (after any clamping). *)

val warning : t -> string option
(** The oversubscription/clamp warning, if any was recorded. *)

val worker_of_key : t -> int -> int
(** Current steering decision for a flow key (moves when stealing
    migrates the key's bucket). *)

val steals : t -> int
(** Buckets migrated by work stealing so far. *)

val steering : t -> Steer.t
val rings : t -> Spsc.t array
val pipelines : t -> Pipeline.t array

val stats : t -> Stats.t
(** Per-stage stats merged across all workers, with the shard's unkeyed
    count folded in ({!Stats.unkeyed}).  Call after {!drain}, or accept
    slightly torn counters mid-run. *)

val unkeyed : t -> int
(** Packets fed that were too short to carry the key field. *)
