(** Multicore flow sharding over OCaml 5 domains.

    A shard group owns [workers] pipelines, each consuming its own
    SPSC input slab on its own domain.  {!feed} reads the DSL-declared
    key field straight from the raw packet (a precompiled fixed-offset
    read — no decode) and hashes it to pick the worker, so all packets of
    a flow land on the same domain, which exclusively owns that flow's
    machine instance: no locks anywhere on the hot path.  Packets stage
    in a per-worker batch and are handed off in whole runs
    ({!Pipeline.feed_batch} — one slab lock per run).  Backpressure is
    the slabs' bound — a producer outrunning the workers blocks when a
    batch flushes into a full slab. *)

type config = {
  workers : int;
  pipeline : Pipeline.config;
}

val default_config : config
(** [workers = Domain.recommended_domain_count ()]. *)

type t

val create :
  ?config:config ->
  ?allow_oversubscribe:bool ->
  key:string ->
  ?mode:Pipeline.mode ->
  ?flight:Flight.spec ->
  ?verify:(Netdsl_format.View.t -> bool) ->
  ?classify:(Netdsl_format.View.t -> string option) ->
  ?classify_id:(Netdsl_format.View.t -> int) ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?flow_key:string ->
  ?on_transition:(Netdsl_fsm.Machine.transition -> unit) ->
  ?respond:
    (Netdsl_format.View.t -> Netdsl_fsm.Step.instance -> Netdsl_format.Value.t option) ->
  ?respond_patch:
    (Netdsl_format.View.t ->
    Netdsl_fsm.Step.instance ->
    (string * int64) list option) ->
  ?respond_fmt:Netdsl_format.Desc.t ->
  ?on_response:(string -> unit) ->
  ?on_reply:(Bytes.t -> int -> unit) ->
  Netdsl_format.Desc.t ->
  (t, string) result
(** [create ~key fmt] — [key] names the top-level field to shard on; it
    must sit at a fixed wire offset (see
    {!Netdsl_format.View.key_extractor}).  Remaining arguments are passed
    to each worker's {!Pipeline.create}.  Note that [on_response] /
    [on_reply] run on worker domains.

    Worker counts above [Domain.recommended_domain_count ()] are clamped
    to it — oversubscribed domains time-share a core and measure the
    scheduler, not the pipeline — unless [allow_oversubscribe] is set.
    Either way the decision is recorded as a {!Stats} warning on every
    worker (see {!warning}). *)

val start : t -> unit
(** Spawns the worker domains. *)

val feed : t -> string -> bool
(** Route one packet to its flow's worker.  The packet lands in the
    worker's staging batch; a full batch flushes to the worker's slab
    (blocking while that slab is full).  Packets too short to carry the
    key go to worker 0, whose decode stage rejects and counts them. *)

val flush : t -> unit
(** Hand off all partially-filled staging batches now.  {!drain} flushes
    automatically; call this when pausing a live feed. *)

val drain : t -> unit
(** Flush staging, close all slabs, wait for the workers to finish the
    backlog, join the domains. *)

val workers : t -> int
(** Actual worker count (after any clamping). *)

val warning : t -> string option
(** The oversubscription/clamp warning, if any was recorded. *)

val pipelines : t -> Pipeline.t array

val stats : t -> Stats.t
(** Per-stage stats merged across all workers (call after {!drain}, or
    accept slightly torn counters mid-run). *)

val unkeyed : t -> int
(** Packets fed that were too short to carry the key field. *)
