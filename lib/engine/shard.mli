(** Multicore flow sharding over OCaml 5 domains.

    A shard group owns [workers] pipelines, each consuming its own bounded
    ring on its own domain.  {!feed} reads the DSL-declared key field
    straight from the raw packet (a precompiled fixed-offset read — no
    decode) and hashes it to pick the worker, so all packets of a flow land
    on the same domain, which exclusively owns that flow's machine
    instance: no locks anywhere on the hot path.  Backpressure is the
    rings' bound — a producer outrunning the workers blocks in {!feed}. *)

type config = {
  workers : int;
  pipeline : Pipeline.config;
}

val default_config : config
(** [workers = Domain.recommended_domain_count ()]. *)

type t

val create :
  ?config:config ->
  key:string ->
  ?verify:(Netdsl_format.View.t -> bool) ->
  ?classify:(Netdsl_format.View.t -> string option) ->
  ?classify_id:(Netdsl_format.View.t -> int) ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?flow_key:string ->
  ?on_transition:(Netdsl_fsm.Machine.transition -> unit) ->
  ?respond:
    (Netdsl_format.View.t -> Netdsl_fsm.Step.instance -> Netdsl_format.Value.t option) ->
  ?respond_patch:
    (Netdsl_format.View.t ->
    Netdsl_fsm.Step.instance ->
    (string * int64) list option) ->
  ?respond_fmt:Netdsl_format.Desc.t ->
  ?on_response:(string -> unit) ->
  Netdsl_format.Desc.t ->
  (t, string) result
(** [create ~key fmt] — [key] names the top-level field to shard on; it
    must sit at a fixed wire offset (see
    {!Netdsl_format.View.key_extractor}).  Remaining arguments are passed
    to each worker's {!Pipeline.create}.  Note that [on_response] runs on
    worker domains. *)

val start : t -> unit
(** Spawns the worker domains. *)

val feed : t -> string -> bool
(** Route one packet to its flow's worker (blocking when that worker's
    ring is full).  Packets too short to carry the key go to worker 0,
    whose decode stage rejects and counts them. *)

val drain : t -> unit
(** Close all rings, wait for the workers to finish the backlog, join the
    domains. *)

val workers : t -> int
val pipelines : t -> Pipeline.t array

val stats : t -> Stats.t
(** Per-stage stats merged across all workers (call after {!drain}, or
    accept slightly torn counters mid-run). *)

val unkeyed : t -> int
(** Packets fed that were too short to carry the key field. *)
