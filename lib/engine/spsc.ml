(* A lock-free single-producer / single-consumer ring of preallocated
   byte slots — the per-worker hand-off lane of [Shard].

   Layout: a power-of-two array of fixed-size [Bytes.t] slots plus
   parallel [lens]/[tags] int arrays, indexed by absolute positions
   masked into the array.  Two monotonically increasing absolute
   counters delimit the live region:

     [head]  — consumer side: first position not yet released;
     [tail]  — producer side: next position to publish.

   Only [head] and [tail] are atomic.  The slot contents, lengths and
   tags are plain writes made visible by the release/acquire pairing on
   the counters (the message-passing idiom of the OCaml memory model;
   OCaml's [Atomic] is sequentially consistent, which is stronger than
   the release/acquire this protocol needs — see DESIGN.md):

     producer: write slot bytes, len, tag  →  Atomic.set tail (release)
     consumer: Atomic.get tail (acquire)   →  read slot bytes, len, tag

   and symmetrically for slot reuse through [head].  Each side keeps a
   local cache of the other side's counter and refreshes it only when
   the ring looks full/empty, so steady-state operation touches a shared
   cache line once per batch, not once per packet.

   Nothing here allocates after [create]: push is a blit + two int
   stores + one atomic store; a poll/release round is two atomic
   operations for the whole batch. *)

(* Producer-owned and consumer-owned mutable state live in their own
   heap blocks (not inline in [t]) so the two domains don't false-share
   a cache line through the record; the [_pad] arrays keep each block —
   and the boxed head/tail atomics allocated right after them — at
   least a cache line apart.  Best effort on OCaml 5.1:
   [Atomic.make_contended] (5.2+) is the guaranteed version. *)
type producer = {
  mutable p_tail : int; (* mirror of [tail]; producer-only *)
  mutable p_head_cache : int;
  _p_pad : int array;
}

type consumer = {
  mutable c_next : int; (* mirror of [head]; consumer-only *)
  mutable c_base : int; (* claimed batch: absolute position of slot 0 *)
  mutable c_n : int; (* claimed batch length; 0 = nothing claimed *)
  mutable c_tail_cache : int;
  _c_pad : int array;
}

type t = {
  mask : int;
  slot_bytes : int;
  bufs : Bytes.t array;
  lens : int array;
  tags : int array;
  head : int Atomic.t;
  _head_pad : int array;
  tail : int Atomic.t;
  _tail_pad : int array;
  closed : bool Atomic.t;
  prod : producer;
  cons : consumer;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(slot_bytes = 2048) ~capacity () =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  if slot_bytes <= 0 then invalid_arg "Spsc.create: slot_bytes must be positive";
  let cap = next_pow2 capacity in
  let prod = { p_tail = 0; p_head_cache = 0; _p_pad = Array.make 14 0 } in
  let head = Atomic.make 0 in
  let _head_pad = Array.make 14 0 in
  let cons =
    { c_next = 0; c_base = 0; c_n = 0; c_tail_cache = 0; _c_pad = Array.make 14 0 }
  in
  let tail = Atomic.make 0 in
  let _tail_pad = Array.make 14 0 in
  {
    mask = cap - 1;
    slot_bytes;
    bufs = Array.init cap (fun _ -> Bytes.create slot_bytes);
    lens = Array.make cap 0;
    tags = Array.make cap 0;
    head;
    _head_pad;
    tail;
    _tail_pad;
    closed = Atomic.make false;
    prod;
    cons;
  }

let capacity t = t.mask + 1
let slot_bytes t = t.slot_bytes

(* ---- producer side ---- *)

let has_space t =
  let p = t.prod in
  if p.p_tail - p.p_head_cache <= t.mask then true
  else begin
    p.p_head_cache <- Atomic.get t.head;
    p.p_tail - p.p_head_cache <= t.mask
  end

let slot t = t.bufs.(t.prod.p_tail land t.mask)
let producer_pos t = t.prod.p_tail

(* [tag] is a required label: an optional argument given explicitly at a
   call site boxes a [Some] per call, which would be the only allocation
   on the steering hot path. *)
let publish t ~tag len =
  if len < 0 || len > t.slot_bytes then invalid_arg "Spsc.publish: bad len";
  let p = t.prod in
  let i = p.p_tail land t.mask in
  t.lens.(i) <- len;
  t.tags.(i) <- tag;
  let next = p.p_tail + 1 in
  p.p_tail <- next;
  Atomic.set t.tail next

let try_push t ?(tag = 0) ?(off = 0) ~len src =
  has_space t
  && begin
       Bytes.blit_string src off (slot t) 0 len;
       publish t ~tag len;
       true
     end

let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed

(* ---- consumer side ---- *)

let claim t ~max avail =
  let c = t.cons in
  let n = if avail < max then avail else max in
  c.c_base <- c.c_next;
  c.c_n <- n;
  n

let poll t ~max =
  if max <= 0 then invalid_arg "Spsc.poll: max must be positive";
  let c = t.cons in
  if c.c_n <> 0 then invalid_arg "Spsc.poll: previous batch not released";
  let avail = c.c_tail_cache - c.c_next in
  if avail > 0 then claim t ~max avail
  else begin
    c.c_tail_cache <- Atomic.get t.tail;
    let avail = c.c_tail_cache - c.c_next in
    if avail > 0 then claim t ~max avail
    else if not (Atomic.get t.closed) then 0
    else begin
      (* closed: the final publish happens-before [close], but our tail
         read above may predate the close we just observed — look once
         more before declaring the ring drained *)
      c.c_tail_cache <- Atomic.get t.tail;
      let avail = c.c_tail_cache - c.c_next in
      if avail > 0 then claim t ~max avail else -1
    end
  end

let buf t i = t.bufs.((t.cons.c_base + i) land t.mask)
let len t i = t.lens.((t.cons.c_base + i) land t.mask)
let tag t i = t.tags.((t.cons.c_base + i) land t.mask)
let consumer_pos t = t.cons.c_base

let release t =
  let c = t.cons in
  if c.c_n = 0 then invalid_arg "Spsc.release: no claimed batch";
  c.c_next <- c.c_base + c.c_n;
  c.c_n <- 0;
  Atomic.set t.head c.c_next

(* ---- any thread ---- *)

let head_pos t = Atomic.get t.head
let length t = Atomic.get t.tail - Atomic.get t.head

(* Bounded backoff for a spinning side: burn a few cycles, then yield the
   systhread, then sleep briefly — the sleep is what keeps an
   oversubscribed box (more domains than cores) from livelocking. *)
let backoff n =
  if n < 8 then Domain.cpu_relax ()
  else if n < 16 then Thread.yield ()
  else Unix.sleepf 0.00005
