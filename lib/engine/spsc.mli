(** Lock-free single-producer / single-consumer slot ring.

    The per-worker hand-off lane of {!Shard}: a power-of-two array of
    preallocated byte slots with two atomic absolute counters ([head] =
    first unreleased position, [tail] = next position to publish).  The
    producer blits a packet into the tail slot and publishes it with one
    release store; the consumer claims a whole batch with one acquire
    load and releases it with one release store.  Slot bytes, lengths
    and per-slot tags are plain (non-atomic) memory synchronised by the
    counter pairing — the message-passing idiom of the OCaml memory
    model (see DESIGN.md "SPSC memory ordering").  Nothing allocates
    after {!create}; neither side ever takes a lock.

    Single-producer / single-consumer is a {e contract}: exactly one
    thread may call the producer operations and exactly one (other)
    thread the consumer operations.  [head_pos]/[length]/[is_closed] are
    safe from any thread.

    Positions are absolute (monotonically increasing); slot index =
    [pos land (capacity - 1)].  The absolute positions are what lets
    {!Shard}'s bucket-migration fences say "worker [v] has processed
    everything it was handed before position [p]" as a single integer
    comparison against {!head_pos}. *)

type t

val create : ?slot_bytes:int -> capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two.  [slot_bytes] (default
    2048) is the fixed size of every slot. *)

val capacity : t -> int
val slot_bytes : t -> int

(** {2 Producer side} *)

val has_space : t -> bool
(** True when at least one slot is free.  Refreshes the producer's
    cached view of [head] only when the ring looks full. *)

val slot : t -> Bytes.t
(** The slot the next {!publish} will hand off — blit the packet here
    ({e lease}).  Only valid to fill after {!has_space} returned true. *)

val producer_pos : t -> int
(** Absolute position the next {!publish} will occupy. *)

val publish : t -> tag:int -> int -> unit
(** [publish t ~tag len] publishes the leased slot: stores [len] and
    [tag] ({!Shard} stores the packet's flow-hash bucket here; pass [0]
    if unused — the label is required because supplying an optional
    argument boxes a [Some] per call, the one allocation the steering
    hot path must not make), then release-stores the new tail.  The
    slot must not be touched again until the consumer releases it. *)

val try_push : t -> ?tag:int -> ?off:int -> len:int -> string -> bool
(** Lease + blit + publish in one call; false (nothing written) when the
    ring is full. *)

val close : t -> unit
(** Producer is done; the consumer's {!poll} returns [-1] once drained. *)

(** {2 Consumer side} *)

val poll : t -> max:int -> int
(** Claim up to [max] published slots.  Returns the batch length, [0]
    when the ring is momentarily empty (retry after {!backoff}), or
    [-1] when the ring is closed {e and} fully drained.  At most one
    batch may be outstanding: {!release} the previous one first. *)

val buf : t -> int -> Bytes.t
(** [buf t i] — slot bytes of the [i]-th packet of the claimed batch.
    Read-only until {!release}; contents beyond [len t i] are stale. *)

val len : t -> int -> int
val tag : t -> int -> int

val consumer_pos : t -> int
(** Absolute position of slot 0 of the claimed batch. *)

val release : t -> unit
(** Hand every slot of the claimed batch back to the producer (one
    release store).  After this the slot buffers must not be read. *)

(** {2 Any thread} *)

val is_closed : t -> bool

val head_pos : t -> int
(** Absolute position below which every packet has been processed and
    released — the migration-fence comparison point. *)

val length : t -> int
(** Published-but-unreleased slot count (approximate under concurrency:
    two independent atomic reads). *)

val backoff : int -> unit
(** Bounded wait for the [n]-th consecutive failed attempt: cpu_relax
    (n < 8), [Thread.yield] (n < 16), then a 50µs sleep — the sleep is
    what keeps oversubscribed boxes from livelocking. *)
