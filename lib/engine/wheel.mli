(** A hierarchical timing wheel keyed by flow id: the engine's notion of
    time.

    The paper's guarantee 4 (§3.4) — sending ends in success {e or
    timeout}, never stuck — needs per-flow retransmission deadlines in
    the live engine, at flow-table scale.  This wheel holds millions of
    armed timers in parallel int arrays (the zero-allocation idiom of the
    pipeline's flow table): 4 levels × 256 slots of intrusive
    doubly-linked lists, an open-addressing key → entry map, and a
    freelist — {!arm}, re-arm and {!cancel} are O(1) and allocation-free;
    {!advance} cascades a higher-level slot down exactly when the level
    below wraps, so each timer is touched O(levels) times over its life.

    One key holds at most one timer: arming an armed key {e replaces} its
    deadline and payload (the retransmission idiom — every
    data-bearing transition re-arms the flow's timer).  Ticks are
    dimensionless; the pipeline maps wall-or-virtual milliseconds onto
    them.

    Semantics proven against a sorted-list reference model (see
    [test_timers.ml]): {!advance} fires exactly the entries with
    [expiry <= now], one tick at a time, in arm order within a tick, and
    the fire callback may arm, re-arm or cancel any timer — including
    ones due in the same tick — with the mutations honoured. *)

type t

val create : ?now:int -> unit -> t
(** A fresh wheel, positioned at tick [now] (default 0). *)

val now : t -> int
(** The current tick — the time of the last {!advance}. *)

val live : t -> int
(** Armed timers currently held. *)

val arm : t -> key:int -> after:int -> ev:int -> unit
(** [arm t ~key ~after ~ev] — in [after] ticks (clamped to at least 1),
    deliver [ev] for [key] unless re-armed or cancelled first.  If [key]
    already holds a timer it is re-armed in place; an {e identical}
    re-arm (same deadline tick, same event) is a complete no-op that
    keeps the original arm order — the per-packet retransmission idiom
    costs a few loads.  O(1), amortised allocation-free ([after] beyond
    the wheel's 2^32-tick span is served correctly: the entry parks in
    the top level and re-cascades). *)

val arm_hint : t -> hint:int -> key:int -> after:int -> ev:int -> int
(** {!arm} returning the armed entry's id, and accepting the id a
    previous arm of [key] returned as [hint]: a hint that still
    designates [key]'s live entry skips the key lookup — the engine's
    per-packet re-arm path, which has already hashed [key] once for the
    flow table.  The hint is validated before use, so any stale or junk
    value (including [-1]) degrades to a plain {!arm}, never to a wrong
    timer. *)

val cancel : t -> int -> bool
(** Cancel [key]'s pending timer; [false] if none was armed.  O(1). *)

val armed : t -> int -> bool
(** Whether [key] currently holds a timer. *)

val advance : t -> now:int -> (key:int -> ev:int -> unit) -> int
(** [advance t ~now fire] moves time forward to tick [now], calling
    [fire] for every timer whose deadline was reached, in deadline order
    (arm order within a tick), and returns how many fired.  Each fired
    timer is disarmed before its callback runs, so the callback can
    re-arm the same key.  Monotone: a [now] at or before {!now} is a
    no-op.  With no timers live the wheel skips straight to [now]. *)

val next_due : t -> int
(** The next tick at which {!advance} may have something to do — the
    earliest populated level-0 slot, capped at the next cascade boundary
    (a sound "wake up no later than" deadline for a select loop; sleeping
    to it and advancing converges on the true deadline in O(levels)
    wakes).  [-1] when no timers are live. *)

(** {2 Counters} — cumulative, folded into [Stats] by the pipeline. *)

val expired : t -> int
val cancelled : t -> int
val cascaded : t -> int
