(* Fused run-to-completion flight plans.

   A [spec] states, declaratively, everything the pipeline's per-packet
   closures used to do imperatively: which fields the stages read, the
   semantic verify predicate, the event classifier, the flow key, and the
   respond-by-patching rules.  {!compile} lowers the spec against a format
   once, into two coordinated artefacts:

   - a {e fused} fast path: when the format admits a {!View.Hot} plan for
     exactly the demanded fields, one [Hot.run] decodes, validates and
     extracts the demanded registers in a single pass, and every
     condition is a precompiled closure over native-int registers — no
     [View.t], no boxed values, no per-packet allocation.  When the
     format (or a demanded field) is outside the linear subset, the fused
     path falls back to an internal reusable [View.t]: still fused
     control flow, staged decode machinery.

   - {e staged} derivations ({!staged_verify}, {!staged_classify_id},
     {!staged_respond_patch}): the same spec expressed as the closures
     [Pipeline.create] has always taken, so [Staged] and [Fused] modes of
     one pipeline run the {e same semantics} from the same source of
     truth and can be diffed by the oracle.

   Ordering guarantee (paper §3.4): [run] performs the {e complete}
   syntactic validation of the packet — every constant, constraint,
   computed field and checksum — before returning, and the pipeline
   consults [verify] before any classify/step/respond op.  Fusion changes
   where the work happens, never its order. *)

module F = Netdsl_format
module Fsm = Netdsl_fsm

(* ---- spec ---- *)

type operand = Field of string | Const of int64

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * operand * operand
  | All of cond list
  | Any of cond list
  | Not of cond

type rule = { ev_when : cond; ev_name : string }
type action = { set_field : string; set_to : operand }
type response = { re_when : cond; re_set : action list }

type spec = {
  sp_demand : string list;
  sp_verify : cond option;
  sp_classify : rule list;
  sp_flow_key : string option;
  sp_respond : response list;
}

let spec ?(demand = []) ?verify ?(classify = []) ?flow_key ?(respond = []) () =
  { sp_demand = demand; sp_verify = verify; sp_classify = classify;
    sp_flow_key = flow_key; sp_respond = respond }

let rec cond_fields acc = function
  | Cmp (_, a, b) -> operand_field (operand_field acc a) b
  | All cs | Any cs -> List.fold_left cond_fields acc cs
  | Not c -> cond_fields acc c

and operand_field acc = function Field f -> f :: acc | Const _ -> acc

let spec_fields s =
  let acc = s.sp_demand in
  let acc = match s.sp_flow_key with None -> acc | Some f -> f :: acc in
  let acc =
    match s.sp_verify with None -> acc | Some c -> cond_fields acc c
  in
  let acc =
    List.fold_left (fun acc r -> cond_fields acc r.ev_when) acc s.sp_classify
  in
  let acc =
    List.fold_left
      (fun acc r ->
        let acc = cond_fields acc r.re_when in
        List.fold_left (fun acc a -> operand_field acc a.set_to) acc r.re_set)
      acc s.sp_respond
  in
  List.sort_uniq String.compare acc

(* ---- compiled form ---- *)

(* Event id for a classified name the plan does not know — same sentinel
   as [Pipeline.unknown_event]: refused by [Step.fire_id] as
   [Unknown_event] rather than mistaken for pass-through. *)
let unknown_event = max_int

type engine =
  | Linear of F.View.Hot.t  (* fused fast path: registers, no View.t *)
  | Interp of F.View.t  (* fallback: fused control flow, staged decode *)

type crule = {
  (* classify rule: precompiled guard on each side, interned event id *)
  c_hot : unit -> bool;
  c_view : F.View.t -> bool;
  c_ev : int;
}

type caction = {
  a_patcher : (F.Emit.patcher, string) result;
  a_field : string;
  a_hot : unit -> int64;  (* boxed once per applied patch, unavoidable *)
  a_view : F.View.t -> int64 option;
}

type cresponse = {
  r_hot : unit -> bool;
  r_view : F.View.t -> bool;
  r_set : caction array;
}

type t = {
  fmt : F.Desc.t;
  sp_key : string option;
  engine : engine;
  verify_hot : (unit -> bool) option;
  verify_view : (F.View.t -> bool) option;
  classify : crule array;
  responses : cresponse array;
  key_hot : (unit -> int) option;  (* flow key as a native int *)
  key_view : (F.View.t -> int64 option) option;
  has_classify : bool;
  mutable last_err : F.Codec.error option;
}

let apply0 f = f ()

(* int-side comparison; registers are exact native ints in [0, 2^62). *)
let cmp_int op x y =
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let cmp_i64 op x y =
  let c = Int64.compare x y in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let ttrue () = true
let tfalse () = false

(* ---- hot-side lowering (registers) ---- *)

(* A constant outside native-int range can never equal a register value
   (registers are < 2^62): fold the comparison to its known truth. *)
let fold_high op =
  (* register value is strictly less than the constant *)
  match op with Eq | Gt | Ge -> tfalse | Ne | Lt | Le -> ttrue

let fold_low op =
  (* register value is strictly greater than the constant *)
  match op with Eq | Lt | Le -> tfalse | Ne | Gt | Ge -> ttrue

let int_of_const c =
  if Int64.compare c (Int64.of_int max_int) > 0 then `High
  else if Int64.compare c (Int64.of_int min_int) < 0 then `Low
  else `Int (Int64.to_int c)

let compile_cmp_hot h op a b =
  let slot f = F.View.Hot.demand_slot h f in
  match (a, b) with
  | Field fa, Field fb ->
    let sa = slot fa and sb = slot fb in
    fun () -> cmp_int op (F.View.Hot.get h sa) (F.View.Hot.get h sb)
  | Field fa, Const c -> (
    let sa = slot fa in
    match int_of_const c with
    | `Int ci -> fun () -> cmp_int op (F.View.Hot.get h sa) ci
    | `High -> fold_high op
    | `Low -> fold_low op)
  | Const c, Field fb -> (
    let sb = slot fb in
    match int_of_const c with
    | `Int ci -> fun () -> cmp_int op ci (F.View.Hot.get h sb)
    | `High -> fold_low op (* constant above any register value *)
    | `Low -> fold_high op)
  | Const ca, Const cb -> if cmp_i64 op ca cb then ttrue else tfalse

let rec compile_cond_hot h = function
  | Cmp (op, a, b) -> compile_cmp_hot h op a b
  | All cs ->
    let cs = List.map (compile_cond_hot h) cs in
    fun () -> List.for_all apply0 cs
  | Any cs ->
    let cs = List.map (compile_cond_hot h) cs in
    fun () -> List.exists apply0 cs
  | Not c ->
    let c = compile_cond_hot h c in
    fun () -> not (c ())

(* ---- view-side lowering (the staged semantics, shared by the fallback
   engine and by the staged derivations — identical by construction) ---- *)

let compile_operand_view = function
  | Const c -> fun _ -> Some c
  | Field f -> fun view -> F.View.find_int view f

(* A comparison over a field the view cannot produce is [false]: the spec
   asked about a value the packet does not carry. *)
let compile_cmp_view op a b =
  let ga = compile_operand_view a and gb = compile_operand_view b in
  fun view ->
    match (ga view, gb view) with
    | Some x, Some y -> cmp_i64 op x y
    | _ -> false

let rec compile_cond_view = function
  | Cmp (op, a, b) -> compile_cmp_view op a b
  | All cs ->
    let cs = List.map compile_cond_view cs in
    fun view -> List.for_all (fun c -> c view) cs
  | Any cs ->
    let cs = List.map compile_cond_view cs in
    fun view -> List.exists (fun c -> c view) cs
  | Not c ->
    let c = compile_cond_view c in
    fun view -> not (c view)

(* ---- compile ---- *)

let compile ?plan fmt sp =
  let demand = spec_fields sp in
  let engine =
    match F.View.Hot.compile ~demand fmt with
    | Ok h -> Linear h
    | Error _ -> Interp (F.View.create fmt)
  in
  let hot_of cond =
    match engine with
    | Linear h -> compile_cond_hot h cond
    | Interp _ -> ttrue (* never consulted on the fallback engine *)
  in
  let event_of name =
    match plan with
    | None -> unknown_event
    | Some p ->
      let id = Fsm.Step.event_id p name in
      if id < 0 then unknown_event else id
  in
  let classify =
    Array.of_list
      (List.map
         (fun r ->
           { c_hot = hot_of r.ev_when;
             c_view = compile_cond_view r.ev_when;
             c_ev = event_of r.ev_name })
         sp.sp_classify)
  in
  let compile_action a =
    let a_hot =
      match (engine, a.set_to) with
      | Linear h, Field f ->
        let s = F.View.Hot.demand_slot h f in
        fun () -> Int64.of_int (F.View.Hot.get h s)
      | _, Const c -> fun () -> c
      | Interp _, Field _ -> fun () -> 0L (* never consulted *)
    in
    { a_patcher = F.Emit.patcher fmt a.set_field;
      a_field = a.set_field;
      a_hot;
      a_view = compile_operand_view a.set_to }
  in
  let responses =
    Array.of_list
      (List.map
         (fun r ->
           { r_hot = hot_of r.re_when;
             r_view = compile_cond_view r.re_when;
             r_set = Array.of_list (List.map compile_action r.re_set) })
         sp.sp_respond)
  in
  let key_hot, key_view =
    match sp.sp_flow_key with
    | None -> (None, None)
    | Some f ->
      let hot =
        match engine with
        | Linear h ->
          let s = F.View.Hot.demand_slot h f in
          Some (fun () -> F.View.Hot.get h s)
        | Interp _ -> None
      in
      (hot, Some (fun view -> F.View.find_int view f))
  in
  {
    fmt;
    sp_key = sp.sp_flow_key;
    engine;
    verify_hot = Option.map hot_of sp.sp_verify;
    verify_view = Option.map compile_cond_view sp.sp_verify;
    classify;
    responses;
    key_hot;
    key_view;
    has_classify = sp.sp_classify <> [];
    last_err = None;
  }

let tier t = match t.engine with Linear _ -> `Linear | Interp _ -> `Interp
let format t = t.fmt
let flow_key_name t = t.sp_key

(* ---- fused per-packet interface ---- *)

let run_window t ~off ~len data =
  match t.engine with
  | Linear h -> F.View.Hot.run_window h ~off ~len data
  | Interp v -> (
    match F.View.decode v ~off ~len data with
    | Ok () ->
      t.last_err <- None;
      true
    | Error e ->
      t.last_err <- Some e;
      false)

let run t ?(off = 0) ?len data =
  let len = match len with None -> String.length data - off | Some l -> l in
  run_window t ~off ~len data

let last_error t = t.last_err

let verify_armed t = t.verify_view <> None

let verify_ok t =
  match t.engine with
  | Linear _ -> ( match t.verify_hot with None -> true | Some c -> c ())
  | Interp v -> ( match t.verify_view with None -> true | Some c -> c v)

let classify_armed t = t.has_classify

(* First matching rule wins; no match means the packet does not concern
   the machine (pass-through, -1) — same contract as the staged
   classifier closure. *)
let event t =
  (* while-loops, not a local recursive closure: this runs per packet on
     the fused fast path and must not allocate *)
  let arr = t.classify in
  let n = Array.length arr in
  let found = ref (-1) in
  let i = ref 0 in
  (match t.engine with
  | Linear _ ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).c_hot () then
        found := (Array.unsafe_get arr !i).c_ev;
      incr i
    done
  | Interp v ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).c_view v then
        found := (Array.unsafe_get arr !i).c_ev;
      incr i
    done);
  !found

(* Flow key as a native int; [min_int] means "no key on this packet"
   (fall back to the shared default instance, as the staged path does
   when [find_int] returns [None]).  Wide keys are truncated by
   [Int64.to_int] identically in both modes. *)
let no_key = min_int

let flow_key t =
  match t.engine with
  | Linear _ -> ( match t.key_hot with None -> no_key | Some k -> k ())
  | Interp v -> (
    match t.key_view with
    | None -> no_key
    | Some k -> ( match k v with None -> no_key | Some k -> Int64.to_int k))

let response t =
  let arr = t.responses in
  let n = Array.length arr in
  let found = ref (-1) in
  let i = ref 0 in
  (match t.engine with
  | Linear _ ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).r_hot () then found := !i;
      incr i
    done
  | Interp v ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).r_view v then found := !i;
      incr i
    done);
  !found

let apply t idx buf ~len =
  let r = t.responses.(idx) in
  let n = Array.length r.r_set in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let a = r.r_set.(!i) in
    (match a.a_patcher with
    | Error _ -> ok := false
    | Ok p -> (
      match t.engine with
      | Linear _ -> (
        match F.Emit.patch_window p ~off:0 ~len buf (a.a_hot ()) with
        | Ok () -> ()
        | Error _ -> ok := false)
      | Interp view -> (
        match a.a_view view with
        | None -> ok := false
        | Some v -> (
          match F.Emit.patch_window p ~off:0 ~len buf v with
          | Ok () -> ()
          | Error _ -> ok := false))));
    incr i
  done;
  !ok

let n_responses t = Array.length t.responses

(* ---- staged derivations ----

   The same spec as the closures [Pipeline.create] has always taken.
   These consult only the view-side lowering, which the fallback engine
   shares verbatim — so Staged and the Interp-tier Fused path are the
   same code, and the Linear tier is diffed against it by the oracle. *)

let staged_verify t = t.verify_view

let staged_classify_id t =
  if not t.has_classify then None
  else
    Some
      (fun view ->
        let n = Array.length t.classify in
        let rec go i =
          if i >= n then -1
          else if t.classify.(i).c_view view then t.classify.(i).c_ev
          else go (i + 1)
        in
        go 0)

let staged_respond_patch t =
  if Array.length t.responses = 0 then None
  else
    Some
      (fun view ->
        let n = Array.length t.responses in
        let rec pick i =
          if i >= n then None
          else if t.responses.(i).r_view view then Some t.responses.(i)
          else pick (i + 1)
        in
        match pick 0 with
        | None -> None
        | Some r ->
          Some
            (Array.to_list r.r_set
            |> List.map (fun a ->
                   match a.a_view view with
                   | Some v -> (a.a_field, v)
                   | None ->
                     (* source field absent: emit an impossible mutation
                        so the staged encode stage rejects the packet,
                        exactly as the fused [apply] does *)
                     ("", 0L))))
