(* Fused run-to-completion flight plans.

   A [spec] states, declaratively, everything the pipeline's per-packet
   closures used to do imperatively: which fields the stages read, the
   semantic verify predicate, the event classifier, the flow key, and the
   respond-by-patching rules.  {!compile} lowers the spec against a format
   once, into two coordinated artefacts:

   - a {e fused} fast path: when the format admits a {!View.Hot} plan for
     exactly the demanded fields, one [Hot.run] decodes, validates and
     extracts the demanded registers in a single pass, and every
     condition is a precompiled closure over native-int registers — no
     [View.t], no boxed values, no per-packet allocation.  When the
     format (or a demanded field) is outside the linear subset, the fused
     path falls back to an internal reusable [View.t]: still fused
     control flow, staged decode machinery.

   - {e staged} derivations ({!staged_verify}, {!staged_classify_id},
     {!staged_respond_patch}): the same spec expressed as the closures
     [Pipeline.create] has always taken, so [Staged] and [Fused] modes of
     one pipeline run the {e same semantics} from the same source of
     truth and can be diffed by the oracle.

   Ordering guarantee (paper §3.4): [run] performs the {e complete}
   syntactic validation of the packet — every constant, constraint,
   computed field and checksum — before returning, and the pipeline
   consults [verify] before any classify/step/respond op.  Fusion changes
   where the work happens, never its order. *)

module F = Netdsl_format
module Fsm = Netdsl_fsm

(* ---- spec ---- *)

type operand = Field of string | Const of int64

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * operand * operand
  | All of cond list
  | Any of cond list
  | Not of cond

type rule = { ev_when : cond; ev_name : string }
type action = { set_field : string; set_to : operand }
type response = { re_when : cond; re_set : action list }

type spec = {
  sp_demand : string list;
  sp_verify : cond option;
  sp_classify : rule list;
  sp_flow_key : string option;
  sp_respond : response list;
}

let spec ?(demand = []) ?verify ?(classify = []) ?flow_key ?(respond = []) () =
  { sp_demand = demand; sp_verify = verify; sp_classify = classify;
    sp_flow_key = flow_key; sp_respond = respond }

let spec_flow_key s = s.sp_flow_key

let rec cond_fields acc = function
  | Cmp (_, a, b) -> operand_field (operand_field acc a) b
  | All cs | Any cs -> List.fold_left cond_fields acc cs
  | Not c -> cond_fields acc c

and operand_field acc = function Field f -> f :: acc | Const _ -> acc

let spec_fields s =
  let acc = s.sp_demand in
  let acc = match s.sp_flow_key with None -> acc | Some f -> f :: acc in
  let acc =
    match s.sp_verify with None -> acc | Some c -> cond_fields acc c
  in
  let acc =
    List.fold_left (fun acc r -> cond_fields acc r.ev_when) acc s.sp_classify
  in
  let acc =
    List.fold_left
      (fun acc r ->
        let acc = cond_fields acc r.re_when in
        List.fold_left (fun acc a -> operand_field acc a.set_to) acc r.re_set)
      acc s.sp_respond
  in
  List.sort_uniq String.compare acc

(* ---- compiled form ---- *)

(* Event id for a classified name the plan does not know — same sentinel
   as [Pipeline.unknown_event]: refused by [Step.fire_id] as
   [Unknown_event] rather than mistaken for pass-through. *)
let unknown_event = max_int

(* Flow-key sentinel for "this packet carries no key". *)
let no_key = min_int

type engine =
  | Linear of F.View.Hot.t  (* fused fast path: registers, no View.t *)
  | Interp of F.View.t  (* fallback: fused control flow, staged decode *)
  | Stacked of F.Stack.plan  (* fused layered chain: qualified registers *)

type crule = {
  (* classify rule: precompiled guard on each side, interned event id *)
  c_hot : unit -> bool;
  c_view : F.View.t -> bool;
  c_ev : int;
}

type caction = {
  a_patcher : (F.Emit.patcher, string) result;
  a_field : string;
  a_layer : int;  (* Stacked engine: owning layer index; -1 otherwise *)
  a_hot : unit -> int64;
  (* unboxed source for the fused tiers — [Some] whenever the value is a
     native-int register or an in-range constant, so the applied patch
     allocates nothing ([a_hot] is the boxing fallback) *)
  a_hot_int : (unit -> int) option;
  a_view : F.View.t -> int64 option;
}

type cresponse = {
  r_hot : unit -> bool;
  r_view : F.View.t -> bool;
  r_set : caction array;
}

type t = {
  fmt : F.Desc.t;
  sp_key : string option;
  engine : engine;
  verify_hot : (unit -> bool) option;
  verify_view : (F.View.t -> bool) option;
  classify : crule array;
  responses : cresponse array;
  key_hot : (unit -> int) option;  (* flow key as a native int *)
  key_view : (F.View.t -> int64 option) option;
  has_classify : bool;
  mutable last_err : F.Codec.error option;
}

let apply0 f = f ()

(* int-side comparison; registers are exact native ints in [0, 2^62). *)
let cmp_int op x y =
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let cmp_i64 op x y =
  let c = Int64.compare x y in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let ttrue () = true
let tfalse () = false

(* ---- hot-side lowering (registers) ---- *)

(* A constant outside native-int range can never equal a register value
   (registers are < 2^62): fold the comparison to its known truth. *)
let fold_high op =
  (* register value is strictly less than the constant *)
  match op with Eq | Gt | Ge -> tfalse | Ne | Lt | Le -> ttrue

let fold_low op =
  (* register value is strictly greater than the constant *)
  match op with Eq | Lt | Le -> tfalse | Ne | Gt | Ge -> ttrue

let int_of_const c =
  if Int64.compare c (Int64.of_int max_int) > 0 then `High
  else if Int64.compare c (Int64.of_int min_int) < 0 then `Low
  else `Int (Int64.to_int c)

let compile_cmp_hot h op a b =
  let slot f = F.View.Hot.demand_slot h f in
  match (a, b) with
  | Field fa, Field fb ->
    let sa = slot fa and sb = slot fb in
    fun () -> cmp_int op (F.View.Hot.get h sa) (F.View.Hot.get h sb)
  | Field fa, Const c -> (
    let sa = slot fa in
    match int_of_const c with
    | `Int ci -> fun () -> cmp_int op (F.View.Hot.get h sa) ci
    | `High -> fold_high op
    | `Low -> fold_low op)
  | Const c, Field fb -> (
    let sb = slot fb in
    match int_of_const c with
    | `Int ci -> fun () -> cmp_int op ci (F.View.Hot.get h sb)
    | `High -> fold_low op (* constant above any register value *)
    | `Low -> fold_high op)
  | Const ca, Const cb -> if cmp_i64 op ca cb then ttrue else tfalse

let rec compile_cond_hot h = function
  | Cmp (op, a, b) -> compile_cmp_hot h op a b
  | All cs ->
    let cs = List.map (compile_cond_hot h) cs in
    fun () -> List.for_all apply0 cs
  | Any cs ->
    let cs = List.map (compile_cond_hot h) cs in
    fun () -> List.exists apply0 cs
  | Not c ->
    let c = compile_cond_hot h c in
    fun () -> not (c ())

(* ---- stack-side lowering (chain registers) ----

   Same shape as the hot side over [Stack.reg_get] registers, with one
   extra rule: [reg_get] returns -1 when the accepted packet's variant
   case does not carry the field (register values are never negative), and
   a comparison over an absent field is [false] — the same semantics the
   view side gives [find_int] = [None]. *)

let stack_reg p f =
  match F.Stack.reg p f with
  | Ok r -> r
  | Error e -> invalid_arg ("Flight: " ^ e)

let compile_cmp_stack p op a b =
  match (a, b) with
  | Field fa, Field fb ->
    let ra = stack_reg p fa and rb = stack_reg p fb in
    fun () ->
      let x = F.Stack.reg_get p ra in
      x >= 0
      &&
      let y = F.Stack.reg_get p rb in
      y >= 0 && cmp_int op x y
  | Field fa, Const c -> (
    let ra = stack_reg p fa in
    match int_of_const c with
    | `Int ci ->
      fun () ->
        let x = F.Stack.reg_get p ra in
        x >= 0 && cmp_int op x ci
    | `High ->
      let k = fold_high op in
      fun () -> F.Stack.reg_get p ra >= 0 && k ()
    | `Low ->
      let k = fold_low op in
      fun () -> F.Stack.reg_get p ra >= 0 && k ())
  | Const c, Field fb -> (
    let rb = stack_reg p fb in
    match int_of_const c with
    | `Int ci ->
      fun () ->
        let y = F.Stack.reg_get p rb in
        y >= 0 && cmp_int op ci y
    | `High ->
      let k = fold_low op in
      fun () -> F.Stack.reg_get p rb >= 0 && k ()
    | `Low ->
      let k = fold_high op in
      fun () -> F.Stack.reg_get p rb >= 0 && k ())
  | Const ca, Const cb -> if cmp_i64 op ca cb then ttrue else tfalse

let rec compile_cond_stack p = function
  | Cmp (op, a, b) -> compile_cmp_stack p op a b
  | All cs ->
    let cs = List.map (compile_cond_stack p) cs in
    fun () -> List.for_all apply0 cs
  | Any cs ->
    let cs = List.map (compile_cond_stack p) cs in
    fun () -> List.exists apply0 cs
  | Not c ->
    let c = compile_cond_stack p c in
    fun () -> not (c ())

(* ---- view-side lowering (the staged semantics, shared by the fallback
   engine and by the staged derivations — identical by construction) ---- *)

let compile_operand_view = function
  | Const c -> fun _ -> Some c
  | Field f -> fun view -> F.View.find_int view f

(* A comparison over a field the view cannot produce is [false]: the spec
   asked about a value the packet does not carry. *)
let compile_cmp_view op a b =
  let ga = compile_operand_view a and gb = compile_operand_view b in
  fun view ->
    match (ga view, gb view) with
    | Some x, Some y -> cmp_i64 op x y
    | _ -> false

let rec compile_cond_view = function
  | Cmp (op, a, b) -> compile_cmp_view op a b
  | All cs ->
    let cs = List.map compile_cond_view cs in
    fun view -> List.for_all (fun c -> c view) cs
  | Any cs ->
    let cs = List.map compile_cond_view cs in
    fun view -> List.exists (fun c -> c view) cs
  | Not c ->
    let c = compile_cond_view c in
    fun view -> not (c view)

(* ---- compile ---- *)

let compile ?plan fmt sp =
  let demand = spec_fields sp in
  let engine =
    match F.View.Hot.compile ~demand fmt with
    | Ok h -> Linear h
    | Error _ -> Interp (F.View.create fmt)
  in
  let hot_of cond =
    match engine with
    | Linear h -> compile_cond_hot h cond
    (* never consulted on the fallback engine; [Stacked] never reaches
       here — it is built only by [compile_stack] *)
    | Interp _ | Stacked _ -> ttrue
  in
  let event_of name =
    match plan with
    | None -> unknown_event
    | Some p ->
      let id = Fsm.Step.event_id p name in
      if id < 0 then unknown_event else id
  in
  let classify =
    Array.of_list
      (List.map
         (fun r ->
           { c_hot = hot_of r.ev_when;
             c_view = compile_cond_view r.ev_when;
             c_ev = event_of r.ev_name })
         sp.sp_classify)
  in
  let compile_action a =
    let a_hot =
      match (engine, a.set_to) with
      | Linear h, Field f ->
        let s = F.View.Hot.demand_slot h f in
        fun () -> Int64.of_int (F.View.Hot.get h s)
      | _, Const c -> fun () -> c
      | (Interp _ | Stacked _), Field _ -> fun () -> 0L (* never consulted *)
    in
    let a_hot_int =
      match (engine, a.set_to) with
      | Linear h, Field f ->
        let s = F.View.Hot.demand_slot h f in
        Some (fun () -> F.View.Hot.get h s)
      | _, Const c -> (
        match int_of_const c with
        | `Int ci -> Some (fun () -> ci)
        | `High | `Low -> None)
      | (Interp _ | Stacked _), Field _ -> None
    in
    { a_patcher = F.Emit.patcher fmt a.set_field;
      a_field = a.set_field;
      a_layer = -1;
      a_hot;
      a_hot_int;
      a_view = compile_operand_view a.set_to }
  in
  let responses =
    Array.of_list
      (List.map
         (fun r ->
           { r_hot = hot_of r.re_when;
             r_view = compile_cond_view r.re_when;
             r_set = Array.of_list (List.map compile_action r.re_set) })
         sp.sp_respond)
  in
  let key_hot, key_view =
    match sp.sp_flow_key with
    | None -> (None, None)
    | Some f ->
      let hot =
        match engine with
        | Linear h ->
          let s = F.View.Hot.demand_slot h f in
          Some (fun () -> F.View.Hot.get h s)
        | Interp _ | Stacked _ -> None
      in
      (hot, Some (fun view -> F.View.find_int view f))
  in
  {
    fmt;
    sp_key = sp.sp_flow_key;
    engine;
    verify_hot = Option.map hot_of sp.sp_verify;
    verify_view = Option.map compile_cond_view sp.sp_verify;
    classify;
    responses;
    key_hot;
    key_view;
    has_classify = sp.sp_classify <> [];
    last_err = None;
  }

(* ---- compile against a layered stack ----

   The chain analogue of {!compile}: every spec field is a qualified
   ["layer.field"] register of the compiled {!Stack.plan}, actions patch
   inside the owning layer's recorded window, and there is no staged
   side — chains are a fused-only construct, diffed against the
   sequential {!Stack.Seq} reference by the chain oracle instead. *)

let split_qualified f =
  match String.index_opt f '.' with
  | None ->
    Error (Printf.sprintf "field %S is not a qualified layer.field name" f)
  | Some i ->
    Ok (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    Result.bind (f x) (fun y ->
        Result.bind (map_result f tl) (fun tl -> Ok (y :: tl)))

let compile_stack ?plan stack sp =
  let ( let* ) = Result.bind in
  let* p = F.Stack.compile ~demand:(spec_fields sp) stack in
  let stack_of cond = compile_cond_stack p cond in
  let event_of name =
    match plan with
    | None -> unknown_event
    | Some mp ->
      let id = Fsm.Step.event_id mp name in
      if id < 0 then unknown_event else id
  in
  let classify =
    Array.of_list
      (List.map
         (fun r ->
           { c_hot = stack_of r.ev_when;
             c_view = (fun _ -> false);
             c_ev = event_of r.ev_name })
         sp.sp_classify)
  in
  let compile_action a =
    let* lname, fname = split_qualified a.set_field in
    let* idx =
      match F.Stack.layer_index p lname with
      | Some i -> Ok i
      | None ->
        Error
          (Printf.sprintf "respond: %S names no layer of stack %s" a.set_field
             (F.Stack.name (F.Stack.stack p)))
    in
    let a_hot =
      match a.set_to with
      | Const c -> fun () -> c
      | Field f ->
        (* an absent source reads -1, which the patcher refuses as
           out-of-range — the respond fails, exactly as the staged path's
           impossible ("", 0) patch would *)
        let r = stack_reg p f in
        fun () -> Int64.of_int (F.Stack.reg_get p r)
    in
    let a_hot_int =
      match a.set_to with
      | Const c -> (
        match int_of_const c with
        | `Int ci -> Some (fun () -> ci)
        | `High | `Low -> None)
      | Field f ->
        let r = stack_reg p f in
        Some (fun () -> F.Stack.reg_get p r)
    in
    Ok
      { a_patcher = F.Emit.patcher (F.Stack.layer_fmt p idx) fname;
        a_field = a.set_field;
        a_layer = idx;
        a_hot;
        a_hot_int;
        a_view = (fun _ -> None) }
  in
  let* responses =
    map_result
      (fun r ->
        let* set = map_result compile_action r.re_set in
        Ok
          { r_hot = stack_of r.re_when;
            r_view = (fun _ -> false);
            r_set = Array.of_list set })
      sp.sp_respond
  in
  let key_hot =
    match sp.sp_flow_key with
    | None -> None
    | Some f ->
      let r = stack_reg p f in
      Some
        (fun () ->
          let v = F.Stack.reg_get p r in
          if v < 0 then no_key else v)
  in
  Ok
    {
      fmt = F.Stack.layer_fmt p 0;
      sp_key = sp.sp_flow_key;
      engine = Stacked p;
      verify_hot = Option.map stack_of sp.sp_verify;
      verify_view = None;
      classify;
      responses = Array.of_list responses;
      key_hot;
      key_view = None;
      has_classify = sp.sp_classify <> [];
      last_err = None;
    }

let tier t =
  match t.engine with
  | Linear _ -> `Linear
  | Interp _ -> `Interp
  | Stacked _ -> `Stacked

let format t = t.fmt
let flow_key_name t = t.sp_key

let stack_plan t =
  match t.engine with Stacked p -> Some p | Linear _ | Interp _ -> None

(* ---- fused per-packet interface ---- *)

let run_window t ~off ~len data =
  match t.engine with
  | Linear h -> F.View.Hot.run_window h ~off ~len data
  | Stacked p -> F.Stack.run_window p ~off ~len data
  | Interp v -> (
    match F.View.decode v ~off ~len data with
    | Ok () ->
      t.last_err <- None;
      true
    | Error e ->
      t.last_err <- Some e;
      false)

let run t ?(off = 0) ?len data =
  let len = match len with None -> String.length data - off | Some l -> l in
  run_window t ~off ~len data

let last_error t = t.last_err

let verify_armed t = t.verify_view <> None || t.verify_hot <> None

let verify_ok t =
  match t.engine with
  | Linear _ | Stacked _ -> (
    match t.verify_hot with None -> true | Some c -> c ())
  | Interp v -> ( match t.verify_view with None -> true | Some c -> c v)

let classify_armed t = t.has_classify

(* First matching rule wins; no match means the packet does not concern
   the machine (pass-through, -1) — same contract as the staged
   classifier closure. *)
let event t =
  (* while-loops, not a local recursive closure: this runs per packet on
     the fused fast path and must not allocate *)
  let arr = t.classify in
  let n = Array.length arr in
  let found = ref (-1) in
  let i = ref 0 in
  (match t.engine with
  | Linear _ | Stacked _ ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).c_hot () then
        found := (Array.unsafe_get arr !i).c_ev;
      incr i
    done
  | Interp v ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).c_view v then
        found := (Array.unsafe_get arr !i).c_ev;
      incr i
    done);
  !found

(* Flow key as a native int; [no_key] = [min_int] means "no key on this
   packet" (fall back to the shared default instance, as the staged path
   does when [find_int] returns [None]).  Wide keys are truncated by
   [Int64.to_int] identically in both modes. *)

let flow_key t =
  match t.engine with
  | Linear _ | Stacked _ -> (
    match t.key_hot with None -> no_key | Some k -> k ())
  | Interp v -> (
    match t.key_view with
    | None -> no_key
    | Some k -> ( match k v with None -> no_key | Some k -> Int64.to_int k))

let response t =
  let arr = t.responses in
  let n = Array.length arr in
  let found = ref (-1) in
  let i = ref 0 in
  (match t.engine with
  | Linear _ | Stacked _ ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).r_hot () then found := !i;
      incr i
    done
  | Interp v ->
    while !found < 0 && !i < n do
      if (Array.unsafe_get arr !i).r_view v then found := !i;
      incr i
    done);
  !found

let apply t idx buf ~len =
  let r = t.responses.(idx) in
  let n = Array.length r.r_set in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let a = r.r_set.(!i) in
    (match a.a_patcher with
    | Error _ -> ok := false
    | Ok p -> (
      match t.engine with
      | Linear _ -> (
        let r =
          match a.a_hot_int with
          | Some g -> F.Emit.patch_window_int p ~off:0 ~len buf (g ())
          | None -> F.Emit.patch_window p ~off:0 ~len buf (a.a_hot ())
        in
        match r with Ok () -> () | Error _ -> ok := false)
      | Stacked sp -> (
        (* the reply buffer is a byte copy of the accepted request, so the
           chain's recorded layer windows are valid patch targets *)
        let loff = F.Stack.layer_off sp a.a_layer
        and llen = F.Stack.layer_len sp a.a_layer in
        let r =
          match a.a_hot_int with
          | Some g -> F.Emit.patch_window_int p ~off:loff ~len:llen buf (g ())
          | None -> F.Emit.patch_window p ~off:loff ~len:llen buf (a.a_hot ())
        in
        match r with Ok () -> () | Error _ -> ok := false)
      | Interp view -> (
        match a.a_view view with
        | None -> ok := false
        | Some v -> (
          match F.Emit.patch_window p ~off:0 ~len buf v with
          | Ok () -> ()
          | Error _ -> ok := false))));
    incr i
  done;
  !ok

let n_responses t = Array.length t.responses

(* ---- staged derivations ----

   The same spec as the closures [Pipeline.create] has always taken.
   These consult only the view-side lowering, which the fallback engine
   shares verbatim — so Staged and the Interp-tier Fused path are the
   same code, and the Linear tier is diffed against it by the oracle. *)

let is_stacked t = match t.engine with Stacked _ -> true | _ -> false
let staged_verify t = t.verify_view

let staged_classify_id t =
  if (not t.has_classify) || is_stacked t then None
  else
    Some
      (fun view ->
        let n = Array.length t.classify in
        let rec go i =
          if i >= n then -1
          else if t.classify.(i).c_view view then t.classify.(i).c_ev
          else go (i + 1)
        in
        go 0)

let staged_respond_patch t =
  if Array.length t.responses = 0 || is_stacked t then None
  else
    Some
      (fun view ->
        let n = Array.length t.responses in
        let rec pick i =
          if i >= n then None
          else if t.responses.(i).r_view view then Some t.responses.(i)
          else pick (i + 1)
        in
        match pick 0 with
        | None -> None
        | Some r ->
          Some
            (Array.to_list r.r_set
            |> List.map (fun a ->
                   match a.a_view view with
                   | Some v -> (a.a_field, v)
                   | None ->
                     (* source field absent: emit an impossible mutation
                        so the staged encode stage rejects the packet,
                        exactly as the fused [apply] does *)
                     ("", 0L))))
