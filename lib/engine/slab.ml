(* Zero-allocation ingest ring: a preallocated ring of fixed-capacity
   byte buffers plus a length array.  Producers blit wire bytes into the
   next free slot (or lease it and fill it in place) and publish the
   index; the consumer dequeues whole index runs and releases them when
   the batch is processed.  Steady-state ingest moves bytes only — no
   strings, no options, no per-packet allocation on either side.

   Single-producer / single-consumer.  [head] and [tail] are absolute
   counters (slot = counter mod capacity): [tail - head] slots are in
   flight, and the consumer's outstanding batch is the run
   [[head, head + batch_len)], which the producer cannot overwrite until
   {!release} advances [head].  Blocking and close semantics follow
   [Ring]: the same staged spin → yield → wait backoff, and a closed slab
   releases every waiter.  For the cross-domain lock-free variant of this
   shape see [Spsc] (the shard's per-worker rings). *)

let spin_rounds = 4
let yield_rounds = 4

type t = {
  bufs : Bytes.t array;
  lens : int array;
  slot_bytes : int;
  mutable head : int; (* first unreleased slot (absolute counter) *)
  mutable tail : int; (* next slot to fill (absolute counter) *)
  mutable leased : bool;
  mutable lease_len : int; (* slots covered by the outstanding lease *)
  mutable batch_len : int; (* outstanding consumer batch; 0 = none *)
  mutable batch_start : int;
  mutable closed : bool;
  mu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ?(slot_bytes = 2048) ~capacity () =
  if capacity <= 0 then invalid_arg "Slab.create: capacity must be positive";
  if slot_bytes <= 0 then invalid_arg "Slab.create: slot_bytes must be positive";
  {
    bufs = Array.init capacity (fun _ -> Bytes.create slot_bytes);
    lens = Array.make capacity 0;
    slot_bytes;
    head = 0;
    tail = 0;
    leased = false;
    lease_len = 0;
    batch_len = 0;
    batch_start = 0;
    closed = false;
    mu = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let capacity t = Array.length t.bufs
let slot_bytes t = t.slot_bytes

let backoff_wait t cond pred =
  let attempt = ref 0 in
  while not (pred ()) do
    if !attempt < spin_rounds then begin
      Mutex.unlock t.mu;
      for _ = 1 to 1 lsl !attempt do
        Domain.cpu_relax ()
      done;
      incr attempt;
      Mutex.lock t.mu
    end
    else if !attempt < spin_rounds + yield_rounds then begin
      Mutex.unlock t.mu;
      Thread.yield ();
      incr attempt;
      Mutex.lock t.mu
    end
    else Condition.wait cond t.mu
  done

let length t =
  Mutex.lock t.mu;
  let n = t.tail - t.head in
  Mutex.unlock t.mu;
  n

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c

(* ---- producer side ---- *)

let free t = Array.length t.bufs - (t.tail - t.head)

let push t ?(off = 0) ?len pkt =
  let len = match len with None -> String.length pkt - off | Some l -> l in
  if off < 0 || len < 0 || off + len > String.length pkt then
    invalid_arg "Slab.push: window out of bounds";
  if len > t.slot_bytes then invalid_arg "Slab.push: packet exceeds slot_bytes";
  Mutex.lock t.mu;
  if t.leased then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.push: a slot is leased"
  end;
  backoff_wait t t.not_full (fun () -> free t > 0 || t.closed);
  if t.closed then begin
    Mutex.unlock t.mu;
    false
  end
  else begin
    let s = t.tail mod Array.length t.bufs in
    Bytes.blit_string pkt off t.bufs.(s) 0 len;
    t.lens.(s) <- len;
    t.tail <- t.tail + 1;
    Condition.signal t.not_empty;
    Mutex.unlock t.mu;
    true
  end

let push_batch t pkts n =
  if n < 0 || n > Array.length pkts then invalid_arg "Slab.push_batch: bad count";
  for i = 0 to n - 1 do
    if String.length pkts.(i) > t.slot_bytes then
      invalid_arg "Slab.push_batch: packet exceeds slot_bytes"
  done;
  Mutex.lock t.mu;
  if t.leased then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.push_batch: a slot is leased"
  end;
  let cap = Array.length t.bufs in
  let i = ref 0 and ok = ref true in
  (* one lock acquisition per free run: whole index runs are enqueued in
     bulk, the lock is only re-contended when the ring fills *)
  while !ok && !i < n do
    backoff_wait t t.not_full (fun () -> free t > 0 || t.closed);
    if t.closed then ok := false
    else begin
      let run = min (free t) (n - !i) in
      for j = 0 to run - 1 do
        let pkt = pkts.(!i + j) in
        let s = (t.tail + j) mod cap in
        Bytes.blit_string pkt 0 t.bufs.(s) 0 (String.length pkt);
        t.lens.(s) <- String.length pkt
      done;
      t.tail <- t.tail + run;
      i := !i + run;
      Condition.signal t.not_empty
    end
  done;
  Mutex.unlock t.mu;
  !ok

let lease t =
  Mutex.lock t.mu;
  if t.leased then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.lease: slot already leased"
  end;
  backoff_wait t t.not_full (fun () -> free t > 0 || t.closed);
  if t.closed then begin
    Mutex.unlock t.mu;
    None
  end
  else begin
    t.leased <- true;
    t.lease_len <- 1;
    let b = t.bufs.(t.tail mod Array.length t.bufs) in
    Mutex.unlock t.mu;
    Some b
  end

let publish t len =
  Mutex.lock t.mu;
  if not t.leased then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.publish: no leased slot"
  end;
  if len < 0 || len > t.slot_bytes then begin
    t.leased <- false;
    Mutex.unlock t.mu;
    invalid_arg "Slab.publish: bad length"
  end;
  t.lens.(t.tail mod Array.length t.bufs) <- len;
  t.tail <- t.tail + 1;
  t.leased <- false;
  t.lease_len <- 0;
  Condition.signal t.not_empty;
  Mutex.unlock t.mu

let abandon t =
  Mutex.lock t.mu;
  if not t.leased then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.abandon: no leased slot"
  end;
  t.leased <- false;
  t.lease_len <- 0;
  Mutex.unlock t.mu

(* ---- contiguous-run lease (batched socket ingest) ----

   [recvmmsg] fills many slots with one syscall, so the producer leases a
   whole run of free slots at once.  The run never wraps the ring seam —
   the C stub indexes [bufs]/[lens] linearly from [producer_slot] — and
   the caller publishes only the prefix the kernel actually filled.
   Never blocks: a full ring returns 0 and the socket loop applies its
   own drop policy. *)

let lease_run t ~max =
  if max <= 0 then invalid_arg "Slab.lease_run: max must be positive";
  Mutex.lock t.mu;
  if t.leased then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.lease_run: a lease is outstanding"
  end;
  if t.closed then begin
    Mutex.unlock t.mu;
    0
  end
  else begin
    let cap = Array.length t.bufs in
    let seam = cap - (t.tail mod cap) in
    let k = min (min max (free t)) seam in
    if k > 0 then begin
      t.leased <- true;
      t.lease_len <- k
    end;
    Mutex.unlock t.mu;
    k
  end

(* Producer-thread-only; [tail] is stable while the run is leased. *)
let producer_slot t = t.tail mod Array.length t.bufs

let publish_run t ~n =
  Mutex.lock t.mu;
  if not t.leased then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.publish_run: no leased run"
  end;
  if n < 0 || n > t.lease_len then begin
    t.leased <- false;
    t.lease_len <- 0;
    Mutex.unlock t.mu;
    invalid_arg "Slab.publish_run: count outside the leased run"
  end;
  let cap = Array.length t.bufs in
  let bad = ref false in
  for i = 0 to n - 1 do
    let l = t.lens.((t.tail + i) mod cap) in
    if l < 0 || l > t.slot_bytes then bad := true
  done;
  if !bad then begin
    t.leased <- false;
    t.lease_len <- 0;
    Mutex.unlock t.mu;
    invalid_arg "Slab.publish_run: slot length out of range"
  end;
  t.tail <- t.tail + n;
  t.leased <- false;
  t.lease_len <- 0;
  if n > 0 then Condition.signal t.not_empty;
  Mutex.unlock t.mu

let raw_bufs t = t.bufs
let raw_lens t = t.lens

(* ---- consumer side ---- *)

let pop_batch t ~max =
  if max <= 0 then invalid_arg "Slab.pop_batch: max must be positive";
  Mutex.lock t.mu;
  if t.batch_len > 0 then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.pop_batch: previous batch not released"
  end;
  (* [backoff_wait]'s predicate argument would be a fresh closure per
     call; this is the consumer's per-batch hot path, so the backoff
     loop is open-coded to keep it allocation-free *)
  let attempt = ref 0 in
  while not (t.tail - t.head > 0 || t.closed) do
    if !attempt < spin_rounds then begin
      Mutex.unlock t.mu;
      for _ = 1 to 1 lsl !attempt do
        Domain.cpu_relax ()
      done;
      incr attempt;
      Mutex.lock t.mu
    end
    else if !attempt < spin_rounds + yield_rounds then begin
      Mutex.unlock t.mu;
      Thread.yield ();
      incr attempt;
      Mutex.lock t.mu
    end
    else Condition.wait t.not_empty t.mu
  done;
  let n = min (t.tail - t.head) max in
  t.batch_start <- t.head;
  t.batch_len <- n;
  Mutex.unlock t.mu;
  n

(* Slot accessors run lock-free: the producer cannot reuse a slot of the
   outstanding batch until [release] advances [head]. *)

let check_slot t i =
  if i < 0 || i >= t.batch_len then invalid_arg "Slab: slot outside the batch"

let buf t i =
  check_slot t i;
  t.bufs.((t.batch_start + i) mod Array.length t.bufs)

let len t i =
  check_slot t i;
  t.lens.((t.batch_start + i) mod Array.length t.bufs)

let batch_slot t i =
  check_slot t i;
  (t.batch_start + i) mod Array.length t.bufs

let release t =
  Mutex.lock t.mu;
  if t.batch_len = 0 then begin
    Mutex.unlock t.mu;
    invalid_arg "Slab.release: no outstanding batch"
  end;
  t.head <- t.head + t.batch_len;
  t.batch_len <- 0;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu
