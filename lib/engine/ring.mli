(** Bounded blocking ring buffer — the hand-off between pipeline stages and
    between the sharding producer and its worker domains.

    The bound is the backpressure mechanism: {!push} blocks while the ring
    is full, so a fast producer is throttled to its consumer's pace instead
    of queueing unboundedly.  Safe for any number of producers and
    consumers (mutex + condition variables; the engine's default layout is
    one producer, one consumer per ring). *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int
val length : 'a t -> int

val push : 'a t -> 'a -> bool
(** Blocks while full.  Returns [false] (dropping the item) once the ring
    is {!close}d. *)

val pop : 'a t -> 'a option
(** Blocks while empty.  [None] once the ring is closed {e and} drained —
    the consumer's termination signal. *)

val pop_into : 'a t -> 'a array -> int
(** [pop_into t out] pops up to [Array.length out] items in one lock
    acquisition, blocking until at least one is available or the ring is
    closed.  Returns the number popped (0 only after close+drain). *)

val close : 'a t -> unit
(** Wakes all blocked producers and consumers; subsequent pushes fail. *)

val is_closed : 'a t -> bool
