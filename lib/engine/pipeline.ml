module F = Netdsl_format
module Fsm = Netdsl_fsm

type config = {
  batch : int;
  ring_capacity : int;
  max_flows : int;
  slot_bytes : int;
}

let default_config =
  { batch = 64; ring_capacity = 1024; max_flows = 65536; slot_bytes = 2048 }

type mode = Staged | Fused

(* Stage indices — fixed layout, also the Stats layout. *)
let st_decode = 0
let st_verify = 1
let st_step = 2
let st_encode = 3

let stage_names = [ "decode"; "verify"; "step"; "encode" ]

(* Per-slot status during a batch. *)
let live = 0
let rej_decode = 1
let rej_verify = 2
let rej_step = 3
let rej_encode = 4

type outcome =
  | Accepted
  | Rejected_decode of F.Codec.error
  | Rejected_verify
  | Rejected_step
  | Rejected_encode

(* Per-flow machine instances on an LRU list.  The list is held as parallel
   int arrays indexed by slot (slot 0 is the sentinel; live flows occupy
   slots 1..n): the per-packet touch — unlink + relink at the MRU end — is
   then four unboxed int stores, where an intrusive pointer list would pay
   a GC write barrier on every one.  The sentinel's successor is the
   oldest-idle flow, its predecessor the most recently touched.  Touch and
   evict are O(1) and allocation-free; arrays double up to [max_flows].

   Flow keys are native ints (wide key fields truncate via
   [Int64.to_int], identically in both modes); [Flight.no_key]
   (= [min_int]) is the "packet carries no key" sentinel, served by the
   shared default instance. *)
type flow_table = {
  (* key -> slot: open addressing with linear probing, so the per-packet
     lookup is allocation-free (Hashtbl.find_opt boxes its result and
     costs ~5x as much on this path).  [hstate] byte per bucket: 0 empty,
     1 live, 2 tombstone (left by eviction; rehash sweeps them out). *)
  mutable hkeys : int array;
  mutable hvals : int array;
  mutable hstate : Bytes.t;
  mutable hmask : int; (* bucket count - 1; bucket count is a power of 2 *)
  mutable hused : int; (* live + tombstones, drives the rehash *)
  mutable keys : int array; (* slot -> key *)
  mutable insts : Fsm.Step.instance array;
  mutable fprev : int array;
  mutable fnext : int array;
  mutable n : int; (* live flows, in slots 1..n *)
  mutable cap : int; (* slots available before the next doubling *)
  max_flows : int;
}

(* Fibonacci hashing; [land max_int] keeps the probe index non-negative. *)
let hash k = (k * 0x2545F4914F6CDD1D) land max_int

(* Slot holding [k], or -1.  Linear probe until an empty bucket proves
   absence; tombstones keep the chain alive past deleted keys. *)
let hfind tbl k =
  let mask = tbl.hmask in
  let i = ref (hash k land mask) in
  let r = ref (-1) in
  let continue = ref true in
  while !continue do
    match Bytes.unsafe_get tbl.hstate !i with
    | '\000' -> continue := false
    | '\001' when Array.unsafe_get tbl.hkeys !i = k ->
      r := Array.unsafe_get tbl.hvals !i;
      continue := false
    | _ -> i := (!i + 1) land mask
  done;
  !r

(* Caller guarantees [k] is absent (a failed [hfind] just preceded), so
   the first empty or tombstoned bucket on the chain is insertable. *)
let hadd tbl k slot =
  let mask = tbl.hmask in
  let i = ref (hash k land mask) in
  while Bytes.unsafe_get tbl.hstate !i = '\001' do
    i := (!i + 1) land mask
  done;
  if Bytes.unsafe_get tbl.hstate !i = '\000' then tbl.hused <- tbl.hused + 1;
  Bytes.unsafe_set tbl.hstate !i '\001';
  tbl.hkeys.(!i) <- k;
  tbl.hvals.(!i) <- slot

let hremove tbl k =
  let mask = tbl.hmask in
  let i = ref (hash k land mask) in
  let continue = ref true in
  while !continue do
    match Bytes.unsafe_get tbl.hstate !i with
    | '\000' -> continue := false
    | '\001' when Array.unsafe_get tbl.hkeys !i = k ->
      Bytes.unsafe_set tbl.hstate !i '\002';
      continue := false
    | _ -> i := (!i + 1) land mask
  done

(* Rehash live entries into [buckets'] buckets, dropping tombstones. *)
let hrehash tbl buckets' =
  let okeys = tbl.hkeys and ovals = tbl.hvals and ostate = tbl.hstate in
  let on = tbl.hmask + 1 in
  tbl.hkeys <- Array.make buckets' 0;
  tbl.hvals <- Array.make buckets' 0;
  tbl.hstate <- Bytes.make buckets' '\000';
  tbl.hmask <- buckets' - 1;
  tbl.hused <- 0;
  for i = 0 to on - 1 do
    if Bytes.unsafe_get ostate i = '\001' then
      hadd tbl okeys.(i) ovals.(i)
  done

(* Keep the load factor (live + tombstones) under 3/4; double only when
   the live population itself needs the room, otherwise rehash in place
   to shed tombstones. *)
let hreserve tbl =
  let buckets = tbl.hmask + 1 in
  if (tbl.hused + 1) * 4 > buckets * 3 then
    hrehash tbl (if (tbl.n + 1) * 2 > buckets then buckets * 2 else buckets)

let unlink tbl slot =
  let p = Array.unsafe_get tbl.fprev slot
  and nx = Array.unsafe_get tbl.fnext slot in
  Array.unsafe_set tbl.fnext p nx;
  Array.unsafe_set tbl.fprev nx p

(* Insert just before the sentinel: the most-recently-used end. *)
let push_mru tbl slot =
  let last = Array.unsafe_get tbl.fprev 0 in
  Array.unsafe_set tbl.fnext last slot;
  Array.unsafe_set tbl.fprev slot last;
  Array.unsafe_set tbl.fnext slot 0;
  Array.unsafe_set tbl.fprev 0 slot

let grow_flows tbl =
  let cap' = min tbl.max_flows (tbl.cap * 2) in
  let extend a fill =
    let a' = Array.make (cap' + 1) fill in
    Array.blit a 0 a' 0 (tbl.cap + 1);
    a'
  in
  tbl.keys <- extend tbl.keys 0;
  tbl.insts <- extend tbl.insts tbl.insts.(0);
  tbl.fprev <- extend tbl.fprev 0;
  tbl.fnext <- extend tbl.fnext 0;
  tbl.cap <- cap'

type t = {
  cfg : config;
  mode : mode;
  fmt : F.Desc.t;
  flight : Flight.t option;
  verify : (F.View.t -> bool) option;
  (* the unified classifier: >= 0 is an event id for the plan, any negative
     value means the packet does not concern the machine *)
  classifier : (F.View.t -> int) option;
  plan : Fsm.Step.plan option;
  flow_key : string option;
  on_transition : (Fsm.Machine.transition -> unit) option;
  (* responders receive the flow instance as a thunk: forcing it mints the
     flow, so a responder that never consults machine state (the
     flight-derived patch) keeps the flow table identical to fused mode *)
  respond :
    (F.View.t -> (unit -> Fsm.Step.instance option) -> F.Value.t option)
    option;
  respond_patch :
    (F.View.t ->
    (unit -> Fsm.Step.instance option) ->
    (string * int64) list option)
    option;
  respond_fmt : F.Desc.t;
  on_response : string -> unit;
  on_reply : (Bytes.t -> int -> unit) option;
  on_reply_slot : (int -> Bytes.t -> int -> unit) option;
  (* window index of the packet whose reply is being emitted; -1 outside
     packet context (timer-driven emission), maintained by the batch
     loops so [on_reply_slot] can hand external slab owners the slot *)
  mutable cur_slot : int;
  (* encode-stage machinery: a compiled emitter for [respond_fmt], a cache
     of compiled in-place patchers (keyed by field, against [fmt] — patches
     rewrite the *request* bytes), and one reusable reply buffer with a
     per-batch high-water mark so one oversized reply cannot pin a large
     buffer forever *)
  emitter : F.Emit.t;
  patchers : (string, (F.Emit.patcher, string) result) Hashtbl.t;
  mutable reply_buf : Bytes.t;
  reply_base : int;
  mutable reply_hwm : int;
  stats : Stats.t;
  (* batch scratch: the packet window of the current batch (data + length),
     one reusable view per slot for the staged mode, statuses and errors *)
  views : F.View.t array;
  status : int array;
  blen : int array;
  last_error : F.Codec.error option array;
  input : Slab.t;
  inbuf : string array;
  default_inst : Fsm.Step.instance option;
  flows : flow_table option;
  (* sequential reference decoder of the flight's chain, for recovering
     layer-qualified decode-error detail on the [`Stacked] tier *)
  seq : F.Stack.Seq.t option;
  (* time: the wheel exists iff the compiled machine declares timer ops.
     [timed] guards the per-packet post-fire check with one bool read;
     [clock_ms] is injectable so tests drive virtual time; [w_*] are the
     wheel-counter snapshots already folded into [stats]. *)
  timed : bool;
  wheel : Wheel.t option;
  clock_ms : unit -> int;
  (* stage-timing clock, integer nanoseconds: injectable so a socket
     front end with C stubs can supply an allocation-free monotonic
     reading — the default boxes a float per call, which a batched hot
     loop must not pay per packet *)
  now_ns : unit -> int;
  tick_ms : int;
  mutable w_expired : int;
  mutable w_cancelled : int;
  mutable w_cascaded : int;
  (* the expiry callback is tied once after creation (it closes over [t])
     so a poll allocates nothing; [expiry_refused] is its out-channel *)
  mutable expiry_cb : key:int -> ev:int -> unit;
  mutable expiry_refused : int;
}

(* Event id handed to [Step.fire_id] for a classified event name the plan
   does not know: out of range on the high side, so it is refused as
   [Unknown_event] rather than mistaken for pass-through (negative). *)
let unknown_event = max_int

let no_key = Flight.no_key

(* The timer key of a flow: its native-int flow key when the pipeline is
   keyed; [no_key] stands for the shared default instance (both the
   unkeyed pipeline and keyless packets of a keyed one). *)
let wheel_key t k = match t.flows with Some _ -> k | None -> no_key

(* Post-fire timer op: one array read and a zero compare on the packed
   word ([Step.timer_word]) — the whole hot-path cost for transitions
   without a clause.  Called only when [t.timed]. *)
let apply_timer t inst k =
  let plan = Fsm.Step.plan_of inst in
  let tw = Fsm.Step.timer_word plan (Fsm.Step.last_transition inst) in
  if tw <> Fsm.Step.timer_none then begin
    match t.wheel with
    | None -> ()
    | Some w ->
      if tw > 0 then begin
        let wn = Wheel.now w in
        (* same word at the same wheel tick: the deadline is
           bit-identical to the one already armed — skip the wheel *)
        if not (Fsm.Step.timer_unchanged inst ~word:tw ~wnow:wn) then
          (* tick_ms = 1 (the default) skips the round-up division — a
             runtime divide is a real cost at 15 ns/pkt budgets *)
          let after =
            if t.tick_ms = 1 then Fsm.Step.timer_after_ms tw
            else (Fsm.Step.timer_after_ms tw + t.tick_ms - 1) / t.tick_ms
          in
          Fsm.Step.note_timer_armed inst
            ~hint:
              (Wheel.arm_hint w
                 ~hint:(Fsm.Step.timer_hint inst)
                 ~key:k ~after ~ev:(Fsm.Step.timer_event tw))
            ~word:tw ~wnow:wn
      end
      else begin
        ignore (Wheel.cancel w k);
        Fsm.Step.clear_timer_armed inst
      end
  end

(* Expiry delivery: the synthesized timeout event enters through the
   normal step stage — same [fire_id], same [on_transition] hook, same
   per-flow run-to-completion order (the wheel fires between batches,
   never inside one) — and the fired transition's own timer op applies,
   so a retransmission timeout can re-arm itself.  The flow is touched to
   the MRU end: a flow in active retransmission is not an eviction
   candidate.  A missing flow (evicted — its timer was cancelled — or a
   machine that refuses the event) counts as a refused expiry. *)
let fire_expiry t ~key ~ev =
  let inst =
    if key = no_key then t.default_inst
    else
      match t.flows with
      | Some tbl ->
        let slot = hfind tbl key in
        if slot >= 0 then begin
          unlink tbl slot;
          push_mru tbl slot;
          Some (Array.unsafe_get tbl.insts slot)
        end
        else None
      | None -> t.default_inst
  in
  match inst with
  | None -> t.expiry_refused <- t.expiry_refused + 1
  | Some inst -> (
    (* the fired entry has left the wheel: the instance's armed-timer
       signature is stale, and the fired transition below may arm a
       fresh one through [apply_timer] *)
    Fsm.Step.clear_timer_armed inst;
    match Fsm.Step.fire_id inst ev with
    | Fsm.Step.Fired -> (
      apply_timer t inst key;
      match t.on_transition with
      | None -> ()
      | Some hook ->
        let plan = Fsm.Step.plan_of inst in
        hook (Fsm.Step.transition plan (Fsm.Step.last_transition inst)))
    | Fsm.Step.Unknown_event | Fsm.Step.Unhandled | Fsm.Step.Nondeterministic
      ->
      t.expiry_refused <- t.expiry_refused + 1)

let default_clock_ms () = int_of_float (Unix.gettimeofday () *. 1e3)
let default_now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let create ?(config = default_config) ?(mode = Staged) ?stack ?flight ?verify
    ?classify ?classify_id ?machine ?flow_key ?on_transition
    ?(clock_ms = default_clock_ms) ?(now_ns = default_now_ns) ?(tick_ms = 1)
    ?respond ?respond_patch ?respond_fmt ?(on_response = fun _ -> ()) ?on_reply
    ?on_reply_slot fmt =
  if config.batch <= 0 then invalid_arg "Pipeline.create: batch must be positive";
  if config.max_flows <= 0 then
    invalid_arg "Pipeline.create: max_flows must be positive";
  if tick_ms <= 0 then invalid_arg "Pipeline.create: tick_ms must be positive";
  let plan = Option.map Fsm.Step.compile machine in
  (* A flight spec is the *whole* per-packet semantics: it cannot be mixed
     with the closure-style arguments it replaces. *)
  (match flight with
  | Some _
    when verify <> None || classify <> None || classify_id <> None
         || respond <> None || respond_patch <> None || flow_key <> None ->
    invalid_arg
      "Pipeline.create: ~flight replaces \
       verify/classify/classify_id/flow_key/respond/respond_patch"
  | _ -> ());
  if mode = Fused && flight = None then
    invalid_arg "Pipeline.create: Fused mode requires ~flight";
  (* A layered chain has no staged decomposition (its ground truth is the
     sequential [Stack.Seq] reference, not per-stage view closures), so a
     stack pipeline is fused-only and spec-only. *)
  (match stack with
  | Some _ when flight = None ->
    invalid_arg "Pipeline.create: ~stack requires ~flight"
  | Some _ when mode <> Fused ->
    invalid_arg "Pipeline.create: ~stack requires Fused mode"
  | _ -> ());
  let flight =
    match stack with
    | None -> Option.map (fun sp -> Flight.compile ?plan fmt sp) flight
    | Some st ->
      Option.map
        (fun sp ->
          match Flight.compile_stack ?plan st sp with
          | Ok fl -> fl
          | Error e -> invalid_arg ("Pipeline.create: stack: " ^ e))
        flight
  in
  let seq =
    match flight with
    | Some fl -> Option.map F.Stack.Seq.create (Flight.stack_plan fl)
    | None -> None
  in
  (* machine absence only surfaces when a responder actually runs *)
  let need_inst name f = function
    | Some i -> f i
    | None -> invalid_arg (Printf.sprintf "Pipeline: %s requires ~machine" name)
  in
  let verify, classifier, flow_key, respond, respond_patch =
    match flight with
    | Some fl ->
      ( Flight.staged_verify fl,
        Flight.staged_classify_id fl,
        Flight.flow_key_name fl,
        None,
        Option.map
          (fun rp view _inst -> rp view)
          (Flight.staged_respond_patch fl) )
    | None ->
      let classifier =
        match (classify_id, classify, plan) with
        | Some f, _, _ -> Some f
        | None, Some f, Some plan ->
          Some
            (fun view ->
              match f view with
              | None -> -1
              | Some name ->
                let id = Fsm.Step.event_id plan name in
                if id < 0 then unknown_event else id)
        | None, _, _ -> None
      in
      ( verify,
        classifier,
        flow_key,
        Option.map
          (fun r view inst -> need_inst "a responder" (r view) (inst ()))
          respond,
        Option.map
          (fun r view inst -> need_inst "a responder" (r view) (inst ()))
          respond_patch )
  in
  let default_inst = Option.map Fsm.Step.instance plan in
  let respond_fmt = Option.value respond_fmt ~default:fmt in
  let reply_base = max 64 (F.Sizing.min_bytes respond_fmt) in
  let timed =
    match plan with Some p -> Fsm.Step.has_timers p | None -> false
  in
  let t = {
    cfg = config;
    mode;
    fmt;
    flight;
    verify;
    classifier;
    plan;
    flow_key;
    on_transition;
    respond;
    respond_patch;
    respond_fmt;
    on_response;
    on_reply;
    on_reply_slot;
    cur_slot = -1;
    emitter = F.Emit.create respond_fmt;
    patchers = Hashtbl.create 4;
    reply_buf = Bytes.create reply_base;
    reply_base;
    reply_hwm = 0;
    stats = Stats.create stage_names;
    views = Array.init config.batch (fun _ -> F.View.create fmt);
    status = Array.make config.batch live;
    blen = Array.make config.batch 0;
    last_error = Array.make config.batch None;
    input =
      Slab.create ~slot_bytes:config.slot_bytes ~capacity:config.ring_capacity
        ();
    inbuf = Array.make config.batch "";
    default_inst;
    seq;
    flows =
      (match (default_inst, flow_key) with
      | Some inst, Some _ ->
        let cap = min 256 (max 1 config.max_flows) in
        let buckets = 1024 in
        Some
          {
            hkeys = Array.make buckets 0;
            hvals = Array.make buckets 0;
            hstate = Bytes.make buckets '\000';
            hmask = buckets - 1;
            hused = 0;
            keys = Array.make (cap + 1) 0;
            (* slot 0 never fires a transition; the default instance is
               just an arbitrary well-typed filler *)
            insts = Array.make (cap + 1) inst;
            fprev = Array.make (cap + 1) 0;
            fnext = Array.make (cap + 1) 0;
            n = 0;
            cap;
            max_flows = config.max_flows;
          }
      | _ -> None);
    timed;
    wheel = (if timed then Some (Wheel.create ~now:(clock_ms () / tick_ms) ()) else None);
    clock_ms;
    now_ns;
    tick_ms;
    w_expired = 0;
    w_cancelled = 0;
    w_cascaded = 0;
    expiry_cb = (fun ~key:_ ~ev:_ -> ());
    expiry_refused = 0;
  }
  in
  (* tie the expiry callback once — polls then allocate nothing *)
  if timed then t.expiry_cb <- fire_expiry t;
  t

(* Fold the wheel counters' growth since the last sync into [stats], so
   merged multi-worker reports see exactly one copy of each event. *)
let sync_timer_stats t =
  match t.wheel with
  | None -> ()
  | Some w ->
    let e = Wheel.expired w and c = Wheel.cancelled w and k = Wheel.cascaded w in
    Stats.note_timers t.stats ~expired:(e - t.w_expired)
      ~cancelled:(c - t.w_cancelled) ~cascaded:(k - t.w_cascaded);
    t.w_expired <- e;
    t.w_cancelled <- c;
    t.w_cascaded <- k

let stats t =
  sync_timer_stats t;
  t.stats

let format t = t.fmt
let machine_plan t = t.plan
let mode t = t.mode
let flight_tier t = Option.map Flight.tier t.flight

let stack_plan t =
  match t.flight with None -> None | Some fl -> Flight.stack_plan fl
let flow_count t = match t.flows with None -> 0 | Some tbl -> tbl.n
let reply_capacity t = Bytes.length t.reply_buf

(* Instance lookup by native-int key, shared by both modes (the staged
   side extracts the key from the view first). *)
(* Option-free touch for the fused per-packet loop (precondition:
   [t.default_inst = Some dflt]); [instance_for_key] wraps it for the
   staged side. *)
let touch_flow t dflt k =
  match t.flows with
  | Some tbl when k <> no_key ->
    let slot = hfind tbl k in
    if slot >= 0 then begin
      unlink tbl slot;
      push_mru tbl slot;
      Array.unsafe_get tbl.insts slot
    end
    else begin
      let slot =
        if tbl.n >= tbl.max_flows then begin
          (* evict the LRU flow and reuse its slot; its pending timer goes
             with it — an expiry for a dead flow must never fire *)
          let victim = tbl.fnext.(0) in
          unlink tbl victim;
          hremove tbl tbl.keys.(victim);
          (match t.wheel with
          | Some w -> ignore (Wheel.cancel w tbl.keys.(victim))
          | None -> ());
          Stats.note_evicted_flow t.stats;
          victim
        end
        else begin
          if tbl.n >= tbl.cap then grow_flows tbl;
          tbl.n <- tbl.n + 1;
          tbl.n
        end
      in
      tbl.keys.(slot) <- k;
      tbl.insts.(slot) <- Fsm.Step.instance (Option.get t.plan);
      push_mru tbl slot;
      hreserve tbl;
      hadd tbl k slot;
      tbl.insts.(slot)
    end
  | _ -> dflt

let instance_for_key t k =
  match t.default_inst with
  | None -> None
  | Some dflt -> Some (touch_flow t dflt k)

let view_key t view =
  match (t.flow_key, t.flows) with
  | Some key, Some _ -> (
    match F.View.find_int view key with
    | None -> no_key
    | Some k ->
      let k = Int64.to_int k in
      (* the truncation that lands exactly on the sentinel counts as "no
         key" in both modes *)
      if k = no_key then no_key else k)
  | _ -> no_key

let instance_for t view = instance_for_key t (view_key t view)

let ensure_reply t len =
  if Bytes.length t.reply_buf < len then
    t.reply_buf <- Bytes.create (max len (2 * Bytes.length t.reply_buf))

let patcher_for t field =
  match Hashtbl.find_opt t.patchers field with
  | Some r -> r
  | None ->
    let r = F.Emit.patcher t.fmt field in
    Hashtbl.add t.patchers field r;
    r

(* Emit into the reusable reply buffer, doubling it if the message does not
   fit (the only source of [Truncated] on a caller-owned buffer). *)
let rec encode_reply t value =
  match F.Emit.encode_into t.emitter t.reply_buf value with
  | Ok _ as ok -> ok
  | Error (F.Codec.Io { error = Netdsl_util.Bitio.Truncated _; _ }) ->
    t.reply_buf <- Bytes.create (2 * max 32 (Bytes.length t.reply_buf));
    encode_reply t value
  | Error _ as e -> e

let emit_reply t len =
  if len > t.reply_hwm then t.reply_hwm <- len;
  match t.on_reply_slot with
  | Some f -> f t.cur_slot t.reply_buf len
  | None -> (
    match t.on_reply with
    | Some f -> f t.reply_buf len
    | None -> t.on_response (Bytes.sub_string t.reply_buf 0 len))

(* High-water reset, once per batch: a single oversized reply grows the
   buffer transiently; if the batch's replies fit in half the buffer it
   shrinks back to their high-water mark (never below the format's
   minimum).  Steady-state traffic never churns the buffer. *)
let reset_reply_buf t =
  if
    Bytes.length t.reply_buf > t.reply_base
    && t.reply_hwm * 2 <= Bytes.length t.reply_buf
  then t.reply_buf <- Bytes.create (max t.reply_base t.reply_hwm);
  t.reply_hwm <- 0


(* ---- staged mode: each stage walks the whole batch before the next
   starts, so stage timing is a straight wall-clock interval around a
   tight loop.  Operates on the batch window [t.inbuf]/[t.blen]. ---- *)

let staged_batch t n =
  let stats = t.stats in
  (* decode (includes full verification of the view) *)
  let bytes = ref 0 in
  let rejects = ref 0 in
  let t0 = t.now_ns () in
  for i = 0 to n - 1 do
    bytes := !bytes + t.blen.(i);
    match F.View.decode t.views.(i) ~len:t.blen.(i) t.inbuf.(i) with
    | Ok () ->
      t.status.(i) <- live;
      t.last_error.(i) <- None
    | Error e ->
      t.status.(i) <- rej_decode;
      t.last_error.(i) <- Some e;
      incr rejects
  done;
  Stats.record_batch stats st_decode ~packets:n ~bytes:!bytes ~rejects:!rejects
    ~elapsed_ns:(t.now_ns () - t0);
  (* verify: caller-supplied semantic predicate over the view *)
  (match t.verify with
  | None -> ()
  | Some pred ->
    let packets = ref 0 and bytes = ref 0 and rejects = ref 0 in
    let t0 = t.now_ns () in
    for i = 0 to n - 1 do
      if t.status.(i) = live then begin
        incr packets;
        bytes := !bytes + t.blen.(i);
        if not (pred t.views.(i)) then begin
          t.status.(i) <- rej_verify;
          incr rejects
        end
      end
    done;
    Stats.record_batch stats st_verify ~packets:!packets ~bytes:!bytes
      ~rejects:!rejects ~elapsed_ns:(t.now_ns () - t0));
  (* step: drive the per-flow compiled machine with the classified event id.
     The accept path is ids and flat arrays end to end — no strings, no
     allocation; label reconstruction happens only inside the opt-in
     [on_transition] hook. *)
  (match (t.classifier, t.default_inst) with
  | Some classify, Some dflt ->
    let packets = ref 0 and bytes = ref 0 and rejects = ref 0 in
    let t0 = t.now_ns () in
    for i = 0 to n - 1 do
      if t.status.(i) = live then begin
        incr packets;
        bytes := !bytes + t.blen.(i);
        let ev = classify t.views.(i) in
        if ev >= 0 then begin
          let k = view_key t t.views.(i) in
          let inst = touch_flow t dflt k in
          match Fsm.Step.fire_id inst ev with
          | Fsm.Step.Fired ->
            if t.timed then apply_timer t inst (wheel_key t k);
            (match t.on_transition with
            | None -> ()
            | Some hook ->
              (* slow path: recover the transition (and its label) from the
                 plan's intern tables *)
              let plan = Fsm.Step.plan_of inst in
              hook (Fsm.Step.transition plan (Fsm.Step.last_transition inst)))
          | Fsm.Step.Unknown_event | Fsm.Step.Unhandled
          | Fsm.Step.Nondeterministic ->
            t.status.(i) <- rej_step;
            incr rejects
        end
      end
    done;
    Stats.record_batch stats st_step ~packets:!packets ~bytes:!bytes
      ~rejects:!rejects ~elapsed_ns:(t.now_ns () - t0)
  | _ -> ());
  (* encode: build and emit responses.  The in-place patch path is tried
     first — it rewrites a copy of the request's wire bytes and updates the
     checksum incrementally; otherwise the compiled emitter streams the
     reply into the reusable buffer.  The interpreting codec is never on
     this path. *)
  (match (t.respond, t.respond_patch) with
  | None, None -> ()
  | _ ->
    let packets = ref 0 and bytes = ref 0 and rejects = ref 0 in
    let t0 = t.now_ns () in
    for i = 0 to n - 1 do
      if t.status.(i) = live then begin
        t.cur_slot <- i;
        let view = t.views.(i) in
        let inst () = instance_for t view in
        let emitted len =
          bytes := !bytes + len;
          emit_reply t len
        in
        let reject () =
          t.status.(i) <- rej_encode;
          incr rejects
        in
        let patched =
          match t.respond_patch with
          | None -> false
          | Some respond_patch -> (
            match respond_patch view inst with
            | None -> false
            | Some mutations ->
              incr packets;
              let len = F.View.length_bytes view in
              ensure_reply t len;
              Bytes.blit_string (F.View.raw view) 0 t.reply_buf 0 len;
              let ok =
                List.for_all
                  (fun (field, v) ->
                    match patcher_for t field with
                    | Error _ -> false
                    | Ok p -> (
                      match F.Emit.patch p ~off:0 ~len t.reply_buf v with
                      | Ok () -> true
                      | Error _ -> false))
                  mutations
              in
              if ok then emitted len else reject ();
              true)
        in
        if not patched then
          match t.respond with
          | None -> ()
          | Some respond -> (
            match respond view inst with
            | None -> ()
            | Some value -> (
              incr packets;
              match encode_reply t value with
              | Ok len -> emitted len
              | Error _ -> reject ()))
      end
    done;
    Stats.record_batch stats st_encode ~packets:!packets ~bytes:!bytes
      ~rejects:!rejects ~elapsed_ns:(t.now_ns () - t0))

(* ---- fused mode: one run-to-completion pass per packet, no [View.t] on
   the fast tier.  Counters mirror the staged stage rows exactly (same
   arming conditions, same increments); wall-clock cannot be split across
   fused stages, so the whole batch's latency lands on the decode row and
   the other rows report elapsed 0. ---- *)

let fused_batch t n =
  let fl = Option.get t.flight in
  let stats = t.stats in
  let verify_armed = Flight.verify_armed fl in
  let step_armed = Flight.classify_armed fl && t.default_inst <> None in
  (* timer-op bindings hoisted off the per-packet path: the wheel exists
     iff the machine is timed, so one match replaces [t.timed] plus
     [t.wheel] loads per packet; [apply_timer] itself is open-coded in
     the Fired arm below — at a 15 ns/pkt budget the call and the
     re-loads are measurable *)
  let wheel = t.wheel in
  let keyed = t.flows <> None in
  let tick1 = t.tick_ms = 1 in
  let respond_armed = Flight.n_responses fl > 0 in
  let d_bytes = ref 0 and d_rej = ref 0 in
  let v_pkts = ref 0 and v_bytes = ref 0 and v_rej = ref 0 in
  let s_pkts = ref 0 and s_bytes = ref 0 and s_rej = ref 0 in
  let e_pkts = ref 0 and e_bytes = ref 0 and e_rej = ref 0 in
  let t0 = t.now_ns () in
  for i = 0 to n - 1 do
    let blen = t.blen.(i) in
    d_bytes := !d_bytes + blen;
    if not (Flight.run_window fl ~off:0 ~len:blen t.inbuf.(i)) then begin
      t.status.(i) <- rej_decode;
      t.last_error.(i) <- Flight.last_error fl;
      incr d_rej
    end
    else begin
      t.status.(i) <- live;
      t.last_error.(i) <- None;
      (* §3.4: the packet is fully validated (decode above, semantic
         verify here) before any machine step or response below *)
      if verify_armed then begin
        incr v_pkts;
        v_bytes := !v_bytes + blen;
        if not (Flight.verify_ok fl) then begin
          t.status.(i) <- rej_verify;
          incr v_rej
        end
      end;
      if t.status.(i) = live && step_armed then begin
        incr s_pkts;
        s_bytes := !s_bytes + blen;
        let ev = Flight.event fl in
        if ev >= 0 then begin
          let k = Flight.flow_key fl in
          let inst =
            match t.default_inst with
            | Some dflt -> touch_flow t dflt k
            | None -> assert false (* step_armed implies a default *)
          in
          match Fsm.Step.fire_id inst ev with
          | Fsm.Step.Fired ->
            (match wheel with
            | None -> ()
            | Some w ->
              let tw =
                Fsm.Step.timer_word (Fsm.Step.plan_of inst)
                  (Fsm.Step.last_transition inst)
              in
              if tw <> Fsm.Step.timer_none then begin
                if tw > 0 then begin
                  let wn = Wheel.now w in
                  (* same word at the same wheel tick: bit-identical
                     deadline already armed — skip the wheel *)
                  if not (Fsm.Step.timer_unchanged inst ~word:tw ~wnow:wn)
                  then
                    let after =
                      if tick1 then Fsm.Step.timer_after_ms tw
                      else
                        (Fsm.Step.timer_after_ms tw + t.tick_ms - 1)
                        / t.tick_ms
                    in
                    Fsm.Step.note_timer_armed inst
                      ~hint:
                        (Wheel.arm_hint w
                           ~hint:(Fsm.Step.timer_hint inst)
                           ~key:(if keyed then k else no_key)
                           ~after ~ev:(Fsm.Step.timer_event tw))
                      ~word:tw ~wnow:wn
                end
                else begin
                  ignore (Wheel.cancel w (if keyed then k else no_key));
                  Fsm.Step.clear_timer_armed inst
                end
              end);
            (match t.on_transition with
            | None -> ()
            | Some hook ->
              let plan = Fsm.Step.plan_of inst in
              hook (Fsm.Step.transition plan (Fsm.Step.last_transition inst)))
          | Fsm.Step.Unknown_event | Fsm.Step.Unhandled
          | Fsm.Step.Nondeterministic ->
            t.status.(i) <- rej_step;
            incr s_rej
        end
      end;
      if t.status.(i) = live && respond_armed then begin
        let ridx = Flight.response fl in
        if ridx >= 0 then begin
          incr e_pkts;
          t.cur_slot <- i;
          ensure_reply t blen;
          Bytes.blit_string t.inbuf.(i) 0 t.reply_buf 0 blen;
          if Flight.apply fl ridx t.reply_buf ~len:blen then begin
            e_bytes := !e_bytes + blen;
            emit_reply t blen
          end
          else begin
            t.status.(i) <- rej_encode;
            incr e_rej
          end
        end
      end
    end
  done;
  let elapsed = t.now_ns () - t0 in
  Stats.record_batch stats st_decode ~packets:n ~bytes:!d_bytes
    ~rejects:!d_rej ~elapsed_ns:elapsed;
  if verify_armed then
    Stats.record_batch stats st_verify ~packets:!v_pkts ~bytes:!v_bytes
      ~rejects:!v_rej ~elapsed_ns:0;
  if step_armed then
    Stats.record_batch stats st_step ~packets:!s_pkts ~bytes:!s_bytes
      ~rejects:!s_rej ~elapsed_ns:0;
  if respond_armed then
    Stats.record_batch stats st_encode ~packets:!e_pkts ~bytes:!e_bytes
      ~rejects:!e_rej ~elapsed_ns:0

(* Advance the wheel to the clock and fire what came due.  The expiry
   count (and any refused expiries) land on the step-stage counters —
   timeout events are step traffic like any other. *)
let poll_timers t =
  match t.wheel with
  | None -> 0
  | Some w ->
    let c = t.clock_ms () in
    let target = if t.tick_ms = 1 then c else c / t.tick_ms in
    if target <= Wheel.now w then 0
    else begin
      let t0 = t.now_ns () in
      t.expiry_refused <- 0;
      let fired = Wheel.advance w ~now:target t.expiry_cb in
      let refused = t.expiry_refused in
      if fired > 0 || refused > 0 then
        Stats.record_batch t.stats st_step ~packets:(fired + refused) ~bytes:0
          ~rejects:refused ~elapsed_ns:(t.now_ns () - t0);
      sync_timer_stats t;
      fired
    end

let timers_live t = match t.wheel with None -> 0 | Some w -> Wheel.live w

let next_timer_s t =
  match t.wheel with
  | None -> None
  | Some w ->
    let due = Wheel.next_due w in
    if due < 0 then None
    else begin
      let ms = (due * t.tick_ms) - t.clock_ms () in
      Some (if ms <= 0 then 0. else float_of_int ms /. 1e3)
    end

(* Allocation-free sibling of [next_timer_s] for event loops that poll
   it every pass: the option + boxed float there is one small block per
   idle iteration, which the batched server's 0 B/pkt budget cannot
   absorb. *)
let next_timer_ms t =
  match t.wheel with
  | None -> -1
  | Some w ->
    let due = Wheel.next_due w in
    if due < 0 then -1
    else begin
      let ms = (due * t.tick_ms) - t.clock_ms () in
      if ms <= 0 then 0 else ms
    end

let peek_flow t k =
  match t.flows with
  | None -> None
  | Some tbl ->
    let slot = hfind tbl k in
    if slot >= 0 then Some tbl.insts.(slot) else None

let run_window t n =
  (match t.mode with Staged -> staged_batch t n | Fused -> fused_batch t n);
  (* replies fired past this point (timer expiries) have no window slot *)
  t.cur_slot <- -1;
  if t.timed then ignore (poll_timers t);
  reset_reply_buf t

let process_batch t pkts n =
  if n > t.cfg.batch then invalid_arg "Pipeline.process_batch: batch too large";
  for i = 0 to n - 1 do
    t.inbuf.(i) <- pkts.(i);
    t.blen.(i) <- String.length pkts.(i)
  done;
  run_window t n

(* The single-packet decode-error slow path for the fused fast tier: the
   linear plan collapses errors to a boolean, so recover the detail from
   the pooled view.  If the view disagrees and accepts, the fused decoder
   has a bug — report it as such (the differential oracle hunts exactly
   this). *)
let recover_decode_error t =
  match (t.last_error.(0), t.seq) with
  | Some e, _ -> e
  | None, Some seq -> (
    (* stacked tier: replay the chain through the sequential reference to
       name the failing layer *)
    match F.Stack.Seq.decode seq ~len:t.blen.(0) t.inbuf.(0) with
    | Error reason -> F.Codec.Eval_error { path = []; reason }
    | Ok () ->
      F.Codec.Eval_error { path = []; reason = "fused chain decode diverged" })
  | None, None -> (
    match F.View.decode t.views.(0) ~len:t.blen.(0) t.inbuf.(0) with
    | Error e -> e
    | Ok () ->
      F.Codec.Eval_error { path = []; reason = "fused decode diverged" })

let outcome_of_slot0 t =
  match t.status.(0) with
  | s when s = rej_decode -> Rejected_decode (recover_decode_error t)
  | s when s = rej_verify -> Rejected_verify
  | s when s = rej_step -> Rejected_step
  | s when s = rej_encode -> Rejected_encode
  | _ -> Accepted

let process t pkt =
  let pkts = t.inbuf in
  pkts.(0) <- pkt;
  t.blen.(0) <- String.length pkt;
  run_window t 1;
  outcome_of_slot0 t

(* Batch-drain entry point for external slab owners (the socket front
   end): process one packet sitting in a caller-owned buffer without
   copying it.  [Bytes.unsafe_to_string] is safe under the same contract
   as [run]: the buffer is only read during this call and the caller must
   not mutate it until the call returns (a socket slab slot is not
   recycled before [Slab.release]). *)
let process_buffer t buf ~len =
  if len < 0 || len > Bytes.length buf then
    invalid_arg "Pipeline.process_buffer: len out of bounds";
  t.inbuf.(0) <- Bytes.unsafe_to_string buf;
  t.blen.(0) <- len;
  run_window t 1;
  outcome_of_slot0 t

(* Ring-driven operation for the sharded path: the consumer domain has
   already claimed a batch of [n] slots from its [Spsc] ring; map them
   into the batch window and run it.  The caller polls and releases —
   keeping claim lifetime in one place lets [Shard] check migration
   fences between the claim and the run.  [Bytes.unsafe_to_string] is
   safe under the ring's contract: slots are only read until
   [Spsc.release], and the producer cannot reuse them before it. *)
let process_ring_batch t ring ~n =
  if n > t.cfg.batch then invalid_arg "Pipeline.process_ring_batch: batch too large";
  for i = 0 to n - 1 do
    t.inbuf.(i) <- Bytes.unsafe_to_string (Spsc.buf ring i);
    t.blen.(i) <- Spsc.len ring i
  done;
  run_window t n

(* Slab-window sibling of [process_ring_batch] for external slab owners
   (the batched socket front end): map a popped run of caller-owned
   slots into the window and run it once, so stats recording and timer
   polling cost per batch, not per packet.  Same read-only contract as
   [run]: slots are not touched by the producer until [Slab.release],
   which must come after this returns (and after any replies staged via
   [on_reply_slot] — which receives each reply's window index — are
   flushed, if their destinations live in per-slot sidecars). *)
let process_slab_batch t slab ~n =
  if n > t.cfg.batch then
    invalid_arg "Pipeline.process_slab_batch: batch too large";
  for i = 0 to n - 1 do
    t.inbuf.(i) <- Bytes.unsafe_to_string (Slab.buf slab i);
    t.blen.(i) <- Slab.len slab i
  done;
  run_window t n

(* Slab-driven operation: a producer [feed]s — blitting into a
   preallocated slot, blocking when the slab is full (backpressure) — and
   a consumer domain sits in [run], processing whole slot runs in place.
   [Bytes.unsafe_to_string] is safe here: the batch's slots are only read
   until [Slab.release], and the producer cannot touch them before it. *)
let feed t pkt = Slab.push t.input pkt
let feed_batch t pkts n = Slab.push_batch t.input pkts n
let close_input t = Slab.close t.input

let run t =
  let slab = t.input in
  let rec loop () =
    let n = Slab.pop_batch slab ~max:t.cfg.batch in
    if n > 0 then begin
      for i = 0 to n - 1 do
        t.inbuf.(i) <- Bytes.unsafe_to_string (Slab.buf slab i);
        t.blen.(i) <- Slab.len slab i
      done;
      run_window t n;
      Slab.release slab;
      loop ()
    end
  in
  loop ()
