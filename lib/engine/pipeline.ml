module F = Netdsl_format
module Fsm = Netdsl_fsm

type config = {
  batch : int;
  ring_capacity : int;
  max_flows : int;
}

let default_config = { batch = 64; ring_capacity = 1024; max_flows = 65536 }

(* Stage indices — fixed layout, also the Stats layout. *)
let st_decode = 0
let st_verify = 1
let st_step = 2
let st_encode = 3

let stage_names = [ "decode"; "verify"; "step"; "encode" ]

(* Per-slot status during a batch. *)
let live = 0
let rej_decode = 1
let rej_verify = 2
let rej_step = 3
let rej_encode = 4

type outcome =
  | Accepted
  | Rejected_decode of F.Codec.error
  | Rejected_verify
  | Rejected_step
  | Rejected_encode

(* A per-flow machine instance threaded on an intrusive LRU list: the
   sentinel's successor is the oldest-idle flow, its predecessor the most
   recently touched.  Touch and evict are O(1) and allocation-free. *)
type flow = {
  f_key : int64;
  f_inst : Fsm.Step.instance;
  mutable f_prev : flow;
  mutable f_next : flow;
}

type flow_table = {
  ft : (int64, flow) Hashtbl.t;
  sentinel : flow;
  max_flows : int;
}

let unlink f =
  f.f_prev.f_next <- f.f_next;
  f.f_next.f_prev <- f.f_prev

(* Insert just before the sentinel: the most-recently-used end. *)
let push_mru s f =
  f.f_prev <- s.f_prev;
  f.f_next <- s;
  s.f_prev.f_next <- f;
  s.f_prev <- f

type t = {
  cfg : config;
  fmt : F.Desc.t;
  verify : (F.View.t -> bool) option;
  (* the unified classifier: >= 0 is an event id for the plan, any negative
     value means the packet does not concern the machine *)
  classifier : (F.View.t -> int) option;
  plan : Fsm.Step.plan option;
  flow_key : string option;
  on_transition : (Fsm.Machine.transition -> unit) option;
  respond : (F.View.t -> Fsm.Step.instance -> F.Value.t option) option;
  respond_patch :
    (F.View.t -> Fsm.Step.instance -> (string * int64) list option) option;
  respond_fmt : F.Desc.t;
  on_response : string -> unit;
  (* encode-stage machinery: a compiled emitter for [respond_fmt], a cache
     of compiled in-place patchers (keyed by field, against [fmt] — patches
     rewrite the *request* bytes), and one reusable reply buffer *)
  emitter : F.Emit.t;
  patchers : (string, (F.Emit.patcher, string) result) Hashtbl.t;
  mutable reply_buf : Bytes.t;
  stats : Stats.t;
  (* batch scratch: one reusable view per slot, so a whole batch of decoded
     packets is alive at once while later stages run over it *)
  views : F.View.t array;
  status : int array;
  blen : int array;
  last_error : F.Codec.error option array;
  input : string Ring.t;
  inbuf : string array;
  default_inst : Fsm.Step.instance option;
  flows : flow_table option;
}

(* Event id handed to [Step.fire_id] for a classified event name the plan
   does not know: out of range on the high side, so it is refused as
   [Unknown_event] rather than mistaken for pass-through (negative). *)
let unknown_event = max_int

let create ?(config = default_config) ?verify ?classify ?classify_id ?machine
    ?flow_key ?on_transition ?respond ?respond_patch ?respond_fmt
    ?(on_response = fun _ -> ()) fmt =
  if config.batch <= 0 then invalid_arg "Pipeline.create: batch must be positive";
  if config.max_flows <= 0 then
    invalid_arg "Pipeline.create: max_flows must be positive";
  let plan = Option.map Fsm.Step.compile machine in
  let classifier =
    match (classify_id, classify, plan) with
    | Some f, _, _ -> Some f
    | None, Some f, Some plan ->
      Some
        (fun view ->
          match f view with
          | None -> -1
          | Some name ->
            let id = Fsm.Step.event_id plan name in
            if id < 0 then unknown_event else id)
    | None, _, _ -> None
  in
  let default_inst = Option.map Fsm.Step.instance plan in
  let respond_fmt = Option.value respond_fmt ~default:fmt in
  {
    cfg = config;
    fmt;
    verify;
    classifier;
    plan;
    flow_key;
    on_transition;
    respond;
    respond_patch;
    respond_fmt;
    on_response;
    emitter = F.Emit.create respond_fmt;
    patchers = Hashtbl.create 4;
    reply_buf = Bytes.create (max 64 (F.Sizing.min_bytes respond_fmt));
    stats = Stats.create stage_names;
    views = Array.init config.batch (fun _ -> F.View.create fmt);
    status = Array.make config.batch live;
    blen = Array.make config.batch 0;
    last_error = Array.make config.batch None;
    input = Ring.create ~capacity:config.ring_capacity;
    inbuf = Array.make config.batch "";
    default_inst;
    flows =
      (match (default_inst, flow_key) with
      | Some inst, Some _ ->
        let rec sentinel =
          { f_key = Int64.min_int; f_inst = inst; f_prev = sentinel;
            f_next = sentinel }
        in
        Some
          { ft = Hashtbl.create 64; sentinel; max_flows = config.max_flows }
      | _ -> None);
  }

let stats t = t.stats
let format t = t.fmt
let machine_plan t = t.plan
let flow_count t = match t.flows with None -> 0 | Some tbl -> Hashtbl.length tbl.ft

let instance_for t view =
  match t.default_inst with
  | None -> None
  | Some dflt -> (
    match (t.flow_key, t.flows) with
    | Some key, Some tbl -> (
      match F.View.find_int view key with
      | None -> Some dflt
      | Some k -> (
        match Hashtbl.find_opt tbl.ft k with
        | Some f ->
          unlink f;
          push_mru tbl.sentinel f;
          Some f.f_inst
        | None ->
          if Hashtbl.length tbl.ft >= tbl.max_flows then begin
            let victim = tbl.sentinel.f_next in
            unlink victim;
            Hashtbl.remove tbl.ft victim.f_key;
            Stats.note_evicted_flow t.stats
          end;
          let rec f =
            { f_key = k; f_inst = Fsm.Step.instance (Option.get t.plan);
              f_prev = f; f_next = f }
          in
          push_mru tbl.sentinel f;
          Hashtbl.add tbl.ft k f;
          Some f.f_inst))
    | _ -> Some dflt)

let ensure_reply t len =
  if Bytes.length t.reply_buf < len then
    t.reply_buf <- Bytes.create (max len (2 * Bytes.length t.reply_buf))

let patcher_for t field =
  match Hashtbl.find_opt t.patchers field with
  | Some r -> r
  | None ->
    let r = F.Emit.patcher t.fmt field in
    Hashtbl.add t.patchers field r;
    r

(* Emit into the reusable reply buffer, doubling it if the message does not
   fit (the only source of [Truncated] on a caller-owned buffer). *)
let rec encode_reply t value =
  match F.Emit.encode_into t.emitter t.reply_buf value with
  | Ok _ as ok -> ok
  | Error (F.Codec.Io { error = Netdsl_util.Bitio.Truncated _; _ }) ->
    t.reply_buf <- Bytes.create (2 * max 32 (Bytes.length t.reply_buf));
    encode_reply t value
  | Error _ as e -> e

let now () = Unix.gettimeofday ()
let elapsed_ns t0 t1 = int_of_float ((t1 -. t0) *. 1e9)

(* Process packets [0, n) of [pkts] through all four stages.  Each stage
   walks the whole batch before the next starts, so stage timing is a
   straight wall-clock interval around a tight loop. *)
let process_batch t pkts n =
  if n > t.cfg.batch then invalid_arg "Pipeline.process_batch: batch too large";
  let stats = t.stats in
  (* decode (includes full verification of the view) *)
  let bytes = ref 0 in
  let rejects = ref 0 in
  let t0 = now () in
  for i = 0 to n - 1 do
    let pkt = pkts.(i) in
    t.blen.(i) <- String.length pkt;
    bytes := !bytes + t.blen.(i);
    match F.View.decode t.views.(i) pkt with
    | Ok () ->
      t.status.(i) <- live;
      t.last_error.(i) <- None
    | Error e ->
      t.status.(i) <- rej_decode;
      t.last_error.(i) <- Some e;
      incr rejects
  done;
  Stats.record_batch stats st_decode ~packets:n ~bytes:!bytes ~rejects:!rejects
    ~elapsed_ns:(elapsed_ns t0 (now ()));
  (* verify: caller-supplied semantic predicate over the view *)
  (match t.verify with
  | None -> ()
  | Some pred ->
    let packets = ref 0 and bytes = ref 0 and rejects = ref 0 in
    let t0 = now () in
    for i = 0 to n - 1 do
      if t.status.(i) = live then begin
        incr packets;
        bytes := !bytes + t.blen.(i);
        if not (pred t.views.(i)) then begin
          t.status.(i) <- rej_verify;
          incr rejects
        end
      end
    done;
    Stats.record_batch stats st_verify ~packets:!packets ~bytes:!bytes
      ~rejects:!rejects ~elapsed_ns:(elapsed_ns t0 (now ())));
  (* step: drive the per-flow compiled machine with the classified event id.
     The accept path is ids and flat arrays end to end — no strings, no
     allocation; label reconstruction happens only inside the opt-in
     [on_transition] hook. *)
  (match (t.classifier, t.default_inst) with
  | Some classify, Some _ ->
    let packets = ref 0 and bytes = ref 0 and rejects = ref 0 in
    let t0 = now () in
    for i = 0 to n - 1 do
      if t.status.(i) = live then begin
        incr packets;
        bytes := !bytes + t.blen.(i);
        let ev = classify t.views.(i) in
        if ev >= 0 then begin
          let inst = Option.get (instance_for t t.views.(i)) in
          match Fsm.Step.fire_id inst ev with
          | Fsm.Step.Fired -> (
            match t.on_transition with
            | None -> ()
            | Some hook ->
              (* slow path: recover the transition (and its label) from the
                 plan's intern tables *)
              let plan = Fsm.Step.plan_of inst in
              hook (Fsm.Step.transition plan (Fsm.Step.last_transition inst)))
          | Fsm.Step.Unknown_event | Fsm.Step.Unhandled
          | Fsm.Step.Nondeterministic ->
            t.status.(i) <- rej_step;
            incr rejects
        end
      end
    done;
    Stats.record_batch stats st_step ~packets:!packets ~bytes:!bytes
      ~rejects:!rejects ~elapsed_ns:(elapsed_ns t0 (now ()))
  | _ -> ());
  (* encode: build and emit responses.  The in-place patch path is tried
     first — it rewrites a copy of the request's wire bytes and updates the
     checksum incrementally; otherwise the compiled emitter streams the
     reply into the reusable buffer.  The interpreting codec is never on
     this path. *)
  (match (t.respond, t.respond_patch) with
  | None, None -> ()
  | _ ->
    let packets = ref 0 and bytes = ref 0 and rejects = ref 0 in
    let t0 = now () in
    for i = 0 to n - 1 do
      if t.status.(i) = live then begin
        let view = t.views.(i) in
        let inst =
          match instance_for t view with
          | Some i -> i
          | None -> invalid_arg "Pipeline: a responder requires ~machine"
        in
        let emitted len =
          bytes := !bytes + len;
          t.on_response (Bytes.sub_string t.reply_buf 0 len)
        in
        let reject () =
          t.status.(i) <- rej_encode;
          incr rejects
        in
        let patched =
          match t.respond_patch with
          | None -> false
          | Some respond_patch -> (
            match respond_patch view inst with
            | None -> false
            | Some mutations ->
              incr packets;
              let len = F.View.length_bytes view in
              ensure_reply t len;
              Bytes.blit_string (F.View.raw view) 0 t.reply_buf 0 len;
              let ok =
                List.for_all
                  (fun (field, v) ->
                    match patcher_for t field with
                    | Error _ -> false
                    | Ok p -> (
                      match F.Emit.patch p ~off:0 ~len t.reply_buf v with
                      | Ok () -> true
                      | Error _ -> false))
                  mutations
              in
              if ok then emitted len else reject ();
              true)
        in
        if not patched then
          match t.respond with
          | None -> ()
          | Some respond -> (
            match respond view inst with
            | None -> ()
            | Some value -> (
              incr packets;
              match encode_reply t value with
              | Ok len -> emitted len
              | Error _ -> reject ()))
      end
    done;
    Stats.record_batch stats st_encode ~packets:!packets ~bytes:!bytes
      ~rejects:!rejects ~elapsed_ns:(elapsed_ns t0 (now ())))

let process t pkt =
  let pkts = t.inbuf in
  pkts.(0) <- pkt;
  process_batch t pkts 1;
  match t.status.(0) with
  | s when s = rej_decode -> Rejected_decode (Option.get t.last_error.(0))
  | s when s = rej_verify -> Rejected_verify
  | s when s = rej_step -> Rejected_step
  | s when s = rej_encode -> Rejected_encode
  | _ -> Accepted

(* Ring-driven operation: a producer [feed]s (blocking when the ring is
   full — backpressure), a consumer domain sits in [run]. *)
let feed t pkt = Ring.push t.input pkt
let close_input t = Ring.close t.input

let run t =
  let rec loop () =
    let n = Ring.pop_into t.input t.inbuf in
    if n > 0 then begin
      process_batch t t.inbuf n;
      loop ()
    end
  in
  loop ()
