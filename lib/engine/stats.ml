(* Per-stage counters and latency histograms.

   A [t] is owned by one domain and mutated without synchronisation — the
   engine gives each worker its own instance and merges after the fact
   ([merge_into]), so the hot path carries no atomics or locks. *)

let buckets = 40 (* log2 ns buckets: covers < 1 ns .. ~9 min *)

type stage = {
  s_name : string;
  mutable packets : int;
  mutable bytes : int;
  mutable rejects : int;
  mutable lat_ns : int; (* total latency attributed to this stage *)
  hist : int array; (* hist.(i): per-packet latencies in [2^i, 2^i+1) ns *)
}

type t = {
  stages : stage array;
  mutable evicted_flows : int;
  mutable unkeyed : int;
  mutable timers_expired : int;
  mutable timers_cancelled : int;
  mutable timers_cascaded : int;
  mutable warnings : string list; (* newest first; deduplicated *)
}

let create names =
  if names = [] then invalid_arg "Stats.create: no stages";
  {
    stages =
      Array.of_list
        (List.map
           (fun s_name ->
             { s_name; packets = 0; bytes = 0; rejects = 0; lat_ns = 0;
               hist = Array.make buckets 0 })
           names);
    evicted_flows = 0;
    unkeyed = 0;
    timers_expired = 0;
    timers_cancelled = 0;
    timers_cascaded = 0;
    warnings = [];
  }

let note_evicted_flow t = t.evicted_flows <- t.evicted_flows + 1
let evicted_flows t = t.evicted_flows

let note_unkeyed ?(n = 1) t = t.unkeyed <- t.unkeyed + n
let unkeyed t = t.unkeyed

let note_timers ?(expired = 0) ?(cancelled = 0) ?(cascaded = 0) t =
  t.timers_expired <- t.timers_expired + expired;
  t.timers_cancelled <- t.timers_cancelled + cancelled;
  t.timers_cascaded <- t.timers_cascaded + cascaded

let timers_expired t = t.timers_expired
let timers_cancelled t = t.timers_cancelled
let timers_cascaded t = t.timers_cascaded

let note_warning t msg =
  if not (List.mem msg t.warnings) then t.warnings <- msg :: t.warnings

let warnings t = List.rev t.warnings

let stage_names t = Array.to_list (Array.map (fun s -> s.s_name) t.stages)

let stage_index t name =
  let rec go i =
    if i >= Array.length t.stages then
      invalid_arg (Printf.sprintf "Stats: unknown stage %S" name)
    else if String.equal t.stages.(i).s_name name then i
    else go (i + 1)
  in
  go 0

let bucket_of_ns ns =
  if ns <= 0 then 0
  else
    let b = ref 0 in
    let v = ref ns in
    while !v > 1 do
      incr b;
      v := !v lsr 1
    done;
    min !b (buckets - 1)

let record t i ~bytes ~ns =
  let s = t.stages.(i) in
  s.packets <- s.packets + 1;
  s.bytes <- s.bytes + bytes;
  s.lat_ns <- s.lat_ns + ns;
  let h = s.hist in
  let b = bucket_of_ns ns in
  h.(b) <- h.(b) + 1

let reject t i ~bytes =
  let s = t.stages.(i) in
  s.packets <- s.packets + 1;
  s.bytes <- s.bytes + bytes;
  s.rejects <- s.rejects + 1

let record_batch t i ~packets ~bytes ~rejects ~elapsed_ns =
  (* Batched stages time the whole batch; the histogram gets the per-packet
     mean, once per batch — cheap, and still a faithful latency profile at
     batch granularity. *)
  let s = t.stages.(i) in
  s.packets <- s.packets + packets;
  s.bytes <- s.bytes + bytes;
  s.rejects <- s.rejects + rejects;
  s.lat_ns <- s.lat_ns + elapsed_ns;
  if packets > 0 then begin
    let b = bucket_of_ns (elapsed_ns / packets) in
    s.hist.(b) <- s.hist.(b) + packets
  end

let merge_into ~into src =
  if Array.length into.stages <> Array.length src.stages then
    invalid_arg "Stats.merge_into: stage mismatch";
  into.evicted_flows <- into.evicted_flows + src.evicted_flows;
  into.unkeyed <- into.unkeyed + src.unkeyed;
  into.timers_expired <- into.timers_expired + src.timers_expired;
  into.timers_cancelled <- into.timers_cancelled + src.timers_cancelled;
  into.timers_cascaded <- into.timers_cascaded + src.timers_cascaded;
  List.iter (note_warning into) (warnings src);
  Array.iteri
    (fun i (s : stage) ->
      let d = into.stages.(i) in
      if not (String.equal d.s_name s.s_name) then
        invalid_arg "Stats.merge_into: stage mismatch";
      d.packets <- d.packets + s.packets;
      d.bytes <- d.bytes + s.bytes;
      d.rejects <- d.rejects + s.rejects;
      d.lat_ns <- d.lat_ns + s.lat_ns;
      for b = 0 to buckets - 1 do
        d.hist.(b) <- d.hist.(b) + s.hist.(b)
      done)
    src.stages

let copy t =
  let c = create (stage_names t) in
  merge_into ~into:c t;
  c

let merge = function
  | [] -> invalid_arg "Stats.merge: empty list"
  | s :: rest ->
    let acc = copy s in
    List.iter (fun s -> merge_into ~into:acc s) rest;
    acc

(* Approximate percentile from the log2 histogram: the upper bound of the
   bucket containing the p-th packet. *)
let percentile_ns (s : stage) p =
  let total = Array.fold_left ( + ) 0 s.hist in
  if total = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (p *. float_of_int total))) in
    let seen = ref 0 and b = ref 0 in
    (try
       for i = 0 to buckets - 1 do
         seen := !seen + s.hist.(i);
         if !seen >= target then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    1 lsl !b
  end

let pp_ns ppf ns =
  if ns < 1_000 then Format.fprintf ppf "%dns" ns
  else if ns < 1_000_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Format.fprintf ppf "%.1fms" (float_of_int ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)

let pp ppf t =
  Format.fprintf ppf "%-8s %12s %14s %9s %10s %8s %8s@." "stage" "packets"
    "bytes" "rejects" "mean" "~p50" "~p99";
  Array.iter
    (fun (s : stage) ->
      let mean = if s.packets = 0 then 0 else s.lat_ns / s.packets in
      let ns_str ns = Format.asprintf "%a" pp_ns ns in
      Format.fprintf ppf "%-8s %12d %14d %9d %10s %8s %8s@." s.s_name s.packets
        s.bytes s.rejects (ns_str mean)
        (ns_str (percentile_ns s 0.50))
        (ns_str (percentile_ns s 0.99)))
    t.stages;
  if t.evicted_flows > 0 then
    Format.fprintf ppf "evicted flows: %d@." t.evicted_flows;
  if t.unkeyed > 0 then
    Format.fprintf ppf "unkeyed packets: %d@." t.unkeyed;
  if t.timers_expired > 0 || t.timers_cancelled > 0 || t.timers_cascaded > 0 then
    Format.fprintf ppf "timers: %d expired, %d cancelled, %d cascaded@."
      t.timers_expired t.timers_cancelled t.timers_cascaded;
  List.iter (fun w -> Format.fprintf ppf "warning: %s@." w) (warnings t)

let to_text t = Format.asprintf "%a" pp t

let totals t =
  let packets = ref 0 and bytes = ref 0 and rejects = ref 0 in
  Array.iter
    (fun (s : stage) ->
      packets := !packets + s.packets;
      bytes := !bytes + s.bytes;
      rejects := !rejects + s.rejects)
    t.stages;
  (!packets, !bytes, !rejects)

let stage_packets t i = t.stages.(i).packets
let stage_bytes t i = t.stages.(i).bytes
let stage_rejects t i = t.stages.(i).rejects
let stage_mean_ns t i =
  let s = t.stages.(i) in
  if s.packets = 0 then 0 else s.lat_ns / s.packets
