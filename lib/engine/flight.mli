(** Fused run-to-completion flight plans.

    A {!spec} is a declarative account of what the pipeline's stages do
    to a packet: which fields are read, the semantic verify predicate,
    the event classifier, the flow key, and the respond-by-patching
    rules.  {!compile} lowers it against a format once into a plan that
    the pipeline's [Fused] mode executes per packet run-to-completion —
    and simultaneously derives the {e staged} closures ([Staged] mode has
    always taken), so both modes run the same semantics from one source
    of truth and the differential oracle can diff them.

    When the format admits a {!Netdsl_format.View.Hot} plan for the
    demanded fields, the fused path decodes, validates and extracts
    native-int registers in one pass with no [View.t] and no per-packet
    allocation (the [`Linear] tier).  Otherwise it falls back to an
    internal reusable view ([`Interp] tier): fused control flow, staged
    decode machinery, identical acceptance either way.

    §3.4 ordering: {!run} completes {e all} syntactic validation before
    any field is surfaced, and the pipeline consults {!verify_ok} before
    any machine step or response — fusion moves the work, not its order. *)

(** {2 Specs} *)

type operand = Field of string | Const of int64
(** A value read from a decoded top-level field, or a literal. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * operand * operand
  | All of cond list  (** conjunction; [All \[\]] is true *)
  | Any of cond list  (** disjunction; [Any \[\]] is false *)
  | Not of cond
(** A predicate over decoded fields.  A comparison involving a field the
    packet does not carry is [false]. *)

type rule = { ev_when : cond; ev_name : string }
(** Classifier rule: first matching rule names the machine event. *)

type action = { set_field : string; set_to : operand }
(** In-place patch of one top-level scalar of the request bytes. *)

type response = { re_when : cond; re_set : action list }
(** Respond rule: first matching rule's actions build the reply. *)

type spec

val spec :
  ?demand:string list ->
  ?verify:cond ->
  ?classify:rule list ->
  ?flow_key:string ->
  ?respond:response list ->
  unit ->
  spec
(** [demand] forces extra fields to be extracted (beyond those the
    conditions, actions and flow key already demand). *)

val spec_flow_key : spec -> string option
(** The spec's flow-key field name, if declared — what sharded callers
    ({!Net.Server} with [workers > 1]) default their steering key to. *)

(** {2 Compilation} *)

type t

val compile : ?plan:Netdsl_fsm.Step.plan -> Netdsl_format.Desc.t -> spec -> t
(** Always succeeds: formats outside the linear hot subset compile to the
    [`Interp] tier.  Event names are interned against [plan] (an unknown
    name classifies to an id [Step.fire_id] refuses as [Unknown_event]). *)

val compile_stack :
  ?plan:Netdsl_fsm.Step.plan ->
  Netdsl_format.Stack.t ->
  spec ->
  (t, string) result
(** Compile the spec against a layered {!Netdsl_format.Stack} instead of a
    single format.  Every field the spec mentions must be a qualified
    ["layer.field"] name; conditions and keys read the chain's fused
    native-int registers (a field absent from the accepted packet's
    variant case compares [false], as on the view side), and respond
    actions patch inside the owning layer's recorded window.  Fails when
    the stack cannot be fused, a demanded register cannot be extracted, or
    an action names an unknown layer.  The resulting plan is the
    [`Stacked] tier: fused-only — the staged derivations return [None]
    (the chain's ground truth is {!Netdsl_format.Stack.Seq}, diffed by the
    [lib/check] chain oracle). *)

val tier : t -> [ `Linear | `Interp | `Stacked ]

val format : t -> Netdsl_format.Desc.t
(** For a [`Stacked] plan this is the outermost layer's format. *)

val stack_plan : t -> Netdsl_format.Stack.plan option
(** The compiled chain behind a [`Stacked] plan — its registers and layer
    windows read the state of this flight's last accepting {!run}. *)

val flow_key_name : t -> string option
(** The spec's flow-key field, if any. *)

(** {2 Per-packet execution}

    One packet at a time: {!run}, then the accessors, which read the
    state of the last successful [run]. *)

val run : t -> ?off:int -> ?len:int -> string -> bool
(** Decode and {e fully} validate one packet against the format — [true]
    exactly when [View.decode] would return [Ok].  [`Linear] tier
    allocates nothing. *)

val run_window : t -> off:int -> len:int -> string -> bool
(** {!run} with both bounds required: the fused per-packet loop uses this
    so the call site does not box an optional argument. *)

val last_error : t -> Netdsl_format.Codec.error option
(** Decode error detail of the last failed {!run} — [`Interp] tier only
    (the linear tier collapses errors to the boolean verdict). *)

val verify_armed : t -> bool
val verify_ok : t -> bool
(** The spec's verify predicate over the decoded packet ([true] when the
    spec has none). *)

val classify_armed : t -> bool

val event : t -> int
(** Classified event id: [>= 0] a plan event id, [-1] pass-through (no
    rule matched), [max_int] a rule named an event the plan lacks. *)

val flow_key : t -> int
(** The flow-key field of the decoded packet as a native int, or
    [min_int] when the packet carries no key (use the default shared
    instance, as the staged path does). *)

val no_key : int
(** = [min_int], the {!flow_key} "no key" sentinel. *)

val n_responses : t -> int

val response : t -> int
(** Index of the first matching respond rule, or [-1] for none. *)

val apply : t -> int -> Bytes.t -> len:int -> bool
(** [apply t idx buf ~len] applies respond rule [idx]'s patches in place
    to the reply bytes [buf.(0 .. len-1)] (a copy of the request).
    [false] if any patch fails to compile, validate, or find its source
    field — the packet is then rejected at the encode stage. *)

(** {2 Staged derivations}

    The spec expressed as the closures [Pipeline.create] has always
    taken; [Staged] mode runs on these, so both modes share one source
    of truth. *)

val staged_verify : t -> (Netdsl_format.View.t -> bool) option

val staged_classify_id : t -> (Netdsl_format.View.t -> int) option

val staged_respond_patch :
  t -> (Netdsl_format.View.t -> (string * int64) list option) option
(** Responses in a spec read only decoded fields, never machine state, so
    the derived closure takes just the view. *)
