(** Zero-allocation ingest ring.

    A preallocated ring of fixed-capacity [Bytes.t] buffers plus a length
    array.  The producer blits wire bytes into the next free slot (or
    leases it and fills it in place, e.g. from a socket read) and
    publishes the index; the consumer dequeues whole index runs with
    {!pop_batch}, processes them in place, and hands the run back with
    {!release}.  Steady-state ingest moves bytes only — no per-packet
    allocation on either side, unlike [string Ring.t] which allocates one
    string per packet.

    Single-producer / single-consumer.  Blocking and close semantics
    follow {!Ring}: producers block while the ring is full, {!pop_batch}
    blocks while it is empty, and {!close} releases every waiter.

    The slab is mutex-based and meant for one domain (or a producer
    thread that may block).  Its lock-free cross-domain sibling is
    {!Spsc} — same slot-ring shape, but atomics-only hand-off for the
    shard's per-worker rings. *)

type t

val create : ?slot_bytes:int -> capacity:int -> unit -> t
(** [create ~capacity ()] preallocates [capacity] slots of [slot_bytes]
    (default 2048) bytes each.  Raises [Invalid_argument] unless both are
    positive. *)

val capacity : t -> int
val slot_bytes : t -> int

val length : t -> int
(** Slots currently in flight (published and not yet released). *)

val close : t -> unit
(** Idempotent.  Producers return [false] / [None] once closed; the
    consumer drains what remains, then {!pop_batch} returns [0]. *)

val is_closed : t -> bool

(** {2 Producer side} *)

val push : t -> ?off:int -> ?len:int -> string -> bool
(** Blit one packet (or the window [pkt.(off .. off+len-1)]) into the
    next slot and publish it.  Blocks while the ring is full; [false] if
    the slab is closed.  Raises [Invalid_argument] if the window is out
    of bounds or longer than {!slot_bytes}. *)

val push_batch : t -> string array -> int -> bool
(** [push_batch t pkts n] publishes [pkts.(0 .. n-1)] as whole index
    runs, taking the lock once per free run rather than per packet.
    Blocks as needed; [false] if the slab closed before all [n] were
    published. *)

val lease : t -> Bytes.t option
(** Borrow the next free slot to fill in place (zero-copy ingest from a
    socket read).  Blocks while the ring is full; [None] if closed.  At
    most one lease may be outstanding; a second {!lease} — or any [push]
    while leased — raises [Invalid_argument]. *)

val publish : t -> int -> unit
(** Publish the leased slot with the given byte length.  Raises
    [Invalid_argument] without an outstanding lease or if the length
    exceeds {!slot_bytes}. *)

val abandon : t -> unit
(** Return the leased slot unpublished. *)

(** {2 Contiguous-run lease}

    The batched socket path ([recvmmsg]) fills many slots with one
    syscall: lease a whole run of free slots, let the kernel scatter
    datagrams straight into their buffers (lengths land in
    {!raw_lens}), then publish only the prefix that was filled.  The
    run is contiguous in array index space — it never wraps the ring
    seam — so a C stub may walk [raw_bufs]/[raw_lens] linearly from
    {!producer_slot}. *)

val lease_run : t -> max:int -> int
(** Lease up to [max] contiguous free slots starting at
    {!producer_slot}.  Returns the run length, [0] when the ring is
    full or closed — unlike {!lease} this never blocks; the socket
    loop owns the drop policy.  Raises [Invalid_argument] if a lease
    is already outstanding or [max <= 0]. *)

val producer_slot : t -> int
(** Array index of the first slot of the leased run (producer thread
    only; stable while the lease is outstanding). *)

val publish_run : t -> n:int -> unit
(** Publish the first [n] slots of the leased run — their lengths must
    already be stored in {!raw_lens} — and return the rest unfilled.
    [n = 0] abandons the whole run.  Raises [Invalid_argument] without
    an outstanding run, if [n] exceeds it, or if a published slot's
    recorded length is outside [0 .. slot_bytes]. *)

val raw_bufs : t -> Bytes.t array
val raw_lens : t -> int array
(** The backing slot arrays, exposed for the C-stub boundary (iovec
    construction and kernel-written datagram lengths).  Outside a
    leased run / claimed batch their contents are unstable; treat them
    as write-targets for the current lease only. *)

(** {2 Consumer side} *)

val pop_batch : t -> max:int -> int
(** Claim the next run of up to [max] published slots.  Blocks while the
    slab is empty and open; [0] means closed and drained.  The claimed
    slots stay owned by the consumer — readable via {!buf} / {!len}
    without locking — until {!release}.  Raises [Invalid_argument] if the
    previous batch has not been released (lease/return discipline). *)

val buf : t -> int -> Bytes.t
(** [buf t i] is the buffer of the [i]th slot of the current batch.
    Raises [Invalid_argument] outside [0 .. batch-1]. *)

val len : t -> int -> int
(** Published byte length of the [i]th slot of the current batch. *)

val batch_slot : t -> int -> int
(** Absolute array index of the [i]th slot of the current batch — the
    key under which a batched socket loop filed per-slot sidecar state
    (source address, owning listener) at ingest time. *)

val release : t -> unit
(** Hand the current batch's slots back to the producer.  Raises
    [Invalid_argument] if no batch is outstanding. *)
