type algorithm = Internet | Crc32 | Fletcher16 | Adler32 | Xor8 | Sum8

let algorithm_to_string = function
  | Internet -> "internet"
  | Crc32 -> "crc32"
  | Fletcher16 -> "fletcher16"
  | Adler32 -> "adler32"
  | Xor8 -> "xor8"
  | Sum8 -> "sum8"

let all_algorithms = [ Internet; Crc32; Fletcher16; Adler32; Xor8; Sum8 ]

let algorithm_of_string s =
  List.find_opt (fun a -> String.equal (algorithm_to_string a) s) all_algorithms

let width_bits = function
  | Internet | Fletcher16 -> 16
  | Crc32 | Adler32 -> 32
  | Xor8 | Sum8 -> 8

let range ?(off = 0) ?len s =
  let len = match len with None -> String.length s - off | Some l -> l in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Checksum: range out of bounds";
  (off, len)

let internet_checksum ?off ?len s =
  let off, len = range ?off ?len s in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    let word =
      (Char.code s.[off + !i] lsl 8) lor Char.code s.[off + !i + 1]
    in
    sum := !sum + word;
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (Char.code s.[off + len - 1] lsl 8);
  (* Fold carries back into the low 16 bits. *)
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let crc32_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?off ?len s =
  let off, len = range ?off ?len s in
  let table = Lazy.force crc32_table in
  let crc = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int64.logand (Int64.of_int32 (Int32.logxor !crc 0xFFFFFFFFl)) 0xFFFFFFFFL

let fletcher16 ?off ?len s =
  let off, len = range ?off ?len s in
  let a = ref 0 and b = ref 0 in
  for i = off to off + len - 1 do
    a := (!a + Char.code s.[i]) mod 255;
    b := (!b + !a) mod 255
  done;
  (!b lsl 8) lor !a

let adler32 ?off ?len s =
  let off, len = range ?off ?len s in
  let a = ref 1 and b = ref 0 in
  for i = off to off + len - 1 do
    a := (!a + Char.code s.[i]) mod 65521;
    b := (!b + !a) mod 65521
  done;
  Int64.of_int ((!b lsl 16) lor !a)

(* RFC 1624 incremental update.  With HC the stored checksum, the region's
   folded word sum is ~HC (mod 0xffff); replacing words summing to [removed]
   by words summing to [added] gives HC' = ~fold(~HC + ~removed + added),
   since ~x = 0xffff - x on 16 bits, i.e. negation mod 0xffff. *)
let internet_fold n =
  let n = ref n in
  while !n lsr 16 <> 0 do
    n := (!n land 0xFFFF) + (!n lsr 16)
  done;
  !n

let internet_delta ~checksum ~removed ~added =
  let removed = internet_fold removed and added = internet_fold added in
  let acc =
    (lnot checksum land 0xFFFF) + (lnot removed land 0xFFFF) + added
  in
  lnot (internet_fold acc) land 0xFFFF

let xor8 ?off ?len s =
  let off, len = range ?off ?len s in
  let acc = ref 0 in
  for i = off to off + len - 1 do
    acc := !acc lxor Char.code s.[i]
  done;
  !acc

let sum8 ?off ?len s =
  let off, len = range ?off ?len s in
  let acc = ref 0 in
  for i = off to off + len - 1 do
    acc := (!acc + Char.code s.[i]) land 0xFF
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Streaming interface: incremental computation over discontiguous
   segments, so a checksum can be taken over a window of a larger buffer
   with a sub-span read as zero — without copying the region first (the
   zero-copy decode path depends on this). *)

type stream =
  | S_internet of { mutable sum : int; mutable odd : bool }
      (* [odd] is set when the next byte is the low half of a 16-bit word. *)
  | S_crc32 of { mutable crc : int32 }
  | S_fletcher of { mutable fa : int; mutable fb : int }
  | S_adler of { mutable aa : int; mutable ab : int }
  | S_xor8 of { mutable acc : int }
  | S_sum8 of { mutable acc : int }

let stream_init = function
  | Internet -> S_internet { sum = 0; odd = false }
  | Crc32 -> S_crc32 { crc = 0xFFFFFFFFl }
  | Fletcher16 -> S_fletcher { fa = 0; fb = 0 }
  | Adler32 -> S_adler { aa = 1; ab = 0 }
  | Xor8 -> S_xor8 { acc = 0 }
  | Sum8 -> S_sum8 { acc = 0 }

let stream_byte st b =
  match st with
  | S_internet st ->
    st.sum <- st.sum + (if st.odd then b else b lsl 8);
    st.odd <- not st.odd
  | S_crc32 st ->
    let table = Lazy.force crc32_table in
    let idx = Int32.to_int (Int32.logand (Int32.logxor st.crc (Int32.of_int b)) 0xFFl) in
    st.crc <- Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical st.crc 8)
  | S_fletcher st ->
    st.fa <- (st.fa + b) mod 255;
    st.fb <- (st.fb + st.fa) mod 255
  | S_adler st ->
    st.aa <- (st.aa + b) mod 65521;
    st.ab <- (st.ab + st.aa) mod 65521
  | S_xor8 st -> st.acc <- st.acc lxor b
  | S_sum8 st -> st.acc <- (st.acc + b) land 0xFF

let stream_bytes st s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Checksum.stream_bytes: range out of bounds";
  match st with
  | S_internet st ->
    (* Hot path of the zero-copy decoder.  After fixing word parity, the
       bulk is accumulated as unboxed little-endian 16-bit words built from
       byte loads (unrolled four words per iteration).
       The LE word sum ≡ E + 256·O (mod 65535) where
       E/O are the even/odd-offset byte sums — and the big-endian word sum
       we need is its byte swap, since 2^16 ≡ 1 (mod 65535).  A positive
       block must stay positive (fold maps a positive multiple of 65535 to
       0xFFFF, zero to 0), so a collapsing residue is added back as 65535. *)
    let i = ref off in
    let stop = off + len in
    if st.odd && !i < stop then begin
      st.sum <- st.sum + Char.code (String.unsafe_get s !i);
      st.odd <- false;
      incr i
    end;
    if stop - !i >= 2 then begin
      let byte k = Char.code (String.unsafe_get s k) in
      let acc = ref 0 in
      while stop - !i >= 8 do
        let k = !i in
        acc :=
          !acc + byte k + byte (k + 2) + byte (k + 4) + byte (k + 6)
          + ((byte (k + 1) + byte (k + 3) + byte (k + 5) + byte (k + 7)) lsl 8);
        i := k + 8
      done;
      while stop - !i >= 2 do
        acc := !acc + byte !i + (byte (!i + 1) lsl 8);
        i := !i + 2
      done;
      let m = !acc mod 65535 in
      if m = 0 then (if !acc > 0 then st.sum <- st.sum + 65535)
      else st.sum <- st.sum + (((m land 0xFF) lsl 8) lor (m lsr 8))
    end;
    if !i < stop then begin
      st.sum <- st.sum + (Char.code (String.unsafe_get s !i) lsl 8);
      st.odd <- true
    end
  | S_crc32 st ->
    let table = Lazy.force crc32_table in
    let crc = ref st.crc in
    for i = off to off + len - 1 do
      let idx =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !crc (Int32.of_int (Char.code (String.unsafe_get s i))))
             0xFFl)
      in
      crc := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !crc 8)
    done;
    st.crc <- !crc
  | S_fletcher st ->
    let fa = ref st.fa and fb = ref st.fb in
    for i = off to off + len - 1 do
      fa := (!fa + Char.code (String.unsafe_get s i)) mod 255;
      fb := (!fb + !fa) mod 255
    done;
    st.fa <- !fa;
    st.fb <- !fb
  | S_adler st ->
    let aa = ref st.aa and ab = ref st.ab in
    for i = off to off + len - 1 do
      aa := (!aa + Char.code (String.unsafe_get s i)) mod 65521;
      ab := (!ab + !aa) mod 65521
    done;
    st.aa <- !aa;
    st.ab <- !ab
  | S_xor8 st ->
    let acc = ref st.acc in
    for i = off to off + len - 1 do
      acc := !acc lxor Char.code (String.unsafe_get s i)
    done;
    st.acc <- !acc
  | S_sum8 st ->
    let acc = ref st.acc in
    for i = off to off + len - 1 do
      acc := (!acc + Char.code (String.unsafe_get s i)) land 0xFF
    done;
    st.acc <- !acc

let stream_zeros st n =
  if n < 0 then invalid_arg "Checksum.stream_zeros";
  match st with
  | S_internet st ->
    (* Zero bytes add nothing to the sum; only the word parity moves. *)
    if n land 1 = 1 then st.odd <- not st.odd
  | S_crc32 st ->
    let table = Lazy.force crc32_table in
    let crc = ref st.crc in
    for _ = 1 to n do
      let idx = Int32.to_int (Int32.logand !crc 0xFFl) in
      crc := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !crc 8)
    done;
    st.crc <- !crc
  | S_fletcher st ->
    (* fa is unchanged by zero bytes; fb gains fa per byte. *)
    st.fb <- (st.fb + (n mod 255 * st.fa)) mod 255
  | S_adler st -> st.ab <- (st.ab + (n mod 65521 * st.aa)) mod 65521
  | S_xor8 _ | S_sum8 _ -> ()

let stream_result st =
  match st with
  | S_internet st ->
    let sum = ref st.sum in
    while !sum lsr 16 <> 0 do
      sum := (!sum land 0xFFFF) + (!sum lsr 16)
    done;
    Int64.of_int (lnot !sum land 0xFFFF)
  | S_crc32 st ->
    Int64.logand (Int64.of_int32 (Int32.logxor st.crc 0xFFFFFFFFl)) 0xFFFFFFFFL
  | S_fletcher st -> Int64.of_int ((st.fb lsl 8) lor st.fa)
  | S_adler st -> Int64.of_int ((st.ab lsl 16) lor st.aa)
  | S_xor8 st -> Int64.of_int st.acc
  | S_sum8 st -> Int64.of_int st.acc

(* Byte [i] of [s] with the bits inside [zoff, zoff+zlen) (absolute bit
   offsets, MSB-first within a byte) forced to zero. *)
let masked_byte s i ~zoff ~zlen =
  let b = Char.code s.[i] in
  let first = i * 8 and stop = zoff + zlen in
  let mask = ref 0 in
  for bit = 0 to 7 do
    let abs = first + bit in
    if abs >= zoff && abs < stop then mask := !mask lor (0x80 lsr bit)
  done;
  b land lnot !mask

let compute_zeroed alg ~off ~len ~zero_bit_off ~zero_bit_len s =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Checksum.compute_zeroed: range out of bounds";
  let st = stream_init alg in
  (* Clip the zero span to the window. *)
  let zlo = max zero_bit_off (off * 8) in
  let zhi = min (zero_bit_off + zero_bit_len) ((off + len) * 8) in
  if zhi <= zlo then stream_bytes st s off len
  else begin
    let zfirst = zlo / 8 and zlast = (zhi - 1) / 8 in
    stream_bytes st s off (zfirst - off);
    let feed_boundary i =
      stream_byte st (masked_byte s i ~zoff:zlo ~zlen:(zhi - zlo))
    in
    if zfirst = zlast then feed_boundary zfirst
    else begin
      (* Leading partial byte, run of fully-zeroed bytes, trailing partial. *)
      let body_lo = if zlo land 7 = 0 then zfirst else (feed_boundary zfirst; zfirst + 1) in
      let body_hi = if zhi land 7 = 0 then zlast else zlast - 1 in
      stream_zeros st (body_hi - body_lo + 1);
      if zhi land 7 <> 0 then feed_boundary zlast
    end;
    stream_bytes st s (zlast + 1) (off + len - zlast - 1)
  end;
  stream_result st

(* Byte-weighted sum of [s.[o .. o+l)]: a byte at even run index is the
   high half of its big-endian word (weight 256), at odd index the low
   half — shifted by one when [hi_first] is false.  Unrolled over the
   even/odd byte streams; addition is associative, so any summation order
   agrees with the word-by-word definition before the final carry fold.
   Top-level (not a closure) and all native ints: the fused decode path
   must not allocate. *)
let sum_run s o l hi_first =
  let even = ref 0 and odd = ref 0 in
  let i = ref 0 in
  while l - !i >= 8 do
    let k = o + !i in
    even :=
      !even
      + Char.code (String.unsafe_get s k)
      + Char.code (String.unsafe_get s (k + 2))
      + Char.code (String.unsafe_get s (k + 4))
      + Char.code (String.unsafe_get s (k + 6));
    odd :=
      !odd
      + Char.code (String.unsafe_get s (k + 1))
      + Char.code (String.unsafe_get s (k + 3))
      + Char.code (String.unsafe_get s (k + 5))
      + Char.code (String.unsafe_get s (k + 7));
    i := !i + 8
  done;
  while !i < l do
    let b = Char.code (String.unsafe_get s (o + !i)) in
    if !i land 1 = 0 then even := !even + b else odd := !odd + b;
    incr i
  done;
  if hi_first then (!even lsl 8) + !odd else !even + (!odd lsl 8)

(* Unboxed variant of [compute_zeroed Internet] for the fused decode path.
   Equal to the streaming version because the final fold only depends on
   the word sum mod 65535 and on whether any unmasked byte is nonzero —
   both of which the direct masked-word sum preserves.  The zeroed span is
   handled byte by byte (it is a checksum field, a few bytes); everything
   around it goes through the unrolled [sum_run]. *)
let internet_zeroed ~off ~len ~zero_bit_off ~zero_bit_len s =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Checksum.internet_zeroed: range out of bounds";
  let zlo = max zero_bit_off (off * 8) in
  let zhi = min (zero_bit_off + zero_bit_len) ((off + len) * 8) in
  let sum = ref 0 in
  if zhi <= zlo then sum := sum_run s off len true
  else if zlo land 7 = 0 && zhi land 7 = 0 then begin
    (* byte-aligned span (the overwhelmingly common case: a checksum
       field): one unrolled pass over the whole window, then take the
       span's bytes back out.  Exact, not approximate — the sum is plain
       integer addition of weighted bytes, so subtracting before the
       carry fold is the same as never adding. *)
    sum := sum_run s off len true;
    for i = zlo lsr 3 to (zhi lsr 3) - 1 do
      let b = Char.code (String.unsafe_get s i) in
      sum := !sum - if (i - off) land 1 = 0 then b lsl 8 else b
    done
  end
  else begin
    let zfirst = zlo lsr 3 and zlast = (zhi - 1) lsr 3 in
    sum := sum_run s off (zfirst - off) true;
    for i = zfirst to zlast do
      let b = masked_byte s i ~zoff:zlo ~zlen:(zhi - zlo) in
      if b <> 0 then
        sum := !sum + if (i - off) land 1 = 0 then b lsl 8 else b
    done;
    let rest = zlast + 1 in
    sum :=
      !sum
      + sum_run s rest (off + len - rest) ((rest - off) land 1 = 0)
  end;
  let sum = ref !sum in
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let compute alg ?off ?len s =
  match alg with
  | Internet -> Int64.of_int (internet_checksum ?off ?len s)
  | Crc32 -> crc32 ?off ?len s
  | Fletcher16 -> Int64.of_int (fletcher16 ?off ?len s)
  | Adler32 -> adler32 ?off ?len s
  | Xor8 -> Int64.of_int (xor8 ?off ?len s)
  | Sum8 -> Int64.of_int (sum8 ?off ?len s)

let verify alg ?off ?len s ~expected = Int64.equal (compute alg ?off ?len s) expected
