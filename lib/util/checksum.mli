(** Checksums and error-detecting codes used by packet formats.

    Every algorithm takes an optional byte range so that a checksum can be
    computed over a slice of a serialised packet (the usual case: the
    checksum field itself is zeroed during computation, or excluded by
    range). *)

type algorithm =
  | Internet  (** RFC 1071 16-bit ones'-complement sum (IPv4, TCP, UDP). *)
  | Crc32     (** IEEE 802.3 CRC-32 (Ethernet FCS), reflected, as a 32-bit value. *)
  | Fletcher16
  | Adler32
  | Xor8      (** Simple XOR of all bytes (longitudinal redundancy check). *)
  | Sum8      (** Modulo-256 byte sum. *)

val algorithm_to_string : algorithm -> string
val algorithm_of_string : string -> algorithm option
val all_algorithms : algorithm list

val width_bits : algorithm -> int
(** Output width of the algorithm, in bits. *)

val compute : algorithm -> ?off:int -> ?len:int -> string -> int64
(** [compute alg s] is the checksum of [s] (or of [s.(off .. off+len-1)]),
    as an unsigned value of {!width_bits} bits. *)

val verify : algorithm -> ?off:int -> ?len:int -> string -> expected:int64 -> bool

val compute_zeroed :
  algorithm ->
  off:int ->
  len:int ->
  zero_bit_off:int ->
  zero_bit_len:int ->
  string ->
  int64
(** [compute_zeroed alg ~off ~len ~zero_bit_off ~zero_bit_len s] is the
    checksum of the byte window [s.(off .. off+len-1)] with the bits in
    [\[zero_bit_off, zero_bit_off+zero_bit_len)] (absolute bit offsets into
    [s], MSB-first within a byte) read as zero — the usual "checksum field
    zeroed during computation" rule, computed {e in place} without copying
    the region.  The zero span is clipped to the window; an empty or
    disjoint span degenerates to {!compute}. *)

val internet_zeroed :
  off:int -> len:int -> zero_bit_off:int -> zero_bit_len:int -> string -> int
(** [compute_zeroed Internet] as an unboxed native [int] — bit-for-bit the
    same result with no allocation, for per-packet hot paths. *)

(** {2 Streaming}

    Incremental computation over discontiguous segments: initialise, feed
    byte ranges / literal bytes / runs of zeros, extract.  Zero runs cost
    O(1) for every algorithm except CRC-32 (which is O(n) but touches no
    memory).  This is what {!compute_zeroed} and the zero-copy decode path
    are built on. *)

type stream

val stream_init : algorithm -> stream
val stream_bytes : stream -> string -> int -> int -> unit
(** [stream_bytes st s off len] feeds [s.(off .. off+len-1)]. *)

val stream_byte : stream -> int -> unit
val stream_zeros : stream -> int -> unit
val stream_result : stream -> int64

val internet_checksum : ?off:int -> ?len:int -> string -> int
(** Direct entry point for the RFC 1071 checksum (already complemented;
    i.e. the value to place in a header field). *)

val internet_delta : checksum:int -> removed:int -> added:int -> int
(** [internet_delta ~checksum ~removed ~added] is the RFC 1624 incremental
    update of a stored Internet [checksum] after 16-bit word contributions
    summing to [removed] are replaced by contributions summing to [added]
    (both plain sums, allowed to exceed 0xffff).  A byte at an {e even}
    offset from the region start contributes [b lsl 8]; at an odd offset it
    contributes [b] — so any byte-aligned field can be updated regardless of
    16-bit word alignment.  The result is exact modulo the ones'-complement
    ±0 ambiguity: a result of [0] also encodes an all-zero region, whose
    canonical checksum is [0xffff]; callers that can meet that case must
    disambiguate (see [Netdsl_format.Emit.patch]). *)

val crc32 : ?off:int -> ?len:int -> string -> int64
val fletcher16 : ?off:int -> ?len:int -> string -> int
val adler32 : ?off:int -> ?len:int -> string -> int64
