type error =
  | Truncated of { need_bits : int; have_bits : int }
  | Width_out_of_range of int
  | Value_out_of_range of { value : int64; width : int }
  | Unaligned of { bit_pos : int; operation : string }

exception Error of error

let pp_error ppf = function
  | Truncated { need_bits; have_bits } ->
    Format.fprintf ppf "truncated input: need %d bits, have %d" need_bits have_bits
  | Width_out_of_range w -> Format.fprintf ppf "field width %d out of range" w
  | Value_out_of_range { value; width } ->
    Format.fprintf ppf "value %Ld does not fit in %d bits" value width
  | Unaligned { bit_pos; operation } ->
    Format.fprintf ppf "%s requires byte alignment (bit position %d)" operation bit_pos

let error_to_string e = Format.asprintf "%a" pp_error e

let check_width w = if w < 0 || w > 64 then raise (Error (Width_out_of_range w))

(* Mask of the [w] low bits of an int64, correct for w = 64. *)
let mask64 w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let fits value width =
  width >= 64 || Int64.equal (Int64.logand value (mask64 width)) value

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len_bits : int }

  let create ?(capacity = 64) () =
    { buf = Bytes.make (max capacity 1) '\000'; len_bits = 0 }

  let bit_length t = t.len_bits
  let byte_length t = (t.len_bits + 7) / 8
  let is_aligned t = t.len_bits land 7 = 0

  let ensure t extra_bits =
    let need_bytes = (t.len_bits + extra_bits + 7) / 8 in
    if need_bytes > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < need_bytes do
        cap := !cap * 2
      done;
      let fresh = Bytes.make !cap '\000' in
      Bytes.blit t.buf 0 fresh 0 (Bytes.length t.buf);
      t.buf <- fresh
    end

  (* Writes bit [b] at absolute bit offset [off]; the byte must exist and
     the target bit must currently be zero unless [clear] is set. *)
  let set_bit buf off b =
    let byte_idx = off lsr 3 and bit_idx = 7 - (off land 7) in
    let old = Char.code (Bytes.get buf byte_idx) in
    let updated =
      if b then old lor (1 lsl bit_idx) else old land lnot (1 lsl bit_idx)
    in
    Bytes.set buf byte_idx (Char.chr updated)

  let write_bit t b =
    ensure t 1;
    set_bit t.buf t.len_bits b;
    t.len_bits <- t.len_bits + 1

  let unsafe_put_bits buf ~bit_off ~width v =
    (* Generic MSB-first bit blit.  [width] <= 64 and the region exists. *)
    for i = 0 to width - 1 do
      let bit = Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L in
      set_bit buf (bit_off + i) (Int64.equal bit 1L)
    done

  let write_bits t ~width v =
    check_width width;
    if not (fits v width) then raise (Error (Value_out_of_range { value = v; width }));
    ensure t width;
    if width = 8 && is_aligned t then begin
      Bytes.set t.buf (t.len_bits lsr 3) (Char.chr (Int64.to_int v));
      t.len_bits <- t.len_bits + 8
    end
    else begin
      unsafe_put_bits t.buf ~bit_off:t.len_bits ~width v;
      t.len_bits <- t.len_bits + width
    end

  let write_uint8 t v = write_bits t ~width:8 (Int64.of_int v)
  let write_uint16_be t v = write_bits t ~width:16 (Int64.of_int v)

  let write_uint16_le t v =
    if v < 0 || v > 0xFFFF then
      raise (Error (Value_out_of_range { value = Int64.of_int v; width = 16 }));
    write_uint8 t (v land 0xFF);
    write_uint8 t (v lsr 8)

  let write_uint32_be t v = write_bits t ~width:32 v

  let write_uint32_le t v =
    if not (fits v 32) then raise (Error (Value_out_of_range { value = v; width = 32 }));
    let b i = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
    write_uint8 t (b 0);
    write_uint8 t (b 1);
    write_uint8 t (b 2);
    write_uint8 t (b 3)

  let write_uint64_be t v = write_bits t ~width:64 v

  let write_string t s =
    if not (is_aligned t) then
      raise (Error (Unaligned { bit_pos = t.len_bits; operation = "write_string" }));
    let n = String.length s in
    ensure t (n * 8);
    Bytes.blit_string s 0 t.buf (t.len_bits lsr 3) n;
    t.len_bits <- t.len_bits + (n * 8)

  let align t =
    let rem = t.len_bits land 7 in
    if rem <> 0 then write_bits t ~width:(8 - rem) 0L

  let reserve_bits t n =
    let off = t.len_bits in
    ensure t n;
    (* The backing store is zero-initialised, so reserving is just a cursor
       move once capacity exists. *)
    t.len_bits <- t.len_bits + n;
    off

  let patch_bits t ~bit_off ~width v =
    check_width width;
    if not (fits v width) then raise (Error (Value_out_of_range { value = v; width }));
    if bit_off < 0 || bit_off + width > t.len_bits then
      raise (Error (Truncated { need_bits = bit_off + width; have_bits = t.len_bits }));
    unsafe_put_bits t.buf ~bit_off ~width v

  let contents t = Bytes.sub_string t.buf 0 (byte_length t)
end

module Reader = struct
  type t = { data : string; mutable pos : int; limit : int }

  let of_string ?(bit_off = 0) ?bit_len s =
    let total = String.length s * 8 in
    let limit =
      match bit_len with
      | None -> total
      | Some n -> min total (bit_off + n)
    in
    if bit_off < 0 || bit_off > total then invalid_arg "Bitio.Reader.of_string";
    { data = s; pos = bit_off; limit }

  let bit_pos t = t.pos
  let bits_remaining t = t.limit - t.pos
  let at_end t = t.pos >= t.limit
  let is_aligned t = t.pos land 7 = 0

  let need t n =
    if bits_remaining t < n then
      raise (Error (Truncated { need_bits = n; have_bits = bits_remaining t }))

  let get_bit data off =
    let byte = Char.code (String.unsafe_get data (off lsr 3)) in
    byte lsr (7 - (off land 7)) land 1 = 1

  let read_bit t =
    need t 1;
    let b = get_bit t.data t.pos in
    t.pos <- t.pos + 1;
    b

  let read_bits t ~width =
    check_width width;
    need t width;
    if width land 7 = 0 && is_aligned t then begin
      (* Fast byte-path. *)
      let v = ref 0L in
      for i = 0 to (width lsr 3) - 1 do
        let byte = Char.code (String.unsafe_get t.data ((t.pos lsr 3) + i)) in
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
      done;
      t.pos <- t.pos + width;
      !v
    end
    else begin
      let v = ref 0L in
      for i = 0 to width - 1 do
        let bit = if get_bit t.data (t.pos + i) then 1L else 0L in
        v := Int64.logor (Int64.shift_left !v 1) bit
      done;
      t.pos <- t.pos + width;
      !v
    end

  (* Native-int variant: no Int64 boxing anywhere — this is the decode hot
     path for every field narrower than 63 bits. *)
  let read_bits_int t ~width =
    if width < 0 || width > 62 then raise (Error (Width_out_of_range width));
    need t width;
    if width land 7 = 0 && is_aligned t then begin
      let v = ref 0 in
      let base = t.pos lsr 3 in
      for i = 0 to (width lsr 3) - 1 do
        v := (!v lsl 8) lor Char.code (String.unsafe_get t.data (base + i))
      done;
      t.pos <- t.pos + width;
      !v
    end
    else begin
      let v = ref 0 in
      for i = 0 to width - 1 do
        v := (!v lsl 1) lor (if get_bit t.data (t.pos + i) then 1 else 0)
      done;
      t.pos <- t.pos + width;
      !v
    end

  let read_uint8 t = read_bits_int t ~width:8
  let read_uint16_be t = read_bits_int t ~width:16

  let read_uint16_le t =
    let lo = read_uint8 t in
    let hi = read_uint8 t in
    (hi lsl 8) lor lo

  let read_uint32_be t = read_bits t ~width:32

  let read_uint32_le t =
    let b0 = read_uint8 t in
    let b1 = read_uint8 t in
    let b2 = read_uint8 t in
    let b3 = read_uint8 t in
    Int64.of_int ((b3 lsl 24) lor (b2 lsl 16) lor (b1 lsl 8) lor b0)

  let read_uint64_be t = read_bits t ~width:64

  let read_string t n =
    if not (is_aligned t) then
      raise (Error (Unaligned { bit_pos = t.pos; operation = "read_string" }));
    need t (n * 8);
    let s = String.sub t.data (t.pos lsr 3) n in
    t.pos <- t.pos + (n * 8);
    s

  let skip_bits t n =
    need t n;
    t.pos <- t.pos + n

  let align t =
    let rem = t.pos land 7 in
    if rem <> 0 then skip_bits t (8 - rem)

  let sub_window t ~bit_len =
    need t bit_len;
    let w = { data = t.data; pos = t.pos; limit = t.pos + bit_len } in
    t.pos <- t.pos + bit_len;
    w
end

let try_with f =
  match f () with
  | v -> Ok v
  | exception Error e -> Result.Error e
