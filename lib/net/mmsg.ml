(* Batched kernel I/O: thin OCaml face over the recvmmsg/sendmmsg/epoll
   stubs in mmsg_stubs.c.  All hot-path calls return plain ints (the
   -1 / -2 / -3 convention below) so the server's drain and flush loops
   stay allocation-free; only setup and the sharded path's per-packet
   sink construction build OCaml values. *)

type t

external create : int -> t = "netdsl_mmsg_create"

external stub_available : unit -> bool = "netdsl_mmsg_available"

(* NETDSL_NO_MMSG forces the legacy path even where the stubs work —
   deterministic red-path cram tests and a kill switch in one. *)
let disabled_by_env () =
  match Sys.getenv_opt "NETDSL_NO_MMSG" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let available () = (not (disabled_by_env ())) && stub_available ()

external recv :
  t -> Unix.file_descr -> bufs:Bytes.t array -> lens:int array -> base:int ->
  count:int -> int = "netdsl_mmsg_recv_byte" "netdsl_mmsg_recv"

external send :
  t -> Unix.file_descr -> bufs:Bytes.t array -> lens:int array ->
  addr_idx:int array -> off:int -> n:int -> int
  = "netdsl_mmsg_send_byte" "netdsl_mmsg_send"

external set_addr : t -> int -> Unix.sockaddr -> unit = "netdsl_mmsg_set_addr"
external addr : t -> int -> Unix.sockaddr = "netdsl_mmsg_addr"

let eagain = -1
let unavailable = -2

external now_ns : unit -> int = "netdsl_now_ns" [@@noalloc]

let now_ms () = now_ns () / 1_000_000

module Epoll = struct
  type ep

  external create : int -> ep = "netdsl_epoll_create"
  external add : ep -> Unix.file_descr -> int -> unit = "netdsl_epoll_add"

  external wait : ep -> tags:int array -> timeout_ms:int -> int
    = "netdsl_epoll_wait"

  external close : ep -> unit = "netdsl_epoll_close"
  external stub_available : unit -> bool = "netdsl_epoll_available"

  let available () = (not (disabled_by_env ())) && stub_available ()
end
