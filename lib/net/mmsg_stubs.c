/* Batched kernel I/O for the socket front end: recvmmsg / sendmmsg over
 * preallocated msghdr / iovec / sockaddr arrays, plus a persistent epoll
 * instance for edge-triggered readiness.  One syscall moves up to a whole
 * batch of datagrams straight into (or out of) Engine.Slab slots.
 *
 * Calling convention shared by every I/O stub here:
 *   >= 0  datagrams moved / events ready
 *   -1    EAGAIN / EWOULDBLOCK / EINTR  (nothing to do right now)
 *   -2    unavailable on this platform or kernel (ENOSYS; or non-Linux build)
 *   -3    any other socket error (caller counts it and drops, never raises
 *         on the hot path)
 *
 * The runtime lock stays HELD across recvmmsg/sendmmsg: the sockets are
 * non-blocking (MSG_DONTWAIT besides), so the calls cannot block, and
 * holding the lock keeps naked Bytes_val pointers stable — OCaml 5's
 * stop-the-world minor GC cannot move the buffers while this domain is
 * inside the stub.  epoll_wait DOES release the lock around the (possibly
 * blocking) wait and copies ready tags out of C-side storage afterwards.
 */

#ifdef __linux__
#define _GNU_SOURCE /* recvmmsg/sendmmsg; must precede every libc header */
#endif

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/custom.h>
#include <caml/threads.h>

#include <string.h>
#include <errno.h>

#ifdef __linux__

#include <stdlib.h>
#include <sys/socket.h>
#include <sys/epoll.h>
#include <netinet/in.h>
#include <unistd.h>

/* ---- batch: the reusable scatter/gather arrays ---------------------- */

struct netdsl_batch {
  int cap;
  struct mmsghdr *hdrs;
  struct iovec *iovs;
  struct sockaddr_storage *addrs; /* indexed by slab slot: rx source, tx dest */
  socklen_t *addrlens;
};

#define Batch_val(v) (*(struct netdsl_batch **)Data_custom_val(v))

static void netdsl_batch_finalize(value v)
{
  struct netdsl_batch *b = Batch_val(v);
  if (b) {
    free(b->hdrs);
    free(b->iovs);
    free(b->addrs);
    free(b->addrlens);
    free(b);
    Batch_val(v) = NULL;
  }
}

static struct custom_operations netdsl_batch_ops = {
  "netdsl.mmsg.batch",
  netdsl_batch_finalize,
  custom_compare_default,
  custom_hash_default,
  custom_serialize_default,
  custom_deserialize_default,
  custom_compare_ext_default,
  custom_fixed_length_default
};

CAMLprim value netdsl_mmsg_create(value vslots)
{
  CAMLparam1(vslots);
  CAMLlocal1(res);
  int cap = Int_val(vslots);
  if (cap <= 0) caml_invalid_argument("Mmsg.create: slots must be positive");
  struct netdsl_batch *b = malloc(sizeof *b);
  if (!b) caml_raise_out_of_memory();
  b->cap = cap;
  b->hdrs = calloc(cap, sizeof *b->hdrs);
  b->iovs = calloc(cap, sizeof *b->iovs);
  b->addrs = calloc(cap, sizeof *b->addrs);
  b->addrlens = calloc(cap, sizeof *b->addrlens);
  if (!b->hdrs || !b->iovs || !b->addrs || !b->addrlens) {
    free(b->hdrs); free(b->iovs); free(b->addrs); free(b->addrlens); free(b);
    caml_raise_out_of_memory();
  }
  res = caml_alloc_custom(&netdsl_batch_ops, sizeof(struct netdsl_batch *), 0, 1);
  Batch_val(res) = b;
  CAMLreturn(res);
}

/* recv batch fd bufs lens base count -> moved
 *
 * Scatters up to [count] datagrams into bufs[base..base+count-1] (a leased
 * Slab run: contiguous, never wrapping), records kernel-written lengths in
 * the OCaml int array lens[base..] (Val_long into an int array needs no
 * write barrier) and source addresses in the C sockaddr slots of the same
 * indices, where they stay valid until the slot's reply is flushed. */
CAMLprim value netdsl_mmsg_recv(value vbatch, value vfd, value vbufs,
                                value vlens, value vbase, value vcount)
{
  struct netdsl_batch *b = Batch_val(vbatch);
  int fd = Int_val(vfd);
  int base = Int_val(vbase);
  int count = Int_val(vcount);
  if (base < 0 || count <= 0 || base + count > b->cap)
    caml_invalid_argument("Mmsg.recv: run outside the batch");
  for (int i = 0; i < count; i++) {
    value buf = Field(vbufs, base + i);
    b->iovs[base + i].iov_base = Bytes_val(buf);
    b->iovs[base + i].iov_len = caml_string_length(buf);
    memset(&b->hdrs[base + i].msg_hdr, 0, sizeof(struct msghdr));
    b->hdrs[base + i].msg_hdr.msg_iov = &b->iovs[base + i];
    b->hdrs[base + i].msg_hdr.msg_iovlen = 1;
    b->hdrs[base + i].msg_hdr.msg_name = &b->addrs[base + i];
    b->hdrs[base + i].msg_hdr.msg_namelen = sizeof(struct sockaddr_storage);
  }
  int r = recvmmsg(fd, &b->hdrs[base], count, MSG_DONTWAIT, NULL);
  if (r < 0) {
    if (errno == EINTR) return Val_int(0); /* retry; edge state unknown */
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Val_int(-1);
    if (errno == ENOSYS) return Val_int(-2);
    return Val_int(-3);
  }
  for (int i = 0; i < r; i++) {
    Field(vlens, base + i) = Val_long(b->hdrs[base + i].msg_len);
    b->addrlens[base + i] = b->hdrs[base + i].msg_hdr.msg_namelen;
  }
  return Val_int(r);
}

CAMLprim value netdsl_mmsg_recv_byte(value *argv, int argn)
{
  (void)argn;
  return netdsl_mmsg_recv(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5]);
}

/* send batch fd bufs lens addr_idx off n -> sent
 *
 * Gathers entries off..off+n-1 of the staging arrays: bufs.(i) holds
 * lens.(i) reply bytes, addr_idx.(i) names the sockaddr slot to send to
 * (-1 = connected socket, no address).  Returns how many left — the
 * caller resumes from off+sent on a partial send. */
CAMLprim value netdsl_mmsg_send(value vbatch, value vfd, value vbufs,
                                value vlens, value vaddr_idx, value voff,
                                value vn)
{
  struct netdsl_batch *b = Batch_val(vbatch);
  int fd = Int_val(vfd);
  int off = Int_val(voff);
  int n = Int_val(vn);
  if (off < 0 || n <= 0 || off + n > b->cap)
    caml_invalid_argument("Mmsg.send: run outside the batch");
  for (int i = 0; i < n; i++) {
    value buf = Field(vbufs, off + i);
    b->iovs[off + i].iov_base = Bytes_val(buf);
    b->iovs[off + i].iov_len = Long_val(Field(vlens, off + i));
    memset(&b->hdrs[off + i].msg_hdr, 0, sizeof(struct msghdr));
    b->hdrs[off + i].msg_hdr.msg_iov = &b->iovs[off + i];
    b->hdrs[off + i].msg_hdr.msg_iovlen = 1;
    long ai = Long_val(Field(vaddr_idx, off + i));
    if (ai >= 0) {
      if (ai >= b->cap) caml_invalid_argument("Mmsg.send: bad address slot");
      b->hdrs[off + i].msg_hdr.msg_name = &b->addrs[ai];
      b->hdrs[off + i].msg_hdr.msg_namelen = b->addrlens[ai];
    }
  }
  int r = sendmmsg(fd, &b->hdrs[off], n, MSG_DONTWAIT);
  if (r < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return Val_int(-1);
    if (errno == ENOSYS) return Val_int(-2);
    return Val_int(-3);
  }
  return Val_int(r);
}

CAMLprim value netdsl_mmsg_send_byte(value *argv, int argn)
{
  (void)argn;
  return netdsl_mmsg_send(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6]);
}

/* set_addr batch i sockaddr: store an ADDR_INET destination in slot i
 * (the batched client's fixed server address). */
CAMLprim value netdsl_mmsg_set_addr(value vbatch, value vi, value vsa)
{
  CAMLparam3(vbatch, vi, vsa);
  struct netdsl_batch *b = Batch_val(vbatch);
  int i = Int_val(vi);
  if (i < 0 || i >= b->cap) caml_invalid_argument("Mmsg.set_addr: bad slot");
  if (Is_long(vsa) || Tag_val(vsa) != 1)
    caml_invalid_argument("Mmsg.set_addr: ADDR_INET expected");
  value vaddr = Field(vsa, 0);
  int port = Int_val(Field(vsa, 1));
  mlsize_t alen = caml_string_length(vaddr);
  memset(&b->addrs[i], 0, sizeof(struct sockaddr_storage));
  if (alen == 4) {
    struct sockaddr_in *sin = (struct sockaddr_in *)&b->addrs[i];
    sin->sin_family = AF_INET;
    sin->sin_port = htons(port);
    memcpy(&sin->sin_addr, Bytes_val(vaddr), 4);
    b->addrlens[i] = sizeof(struct sockaddr_in);
  } else if (alen == 16) {
    struct sockaddr_in6 *sin6 = (struct sockaddr_in6 *)&b->addrs[i];
    sin6->sin6_family = AF_INET6;
    sin6->sin6_port = htons(port);
    memcpy(&sin6->sin6_addr, Bytes_val(vaddr), 16);
    b->addrlens[i] = sizeof(struct sockaddr_in6);
  } else
    caml_invalid_argument("Mmsg.set_addr: bad inet address length");
  CAMLreturn(Val_unit);
}

/* addr batch i: rebuild slot i's source address as a Unix.sockaddr
 * (ADDR_INET: tag-1 block of inet_addr string + port) for the sharded
 * steering path's per-packet sinks. */
CAMLprim value netdsl_mmsg_addr(value vbatch, value vi)
{
  CAMLparam2(vbatch, vi);
  CAMLlocal2(res, vaddr);
  struct netdsl_batch *b = Batch_val(vbatch);
  int i = Int_val(vi);
  if (i < 0 || i >= b->cap) caml_invalid_argument("Mmsg.addr: bad slot");
  struct sockaddr_storage *ss = &b->addrs[i];
  if (ss->ss_family == AF_INET) {
    struct sockaddr_in *sin = (struct sockaddr_in *)ss;
    vaddr = caml_alloc_initialized_string(4, (const char *)&sin->sin_addr);
    res = caml_alloc_small(2, 1);
    Field(res, 0) = vaddr;
    Field(res, 1) = Val_int(ntohs(sin->sin_port));
  } else if (ss->ss_family == AF_INET6) {
    struct sockaddr_in6 *sin6 = (struct sockaddr_in6 *)ss;
    vaddr = caml_alloc_initialized_string(16, (const char *)&sin6->sin6_addr);
    res = caml_alloc_small(2, 1);
    Field(res, 0) = vaddr;
    Field(res, 1) = Val_int(ntohs(sin6->sin6_port));
  } else
    caml_invalid_argument("Mmsg.addr: empty slot");
  CAMLreturn(res);
}

/* Availability probe: a throwaway recvmmsg on an unbound UDP socket.
 * EAGAIN means the syscall exists; ENOSYS means a pre-2.6.33 kernel (or
 * a seccomp filter) and the caller falls back to recvfrom/sendto. */
CAMLprim value netdsl_mmsg_available(value vunit)
{
  (void)vunit;
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return Val_false;
  char scratch[8];
  struct iovec iov = { .iov_base = scratch, .iov_len = sizeof scratch };
  struct mmsghdr h;
  memset(&h, 0, sizeof h);
  h.msg_hdr.msg_iov = &iov;
  h.msg_hdr.msg_iovlen = 1;
  int r = recvmmsg(fd, &h, 1, MSG_DONTWAIT, NULL);
  int ok = !(r < 0 && errno == ENOSYS);
  close(fd);
  return Val_bool(ok);
}

/* ---- persistent epoll ----------------------------------------------- */

struct netdsl_epoll {
  int epfd;
  int cap;                   /* max events per wait */
  struct epoll_event *evs;   /* C-side event storage (stable across GC) */
};

#define Epoll_val(v) (*(struct netdsl_epoll **)Data_custom_val(v))

static void netdsl_epoll_finalize(value v)
{
  struct netdsl_epoll *e = Epoll_val(v);
  if (e) {
    if (e->epfd >= 0) close(e->epfd);
    free(e->evs);
    free(e);
    Epoll_val(v) = NULL;
  }
}

static struct custom_operations netdsl_epoll_ops = {
  "netdsl.mmsg.epoll",
  netdsl_epoll_finalize,
  custom_compare_default,
  custom_hash_default,
  custom_serialize_default,
  custom_deserialize_default,
  custom_compare_ext_default,
  custom_fixed_length_default
};

CAMLprim value netdsl_epoll_create(value vcap)
{
  CAMLparam1(vcap);
  CAMLlocal1(res);
  int cap = Int_val(vcap);
  if (cap <= 0) caml_invalid_argument("Epoll.create: cap must be positive");
  int epfd = epoll_create1(0);
  if (epfd < 0) caml_failwith("Epoll.create: epoll_create1 failed");
  struct netdsl_epoll *e = malloc(sizeof *e);
  struct epoll_event *evs = calloc(cap, sizeof *evs);
  if (!e || !evs) {
    close(epfd); free(e); free(evs);
    caml_raise_out_of_memory();
  }
  e->epfd = epfd;
  e->cap = cap;
  e->evs = evs;
  res = caml_alloc_custom(&netdsl_epoll_ops, sizeof(struct netdsl_epoll *), 0, 1);
  Epoll_val(res) = e;
  CAMLreturn(res);
}

/* add ep fd tag: edge-triggered read interest; tag comes back from wait. */
CAMLprim value netdsl_epoll_add(value vep, value vfd, value vtag)
{
  struct netdsl_epoll *e = Epoll_val(vep);
  struct epoll_event ev;
  memset(&ev, 0, sizeof ev);
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = (uint64_t)Long_val(vtag);
  if (epoll_ctl(e->epfd, EPOLL_CTL_ADD, Int_val(vfd), &ev) < 0)
    caml_failwith("Epoll.add: epoll_ctl failed");
  return Val_unit;
}

/* wait ep tags timeout_ms -> ready count (tags.(0..n-1) filled), or -1 on
 * EINTR.  Releases the runtime lock around the wait — other domains must
 * stay free to run (and to start a stop-the-world GC) while this one
 * sleeps in the kernel. */
CAMLprim value netdsl_epoll_wait(value vep, value vtags, value vtimeout)
{
  CAMLparam3(vep, vtags, vtimeout);
  struct netdsl_epoll *e = Epoll_val(vep);
  int timeout = Int_val(vtimeout);
  int cap = e->cap;
  int want = Wosize_val(vtags);
  if (want < cap) cap = want;
  int r;
  if (timeout == 0)
    r = epoll_wait(e->epfd, e->evs, cap, 0);
  else {
    caml_release_runtime_system();
    r = epoll_wait(e->epfd, e->evs, cap, timeout);
    caml_acquire_runtime_system();
  }
  if (r < 0) {
    if (errno == EINTR) CAMLreturn(Val_int(-1));
    caml_failwith("Epoll.wait: epoll_wait failed");
  }
  for (int i = 0; i < r; i++)
    Field(vtags, i) = Val_long((long)e->evs[i].data.u64);
  CAMLreturn(Val_int(r));
}

CAMLprim value netdsl_epoll_close(value vep)
{
  struct netdsl_epoll *e = Epoll_val(vep);
  if (e->epfd >= 0) {
    close(e->epfd);
    e->epfd = -1;
  }
  return Val_unit;
}

CAMLprim value netdsl_epoll_available(value vunit)
{
  (void)vunit;
  return Val_true;
}

#else /* !__linux__ : every stub reports unavailable / fails cleanly */

CAMLprim value netdsl_mmsg_create(value vslots)
{
  (void)vslots;
  caml_failwith("Mmsg.create: batched I/O unavailable on this platform");
}

CAMLprim value netdsl_mmsg_recv(value a, value b, value c, value d, value e,
                                value f)
{
  (void)a; (void)b; (void)c; (void)d; (void)e; (void)f;
  return Val_int(-2);
}

CAMLprim value netdsl_mmsg_recv_byte(value *argv, int argn)
{
  (void)argv; (void)argn;
  return Val_int(-2);
}

CAMLprim value netdsl_mmsg_send(value a, value b, value c, value d, value e,
                                value f, value g)
{
  (void)a; (void)b; (void)c; (void)d; (void)e; (void)f; (void)g;
  return Val_int(-2);
}

CAMLprim value netdsl_mmsg_send_byte(value *argv, int argn)
{
  (void)argv; (void)argn;
  return Val_int(-2);
}

CAMLprim value netdsl_mmsg_set_addr(value a, value b, value c)
{
  (void)a; (void)b; (void)c;
  return Val_unit;
}

CAMLprim value netdsl_mmsg_addr(value a, value b)
{
  (void)a; (void)b;
  caml_failwith("Mmsg.addr: batched I/O unavailable on this platform");
}

CAMLprim value netdsl_mmsg_available(value vunit)
{
  (void)vunit;
  return Val_false;
}

CAMLprim value netdsl_epoll_create(value vcap)
{
  (void)vcap;
  caml_failwith("Epoll.create: epoll unavailable on this platform");
}

CAMLprim value netdsl_epoll_add(value a, value b, value c)
{
  (void)a; (void)b; (void)c;
  return Val_unit;
}

CAMLprim value netdsl_epoll_wait(value a, value b, value c)
{
  (void)a; (void)b; (void)c;
  return Val_int(-2);
}

CAMLprim value netdsl_epoll_close(value vep)
{
  (void)vep;
  return Val_unit;
}

CAMLprim value netdsl_epoll_available(value vunit)
{
  (void)vunit;
  return Val_false;
}

#endif

/* Allocation-free monotonic clock, integer nanoseconds in an OCaml
 * immediate (62 bits holds ~73 years of nanoseconds).  Declared
 * [@@noalloc] on the OCaml side: no caml_* calls, no lock dance —
 * cheap enough to bracket every engine batch.  Portable: every POSIX
 * target of this tree has clock_gettime; wall time is the (boxed-float
 * parity) fallback of last resort. */
#include <time.h>
#include <sys/time.h>

CAMLprim value netdsl_now_ns(value vunit)
{
  (void)vunit;
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return Val_long((intnat)tv.tv_sec * 1000000000 + (intnat)tv.tv_usec * 1000);
  }
}
