(** Batched kernel I/O: [recvmmsg] / [sendmmsg] / persistent [epoll].

    The first C stubs in the tree.  A {!t} owns preallocated C-side
    [mmsghdr] / [iovec] / [sockaddr_storage] arrays sized to the slab
    ring, so one syscall scatters a whole batch of datagrams straight
    into leased {!Netdsl_engine.Slab} slots (or gathers a batch of
    staged replies out) with zero per-packet allocation on the OCaml
    side.  Hot-path calls return ints by the shared convention:

    - [r >= 0] — datagrams moved / events ready;
    - [-1] ({!eagain}) — nothing to do right now (EAGAIN / EINTR);
    - [-2] ({!unavailable}) — the syscall does not exist here (ENOSYS,
      pre-2.6.33 kernel, or a non-Linux build);
    - [-3] — any other socket error; callers count it and drop rather
      than raise on the hot path.

    The sockets involved must be non-blocking (the stubs also pass
    [MSG_DONTWAIT]): the runtime lock stays held across recv/send so
    the naked buffer pointers cannot be moved by a stop-the-world GC,
    which is only sound because the calls cannot block.
    [Epoll.wait] is the one call that may sleep, and it releases the
    lock around the kernel wait. *)

type t

val create : int -> t
(** [create slots] allocates the reusable C arrays ([slots] must cover
    the slab ring: rx source addresses are filed by absolute slot
    index and must survive until that slot's reply is flushed).
    Raises [Failure] on non-Linux builds — check {!available} first. *)

val available : unit -> bool
(** Runtime probe: true iff [recvmmsg] answers on this kernel {e and}
    the [NETDSL_NO_MMSG] environment kill switch is not set. *)

val recv :
  t -> Unix.file_descr -> bufs:Bytes.t array -> lens:int array -> base:int ->
  count:int -> int
(** Drain up to [count] datagrams into [bufs.(base .. base+count-1)]
    (a contiguous leased slab run), writing kernel lengths into
    [lens.(base ..)] and source addresses into the C slots of the same
    indices.  Returns the number received or a negative code. *)

val send :
  t -> Unix.file_descr -> bufs:Bytes.t array -> lens:int array ->
  addr_idx:int array -> off:int -> n:int -> int
(** Flush staging entries [off .. off+n-1]: [bufs.(i)] holds
    [lens.(i)] bytes for the address in C slot [addr_idx.(i)]
    ([-1] = connected socket).  Returns how many the kernel accepted —
    resume from [off + sent] on a partial send. *)

val set_addr : t -> int -> Unix.sockaddr -> unit
(** Store an [ADDR_INET] destination in a C slot (the batched client's
    fixed peer). *)

val addr : t -> int -> Unix.sockaddr
(** Rebuild C slot [i]'s stored address as a [Unix.sockaddr]
    (allocates — sharded steering's per-packet sinks only). *)

val eagain : int
val unavailable : int

val now_ns : unit -> int
(** Allocation-free monotonic clock, integer nanoseconds ([@@noalloc] C
    stub over [clock_gettime(CLOCK_MONOTONIC)]; always compiled, not
    gated on {!available}).  The server injects it as the engine's
    [now_ns]/[clock_ms] so batch stage timing and timer polling never
    box a float — the default wall-clock readings would put
    [Unix.gettimeofday]'s boxed float on every batch. *)

val now_ms : unit -> int
(** {!now_ns} / 1e6 — a monotone [clock_ms] for {!Netdsl_engine.Pipeline}. *)

(** Persistent epoll instance with edge-triggered read interest.
    Fallback-free on Linux; non-Linux builds report unavailable and
    the server keeps its [Unix.select] loop. *)
module Epoll : sig
  type ep

  val create : int -> ep
  (** [create cap] — [cap] bounds events returned per {!wait}. *)

  val add : ep -> Unix.file_descr -> int -> unit
  (** Register [fd] with [EPOLLIN lor EPOLLET]; the int tag comes back
      from {!wait}.  Edge-triggered: the owner must drain to EAGAIN
      (or remember the fd is hot) after every wake. *)

  val wait : ep -> tags:int array -> timeout_ms:int -> int
  (** Ready tags land in [tags.(0 .. r-1)].  [-1] on EINTR.  Releases
      the runtime lock while sleeping. *)

  val close : ep -> unit
  val available : unit -> bool
end
