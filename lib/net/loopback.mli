(** Loopback soak harness: the socket leg of the differential oracle.

    A {!Server} runs on its own domain behind a real UDP socket bound to
    127.0.0.1; the client (the calling domain) sends generated packets
    through the kernel and diffs every reply byte-for-byte against
    {!Netdsl_check.Oracle.Reply_ref} — the same flight spec driven
    through an in-memory pipeline.  A packet whose reference reply is
    [None] must produce {e no} datagram; any stray reply left on the
    socket at the end of a run is a disagreement too.

    {!soak} is the correctness leg: lock-step (send one, await its
    reply), valid + mutated traffic, zero expected disagreements.
    {!blast} is the throughput leg: valid traffic only, a bounded window
    of outstanding packets, reporting pkts/s through the socket path.

    Both measure the server domain's own allocation rate after a warmup
    run ([Gc.allocated_bytes] before/after the measured run, divided by
    packets processed): the engine side stays at 0 B/pkt (bench e15),
    so what remains is the [Unix] syscall wrapper — the per-[recvfrom]
    [sockaddr] boxing — reported honestly, not hidden. *)

type result_ = {
  sent : int;
  replies : int;  (** datagrams read back off the socket *)
  expected_replies : int;  (** packets the reference model answers *)
  disagreements : int;
  first_disagreement : string option;
  server_processed : int;
  alloc_bytes_per_pkt : float;
      (** server-domain bytes allocated per packet, post-warmup *)
  elapsed_s : float;
  net : Stats.t;  (** the server's merged socket counters *)
}

val soak :
  ?mode:Netdsl_engine.Pipeline.mode ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?config:Netdsl_engine.Pipeline.config ->
  ?warmup:int ->
  ?io:Server.io ->
  ?io_batch:int ->
  flight:Netdsl_engine.Flight.spec ->
  packets:(int -> string) ->
  count:int ->
  Netdsl_format.Desc.t ->
  (result_, string) result
(** Lock-step differential run of [count] packets ([packets i] is the
    [i]th wire message; mix valid and mutated freely — rejected packets
    are expected to stay silent).  The reference pipeline runs in
    [Staged] mode regardless of [?mode] (default [Fused]), so a fused
    server is diffed against the staged derivation of its own spec.
    The server restarts its loop once after [warmup] packets (default
    [count/5], capped at 2000) to exercise run-twice restart and scope
    the allocation measurement to steady state.  [io]/[io_batch] select
    the server's receive loop ({!Server.create}) — the client stays
    lock-step either way, so [~io:Mmsg] diffs the batched drain/flush
    path against the same in-memory reference. *)

val blast :
  ?mode:Netdsl_engine.Pipeline.mode ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?config:Netdsl_engine.Pipeline.config ->
  ?warmup:int ->
  ?stack:Netdsl_format.Stack.t ->
  ?io:Server.io ->
  ?io_batch:int ->
  ?window:int ->
  flight:Netdsl_engine.Flight.spec ->
  packets:(int -> string) ->
  count:int ->
  Netdsl_format.Desc.t ->
  (result_, string) result
(** Throughput run: keep up to [window] (default 64) packets
    outstanding, never inspecting reply bytes (that is {!soak}'s job —
    here every [packets i] must be accepted and answered, or the run
    under-counts).  [replies/elapsed_s] is the socket-path packet rate;
    both domains share whatever cores the host has, which on a 1-core
    box oversubscribes — callers report that caveat.  [stack] serves a
    layered chain through the fused plan (flight operands become
    qualified ["layer.field"] names); [fmt] must then be the stack's
    outermost format.  [io]/[io_batch] select the server's receive
    loop; forcing [~io:Mmsg] also switches the {e client} to a
    connected-socket [sendmmsg]/[recvmmsg] batch of [io_batch]
    (default 32) — otherwise the per-packet sender caps the measurement
    below what the batched server can absorb. *)

(** {2 Lossy virtual-time loopback}

    The deterministic leg of the timer story: a pipeline (or several,
    modelling sharded workers) driven entirely in virtual milliseconds,
    with one {!Netdsl_sim.Channel} — the same drop models the simulator
    uses — standing between the caller and the engine.  [inject]
    delivers a packet immediately (the reliable direction); [send]
    routes it through the lossy channel, which may drop, duplicate,
    corrupt or delay it.  {!run} advances the clock one millisecond at a
    time: released deliveries are processed first, then every worker's
    timer wheel is polled (expirations fire through the ordinary step
    stage), then [on_tick] lets the caller act on what it observes via
    {!peek}.  Every draw comes from one seeded PRNG, so a run is a pure
    function of its seed — and a [workers:2] run issues the identical
    channel-draw sequence as a [workers:1] run of the same schedule,
    making per-flow shard-vs-single comparison exact. *)
module Lossy : sig
  type t

  val create :
    ?workers:int ->
    ?tick_ms:int ->
    ?channel:Netdsl_sim.Channel.config ->
    ?seed:int64 ->
    machine:Netdsl_fsm.Machine.t ->
    classify:(Netdsl_format.View.t -> string option) ->
    flow_key:string ->
    key_of:(string -> int) ->
    Netdsl_format.Desc.t ->
    t
  (** [workers] (default 1) pipelines each own a wheel; a packet is
      routed to pipeline [key_of pkt mod workers] — the same partition
      the sharded server's steering applies.  [key_of] reads the flow
      key straight from wire bytes (deliveries carry no side channel). *)

  val now : t -> int
  val workers : t -> int

  val inject : t -> string -> Netdsl_engine.Pipeline.outcome
  (** Deliver one packet to its owning pipeline at the current tick. *)

  val send : t -> string -> unit
  (** Hand one packet to the lossy channel; if it survives, it is
      delivered (possibly late, possibly twice) during a later {!run}
      tick. *)

  val run : t -> until:int -> on_tick:(int -> unit) -> unit
  (** Advance virtual time tick by tick to [until]: per tick, flush the
      channel's due deliveries, poll every worker's wheel, then call
      [on_tick now]. *)

  val peek : t -> int -> Netdsl_fsm.Step.instance option
  (** The flow's live machine instance on its owning worker (no LRU
      touch) — [None] until first contact. *)

  val pipelines : t -> Netdsl_engine.Pipeline.t array
  val stats : t -> Netdsl_engine.Stats.t
  (** Merged engine counters across all workers ({!Netdsl_engine.Stats.merge}
      folds the timer counters, so expirations are counted once). *)

  val channel_stats : t -> Netdsl_sim.Channel.stats
end
