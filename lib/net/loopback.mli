(** Loopback soak harness: the socket leg of the differential oracle.

    A {!Server} runs on its own domain behind a real UDP socket bound to
    127.0.0.1; the client (the calling domain) sends generated packets
    through the kernel and diffs every reply byte-for-byte against
    {!Netdsl_check.Oracle.Reply_ref} — the same flight spec driven
    through an in-memory pipeline.  A packet whose reference reply is
    [None] must produce {e no} datagram; any stray reply left on the
    socket at the end of a run is a disagreement too.

    {!soak} is the correctness leg: lock-step (send one, await its
    reply), valid + mutated traffic, zero expected disagreements.
    {!blast} is the throughput leg: valid traffic only, a bounded window
    of outstanding packets, reporting pkts/s through the socket path.

    Both measure the server domain's own allocation rate after a warmup
    run ([Gc.allocated_bytes] before/after the measured run, divided by
    packets processed): the engine side stays at 0 B/pkt (bench e15),
    so what remains is the [Unix] syscall wrapper — the per-[recvfrom]
    [sockaddr] boxing — reported honestly, not hidden. *)

type result_ = {
  sent : int;
  replies : int;  (** datagrams read back off the socket *)
  expected_replies : int;  (** packets the reference model answers *)
  disagreements : int;
  first_disagreement : string option;
  server_processed : int;
  alloc_bytes_per_pkt : float;
      (** server-domain bytes allocated per packet, post-warmup *)
  elapsed_s : float;
  net : Stats.t;  (** the server's merged socket counters *)
}

val soak :
  ?mode:Netdsl_engine.Pipeline.mode ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?config:Netdsl_engine.Pipeline.config ->
  ?warmup:int ->
  flight:Netdsl_engine.Flight.spec ->
  packets:(int -> string) ->
  count:int ->
  Netdsl_format.Desc.t ->
  (result_, string) result
(** Lock-step differential run of [count] packets ([packets i] is the
    [i]th wire message; mix valid and mutated freely — rejected packets
    are expected to stay silent).  The reference pipeline runs in
    [Staged] mode regardless of [?mode] (default [Fused]), so a fused
    server is diffed against the staged derivation of its own spec.
    The server restarts its loop once after [warmup] packets (default
    [count/5], capped at 2000) to exercise run-twice restart and scope
    the allocation measurement to steady state. *)

val blast :
  ?mode:Netdsl_engine.Pipeline.mode ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?config:Netdsl_engine.Pipeline.config ->
  ?warmup:int ->
  ?stack:Netdsl_format.Stack.t ->
  ?window:int ->
  flight:Netdsl_engine.Flight.spec ->
  packets:(int -> string) ->
  count:int ->
  Netdsl_format.Desc.t ->
  (result_, string) result
(** Throughput run: keep up to [window] (default 64) packets
    outstanding, never inspecting reply bytes (that is {!soak}'s job —
    here every [packets i] must be accepted and answered, or the run
    under-counts).  [replies/elapsed_s] is the socket-path packet rate;
    both domains share whatever cores the host has, which on a 1-core
    box oversubscribes — callers report that caveat.  [stack] serves a
    layered chain through the fused plan (flight operands become
    qualified ["layer.field"] names); [fmt] must then be the stack's
    outermost format. *)
