module Pipeline = Netdsl_engine.Pipeline
module Flight = Netdsl_engine.Flight
module Slab = Netdsl_engine.Slab
module Spsc = Netdsl_engine.Spsc
module Shard = Netdsl_engine.Shard
module Estats = Netdsl_engine.Stats
module View = Netdsl_format.View

type endpoint =
  | Udp of { host : string; port : int }
  | Tcp of { host : string; port : int }

(* Socket I/O strategy.  [Auto] resolves at [create]: the batched
   recvmmsg/sendmmsg + persistent-epoll path when the stubs answer on
   this kernel and every listener is UDP, the recvfrom/sendto + select
   loop otherwise.  Forcing [Mmsg] where the stubs are unavailable is a
   [create]-time error, never a silent downgrade. *)
type io = Auto | Legacy | Mmsg

type listener = {
  l_proto : [ `Udp | `Tcp ];
  l_fd : Unix.file_descr;
  l_host : string;
  l_port : int;
  l_stats : Stats.t;
  mutable l_conns : conn list;
}

and conn = {
  c_fd : Unix.file_descr;
  c_buf : Bytes.t;  (* reframing buffer: at least one max-size frame *)
  mutable c_len : int;
  mutable c_open : bool;
  c_listener : listener;
}

(* Where the reply to the packet currently inside the engine goes.  One
   sink is enqueued per published slab slot, in publish order, so the
   FIFO stays parallel to the slab's own ring. *)
type sink =
  | No_sink
  | To_udp of listener * Unix.sockaddr
  | To_conn of conn

(* One sharded worker: its own pipeline, its own SPSC ring, a sink array
   parallel to the ring's slots (the ingest thread stores the packet's
   reply sink at [pos land mask] before publishing [pos]), and its own tx
   counters — worker domains never write a listener's [Stats.t]. *)
type worker = {
  w_id : int;
  w_pipe : Pipeline.t;
  w_ring : Spsc.t;
  w_sinks : sink array;
  w_cur : sink ref;
  w_stats : Stats.t;
  w_processed : int Atomic.t;
}

(* The batched (mmsg) single-worker path's working state: one {!Mmsg.t}
   sized to the slab ring (rx source addresses are filed by absolute
   slab slot and must survive until the slot's reply is flushed), the
   persistent epoll instance, per-listener hot flags for the
   edge-triggered drain discipline, and the reply staging arrays one
   [sendmmsg] flushes per engine batch.  Everything here is
   preallocated: the rx and tx loops allocate nothing per packet. *)
type mmsg_io = {
  mm_batch : Mmsg.t;
  mm_ep : Mmsg.Epoll.ep;
  mm_tags : int array;  (* epoll-ready listener indices *)
  mm_hot : bool array;
      (* listener may hold more data: set on an epoll edge or when a
         drain stopped early (slab full), cleared only by EAGAIN *)
  mm_owner : int array;  (* slab slot -> listener index *)
  mm_ls : listener array;
  mm_txb : Bytes.t array;  (* reply staging: the engine's reply window
                              is reused per packet, so each reply is
                              blitted once into its own staging slot *)
  mm_txl : int array;
  mm_txa : int array;  (* staging entry -> slab slot holding the dest *)
  mutable mm_txn : int;  (* staged replies not yet flushed *)
  mutable mm_tx_listener : int;  (* their common listener; -1 = none *)
}

(* The batched sharded steering stage: recvmmsg into a scratch batch
   (the destination ring is unknown before the bytes are read), then
   key-read + route + one blit per packet, exactly like the legacy
   steering loop but [io_batch] datagrams per syscall. *)
type mmsg_sh = {
  ms_batch : Mmsg.t;
  ms_bufs : Bytes.t array;
  ms_lens : int array;
  ms_ep : Mmsg.Epoll.ep;
  ms_tags : int array;
  ms_hot : bool array;
  ms_ls : listener array;
}

(* Sharded mode ([workers > 1], UDP only): the readiness loop becomes a
   pure steering stage — recv into scratch, read the flow key
   (fixed-offset, no decode), [Shard.Steer.route], blit once into the
   destination worker's ring — and the worker domains run the
   pipelines. *)
type sharded = {
  sh_steer : Shard.Steer.t;
  sh_key : View.key_extractor;
  sh_key_min : int;  (* fewest datagram bytes that carry the key *)
  sh_workers : worker array;
  sh_rings : Spsc.t array;
  sh_batch : int;
  sh_mm : mmsg_sh option;
  mutable sh_published : int;  (* packets blitted into rings, ever *)
  mutable sh_domains : unit Domain.t array;
}

type t = {
  s_pipe : Pipeline.t;
  s_slab : Slab.t;
  s_batch : int;
  s_io_batch : int;
  s_listeners : listener list;
  s_sinks : sink array;
  mutable s_head : int;
  s_cur : sink ref;
  s_stop : bool Atomic.t;
  mutable s_processed : int;
  s_scratch : Bytes.t;  (* overflow reads land here and are dropped *)
  s_txbuf : Bytes.t;  (* TCP reply: 2-byte length prefix + payload *)
  s_loop : Stats.t;  (* the event-loop row: select/epoll_wait syscalls *)
  s_mm : mmsg_io option;  (* Some = single-worker batched path *)
  mutable s_fds : Unix.file_descr list;
      (* cached select fd set; rebuilt only when the conn set changes *)
  mutable s_fds_dirty : bool;
  s_prev_signals : (int * Sys.signal_behavior) list;
  s_shard : sharded option;
  mutable s_closed : bool;
}

let err_text = function
  | Unix.EADDRINUSE -> "address already in use"
  | Unix.EADDRNOTAVAIL -> "address not available"
  | Unix.EACCES -> "permission denied"
  | e -> Unix.error_message e

let proto_name = function `Udp -> "udp" | `Tcp -> "tcp"

(* ---- reply path ------------------------------------------------------ *)

(* Called from inside [Pipeline.process_buffer] via [on_reply]: the
   engine lends us its reply window, we push it onto the wire for the
   sink of the packet being processed.  Nonblocking throughout — a full
   socket buffer costs the reply, never the engine. *)
let send_reply cur txbuf buf len =
  match !cur with
  | No_sink -> ()
  | To_udp (l, addr) -> (
    let st = l.l_stats in
    st.Stats.syscalls <- st.Stats.syscalls + 1;
    match Unix.sendto l.l_fd buf 0 len [] addr with
    | n when n = len ->
      st.Stats.tx_pkts <- st.Stats.tx_pkts + 1;
      st.Stats.tx_bytes <- st.Stats.tx_bytes + n
    | _ -> st.Stats.short_writes <- st.Stats.short_writes + 1
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      st.Stats.send_eagain <- st.Stats.send_eagain + 1
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      st.Stats.tx_errors <- st.Stats.tx_errors + 1
    | exception Unix.Unix_error (_, _, _) ->
      st.Stats.tx_errors <- st.Stats.tx_errors + 1)
  | To_conn c ->
    let st = c.c_listener.l_stats in
    if not c.c_open || len > 0xffff then
      st.Stats.tx_errors <- st.Stats.tx_errors + 1
    else begin
      Bytes.unsafe_set txbuf 0 (Char.unsafe_chr (len lsr 8));
      Bytes.unsafe_set txbuf 1 (Char.unsafe_chr (len land 0xff));
      Bytes.blit buf 0 txbuf 2 len;
      let total = len + 2 in
      st.Stats.syscalls <- st.Stats.syscalls + 1;
      match Unix.write c.c_fd txbuf 0 total with
      | n when n = total ->
        st.Stats.tx_pkts <- st.Stats.tx_pkts + 1;
        st.Stats.tx_bytes <- st.Stats.tx_bytes + len
      | _ ->
        (* A partial frame poisons the stream; drop the connection
           rather than desynchronise the peer's framing. *)
        st.Stats.short_writes <- st.Stats.short_writes + 1;
        (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
        c.c_open <- false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        st.Stats.send_eagain <- st.Stats.send_eagain + 1
      | exception Unix.Unix_error (_, _, _) ->
        st.Stats.tx_errors <- st.Stats.tx_errors + 1;
        (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
        c.c_open <- false
    end

(* The sharded reply path: UDP only (sharded mode refuses TCP listeners),
   charging the worker's own counters — the listener's [Stats.t] stays
   single-writer (the ingest thread). *)
let send_reply_sharded st cur buf len =
  match !cur with
  | To_udp (l, addr) -> (
    st.Stats.syscalls <- st.Stats.syscalls + 1;
    match Unix.sendto l.l_fd buf 0 len [] addr with
    | n when n = len ->
      st.Stats.tx_pkts <- st.Stats.tx_pkts + 1;
      st.Stats.tx_bytes <- st.Stats.tx_bytes + n
    | _ -> st.Stats.short_writes <- st.Stats.short_writes + 1
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      st.Stats.send_eagain <- st.Stats.send_eagain + 1
    | exception Unix.Unix_error (_, _, _) ->
      st.Stats.tx_errors <- st.Stats.tx_errors + 1)
  | No_sink | To_conn _ -> ()

(* ---- batched reply path (single-worker mmsg mode) --------------------

   The engine lends its one reusable reply window per packet, so a
   deferred flush must own the bytes: each reply is blitted into a
   preallocated staging slot (one copy — far cheaper than the syscall
   the batch saves) and the whole batch leaves in one [sendmmsg] before
   the slab run is released, while the rx source addresses filed under
   the slab slots are still live.  Partial sends resume from the first
   unsent entry; EAGAIN drops the remainder (never blocks the engine),
   exactly the legacy per-packet policy. *)

let flush_tx mm =
  if mm.mm_txn > 0 then begin
    let l = mm.mm_ls.(mm.mm_tx_listener) in
    let st = l.l_stats in
    let total = mm.mm_txn in
    let sent = ref 0 in
    let continue = ref true in
    while !continue && !sent < total do
      st.Stats.syscalls <- st.Stats.syscalls + 1;
      let r =
        Mmsg.send mm.mm_batch l.l_fd ~bufs:mm.mm_txb ~lens:mm.mm_txl
          ~addr_idx:mm.mm_txa ~off:!sent ~n:(total - !sent)
      in
      if r > 0 then begin
        st.Stats.batched_tx <- st.Stats.batched_tx + r;
        if r > st.Stats.hwm_pkts_per_syscall then
          st.Stats.hwm_pkts_per_syscall <- r;
        for i = !sent to !sent + r - 1 do
          st.Stats.tx_bytes <- st.Stats.tx_bytes + mm.mm_txl.(i)
        done;
        st.Stats.tx_pkts <- st.Stats.tx_pkts + r;
        sent := !sent + r
      end
      else if r = Mmsg.eagain then begin
        st.Stats.send_eagain <- st.Stats.send_eagain + (total - !sent);
        continue := false
      end
      else begin
        st.Stats.tx_errors <- st.Stats.tx_errors + (total - !sent);
        continue := false
      end
    done;
    mm.mm_txn <- 0;
    mm.mm_tx_listener <- -1
  end

(* [on_reply_slot] in mmsg mode: [i] is the engine-window index of the
   packet being answered, which (the window IS the slab's popped batch,
   see [drain_slab_mmsg]) maps through [Slab.batch_slot] to the slab
   slot whose C sockaddr holds the return address.  Stage, flushing
   first when the staging ring is full or the reply belongs to a
   different listener's socket than the batch in progress.  A reply
   wider than a staging slot cannot ride the batch; it goes out alone
   through the legacy sendto (cold path — the engine's replies are
   request-sized).  Timer-driven replies arrive with [i < 0] — no
   return address — and are dropped, as on the legacy path
   ([s_cur = No_sink]). *)
let stage_reply slab mm i buf len =
  if i >= 0 then begin
    let s = Slab.batch_slot slab i in
    let li = mm.mm_owner.(s) in
    if len > Bytes.length mm.mm_txb.(0) then begin
      let l = mm.mm_ls.(li) in
      let st = l.l_stats in
      st.Stats.syscalls <- st.Stats.syscalls + 1;
      match Unix.sendto l.l_fd buf 0 len [] (Mmsg.addr mm.mm_batch s) with
      | n when n = len ->
        st.Stats.tx_pkts <- st.Stats.tx_pkts + 1;
        st.Stats.tx_bytes <- st.Stats.tx_bytes + n
      | _ -> st.Stats.short_writes <- st.Stats.short_writes + 1
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        st.Stats.send_eagain <- st.Stats.send_eagain + 1
      | exception Unix.Unix_error (_, _, _) ->
        st.Stats.tx_errors <- st.Stats.tx_errors + 1
    end
    else begin
      if
        mm.mm_txn = Array.length mm.mm_txb
        || (mm.mm_tx_listener >= 0 && mm.mm_tx_listener <> li)
      then flush_tx mm;
      mm.mm_tx_listener <- li;
      let j = mm.mm_txn in
      Bytes.blit buf 0 mm.mm_txb.(j) 0 len;
      mm.mm_txl.(j) <- len;
      mm.mm_txa.(j) <- s;
      mm.mm_txn <- j + 1
    end
  end

(* One sharded worker domain: claim a batch, honour migration fences, set
   the per-packet sink from the parallel array, run each packet to
   completion (reply sent from inside the call), release.  Identical
   discipline to [Shard]'s worker loop, plus sink bookkeeping. *)
let shard_worker sh w =
  let ring = w.w_ring in
  let mask = Array.length w.w_sinks - 1 in
  let batch = sh.sh_batch in
  let rec loop idle =
    match Spsc.poll ring ~max:batch with
    | -1 -> ()
    | 0 ->
      Shard.Steer.mark_hungry sh.sh_steer w.w_id;
      (* No packets: this is the only moment expiry can drive the worker's
         machines — the batch path polls inside [run_window]. *)
      ignore (Pipeline.poll_timers w.w_pipe);
      Spsc.backoff idle;
      loop (idle + 1)
    | n ->
      Shard.Steer.fence_wait sh.sh_steer sh.sh_rings ~me:w.w_id ~ring ~n;
      let base = Spsc.consumer_pos ring in
      for i = 0 to n - 1 do
        w.w_cur := w.w_sinks.((base + i) land mask);
        ignore
          (Pipeline.process_buffer w.w_pipe (Spsc.buf ring i)
             ~len:(Spsc.len ring i))
      done;
      w.w_cur := No_sink;
      ignore (Atomic.fetch_and_add w.w_processed n);
      Spsc.release ring;
      loop 0
  in
  loop 0

(* ---- create ---------------------------------------------------------- *)

let bind_listener ep =
  let proto, host, port =
    match ep with
    | Udp { host; port } -> (`Udp, host, port)
    | Tcp { host; port } -> (`Tcp, host, port)
  in
  if port < 0 || port > 65535 then
    Error (Printf.sprintf "invalid port %d (expected 0..65535)" port)
  else
    match Unix.inet_addr_of_string host with
    | exception Failure _ ->
      Error (Printf.sprintf "invalid listen address %S" host)
    | addr -> (
      let kind = match proto with `Udp -> Unix.SOCK_DGRAM | `Tcp -> Unix.SOCK_STREAM in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET kind 0 in
      match
        Unix.set_nonblock fd;
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (* Widen the kernel buffers so the bounded-backpressure story is
           the kernel's, not a 208 KiB default's; best-effort. *)
        (try Unix.setsockopt_int fd Unix.SO_RCVBUF (1 lsl 20)
         with Unix.Unix_error _ -> ());
        (try Unix.setsockopt_int fd Unix.SO_SNDBUF (1 lsl 20)
         with Unix.Unix_error _ -> ());
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        if proto = `Tcp then Unix.listen fd 64;
        (match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port)
      with
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot bind %s %s:%d: %s" (proto_name proto) host
             port (err_text e))
      | bound_port ->
        Ok
          { l_proto = proto; l_fd = fd; l_host = host; l_port = bound_port;
            l_stats = Stats.create (); l_conns = [] })

let mmsg_available () = Mmsg.available () && Mmsg.Epoll.available ()

let create ?(config = Pipeline.default_config) ?(mode = Pipeline.Staged)
    ?stack ?machine ?(tick_ms = 1) ?(signals = true) ?(workers = 1)
    ?(allow_oversubscribe = false) ?(stealing = false) ?shard_key
    ?(io = Auto) ?(io_batch = 32) ~flight ~listeners fmt =
  let all_udp =
    List.for_all (function Udp _ -> true | Tcp _ -> false) listeners
  in
  let use_mmsg =
    match io with
    | Legacy -> Ok false
    (* the shape error first: it is deterministic for a given request,
       while availability depends on the host kernel (and the
       NETDSL_NO_MMSG mask), so a TCP+Mmsg request reads the same
       everywhere *)
    | Mmsg when not all_udp -> Error "batched I/O serves UDP listeners only"
    | Mmsg when not (mmsg_available ()) ->
      Error
        "batched I/O unavailable: the recvmmsg/epoll stubs report \
         unsupported on this kernel (or NETDSL_NO_MMSG is set); use --io \
         legacy"
    | Mmsg -> Ok true
    | Auto -> Ok (all_udp && mmsg_available ())
  in
  if listeners = [] then Error "no listeners given"
  else if workers <= 0 then Error "workers must be positive"
  else if io_batch <= 0 then Error "io-batch must be a positive batch size"
  else begin
    match use_mmsg with
    | Error _ as e -> e
    | Ok use_mmsg ->
    let stop = Atomic.make false in
    (* Handlers go in before any socket exists: a signal that lands
       during bring-up or a long bind still produces a stats report
       instead of killing the process mid-setup. *)
    let prev_signals =
      if not signals then []
      else begin
        let h = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
        let prev_int = Sys.signal Sys.sigint h in
        let prev_term = Sys.signal Sys.sigterm h in
        [ (Sys.sigint, prev_int); (Sys.sigterm, prev_term) ]
      end
    in
    let restore_signals () =
      List.iter (fun (s, b) -> Sys.set_signal s b) prev_signals
    in
    let rec bind_all acc = function
      | [] -> Ok (List.rev acc)
      | ep :: rest -> (
        match bind_listener ep with
        | Ok l -> bind_all (l :: acc) rest
        | Error _ as e ->
          List.iter
            (fun l -> try Unix.close l.l_fd with Unix.Unix_error _ -> ())
            acc;
          e)
    in
    match bind_all [] listeners with
    | Error msg ->
      restore_signals ();
      Error msg
    | Ok ls ->
      let fail msg =
        List.iter
          (fun l -> try Unix.close l.l_fd with Unix.Unix_error _ -> ())
          ls;
        restore_signals ();
        Error msg
      in
      if workers = 1 then (
        let cur = ref No_sink in
        let txbuf = Bytes.create (config.Pipeline.slot_bytes + 2) in
        let mm_result =
          if not use_mmsg then Ok None
          else
            match
              let cap = config.Pipeline.ring_capacity in
              let nl = List.length ls in
              let ep = Mmsg.Epoll.create (max nl 1) in
              List.iteri (fun i l -> Mmsg.Epoll.add ep l.l_fd i) ls;
              { mm_batch = Mmsg.create cap;
                mm_ep = ep;
                mm_tags = Array.make (max nl 1) (-1);
                mm_hot = Array.make nl false;
                mm_owner = Array.make cap 0;
                mm_ls = Array.of_list ls;
                mm_txb =
                  Array.init io_batch (fun _ ->
                      Bytes.create config.Pipeline.slot_bytes);
                mm_txl = Array.make io_batch 0;
                mm_txa = Array.make io_batch (-1);
                mm_txn = 0;
                mm_tx_listener = -1 }
            with
            | exception Failure msg -> Error msg
            | mm -> Ok (Some mm)
        in
        match mm_result with
        | Error msg -> fail msg
        | Ok mm -> (
          (* the slab exists before the pipeline: the batched reply
             callback closes over it to map window indices to slots *)
          let slab =
            Slab.create ~slot_bytes:config.Pipeline.slot_bytes
              ~capacity:config.Pipeline.ring_capacity ()
          in
          let on_reply, on_reply_slot =
            match mm with
            | Some m -> (None, Some (fun i buf len -> stage_reply slab m i buf len))
            | None -> (Some (fun buf len -> send_reply cur txbuf buf len), None)
          in
          match
            Pipeline.create ~config ~mode ?stack ~flight ?machine ~tick_ms
              ~clock_ms:Mmsg.now_ms ~now_ns:Mmsg.now_ns ?on_reply
              ?on_reply_slot fmt
          with
          | exception e ->
            (match mm with
            | Some m -> Mmsg.Epoll.close m.mm_ep
            | None -> ());
            fail (Printexc.to_string e)
          | pipe ->
            Ok
              { s_pipe = pipe;
                s_slab = slab;
                s_batch = config.Pipeline.batch;
                s_io_batch = io_batch;
                s_listeners = ls;
                s_sinks = Array.make config.Pipeline.ring_capacity No_sink;
                s_head = 0;
                s_cur = cur;
                s_stop = stop;
                s_processed = 0;
                s_scratch = Bytes.create config.Pipeline.slot_bytes;
                s_txbuf = txbuf;
                s_loop = Stats.create ();
                s_mm = mm;
                s_fds = [];
                s_fds_dirty = true;
                s_prev_signals = prev_signals;
                s_shard = None;
                s_closed = false }))
      else if List.exists (fun l -> l.l_proto = `Tcp) ls then
        fail "sharded mode (workers > 1) serves UDP listeners only"
      else if stack <> None then
        fail "sharded mode does not support layered stacks"
      else begin
        (* Steer on the flight spec's own flow key unless told otherwise:
           packets of a flow must land where that flow's machine instance
           lives, and the spec already names the field that defines a
           flow. *)
        let keyname =
          match shard_key with
          | Some k -> Ok k
          | None -> (
            match Flight.spec_flow_key flight with
            | Some k -> Ok k
            | None ->
              Error
                "sharded mode needs a steering key: the flight spec has \
                 no flow key and no ~shard_key was given")
        in
        match keyname with
        | Error e -> fail e
        | Ok keyname -> (
          match View.key_extractor fmt keyname with
          | Error e ->
            fail
              (Printf.sprintf "sharded mode: bad steering key %S: %s" keyname
                 e)
          | Ok ke -> (
            (* Same clamp discipline as [Shard.create]: domains beyond the
               core count time-share and measure the scheduler. *)
            let cores = Domain.recommended_domain_count () in
            let n_workers, warn =
              if workers <= cores then (workers, None)
              else if allow_oversubscribe then
                ( workers,
                  Some
                    (Printf.sprintf
                       "serve: %d workers oversubscribe %d available core(s)"
                       workers cores) )
              else
                ( cores,
                  Some
                    (Printf.sprintf
                       "serve: requested %d workers, clamped to %d \
                        available core(s)"
                       workers cores) )
            in
            let steer =
              Shard.Steer.create ~stealing
                ~steal_threshold:config.Pipeline.batch ~workers:n_workers ()
            in
            match
              Array.init n_workers (fun i ->
                  let cur = ref No_sink in
                  let wst = Stats.create () in
                  let pipe =
                    Pipeline.create ~config ~mode ~flight ?machine ~tick_ms
                      ~clock_ms:Mmsg.now_ms ~now_ns:Mmsg.now_ns
                      ~on_reply:(fun buf len ->
                        send_reply_sharded wst cur buf len)
                      fmt
                  in
                  let ring =
                    Spsc.create ~slot_bytes:config.Pipeline.slot_bytes
                      ~capacity:config.Pipeline.ring_capacity ()
                  in
                  { w_id = i;
                    w_pipe = pipe;
                    w_ring = ring;
                    w_sinks = Array.make (Spsc.capacity ring) No_sink;
                    w_cur = cur;
                    w_stats = wst;
                    w_processed = Atomic.make 0 })
            with
            | exception e -> fail (Printexc.to_string e)
            | ws -> (
              (match warn with
              | None -> ()
              | Some w ->
                Array.iter
                  (fun wk -> Estats.note_warning (Pipeline.stats wk.w_pipe) w)
                  ws);
              let ms_result =
                if not use_mmsg then Ok None
                else
                  match
                    let nl = List.length ls in
                    let ep = Mmsg.Epoll.create (max nl 1) in
                    List.iteri (fun i l -> Mmsg.Epoll.add ep l.l_fd i) ls;
                    { ms_batch = Mmsg.create io_batch;
                      ms_bufs =
                        Array.init io_batch (fun _ ->
                            Bytes.create config.Pipeline.slot_bytes);
                      ms_lens = Array.make io_batch 0;
                      ms_ep = ep;
                      ms_tags = Array.make (max nl 1) (-1);
                      ms_hot = Array.make nl false;
                      ms_ls = Array.of_list ls }
                  with
                  | exception Failure msg -> Error msg
                  | ms -> Ok (Some ms)
              in
              match ms_result with
              | Error msg -> fail msg
              | Ok ms ->
                let sh =
                  { sh_steer = steer;
                    sh_key = ke;
                    sh_key_min = View.key_min_bytes ke;
                    sh_workers = ws;
                    sh_rings = Array.map (fun w -> w.w_ring) ws;
                    sh_batch = config.Pipeline.batch;
                    sh_mm = ms;
                    sh_published = 0;
                    sh_domains = [||] }
                in
                sh.sh_domains <-
                  Array.map
                    (fun w -> Domain.spawn (fun () -> shard_worker sh w))
                    ws;
                Ok
                  { s_pipe = ws.(0).w_pipe;
                    s_slab =
                      (* unused in sharded mode; minimal so it costs one
                         slot, not a full ring *)
                      Slab.create ~slot_bytes:config.Pipeline.slot_bytes
                        ~capacity:1 ();
                    s_batch = config.Pipeline.batch;
                    s_io_batch = io_batch;
                    s_listeners = ls;
                    s_sinks = [||];
                    s_head = 0;
                    s_cur = ws.(0).w_cur;
                    s_stop = stop;
                    s_processed = 0;
                    s_scratch = Bytes.create config.Pipeline.slot_bytes;
                    s_txbuf = Bytes.create 2;
                    s_loop = Stats.create ();
                    s_mm = None;
                    s_fds = [];
                    s_fds_dirty = true;
                    s_prev_signals = prev_signals;
                    s_shard = Some sh;
                    s_closed = false })))
      end
  end

(* ---- ingest ---------------------------------------------------------- *)

let free_slots t = Slab.capacity t.s_slab - Slab.length t.s_slab

(* The sink FIFO mirrors the slab ring: one entry per published slot, in
   publish order.  [s_head] is the consumer cursor; the producer cursor
   is [s_head + Slab.length] (mod capacity) because occupancy is exactly
   the slab's. *)
let push_sink t sink =
  let cap = Array.length t.s_sinks in
  let tail = (t.s_head + Slab.length t.s_slab - 1 + cap) mod cap in
  t.s_sinks.(tail) <- sink

let pop_sink t =
  let s = t.s_sinks.(t.s_head) in
  t.s_sinks.(t.s_head) <- No_sink;
  t.s_head <- (t.s_head + 1) mod Array.length t.s_sinks;
  s

(* Drain one readable UDP socket: datagrams go straight into leased slab
   slots until the socket runs dry or the slab fills.  On a full slab the
   next datagram is read into scratch and dropped — counted, bounded,
   never blocking the engine. *)
let drain_udp t l =
  let st = l.l_stats in
  let continue = ref true in
  let drained = ref 0 in
  while !continue do
    if free_slots t = 0 then begin
      st.Stats.syscalls <- st.Stats.syscalls + 1;
      match
        Unix.recvfrom l.l_fd t.s_scratch 0 (Bytes.length t.s_scratch) []
      with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> continue := false
      | _ ->
        st.Stats.drops <- st.Stats.drops + 1;
        (* yield to the engine: one drop per full-slab wake *)
        continue := false
    end
    else
      match Slab.lease t.s_slab with
      | None -> continue := false
      | Some buf -> (
        st.Stats.syscalls <- st.Stats.syscalls + 1;
        match Unix.recvfrom l.l_fd buf 0 (Bytes.length buf) [] with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          Slab.abandon t.s_slab;
          continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> Slab.abandon t.s_slab
        | exception Unix.Unix_error (_, _, _) ->
          (* e.g. ECONNREFUSED bounced back from an earlier send *)
          Slab.abandon t.s_slab
        | n, addr ->
          Slab.publish t.s_slab n;
          push_sink t (To_udp (l, addr));
          st.Stats.rx_pkts <- st.Stats.rx_pkts + 1;
          st.Stats.rx_bytes <- st.Stats.rx_bytes + n;
          if n > st.Stats.hwm_datagram then st.Stats.hwm_datagram <- n;
          if st.Stats.hwm_pkts_per_syscall < 1 then
            st.Stats.hwm_pkts_per_syscall <- 1;
          incr drained)
  done;
  if !drained > st.Stats.hwm_drain then st.Stats.hwm_drain <- !drained

(* Batched UDP drain: lease a contiguous slab run, let one [recvmmsg]
   scatter datagrams straight into the slots (lengths land in the
   slab's own length array, source addresses in the C slots of the same
   indices), publish the filled prefix, and loop until the socket runs
   dry.  Edge-triggered discipline: only EAGAIN clears the listener's
   hot flag — a drain cut short by a full slab keeps it set, and the
   event loop comes straight back after the engine frees slots. *)
let drain_udp_mmsg t mm li =
  let l = mm.mm_ls.(li) in
  let st = l.l_stats in
  let slab = t.s_slab in
  let bufs = Slab.raw_bufs slab in
  let lens = Slab.raw_lens slab in
  let continue = ref true in
  let drained = ref 0 in
  while !continue do
    let k = Slab.lease_run slab ~max:t.s_io_batch in
    if k = 0 then begin
      (* slab full: one counted drop per wake, flag stays hot *)
      st.Stats.syscalls <- st.Stats.syscalls + 1;
      (match
         Unix.recvfrom l.l_fd t.s_scratch 0 (Bytes.length t.s_scratch) []
       with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        mm.mm_hot.(li) <- false
      | exception Unix.Unix_error (_, _, _) -> ()
      | _ -> st.Stats.drops <- st.Stats.drops + 1);
      continue := false
    end
    else begin
      let base = Slab.producer_slot slab in
      st.Stats.syscalls <- st.Stats.syscalls + 1;
      let r = Mmsg.recv mm.mm_batch l.l_fd ~bufs ~lens ~base ~count:k in
      if r > 0 then begin
        st.Stats.batched_rx <- st.Stats.batched_rx + r;
        if r > st.Stats.hwm_pkts_per_syscall then
          st.Stats.hwm_pkts_per_syscall <- r;
        for i = base to base + r - 1 do
          mm.mm_owner.(i) <- li;
          st.Stats.rx_bytes <- st.Stats.rx_bytes + lens.(i);
          if lens.(i) > st.Stats.hwm_datagram then
            st.Stats.hwm_datagram <- lens.(i)
        done;
        st.Stats.rx_pkts <- st.Stats.rx_pkts + r;
        drained := !drained + r;
        Slab.publish_run slab ~n:r
      end
      else begin
        Slab.publish_run slab ~n:0;
        if r = Mmsg.eagain then begin
          mm.mm_hot.(li) <- false;
          continue := false
        end
        else
          (* EINTR (0) or a queued socket error like an ECONNREFUSED
             bounce (-3, consumed by the failed call): stop this drain
             but stay hot — the next loop iteration retries with the
             engine having run in between, so progress is guaranteed *)
          continue := false
      end
    end
  done;
  if !drained > st.Stats.hwm_drain then st.Stats.hwm_drain <- !drained

(* Sharded ingest: the steering stage.  Datagrams land in the scratch
   buffer (the destination ring is unknown before the packet is read),
   the flow key is read at its fixed offset — no decode — and the packet
   is blitted once into the owner worker's ring, its reply sink stored in
   the parallel slot {e before} the publish.  A full ring costs the
   packet (counted as a drop) rather than blocking the listener: the
   select loop must keep serving the other workers' flows. *)
let drain_udp_sharded t sh l =
  let st = l.l_stats in
  let scratch = t.s_scratch in
  let continue = ref true in
  let drained = ref 0 in
  while !continue do
    st.Stats.syscalls <- st.Stats.syscalls + 1;
    match Unix.recvfrom l.l_fd scratch 0 (Bytes.length scratch) [] with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
    | n, addr ->
      st.Stats.rx_pkts <- st.Stats.rx_pkts + 1;
      st.Stats.rx_bytes <- st.Stats.rx_bytes + n;
      if n > st.Stats.hwm_datagram then st.Stats.hwm_datagram <- n;
      if st.Stats.hwm_pkts_per_syscall < 1 then
        st.Stats.hwm_pkts_per_syscall <- 1;
      (* scratch is longer than the datagram: bound the key read by the
         receive length, not the buffer length *)
      let key =
        if n < sh.sh_key_min then View.no_key
        else View.extract_key_int sh.sh_key (Bytes.unsafe_to_string scratch)
      in
      let w = sh.sh_workers.(Shard.Steer.route sh.sh_steer ~key) in
      let ring = w.w_ring in
      if not (Spsc.has_space ring) then st.Stats.drops <- st.Stats.drops + 1
      else begin
        w.w_sinks.(Spsc.producer_pos ring land (Array.length w.w_sinks - 1)) <-
          To_udp (l, addr);
        Bytes.blit scratch 0 (Spsc.slot ring) 0 n;
        Spsc.publish ring ~tag:(Shard.Steer.last_bucket sh.sh_steer) n;
        sh.sh_published <- sh.sh_published + 1;
        incr drained
      end;
      Shard.Steer.maybe_rebalance sh.sh_steer sh.sh_rings
  done;
  if !drained > st.Stats.hwm_drain then st.Stats.hwm_drain <- !drained

(* Batched steering: one [recvmmsg] fills the scratch batch, then each
   datagram is keyed, routed, and blitted into its worker's ring as in
   the legacy loop.  The per-packet sink still allocates (the worker
   needs a [Unix.sockaddr] for its [sendto]) — parity with legacy
   sharded; what the batch buys is the syscall amortization on rx. *)
let drain_udp_sharded_mmsg sh ms li =
  let l = ms.ms_ls.(li) in
  let st = l.l_stats in
  let cap = Array.length ms.ms_bufs in
  let continue = ref true in
  let drained = ref 0 in
  while !continue do
    st.Stats.syscalls <- st.Stats.syscalls + 1;
    let r =
      Mmsg.recv ms.ms_batch l.l_fd ~bufs:ms.ms_bufs ~lens:ms.ms_lens ~base:0
        ~count:cap
    in
    if r > 0 then begin
      st.Stats.batched_rx <- st.Stats.batched_rx + r;
      if r > st.Stats.hwm_pkts_per_syscall then
        st.Stats.hwm_pkts_per_syscall <- r;
      for i = 0 to r - 1 do
        let n = ms.ms_lens.(i) in
        let pkt = ms.ms_bufs.(i) in
        st.Stats.rx_pkts <- st.Stats.rx_pkts + 1;
        st.Stats.rx_bytes <- st.Stats.rx_bytes + n;
        if n > st.Stats.hwm_datagram then st.Stats.hwm_datagram <- n;
        let key =
          if n < sh.sh_key_min then View.no_key
          else View.extract_key_int sh.sh_key (Bytes.unsafe_to_string pkt)
        in
        let w = sh.sh_workers.(Shard.Steer.route sh.sh_steer ~key) in
        let ring = w.w_ring in
        if not (Spsc.has_space ring) then
          st.Stats.drops <- st.Stats.drops + 1
        else begin
          w.w_sinks.(Spsc.producer_pos ring land (Array.length w.w_sinks - 1)) <-
            To_udp (l, Mmsg.addr ms.ms_batch i);
          Bytes.blit pkt 0 (Spsc.slot ring) 0 n;
          Spsc.publish ring ~tag:(Shard.Steer.last_bucket sh.sh_steer) n;
          sh.sh_published <- sh.sh_published + 1;
          incr drained
        end
      done;
      Shard.Steer.maybe_rebalance sh.sh_steer sh.sh_rings
    end
    else begin
      if r = Mmsg.eagain then ms.ms_hot.(li) <- false;
      continue := false
    end
  done;
  if !drained > st.Stats.hwm_drain then st.Stats.hwm_drain <- !drained

let close_conn t c =
  if c.c_open then begin
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    c.c_open <- false;
    c.c_listener.l_conns <- List.filter (fun c' -> c' != c) c.c_listener.l_conns;
    c.c_listener.l_stats.Stats.conns_closed <-
      c.c_listener.l_stats.Stats.conns_closed + 1;
    t.s_fds_dirty <- true
  end

let accept_conns t l =
  let continue = ref true in
  while !continue do
    l.l_stats.Stats.syscalls <- l.l_stats.Stats.syscalls + 1;
    match Unix.accept ~cloexec:true l.l_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
    | fd, _addr ->
      Unix.set_nonblock fd;
      let c =
        { c_fd = fd;
          c_buf = Bytes.create (2 + Slab.slot_bytes t.s_slab);
          c_len = 0; c_open = true; c_listener = l }
      in
      l.l_conns <- c :: l.l_conns;
      l.l_stats.Stats.conns_accepted <- l.l_stats.Stats.conns_accepted + 1;
      t.s_fds_dirty <- true
  done

(* Cut complete [u16 BE length]-prefixed frames out of a connection's
   buffer and blit them into the slab.  An oversized frame is a protocol
   violation: count it and drop the connection (resynchronising a framed
   stream is not possible). *)
let extract_frames t c =
  let st = c.c_listener.l_stats in
  let continue = ref true in
  let drained = ref 0 in
  while !continue && c.c_open && c.c_len >= 2 do
    let flen =
      (Char.code (Bytes.get c.c_buf 0) lsl 8)
      lor Char.code (Bytes.get c.c_buf 1)
    in
    if flen > Slab.slot_bytes t.s_slab then begin
      st.Stats.drops <- st.Stats.drops + 1;
      close_conn t c
    end
    else if c.c_len < 2 + flen then continue := false
    else begin
      (if free_slots t = 0 then st.Stats.drops <- st.Stats.drops + 1
       else begin
         (* [push] blits immediately, so aliasing the buffer we are
            about to shift is fine; it cannot block (a free slot was
            just checked and we are the only producer). *)
         ignore
           (Slab.push t.s_slab ~off:2 ~len:flen
              (Bytes.unsafe_to_string c.c_buf));
         push_sink t (To_conn c);
         st.Stats.rx_pkts <- st.Stats.rx_pkts + 1;
         st.Stats.rx_bytes <- st.Stats.rx_bytes + flen;
         if flen > st.Stats.hwm_datagram then st.Stats.hwm_datagram <- flen;
         incr drained
       end);
      let rest = c.c_len - 2 - flen in
      if rest > 0 then Bytes.blit c.c_buf (2 + flen) c.c_buf 0 rest;
      c.c_len <- rest
    end
  done;
  if !drained > st.Stats.hwm_drain then st.Stats.hwm_drain <- !drained

let drain_conn t c =
  c.c_listener.l_stats.Stats.syscalls <-
    c.c_listener.l_stats.Stats.syscalls + 1;
  match Unix.read c.c_fd c.c_buf c.c_len (Bytes.length c.c_buf - c.c_len) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c
  | 0 -> close_conn t c
  | n ->
    c.c_len <- c.c_len + n;
    extract_frames t c

(* ---- the loop -------------------------------------------------------- *)

(* Process every published slot, strictly in publish order, each packet
   run to completion (its reply is sent from inside the call) before the
   next is touched. *)
let drain_slab t =
  let n_done = ref 0 in
  while Slab.length t.s_slab > 0 do
    let n = Slab.pop_batch t.s_slab ~max:t.s_batch in
    for i = 0 to n - 1 do
      t.s_cur := pop_sink t;
      ignore
        (Pipeline.process_buffer t.s_pipe (Slab.buf t.s_slab i)
           ~len:(Slab.len t.s_slab i));
      incr n_done
    done;
    t.s_cur := No_sink;
    Slab.release t.s_slab
  done;
  t.s_processed <- t.s_processed + !n_done;
  !n_done

(* The batched variant: same strict publish-order processing, but the
   replies accumulate in the staging slots and leave in one [sendmmsg]
   per batch.  The flush MUST precede [Slab.release]: a staged reply's
   destination lives in the C sockaddr slot of its rx slab slot, and
   release lets the producer lease (and recvmmsg overwrite) that slot. *)
let drain_slab_mmsg t mm =
  let n_done = ref 0 in
  let slab = t.s_slab in
  while Slab.length slab > 0 do
    let n = Slab.pop_batch slab ~max:t.s_batch in
    Pipeline.process_slab_batch t.s_pipe slab ~n;
    n_done := !n_done + n;
    flush_tx mm;
    Slab.release slab
  done;
  t.s_processed <- t.s_processed + !n_done;
  !n_done

let sweep_sockets t =
  List.iter
    (fun l ->
      match l.l_proto with
      | `Udp -> drain_udp t l
      | `Tcp ->
        accept_conns t l;
        List.iter (fun c -> drain_conn t c) l.l_conns)
    t.s_listeners

(* The select fd set, rebuilt only when a connection is accepted or
   closed — the legacy loop's one per-iteration allocation, hoisted. *)
let current_fds t =
  if t.s_fds_dirty then begin
    t.s_fds <-
      List.concat_map
        (fun l -> l.l_fd :: List.map (fun c -> c.c_fd) l.l_conns)
        t.s_listeners;
    t.s_fds_dirty <- false
  end;
  t.s_fds

(* Allocation-free ready-fd dispatch (no intermediate lists/options). *)
let rec drain_ready_conn t fd = function
  | [] -> false
  | c :: rest ->
    if c.c_fd = fd then begin
      drain_conn t c;
      true
    end
    else drain_ready_conn t fd rest

let rec drain_ready t fd = function
  | [] -> ()
  | l :: rest ->
    if l.l_fd = fd then
      match l.l_proto with
      | `Udp -> drain_udp t l
      | `Tcp -> accept_conns t l
    else if drain_ready_conn t fd l.l_conns then ()
    else drain_ready t fd rest

let shard_processed sh =
  Array.fold_left
    (fun acc w -> acc + Atomic.get w.w_processed)
    0 sh.sh_workers

(* Sharded serve loop: select over the UDP listeners, steer everything
   readable, and on exit wait (bounded backoff) until the workers have
   caught up with everything published this run — replies leave from the
   worker domains, so "served" means the rings are drained, not merely
   read off the wire. *)
let run_sharded ?max_packets ?duration t sh =
  List.iter (fun l -> Stats.reset_highwater l.l_stats) t.s_listeners;
  Stats.reset_highwater t.s_loop;
  let started = Unix.gettimeofday () in
  let published0 = sh.sh_published in
  let over_budget () =
    match max_packets with
    | None -> false
    | Some m -> sh.sh_published - published0 >= m
  in
  let time_left () =
    match duration with
    | None -> infinity
    | Some d -> d -. (Unix.gettimeofday () -. started)
  in
  (match sh.sh_mm with
  | Some ms ->
    (* batched steering: persistent epoll + recvmmsg scratch batches.
       Entering hot forces one unconditional drain pass — data buffered
       across runs never re-edges, so it must not be waited for. *)
    let nl = Array.length ms.ms_hot in
    Array.fill ms.ms_hot 0 nl true;
    let rec any_hot i = i < nl && (ms.ms_hot.(i) || any_hot (i + 1)) in
    let rec loop () =
      if Atomic.get t.s_stop then begin
        Array.fill ms.ms_hot 0 nl true;
        for li = 0 to nl - 1 do
          drain_udp_sharded_mmsg sh ms li
        done
      end
      else if over_budget () || time_left () <= 0. then ()
      else begin
        let timeout_ms =
          if any_hot 0 then 0
          else
            let tl = time_left () in
            if tl = infinity then 200
            else max 0 (min 200 (int_of_float (Float.ceil (tl *. 1000.))))
        in
        t.s_loop.Stats.syscalls <- t.s_loop.Stats.syscalls + 1;
        let r = Mmsg.Epoll.wait ms.ms_ep ~tags:ms.ms_tags ~timeout_ms in
        if r > 0 then
          for j = 0 to r - 1 do
            ms.ms_hot.(ms.ms_tags.(j)) <- true
          done;
        for li = 0 to nl - 1 do
          if ms.ms_hot.(li) then drain_udp_sharded_mmsg sh ms li
        done;
        loop ()
      end
    in
    loop ()
  | None ->
    let fds = List.map (fun l -> l.l_fd) t.s_listeners in
    let sweep () =
      List.iter (fun l -> drain_udp_sharded t sh l) t.s_listeners
    in
    let rec steer_ready fd = function
      | [] -> ()
      | l :: rest ->
        if l.l_fd = fd then drain_udp_sharded t sh l else steer_ready fd rest
    in
    let rec loop () =
      if Atomic.get t.s_stop then
        (* graceful stop: steer what the kernel already holds, then fall
           through to the drain wait below *)
        sweep ()
      else if over_budget () || time_left () <= 0. then ()
      else begin
        let timeout = Float.min 0.2 (Float.max 0. (time_left ())) in
        t.s_loop.Stats.syscalls <- t.s_loop.Stats.syscalls + 1;
        (match Unix.select fds [] [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
          List.iter (fun fd -> steer_ready fd t.s_listeners) ready);
        loop ()
      end
    in
    loop ());
  let k = ref 0 in
  while shard_processed sh < sh.sh_published do
    Spsc.backoff !k;
    incr k
  done;
  Atomic.set t.s_stop false;
  sh.sh_published - published0

let run_single ?max_packets ?duration t =
  List.iter (fun l -> Stats.reset_highwater l.l_stats) t.s_listeners;
  Stats.reset_highwater t.s_loop;
  let started = Unix.gettimeofday () in
  let n_run = ref 0 in
  let over_budget () =
    match max_packets with None -> false | Some m -> !n_run >= m
  in
  let time_left () =
    match duration with
    | None -> infinity
    | Some d -> d -. (Unix.gettimeofday () -. started)
  in
  let rec loop () =
    if Atomic.get t.s_stop then begin
      (* Graceful stop: answer what the kernel already holds, then
         drain the slab to empty — no in-flight batch is abandoned. *)
      sweep_sockets t;
      n_run := !n_run + drain_slab t
    end
    else if over_budget () || time_left () <= 0. then
      n_run := !n_run + drain_slab t
    else begin
      let fds = current_fds t in
      let timeout = Float.min 0.2 (Float.max 0. (time_left ())) in
      (* Sleep no longer than the engine's next armed deadline: an idle
         socket must not delay a retransmission timer by the idle cap. *)
      let timeout =
        match Pipeline.next_timer_s t.s_pipe with
        | Some d -> Float.min timeout d
        | None -> timeout
      in
      t.s_loop.Stats.syscalls <- t.s_loop.Stats.syscalls + 1;
      (match Unix.select fds [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter (fun fd -> drain_ready t fd t.s_listeners) ready);
      n_run := !n_run + drain_slab t;
      (* The batch path polls inside the engine; an empty drain (select
         woke for the deadline, not a packet) still advances the wheel. *)
      ignore (Pipeline.poll_timers t.s_pipe);
      loop ()
    end
  in
  loop ();
  (* a consumed stop request must not stick to the next run *)
  Atomic.set t.s_stop false;
  !n_run

(* The batched single-worker loop: persistent epoll readiness, hot-flag
   edge discipline, recvmmsg drains, and batch-flushed replies.  The
   steady-state iteration allocates nothing: integer timeout math, the
   preallocated tag/hot arrays, and the slab's own slots are the whole
   working set (the timer deadline query may box a float, but only when
   the machine actually arms timeouts). *)
(* top-level (not a closure in [run_mmsg]): the run's entry cost lands
   inside the bench's per-run allocation bracket *)
let rec any_hot mm nl i = i < nl && (mm.mm_hot.(i) || any_hot mm nl (i + 1))

let run_mmsg ?max_packets ?duration t mm =
  List.iter (fun l -> Stats.reset_highwater l.l_stats) t.s_listeners;
  Stats.reset_highwater t.s_loop;
  let nl = Array.length mm.mm_hot in
  (* hot on entry: datagrams buffered before this run never re-edge *)
  Array.fill mm.mm_hot 0 nl true;
  let budget = match max_packets with None -> max_int | Some m -> m in
  let deadline =
    match duration with
    | None -> None
    | Some d -> Some (Unix.gettimeofday () +. d)
  in
  let n_run = ref 0 in
  let stop_now = ref false in
  while not !stop_now do
    if Atomic.get t.s_stop then begin
      Array.fill mm.mm_hot 0 nl true;
      for li = 0 to nl - 1 do
        drain_udp_mmsg t mm li
      done;
      n_run := !n_run + drain_slab_mmsg t mm;
      stop_now := true
    end
    else if
      !n_run >= budget
      ||
      match deadline with
      | None -> false
      | Some dl -> Unix.gettimeofday () >= dl
    then begin
      n_run := !n_run + drain_slab_mmsg t mm;
      stop_now := true
    end
    else begin
      let timeout_ms =
        if any_hot mm nl 0 then 0
        else begin
          let cap = 200 in
          let cap =
            match deadline with
            | None -> cap
            | Some dl ->
              let tl = dl -. Unix.gettimeofday () in
              if tl <= 0. then 0
              else min cap (int_of_float (Float.ceil (tl *. 1000.)))
          in
          match Pipeline.next_timer_ms t.s_pipe with
          | -1 -> cap
          | ms -> min cap ms
        end
      in
      t.s_loop.Stats.syscalls <- t.s_loop.Stats.syscalls + 1;
      let r = Mmsg.Epoll.wait mm.mm_ep ~tags:mm.mm_tags ~timeout_ms in
      if r > 0 then
        for j = 0 to r - 1 do
          mm.mm_hot.(mm.mm_tags.(j)) <- true
        done;
      for li = 0 to nl - 1 do
        if mm.mm_hot.(li) then drain_udp_mmsg t mm li
      done;
      n_run := !n_run + drain_slab_mmsg t mm;
      ignore (Pipeline.poll_timers t.s_pipe)
    end
  done;
  Atomic.set t.s_stop false;
  !n_run

let run ?max_packets ?duration t =
  if t.s_closed then invalid_arg "Net.Server.run: server is closed";
  match (t.s_shard, t.s_mm) with
  | Some sh, _ -> run_sharded ?max_packets ?duration t sh
  | None, Some mm -> run_mmsg ?max_packets ?duration t mm
  | None, None -> run_single ?max_packets ?duration t

let request_stop t = Atomic.set t.s_stop true

(* ---- accessors ------------------------------------------------------- *)

let bound t =
  List.map
    (fun l -> (proto_name l.l_proto, l.l_host, l.l_port))
    t.s_listeners

let udp_port t =
  List.find_map
    (fun l -> if l.l_proto = `Udp then Some l.l_port else None)
    t.s_listeners

let listener_stats t =
  let ls =
    List.map
      (fun l ->
        ( Printf.sprintf "%s %s:%d" (proto_name l.l_proto) l.l_host l.l_port,
          l.l_stats ))
      t.s_listeners
  in
  let ls =
    match t.s_shard with
    | None -> ls
    | Some sh ->
      (* worker tx counters are their own rows: replies leave from worker
         domains and never touch a listener's (single-writer) stats *)
      ls
      @ (Array.to_list sh.sh_workers
        |> List.map (fun w ->
               (Printf.sprintf "worker %d (tx)" w.w_id, w.w_stats)))
  in
  (* the readiness syscalls (select / epoll_wait) belong to the loop,
     not to any one listener *)
  ls @ [ ("event loop", t.s_loop) ]

let net_stats t =
  let ls = List.map (fun l -> l.l_stats) t.s_listeners in
  let ws =
    match t.s_shard with
    | None -> []
    | Some sh ->
      Array.to_list (Array.map (fun w -> w.w_stats) sh.sh_workers)
  in
  Stats.merge (ls @ ws @ [ t.s_loop ])

let batched_io t =
  t.s_mm <> None
  || match t.s_shard with Some sh -> sh.sh_mm <> None | None -> false

let engine_stats t =
  match t.s_shard with
  | None -> Pipeline.stats t.s_pipe
  | Some sh ->
    let merged = Estats.create Pipeline.stage_names in
    Array.iter
      (fun w -> Estats.merge_into ~into:merged (Pipeline.stats w.w_pipe))
      sh.sh_workers;
    let u = Shard.Steer.unkeyed sh.sh_steer in
    if u > 0 then Estats.note_unkeyed ~n:u merged;
    merged

let processed t =
  match t.s_shard with
  | None -> t.s_processed
  | Some sh -> shard_processed sh

let workers t =
  match t.s_shard with None -> 1 | Some sh -> Array.length sh.sh_workers

let steals t =
  match t.s_shard with
  | None -> 0
  | Some sh -> Shard.Steer.steals sh.sh_steer

let close t =
  if not t.s_closed then begin
    t.s_closed <- true;
    (match t.s_mm with
    | Some mm -> Mmsg.Epoll.close mm.mm_ep
    | None -> ());
    (match t.s_shard with
    | None -> ()
    | Some sh ->
      (match sh.sh_mm with
      | Some ms -> Mmsg.Epoll.close ms.ms_ep
      | None -> ());
      Array.iter Spsc.close sh.sh_rings;
      Array.iter Domain.join sh.sh_domains;
      sh.sh_domains <- [||]);
    List.iter
      (fun l ->
        List.iter (fun c -> close_conn t c) l.l_conns;
        try Unix.close l.l_fd with Unix.Unix_error _ -> ())
      t.s_listeners;
    List.iter (fun (s, b) -> Sys.set_signal s b) t.s_prev_signals
  end
