(** The socket front end: real traffic through the fused engine.

    A server owns one {!Netdsl_engine.Pipeline} (staged or fused, built
    from a {!Netdsl_engine.Flight.spec}) and a set of nonblocking
    listeners that feed it.  The event loop is select-based readiness +
    batch drain: each wake drains every readable socket into the
    engine's {!Netdsl_engine.Slab} — a UDP datagram is [recvfrom]'d
    straight into a leased slot (no copy), a TCP byte stream is reframed
    into length-prefixed datagrams and blitted in — then processes the
    published run to completion and sends each patched reply in place
    from the engine's reply window.  Steady state adds no allocation on
    the engine side; the only per-packet garbage is the [sockaddr] the
    [Unix] binding boxes per [recvfrom].

    Packets are processed strictly in the order their slots were
    published, one at a time, each run to completion (decode → verify →
    step → respond) before the next starts — the run-to-completion
    ordering of the in-memory engine survives the socket boundary (see
    DESIGN.md).

    Backpressure is bounded and non-blocking: when the slab has no free
    slot, the next datagram is read into a scratch buffer and dropped
    with {!Stats.t.drops} ticking — the engine is never blocked by the
    wire, and the kernel socket buffer (not an unbounded queue) absorbs
    the rest.

    TCP support hides behind the same interface: a connection carries a
    stream of [u16 big-endian length]-prefixed frames, each frame one
    engine packet, each reply written back with the same prefix.

    Graceful shutdown: SIGINT/SIGTERM handlers are installed {e before}
    the sockets are bound (a signal during bring-up still reaches the
    stats report), and set a stop flag the loop checks between drains.
    On stop the loop performs one final nonblocking sweep of every
    socket, drains the slab to empty — flushing replies — and returns,
    so {!run} always hands control (and the counters) back to the
    caller. *)

type endpoint =
  | Udp of { host : string; port : int }
  | Tcp of { host : string; port : int }
      (** [host] must be a numeric address ("127.0.0.1", "0.0.0.0", …);
          [port] 0 binds an ephemeral port (see {!bound}). *)

type t

val create :
  ?config:Netdsl_engine.Pipeline.config ->
  ?mode:Netdsl_engine.Pipeline.mode ->
  ?stack:Netdsl_format.Stack.t ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?signals:bool ->
  flight:Netdsl_engine.Flight.spec ->
  listeners:endpoint list ->
  Netdsl_format.Desc.t ->
  (t, string) result
(** Build the pipeline, install signal handlers (unless [~signals:false]
    — library embeddings and tests must not hijack process signals),
    then bind every listener.  [Error msg] — with every partial effect
    undone — on an empty listener list, an out-of-range port, an
    unparseable host, or a socket/bind failure.

    [stack] serves a layered chain: the pipeline decodes each datagram
    through the fused {!Netdsl_format.Stack} plan and the flight spec
    (all fields ["layer.field"]-qualified) patches replies inside layer
    windows — see {!Netdsl_engine.Pipeline.create}.  Requires
    [~mode:Fused]; [fmt] should be the chain's outermost format. *)

val run : ?max_packets:int -> ?duration:float -> t -> int
(** Serve until a stop condition; returns the number of packets
    processed by this run.  Stop conditions, checked between drains:
    - [max_packets]: stop once this run has processed at least that
      many ([0] returns without reading a socket — the deterministic
      cram path);
    - [duration]: stop after that many seconds;
    - {!request_stop} or SIGINT/SIGTERM: stop after a final nonblocking
      sweep of every socket, so datagrams already queued in the kernel
      are still answered.
    Every packet ingested into the slab is processed and its reply
    flushed before [run] returns — a stop never abandons in-flight
    batches.  High-water marks reset on entry ({!Stats.reset_highwater});
    [run] may be called again on the same server. *)

val request_stop : t -> unit
(** Thread/domain-safe; also what the signal handlers call. *)

val bound : t -> (string * string * int) list
(** [(proto, host, port)] per listener, in [listeners] order, with the
    actual port after an ephemeral bind. *)

val udp_port : t -> int option
(** Port of the first UDP listener (convenience for loopback tests). *)

val listener_stats : t -> (string * Stats.t) list
(** Live per-listener counters, labelled ["udp 127.0.0.1:9000"]-style. *)

val net_stats : t -> Stats.t
(** All listeners merged via {!Stats.merge}. *)

val engine_stats : t -> Netdsl_engine.Stats.t
val processed : t -> int
(** Total packets processed since [create] (across runs). *)

val close : t -> unit
(** Close every socket and restore the previous signal handlers.
    Idempotent. *)
