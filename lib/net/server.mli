(** The socket front end: real traffic through the fused engine.

    A server owns one {!Netdsl_engine.Pipeline} (staged or fused, built
    from a {!Netdsl_engine.Flight.spec}) and a set of nonblocking
    listeners that feed it.  The event loop is select-based readiness +
    batch drain: each wake drains every readable socket into the
    engine's {!Netdsl_engine.Slab} — a UDP datagram is [recvfrom]'d
    straight into a leased slot (no copy), a TCP byte stream is reframed
    into length-prefixed datagrams and blitted in — then processes the
    published run to completion and sends each patched reply in place
    from the engine's reply window.  Steady state adds no allocation on
    the engine side; the only per-packet garbage is the [sockaddr] the
    [Unix] binding boxes per [recvfrom].

    Packets are processed strictly in the order their slots were
    published, one at a time, each run to completion (decode → verify →
    step → respond) before the next starts — the run-to-completion
    ordering of the in-memory engine survives the socket boundary (see
    DESIGN.md).

    Backpressure is bounded and non-blocking: when the slab has no free
    slot, the next datagram is read into a scratch buffer and dropped
    with {!Stats.t.drops} ticking — the engine is never blocked by the
    wire, and the kernel socket buffer (not an unbounded queue) absorbs
    the rest.

    TCP support hides behind the same interface: a connection carries a
    stream of [u16 big-endian length]-prefixed frames, each frame one
    engine packet, each reply written back with the same prefix.

    {b Batched I/O} ([~io], UDP only): when the {!Mmsg} stubs report the
    kernel supports them, the loop swaps [select]+[recvfrom]/[sendto]
    for a persistent edge-triggered [epoll] instance plus
    [recvmmsg]/[sendmmsg]: one wake leases a contiguous run of slab
    slots, one [recvmmsg] fills them all (the kernel writes lengths and
    source addresses directly into preallocated arrays), and replies are
    staged into a reusable transmit window flushed with one [sendmmsg].
    Steady state performs {e zero} OCaml allocation per packet and
    amortizes the syscall cost across the batch
    ({!Stats.t.hwm_pkts_per_syscall}).  The ordering invariant is
    unchanged: a batch drain publishes slots in kernel receive order, so
    per-flow arrival order into the slab — and run-to-completion
    processing order — are exactly what the per-packet path gives
    (DESIGN.md, "Syscall batching at the socket boundary").

    {b Sharded mode} ([~workers] > 1, UDP only): the select loop becomes
    a pure steering stage — it reads each datagram into scratch, reads
    the flow key at its fixed wire offset (no decode), and blits the
    packet once into the owner worker's lock-free {!Netdsl_engine.Spsc}
    ring; one pipeline per worker domain drains its ring and sends each
    reply with [sendto] from its own domain (datagrams are atomic, so
    replies never interleave mid-packet).  Steering follows
    {!Netdsl_engine.Shard.Steer} exactly: Fibonacci-hashed buckets,
    per-flow worker affinity, optional fenced bucket stealing.  Run-to-
    completion ordering holds {e per flow} rather than globally.  A full
    worker ring drops the datagram (counted) instead of blocking the
    listener.

    Graceful shutdown: SIGINT/SIGTERM handlers are installed {e before}
    the sockets are bound (a signal during bring-up still reaches the
    stats report), and set a stop flag the loop checks between drains.
    On stop the loop performs one final nonblocking sweep of every
    socket, drains the slab to empty — flushing replies — and returns,
    so {!run} always hands control (and the counters) back to the
    caller. *)

type endpoint =
  | Udp of { host : string; port : int }
  | Tcp of { host : string; port : int }
      (** [host] must be a numeric address ("127.0.0.1", "0.0.0.0", …);
          [port] 0 binds an ephemeral port (see {!bound}). *)

type io =
  | Auto  (** batched I/O when the stubs work here, legacy otherwise *)
  | Legacy  (** force [select] + [recvfrom]/[sendto] *)
  | Mmsg
      (** force [epoll] + [recvmmsg]/[sendmmsg]; [create] errors when
          the kernel (or [NETDSL_NO_MMSG]) says no, rather than
          silently degrading *)

type t

val create :
  ?config:Netdsl_engine.Pipeline.config ->
  ?mode:Netdsl_engine.Pipeline.mode ->
  ?stack:Netdsl_format.Stack.t ->
  ?machine:Netdsl_fsm.Machine.t ->
  ?tick_ms:int ->
  ?signals:bool ->
  ?workers:int ->
  ?allow_oversubscribe:bool ->
  ?stealing:bool ->
  ?shard_key:string ->
  ?io:io ->
  ?io_batch:int ->
  flight:Netdsl_engine.Flight.spec ->
  listeners:endpoint list ->
  Netdsl_format.Desc.t ->
  (t, string) result
(** Build the pipeline, install signal handlers (unless [~signals:false]
    — library embeddings and tests must not hijack process signals),
    then bind every listener.  [Error msg] — with every partial effect
    undone — on an empty listener list, an out-of-range port, an
    unparseable host, or a socket/bind failure.

    [workers] (default 1) > 1 enables sharded mode: that many pipelines
    on their own domains (spawned here, joined by {!close}).  Requires
    UDP-only listeners and a steering key — [shard_key] names the field,
    defaulting to the flight spec's own flow key; a spec without one is
    an error.  Counts above [Domain.recommended_domain_count ()] are
    clamped unless [allow_oversubscribe] (either way a {!Netdsl_engine.Stats}
    warning is recorded on every worker).  [stealing] turns on fenced
    bucket stealing for skewed flow mixes
    ({!Netdsl_engine.Shard.Steer}) — note a stolen flow re-mints its
    machine instance on the new owner.

    [tick_ms] (default 1) is the timer granularity handed to every
    pipeline ({!Netdsl_engine.Pipeline.create}); it only matters when
    [machine] declares [timeout] clauses.  The single-worker select loop
    caps its sleep at the engine's next armed deadline
    ({!Netdsl_engine.Pipeline.next_timer_s}) and polls the wheel after
    every sweep, so expirations fire on time on an idle socket; sharded
    workers each own a wheel and poll it between ring batches.

    [stack] serves a layered chain: the pipeline decodes each datagram
    through the fused {!Netdsl_format.Stack} plan and the flight spec
    (all fields ["layer.field"]-qualified) patches replies inside layer
    windows — see {!Netdsl_engine.Pipeline.create}.  Requires
    [~mode:Fused]; [fmt] should be the chain's outermost format.

    [io] (default [Auto]) selects the receive loop; [io_batch]
    (default 32, must be positive) bounds the datagrams moved per
    [recvmmsg]/[sendmmsg] call and sizes the transmit staging window.
    [Mmsg] requires UDP-only listeners and working stubs ([Error]
    otherwise); [Auto] quietly picks legacy when they are missing, so
    portable callers need not probe first. *)

val run : ?max_packets:int -> ?duration:float -> t -> int
(** Serve until a stop condition; returns the number of packets
    processed by this run.  Stop conditions, checked between drains:
    - [max_packets]: stop once this run has processed at least that
      many ([0] returns without reading a socket — the deterministic
      cram path);
    - [duration]: stop after that many seconds;
    - {!request_stop} or SIGINT/SIGTERM: stop after a final nonblocking
      sweep of every socket, so datagrams already queued in the kernel
      are still answered.
    Every packet ingested into the slab is processed and its reply
    flushed before [run] returns — a stop never abandons in-flight
    batches.  High-water marks reset on entry ({!Stats.reset_highwater});
    [run] may be called again on the same server. *)

val request_stop : t -> unit
(** Thread/domain-safe; also what the signal handlers call. *)

val bound : t -> (string * string * int) list
(** [(proto, host, port)] per listener, in [listeners] order, with the
    actual port after an ephemeral bind. *)

val udp_port : t -> int option
(** Port of the first UDP listener (convenience for loopback tests). *)

val listener_stats : t -> (string * Stats.t) list
(** Live per-listener counters, labelled ["udp 127.0.0.1:9000"]-style.
    Sharded mode appends one ["worker N (tx)"] row per worker: replies
    leave from worker domains and are counted there, never on a
    listener.  A final ["event loop"] row carries the readiness
    syscalls ([select]/[epoll_wait]), which belong to the loop rather
    than any one socket. *)

val net_stats : t -> Stats.t
(** All listeners (plus the event-loop row and, sharded, all worker tx
    rows) merged via {!Stats.merge}. *)

val batched_io : t -> bool
(** Whether this server actually runs the [recvmmsg]/[sendmmsg] path
    (after [Auto] resolution). *)

val engine_stats : t -> Netdsl_engine.Stats.t
(** Sharded mode merges every worker pipeline and folds in the steering
    stage's unkeyed count ({!Netdsl_engine.Stats.unkeyed}). *)

val processed : t -> int
(** Total packets processed since [create] (across runs). *)

val workers : t -> int
(** Worker-domain count ([1] outside sharded mode). *)

val steals : t -> int
(** Flow-hash buckets migrated by work stealing so far ([0] unless
    sharded with [~stealing:true]). *)

val close : t -> unit
(** Close every socket and restore the previous signal handlers; in
    sharded mode, first close the worker rings and join the domains
    (the backlog is drained, replies flushed).  Idempotent. *)
