(** Per-listener socket-side counters.

    The engine's {!Netdsl_engine.Stats} counts what happens to a packet
    {e inside} the pipeline (per-stage packets/bytes/rejects); this
    module counts what happens at the wire: datagrams received and sent,
    datagrams dropped under backpressure, sends refused by a full socket
    buffer, and short writes on the TCP framing path.  One [t] per
    listener; {!merge} folds them into the server-wide view the CLI
    prints on exit — including on a SIGINT/SIGTERM exit.

    Counters are cumulative for the listener's lifetime.  The two
    high-water marks ([hwm_drain], the largest datagram run drained on a
    single readiness wake, and [hwm_datagram], the largest datagram
    seen) are per-run observations: {!reset_highwater} clears them and
    [Server.run] calls it on entry, mirroring the reply-buffer
    high-water reset of the engine. *)

type t = {
  mutable rx_pkts : int;
  mutable rx_bytes : int;
  mutable tx_pkts : int;
  mutable tx_bytes : int;
  mutable drops : int;
      (** datagrams/frames discarded because the ingest slab was full —
          the bounded-backpressure path that never blocks the engine *)
  mutable send_eagain : int;
      (** replies dropped because the socket buffer was full
          ([EAGAIN]/[EWOULDBLOCK] on a nonblocking send) *)
  mutable short_writes : int;  (** partial sends (TCP frame splits) *)
  mutable tx_errors : int;  (** sends refused for any other reason *)
  mutable conns_accepted : int;  (** TCP connections accepted *)
  mutable conns_closed : int;  (** TCP connections closed (either end) *)
  mutable hwm_drain : int;
      (** largest datagram run drained on one readiness wake this run *)
  mutable hwm_datagram : int;  (** largest datagram seen this run *)
  mutable syscalls : int;
      (** kernel round trips charged to this listener (or, for the
          server's event-loop row, readiness waits): every recv/send —
          including ones that return [EAGAIN] — plus [select] /
          [epoll_wait] calls.  [rx_pkts + tx_pkts] over [syscalls] is
          the batching amortization the mmsg path exists to buy. *)
  mutable batched_rx : int;
      (** datagrams that arrived through a [recvmmsg] batch *)
  mutable batched_tx : int;
      (** replies that left through a [sendmmsg] batch *)
  mutable hwm_pkts_per_syscall : int;
      (** largest single-syscall batch observed this run (either
          direction) — per-run like the other high-water marks *)
}

val create : unit -> t
val reset_highwater : t -> unit

val merge_into : into:t -> t -> unit
(** Counters add; high-water marks take the maximum. *)

val merge : t list -> t
(** Fold into a fresh [t] (the inputs are untouched). *)

val to_text : t -> string
(** Three aligned lines, deterministic for a given counter state. *)
