type t = {
  mutable rx_pkts : int;
  mutable rx_bytes : int;
  mutable tx_pkts : int;
  mutable tx_bytes : int;
  mutable drops : int;
  mutable send_eagain : int;
  mutable short_writes : int;
  mutable tx_errors : int;
  mutable conns_accepted : int;
  mutable conns_closed : int;
  mutable hwm_drain : int;
  mutable hwm_datagram : int;
  mutable syscalls : int;
  mutable batched_rx : int;
  mutable batched_tx : int;
  mutable hwm_pkts_per_syscall : int;
}

let create () =
  { rx_pkts = 0; rx_bytes = 0; tx_pkts = 0; tx_bytes = 0; drops = 0;
    send_eagain = 0; short_writes = 0; tx_errors = 0; conns_accepted = 0;
    conns_closed = 0; hwm_drain = 0; hwm_datagram = 0; syscalls = 0;
    batched_rx = 0; batched_tx = 0; hwm_pkts_per_syscall = 0 }

let reset_highwater t =
  t.hwm_drain <- 0;
  t.hwm_datagram <- 0;
  t.hwm_pkts_per_syscall <- 0

let merge_into ~into s =
  into.rx_pkts <- into.rx_pkts + s.rx_pkts;
  into.rx_bytes <- into.rx_bytes + s.rx_bytes;
  into.tx_pkts <- into.tx_pkts + s.tx_pkts;
  into.tx_bytes <- into.tx_bytes + s.tx_bytes;
  into.drops <- into.drops + s.drops;
  into.send_eagain <- into.send_eagain + s.send_eagain;
  into.short_writes <- into.short_writes + s.short_writes;
  into.tx_errors <- into.tx_errors + s.tx_errors;
  into.conns_accepted <- into.conns_accepted + s.conns_accepted;
  into.conns_closed <- into.conns_closed + s.conns_closed;
  into.hwm_drain <- max into.hwm_drain s.hwm_drain;
  into.hwm_datagram <- max into.hwm_datagram s.hwm_datagram;
  into.syscalls <- into.syscalls + s.syscalls;
  into.batched_rx <- into.batched_rx + s.batched_rx;
  into.batched_tx <- into.batched_tx + s.batched_tx;
  into.hwm_pkts_per_syscall <-
    max into.hwm_pkts_per_syscall s.hwm_pkts_per_syscall

let merge ts =
  let into = create () in
  List.iter (fun s -> merge_into ~into s) ts;
  into

let to_text t =
  Printf.sprintf
    "rx %d pkts / %d B   tx %d pkts / %d B   drops %d\n\
     send-eagain %d   short-writes %d   tx-errors %d   hwm drain %d pkts, \
     datagram %d B\n\
     syscalls %d   batched-rx %d   batched-tx %d   hwm %d pkts/syscall"
    t.rx_pkts t.rx_bytes t.tx_pkts t.tx_bytes t.drops t.send_eagain
    t.short_writes t.tx_errors t.hwm_drain t.hwm_datagram t.syscalls
    t.batched_rx t.batched_tx t.hwm_pkts_per_syscall
