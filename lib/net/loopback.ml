module Pipeline = Netdsl_engine.Pipeline
module Oracle = Netdsl_check.Oracle

type result_ = {
  sent : int;
  replies : int;
  expected_replies : int;
  disagreements : int;
  first_disagreement : string option;
  server_processed : int;
  alloc_bytes_per_pkt : float;
  elapsed_s : float;
  net : Stats.t;
}

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i ->
         Printf.sprintf "%02x" (Char.code s.[i])))

(* Wait for the client socket to become readable; [false] on timeout. *)
let readable ?(timeout = 5.0) fd =
  match Unix.select [ fd ] [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  | [], _, _ -> false
  | _ -> true

let recv_one fd buf =
  match Unix.recvfrom fd buf 0 (Bytes.length buf) [] with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None
  | n, _ -> Some (Bytes.sub_string buf 0 n)

let default_warmup ?warmup count =
  match warmup with
  | Some w -> max 1 (min w (count - 1))
  | None -> max 1 (min (count / 5) 2000)

let client_socket () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (try Unix.setsockopt_int fd Unix.SO_RCVBUF (1 lsl 20)
   with Unix.Unix_error _ -> ());
  fd

(* Spin up a server on an ephemeral loopback port plus the domain that
   runs it in two phases — a warmup run, then the measured run whose
   allocation is metered ([Gc.allocated_bytes] is per-domain, so the
   meter sees only the server's own garbage) — and run [body] as the
   client.  The restart between phases doubles as a run-twice exercise
   of the server loop. *)
let with_server ?mode ?machine ?config ?stack ?io ?io_batch ~flight ~warmup
    ~count fmt body =
  match
    Server.create ?config ?mode ?machine ?stack ?io ?io_batch ~signals:false
      ~flight
      ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
      fmt
  with
  | Error e -> Error (Printf.sprintf "loopback server: %s" e)
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Server.close srv)
      (fun () ->
        match Server.udp_port srv with
        | None -> Error "loopback server: no UDP port"
        | Some port ->
          let dom =
            Domain.spawn (fun () ->
                let n1 = Server.run ~max_packets:warmup srv in
                (* the measurement must not charge the server for its own
                   bracket: [Gc.allocated_bytes] boxes its float result
                   after reading the counters, so [a0]'s boxes land
                   inside the window — [a0 -. cal] is exactly one call's
                   self-allocation, subtracted back out.  The [?max_packets]
                   option cell is built before [a0] for the same reason. *)
                let mp = Some (count - n1) in
                let cal = Gc.allocated_bytes () in
                let a0 = Gc.allocated_bytes () in
                let n2 = Server.run ?max_packets:mp srv in
                let a1 = Gc.allocated_bytes () in
                (n1 + n2, a1 -. a0 -. (a0 -. cal), n2))
          in
          let sent, replies, expected, disagreements, first, elapsed =
            body port
          in
          (* The client is done: if the server is still waiting for
             packets that will never come (a client that gave up), stop
             it — the stop path still drains everything already sent. *)
          Server.request_stop srv;
          let processed, alloc, measured = Domain.join dom in
          Ok
            { sent; replies; expected_replies = expected; disagreements;
              first_disagreement = first; server_processed = processed;
              alloc_bytes_per_pkt =
                (if measured > 0 then alloc /. float_of_int measured else 0.);
              elapsed_s = elapsed;
              net = Server.net_stats srv })

let soak ?(mode = Pipeline.Fused) ?machine ?config ?warmup ?io ?io_batch
    ~flight ~packets ~count fmt =
  if count < 2 then Error "loopback soak: count must be at least 2"
  else begin
    let warmup = default_warmup ?warmup count in
    (* The reference leg: same spec, staged derivation, in-memory. *)
    let reference = Oracle.Reply_ref.create ?config ?machine ~flight fmt in
    with_server ?config ~mode ?machine ?io ?io_batch ~flight ~warmup ~count fmt
      (fun port ->
        let addr =
          Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port)
        in
        let fd = client_socket () in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let rbuf = Bytes.create 65536 in
            let replies = ref 0 in
            let expected_n = ref 0 in
            let disagreements = ref 0 in
            let first = ref None in
            let disagree fmt_ =
              Printf.ksprintf
                (fun msg ->
                  incr disagreements;
                  if !first = None then first := Some msg)
                fmt_
            in
            let t0 = Unix.gettimeofday () in
            for i = 0 to count - 1 do
              let pkt = packets i in
              let _, expect = Oracle.Reply_ref.expected reference pkt in
              ignore
                (Unix.sendto fd (Bytes.of_string pkt) 0 (String.length pkt)
                   [] addr);
              match expect with
              | None -> ()
              | Some want -> (
                incr expected_n;
                if not (readable fd) then
                  disagree "pkt %d: expected a reply, socket stayed silent" i
                else
                  match recv_one fd rbuf with
                  | None ->
                    disagree "pkt %d: readable but no datagram (EAGAIN)" i
                  | Some got ->
                    incr replies;
                    if not (String.equal got want) then
                      disagree
                        "pkt %d: reply differs\n  socket: %s\n  memory: %s" i
                        (hex got) (hex want))
            done;
            (* A rejected packet must stay silent: anything still on the
               socket is a reply the reference never produced. *)
            while readable ~timeout:0.1 fd do
              match recv_one fd rbuf with
              | None -> ()
              | Some got ->
                incr replies;
                disagree "stray reply after run: %s" (hex got)
            done;
            let elapsed = Unix.gettimeofday () -. t0 in
            (count, !replies, !expected_n, !disagreements, !first, elapsed)))
  end

let blast ?(mode = Pipeline.Fused) ?machine ?config ?warmup ?stack ?io
    ?io_batch ?(window = 64) ~flight ~packets ~count fmt =
  if count < 2 then Error "loopback blast: count must be at least 2"
  else begin
    let warmup = default_warmup ?warmup count in
    (* A forced-mmsg server gets an mmsg client: otherwise the
       per-packet sender is the bottleneck and the measurement says
       nothing about the server's batched path. *)
    let batched_client = io = Some Server.Mmsg in
    let client_batch =
      match io_batch with Some b when b > 0 -> b | _ -> 32
    in
    with_server ?config ~mode ?machine ?stack ?io ?io_batch ~flight ~warmup
      ~count fmt (fun port ->
        let addr =
          Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port)
        in
        let fd = client_socket () in
        Unix.set_nonblock fd;
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let sent = ref 0 in
            let replies = ref 0 in
            let stalls = ref 0 in
            let drain_replies =
              if batched_client then begin
                (* Connected socket: sends use addr slot [-1], receives
                   need no source address.  Batches are regenerated from
                   [!sent] after a partial send, so nothing is queued on
                   the OCaml side. *)
                Unix.connect fd addr;
                let mm = Mmsg.create client_batch in
                let tx_bufs =
                  Array.init client_batch (fun _ -> Bytes.create 65536)
                in
                let tx_lens = Array.make client_batch 0 in
                let tx_addr = Array.make client_batch (-1) in
                let rx_bufs =
                  Array.init client_batch (fun _ -> Bytes.create 65536)
                in
                let rx_lens = Array.make client_batch 0 in
                let drain_replies () =
                  let continue = ref true in
                  while !continue do
                    let r =
                      Mmsg.recv mm fd ~bufs:rx_bufs ~lens:rx_lens ~base:0
                        ~count:client_batch
                    in
                    if r > 0 then replies := !replies + r
                    else continue := false
                  done
                in
                let send_batch () =
                  let room =
                    min client_batch
                      (min (count - !sent) (window - (!sent - !replies)))
                  in
                  if room > 0 then begin
                    for i = 0 to room - 1 do
                      let pkt = packets (!sent + i) in
                      let len = String.length pkt in
                      Bytes.blit_string pkt 0 tx_bufs.(i) 0 len;
                      tx_lens.(i) <- len
                    done;
                    let r =
                      Mmsg.send mm fd ~bufs:tx_bufs ~lens:tx_lens
                        ~addr_idx:tx_addr ~off:0 ~n:room
                    in
                    if r > 0 then sent := !sent + r
                    else if r = Mmsg.eagain then
                      ignore (readable ~timeout:0.2 fd)
                  end
                in
                fun ~send ->
                  if send then send_batch ();
                  drain_replies ()
              end
              else begin
                let rbuf = Bytes.create 65536 in
                let drain_replies () =
                  let continue = ref true in
                  while !continue do
                    match recv_one fd rbuf with
                    | None -> continue := false
                    | Some _ -> incr replies
                  done
                in
                let send_one () =
                  let pkt = packets !sent in
                  match
                    Unix.sendto fd (Bytes.of_string pkt) 0 (String.length pkt)
                      [] addr
                  with
                  | _ -> incr sent
                  | exception
                      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                    ignore (readable ~timeout:0.2 fd)
                in
                fun ~send ->
                  if send then send_one ();
                  drain_replies ()
              end
            in
            let t0 = Unix.gettimeofday () in
            (* Window of outstanding packets; if the pipe goes dead
               (every reply dropped) give up rather than spin. *)
            while !sent < count && !stalls < 5 do
              if !sent - !replies >= window then begin
                let before = !replies in
                ignore (readable ~timeout:1.0 fd);
                drain_replies ~send:false;
                if !replies = before then incr stalls else stalls := 0
              end
              else drain_replies ~send:true
            done;
            (* tail: collect stragglers until the socket goes quiet *)
            let quiet = ref 0 in
            while !replies < !sent && !quiet < 3 do
              if readable ~timeout:0.5 fd then begin
                let before = !replies in
                drain_replies ~send:false;
                if !replies = before then incr quiet else quiet := 0
              end
              else incr quiet
            done;
            let elapsed = Unix.gettimeofday () -. t0 in
            (!sent, !replies, !sent, 0, None, elapsed)))
  end

(* ------------------------------------------------------------------ *)
(* Lossy virtual-time loopback                                         *)
(* ------------------------------------------------------------------ *)

module Lossy = struct
  module Sim_engine = Netdsl_sim.Engine
  module Channel = Netdsl_sim.Channel

  type t = {
    l_now : int ref;
    l_eng : Sim_engine.t;
    l_chan : Channel.t;
    l_pending : string Queue.t;
    l_pipes : Pipeline.t array;
    l_key_of : string -> int;
  }

  let create ?(workers = 1) ?(tick_ms = 1)
      ?(channel = Channel.default_config) ?(seed = 0x1055L) ~machine
      ~classify ~flow_key ~key_of fmt =
    if workers < 1 then
      invalid_arg "Loopback.Lossy.create: workers must be >= 1";
    let now = ref 0 in
    let eng = Sim_engine.create () in
    let pending = Queue.create () in
    let chan =
      Channel.create eng (Netdsl_util.Prng.create seed) channel
        ~deliver:(fun msg -> Queue.add msg pending)
    in
    let pipes =
      Array.init workers (fun _ ->
          Pipeline.create ~classify ~machine ~flow_key
            ~clock_ms:(fun () -> !now)
            ~tick_ms fmt)
    in
    {
      l_now = now;
      l_eng = eng;
      l_chan = chan;
      l_pending = pending;
      l_pipes = pipes;
      l_key_of = key_of;
    }

  let now t = !(t.l_now)
  let workers t = Array.length t.l_pipes
  let owner t key = t.l_pipes.(key mod Array.length t.l_pipes)
  let inject t pkt = Pipeline.process (owner t (t.l_key_of pkt)) pkt
  let send t pkt = Channel.send t.l_chan pkt

  (* Deliveries the channel released at (or before) the current tick,
     in release order. *)
  let flush t =
    while not (Queue.is_empty t.l_pending) do
      ignore (inject t (Queue.pop t.l_pending))
    done

  let run t ~until ~on_tick =
    while !(t.l_now) < until do
      t.l_now := !(t.l_now) + 1;
      ignore (Sim_engine.run ~until:(float_of_int !(t.l_now)) t.l_eng);
      flush t;
      Array.iter (fun p -> ignore (Pipeline.poll_timers p)) t.l_pipes;
      on_tick !(t.l_now)
    done

  let peek t key = Pipeline.peek_flow (owner t key) key
  let pipelines t = Array.copy t.l_pipes

  let stats t =
    Netdsl_engine.Stats.merge
      (Array.to_list (Array.map Pipeline.stats t.l_pipes))

  let channel_stats t = Channel.stats t.l_chan
end
