(** The netdsl umbrella: one module exposing the whole toolchain.

    The paper's position is that packet syntax, protocol behaviour,
    verification and execution should live in {e one} framework; this
    module is that single surface.  Examples and applications normally
    need nothing but [open Netdsl] (or qualified [Netdsl.Codec.decode]).

    {2 Map}

    - packet descriptions: {!Desc}, {!Value}, {!Codec}, {!Emit}, {!Wf},
      {!Sizing}, {!Diagram}, {!Gen}, {!Stack} (layered parse graphs
      compiled to one fused decode/encode plan)
    - behaviour: {!Machine}, {!Analysis}, {!Compose}, {!Model_check},
      {!Testgen}, {!Interp}, {!Step} (compiled execution plans), {!Dot}
    - correct-by-construction layer (the paper's §3.4 with OCaml types):
      {!Checked}, {!Send_machine}, {!Recv_machine}
    - packet-processing runtime: {!Engine} (zero-copy {!View} decode,
      batched pipeline, multicore flow sharding, per-stage counters)
    - socket front end: {!Net} (select-based nonblocking UDP/TCP
      listeners draining straight into the engine's slab, per-listener
      wire counters, a loopback soak harness)
    - fuzzing + differential testing: {!Check} (structure-aware wire
      mutation, a Codec/View/Emit/Pipeline oracle, Step-vs-Interp trace
      lock-step, shrinking, committable repro reports)
    - simulation substrate: {!Sim_engine}, {!Channel}, {!Timer}, {!Trace},
      {!Stats}
    - executable protocols: {!Stop_and_wait}, {!Go_back_n},
      {!Selective_repeat}, {!Harness}, {!Rto}, {!Abp}, {!Arq_fsm},
      {!Machines} (their first-class guarded-FSM control planes)
    - adaptation and uncertainty: {!Fuzzy}, {!Rate_control},
      {!Loss_classifier}, {!Trust}
    - ready-made formats: {!Formats} (IPv4, UDP, TCP, ICMP, Ethernet, ARP,
      DNS, TLV and the paper's ARQ packet)
    - the textual DSL: {!Lang} (lexer, parser/elaborator, code generator)
    - plumbing: {!Prng}, {!Bitio}, {!Checksum}, {!Hexdump} *)

(* Plumbing *)
module Prng = Netdsl_util.Prng
module Bitio = Netdsl_util.Bitio
module Checksum = Netdsl_util.Checksum
module Hexdump = Netdsl_util.Hexdump

(* Packet-format DSL *)
module Desc = Netdsl_format.Desc
module Value = Netdsl_format.Value
module Codec = Netdsl_format.Codec
module View = Netdsl_format.View
module Emit = Netdsl_format.Emit
module Wf = Netdsl_format.Wf
module Sizing = Netdsl_format.Sizing
module Diagram = Netdsl_format.Diagram
module Gen = Netdsl_format.Gen
module Framer = Netdsl_format.Framer
module Abnf = Netdsl_format.Abnf
module Stack = Netdsl_format.Stack

(* State-machine DSL *)
module Machine = Netdsl_fsm.Machine
module Analysis = Netdsl_fsm.Analysis
module Compose = Netdsl_fsm.Compose
module Model_check = Netdsl_fsm.Model_check
module Testgen = Netdsl_fsm.Testgen
module Interp = Netdsl_fsm.Interp
module Step = Netdsl_fsm.Step
module Dot = Netdsl_fsm.Dot
module Equiv = Netdsl_fsm.Equiv

(* Typed (correct-by-construction) layer *)
module Checked = Netdsl_typed.Checked
module Send_machine = Netdsl_typed.Send_machine
module Recv_machine = Netdsl_typed.Recv_machine

(* Packet-processing runtime *)
module Engine = Netdsl_engine

(* Socket front end: real traffic through the engine *)
module Net = Netdsl_net

(* Fuzzing + differential testing harness *)
module Check = Netdsl_check

(* Simulation substrate *)
module Sim_engine = Netdsl_sim.Engine
module Channel = Netdsl_sim.Channel
module Timer = Netdsl_sim.Timer
module Trace = Netdsl_sim.Trace
module Stats = Netdsl_sim.Stats
module Network = Netdsl_sim.Network
module Ladder = Netdsl_sim.Ladder

(* Protocols *)
module Rto = Netdsl_proto.Rto
module Seqspace = Netdsl_proto.Seqspace
module Stop_and_wait = Netdsl_proto.Stop_and_wait
module Go_back_n = Netdsl_proto.Go_back_n
module Selective_repeat = Netdsl_proto.Selective_repeat
module Harness = Netdsl_proto.Harness
module Abp = Netdsl_proto.Abp
module Relay = Netdsl_proto.Relay
module Arq_fsm = Netdsl_proto.Arq_fsm
module Machines = Netdsl_proto.Machines

(* Adaptation *)
module Fuzzy = Netdsl_adapt.Fuzzy
module Rate_control = Netdsl_adapt.Rate_control
module Loss_classifier = Netdsl_adapt.Loss_classifier
module Trust = Netdsl_adapt.Trust

(* Formats and the textual language *)
module Formats = Netdsl_formats
module Lang = Netdsl_lang
