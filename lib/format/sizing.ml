type bounds = { min_bits : int; max_bits : int option }

let pp_bounds ppf b =
  match b.max_bits with
  | Some m when m = b.min_bits -> Format.fprintf ppf "exactly %d bits" b.min_bits
  | Some m -> Format.fprintf ppf "%d to %d bits" b.min_bits m
  | None -> Format.fprintf ppf "at least %d bits" b.min_bits

let exact n = { min_bits = n; max_bits = Some n }
let unbounded_from n = { min_bits = n; max_bits = None }

let add a b =
  {
    min_bits = a.min_bits + b.min_bits;
    max_bits =
      (match (a.max_bits, b.max_bits) with
      | Some x, Some y -> Some (x + y)
      | _, None | None, _ -> None);
  }

let scale n b =
  {
    min_bits = n * b.min_bits;
    max_bits = (match b.max_bits with Some m -> Some (n * m) | None -> None);
  }

let union a b =
  {
    min_bits = min a.min_bits b.min_bits;
    max_bits =
      (match (a.max_bits, b.max_bits) with
      | Some x, Some y -> Some (max x y)
      | _, None | None, _ -> None);
  }

let rec bounds (fmt : Desc.t) =
  List.fold_left (fun acc f -> add acc (field_bounds f)) (exact 0) fmt.fields

and field_bounds (f : Desc.field) =
  match f.ty with
  | Uint { bits; _ } | Const { bits; _ } | Enum { bits; _ }
  | Computed { bits; _ } | Padding { bits } ->
    exact bits
  | Bool_flag -> exact 1
  | Checksum { algorithm; _ } -> exact (Netdsl_util.Checksum.width_bits algorithm)
  | Bytes (Len_fixed n) -> exact (8 * n)
  | Bytes (Len_expr _ | Len_bytes _ | Len_remaining) -> unbounded_from 0
  | Bytes (Len_terminated _) -> unbounded_from 8 (* at least the terminator *)
  | Array { elem; length = Len_fixed n } -> scale n (bounds elem)
  | Array { length = Len_expr _ | Len_bytes _ | Len_remaining | Len_terminated _; _ } ->
    unbounded_from 0
  | Record sub -> bounds sub
  | Variant { cases; default; _ } -> (
    let case_bounds = List.map (fun (_, _, sub) -> bounds sub) cases in
    let all =
      match default with
      | None -> case_bounds
      | Some sub -> bounds sub :: case_bounds
    in
    match all with
    | [] -> exact 0
    | first :: rest -> List.fold_left union first rest)

let fixed_bits fmt =
  let b = bounds fmt in
  match b.max_bits with Some m when m = b.min_bits -> Some m | Some _ | None -> None

let fixed_bytes fmt =
  match fixed_bits fmt with
  | Some n when n land 7 = 0 -> Some (n / 8)
  | Some _ | None -> None

let min_bytes fmt = ((bounds fmt).min_bits + 7) / 8

let fixed_of b = match b.max_bits with Some m when m = b.min_bits -> Some m | _ -> None

let fixed_field_span fmt name =
  let rec scan off = function
    | [] -> Result.Error (Printf.sprintf "no top-level field %S" name)
    | (f : Desc.field) :: rest ->
      if String.equal f.name name then (
        match fixed_of (field_bounds f) with
        | Some m -> Ok (off, m)
        | None -> Result.Error (Printf.sprintf "field %S has a variable size" name))
      else (
        match fixed_of (field_bounds f) with
        | Some m -> scan (off + m) rest
        | None ->
          Result.Error
            (Printf.sprintf "field %S is not at a fixed offset (preceded by %S)" name
               f.name))
  in
  scan 0 fmt.Desc.fields
