(** Compiled encode plans: the encode-side mirror of {!View}.

    {!create} lowers a format description once into a flat program of emit
    ops — widths, endianness and constraint sets resolved at compile time.
    Derived fields (computed lengths, checksums) are emitted as {e patch
    slots}: the encoder reserves their bytes, streams the rest of the
    message, then back-fills them in place, so a checksummed region is
    written exactly once and never copied.  Encoding into a caller-provided
    reusable buffer ({!encode_into}, {!encode_view_into}) allocates nothing
    on the fixed-layout path.

    Output is byte-for-byte identical to {!Codec.encode}, including which
    consistency checks fire and in what order ([test/test_emit.ml] asserts
    this property for every shipped format).

    {!patcher}/{!patch} serve respond/forward loops that change one scalar
    field of an already-valid packet (ARQ data→ack, TTL decrement): the
    field is rewritten at its fixed wire offset and any Internet checksum
    over it is updated incrementally (RFC 1624) — no decode, no re-encode,
    no re-checksum. *)

type t
(** A compiled emitter.  Holds reusable scratch state; not thread-safe —
    use one per domain (cf. {!View.t}). *)

type error = Codec.error
(** Emit errors are {!Codec} errors: same constructors, same rendering. *)

val create : Desc.t -> t
(** Compile the format.  Ill-formed constructs (e.g. a little-endian field
    of non-whole-byte width) compile to ops that fail when reached, exactly
    as {!Codec.encode} does. *)

val format : t -> Desc.t

(** {2 Encoding from values} *)

val encode : t -> Value.t -> (string, error) result
(** Drop-in equivalent of [Codec.encode (format t)] — same inputs, same
    bytes, same errors — using the emitter's internal growable buffer. *)

val encode_exn : t -> Value.t -> string
(** @raise Codec.Error on failure. *)

val encode_into : t -> ?off:int -> Bytes.t -> Value.t -> (int, error) result
(** [encode_into t buf v] writes the message into [buf] starting at [off]
    (default [0]) and returns its length in bytes.  The buffer is not
    grown: a message that does not fit fails with [Io Truncated].  Stale
    buffer contents never leak into the output.
    @raise Invalid_argument if [off] is outside [buf]. *)

(** {2 Encoding from views (view-to-wire)}

    Re-emit a decoded message, optionally overriding top-level scalar
    fields — the respond path: decode a request once, flip a field or two,
    emit the reply.  Top-level scalars and byte fields are read straight
    out of the view (aligned byte spans are blitted wire-to-wire without an
    intermediate copy); derived fields are recomputed.  Fields with nested
    structure (records, arrays, variants) must be supplied in [set] — a
    view cannot provide them. *)

val encode_view : t -> ?set:(string * Value.t) list -> View.t -> (string, error) result

val encode_view_exn : t -> ?set:(string * Value.t) list -> View.t -> string
(** @raise Codec.Error on failure. *)

val encode_view_into :
  t -> ?set:(string * Value.t) list -> ?off:int -> Bytes.t -> View.t -> (int, error) result

(** {2 In-place patching} *)

type patcher
(** A compiled single-field rewrite: field offset, width, validation and
    checksum-delta plan, resolved once. *)

val patcher : ?computed:bool -> Desc.t -> string -> (patcher, string) result
(** [patcher fmt name] compiles an in-place rewrite of top-level scalar
    field [name].  Requires the field to be byte-aligned at a fixed offset,
    not the source of any derived field, and any checksum covering it to be
    a top-level Internet checksum whose coverage of the field is decidable
    statically (and whose region provably cannot be all-zero, unless a
    conservative scan fallback is possible).  [Error reason] explains any
    rejection.

    [~computed:true] additionally admits [Computed] fields: normally a
    patch to a derived length would desynchronise it from its defining
    expression, but the {!Stack} back-patcher re-evaluates that expression
    over the fused chain itself and writes the provably consistent value —
    it owns the invariant the default refusal protects. *)

val patcher_field : patcher -> string

val patch : patcher -> ?off:int -> ?len:int -> Bytes.t -> int64 -> (unit, error) result
(** [patch p buf v] rewrites the field inside the encoded message occupying
    [buf.(off .. off+len-1)] (default: all of [buf]) to [v], validating [v]
    against the field's width, enum cases and constraints, and updates the
    covering Internet checksum incrementally.  If the message was valid
    before the patch it is valid after — byte-for-byte what a decode →
    mutate → re-encode round trip would produce.
    @raise Invalid_argument if the window is outside [buf]. *)

val patch_window :
  patcher -> off:int -> len:int -> Bytes.t -> int64 -> (unit, error) result
(** {!patch} with both bounds required: per-packet callers use this so the
    call site does not box an optional argument. *)

val patch_window_int :
  patcher -> off:int -> len:int -> Bytes.t -> int -> (unit, error) result
(** {!patch_window} taking the new value as a native [int] — the fused
    respond path reads its sources as unboxed registers, and boxing an
    [Int64] per patch would be its only steady-state allocation.  A
    negative value is out of range for every field.  Identical validation
    and result to {!patch_window}. *)

val patch_exn : patcher -> ?off:int -> ?len:int -> Bytes.t -> int64 -> unit
(** @raise Codec.Error on failure. *)
