(** Parse graphs: layered header stacks compiled into one flat plan.

    A {!t} names an ordered chain of formats — Ethernet carrying IPv4
    carrying UDP carrying TFTP — where a declared {e demux} field of each
    layer (ethertype, protocol, dst_port) must select the next, and a
    declared {e via} field (the trailing payload bytes) carries it.  This
    is the P4-style parse graph restricted to one path; branching graphs
    are expressed as separate chains sharing their prefix formats.

    {!compile} lowers the whole chain once.  Every non-terminal layer must
    be hot-eligible ({!View.Hot}); its compiled plan records the payload
    span so the next layer's window is two integer reads — no per-layer
    closure dispatch, no re-scan.  A terminal layer may additionally be a
    {e one-level variant} format (a linear prefix ending in a [Variant]
    over a fixed-offset tag, like TFTP or ICMP): the variant is flattened
    into one hot plan per case and dispatch is a single tag peek, so even
    a 4-layer chain ending in TFTP decodes with zero allocation.  Demux
    edges become flat native-int tables.

    The accept set is exactly that of decoding each layer with
    {!View.decode} over the payload span of the one before ({!Seq} below
    is that reference, and the [lib/check] chain oracle diffs the two
    verdict- and register-exact under the structure-aware mutator).
    Cross-layer length consistency needs no extra machinery: an outer
    length lie moves the inner window, and the inner layer's own computed
    length/checksum checks reject it in both implementations.

    The encode side writes each carrier header once directly at its final
    offset with an empty payload, writes the innermost message, then
    {e back-patches} outer [Msg_len]-derived fields (IPv4 total_length,
    UDP length) innermost-out via {!Emit.patcher} — the covering Internet
    checksum is repaired incrementally (RFC 1624), so no byte of the
    chain is written twice.  Output is byte-for-byte what the naive
    innermost-first sequential re-encode ({!encode_seq}) produces. *)

(** {1 Describing a stack} *)

type layer

val layer :
  ?name:string ->
  ?via:string ->
  ?select:string * int64 list ->
  Desc.t ->
  layer
(** One link of the chain.  [name] (default: the format's name) prefixes
    this layer's fields in qualified ["layer.field"] references.  [via]
    (default ["payload"]) names the field carrying the next layer: it must
    be the trailing [Bytes Len_remaining] field.  [select] gives the demux
    field and the accepted constants routing to the next layer; required
    on every layer except the last, forbidden on the last. *)

type t
(** A validated stack description. *)

val v : name:string -> layer list -> (t, string) result
(** Validates the chain shape (>= 2 layers, unique layer names, demux
    fields scalar and in range, via fields trailing byte payloads). *)

val name : t -> string
val layer_names : t -> string list
val layer_format : t -> int -> Desc.t

val layer_via : t -> int -> string
(** The payload field carrying layer [i+1] (meaningless on the last
    layer, where it is whatever {!layer} defaulted it to). *)

val layer_select : t -> int -> (string * int64 list) option
(** Layer [i]'s demux edge — [None] exactly on the terminal layer.  With
    {!layer_via} this is enough to reconstruct the declaration, which is
    how the surface-language printer round-trips [stack] blocks. *)

(** {1 The compiled plan} *)

type plan
(** A compiled chain: per-layer fused decoders, demux tables, payload-span
    windowing, register directory, encoder and back-patch slots.  Like
    {!View.t}, a plan is a reusable single-thread object: accessors are
    only meaningful after the last {!run} accepted. *)

val compile : ?demand:string list -> t -> (plan, string) result
(** [compile ~demand stack] lowers the chain.  [demand] lists qualified
    ["layer.field"] names that must be readable as native-int registers
    after every accepting {!run} — the engine demands its classify /
    flow-key / respond operands this way.  Fails with a reason if a layer
    cannot be fused or a demanded field cannot be extracted. *)

val stack : plan -> t

val run : plan -> ?off:int -> ?len:int -> string -> bool
(** Decode and fully validate a layered packet; [true] exactly when the
    sequential per-layer reference accepts.  Steady state allocates
    nothing. *)

val run_window : plan -> off:int -> len:int -> string -> bool
(** {!run} with both bounds required (no optional-argument boxing). *)

(** {2 Registers and windows} *)

type reg
(** A resolved qualified field: reading it after an accepting {!run} costs
    two array loads. *)

val reg : plan -> string -> (reg, string) result
(** Resolve ["layer.field"]; the field must have been in [compile]'s
    [demand] list. *)

val reg_get : plan -> reg -> int
(** Register value from the last accepting {!run}, or [-1] when the
    packet's variant case does not carry the field (field values are
    always non-negative, so [-1] is unambiguous). *)

val layer_count : plan -> int
val layer_index : plan -> string -> int option
val layer_fmt : plan -> int -> Desc.t

val layer_off : plan -> int -> int
(** Byte offset of layer [i]'s window in the last accepted packet. *)

val layer_len : plan -> int -> int
(** Byte length of layer [i]'s window in the last accepted packet. *)

(** {1 Fused encode} *)

val encode_into : plan -> ?off:int -> Bytes.t -> Value.t array -> (int, string) result
(** [encode_into plan buf values] writes the chain (one {!Value.t} per
    layer, outermost first; carrier payload fields are ignored and may be
    omitted) into [buf] and returns its total length.  Headers are
    written once at their final offsets; [Msg_len]-derived outer fields
    are back-patched innermost-out with incremental checksum repair.
    Checks that each carrier's demux field actually selects the next
    layer. *)

val encode : plan -> Value.t array -> (string, string) result

val encode_seq : plan -> Value.t array -> (string, string) result
(** The naive reference: encode innermost-first, re-carrying (and
    re-copying) the grown payload through every enclosing layer's full
    encoder.  Byte-for-byte equal to {!encode} — the property the tests
    pin and experiment E17 prices. *)

(** {1 Sequential reference decode}

    Decode the chain the pre-stack way: one interpreted {!View.decode}
    per layer, demux read through {!View.find_int}, the next window from
    {!View.find_span}.  This is the semantic ground truth the fused plan
    is diffed against, the naive baseline E17 measures, and the error
    reporter for the CLI (layer-qualified reasons). *)

module Seq : sig
  type t

  val create : plan -> t

  val decode : t -> ?off:int -> ?len:int -> string -> (unit, string) result
  (** [Error reason] names the failing layer: decode error, demux value
      selecting no next layer, or a misaligned/truncated payload span. *)

  val view : t -> int -> View.t
  (** Layer [i]'s decoded view after an accepting {!decode}. *)

  val layer_off : t -> int -> int
  val layer_len : t -> int -> int
end
