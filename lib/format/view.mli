(** Zero-copy validating decode.

    [View] parses and validates a message exactly as {!Codec.decode} does —
    constants, enum exhaustiveness, constraints, computed fields, checksums,
    trailing input — but records only a table of field {e spans} (bit
    offset / length windows into the original buffer) instead of building a
    {!Value.t} tree.  No region is copied during validation: checksums are
    computed in place with {!Netdsl_util.Checksum.compute_zeroed}, and
    payload bytes are extracted lazily, only when a caller asks for them.

    The validation guarantee is unchanged: {!decode} returns [Ok] only after
    {e every} check has passed, so no field of an unverified packet is ever
    surfaced ("no processing occurs on unverified packets", paper §3.4).
    The equivalence property tests in [test/test_view.ml] assert that a
    view decode accepts/rejects exactly when the allocating codec does, with
    identical field values.

    A [t] is a {e reusable} decoder: allocate once, call {!decode} per
    packet.  In steady state the hot path allocates only small scope
    bookkeeping, never per-field values — this is the engine's fast path. *)

type error = Codec.error
(** Shared with {!Codec} so both decode paths report one error type. *)

type t
(** A reusable decoder and, after a successful {!decode}, a view of the
    last message.  Accessors are only meaningful after [decode] returned
    [Ok]; a subsequent [decode] invalidates the previous view. *)

val create : Desc.t -> t
val format : t -> Desc.t

val decode :
  ?allow_trailing:bool -> t -> ?off:int -> ?len:int -> string -> (unit, error) result
(** [decode t data] parses and validates [data] (or the byte window
    [data.(off .. off+len-1)]) against [format t].  Same semantics and
    acceptance as {!Codec.decode}, including [allow_trailing]. *)

val of_string : ?allow_trailing:bool -> Desc.t -> string -> (t, error) result
(** One-shot convenience: [create] + [decode]. *)

(** {2 Field access}

    All lookups address top-level fields by name.  [get_*] raise
    [Invalid_argument] on a missing field or a kind mismatch. *)

val get_int : t -> string -> int64
(** Scalar fields: uint, const, enum, computed, checksum (bool as 0/1). *)

val find_int : t -> string -> int64 option
val get_bool : t -> string -> bool

val get_bytes : t -> string -> string
(** Copies the payload out of the underlying buffer — the only point at
    which bytes are materialised. *)

val find_span : t -> string -> (int * int) option
(** [(bit_off, bit_len)] of a bytes field's content within {!raw} — the
    true zero-copy access path. *)

val variant_case : t -> string -> string option
(** The selected case name of a variant field ("default" for the default
    arm). *)

val raw : t -> string
(** The buffer the last decode ran over. *)

val length_bytes : t -> int
(** Size of the decoded window in bytes. *)

val to_value : t -> Value.t
(** Materialise the full {!Value.t} the allocating codec would have
    produced (leaves the zero-copy world; used by the equivalence tests). *)

(** {2 Flow keys}

    A precompiled extractor for a scalar field at a fixed wire offset: the
    sharding key read used by [Engine.Shard] to pick a worker without
    decoding the packet. *)

type key_extractor

val key_extractor : Desc.t -> string -> (key_extractor, string) result
(** Compiles an extractor for the named top-level field.  Fails (with a
    reason) if the field does not exist, is not scalar, or is preceded by a
    variable-size field. *)

val extract_key : key_extractor -> ?off:int -> string -> int option
(** Reads the key field from a raw packet ([None] if the buffer is too
    short for the field). *)

val no_key : int
(** Sentinel ([min_int]) returned by {!extract_key_int} for packets too
    short to carry the key field.  No real key can collide with it: key
    fields are at most 62 bits wide. *)

val key_min_bytes : key_extractor -> int
(** Fewest packet bytes that carry the whole key field — callers reading
    datagrams into an oversized scratch buffer compare the receive length
    against this before {!extract_key_int} (whose own bounds check only
    sees the buffer, not the datagram). *)

val extract_key_int : key_extractor -> ?off:int -> string -> int
(** Allocation-free variant of {!extract_key} for the per-packet steering
    path: returns the key as a native int, or {!no_key} when the buffer is
    too short.  Agrees with [extract_key] on every input (unit-tested). *)

(** {2 Fused hot-path decode}

    A second lowering of the same compiled plan, for {e linear} formats
    (straight-line top level, no arrays/records/variants): demand-driven
    field extraction into preallocated native-int registers, deferred
    computed/checksum checks without closures, and no reader or scope
    allocation — a steady-state {!Hot.run} allocates nothing.  The accept
    set is exactly {!decode}'s (the differential oracle enforces this);
    only the error detail is collapsed to a boolean verdict.  Formats or
    demands the lowering cannot prove native-int-exact return [Error] and
    callers fall back to the interpreted view. *)

module Hot : sig
  type t

  val compile :
    ?demand:string list -> ?span_demand:string list -> Desc.t -> (t, string) result
  (** [compile ~demand fmt] lowers [fmt]; every name in [demand] must be a
      top-level scalar-ish field of at most 62 bits, extracted into a
      register on every successful {!run}.  Every name in [span_demand]
      must be a top-level bytes-like field; its wire span (absolute bit
      offset and length) is recorded on every successful {!run} — the
      window arithmetic {!Stack} chains layers with. *)

  val run : t -> ?off:int -> ?len:int -> string -> bool
  (** Parse and fully validate one message; [true] exactly when
      {!View.decode} would return [Ok].  Steady state allocates nothing. *)

  val run_window : t -> off:int -> len:int -> string -> bool
  (** {!run} with both bounds required: per-packet callers use this so
      the call site does not box an optional argument. *)

  val demand_slot : t -> string -> int
  (** Register index of a demanded field (resolve once at setup). *)

  val get : t -> int -> int
  (** Register value after a successful {!run}. *)

  val span_slot : t -> string -> int
  (** Span-slot index of a span-demanded field (resolve once at setup). *)

  val span_off : t -> int -> int
  (** Absolute bit offset (within the whole decoded string, not the
      window) of a demanded span after a successful {!run}. *)

  val span_len : t -> int -> int
  (** Bit length of a demanded span after a successful {!run}. *)

  val parse_end_bits : t -> int
  (** Absolute bit position where the last successful {!run} stopped. *)

  val read_scalar : string -> bit_off:int -> bits:int -> little:bool -> int
  (** Raw fixed-offset scalar read ([bits] <= 62, bounds pre-checked by
      the caller) — the stack dispatcher's variant-tag peek. *)

  val length_bytes : t -> int
  (** Byte length of the last {!run} window. *)

  val eligible_fields : Desc.t -> string list
  (** Top-level fields of [fmt] that a hot plan can extract — empty when
      the format itself is ineligible.  The oracle demands exactly these. *)
end
