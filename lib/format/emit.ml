(* Compiled encode plans: the mirror image of [View]'s decode plans.

   [create] lowers a format descriptor once into a flat array of emit ops —
   endianness, widths and value checks are resolved at compile time, and
   derived fields (computed lengths, checksums) become *patch slots* that
   are back-filled after the body is written, so a checksummed region is
   streamed exactly once.  The per-packet encode then writes straight into
   a reusable [Bytes.t] buffer: no [Bitio.Writer], no [Buffer], no region
   copy for checksums ([Checksum.compute_zeroed] runs in place), and scope
   bindings are recorded only for fields something will actually read —
   zero allocation on the fixed-layout path beyond small scope bookkeeping.

   The output is byte-for-byte what [Codec.encode] produces, with the same
   derivations and deferred consistency checks in the same order; the
   property tests in [test/test_emit.ml] assert this for every shipped
   format.  [patcher]/[patch] go one step further for the engine's
   forward/reply loops: mutate a scalar field of an already-valid packet at
   its fixed wire offset and update the Internet checksum incrementally
   (RFC 1624), never touching the rest of the message. *)

module B = Netdsl_util.Bitio
module Ck = Netdsl_util.Checksum

type error = Codec.error

let fail e = raise (Codec.Error e)

(* Encode-side copy of Codec.outward_error: paths are threaded
   innermost-first while encoding and reversed when an error escapes. *)
let outward_error : Codec.error -> Codec.error = function
  | Io e -> Io { e with path = List.rev e.path }
  | Const_mismatch e -> Const_mismatch { e with path = List.rev e.path }
  | Enum_unknown e -> Enum_unknown { e with path = List.rev e.path }
  | Constraint_violation e -> Constraint_violation { e with path = List.rev e.path }
  | Computed_mismatch e -> Computed_mismatch { e with path = List.rev e.path }
  | Checksum_mismatch e -> Checksum_mismatch { e with path = List.rev e.path }
  | Variant_unknown_tag e -> Variant_unknown_tag { e with path = List.rev e.path }
  | Missing_field e -> Missing_field { path = List.rev e.path }
  | Type_mismatch e -> Type_mismatch { e with path = List.rev e.path }
  | Length_mismatch e -> Length_mismatch { e with path = List.rev e.path }
  | Eval_error e -> Eval_error { e with path = List.rev e.path }
  | Trailing_input _ as e -> e
  | Value_out_of_range e -> Value_out_of_range { e with path = List.rev e.path }

(* ------------------------------------------------------------------ *)
(* Compiled ops *)

type blen =
  | L_fixed of int
  | L_expr of Desc.expr (* covers Len_expr and Len_bytes: same encode check *)
  | L_remaining
  | L_terminated of int

type alen =
  | A_fixed of int
  | A_expr of Desc.expr
  | A_bytes of Desc.expr
  | A_remaining

type op = {
  o_name : string;
  o_path : string list; (* innermost-first, ready for [outward_error] *)
  o_val : bool; (* some expression reads this field's value *)
  o_span : bool; (* some expression or length check reads its span *)
  o_k : okind;
}

and okind =
  | E_scalar of {
      bits : int;
      endian : Desc.endian;
      enum : (string * int64) list option; (* Some cases: exhaustive enum *)
      constraints : Desc.constr list;
    }
  | E_bool
  | E_const of { bits : int; endian : Desc.endian; value : int64 }
  | E_computed of { bits : int; endian : Desc.endian; expr : Desc.expr }
  | E_checksum of { alg : Ck.algorithm; bits : int; region : Desc.region }
  | E_bytes of blen
  | E_array of { length : alen; elem : op array }
  | E_record of op array
  | E_variant of {
      tag : string;
      cases : (string * int64 * op array) list;
      default : op array option;
    }
  | E_padding of int
  | E_invalid of string (* ill-formed field: fails when reached, as Codec does *)

(* Which field names any expression reads (values) or measures (spans), so
   the hot loop records scope bindings only when something will use them.
   Same walk as View's, plus: an array with [Len_bytes] needs its *own*
   span on the encode side (the deferred length check measures it). *)
let collect_refs (fmt : Desc.t) =
  let vals = ref [] and spans = ref [] in
  let rec expr (e : Desc.expr) =
    match e with
    | Const _ | Msg_len -> ()
    | Field n -> vals := n :: !vals
    | Byte_len n -> spans := n :: !spans
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr a;
      expr b
  in
  let rec fields (fmt : Desc.t) = List.iter field fmt.fields
  and field (f : Desc.field) =
    match f.ty with
    | Uint _ | Bool_flag | Const _ | Enum _ | Padding _ -> ()
    | Computed { expr = e; _ } -> expr e
    | Checksum { region; _ } -> (
      match region with
      | Region_span (a, b) -> spans := a :: b :: !spans
      | Region_message | Region_rest -> ())
    | Bytes spec -> (
      match spec with
      | Len_expr e | Len_bytes e -> expr e
      | Len_fixed _ | Len_remaining | Len_terminated _ -> ())
    | Array { elem; length } ->
      (match length with
      | Len_expr e -> expr e
      | Len_bytes e ->
        expr e;
        spans := f.name :: !spans
      | Len_fixed _ | Len_remaining | Len_terminated _ -> ());
      fields elem
    | Record sub -> fields sub
    | Variant { tag; cases; default } ->
      vals := tag :: !vals;
      List.iter (fun (_, _, sub) -> fields sub) cases;
      Option.iter fields default
  in
  fields fmt;
  (List.sort_uniq compare !vals, List.sort_uniq compare !spans)

let needed name l = List.exists (String.equal name) l
let le_bad bits = function Desc.Big -> false | Desc.Little -> bits land 7 <> 0
let le_bad_reason = "little-endian field width must be whole bytes"

let rec compile_fields ~vn ~sn path (fields : Desc.t_fields) : op array =
  Array.of_list (List.map (compile_field ~vn ~sn path) fields)

and compile_field ~vn ~sn path (f : Desc.field) : op =
  let path_f = f.name :: path in
  let mk k =
    { o_name = f.name;
      o_path = path_f;
      o_val = needed f.name vn;
      o_span = needed f.name sn;
      o_k = k }
  in
  match f.ty with
  | Uint { bits; endian } ->
    if le_bad bits endian then mk (E_invalid le_bad_reason)
    else mk (E_scalar { bits; endian; enum = None; constraints = f.constraints })
  | Const { bits; endian; value } ->
    if le_bad bits endian then mk (E_invalid le_bad_reason)
    else mk (E_const { bits; endian; value })
  | Enum { bits; endian; cases; exhaustive } ->
    if le_bad bits endian then mk (E_invalid le_bad_reason)
    else
      mk (E_scalar
            { bits; endian;
              enum = (if exhaustive then Some cases else None);
              constraints = f.constraints })
  | Bool_flag -> mk E_bool
  | Computed { bits; endian; expr } ->
    if le_bad bits endian then mk (E_invalid le_bad_reason)
    else mk (E_computed { bits; endian; expr })
  | Checksum { algorithm; region } ->
    mk (E_checksum { alg = algorithm; bits = Ck.width_bits algorithm; region })
  | Bytes spec ->
    mk (E_bytes
          (match spec with
          | Len_fixed n -> L_fixed n
          | Len_expr e | Len_bytes e -> L_expr e
          | Len_remaining -> L_remaining
          | Len_terminated t -> L_terminated t))
  | Array { elem; length } -> (
    let elem_ops = compile_fields ~vn ~sn path_f elem.fields in
    match length with
    | Len_fixed n -> mk (E_array { length = A_fixed n; elem = elem_ops })
    | Len_expr e -> mk (E_array { length = A_expr e; elem = elem_ops })
    | Len_bytes e -> mk (E_array { length = A_bytes e; elem = elem_ops })
    | Len_remaining -> mk (E_array { length = A_remaining; elem = elem_ops })
    | Len_terminated _ -> mk (E_invalid "arrays cannot be terminator-delimited"))
  | Record sub -> mk (E_record (compile_fields ~vn ~sn path_f sub.fields))
  | Variant { tag; cases; default } ->
    mk (E_variant
          { tag;
            cases =
              List.map
                (fun (cn, v, (sub : Desc.t)) ->
                  (cn, v, compile_fields ~vn ~sn path_f sub.fields))
                cases;
            default =
              Option.map
                (fun (sub : Desc.t) -> compile_fields ~vn ~sn path_f sub.fields)
                default })
  | Padding { bits } -> mk (E_padding bits)

(* ------------------------------------------------------------------ *)
(* Scopes — as in Codec, one per record nesting level, shared with the
   deferred checks and patch slots. *)

type scope = {
  mutable vals : (string * int64) list;
  mutable spans : (string * (int * int)) list;
  mutable computed_defs : (string * Desc.expr) list;
  parent : scope option;
}

let new_scope parent = { vals = []; spans = []; computed_defs = []; parent }

let rec lookup_val scope name =
  match List.assoc_opt name scope.vals with
  | Some v -> Some v
  | None -> ( match scope.parent with None -> None | Some p -> lookup_val p name)

let rec lookup_span scope name =
  match List.assoc_opt name scope.spans with
  | Some s -> Some s
  | None -> ( match scope.parent with None -> None | Some p -> lookup_span p name)

let rec lookup_computed scope name =
  match List.assoc_opt name scope.computed_defs with
  | Some e -> Some (e, scope)
  | None -> (
    match scope.parent with None -> None | Some p -> lookup_computed p name)

(* Encode-side expression evaluation, identical to Codec's: not-yet-patched
   computed fields are resolved through their definitions, with cycle
   detection. *)
let eval ~path ~msg_bytes scope expr =
  let rec go visiting scope expr =
    match (expr : Desc.expr) with
    | Const v -> v
    | Field name -> (
      match lookup_val scope name with
      | Some v -> v
      | None -> (
        match lookup_computed scope name with
        | Some (e, def_scope) ->
          if List.mem name visiting then
            fail (Eval_error
                    { path; reason = Printf.sprintf "computed field cycle through %S" name })
          else begin
            let v = go (name :: visiting) def_scope e in
            def_scope.vals <- (name, v) :: def_scope.vals;
            v
          end
        | None ->
          fail (Eval_error
                  { path; reason = Printf.sprintf "unknown field %S in expression" name })))
    | Byte_len name -> (
      match lookup_span scope name with
      | Some (_, bit_len) ->
        if bit_len land 7 <> 0 then
          fail (Eval_error
                  { path;
                    reason =
                      Printf.sprintf "len(%s): field is not a whole number of bytes" name })
        else Int64.of_int (bit_len / 8)
      | None ->
        fail (Eval_error { path; reason = Printf.sprintf "len(%s): unknown field" name }))
    | Msg_len -> Int64.of_int (msg_bytes ())
    | Add (a, b) -> Int64.add (go visiting scope a) (go visiting scope b)
    | Sub (a, b) -> Int64.sub (go visiting scope a) (go visiting scope b)
    | Mul (a, b) -> Int64.mul (go visiting scope a) (go visiting scope b)
    | Div (a, b) ->
      let d = go visiting scope b in
      if Int64.equal d 0L then fail (Eval_error { path; reason = "division by zero" })
      else Int64.div (go visiting scope a) d
  in
  go [] scope expr

let apply_constraints ~path constraints value =
  let ok = function
    | Desc.In_range (lo, hi) -> Int64.compare lo value <= 0 && Int64.compare value hi <= 0
    | Desc.One_of vs -> List.exists (Int64.equal value) vs
    | Desc.Not_equal v -> not (Int64.equal value v)
  in
  List.iter
    (fun c -> if not (ok c) then fail (Constraint_violation { path; constr = c; value }))
    constraints

let bswap ~bits v =
  let n = bits / 8 in
  let r = ref 0L in
  for i = 0 to n - 1 do
    r := Int64.logor (Int64.shift_left !r 8)
           (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)
  done;
  !r

let to_wire ~bits ~endian v =
  match endian with Desc.Big -> v | Desc.Little -> bswap ~bits v

let mask_check ~path ~bits v =
  if
    not
      (bits >= 64
      || Int64.equal (Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)) v)
  then fail (Value_out_of_range { path; value = v; bits })

let region_bits ~path ~base_bits ~msg_bits scope region ~own_span:(ooff, olen)
    ~record_end =
  match (region : Desc.region) with
  | Desc.Region_message -> (base_bits, msg_bits)
  | Desc.Region_rest ->
    let stop = !record_end in
    (ooff + olen, stop - (ooff + olen))
  | Desc.Region_span (a, b) -> (
    match (List.assoc_opt a scope.spans, List.assoc_opt b scope.spans) with
    | Some (aoff, _), Some (boff, blen) ->
      if boff + blen < aoff then
        fail (Eval_error { path; reason = Printf.sprintf "empty checksum span %s .. %s" a b })
      else (aoff, boff + blen - aoff)
    | None, _ ->
      fail (Eval_error { path; reason = Printf.sprintf "checksum span: unknown field %S" a })
    | _, None ->
      fail (Eval_error { path; reason = Printf.sprintf "checksum span: unknown field %S" b }))

(* ------------------------------------------------------------------ *)
(* The emitter: a reusable destination buffer plus pooled patch slots. *)

type pslot = {
  mutable p_name : string;
  mutable p_path : string list;
  mutable p_scope : scope;
  mutable p_bit_off : int;
  mutable p_bits : int;
  mutable p_endian : Desc.endian;
  mutable p_is_cksum : bool;
  mutable p_expr : Desc.expr; (* computed slots *)
  mutable p_alg : Ck.algorithm; (* checksum slots *)
  mutable p_region : Desc.region;
  mutable p_record_end : int ref;
}

let nil_scope = { vals = []; spans = []; computed_defs = []; parent = None }
let nil_end = ref 0

let fresh_slot () =
  { p_name = ""; p_path = []; p_scope = nil_scope; p_bit_off = 0; p_bits = 0;
    p_endian = Desc.Big; p_is_cksum = false; p_expr = Desc.Msg_len;
    p_alg = Ck.Internet; p_region = Desc.Region_message; p_record_end = nil_end }

type t = {
  fmt : Desc.t;
  prog : op array;
  mutable scratch : Bytes.t; (* the internal buffer [encode] writes into *)
  mutable out : Bytes.t; (* current destination *)
  mutable own : bool; (* [out == scratch]: grow instead of failing *)
  mutable base_bits : int;
  mutable limit_bits : int;
  mutable pos_bits : int;
  mutable slots : pslot array;
  mutable n_slots : int;
  mutable checks : (unit -> unit) list;
}

let create fmt =
  let vn, sn = collect_refs fmt in
  let cap =
    match Sizing.fixed_bytes fmt with
    | Some n -> max n 16
    | None -> max (2 * Sizing.min_bytes fmt) 64
  in
  let scratch = Bytes.create cap in
  { fmt;
    prog = compile_fields ~vn ~sn [] fmt.Desc.fields;
    scratch;
    out = scratch;
    own = true;
    base_bits = 0;
    limit_bits = 8 * cap;
    pos_bits = 0;
    slots = Array.init 4 (fun _ -> fresh_slot ());
    n_slots = 0;
    checks = [] }

let format t = t.fmt

(* ------------------------------------------------------------------ *)
(* Raw buffer writing.  Bits are both set and cleared, so stale contents of
   a reused buffer can never leak into the output. *)

let grow t need_bytes =
  if t.own then begin
    let cap = max need_bytes (2 * Bytes.length t.out) in
    let bigger = Bytes.create cap in
    Bytes.blit t.out 0 bigger 0 (Bytes.length t.out);
    t.out <- bigger;
    t.scratch <- bigger;
    t.limit_bits <- 8 * cap
  end

let ensure t ~path bits =
  if t.pos_bits + bits > t.limit_bits then begin
    grow t ((t.pos_bits + bits + 7) lsr 3);
    if t.pos_bits + bits > t.limit_bits then
      fail (Io
              { path;
                error =
                  B.Truncated { need_bits = bits; have_bits = t.limit_bits - t.pos_bits } })
  end

(* Overwrite [width] (<= 64) bits at [bit_off] with the low bits of [v],
   MSB-first. *)
let set_bits_at t ~bit_off ~width v =
  if bit_off land 7 = 0 && width land 7 = 0 then begin
    let base = bit_off lsr 3 and n = width lsr 3 in
    for i = 0 to n - 1 do
      Bytes.unsafe_set t.out (base + i)
        (Char.unsafe_chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (n - 1 - i))) 0xFFL)))
    done
  end
  else
    for i = 0 to width - 1 do
      let bit = Int64.to_int (Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L) in
      let idx = (bit_off + i) lsr 3 and sh = 7 - ((bit_off + i) land 7) in
      let old = Char.code (Bytes.unsafe_get t.out idx) in
      Bytes.unsafe_set t.out idx
        (Char.unsafe_chr (if bit = 1 then old lor (1 lsl sh) else old land lnot (1 lsl sh)))
    done

let put_int t ~path ~bits ~endian v =
  mask_check ~path ~bits v;
  ensure t ~path bits;
  set_bits_at t ~bit_off:t.pos_bits ~width:bits (to_wire ~bits ~endian v);
  t.pos_bits <- t.pos_bits + bits

let put_zeros t ~path bits =
  if bits < 0 || bits > 64 then
    fail (Io { path; error = B.Width_out_of_range bits });
  ensure t ~path bits;
  set_bits_at t ~bit_off:t.pos_bits ~width:bits 0L;
  t.pos_bits <- t.pos_bits + bits

let reserve t ~path bits =
  let off = t.pos_bits in
  put_zeros t ~path bits;
  off

let put_sub t ~path s off len =
  ensure t ~path (8 * len);
  if t.pos_bits land 7 = 0 then begin
    Bytes.blit_string s off t.out (t.pos_bits lsr 3) len;
    t.pos_bits <- t.pos_bits + (8 * len)
  end
  else
    for i = 0 to len - 1 do
      set_bits_at t ~bit_off:t.pos_bits ~width:8
        (Int64.of_int (Char.code (String.unsafe_get s (off + i))));
      t.pos_bits <- t.pos_bits + 8
    done

let put_byte t ~path b =
  ensure t ~path 8;
  set_bits_at t ~bit_off:t.pos_bits ~width:8 (Int64.of_int b);
  t.pos_bits <- t.pos_bits + 8

(* Clear any bits of the trailing partial byte beyond the message, matching
   Writer.contents' zero padding. *)
let zero_pad t =
  let rem = t.pos_bits land 7 in
  if rem <> 0 then begin
    let idx = t.pos_bits lsr 3 in
    let keep = 0xFF lsl (8 - rem) land 0xFF in
    Bytes.unsafe_set t.out idx
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.out idx) land keep))
  end

let msg_len_bytes t = (t.pos_bits - t.base_bits + 7) lsr 3

(* ------------------------------------------------------------------ *)
(* Patch slots (pooled: reused across encodes) *)

let push_slot t =
  if t.n_slots >= Array.length t.slots then
    t.slots <-
      Array.init (2 * Array.length t.slots) (fun i ->
          if i < Array.length t.slots then t.slots.(i) else fresh_slot ());
  let s = t.slots.(t.n_slots) in
  t.n_slots <- t.n_slots + 1;
  s

(* ------------------------------------------------------------------ *)
(* Field-value sources: a [Value.t] record tree, or a decoded view with
   optional overrides (view-to-wire).  Nested structure can only come from
   explicit values. *)

type source =
  | S_value of (string * Value.t) list
  | S_view of { view : View.t; over : (string * Value.t) list }

let as_int ~path = function
  | Value.Int v -> v
  | Value.Bool true -> 1L
  | Value.Bool false -> 0L
  | _ -> fail (Type_mismatch { path; expected = "int" })

let as_bytes ~path = function
  | Value.Bytes s -> s
  | _ -> fail (Type_mismatch { path; expected = "bytes" })

let as_list ~path = function
  | Value.List vs -> vs
  | _ -> fail (Type_mismatch { path; expected = "list" })

let expect_record ~path = function
  | Value.Record fields -> fields
  | _ -> fail (Type_mismatch { path; expected = "record" })

let require_int src (op : op) =
  match src with
  | S_value fields -> (
    match List.assoc_opt op.o_name fields with
    | Some v -> as_int ~path:op.o_path v
    | None -> fail (Missing_field { path = op.o_path }))
  | S_view { view; over } -> (
    match List.assoc_opt op.o_name over with
    | Some v -> as_int ~path:op.o_path v
    | None -> (
      match View.find_int view op.o_name with
      | Some v -> v
      | None -> fail (Missing_field { path = op.o_path })))

(* Overrides only: constants and computed fields never *need* a source, so
   a view is not consulted for them (its values already passed validation). *)
let override_int src (op : op) =
  match src with
  | S_value fields ->
    Option.map (as_int ~path:op.o_path) (List.assoc_opt op.o_name fields)
  | S_view { over; _ } ->
    Option.map (as_int ~path:op.o_path) (List.assoc_opt op.o_name over)

(* Bytes as (string, byte_off, byte_len): for view sources an aligned span
   is a window into the view's raw buffer — the payload is blitted straight
   from wire to wire, never copied into an intermediate string. *)
let require_bytes src (op : op) =
  match src with
  | S_value fields -> (
    match List.assoc_opt op.o_name fields with
    | Some v ->
      let s = as_bytes ~path:op.o_path v in
      (s, 0, String.length s)
    | None -> fail (Missing_field { path = op.o_path }))
  | S_view { view; over } -> (
    match List.assoc_opt op.o_name over with
    | Some v ->
      let s = as_bytes ~path:op.o_path v in
      (s, 0, String.length s)
    | None -> (
      match View.find_span view op.o_name with
      | Some (bit_off, bit_len) when bit_off land 7 = 0 && bit_len land 7 = 0 ->
        (View.raw view, bit_off lsr 3, bit_len lsr 3)
      | Some _ ->
        let s = View.get_bytes view op.o_name in
        (s, 0, String.length s)
      | None -> fail (Missing_field { path = op.o_path })))

let require_value src (op : op) =
  match src with
  | S_value fields -> (
    match List.assoc_opt op.o_name fields with
    | Some v -> v
    | None -> fail (Missing_field { path = op.o_path }))
  | S_view { over; _ } -> (
    match List.assoc_opt op.o_name over with
    | Some v -> v
    | None ->
      fail (Type_mismatch
              { path = op.o_path;
                expected = "explicit value (nested fields cannot be sourced from a view)" }))

(* ------------------------------------------------------------------ *)
(* The compiled-plan encoder.  Mirrors Codec.encode_field case by case so
   the wire bytes, derivations and check order are identical. *)

let rec run_prog t src scope (prog : op array) =
  let record_end = ref 0 in
  for i = 0 to Array.length prog - 1 do
    run_op t src scope record_end (Array.unsafe_get prog i)
  done;
  record_end := t.pos_bits

and run_op t src scope record_end (op : op) =
  let start = t.pos_bits in
  (match op.o_k with
  | E_scalar { bits; endian; enum; constraints } ->
    let v = require_int src op in
    (match enum with
    | Some cases ->
      if not (List.exists (fun (_, c) -> Int64.equal c v) cases) then
        fail (Enum_unknown { path = op.o_path; value = v })
    | None -> ());
    if constraints <> [] then apply_constraints ~path:op.o_path constraints v;
    put_int t ~path:op.o_path ~bits ~endian v;
    if op.o_val then scope.vals <- (op.o_name, v) :: scope.vals
  | E_bool ->
    let v = require_int src op in
    ensure t ~path:op.o_path 1;
    set_bits_at t ~bit_off:t.pos_bits ~width:1 (if Int64.equal v 0L then 0L else 1L);
    t.pos_bits <- t.pos_bits + 1;
    if op.o_val then scope.vals <- (op.o_name, v) :: scope.vals
  | E_const { bits; endian; value } ->
    (match override_int src op with
    | Some v ->
      if not (Int64.equal v value) then
        fail (Const_mismatch { path = op.o_path; expected = value; actual = v })
    | None -> ());
    put_int t ~path:op.o_path ~bits ~endian value;
    if op.o_val then scope.vals <- (op.o_name, value) :: scope.vals
  | E_computed { bits; endian; expr } ->
    (match override_int src op with
    | Some v ->
      (* A caller-supplied value must agree with the derivation; checked
         once every span is known. *)
      t.checks <-
        (fun () ->
          match lookup_val scope op.o_name with
          | Some actual when not (Int64.equal actual v) ->
            fail (Computed_mismatch { path = op.o_path; expected = actual; actual = v })
          | Some _ | None -> ())
        :: t.checks
    | None -> ());
    let off = reserve t ~path:op.o_path bits in
    scope.computed_defs <- (op.o_name, expr) :: scope.computed_defs;
    let s = push_slot t in
    s.p_name <- op.o_name;
    s.p_path <- op.o_path;
    s.p_scope <- scope;
    s.p_bit_off <- off;
    s.p_bits <- bits;
    s.p_endian <- endian;
    s.p_is_cksum <- false;
    s.p_expr <- expr
  | E_checksum { alg; bits; region } ->
    let off = reserve t ~path:op.o_path bits in
    let s = push_slot t in
    s.p_name <- op.o_name;
    s.p_path <- op.o_path;
    s.p_scope <- scope;
    s.p_bit_off <- off;
    s.p_bits <- bits;
    s.p_endian <- Desc.Big;
    s.p_is_cksum <- true;
    s.p_alg <- alg;
    s.p_region <- region;
    s.p_record_end <- record_end
  | E_bytes spec ->
    let s, boff, blen = require_bytes src op in
    (match spec with
    | L_fixed n ->
      if blen <> n then
        fail (Length_mismatch
                { path = op.o_path; expected = Int64.of_int n; actual = Int64.of_int blen })
    | L_expr e ->
      let actual = Int64.of_int blen in
      t.checks <-
        (fun () ->
          let expected =
            eval ~path:op.o_path ~msg_bytes:(fun () -> msg_len_bytes t) scope e
          in
          if not (Int64.equal expected actual) then
            fail (Length_mismatch { path = op.o_path; expected; actual }))
        :: t.checks
    | L_terminated term ->
      for i = boff to boff + blen - 1 do
        if Char.code (String.unsafe_get s i) = term then
          fail (Eval_error
                  { path = op.o_path;
                    reason =
                      Printf.sprintf "terminated bytes may not contain the terminator 0x%02x"
                        term })
      done
    | L_remaining -> ());
    put_sub t ~path:op.o_path s boff blen;
    (match spec with
    | L_terminated term -> put_byte t ~path:op.o_path term
    | L_fixed _ | L_expr _ | L_remaining -> ())
  | E_array { length; elem } ->
    let elems = as_list ~path:op.o_path (require_value src op) in
    (match length with
    | A_fixed n ->
      if List.length elems <> n then
        fail (Length_mismatch
                { path = op.o_path;
                  expected = Int64.of_int n;
                  actual = Int64.of_int (List.length elems) })
    | A_expr e ->
      let actual = Int64.of_int (List.length elems) in
      t.checks <-
        (fun () ->
          let expected =
            eval ~path:op.o_path ~msg_bytes:(fun () -> msg_len_bytes t) scope e
          in
          if not (Int64.equal expected actual) then
            fail (Length_mismatch { path = op.o_path; expected; actual }))
        :: t.checks
    | A_bytes e ->
      (* Checked after encoding via the recorded span. *)
      t.checks <-
        (fun () ->
          let expected =
            eval ~path:op.o_path ~msg_bytes:(fun () -> msg_len_bytes t) scope e
          in
          match List.assoc_opt op.o_name scope.spans with
          | Some (_, bit_len) ->
            let actual = Int64.of_int (bit_len / 8) in
            if not (Int64.equal expected actual) then
              fail (Length_mismatch { path = op.o_path; expected; actual })
          | None -> ())
        :: t.checks
    | A_remaining -> ());
    List.iter
      (fun ev ->
        let child = new_scope (Some scope) in
        run_prog t (S_value (expect_record ~path:op.o_path ev)) child elem)
      elems
  | E_record body ->
    let v = require_value src op in
    let child = new_scope (Some scope) in
    run_prog t (S_value (expect_record ~path:op.o_path v)) child body
  | E_variant { tag; cases; default } -> (
    match require_value src op with
    | Value.Variant (case_name, body) -> (
      let encode_body sub =
        let child = new_scope (Some scope) in
        run_prog t (S_value (expect_record ~path:op.o_path body)) child sub
      in
      match List.find_opt (fun (n, _, _) -> String.equal n case_name) cases with
      | Some (_, tag_value, sub) ->
        t.checks <-
          (fun () ->
            let actual =
              eval ~path:op.o_path ~msg_bytes:(fun () -> msg_len_bytes t) scope
                (Desc.Field tag)
            in
            if not (Int64.equal actual tag_value) then
              fail (Variant_unknown_tag { path = op.o_path; value = actual }))
          :: t.checks;
        encode_body sub
      | None -> (
        match default with
        | Some sub -> encode_body sub
        | None -> fail (Type_mismatch { path = op.o_path; expected = "known variant case" })))
    | _ -> fail (Type_mismatch { path = op.o_path; expected = "variant" }))
  | E_padding bits -> put_zeros t ~path:op.o_path bits
  | E_invalid reason -> fail (Eval_error { path = op.o_path; reason }));
  if op.o_span then
    scope.spans <- (op.o_name, (start, t.pos_bits - start)) :: scope.spans

let run_patches t =
  let msg_bytes () = msg_len_bytes t in
  (* Phase 1: computed fields (lengths etc.), so that checksums cover final
     values. *)
  for i = 0 to t.n_slots - 1 do
    let p = t.slots.(i) in
    if not p.p_is_cksum then begin
      let v = eval ~path:p.p_path ~msg_bytes p.p_scope p.p_expr in
      mask_check ~path:p.p_path ~bits:p.p_bits v;
      p.p_scope.vals <- (p.p_name, v) :: p.p_scope.vals;
      set_bits_at t ~bit_off:p.p_bit_off ~width:p.p_bits
        (to_wire ~bits:p.p_bits ~endian:p.p_endian v)
    end
  done;
  (* Phase 2: checksums, over the patched bytes, in field order — computed
     in place over the output buffer, no region copy. *)
  for i = 0 to t.n_slots - 1 do
    let p = t.slots.(i) in
    if p.p_is_cksum then begin
      let own_span = (p.p_bit_off, p.p_bits) in
      let (roff, rlen) =
        region_bits ~path:p.p_path ~base_bits:t.base_bits
          ~msg_bits:(t.pos_bits - t.base_bits) p.p_scope p.p_region ~own_span
          ~record_end:p.p_record_end
      in
      if roff land 7 <> 0 || rlen land 7 <> 0 then
        fail (Eval_error { path = p.p_path; reason = "checksum region is not byte-aligned" });
      let v =
        Ck.compute_zeroed p.p_alg ~off:(roff / 8) ~len:(rlen / 8)
          ~zero_bit_off:p.p_bit_off ~zero_bit_len:p.p_bits
          (Bytes.unsafe_to_string t.out)
      in
      p.p_scope.vals <- (p.p_name, v) :: p.p_scope.vals;
      set_bits_at t ~bit_off:p.p_bit_off ~width:p.p_bits v
    end
  done;
  List.iter (fun check -> check ()) (List.rev t.checks)

(* ------------------------------------------------------------------ *)
(* Entry points *)

let reset t ~out ~own ~off =
  t.out <- out;
  t.own <- own;
  t.base_bits <- off * 8;
  t.pos_bits <- off * 8;
  t.limit_bits <- 8 * Bytes.length out;
  t.n_slots <- 0;
  t.checks <- []

let run t src =
  let scope = new_scope None in
  run_prog t src scope t.prog;
  zero_pad t;
  run_patches t

let restore t = t.out <- t.scratch; t.own <- true

let encode_src t src =
  reset t ~out:t.scratch ~own:true ~off:0;
  match run t src with
  | () -> Ok (Bytes.sub_string t.out 0 (msg_len_bytes t))
  | exception Codec.Error e -> Result.Error (outward_error e)

let encode_src_into t ~off buf src =
  if off < 0 || off > Bytes.length buf then
    invalid_arg "Emit.encode_into: offset out of bounds";
  reset t ~out:buf ~own:false ~off;
  match run t src with
  | () ->
    let n = msg_len_bytes t in
    restore t;
    Ok n
  | exception Codec.Error e ->
    restore t;
    Result.Error (outward_error e)

let top_record ~what value =
  match value with
  | Value.Record fields -> fields
  | _ -> ignore what; fail (Type_mismatch { path = []; expected = "record" })

let encode t value =
  match top_record ~what:"encode" value with
  | fields -> encode_src t (S_value fields)
  | exception Codec.Error e -> Result.Error (outward_error e)

let encode_exn t value =
  match encode t value with Ok s -> s | Error e -> raise (Codec.Error e)

let encode_into t ?(off = 0) buf value =
  match top_record ~what:"encode_into" value with
  | fields -> encode_src_into t ~off buf (S_value fields)
  | exception Codec.Error e -> Result.Error (outward_error e)

let encode_view t ?(set = []) view = encode_src t (S_view { view; over = set })

let encode_view_exn t ?set view =
  match encode_view t ?set view with Ok s -> s | Error e -> raise (Codec.Error e)

let encode_view_into t ?(set = []) ?(off = 0) buf view =
  encode_src_into t ~off buf (S_view { view; over = set })

(* ------------------------------------------------------------------ *)
(* In-place patching: mutate one scalar field of an already-encoded (and
   validated) message at its fixed wire offset, updating any Internet
   checksum that covers it incrementally (RFC 1624) instead of re-streaming
   the region. *)

type fallback =
  | F_none (* region provably never all-zero: delta result is canonical *)
  | F_scan of int (* region start (bytes from message start) .. message end *)

type cks_patch = {
  c_bit_off : int; (* checksum field offset, bits from message start *)
  c_region_start : int; (* region start, bytes from message start *)
  c_fallback : fallback;
}

type patcher = {
  pa_name : string;
  pa_bit_off : int; (* byte-aligned *)
  pa_bits : int; (* whole bytes *)
  pa_endian : Desc.endian;
  pa_enum : (string * int64) list option;
  pa_constraints : Desc.constr list;
  pa_min_bytes : int; (* any valid message is at least this long *)
  pa_cks : cks_patch list;
}

let patcher_field p = p.pa_name

(* Bit offset of the end of [name]'s span in the *shortest* message — the
   guaranteed extent of a span region ending at [name]. *)
let min_end_of (fmt : Desc.t) name =
  let rec go acc = function
    | [] -> None
    | (g : Desc.field) :: rest ->
      let acc = acc + (Sizing.field_bounds g).min_bits in
      if String.equal g.name name then Some acc else go acc rest
  in
  go 0 fmt.fields

(* Is there a fixed-offset nonzero constant field inside [lo, hi) bits?  If
   so the summed region can never be all-zero, and an incremental checksum
   result of 0 is canonical (the ones'-complement ±0 ambiguity cannot
   arise). *)
let nonzero_const_within (fmt : Desc.t) lo hi =
  let rec scan off = function
    | [] -> false
    | (g : Desc.field) :: rest -> (
      match (Sizing.field_bounds g : Sizing.bounds) with
      | { min_bits; max_bits = Some m } when m = min_bits ->
        (match g.ty with
        | Desc.Const { value; _ }
          when (not (Int64.equal value 0L)) && off >= lo && off + m <= hi ->
          true
        | _ -> scan (off + m) rest)
      | _ -> false)
  in
  scan 0 fmt.fields

let rec has_checksum (fmt : Desc.t) =
  List.exists
    (fun (g : Desc.field) ->
      match g.ty with
      | Desc.Checksum _ -> true
      | Desc.Record sub -> has_checksum sub
      | Desc.Array { elem; _ } -> has_checksum elem
      | Desc.Variant { cases; default; _ } ->
        List.exists (fun (_, _, sub) -> has_checksum sub) cases
        || (match default with Some sub -> has_checksum sub | None -> false)
      | _ -> false)
    fmt.fields

let patcher ?(computed = false) (fmt : Desc.t) name =
  let ( let* ) = Result.bind in
  let* f =
    match Desc.find_field fmt name with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "no top-level field %S" name)
  in
  let* bits, endian, enum =
    match f.ty with
    | Desc.Uint { bits; endian } -> Ok (bits, endian, None)
    | Desc.Enum { bits; endian; cases; exhaustive } ->
      Ok (bits, endian, if exhaustive then Some cases else None)
    | Desc.Const _ -> Error (Printf.sprintf "field %S is a constant" name)
    | Desc.Computed { bits; endian; _ } when computed ->
      (* The stack back-patcher rewrites derived lengths on purpose: it
         re-evaluates the defining expression itself over the fused chain
         and takes responsibility for consistency. *)
      Ok (bits, endian, None)
    | Desc.Computed _ | Desc.Checksum _ ->
      Error (Printf.sprintf "field %S is derived; a patch would be recomputed away" name)
    | Desc.Bool_flag -> Error (Printf.sprintf "field %S is a single bit, not whole bytes" name)
    | Desc.Bytes _ | Desc.Array _ | Desc.Record _ | Desc.Variant _ | Desc.Padding _ ->
      Error (Printf.sprintf "field %S is not a scalar" name)
  in
  let* off_bits, _ = Sizing.fixed_field_span fmt name in
  let* () =
    if off_bits land 7 <> 0 || bits land 7 <> 0 then
      Error (Printf.sprintf "field %S is not byte-aligned on the wire" name)
    else Ok ()
  in
  let vn, _ = collect_refs fmt in
  let* () =
    if needed name vn then
      Error (Printf.sprintf "other fields are derived from %S; patching it would desynchronise them" name)
    else Ok ()
  in
  (* Checksum coverage: every checksum lives at the top level (nested ones
     cannot be updated without a decode) and there is at most one (regions
     of several could include each other's stored values). *)
  let nested_cks =
    List.exists
      (fun (g : Desc.field) ->
        match g.ty with
        | Desc.Record sub -> has_checksum sub
        | Desc.Array { elem; _ } -> has_checksum elem
        | Desc.Variant { cases; default; _ } ->
          List.exists (fun (_, _, sub) -> has_checksum sub) cases
          || (match default with Some sub -> has_checksum sub | None -> false)
        | _ -> false)
      fmt.fields
  in
  let* () =
    if nested_cks then Error "format has a checksum inside a nested field" else Ok ()
  in
  let cks_fields =
    List.filter
      (fun (g : Desc.field) -> match g.ty with Desc.Checksum _ -> true | _ -> false)
      fmt.fields
  in
  let* () =
    match cks_fields with
    | [] | [ _ ] -> Ok ()
    | _ -> Error "format has several checksum fields"
  in
  let* cks =
    match cks_fields with
    | [] -> Ok []
    | c :: _ -> (
      let alg, region =
        match c.ty with
        | Desc.Checksum { algorithm; region } -> (algorithm, region)
        | _ -> assert false
      in
      let* () =
        match alg with
        | Ck.Internet -> Ok ()
        | _ ->
          Error
            (Printf.sprintf "checksum algorithm %s has no incremental update"
               (Ck.algorithm_to_string alg))
      in
      let* coff, cbits = Sizing.fixed_field_span fmt c.name in
      let* () =
        if coff land 7 <> 0 then
          Error (Printf.sprintf "checksum field %S is not byte-aligned" c.name)
        else Ok ()
      in
      let mk region_start fallback =
        Ok [ { c_bit_off = coff; c_region_start = region_start; c_fallback = fallback } ]
      in
      match region with
      | Desc.Region_message ->
        (* Always covers the patched field; all-zero regions are possible
           unless a nonzero constant is pinned somewhere in the message. *)
        if nonzero_const_within fmt 0 max_int then mk 0 F_none
        else mk 0 (F_scan 0)
      | Desc.Region_rest ->
        let cend = coff + cbits in
        if off_bits + bits <= cend then Ok [] (* field precedes the region *)
        else begin
          let start = cend / 8 in
          if cend land 7 <> 0 then
            Error (Printf.sprintf "checksum region after %S is not byte-aligned" c.name)
          else if nonzero_const_within fmt cend max_int then mk start F_none
          else mk start (F_scan start)
        end
      | Desc.Region_span (a, b) -> (
        let* aoff, _ = Sizing.fixed_field_span fmt a in
        let* () =
          if aoff land 7 <> 0 then
            Error (Printf.sprintf "checksum region start %S is not byte-aligned" a)
          else Ok ()
        in
        match min_end_of fmt b with
        | None -> Error (Printf.sprintf "checksum span: unknown field %S" b)
        | Some min_end ->
          if off_bits + bits <= aoff then Ok [] (* field precedes the region *)
          else if off_bits >= aoff && off_bits + bits <= min_end then
            (* Inside the region in every message.  The region's end varies
               at run time, so there is no scan fallback; demand a pinned
               nonzero constant instead. *)
            if nonzero_const_within fmt aoff min_end then mk (aoff / 8) F_none
            else
              Error
                (Printf.sprintf
                   "checksum region %S..%S may be all-zero; incremental update would be ambiguous"
                   a b)
          else (
            match Sizing.fixed_field_span fmt b with
            | Ok (boff, blen) when off_bits >= boff + blen ->
              Ok [] (* field follows the (fixed) region *)
            | _ ->
              Error
                (Printf.sprintf "field %S may or may not be covered by the checksum" name)))
      )
  in
  Ok
    { pa_name = name;
      pa_bit_off = off_bits;
      pa_bits = bits;
      pa_endian = endian;
      pa_enum = enum;
      pa_constraints = f.constraints;
      pa_min_bytes = Sizing.min_bytes fmt;
      pa_cks = cks }

(* Incremental checksum update, all native ints.  A byte at an even offset
   from the region start is the high half of its 16-bit word, at an odd
   offset the low half — so the field itself need not be word-aligned.
   Top-level with explicit state (not a closure): the respond hot loop of
   the fused pipeline runs this per packet and must not allocate. *)
let rec patch_cks ~off ~len ~fbyte ~nbytes ~oldw ~wire buf = function
  | [] -> ()
  | c :: rest ->
    let rbase = off + c.c_region_start in
    let removed = ref 0 and added = ref 0 in
    for i = 0 to nbytes - 1 do
      let sh = 8 * (nbytes - 1 - i) in
      let w = if (fbyte + i - rbase) land 1 = 0 then 8 else 0 in
      removed := !removed + (((oldw lsr sh) land 0xFF) lsl w);
      added := !added + (((wire lsr sh) land 0xFF) lsl w)
    done;
    let coff = off + (c.c_bit_off lsr 3) in
    let hc = (Char.code (Bytes.get buf coff) lsl 8) lor Char.code (Bytes.get buf (coff + 1)) in
    let hc' = Ck.internet_delta ~checksum:hc ~removed:!removed ~added:!added in
    let hc' =
      if hc' <> 0 then hc'
      else
        (* 0 and 0xffff encode the same ones'-complement value; the
           canonical checksum is 0xffff exactly when the summed region
           is all zero.  Decide by scanning (the new field bytes are in
           place; the stored checksum reads as zero by convention). *)
        match c.c_fallback with
        | F_none -> 0
        | F_scan rstart ->
          let rhi = off + len in
          let rec all_zero i =
            i >= rhi
            || ((i = coff || i = coff + 1 || Char.code (Bytes.get buf i) = 0)
               && all_zero (i + 1))
          in
          if all_zero (off + rstart) then 0xFFFF else 0
    in
    Bytes.set buf coff (Char.unsafe_chr (hc' lsr 8));
    Bytes.set buf (coff + 1) (Char.unsafe_chr (hc' land 0xFF));
    patch_cks ~off ~len ~fbyte ~nbytes ~oldw ~wire buf rest

let rec enum_mem cases v =
  match cases with
  | [] -> false
  | (_, c) :: rest -> Int64.equal c v || enum_mem rest v

(* Unboxed enum membership for the native fast path: [v] has already
   passed the [0, 2^56) range check there, so a case constant outside
   that range cannot match and the [Int64.to_int] comparison is exact.
   [Int64.compare] against static bounds allocates nothing. *)
let rec enum_mem_int cases v =
  match cases with
  | [] -> false
  | (_, c) :: rest ->
    (Int64.compare c 0L >= 0
    && Int64.compare c 0x0100_0000_0000_0000L < 0
    && Int64.to_int c = v)
    || enum_mem_int rest v

let bswap_nat ~bits v =
  let n = bits / 8 in
  let r = ref 0 in
  for i = 0 to n - 1 do
    r := (!r lsl 8) lor ((v lsr (8 * i)) land 0xFF)
  done;
  !r

(* Non-optional window variant: the fused reply path calls this so the
   call site allocates no [Some len]. *)
let patch_window p ~off ~len buf v =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Emit.patch: window out of bounds";
  match
    if len < p.pa_min_bytes then
      fail (Io
              { path = [ p.pa_name ];
                error =
                  B.Truncated { need_bits = 8 * p.pa_min_bytes; have_bits = 8 * len } });
    let fbyte = off + (p.pa_bit_off lsr 3) in
    let nbytes = p.pa_bits lsr 3 in
    if p.pa_bits <= 56 then begin
      (* Native fast path: byte-aligned narrow field, every step in
         unboxed ints.  [Int64.to_int] keeps the value exact whenever the
         sign check and the native range check both pass, so together they
         stand in for [mask_check] without boxing anything. *)
      if Int64.compare v 0L < 0 then
        fail (Value_out_of_range { path = [ p.pa_name ]; value = v; bits = p.pa_bits });
      let vi = Int64.to_int v in
      if vi < 0 || vi lsr p.pa_bits <> 0 then
        fail (Value_out_of_range { path = [ p.pa_name ]; value = v; bits = p.pa_bits });
      (match p.pa_enum with
      | Some cases ->
        if not (enum_mem cases v) then
          fail (Enum_unknown { path = [ p.pa_name ]; value = v })
      | None -> ());
      if p.pa_constraints <> [] then
        apply_constraints ~path:[ p.pa_name ] p.pa_constraints v;
      let wire =
        match p.pa_endian with
        | Desc.Big -> vi
        | Desc.Little -> bswap_nat ~bits:p.pa_bits vi
      in
      (* Capture the outgoing bytes, then overwrite. *)
      let oldw = ref 0 in
      for i = 0 to nbytes - 1 do
        oldw := (!oldw lsl 8) lor Char.code (Bytes.get buf (fbyte + i))
      done;
      for i = 0 to nbytes - 1 do
        Bytes.set buf (fbyte + i)
          (Char.unsafe_chr ((wire lsr (8 * (nbytes - 1 - i))) land 0xFF))
      done;
      patch_cks ~off ~len ~fbyte ~nbytes ~oldw:!oldw ~wire buf p.pa_cks
    end
    else begin
      (* Validate the new value exactly as the full encoder would. *)
      mask_check ~path:[ p.pa_name ] ~bits:p.pa_bits v;
      (match p.pa_enum with
      | Some cases ->
        if not (List.exists (fun (_, c) -> Int64.equal c v) cases) then
          fail (Enum_unknown { path = [ p.pa_name ]; value = v })
      | None -> ());
      if p.pa_constraints <> [] then
        apply_constraints ~path:[ p.pa_name ] p.pa_constraints v;
      let wire = to_wire ~bits:p.pa_bits ~endian:p.pa_endian v in
      let byte_of w i =
        Int64.to_int (Int64.logand (Int64.shift_right_logical w (8 * (nbytes - 1 - i))) 0xFFL)
      in
      let oldwire = ref 0L in
      for i = 0 to nbytes - 1 do
        oldwire :=
          Int64.logor (Int64.shift_left !oldwire 8)
            (Int64.of_int (Char.code (Bytes.get buf (fbyte + i))))
      done;
      for i = 0 to nbytes - 1 do
        Bytes.set buf (fbyte + i) (Char.unsafe_chr (byte_of wire i))
      done;
      List.iter
        (fun c ->
          let rbase = off + c.c_region_start in
          let removed = ref 0 and added = ref 0 in
          for i = 0 to nbytes - 1 do
            let w = if (fbyte + i - rbase) land 1 = 0 then 8 else 0 in
            removed := !removed + (byte_of !oldwire i lsl w);
            added := !added + (byte_of wire i lsl w)
          done;
          let coff = off + (c.c_bit_off lsr 3) in
          let hc = (Char.code (Bytes.get buf coff) lsl 8) lor Char.code (Bytes.get buf (coff + 1)) in
          let hc' = Ck.internet_delta ~checksum:hc ~removed:!removed ~added:!added in
          let hc' =
            if hc' <> 0 then hc'
            else
              match c.c_fallback with
              | F_none -> 0
              | F_scan rstart ->
                let rhi = off + len in
                let rec all_zero i =
                  i >= rhi
                  || ((i = coff || i = coff + 1 || Char.code (Bytes.get buf i) = 0)
                     && all_zero (i + 1))
                in
                if all_zero (off + rstart) then 0xFFFF else 0
          in
          Bytes.set buf coff (Char.unsafe_chr (hc' lsr 8));
          Bytes.set buf (coff + 1) (Char.unsafe_chr (hc' land 0xFF)))
        p.pa_cks
    end
  with
  | () -> Ok ()
  | exception Codec.Error e -> Result.Error (outward_error e)

(* Unboxed-int variant of [patch_window]: the fused respond path reads its
   source values as native-int registers, and boxing an [Int64] per patch
   is the last allocation on that path.  Fields wider than 56 bits and
   constrained fields delegate to the boxing path (identical validation;
   a native register cannot carry > 62 bits anyway).  Enum fields stay on
   the fast path — membership checks through {!enum_mem_int} without
   touching the boxed case constants' values. *)
let patch_window_int p ~off ~len buf v =
  if p.pa_bits > 56 || p.pa_constraints <> [] then
    patch_window p ~off ~len buf (Int64.of_int v)
  else if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Emit.patch: window out of bounds"
  else
    match
      if len < p.pa_min_bytes then
        fail
          (Io
             { path = [ p.pa_name ];
               error =
                 B.Truncated
                   { need_bits = 8 * p.pa_min_bytes; have_bits = 8 * len } });
      if v < 0 || v lsr p.pa_bits <> 0 then
        fail
          (Value_out_of_range
             { path = [ p.pa_name ]; value = Int64.of_int v; bits = p.pa_bits });
      (match p.pa_enum with
      | Some cases ->
        if not (enum_mem_int cases v) then
          fail (Enum_unknown { path = [ p.pa_name ]; value = Int64.of_int v })
      | None -> ());
      let fbyte = off + (p.pa_bit_off lsr 3) in
      let nbytes = p.pa_bits lsr 3 in
      let wire =
        match p.pa_endian with
        | Desc.Big -> v
        | Desc.Little -> bswap_nat ~bits:p.pa_bits v
      in
      let oldw = ref 0 in
      for i = 0 to nbytes - 1 do
        oldw := (!oldw lsl 8) lor Char.code (Bytes.get buf (fbyte + i))
      done;
      for i = 0 to nbytes - 1 do
        Bytes.set buf (fbyte + i)
          (Char.unsafe_chr ((wire lsr (8 * (nbytes - 1 - i))) land 0xFF))
      done;
      patch_cks ~off ~len ~fbyte ~nbytes ~oldw:!oldw ~wire buf p.pa_cks
    with
    | () -> Ok ()
    | exception Codec.Error e -> Result.Error (outward_error e)

let patch p ?(off = 0) ?len buf v =
  let len = match len with None -> Bytes.length buf - off | Some l -> l in
  patch_window p ~off ~len buf v

let patch_exn p ?off ?len buf v =
  match patch p ?off ?len buf v with Ok () -> () | Error e -> raise (Codec.Error e)
