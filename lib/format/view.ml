module B = Netdsl_util.Bitio
module Ck = Netdsl_util.Checksum

(* Errors are shared with Codec so callers see one decode-error type
   regardless of which decode path ran. *)
type error = Codec.error

let fail e = raise (Codec.Error e)

(* Decode-side subset of Codec.outward_error: paths are threaded
   innermost-first during the parse and reversed when an error escapes. *)
let outward_error : Codec.error -> Codec.error = function
  | Io e -> Io { e with path = List.rev e.path }
  | Const_mismatch e -> Const_mismatch { e with path = List.rev e.path }
  | Enum_unknown e -> Enum_unknown { e with path = List.rev e.path }
  | Constraint_violation e -> Constraint_violation { e with path = List.rev e.path }
  | Computed_mismatch e -> Computed_mismatch { e with path = List.rev e.path }
  | Checksum_mismatch e -> Checksum_mismatch { e with path = List.rev e.path }
  | Variant_unknown_tag e -> Variant_unknown_tag { e with path = List.rev e.path }
  | Missing_field e -> Missing_field { path = List.rev e.path }
  | Type_mismatch e -> Type_mismatch { e with path = List.rev e.path }
  | Length_mismatch e -> Length_mismatch { e with path = List.rev e.path }
  | Eval_error e -> Eval_error { e with path = List.rev e.path }
  | Trailing_input _ as e -> e
  | Value_out_of_range e -> Value_out_of_range { e with path = List.rev e.path }

(* ------------------------------------------------------------------ *)
(* The span table.  One entry per value-bearing field, in wire order; a
   container's children follow it and [stop] indexes one past its subtree.
   Entries are pooled and reused across decodes, so the steady-state decode
   path allocates no per-field values. *)

let k_int = 0 (* scalar; [ival] holds the value (fits an OCaml int) *)
let k_int_wide = 1 (* scalar > 62 bits; re-read from the span on access *)
let k_bool = 2 (* [ival] is 0/1 *)
let k_bytes = 3 (* span only; bytes are extracted lazily *)
let k_record = 4
let k_list = 5 (* [ival] is the element count *)
let k_variant = 6 (* [sval] is the chosen case name *)

type entry = {
  mutable name : string;
  mutable kind : int;
  mutable ival : int;
  mutable sval : string;
  mutable voff : int; (* absolute bit offset of the field's span *)
  mutable vlen : int; (* bit length *)
  mutable stop : int; (* index one past this entry's subtree *)
}

let fresh_entry () =
  { name = ""; kind = 0; ival = 0; sval = ""; voff = 0; vlen = 0; stop = 0 }

(* ------------------------------------------------------------------ *)
(* Compiled decode plans.  [create] lowers the format descriptor into a
   flat op array once; the per-packet walk then dispatches on precomputed
   ops instead of re-interpreting the tree: error paths are consed at
   compile time, endianness and width classification are baked in, and
   each op carries booleans saying whether any expression in the format
   actually references its value or span (so the hot loop records scope
   bindings only when something will read them). *)

type scalar_check =
  | C_none
  | C_const of int * int64 (* comparison value, declared value for errors *)
  | C_enum of int list (* exhaustive case values that can fit the width *)

type wide_check =
  | W_none
  | W_const of int64
  | W_enum of (string * int64) list

type blen =
  | L_fixed of int
  | L_expr of Desc.expr
  | L_remaining
  | L_terminated of int

type alen =
  | A_fixed of int
  | A_expr of Desc.expr
  | A_bytes of Desc.expr
  | A_remaining

type op = {
  o_name : string;
  o_path : string list; (* innermost-first, ready for [outward_error] *)
  o_val : bool; (* some expression reads this field's value *)
  o_span : bool; (* some expression or checksum region reads its span *)
  o_k : okind;
}

and okind =
  | K_scalar of {
      bits : int; (* <= 62: value fits an immediate int *)
      little : bool;
      check : scalar_check;
      constraints : Desc.constr list;
    }
  | K_scalar64 of {
      bits : int;
      endian : Desc.endian;
      check : wide_check;
      constraints : Desc.constr list;
    }
  | K_bool
  | K_computed of { bits : int; little : bool; endian : Desc.endian; expr : Desc.expr }
  | K_checksum of { alg : Ck.algorithm; bits : int; region : Desc.region }
  | K_bytes of blen
  | K_array of { length : alen; elem_name : string; elem : op array }
  | K_record of op array
  | K_variant of {
      tag : string;
      cases : (string * int64 * op array) list;
      default : op array option;
    }
  | K_padding of int
  | K_invalid of string (* ill-formed field: fails when reached, as Codec does *)

type t = {
  fmt : Desc.t;
  prog : op array;
  mutable data : string;
  mutable base_bits : int; (* window start *)
  mutable msg_bits : int; (* window length *)
  mutable entries : entry array;
  mutable n : int;
}

let collect_refs (fmt : Desc.t) =
  let vals = ref [] and spans = ref [] in
  let rec expr (e : Desc.expr) =
    match e with
    | Const _ | Msg_len -> ()
    | Field n -> vals := n :: !vals
    | Byte_len n -> spans := n :: !spans
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr a;
      expr b
  in
  let len_spec = function
    | Desc.Len_expr e | Desc.Len_bytes e -> expr e
    | Desc.Len_fixed _ | Desc.Len_remaining | Desc.Len_terminated _ -> ()
  in
  let rec fields (fmt : Desc.t) = List.iter field fmt.fields
  and field (f : Desc.field) =
    match f.ty with
    | Uint _ | Bool_flag | Const _ | Enum _ | Padding _ -> ()
    | Computed { expr = e; _ } -> expr e
    | Checksum { region; _ } -> (
      match region with
      | Region_span (a, b) -> spans := a :: b :: !spans
      | Region_message | Region_rest -> ())
    | Bytes spec -> len_spec spec
    | Array { elem; length } ->
      len_spec length;
      fields elem
    | Record sub -> fields sub
    | Variant { tag; cases; default } ->
      vals := tag :: !vals;
      List.iter (fun (_, _, sub) -> fields sub) cases;
      Option.iter fields default
  in
  fields fmt;
  (List.sort_uniq compare !vals, List.sort_uniq compare !spans)

let needed name l = List.exists (String.equal name) l

let le_bad bits = function Desc.Big -> false | Desc.Little -> bits land 7 <> 0
let le_bad_reason = "little-endian field width must be whole bytes"

(* A narrow (<= 62 bit) field value is a non-negative immediate int, so
   only declared values in [0, 2^62) can ever match; anything else maps to
   a comparison value no read can produce ([Int64.to_int] would wrap). *)
let fits_narrow c =
  Int64.compare c 0L >= 0 && Int64.compare c (Int64.shift_left 1L 62) < 0

let narrow_const value = if fits_narrow value then Int64.to_int value else -1

let narrow_enum_cases cases =
  List.filter_map
    (fun (_, c) -> if fits_narrow c then Some (Int64.to_int c) else None)
    cases

let rec compile_fields ~vn ~sn path (fields : Desc.t_fields) : op array =
  Array.of_list (List.map (compile_field ~vn ~sn path) fields)

and compile_field ~vn ~sn path (f : Desc.field) : op =
  let path_f = f.name :: path in
  let mk k =
    { o_name = f.name;
      o_path = path_f;
      o_val = needed f.name vn;
      o_span = needed f.name sn;
      o_k = k }
  in
  match f.ty with
  | Uint { bits; endian } ->
    if le_bad bits endian then mk (K_invalid le_bad_reason)
    else if bits <= 62 then
      mk (K_scalar
            { bits; little = (endian = Desc.Little); check = C_none;
              constraints = f.constraints })
    else mk (K_scalar64 { bits; endian; check = W_none; constraints = f.constraints })
  | Const { bits; endian; value } ->
    if le_bad bits endian then mk (K_invalid le_bad_reason)
    else if bits <= 62 then
      mk (K_scalar
            { bits; little = (endian = Desc.Little);
              check = C_const (narrow_const value, value);
              constraints = f.constraints })
    else
      mk (K_scalar64 { bits; endian; check = W_const value; constraints = f.constraints })
  | Enum { bits; endian; cases; exhaustive } ->
    if le_bad bits endian then mk (K_invalid le_bad_reason)
    else if bits <= 62 then
      mk (K_scalar
            { bits; little = (endian = Desc.Little);
              check = (if exhaustive then C_enum (narrow_enum_cases cases) else C_none);
              constraints = f.constraints })
    else
      mk (K_scalar64
            { bits; endian;
              check = (if exhaustive then W_enum cases else W_none);
              constraints = f.constraints })
  | Bool_flag -> mk K_bool
  | Computed { bits; endian; expr } ->
    if le_bad bits endian then mk (K_invalid le_bad_reason)
    else mk (K_computed { bits; little = (endian = Desc.Little); endian; expr })
  | Checksum { algorithm; region } ->
    mk (K_checksum { alg = algorithm; bits = Ck.width_bits algorithm; region })
  | Bytes spec ->
    let spec =
      match spec with
      | Len_fixed n -> L_fixed n
      | Len_expr e | Len_bytes e -> L_expr e
      | Len_remaining -> L_remaining
      | Len_terminated t -> L_terminated t
    in
    mk (K_bytes spec)
  | Array { elem; length } -> (
    let elem_ops = compile_fields ~vn ~sn path_f elem.fields in
    match length with
    | Len_fixed n ->
      mk (K_array { length = A_fixed n; elem_name = elem.format_name; elem = elem_ops })
    | Len_expr e ->
      mk (K_array { length = A_expr e; elem_name = elem.format_name; elem = elem_ops })
    | Len_bytes e ->
      mk (K_array { length = A_bytes e; elem_name = elem.format_name; elem = elem_ops })
    | Len_remaining ->
      mk (K_array
            { length = A_remaining; elem_name = elem.format_name; elem = elem_ops })
    | Len_terminated _ -> mk (K_invalid "arrays cannot be terminator-delimited"))
  | Record sub -> mk (K_record (compile_fields ~vn ~sn path_f sub.fields))
  | Variant { tag; cases; default } ->
    mk (K_variant
          { tag;
            cases =
              List.map
                (fun (cn, v, (sub : Desc.t)) ->
                  (cn, v, compile_fields ~vn ~sn path_f sub.fields))
                cases;
            default =
              Option.map
                (fun (sub : Desc.t) -> compile_fields ~vn ~sn path_f sub.fields)
                default })
  | Padding { bits } -> mk (K_padding bits)

let create fmt =
  let vn, sn = collect_refs fmt in
  {
    fmt;
    prog = compile_fields ~vn ~sn [] fmt.Desc.fields;
    data = "";
    base_bits = 0;
    msg_bits = 0;
    entries = Array.init 16 (fun _ -> fresh_entry ());
    n = 0;
  }

let format t = t.fmt
let raw t = t.data
let length_bytes t = t.msg_bits / 8

let push t =
  if t.n >= Array.length t.entries then begin
    let bigger =
      Array.init (2 * Array.length t.entries) (fun i ->
          if i < Array.length t.entries then t.entries.(i) else fresh_entry ())
    in
    t.entries <- bigger
  end;
  let e = t.entries.(t.n) in
  t.n <- t.n + 1;
  e

(* ------------------------------------------------------------------ *)
(* Scopes: as in Codec, one per record nesting level, shared with deferred
   checks so a check registered early sees siblings decoded later. *)

type scope = {
  mutable vals : (string * int64) list;
  mutable spans : (string * (int * int)) list;
  parent : scope option;
}

let new_scope parent = { vals = []; spans = []; parent }

let rec lookup_val scope name =
  match List.assoc_opt name scope.vals with
  | Some v -> Some v
  | None -> ( match scope.parent with None -> None | Some p -> lookup_val p name)

let rec lookup_span scope name =
  match List.assoc_opt name scope.spans with
  | Some s -> Some s
  | None -> ( match scope.parent with None -> None | Some p -> lookup_span p name)

(* ------------------------------------------------------------------ *)
(* Shared helpers (mirroring Codec's decode side). *)

let check_le_width ~path ~bits = function
  | Desc.Big -> ()
  | Desc.Little ->
    if bits land 7 <> 0 then
      fail (Eval_error { path; reason = "little-endian field width must be whole bytes" })

let bswap ~bits v =
  let n = bits / 8 in
  let r = ref 0L in
  for i = 0 to n - 1 do
    r := Int64.logor (Int64.shift_left !r 8)
           (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)
  done;
  !r

let of_wire ~bits ~endian v =
  match endian with Desc.Big -> v | Desc.Little -> bswap ~bits v

let apply_constraints ~path constraints value =
  let ok = function
    | Desc.In_range (lo, hi) -> Int64.compare lo value <= 0 && Int64.compare value hi <= 0
    | Desc.One_of vs -> List.exists (Int64.equal value) vs
    | Desc.Not_equal v -> not (Int64.equal value v)
  in
  List.iter
    (fun c -> if not (ok c) then fail (Constraint_violation { path; constr = c; value }))
    constraints

(* Decode-side expression evaluation: every referenced field is concrete. *)
let rec eval ~path ~msg_bits scope (expr : Desc.expr) =
  match expr with
  | Const v -> v
  | Field name -> (
    match lookup_val scope name with
    | Some v -> v
    | None ->
      fail (Eval_error { path; reason = Printf.sprintf "unknown field %S in expression" name }))
  | Byte_len name -> (
    match lookup_span scope name with
    | Some (_, bit_len) ->
      if bit_len land 7 <> 0 then
        fail (Eval_error
                { path; reason = Printf.sprintf "len(%s): field is not a whole number of bytes" name })
      else Int64.of_int (bit_len / 8)
    | None ->
      fail (Eval_error { path; reason = Printf.sprintf "len(%s): unknown field" name }))
  | Msg_len -> Int64.of_int (msg_bits / 8)
  | Add (a, b) -> Int64.add (eval ~path ~msg_bits scope a) (eval ~path ~msg_bits scope b)
  | Sub (a, b) -> Int64.sub (eval ~path ~msg_bits scope a) (eval ~path ~msg_bits scope b)
  | Mul (a, b) -> Int64.mul (eval ~path ~msg_bits scope a) (eval ~path ~msg_bits scope b)
  | Div (a, b) ->
    let d = eval ~path ~msg_bits scope b in
    if Int64.equal d 0L then fail (Eval_error { path; reason = "division by zero" })
    else Int64.div (eval ~path ~msg_bits scope a) d

let region_bits ~path ~base_bits ~msg_bits scope region ~own_span:(ooff, olen)
    ~record_end =
  match (region : Desc.region) with
  | Desc.Region_message -> (base_bits, msg_bits)
  | Desc.Region_rest ->
    let stop = !record_end in
    (ooff + olen, stop - (ooff + olen))
  | Desc.Region_span (a, b) -> (
    match (List.assoc_opt a scope.spans, List.assoc_opt b scope.spans) with
    | Some (aoff, _), Some (boff, blen) ->
      if boff + blen < aoff then
        fail (Eval_error { path; reason = Printf.sprintf "empty checksum span %s .. %s" a b })
      else (aoff, boff + blen - aoff)
    | None, _ ->
      fail (Eval_error { path; reason = Printf.sprintf "checksum span: unknown field %S" a })
    | _, None ->
      fail (Eval_error { path; reason = Printf.sprintf "checksum span: unknown field %S" b }))

(* The checksum of a region with the field's own bits read as zero —
   computed in place over the message, no copy. *)
let compute_checksum ~path ~algorithm ~data ~region_bits:(roff, rlen)
    ~own_span:(ooff, olen) =
  if roff land 7 <> 0 || rlen land 7 <> 0 then
    fail (Eval_error { path; reason = "checksum region is not byte-aligned" });
  Ck.compute_zeroed algorithm ~off:(roff / 8) ~len:(rlen / 8) ~zero_bit_off:ooff
    ~zero_bit_len:olen data

(* ------------------------------------------------------------------ *)
(* Decoding *)

type ctx = {
  view : t;
  mutable deferred : (unit -> unit) list; (* run (in order) after the parse *)
}

let with_io path f = try f () with B.Error e -> fail (Io { path; error = e })

let read_int ~path r ~bits ~endian =
  check_le_width ~path ~bits endian;
  let raw = with_io path (fun () -> B.Reader.read_bits r ~width:bits) in
  of_wire ~bits ~endian raw

(* Native-int byte swap for whole-byte widths up to 62 bits. *)
let bswap_int ~bits v =
  let n = bits lsr 3 in
  let r = ref 0 in
  for i = 0 to n - 1 do
    r := (!r lsl 8) lor ((v lsr (8 * i)) land 0xFF)
  done;
  !r

let max_len64 = Int64.of_int Sys.max_string_length

let positive_len ~path n =
  if Int64.compare n 0L < 0 then
    fail (Length_mismatch { path; expected = 0L; actual = n })
  else if Int64.compare n max_len64 > 0 then
    fail (Eval_error { path; reason = "length expression absurdly large" })
  else Int64.to_int n

(* Same checks for lengths fixed in the descriptor, without boxing. *)
let check_count ~path n =
  if n < 0 then
    fail (Length_mismatch { path; expected = 0L; actual = Int64.of_int n })
  else if n > Sys.max_string_length then
    fail (Eval_error { path; reason = "length expression absurdly large" })
  else n

let endian_flag = function Desc.Big -> 0 | Desc.Little -> 1
let flag_endian = function 0 -> Desc.Big | _ -> Desc.Little

(* On pool reuse the slot already holds this field's name; skipping the
   store skips a write barrier per field. *)
let set_name (e : entry) name = if e.name != name then e.name <- name

let set_scalar_int ctx name ~start ~bits v =
  let e = push ctx.view in
  set_name e name;
  e.voff <- start;
  e.vlen <- bits;
  e.kind <- k_int;
  e.ival <- v;
  e.stop <- ctx.view.n

let set_scalar ctx name ~start ~bits ~endian v =
  let e = push ctx.view in
  e.name <- name;
  e.voff <- start;
  e.vlen <- bits;
  if bits <= 62 then begin
    e.kind <- k_int;
    e.ival <- Int64.to_int v
  end
  else begin
    e.kind <- k_int_wide;
    e.ival <- endian_flag endian
  end;
  e.stop <- ctx.view.n

(* The compiled-plan interpreter.  One op per field; [o_path] and the
   classification work were done at compile time, so the per-packet cost
   of a scalar field is a bounds-checked read, the optional value check,
   and a pooled entry store. *)
let rec run_prog ctx scope (prog : op array) r =
  let record_end = ref 0 in
  for i = 0 to Array.length prog - 1 do
    run_op ctx scope record_end (Array.unsafe_get prog i) r
  done;
  record_end := B.Reader.bit_pos r

and run_op ctx scope record_end (op : op) r =
  let start = B.Reader.bit_pos r in
  (match op.o_k with
  | K_scalar s ->
    let v =
      match B.Reader.read_bits_int r ~width:s.bits with
      | v -> if s.little then bswap_int ~bits:s.bits v else v
      | exception B.Error e -> fail (Io { path = op.o_path; error = e })
    in
    (match s.check with
    | C_none -> ()
    | C_const (c, declared) ->
      if v <> c then
        fail
          (Const_mismatch
             { path = op.o_path; expected = declared; actual = Int64.of_int v })
    | C_enum cs ->
      if not (List.exists (fun (c : int) -> c = v) cs) then
        fail (Enum_unknown { path = op.o_path; value = Int64.of_int v }));
    if s.constraints <> [] then
      apply_constraints ~path:op.o_path s.constraints (Int64.of_int v);
    if op.o_val then scope.vals <- (op.o_name, Int64.of_int v) :: scope.vals;
    set_scalar_int ctx op.o_name ~start ~bits:s.bits v
  | K_scalar64 s ->
    let v = read_int ~path:op.o_path r ~bits:s.bits ~endian:s.endian in
    (match s.check with
    | W_none -> ()
    | W_const c ->
      if not (Int64.equal v c) then
        fail (Const_mismatch { path = op.o_path; expected = c; actual = v })
    | W_enum cases ->
      if not (List.exists (fun (_, c) -> Int64.equal c v) cases) then
        fail (Enum_unknown { path = op.o_path; value = v }));
    apply_constraints ~path:op.o_path s.constraints v;
    if op.o_val then scope.vals <- (op.o_name, v) :: scope.vals;
    set_scalar ctx op.o_name ~start ~bits:s.bits ~endian:s.endian v
  | K_bool ->
    let b =
      match B.Reader.read_bit r with
      | b -> b
      | exception B.Error e -> fail (Io { path = op.o_path; error = e })
    in
    if op.o_val then scope.vals <- (op.o_name, if b then 1L else 0L) :: scope.vals;
    let e = push ctx.view in
    set_name e op.o_name;
    e.kind <- k_bool;
    e.ival <- (if b then 1 else 0);
    e.voff <- start;
    e.vlen <- 1;
    e.stop <- ctx.view.n
  | K_computed c ->
    if c.bits <= 62 then begin
      let v =
        match B.Reader.read_bits_int r ~width:c.bits with
        | i -> if c.little then bswap_int ~bits:c.bits i else i
        | exception B.Error e -> fail (Io { path = op.o_path; error = e })
      in
      if op.o_val then scope.vals <- (op.o_name, Int64.of_int v) :: scope.vals;
      ctx.deferred <-
        (fun () ->
          let expected =
            eval ~path:op.o_path ~msg_bits:ctx.view.msg_bits scope c.expr
          in
          if not (Int64.equal expected (Int64.of_int v)) then
            fail
              (Computed_mismatch
                 { path = op.o_path; expected; actual = Int64.of_int v }))
        :: ctx.deferred;
      set_scalar_int ctx op.o_name ~start ~bits:c.bits v
    end
    else begin
      let v = read_int ~path:op.o_path r ~bits:c.bits ~endian:c.endian in
      if op.o_val then scope.vals <- (op.o_name, v) :: scope.vals;
      ctx.deferred <-
        (fun () ->
          let expected =
            eval ~path:op.o_path ~msg_bits:ctx.view.msg_bits scope c.expr
          in
          if not (Int64.equal expected v) then
            fail (Computed_mismatch { path = op.o_path; expected; actual = v }))
        :: ctx.deferred;
      set_scalar ctx op.o_name ~start ~bits:c.bits ~endian:c.endian v
    end
  | K_checksum c ->
    let v =
      match B.Reader.read_bits_int r ~width:c.bits with
      | v -> v
      | exception B.Error e -> fail (Io { path = op.o_path; error = e })
    in
    let own_span = (start, c.bits) in
    ctx.deferred <-
      (fun () ->
        let rbits =
          region_bits ~path:op.o_path ~base_bits:ctx.view.base_bits
            ~msg_bits:ctx.view.msg_bits scope c.region ~own_span ~record_end
        in
        let expected =
          compute_checksum ~path:op.o_path ~algorithm:c.alg ~data:ctx.view.data
            ~region_bits:rbits ~own_span
        in
        if not (Int64.equal expected (Int64.of_int v)) then
          fail
            (Checksum_mismatch
               { path = op.o_path; expected; actual = Int64.of_int v }))
      :: ctx.deferred;
    if op.o_val then scope.vals <- (op.o_name, Int64.of_int v) :: scope.vals;
    set_scalar_int ctx op.o_name ~start ~bits:c.bits v
  | K_bytes spec ->
    let e = push ctx.view in
    set_name e op.o_name;
    e.kind <- k_bytes;
    (match spec with
    | L_terminated terminator ->
      (* Consume whole bytes until (and including) the terminator; the
         recorded span excludes it. *)
      let rec scan () =
        let b =
          match B.Reader.read_uint8 r with
          | b -> b
          | exception B.Error err -> fail (Io { path = op.o_path; error = err })
        in
        if b <> terminator then scan ()
      in
      scan ();
      e.voff <- start;
      e.vlen <- B.Reader.bit_pos r - start - 8
    | L_fixed _ | L_expr _ | L_remaining ->
      let n =
        match spec with
        | L_remaining ->
          let rem = B.Reader.bits_remaining r in
          if rem land 7 <> 0 then
            fail
              (Eval_error
                 { path = op.o_path;
                   reason = "remaining input is not a whole number of bytes" })
          else rem / 8
        | L_fixed n -> check_count ~path:op.o_path n
        | L_expr le ->
          positive_len ~path:op.o_path
            (eval ~path:op.o_path ~msg_bits:ctx.view.msg_bits scope le)
        | L_terminated _ -> assert false
      in
      (match B.Reader.skip_bits r (n * 8) with
      | () -> ()
      | exception B.Error err -> fail (Io { path = op.o_path; error = err }));
      e.voff <- start;
      e.vlen <- n * 8);
    e.stop <- ctx.view.n
  | K_array a ->
    let e = push ctx.view in
    set_name e op.o_name;
    e.kind <- k_list;
    e.voff <- start;
    let count = ref 0 in
    let decode_elem sub_r =
      incr count;
      let ee = push ctx.view in
      set_name ee a.elem_name;
      ee.kind <- k_record;
      ee.voff <- B.Reader.bit_pos sub_r;
      let child = new_scope (Some scope) in
      run_prog ctx child a.elem sub_r;
      ee.vlen <- B.Reader.bit_pos sub_r - ee.voff;
      ee.stop <- ctx.view.n
    in
    (match a.length with
    | A_fixed n ->
      let n = check_count ~path:op.o_path n in
      for _ = 1 to n do
        decode_elem r
      done
    | A_expr le ->
      let n =
        positive_len ~path:op.o_path
          (eval ~path:op.o_path ~msg_bits:ctx.view.msg_bits scope le)
      in
      for _ = 1 to n do
        decode_elem r
      done
    | A_bytes le ->
      let nbytes =
        positive_len ~path:op.o_path
          (eval ~path:op.o_path ~msg_bits:ctx.view.msg_bits scope le)
      in
      let w =
        match B.Reader.sub_window r ~bit_len:(nbytes * 8) with
        | w -> w
        | exception B.Error err -> fail (Io { path = op.o_path; error = err })
      in
      while not (B.Reader.at_end w) do
        decode_elem w
      done
    | A_remaining ->
      while not (B.Reader.at_end r) do
        decode_elem r
      done);
    e.ival <- !count;
    e.vlen <- B.Reader.bit_pos r - start;
    e.stop <- ctx.view.n
  | K_record body ->
    let e = push ctx.view in
    set_name e op.o_name;
    e.kind <- k_record;
    e.voff <- start;
    let child = new_scope (Some scope) in
    run_prog ctx child body r;
    e.vlen <- B.Reader.bit_pos r - start;
    e.stop <- ctx.view.n
  | K_variant vr ->
    let tag_value =
      match lookup_val scope vr.tag with
      | Some v -> v
      | None ->
        fail
          (Eval_error
             { path = op.o_path;
               reason = Printf.sprintf "variant tag %S not in scope" vr.tag })
    in
    let e = push ctx.view in
    set_name e op.o_name;
    e.kind <- k_variant;
    e.voff <- start;
    let body case_name sub =
      if e.sval != case_name then e.sval <- case_name;
      let child = new_scope (Some scope) in
      run_prog ctx child sub r
    in
    (match List.find_opt (fun (_, v, _) -> Int64.equal v tag_value) vr.cases with
    | Some (case_name, _, sub) -> body case_name sub
    | None -> (
      match vr.default with
      | Some sub -> body "default" sub
      | None -> fail (Variant_unknown_tag { path = op.o_path; value = tag_value })));
    e.vlen <- B.Reader.bit_pos r - start;
    e.stop <- ctx.view.n
  | K_padding bits -> (
    match B.Reader.skip_bits r bits with
    | () -> ()
    | exception B.Error e -> fail (Io { path = op.o_path; error = e }))
  | K_invalid reason -> fail (Eval_error { path = op.o_path; reason }));
  if op.o_span then
    scope.spans <- (op.o_name, (start, B.Reader.bit_pos r - start)) :: scope.spans

let decode ?(allow_trailing = false) t ?(off = 0) ?len data =
  let len =
    match len with
    | None -> String.length data - off
    | Some l -> l
  in
  if off < 0 || len < 0 || off + len > String.length data then
    invalid_arg "View.decode: window out of bounds";
  t.data <- data;
  t.base_bits <- off * 8;
  t.msg_bits <- len * 8;
  t.n <- 0;
  match
    let r = B.Reader.of_string ~bit_off:(off * 8) ~bit_len:(len * 8) data in
    let ctx = { view = t; deferred = [] } in
    let scope = new_scope None in
    run_prog ctx scope t.prog r;
    List.iter (fun check -> check ()) (List.rev ctx.deferred);
    let rem = B.Reader.bits_remaining r in
    let padding_only () =
      rem < 8 && Int64.equal (B.Reader.read_bits r ~width:rem) 0L
    in
    if (not allow_trailing) && rem > 0 && not (padding_only ()) then
      fail (Trailing_input { bits = rem })
  with
  | () -> Ok ()
  | exception Codec.Error e ->
    t.n <- 0;
    Result.Error (outward_error e)

let of_string ?allow_trailing fmt data =
  let t = create fmt in
  match decode ?allow_trailing t data with
  | Ok () -> Ok t
  | Error e -> Result.Error e

(* ------------------------------------------------------------------ *)
(* Access *)

let reread_int t (e : entry) =
  let r = B.Reader.of_string ~bit_off:e.voff ~bit_len:e.vlen t.data in
  of_wire ~bits:e.vlen ~endian:(flag_endian e.ival) (B.Reader.read_bits r ~width:e.vlen)

let entry_int t (e : entry) =
  if e.kind = k_int || e.kind = k_bool then Int64.of_int e.ival
  else if e.kind = k_int_wide then reread_int t e
  else invalid_arg (Printf.sprintf "View: field %S is not a scalar" e.name)

let extract_bytes t ~bit_off ~bit_len =
  if bit_len land 7 = 0 && bit_off land 7 = 0 then
    String.sub t.data (bit_off / 8) (bit_len / 8)
  else begin
    let r = B.Reader.of_string ~bit_off ~bit_len t.data in
    String.init (bit_len / 8) (fun _ -> Char.chr (B.Reader.read_uint8 r))
  end

let entry_bytes t (e : entry) =
  if e.kind = k_bytes then extract_bytes t ~bit_off:e.voff ~bit_len:e.vlen
  else invalid_arg (Printf.sprintf "View: field %S is not bytes" e.name)

let find_entry t name =
  let rec go i =
    if i >= t.n then None
    else
      let e = t.entries.(i) in
      if String.equal e.name name then Some e else go e.stop
  in
  go 0

let get_entry t name =
  match find_entry t name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "View: no top-level field %S" name)

let find_int t name = Option.map (entry_int t) (find_entry t name)
let get_int t name = entry_int t (get_entry t name)
let get_bool t name = (get_entry t name).ival <> 0
let get_bytes t name = entry_bytes t (get_entry t name)

let find_span t name =
  match find_entry t name with
  | Some e when e.kind = k_bytes -> Some (e.voff, e.vlen)
  | Some _ | None -> None

let variant_case t name =
  match find_entry t name with
  | Some e when e.kind = k_variant -> Some e.sval
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Materialization: rebuild the Value.t that Codec.decode would have
   produced (used by the equivalence tests and by callers that want to
   leave the zero-copy world). *)

let to_value t =
  (* Consumes entries [i, stop) of a record body, returning the fields. *)
  let rec fields i stop =
    if i >= stop then []
    else
      let e = t.entries.(i) in
      (e.name, value_at i) :: fields e.stop stop
  and value_at i =
    let e = t.entries.(i) in
    if e.kind = k_int || e.kind = k_int_wide then Value.Int (entry_int t e)
    else if e.kind = k_bool then Value.Bool (e.ival <> 0)
    else if e.kind = k_bytes then Value.Bytes (entry_bytes t e)
    else if e.kind = k_record then Value.Record (fields (i + 1) e.stop)
    else if e.kind = k_list then begin
      let rec elems i stop =
        if i >= stop then []
        else
          let ee = t.entries.(i) in
          Value.Record (fields (i + 1) ee.stop) :: elems ee.stop stop
      in
      Value.List (elems (i + 1) e.stop)
    end
    else (* k_variant *)
      Value.Variant (e.sval, Value.Record (fields (i + 1) e.stop))
  in
  Value.Record (fields 0 t.n)

(* ------------------------------------------------------------------ *)
(* Key extraction: a precompiled reader for a scalar field that sits at a
   fixed offset in every message of the format — the cheap flow-sharding
   hash input (no decode needed). *)

type key_extractor = { k_bit_off : int; k_bits : int; k_endian : Desc.endian }

let scalar_width (f : Desc.field) =
  match f.ty with
  | Uint { bits; endian } | Const { bits; endian; _ }
  | Enum { bits; endian; _ } | Computed { bits; endian; _ } ->
    Some (bits, endian)
  | Checksum { algorithm; _ } -> Some (Ck.width_bits algorithm, Desc.Big)
  | Bool_flag -> Some (1, Desc.Big)
  | Bytes _ | Array _ | Record _ | Variant _ | Padding _ -> None

let key_extractor fmt name =
  match Desc.find_field fmt name with
  | None -> Result.Error (Printf.sprintf "no top-level field %S" name)
  | Some f -> (
    match scalar_width f with
    | Some (bits, endian) when bits <= 62 -> (
      match Sizing.fixed_field_span fmt name with
      | Ok (off, _) -> Ok { k_bit_off = off; k_bits = bits; k_endian = endian }
      | Error _ as e -> e)
    | Some _ -> Result.Error (Printf.sprintf "field %S is too wide for a key" name)
    | None -> Result.Error (Printf.sprintf "field %S is not a scalar" name))

let extract_key ke ?(off = 0) data =
  let bit_off = (off * 8) + ke.k_bit_off in
  if bit_off + ke.k_bits > String.length data * 8 then None
  else
    let r = B.Reader.of_string ~bit_off data in
    let raw = B.Reader.read_bits r ~width:ke.k_bits in
    Some (Int64.to_int (of_wire ~bits:ke.k_bits ~endian:ke.k_endian raw))

(* MSB-first native-int bit read for the steering fast path; bounds
   already checked by the caller.  Same logic as [Hot.read_narrow]. *)
let rec key_read_bits s pos width =
  if width <= 56 then begin
    let first = pos lsr 3 in
    let last = (pos + width - 1) lsr 3 in
    let drop = pos land 7 in
    let acc = ref (Char.code (String.unsafe_get s first) land (0xFF lsr drop)) in
    for i = first + 1 to last do
      acc := (!acc lsl 8) lor Char.code (String.unsafe_get s i)
    done;
    !acc lsr ((8 - ((pos + width) land 7)) land 7)
  end
  else
    let hiw = width - 32 in
    (key_read_bits s pos hiw lsl 32) lor key_read_bits s (pos + hiw) 32

let no_key = min_int

let key_min_bytes ke = (ke.k_bit_off + ke.k_bits + 7) lsr 3

let extract_key_int ke ?(off = 0) data =
  let bit_off = (off * 8) + ke.k_bit_off in
  if bit_off + ke.k_bits > String.length data * 8 then no_key
  else
    let v = key_read_bits data bit_off ke.k_bits in
    match ke.k_endian with
    | Desc.Big -> v
    | Desc.Little -> bswap_int ~bits:ke.k_bits v

(* ------------------------------------------------------------------ *)
(* Hot: a fused, demand-driven decoder for linear formats.

   [Hot.compile] lowers the same compiled op array a second time, into a
   flat program over preallocated native-int register/span/pending files:
   no [View.t] entry table, no scope assoc lists, no deferred-check
   closures, no reader record — a successful steady-state [run] allocates
   nothing.  Every check the interpreted decoder performs is preserved
   (constants, enum exhaustiveness, constraints, computed fields,
   checksums, trailing bits), only collapsed to a verdict: the accept set
   is exactly [View.decode]'s, which the differential oracle enforces over
   the corpus and fuzz mutants.

   Only formats whose top level is a straight line of scalar-ish fields
   qualify (no arrays/records/variants — no nested scopes), and only when
   every expression provably stays inside native-int-exact arithmetic;
   anything else returns [Error] and callers fall back to the interpreted
   view. *)

module Hot = struct
  exception Reject

  type hot = {
    hp : hop array;
    hdefs : hdef array;
    hregs : int array; (* latest value of each referenced/demanded field *)
    hpend : int array; (* raw values of deferred (computed/checksum) fields *)
    hpoff : int array; (* their own absolute bit offsets, per packet *)
    hsoff : int array; (* span bit offsets *)
    hslen : int array; (* span bit lengths *)
    hdemand : (string * int) array; (* demanded field -> register *)
    hsdemand : (string * int) array; (* demanded span -> span slot *)
    helig : string list;
    mutable hbase : int; (* window start, bits *)
    mutable hbits : int; (* window length, bits *)
    mutable hend : int; (* parse end position, bits *)
  }

  and iexpr = hot -> int

  and hop = { hreg : int; hspan : int; hk : hkind }

  and hkind =
    | H_scalar of {
        sbits : int;
        slittle : bool;
        scheck : hcheck;
        scons : hcon array;
      }
    | H_wide of {
        wbits : int;
        wendian : Desc.endian;
        wcheck : wide_check;
        wcons : Desc.constr list;
      }
    | H_bool
    | H_deferred of { dbits : int; dlittle : bool; dpend : int }
    | H_bytes_fixed of int (* byte count *)
    | H_bytes_expr of iexpr
    | H_bytes_remaining
    | H_bytes_terminated of int
    | H_padding of int

  and hcheck = HS_none | HS_const of int | HS_enum of int array
  and hcon = HC_range of int * int | HC_oneof of int array | HC_ne of int

  and hdef =
    | HD_computed of { cpend : int; cexpr : iexpr }
    | HD_checksum of {
        kpend : int;
        kbits : int;
        kalg : Ck.algorithm;
        kregion : hregion;
      }

  and hregion = HR_message | HR_rest | HR_span of int * int | HR_unknown

  type t = hot

  (* MSB-first bit read returning a native int; bounds already checked. *)
  let rec read_narrow s pos width =
    if width = 0 then 0
    else if width <= 56 then begin
      let first = pos lsr 3 in
      let last = (pos + width - 1) lsr 3 in
      let drop = pos land 7 in
      let acc = ref (Char.code (String.unsafe_get s first) land (0xFF lsr drop)) in
      for i = first + 1 to last do
        acc := (!acc lsl 8) lor Char.code (String.unsafe_get s i)
      done;
      !acc lsr ((8 - ((pos + width) land 7)) land 7)
    end
    else
      let hiw = width - 32 in
      (read_narrow s pos hiw lsl 32) lor read_narrow s (pos + hiw) 32

  let read_wide s pos width =
    if width <= 62 then Int64.of_int (read_narrow s pos width)
    else
      let hiw = width - 32 in
      Int64.logor
        (Int64.shift_left (Int64.of_int (read_narrow s pos hiw)) 32)
        (Int64.of_int (read_narrow s (pos + hiw) 32))

  let wcon_ok (c : Desc.constr) v =
    match c with
    | Desc.In_range (lo, hi) ->
      Int64.compare lo v <= 0 && Int64.compare v hi <= 0
    | Desc.One_of vs -> List.exists (Int64.equal v) vs
    | Desc.Not_equal x -> not (Int64.equal v x)

  (* Narrow constraints against a value in [0, 2^62): endpoints outside
     that window become always-true / unsatisfiable at compile time, the
     same classification [narrow_const] applies to constants. *)
  let compile_con (c : Desc.constr) =
    match c with
    | Desc.In_range (lo, hi) ->
      if
        Int64.compare lo (Int64.of_int max_int) > 0 || Int64.compare hi 0L < 0
      then Some (HC_range (1, 0)) (* unsatisfiable *)
      else
        let lo' = if Int64.compare lo 0L <= 0 then 0 else Int64.to_int lo in
        let hi' =
          if Int64.compare hi (Int64.of_int max_int) >= 0 then max_int
          else Int64.to_int hi
        in
        Some (HC_range (lo', hi'))
    | Desc.One_of vs -> Some (HC_oneof (Array.of_list (narrow_enum_cases (List.map (fun v -> ("", v)) vs))))
    | Desc.Not_equal v -> if fits_narrow v then Some (HC_ne (Int64.to_int v)) else None

  (* Expression bounds, tracked as floats with a 4x safety margin under
     the 2^62 wrap point: a node whose worst-case magnitude stays below
     2^60 can never make 63-bit arithmetic disagree with int64. *)
  let bound_limit = ldexp 1. 60

  let compile ?(demand = []) ?(span_demand = []) (fmt : Desc.t) =
    let vn, sn = collect_refs fmt in
    let vn = List.sort_uniq compare (demand @ vn) in
    let sn = List.sort_uniq compare (span_demand @ sn) in
    let ops = compile_fields ~vn ~sn [] fmt.Desc.fields in
    let nops = Array.length ops in
    let err = ref None in
    let fail_ msg = if !err = None then err := Some msg in
    let op_width (op : op) =
      match op.o_k with
      | K_scalar s -> s.bits
      | K_bool -> 1
      | K_computed c -> c.bits
      | K_checksum c -> c.bits
      | _ -> 0
    in
    let intish (op : op) =
      match op.o_k with
      | K_scalar _ | K_bool | K_checksum _ -> true
      | K_computed c -> c.bits <= 62
      | _ -> false
    in
    (* slot assignment; binding lists are consed newest-first so the first
       match below a cutoff is the latest earlier binding, mirroring scope
       shadowing in the interpreted decoder *)
    let nregs = ref 0 and nspans = ref 0 and npend = ref 0 in
    let reg_binds = ref [] and span_binds = ref [] in
    let reg_of = Array.make (max 1 nops) (-1) in
    let span_of = Array.make (max 1 nops) (-1) in
    Array.iteri
      (fun i (op : op) ->
        (match op.o_k with
        | K_array _ | K_record _ | K_variant _ ->
          fail_ "format is not linear (nested containers)"
        | K_invalid _ -> fail_ "format has an invalid field"
        | K_scalar64 _ when op.o_val ->
          fail_ "a wide (> 62 bit) field value is referenced"
        | K_computed c when c.bits > 62 ->
          fail_ "wide computed field"
        | _ -> ());
        if op.o_val && intish op then begin
          reg_of.(i) <- !nregs;
          reg_binds := (op.o_name, i, !nregs, op_width op) :: !reg_binds;
          incr nregs
        end;
        if op.o_span then begin
          span_of.(i) <- !nspans;
          span_binds := (op.o_name, i, !nspans) :: !span_binds;
          incr nspans
        end)
      ops;
    let lookup_reg ~before name =
      List.find_map
        (fun (n, i, slot, w) ->
          if i < before && String.equal n name then Some (slot, w) else None)
        !reg_binds
    in
    let lookup_span ~before name =
      List.find_map
        (fun (n, i, slot) ->
          if i < before && String.equal n name then Some slot else None)
        !span_binds
    in
    let reject_expr : iexpr = fun _ -> raise Reject in
    let ck lo hi =
      if Float.abs lo >= bound_limit || Float.abs hi >= bound_limit then
        fail_ "expression escapes native-int-exact bounds"
    in
    let rec cexpr ~before (e : Desc.expr) : iexpr * float * float =
      match e with
      | Desc.Const v ->
        let f = Int64.to_float v in
        ck f f;
        let c = if Float.abs f < bound_limit then Int64.to_int v else 0 in
        ((fun _ -> c), f, f)
      | Desc.Field name -> (
        match lookup_reg ~before name with
        | Some (slot, w) ->
          ((fun h -> Array.unsafe_get h.hregs slot), 0., ldexp 1. w -. 1.)
        | None ->
          (* the interpreted eval fails with "unknown field" exactly when
             this expression is evaluated: same verdict, same moment *)
          (reject_expr, 0., 0.))
      | Desc.Byte_len name -> (
        match lookup_span ~before name with
        | Some slot ->
          ( (fun h ->
              let bl = Array.unsafe_get h.hslen slot in
              if bl land 7 <> 0 then raise Reject else bl lsr 3),
            0.,
            ldexp 1. 52 )
        | None -> (reject_expr, 0., 0.))
      | Desc.Msg_len -> ((fun h -> h.hbits lsr 3), 0., ldexp 1. 52)
      | Desc.Add (a, b) ->
        let fa, alo, ahi = cexpr ~before a in
        let fb, blo, bhi = cexpr ~before b in
        let lo = alo +. blo and hi = ahi +. bhi in
        ck lo hi;
        ((fun h -> fa h + fb h), lo, hi)
      | Desc.Sub (a, b) ->
        let fa, alo, ahi = cexpr ~before a in
        let fb, blo, bhi = cexpr ~before b in
        let lo = alo -. bhi and hi = ahi -. blo in
        ck lo hi;
        ((fun h -> fa h - fb h), lo, hi)
      | Desc.Mul (a, b) ->
        let fa, alo, ahi = cexpr ~before a in
        let fb, blo, bhi = cexpr ~before b in
        let p1 = alo *. blo and p2 = alo *. bhi and p3 = ahi *. blo
        and p4 = ahi *. bhi in
        let lo = Float.min (Float.min p1 p2) (Float.min p3 p4) in
        let hi = Float.max (Float.max p1 p2) (Float.max p3 p4) in
        ck lo hi;
        ((fun h -> fa h * fb h), lo, hi)
      | Desc.Div (a, b) ->
        let fa, alo, ahi = cexpr ~before a in
        let fb, _, _ = cexpr ~before b in
        let m = Float.max (Float.abs alo) (Float.abs ahi) in
        ck (-.m) m;
        ( (fun h ->
            let d = fb h in
            if d = 0 then raise Reject else fa h / d),
          -.m,
          m )
    in
    let defs = ref [] in
    let hops =
      Array.mapi
        (fun i (op : op) ->
          let hk =
            match op.o_k with
            | K_scalar s ->
              let scheck =
                match s.check with
                | C_none -> HS_none
                | C_const (c, _) -> HS_const c
                | C_enum cs -> HS_enum (Array.of_list cs)
              in
              H_scalar
                {
                  sbits = s.bits;
                  slittle = s.little;
                  scheck;
                  scons =
                    Array.of_list (List.filter_map compile_con s.constraints);
                }
            | K_scalar64 s ->
              H_wide
                {
                  wbits = s.bits;
                  wendian = s.endian;
                  wcheck = s.check;
                  wcons = s.constraints;
                }
            | K_bool -> H_bool
            | K_computed c ->
              let p = !npend in
              incr npend;
              let cexpr', _, _ = cexpr ~before:nops c.expr in
              defs := HD_computed { cpend = p; cexpr = cexpr' } :: !defs;
              H_deferred { dbits = c.bits; dlittle = c.little; dpend = p }
            | K_checksum c ->
              let p = !npend in
              incr npend;
              let kregion =
                match c.region with
                | Desc.Region_message -> HR_message
                | Desc.Region_rest -> HR_rest
                | Desc.Region_span (a, b) -> (
                  match
                    (lookup_span ~before:nops a, lookup_span ~before:nops b)
                  with
                  | Some sa, Some sb -> HR_span (sa, sb)
                  | _ -> HR_unknown)
              in
              defs :=
                HD_checksum { kpend = p; kbits = c.bits; kalg = c.alg; kregion }
                :: !defs;
              H_deferred { dbits = c.bits; dlittle = false; dpend = p }
            | K_bytes (L_fixed n) ->
              if n < 0 || n > Sys.max_string_length then H_bytes_expr reject_expr
              else H_bytes_fixed n
            | K_bytes (L_expr e) ->
              let f, _, _ = cexpr ~before:i e in
              H_bytes_expr f
            | K_bytes L_remaining -> H_bytes_remaining
            | K_bytes (L_terminated term) -> H_bytes_terminated term
            | K_padding bits -> H_padding bits
            | K_array _ | K_record _ | K_variant _ | K_invalid _ -> H_padding 0
          in
          { hreg = reg_of.(i); hspan = span_of.(i); hk })
        ops
    in
    let demand_slots =
      List.map
        (fun name ->
          match lookup_reg ~before:nops name with
          | Some (slot, _) -> (name, slot)
          | None ->
            fail_ (Printf.sprintf "demanded field %S is not extractable" name);
            (name, -1))
        demand
    in
    let span_demand_slots =
      List.map
        (fun name ->
          match lookup_span ~before:nops name with
          | Some slot -> (name, slot)
          | None ->
            fail_ (Printf.sprintf "demanded span %S is not extractable" name);
            (name, -1))
        span_demand
    in
    match !err with
    | Some msg -> Result.Error msg
    | None ->
      Ok
        {
          hp = hops;
          hdefs = Array.of_list (List.rev !defs);
          hregs = Array.make (max 1 !nregs) 0;
          hpend = Array.make (max 1 !npend) 0;
          hpoff = Array.make (max 1 !npend) 0;
          hsoff = Array.make (max 1 !nspans) 0;
          hslen = Array.make (max 1 !nspans) 0;
          hdemand = Array.of_list demand_slots;
          hsdemand = Array.of_list span_demand_slots;
          helig =
            List.filter_map
              (fun (op : op) -> if intish op then Some op.o_name else None)
              (Array.to_list ops);
          hbase = 0;
          hbits = 0;
          hend = 0;
        }

  let eligible_fields fmt =
    match compile fmt with Error _ -> [] | Ok h -> h.helig

  let demand_slot h name =
    let rec go i =
      if i >= Array.length h.hdemand then
        invalid_arg (Printf.sprintf "View.Hot: field %S was not demanded" name)
      else
        let n, slot = h.hdemand.(i) in
        if String.equal n name then slot else go (i + 1)
    in
    go 0

  let get h slot = Array.unsafe_get h.hregs slot

  let span_slot h name =
    let rec go i =
      if i >= Array.length h.hsdemand then
        invalid_arg (Printf.sprintf "View.Hot: span %S was not demanded" name)
      else
        let n, slot = h.hsdemand.(i) in
        if String.equal n name then slot else go (i + 1)
    in
    go 0

  (* Absolute bit offset/length (within the decoded string, not the
     window) of a demanded span, from the last accepting [run]. *)
  let span_off h slot = Array.unsafe_get h.hsoff slot
  let span_len h slot = Array.unsafe_get h.hslen slot
  let parse_end_bits h = h.hend

  (* Raw scalar read used by the stack dispatcher to peek a variant tag
     before choosing a per-case plan; bounds must be pre-checked. *)
  let read_scalar (data : string) ~bit_off ~bits ~little =
    let v = read_narrow data bit_off bits in
    if little then bswap_int ~bits v else v

  (* Non-optional window variant: the fused per-packet path calls this so
     the call site allocates no [Some len]. *)
  let run_window h ~off ~len (data : string) =
    if off < 0 || len < 0 || off + len > String.length data then
      invalid_arg "View.Hot.run: window out of bounds";
    h.hbase <- off * 8;
    h.hbits <- len * 8;
    let endb = h.hbase + h.hbits in
    match
      let pos = ref h.hbase in
      let prog = h.hp in
      for i = 0 to Array.length prog - 1 do
        let op = Array.unsafe_get prog i in
        let start = !pos in
        (match op.hk with
        | H_scalar sc ->
          if start + sc.sbits > endb then raise Reject;
          let v0 = read_narrow data start sc.sbits in
          let v = if sc.slittle then bswap_int ~bits:sc.sbits v0 else v0 in
          pos := start + sc.sbits;
          (match sc.scheck with
          | HS_none -> ()
          | HS_const c -> if v <> c then raise Reject
          | HS_enum cs ->
            let n = Array.length cs in
            let j = ref 0 in
            while !j < n && Array.unsafe_get cs !j <> v do
              incr j
            done;
            if !j >= n then raise Reject);
          let cons = sc.scons in
          for ci = 0 to Array.length cons - 1 do
            match Array.unsafe_get cons ci with
            | HC_range (lo, hi) -> if v < lo || v > hi then raise Reject
            | HC_oneof a ->
              let n = Array.length a in
              let j = ref 0 in
              while !j < n && Array.unsafe_get a !j <> v do
                incr j
              done;
              if !j >= n then raise Reject
            | HC_ne x -> if v = x then raise Reject
          done;
          if op.hreg >= 0 then Array.unsafe_set h.hregs op.hreg v
        | H_wide w ->
          if start + w.wbits > endb then raise Reject;
          let v =
            of_wire ~bits:w.wbits ~endian:w.wendian (read_wide data start w.wbits)
          in
          pos := start + w.wbits;
          (match w.wcheck with
          | W_none -> ()
          | W_const c -> if not (Int64.equal v c) then raise Reject
          | W_enum cases ->
            if not (List.exists (fun (_, c) -> Int64.equal c v) cases) then
              raise Reject);
          List.iter (fun c -> if not (wcon_ok c v) then raise Reject) w.wcons
        | H_bool ->
          if start + 1 > endb then raise Reject;
          let v =
            (Char.code (String.unsafe_get data (start lsr 3))
            lsr (7 - (start land 7)))
            land 1
          in
          pos := start + 1;
          if op.hreg >= 0 then Array.unsafe_set h.hregs op.hreg v
        | H_deferred d ->
          if start + d.dbits > endb then raise Reject;
          let v0 = read_narrow data start d.dbits in
          let v = if d.dlittle then bswap_int ~bits:d.dbits v0 else v0 in
          pos := start + d.dbits;
          Array.unsafe_set h.hpend d.dpend v;
          Array.unsafe_set h.hpoff d.dpend start;
          if op.hreg >= 0 then Array.unsafe_set h.hregs op.hreg v
        | H_bytes_fixed n ->
          let bits = n * 8 in
          if start + bits > endb then raise Reject;
          pos := start + bits
        | H_bytes_expr f ->
          let n = f h in
          if n < 0 || n > Sys.max_string_length then raise Reject;
          let bits = n * 8 in
          if start + bits > endb then raise Reject;
          pos := start + bits
        | H_bytes_remaining ->
          let rem = endb - start in
          if rem land 7 <> 0 then raise Reject;
          pos := endb
        | H_bytes_terminated term ->
          let p = ref start in
          let b = ref (term + 1) in
          while !b <> term do
            if !p + 8 > endb then raise Reject;
            b := read_narrow data !p 8;
            p := !p + 8
          done;
          pos := !p
        | H_padding bits ->
          if start + bits > endb then raise Reject;
          pos := start + bits);
        if op.hspan >= 0 then begin
          Array.unsafe_set h.hsoff op.hspan start;
          Array.unsafe_set h.hslen op.hspan (!pos - start)
        end
      done;
      h.hend <- !pos;
      (* deferred checks, in parse order, exactly as the interpreted
         decoder replays its deferred list *)
      let defs = h.hdefs in
      for i = 0 to Array.length defs - 1 do
        match Array.unsafe_get defs i with
        | HD_computed d ->
          if d.cexpr h <> Array.unsafe_get h.hpend d.cpend then raise Reject
        | HD_checksum k ->
          let ooff = Array.unsafe_get h.hpoff k.kpend in
          let roff, rlen =
            match k.kregion with
            | HR_message -> (h.hbase, h.hbits)
            | HR_rest -> (ooff + k.kbits, h.hend - (ooff + k.kbits))
            | HR_span (a, b) ->
              let aoff = Array.unsafe_get h.hsoff a in
              let boff = Array.unsafe_get h.hsoff b
              and blen = Array.unsafe_get h.hslen b in
              if boff + blen < aoff then raise Reject;
              (aoff, boff + blen - aoff)
            | HR_unknown -> raise Reject
          in
          if roff land 7 <> 0 || rlen land 7 <> 0 then raise Reject;
          let actual = Array.unsafe_get h.hpend k.kpend in
          let agrees =
            match k.kalg with
            | Ck.Internet ->
              Ck.internet_zeroed ~off:(roff lsr 3) ~len:(rlen lsr 3)
                ~zero_bit_off:ooff ~zero_bit_len:k.kbits data
              = actual
            | alg ->
              Int64.equal
                (Ck.compute_zeroed alg ~off:(roff lsr 3) ~len:(rlen lsr 3)
                   ~zero_bit_off:ooff ~zero_bit_len:k.kbits data)
                (Int64.of_int actual)
          in
          if not agrees then raise Reject
      done;
      let rem = endb - h.hend in
      if rem > 0 then begin
        if rem >= 8 then raise Reject;
        if read_narrow data h.hend rem <> 0 then raise Reject
      end
    with
    | () -> true
    | exception Reject -> false

  let run h ?(off = 0) ?len (data : string) =
    let len =
      match len with None -> String.length data - off | Some l -> l
    in
    run_window h ~off ~len data

  let length_bytes h = h.hbits lsr 3
end
