(** Static size analysis of format descriptions.

    Computes the minimum and (when bounded) maximum encoded size of a
    format.  The paper's §3.3 notes that static information about the data
    lets implementations drop dynamic checks; a decoder can reject a
    too-short datagram with a single length comparison derived here instead
    of bounds-checking every field read. *)

type bounds = {
  min_bits : int;
  max_bits : int option;  (** [None] when the format is unbounded *)
}

val pp_bounds : Format.formatter -> bounds -> unit

val bounds : Desc.t -> bounds
val field_bounds : Desc.field -> bounds

val fixed_bits : Desc.t -> int option
(** [Some n] when every message of the format is exactly [n] bits. *)

val fixed_bytes : Desc.t -> int option
(** Like {!fixed_bits}, in whole bytes ([None] if not byte-divisible). *)

val min_bytes : Desc.t -> int
(** Minimum encoded size rounded up to bytes — the cheap reject threshold. *)

val fixed_field_span : Desc.t -> string -> (int * int, string) result
(** [fixed_field_span fmt name] is the [(bit_off, bit_len)] the named
    top-level field occupies in {e every} message of [fmt]: the field must
    have a fixed size and only fixed-size fields before it.  This is what
    makes a field addressable without decoding — the basis of
    {!View.key_extractor} flow keys and [Emit.patch] in-place rewrites. *)
