(* Parse graphs: layered header stacks compiled into one flat plan.

   A stack is an ordered chain of single-header formats where a declared
   demux field of layer N (ethertype, protocol, dst_port) must select
   layer N+1 and a trailing payload field carries it.  [compile] lowers
   the chain once into per-layer fused decoders chained by span
   arithmetic: layer N's hot plan records its payload span, layer N+1
   decodes inside that window, demux is a flat native-int table, and a
   terminal one-level-variant format (TFTP, ICMP) is flattened into one
   hot plan per case behind a fixed-offset tag peek — so a whole
   eth->ipv4->udp->tftp decode allocates nothing.  The accept set is
   exactly the sequential per-layer [View.decode] reference in [Seq];
   the lib/check chain oracle keeps the two in lock-step.

   Encode writes each carrier header once, directly at its final offset
   with an empty payload, then back-patches Msg_len-derived outer fields
   (total_length, udp length) innermost-out through [Emit.patcher
   ~computed:true] — the covering Internet checksum is repaired
   incrementally (RFC 1624), so no byte of the chain is written twice. *)

(* ------------------------------------------------------------------ *)
(* Description and validation *)

type layer = {
  l_name : string;
  l_fmt : Desc.t;
  l_select : (string * int64 list) option;
  l_via : string;
}

type t = { s_name : string; s_layers : layer array }

let layer ?name ?(via = "payload") ?select (fmt : Desc.t) =
  {
    l_name = (match name with Some n -> n | None -> fmt.Desc.format_name);
    l_fmt = fmt;
    l_select = select;
    l_via = via;
  }

let errf fmt = Printf.ksprintf (fun s -> Result.Error s) fmt

(* Width/endianness of an integer-ish field usable as demux or tag. *)
let int_field_shape (f : Desc.field) =
  match f.ty with
  | Desc.Uint { bits; endian }
  | Desc.Const { bits; endian; _ }
  | Desc.Enum { bits; endian; _ }
  | Desc.Computed { bits; endian; _ } ->
    Some (bits, endian)
  | Desc.Bool_flag -> Some (1, Desc.Big)
  | _ -> None

let fits_bits v bits =
  Int64.compare v 0L >= 0
  && (bits >= 63 || Int64.compare v (Int64.shift_left 1L bits) < 0)

let validate_layer ~terminal (l : layer) =
  let ( let* ) = Result.bind in
  let fmt = l.l_fmt in
  let* () =
    match (terminal, l.l_select) with
    | false, None ->
      errf "layer %s: a non-terminal layer needs a demux edge (~select)" l.l_name
    | true, Some _ ->
      errf "layer %s: the terminal layer cannot declare a demux edge" l.l_name
    | _ -> Ok ()
  in
  let* () =
    match l.l_select with
    | None -> Ok ()
    | Some (field, values) -> (
      match Desc.find_field fmt field with
      | None -> errf "layer %s: no demux field %S" l.l_name field
      | Some f -> (
        match int_field_shape f with
        | None -> errf "layer %s: demux field %S is not an integer" l.l_name field
        | Some (bits, _) when bits > 62 ->
          errf "layer %s: demux field %S is wider than 62 bits" l.l_name field
        | Some (bits, _) ->
          if values = [] then
            errf "layer %s: demux field %S has no accepted values" l.l_name field
          else (
            match List.find_opt (fun v -> not (fits_bits v bits)) values with
            | Some v ->
              errf "layer %s: demux value %Ld does not fit %S (%d bits)" l.l_name
                v field bits
            | None -> Ok ())))
  in
  if terminal then Ok ()
  else
    (* The via field must be the trailing remaining-bytes payload: that is
       what makes the inner window "the rest of this layer" on decode and
       lets encode splice the inner bytes without a copy. *)
    match List.rev fmt.Desc.fields with
    | last :: _
      when String.equal last.name l.l_via
           && (match last.ty with Desc.Bytes Desc.Len_remaining -> true | _ -> false)
      ->
      Ok ()
    | _ ->
      errf
        "layer %s: via field %S must be the trailing `bytes remaining` payload"
        l.l_name l.l_via

let v ~name layers =
  let ( let* ) = Result.bind in
  let n = List.length layers in
  let* () = if n < 2 then errf "stack %s: needs at least two layers" name else Ok () in
  let* () =
    let names = List.map (fun l -> l.l_name) layers in
    if List.length (List.sort_uniq compare names) <> n then
      errf "stack %s: duplicate layer names" name
    else Ok ()
  in
  let rec go i = function
    | [] -> Ok ()
    | l :: rest ->
      let* () = validate_layer ~terminal:(rest = []) l in
      go (i + 1) rest
  in
  let* () = go 0 layers in
  Ok { s_name = name; s_layers = Array.of_list layers }

let name t = t.s_name
let layer_names t = Array.to_list (Array.map (fun l -> l.l_name) t.s_layers)
let layer_format t i = t.s_layers.(i).l_fmt
let layer_via t i = t.s_layers.(i).l_via
let layer_select t i = t.s_layers.(i).l_select

(* ------------------------------------------------------------------ *)
(* Variant flattening: a terminal format shaped "linear prefix + one
   trailing Variant over a fixed-offset tag" becomes one synthetic linear
   format per case (prefix @ case body), each hot-compiled on its own.
   Dispatch is a raw tag peek; the chosen plan then revalidates the whole
   window from the start, so the verdict is exactly [View.decode]'s:
   prefix checks, enum exhaustiveness on the tag, unknown-tag rejection
   (no case, no default) and the global trailing check all live in the
   flattened plans. *)

type flat_case = {
  fc_tag : int; (* matched tag value; -1 for the default arm *)
  fc_fmt : Desc.t;
}

type flattened = {
  fl_tag_off : int; (* bits, relative to the layer window *)
  fl_tag_bits : int;
  fl_tag_little : bool;
  fl_cases : flat_case list; (* default arm last when present *)
  fl_has_default : bool;
}

let flatten_terminal (fmt : Desc.t) =
  let ( let* ) = Result.bind in
  let* prefix, tag, cases, default =
    match List.rev fmt.Desc.fields with
    | { ty = Desc.Variant { tag; cases; default }; _ } :: rev_prefix ->
      Ok (List.rev rev_prefix, tag, cases, default)
    | _ -> errf "not a trailing-variant format"
  in
  let* tag_bits, tag_endian =
    match List.find_opt (fun (f : Desc.field) -> String.equal f.name tag) prefix with
    | None -> errf "variant tag %S is not a prefix field" tag
    | Some f -> (
      match int_field_shape f with
      | Some (bits, endian) when bits <= 62 -> Ok (bits, endian)
      | _ -> errf "variant tag %S is not a narrow integer" tag)
  in
  let* tag_off, _ = Sizing.fixed_field_span fmt tag in
  let prefix_names = List.map (fun (f : Desc.field) -> f.name) prefix in
  let* () =
    let clash (sub : Desc.t) =
      List.find_opt
        (fun (f : Desc.field) -> List.mem f.name prefix_names)
        sub.Desc.fields
    in
    let bodies =
      List.map (fun (_, _, sub) -> sub) cases
      @ (match default with Some d -> [ d ] | None -> [])
    in
    match List.find_map clash bodies with
    | Some f -> errf "case field %S shadows a prefix field" f.name
    | None -> Ok ()
  in
  let flat cname sub =
    Desc.format
      (fmt.Desc.format_name ^ "/" ^ cname)
      (prefix @ sub.Desc.fields)
  in
  (* A case value outside [0, 2^tag_bits) can never equal a tag read from
     the wire; the interpreted decoder falls through to the default (or
     rejects) on such values, so dropping them from the dispatch table
     preserves the verdict. *)
  let matched =
    List.filter_map
      (fun (cname, v, sub) ->
        if fits_bits v tag_bits then
          Some { fc_tag = Int64.to_int v; fc_fmt = flat cname sub }
        else None)
      cases
  in
  let default_case =
    match default with
    | Some d -> [ { fc_tag = -1; fc_fmt = flat "default" d } ]
    | None -> []
  in
  Ok
    {
      fl_tag_off = tag_off;
      fl_tag_bits = tag_bits;
      fl_tag_little = (tag_endian = Desc.Little);
      fl_cases = matched @ default_case;
      fl_has_default = default <> None;
    }

(* ------------------------------------------------------------------ *)
(* The compiled plan *)

type engine =
  | E_hot (* y_hots.(0) is the whole layer *)
  | E_cases of {
      e_tag_off : int;
      e_tag_bits : int;
      e_tag_little : bool;
      e_tags : int array; (* tag per plan; -1 marks the default arm *)
      e_default : int; (* index of the default plan, or -1 *)
    }

type clayer = {
  y_name : string;
  y_fmt : Desc.t;
  y_engine : engine;
  y_hots : View.Hot.t array;
  y_case_fmts : Desc.t array; (* per-plan (flattened) formats *)
  y_edges : int array; (* accepted demux values; [||] on the terminal *)
  y_edges64 : int64 list;
  y_demux : string;
  y_demux_slot : int; (* register of the demux field; -1 on the terminal *)
  y_via : string;
  y_via_slot : int; (* span slot of the payload; -1 on the terminal *)
  y_patches : (string * Desc.expr * Emit.patcher) array;
      (* Msg_len-derived fields to back-patch after splicing *)
  y_emit : Emit.t;
  mutable y_off : int; (* byte window of the last accepting run *)
  mutable y_len : int;
  mutable y_case : int; (* index into y_hots of the plan that ran *)
}

type reg = { r_layer : int; r_slots : int array }

type plan = {
  p_stack : t;
  p_layers : clayer array;
  p_regs : (string * reg) list;
}

let stack p = p.p_stack

let split_qualified s =
  match String.index_opt s '.' with
  | Some i when i > 0 && i < String.length s - 1 ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | _ -> errf "stack field %S must be qualified as layer.field" s

(* Does the expression mention the message length or the payload span?
   Those are the only inputs that change when inner layers are spliced
   into the via field, so only such computed fields need back-patching. *)
let rec mentions_splice ~via (e : Desc.expr) =
  match e with
  | Desc.Msg_len -> true
  | Desc.Byte_len n | Desc.Field n -> String.equal n via
  | Desc.Const _ -> false
  | Desc.Add (a, b) | Desc.Sub (a, b) | Desc.Mul (a, b) | Desc.Div (a, b) ->
    mentions_splice ~via a || mentions_splice ~via b

let rec msg_len_only (e : Desc.expr) =
  match e with
  | Desc.Msg_len | Desc.Const _ -> true
  | Desc.Field _ | Desc.Byte_len _ -> false
  | Desc.Add (a, b) | Desc.Sub (a, b) | Desc.Mul (a, b) | Desc.Div (a, b) ->
    msg_len_only a && msg_len_only b

exception Eval_fail of string

let rec eval_msg_len (e : Desc.expr) ~msg_len =
  match e with
  | Desc.Const v -> v
  | Desc.Msg_len -> Int64.of_int msg_len
  | Desc.Add (a, b) -> Int64.add (eval_msg_len a ~msg_len) (eval_msg_len b ~msg_len)
  | Desc.Sub (a, b) -> Int64.sub (eval_msg_len a ~msg_len) (eval_msg_len b ~msg_len)
  | Desc.Mul (a, b) -> Int64.mul (eval_msg_len a ~msg_len) (eval_msg_len b ~msg_len)
  | Desc.Div (a, b) ->
    let d = eval_msg_len b ~msg_len in
    if Int64.equal d 0L then raise (Eval_fail "division by zero in a back-patched length")
    else Int64.div (eval_msg_len a ~msg_len) d
  | Desc.Field _ | Desc.Byte_len _ ->
    raise (Eval_fail "field reference in a back-patched length")

(* Back-patch slots of a carrier layer: every computed field whose value
   moves when the payload grows must be re-derivable from the final layer
   length alone, and no checksum may cover the payload (its delta would
   not be incremental).  Checked once at compile. *)
let compile_patches (l : layer) =
  let ( let* ) = Result.bind in
  let fmt = l.l_fmt in
  let via = l.l_via in
  let* () =
    let bad (f : Desc.field) =
      match f.ty with
      | Desc.Checksum { region = Desc.Region_message; _ }
      | Desc.Checksum { region = Desc.Region_rest; _ } ->
        true
      | Desc.Checksum { region = Desc.Region_span (a, b); _ } ->
        String.equal a via || String.equal b via
      | _ -> false
    in
    match List.find_opt bad fmt.Desc.fields with
    | Some f ->
      errf "layer %s: checksum %S covers the payload; cannot back-patch" l.l_name
        f.name
    | None -> Ok ()
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (f : Desc.field) :: rest -> (
      match f.ty with
      | Desc.Computed { expr; _ } when mentions_splice ~via expr ->
        if not (msg_len_only expr) then
          errf
            "layer %s: computed field %S mixes Msg_len with field references; \
             cannot back-patch"
            l.l_name f.name
        else
          let* p = Emit.patcher ~computed:true fmt f.name in
          go ((f.name, expr, p) :: acc) rest
      | _ -> go acc rest)
  in
  go [] fmt.Desc.fields

let compile ?(demand = []) (t : t) =
  let ( let* ) = Result.bind in
  let nlayers = Array.length t.s_layers in
  (* Qualified demands, grouped per layer. *)
  let* grouped =
    let tbl = Array.make nlayers [] in
    let rec go = function
      | [] -> Ok tbl
      | q :: rest ->
        let* lname, fname = split_qualified q in
        let idx = ref (-1) in
        Array.iteri (fun i l -> if String.equal l.l_name lname then idx := i) t.s_layers;
        if !idx < 0 then errf "stack %s: no layer %S (in demand %S)" t.s_name lname q
        else begin
          tbl.(!idx) <- fname :: tbl.(!idx);
          go rest
        end
    in
    go demand
  in
  let* layers =
    let rec go i acc =
      if i >= nlayers then Ok (Array.of_list (List.rev acc))
      else begin
        let l = t.s_layers.(i) in
        let terminal = i = nlayers - 1 in
        let lay_demand = List.sort_uniq compare grouped.(i) in
        let* patches = if terminal then Ok [] else compile_patches l in
        let* engine, hots, case_fmts =
          if not terminal then begin
            let demux, _ = Option.get l.l_select in
            match
              View.Hot.compile
                ~demand:(List.sort_uniq compare (demux :: lay_demand))
                ~span_demand:[ l.l_via ] l.l_fmt
            with
            | Ok h -> Ok (E_hot, [| h |], [| l.l_fmt |])
            | Error e ->
              errf "layer %s is not fusable (%s); carrier layers must be linear"
                l.l_name e
          end
          else
            match View.Hot.compile ~demand:lay_demand l.l_fmt with
            | Ok h -> Ok (E_hot, [| h |], [| l.l_fmt |])
            | Error e_linear -> (
              match flatten_terminal l.l_fmt with
              | Error e_flat ->
                errf "layer %s is not fusable: %s; variant flattening: %s"
                  l.l_name e_linear e_flat
              | Ok fl ->
                let rec comp acc = function
                  | [] -> Ok (List.rev acc)
                  | fc :: rest ->
                    let case_demand =
                      List.filter
                        (fun d ->
                          List.exists
                            (fun (f : Desc.field) -> String.equal f.name d)
                            fc.fc_fmt.Desc.fields)
                        lay_demand
                    in
                    let* h = View.Hot.compile ~demand:case_demand fc.fc_fmt in
                    comp ((fc, h) :: acc) rest
                in
                let* compiled = comp [] fl.fl_cases in
                let hots = Array.of_list (List.map snd compiled) in
                let fmts =
                  Array.of_list (List.map (fun (fc, _) -> fc.fc_fmt) compiled)
                in
                let tags =
                  Array.of_list (List.map (fun (fc, _) -> fc.fc_tag) compiled)
                in
                let default =
                  if fl.fl_has_default then Array.length tags - 1 else -1
                in
                Ok
                  ( E_cases
                      {
                        e_tag_off = fl.fl_tag_off;
                        e_tag_bits = fl.fl_tag_bits;
                        e_tag_little = fl.fl_tag_little;
                        e_tags = tags;
                        e_default = default;
                      },
                    hots,
                    fmts ))
        in
        let demux, edges64 =
          match l.l_select with Some (d, vs) -> (d, vs) | None -> ("", [])
        in
        let cl =
          {
            y_name = l.l_name;
            y_fmt = l.l_fmt;
            y_engine = engine;
            y_hots = hots;
            y_case_fmts = case_fmts;
            y_edges = Array.of_list (List.map Int64.to_int edges64);
            y_edges64 = edges64;
            y_demux = demux;
            y_demux_slot =
              (if terminal then -1 else View.Hot.demand_slot hots.(0) demux);
            y_via = l.l_via;
            y_via_slot = (if terminal then -1 else View.Hot.span_slot hots.(0) l.l_via);
            y_patches = Array.of_list patches;
            y_emit = Emit.create l.l_fmt;
            y_off = 0;
            y_len = 0;
            y_case = 0;
          }
        in
        go (i + 1) (cl :: acc)
      end
    in
    go 0 []
  in
  (* Register directory: every demanded "layer.field" resolves once to a
     per-case slot array (-1 where the case does not carry the field). *)
  let* regs =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | q :: rest ->
        let* lname, fname = split_qualified q in
        let i =
          let r = ref (-1) in
          Array.iteri (fun j l -> if String.equal l.y_name lname then r := j) layers;
          !r
        in
        let cl = layers.(i) in
        let slots =
          Array.map
            (fun h ->
              match View.Hot.demand_slot h fname with
              | s -> s
              | exception Invalid_argument _ -> -1)
            cl.y_hots
        in
        if Array.for_all (fun s -> s < 0) slots then
          errf "stack %s: demanded field %S is not extractable in any case" t.s_name q
        else go ((q, { r_layer = i; r_slots = slots }) :: acc) rest
    in
    go [] (List.sort_uniq compare demand)
  in
  Ok { p_stack = t; p_layers = layers; p_regs = regs }

(* ------------------------------------------------------------------ *)
(* Fused decode *)

let rec run_layers p (data : string) i off len =
  let y = Array.unsafe_get p.p_layers i in
  let case =
    match y.y_engine with
    | E_hot -> if View.Hot.run_window y.y_hots.(0) ~off ~len data then 0 else -1
    | E_cases c ->
      if len * 8 < c.e_tag_off + c.e_tag_bits then -1
      else begin
        let tag =
          View.Hot.read_scalar data ~bit_off:((off * 8) + c.e_tag_off)
            ~bits:c.e_tag_bits ~little:c.e_tag_little
        in
        let tags = c.e_tags in
        let n = Array.length tags in
        let j = ref 0 in
        while !j < n && Array.unsafe_get tags !j <> tag do
          incr j
        done;
        let j = if !j < n then !j else c.e_default in
        if j < 0 then -1
        else if View.Hot.run_window (Array.unsafe_get y.y_hots j) ~off ~len data
        then j
        else -1
      end
  in
  if case < 0 then false
  else begin
    y.y_off <- off;
    y.y_len <- len;
    y.y_case <- case;
    if i = Array.length p.p_layers - 1 then true
    else begin
      let h = Array.unsafe_get y.y_hots 0 in
      let d = View.Hot.get h y.y_demux_slot in
      let edges = y.y_edges in
      let n = Array.length edges in
      let j = ref 0 in
      while !j < n && Array.unsafe_get edges !j <> d do
        incr j
      done;
      if !j >= n then false
      else begin
        let so = View.Hot.span_off h y.y_via_slot in
        let sl = View.Hot.span_len h y.y_via_slot in
        if so land 7 <> 0 || sl land 7 <> 0 then false
        else run_layers p data (i + 1) (so lsr 3) (sl lsr 3)
      end
    end
  end

let run_window p ~off ~len (data : string) =
  if off < 0 || len < 0 || off + len > String.length data then
    invalid_arg "Stack.run: window out of bounds";
  run_layers p data 0 off len

let run p ?(off = 0) ?len data =
  let len = match len with None -> String.length data - off | Some l -> l in
  run_window p ~off ~len data

let reg p q =
  match List.find_opt (fun (n, _) -> String.equal n q) p.p_regs with
  | Some (_, r) -> Ok r
  | None -> errf "stack %s: field %S was not demanded at compile" p.p_stack.s_name q

let reg_get p (r : reg) =
  let y = Array.unsafe_get p.p_layers r.r_layer in
  let slot = Array.unsafe_get r.r_slots y.y_case in
  if slot < 0 then -1
  else View.Hot.get (Array.unsafe_get y.y_hots y.y_case) slot

let layer_count p = Array.length p.p_layers

let layer_index p lname =
  let r = ref None in
  Array.iteri
    (fun i y -> if String.equal y.y_name lname && !r = None then r := Some i)
    p.p_layers;
  !r

let layer_fmt p i = p.p_layers.(i).y_fmt
let layer_off p i = p.p_layers.(i).y_off
let layer_len p i = p.p_layers.(i).y_len

(* ------------------------------------------------------------------ *)
(* Fused encode with innermost-out back-patching *)

let set_field_value (v : Value.t) name x =
  match v with
  | Value.Record fs ->
    if List.exists (fun (n, _) -> String.equal n name) fs then
      Value.Record
        (List.map (fun (n, fv) -> if String.equal n name then (n, x) else (n, fv)) fs)
    else Value.Record (fs @ [ (name, x) ])
  | other -> other

let check_demux_value (y : clayer) (v : Value.t) =
  let found = try Value.find v y.y_demux with Invalid_argument _ -> None in
  match found with
  | Some (Value.Int dv) ->
    if List.exists (Int64.equal dv) y.y_edges64 then Ok ()
    else
      errf "layer %s: %s = %Ld does not select the next layer" y.y_name y.y_demux dv
  | _ -> Ok () (* constants and omitted fields are the encoder's problem *)

(* [Trunc] (the destination buffer is too small) is kept structural so
   [encode] can grow and retry without parsing error strings. *)
type enc_err = Trunc | Msg of string

let encode_into_impl p ~off buf (values : Value.t array) =
  let ( let* ) = Result.bind in
  let str e = Result.map_error (fun m -> Msg m) e in
  let nlayers = Array.length p.p_layers in
  let* () =
    if Array.length values <> nlayers then
      str
        (errf "stack %s: expected %d layer values, got %d" p.p_stack.s_name nlayers
           (Array.length values))
    else Ok ()
  in
  let offs = Array.make nlayers 0 in
  (* Headers outermost-first, each written once at its final offset: a
     carrier encoded with an empty payload is exactly its header bytes
     (the via field is the trailing remaining-bytes payload). *)
  let rec write i cursor =
    if i >= nlayers then Ok cursor
    else if cursor > Bytes.length buf then Error Trunc
    else begin
      let y = p.p_layers.(i) in
      let terminal = i = nlayers - 1 in
      let* () = if terminal then Ok () else str (check_demux_value y values.(i)) in
      let v =
        if terminal then values.(i)
        else set_field_value values.(i) y.y_via (Value.Bytes "")
      in
      match Emit.encode_into y.y_emit ~off:cursor buf v with
      | Error (Codec.Io { error = Netdsl_util.Bitio.Truncated _; _ }) -> Error Trunc
      | Error e -> Error (Msg (Printf.sprintf "layer %s: %s" y.y_name (Codec.error_to_string e)))
      | Ok len ->
        offs.(i) <- cursor;
        write (i + 1) (cursor + len)
    end
  in
  let* endpos = write 0 off in
  let total = endpos - off in
  (* Back-patch derived lengths innermost-out; the patcher repairs any
     covering Internet checksum incrementally. *)
  let rec patch i =
    if i < 0 then Ok total
    else begin
      let y = p.p_layers.(i) in
      let llen = endpos - offs.(i) in
      let rec slots j =
        if j >= Array.length y.y_patches then Ok ()
        else begin
          let fname, expr, pa = y.y_patches.(j) in
          match eval_msg_len expr ~msg_len:llen with
          | exception Eval_fail reason ->
            Error (Msg (Printf.sprintf "layer %s: %s: %s" y.y_name fname reason))
          | v -> (
            match Emit.patch_window pa ~off:offs.(i) ~len:llen buf v with
            | Error e ->
              Error
                (Msg
                   (Printf.sprintf "layer %s: back-patch %s: %s" y.y_name fname
                      (Codec.error_to_string e)))
            | Ok () -> slots (j + 1))
        end
      in
      let* () = slots 0 in
      patch (i - 1)
    end
  in
  patch (nlayers - 2)

let encode_into p ?(off = 0) buf values =
  match encode_into_impl p ~off buf values with
  | Ok n -> Ok n
  | Error Trunc -> errf "stack %s: destination buffer is too small" p.p_stack.s_name
  | Error (Msg m) -> Error m

let encode p values =
  let rec go size =
    if size > 1 lsl 26 then errf "stack encode: message exceeds 64 MiB"
    else
      let buf = Bytes.create size in
      match encode_into_impl p ~off:0 buf values with
      | Ok len -> Ok (Bytes.sub_string buf 0 len)
      | Error Trunc -> go (size * 4)
      | Error (Msg m) -> Error m
  in
  go 1024

(* The naive reference: innermost-first, every enclosing layer re-carries
   (and re-copies) the grown payload through its full encoder.  This is
   the baseline E17 prices and the byte-for-byte witness for [encode]. *)
let encode_seq p (values : Value.t array) =
  let ( let* ) = Result.bind in
  let nlayers = Array.length p.p_layers in
  let* () =
    if Array.length values <> nlayers then
      errf "stack %s: expected %d layer values, got %d" p.p_stack.s_name nlayers
        (Array.length values)
    else Ok ()
  in
  let rec go i inner =
    if i < 0 then Ok inner
    else begin
      let y = p.p_layers.(i) in
      let terminal = i = nlayers - 1 in
      let* () = if terminal then Ok () else check_demux_value y values.(i) in
      let v =
        if terminal then values.(i)
        else set_field_value values.(i) y.y_via (Value.Bytes inner)
      in
      match Emit.encode y.y_emit v with
      | Error e -> errf "layer %s: %s" y.y_name (Codec.error_to_string e)
      | Ok s -> go (i - 1) s
    end
  in
  go (nlayers - 1) ""

(* ------------------------------------------------------------------ *)
(* Sequential reference decode *)

module Seq = struct
  type seq = {
    q_plan : plan;
    q_views : View.t array;
    q_offs : int array;
    q_lens : int array;
  }

  type t = seq

  let create p =
    let n = Array.length p.p_layers in
    {
      q_plan = p;
      q_views = Array.map (fun y -> View.create y.y_fmt) p.p_layers;
      q_offs = Array.make n 0;
      q_lens = Array.make n 0;
    }

  let decode q ?(off = 0) ?len data =
    let len = match len with None -> String.length data - off | Some l -> l in
    let layers = q.q_plan.p_layers in
    let n = Array.length layers in
    let rec go i off len =
      let y = layers.(i) in
      let view = q.q_views.(i) in
      match View.decode view ~off ~len data with
      | Error e -> errf "layer %s: %s" y.y_name (Codec.error_to_string e)
      | Ok () ->
        q.q_offs.(i) <- off;
        q.q_lens.(i) <- len;
        if i = n - 1 then Ok ()
        else (
          match View.find_int view y.y_demux with
          | None -> errf "layer %s: demux field %S missing" y.y_name y.y_demux
          | Some d ->
            if not (List.exists (Int64.equal d) y.y_edges64) then
              errf "layer %s: %s = %Ld selects no next layer" y.y_name y.y_demux d
            else (
              match View.find_span view y.y_via with
              | None -> errf "layer %s: payload field %S missing" y.y_name y.y_via
              | Some (so, sl) ->
                if so land 7 <> 0 || sl land 7 <> 0 then
                  errf "layer %s: payload span is not byte-aligned" y.y_name
                else go (i + 1) (so lsr 3) (sl lsr 3)))
    in
    go 0 off len

  let view q i = q.q_views.(i)
  let layer_off q i = q.q_offs.(i)
  let layer_len q i = q.q_lens.(i)
end
