module M = Machine

(* A transition candidate compiled into one (state, event) slot.  Guards
   and actions are closures over the flat register file; [c_index] points
   back into [p_transitions] for label reconstruction. *)
type candidate = {
  c_guard : int array -> bool;
  c_action : int array -> unit;
  c_dst : int;
  c_index : int;
}

type plan = {
  p_machine : M.t;
  p_states : string array;
  p_events : string array;
  p_regs : string array;
  p_reg_init : int array;
  p_state_ids : (string, int) Hashtbl.t;
  p_event_ids : (string, int) Hashtbl.t;
  p_reg_ids : (string, int) Hashtbl.t;
  p_initial : int;
  p_accepting : bool array;
  p_transitions : M.transition array; (* declaration order *)
  p_slots : candidate array array; (* state_id * n_events + event_id *)
  p_timers : int array; (* per-transition packed timer word, see below *)
  p_has_timers : bool;
}

(* Timer ops packed into one native int so the engine's post-fire check is
   an array read and a comparison against 0: [timer_none] = 0 (no op),
   [timer_cancel] = -1, and an arm is [(after_ms lsl 20) lor fire_event_id]
   — always positive because validation bounds after_ms >= 1 and machines
   never intern 2^20 events. *)
let timer_none = 0
let timer_cancel = -1
let timer_after_ms w = w lsr 20
let timer_event w = w land 0xFFFFF

type instance = {
  i_plan : plan;
  mutable i_state : int;
  i_regs : int array;
  mutable i_last : int;
  (* the engine's timer cache.  [i_timer] is the wheel entry last armed
     for this instance's flow (see [Engine.Wheel.arm_hint]) — a hint,
     never trusted, so staleness is harmless.  [i_tword]/[i_tnow] record
     the timer word and wheel tick of the last arm: when both match the
     current re-arm the deadline is bit-identical and the engine skips
     the wheel entirely — these two the engine MUST keep truthful, by
     clearing on expiry and cancel. *)
  mutable i_timer : int;
  mutable i_tword : int;
  mutable i_tnow : int;
}

type verdict = Fired | Unknown_event | Unhandled | Nondeterministic

(* ------------------------------------------------------------------ *)
(* Lowering guards and actions.  Constant subtrees fold at compile time
   so a guard like [True] or [3 < 5] costs nothing per event. *)

type comp = Const of int | Dyn of (int array -> int)

let force = function Const n -> (fun _ -> n) | Dyn f -> f

let lift2 op a b =
  match (a, b) with
  | Const x, Const y -> Const (op x y)
  | _ ->
    let fa = force a and fb = force b in
    Dyn (fun regs -> op (fa regs) (fb regs))

let wrap_mod a b =
  if b = 0 then invalid_arg "Machine.eval_expr: modulo by zero"
  else ((a mod b) + b) mod b

let rec compile_expr reg_ids : M.expr -> comp = function
  | M.Int n -> Const n
  | M.Reg r ->
    let i = Hashtbl.find reg_ids r in
    Dyn (fun regs -> Array.unsafe_get regs i)
  | M.Add (a, b) -> lift2 ( + ) (compile_expr reg_ids a) (compile_expr reg_ids b)
  | M.Sub (a, b) -> lift2 ( - ) (compile_expr reg_ids a) (compile_expr reg_ids b)
  | M.Mul (a, b) -> lift2 ( * ) (compile_expr reg_ids a) (compile_expr reg_ids b)
  | M.Mod (a, b) -> lift2 wrap_mod (compile_expr reg_ids a) (compile_expr reg_ids b)

type gcomp = Gconst of bool | Gdyn of (int array -> bool)

let gforce = function Gconst b -> (fun _ -> b) | Gdyn f -> f

let gcmp op a b =
  match (a, b) with
  | Const x, Const y -> Gconst (op x y)
  | _ ->
    let fa = force a and fb = force b in
    Gdyn (fun regs -> op (fa regs) (fb regs))

let rec compile_cond reg_ids : M.cond -> gcomp = function
  | M.True -> Gconst true
  | M.False -> Gconst false
  | M.Eq (a, b) -> gcmp ( = ) (compile_expr reg_ids a) (compile_expr reg_ids b)
  | M.Ne (a, b) -> gcmp ( <> ) (compile_expr reg_ids a) (compile_expr reg_ids b)
  | M.Lt (a, b) -> gcmp ( < ) (compile_expr reg_ids a) (compile_expr reg_ids b)
  | M.Le (a, b) -> gcmp ( <= ) (compile_expr reg_ids a) (compile_expr reg_ids b)
  | M.Not c -> (
    match compile_cond reg_ids c with
    | Gconst b -> Gconst (not b)
    | Gdyn f -> Gdyn (fun regs -> not (f regs)))
  | M.And (a, b) ->
    (* Short-circuit like the interpreter; [&&] in the closure keeps it. *)
    (match (compile_cond reg_ids a, compile_cond reg_ids b) with
    | Gconst false, _ -> Gconst false
    | Gconst true, g -> g
    | g, Gconst true -> g
    | Gdyn fa, Gconst false -> Gdyn (fun regs -> ignore (fa regs); false)
    | Gdyn fa, Gdyn fb -> Gdyn (fun regs -> fa regs && fb regs))
  | M.Or (a, b) -> (
    match (compile_cond reg_ids a, compile_cond reg_ids b) with
    | Gconst true, _ -> Gconst true
    | Gconst false, g -> g
    | g, Gconst false -> g
    | Gdyn fa, Gconst true -> Gdyn (fun regs -> ignore (fa regs); true)
    | Gdyn fa, Gdyn fb -> Gdyn (fun regs -> fa regs || fb regs))

let no_action _ = ()

(* Actions run left to right over the evolving register file, each
   assignment wrapping into the register's domain — exactly
   [Machine.apply]'s fold. *)
let compile_actions reg_ids domains actions =
  let one (M.Assign (r, e)) =
    let i = Hashtbl.find reg_ids r in
    let d = domains.(i) in
    match compile_expr reg_ids e with
    | Const n ->
      let v = wrap_mod n d in
      fun regs -> Array.unsafe_set regs i v
    | Dyn f -> fun regs -> Array.unsafe_set regs i (wrap_mod (f regs) d)
  in
  match List.map one actions with
  | [] -> no_action
  | [ f ] -> f
  | fs -> fun regs -> List.iter (fun f -> f regs) fs

(* ------------------------------------------------------------------ *)

let intern names =
  let arr = Array.of_list names in
  let tbl = Hashtbl.create (max 4 (Array.length arr)) in
  Array.iteri (fun i n -> Hashtbl.add tbl n i) arr;
  (arr, tbl)

let compile m =
  let m = M.validate_exn m in
  let p_states, p_state_ids = intern m.M.states in
  let p_events, p_event_ids = intern m.M.events in
  let p_regs, p_reg_ids = intern (List.map (fun r -> r.M.reg_name) m.M.registers) in
  let p_reg_init = Array.of_list (List.map (fun r -> r.M.init) m.M.registers) in
  let domains = Array.of_list (List.map (fun r -> r.M.domain) m.M.registers) in
  let p_transitions = Array.of_list m.M.transitions in
  let n_states = Array.length p_states and n_events = Array.length p_events in
  (* Build the dense slots, keeping candidates in declaration order so
     nondeterminism reports the same labels in the same order as the
     interpreter's transition-list scan. *)
  let buckets = Array.make (n_states * n_events) [] in
  Array.iteri
    (fun idx (t : M.transition) ->
      let s = Hashtbl.find p_state_ids t.M.src in
      let e = Hashtbl.find p_event_ids t.M.event in
      let c =
        {
          c_guard = gforce (compile_cond p_reg_ids t.M.guard);
          c_action = compile_actions p_reg_ids domains t.M.actions;
          c_dst = Hashtbl.find p_state_ids t.M.dst;
          c_index = idx;
        }
      in
      buckets.((s * n_events) + e) <- c :: buckets.((s * n_events) + e))
    p_transitions;
  let p_slots = Array.map (fun cs -> Array.of_list (List.rev cs)) buckets in
  let p_accepting = Array.make n_states false in
  List.iter (fun s -> p_accepting.(Hashtbl.find p_state_ids s) <- true) m.M.accepting;
  let p_timers =
    Array.map
      (fun (t : M.transition) ->
        match t.M.timer with
        | M.No_timer -> timer_none
        | M.Cancel_timer -> timer_cancel
        | M.Arm_timer { after_ms; fire } ->
          (after_ms lsl 20) lor Hashtbl.find p_event_ids fire)
      p_transitions
  in
  {
    p_machine = m;
    p_states;
    p_events;
    p_regs;
    p_reg_init;
    p_state_ids;
    p_event_ids;
    p_reg_ids;
    p_initial = Hashtbl.find p_state_ids m.M.initial;
    p_accepting;
    p_transitions;
    p_slots;
    p_timers;
    p_has_timers = Array.exists (fun w -> w <> timer_none) p_timers;
  }

let machine p = p.p_machine
let n_states p = Array.length p.p_states
let n_events p = Array.length p.p_events
let n_registers p = Array.length p.p_regs

let id_in tbl name = match Hashtbl.find_opt tbl name with Some i -> i | None -> -1
let event_id p name = id_in p.p_event_ids name
let state_id p name = id_in p.p_state_ids name
let register_id p name = id_in p.p_reg_ids name
let event_name p i = p.p_events.(i)
let state_name p i = p.p_states.(i)
let register_name p i = p.p_regs.(i)
let transition p i = p.p_transitions.(i)
let timer_word p i = Array.unsafe_get p.p_timers i
let has_timers p = p.p_has_timers

let instance p =
  {
    i_plan = p;
    i_state = p.p_initial;
    i_regs = Array.copy p.p_reg_init;
    i_last = -1;
    i_timer = -1;
    i_tword = 0;
    i_tnow = 0;
  }

let plan_of i = i.i_plan

let reset i =
  i.i_state <- i.i_plan.p_initial;
  Array.blit i.i_plan.p_reg_init 0 i.i_regs 0 (Array.length i.i_regs);
  i.i_last <- -1

let fire_id i ev =
  let p = i.i_plan in
  let n_events = Array.length p.p_events in
  if ev < 0 || ev >= n_events then Unknown_event
  else begin
    let slot = Array.unsafe_get p.p_slots ((i.i_state * n_events) + ev) in
    let n = Array.length slot in
    let regs = i.i_regs in
    let chosen = ref (-1) in
    let multiple = ref false in
    for k = 0 to n - 1 do
      if (Array.unsafe_get slot k).c_guard regs then
        if !chosen >= 0 then multiple := true else chosen := k
    done;
    if !multiple then Nondeterministic
    else if !chosen < 0 then Unhandled
    else begin
      let c = Array.unsafe_get slot !chosen in
      c.c_action regs;
      i.i_state <- c.c_dst;
      i.i_last <- c.c_index;
      Fired
    end
  end

let fire i name = fire_id i (event_id i.i_plan name)

let state i = i.i_state
let state_name_of i = i.i_plan.p_states.(i.i_state)
let in_accepting i = i.i_plan.p_accepting.(i.i_state)

let register i r =
  if r < 0 || r >= Array.length i.i_regs then
    invalid_arg (Printf.sprintf "Step.register: no register with id %d" r)
  else i.i_regs.(r)

let register_by_name i name =
  match Hashtbl.find_opt i.i_plan.p_reg_ids name with
  | Some r -> i.i_regs.(r)
  | None -> invalid_arg (Printf.sprintf "Step.register_by_name: unknown register %S" name)

let last_transition i = i.i_last
let timer_hint i = i.i_timer
let timer_unchanged i ~word ~wnow = word = i.i_tword && wnow = i.i_tnow

let note_timer_armed i ~hint ~word ~wnow =
  i.i_timer <- hint;
  i.i_tword <- word;
  i.i_tnow <- wnow

let clear_timer_armed i = i.i_tword <- 0

let config i =
  let p = i.i_plan in
  {
    M.state = p.p_states.(i.i_state);
    regs = Array.to_list (Array.mapi (fun r v -> (p.p_regs.(r), v)) i.i_regs);
  }

let enabled_labels i name =
  let p = i.i_plan in
  match Hashtbl.find_opt p.p_event_ids name with
  | None -> []
  | Some ev ->
    let slot = p.p_slots.((i.i_state * Array.length p.p_events) + ev) in
    Array.to_list slot
    |> List.filter (fun c -> c.c_guard i.i_regs)
    |> List.map (fun c -> p.p_transitions.(c.c_index).M.t_label)

let describe i name = function
  | Fired -> (
    match i.i_last with
    | -1 -> Printf.sprintf "event %S fired" name
    | t ->
      Printf.sprintf "event %S fired transition %s" name
        i.i_plan.p_transitions.(t).M.t_label)
  | Unknown_event -> Printf.sprintf "unknown event %S" name
  | Unhandled ->
    Printf.sprintf "event %S is not handled in state %S" name (state_name_of i)
  | Nondeterministic ->
    Printf.sprintf "event %S enables several transitions: %s" name
      (String.concat ", " (enabled_labels i name))
