(** Protocol state machines as first-class values.

    This is the behavioural half of the DSL (§3.2(ii) of the paper): states,
    events and guarded transitions with bounded integer registers.  A
    machine is *data*, so the same definition is analysed statically
    ({!Analysis}), model-checked in composition with peers and channels
    ({!Model_check}), executed ({!Interp}), rendered ({!Dot}) and mined for
    behavioural test cases ({!Testgen}) — the paper's "same framework"
    requirement.

    Registers have finite domains (arithmetic wraps), which both matches
    protocol reality — sequence numbers are modular — and keeps every
    analysis decidable. *)

type expr =
  | Int of int
  | Reg of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Mod of expr * expr

type cond =
  | True
  | False
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type action = Assign of string * expr

type register = {
  reg_name : string;
  init : int;
  domain : int;  (** values live in [\[0, domain)]; assignment wraps *)
}

(** The declarative face of paper guarantee 4 (§3.4): a transition may arm
    a timeout — "in [after_ms], deliver event [fire] unless re-armed or
    cancelled" — or cancel the flow's pending one.  A flow holds at most
    one timer: arming replaces the previous deadline (the retransmission
    idiom), {!Cancel_timer} clears it.  The live engine serves these from
    a hierarchical timing wheel ([Engine.Wheel]); the simulator serves
    them from its event queue — the same declaration drives both. *)
type timer_op =
  | No_timer
  | Arm_timer of { after_ms : int; fire : string }
  | Cancel_timer

type transition = {
  t_label : string;  (** unique label, used in traces and coverage *)
  src : string;
  dst : string;
  event : string;
  guard : cond;
  actions : action list;
  timer : timer_op;
}

type t = {
  machine_name : string;
  states : string list;
  events : string list;
  registers : register list;
  initial : string;
  accepting : string list;
      (** consistent terminal states — the paper's "ends in a consistent
          state, either with success or with timeout" *)
  transitions : transition list;
  ignores : (string * string) list;
      (** (state, event) pairs deliberately unhandled; consumed by the
          completeness analysis *)
}

(** {1 Construction} *)

val machine :
  name:string ->
  states:string list ->
  events:string list ->
  ?registers:register list ->
  initial:string ->
  ?accepting:string list ->
  ?ignores:(string * string) list ->
  transition list ->
  t

val trans :
  ?label:string ->
  ?guard:cond ->
  ?actions:action list ->
  ?timer:timer_op ->
  src:string ->
  event:string ->
  dst:string ->
  unit ->
  transition
(** [label] defaults to ["src--event->dst"]; [timer] to {!No_timer}. *)

val max_timer_ms : int
(** Upper bound on {!Arm_timer}'s [after_ms] (validated): durations must
    pack into a native-int timer word alongside an event id. *)

val reg : ?init:int -> string -> domain:int -> register

(** {1 Configurations} *)

type env = (string * int) list
(** Register valuation, in declaration order. *)

type config = { state : string; regs : env }

val initial_config : t -> config

val eval_expr : env -> expr -> int
(** Raises [Invalid_argument] on an unknown register. *)

val eval_cond : env -> cond -> bool

val enabled : t -> config -> string -> transition list
(** Transitions enabled in [config] for the given event. *)

val apply : t -> config -> transition -> config
(** Fires a transition: moves to [dst] and applies actions (register
    assignments wrap into their domain).  Does not re-check the guard. *)

val step : t -> config -> string -> config list
(** All successor configurations for an event (empty when unhandled). *)

val config_equal : config -> config -> bool
val compare_config : config -> config -> int
val pp_config : Format.formatter -> config -> unit

(** {1 Soundness}

    The paper's soundness property — "only valid transitions can be
    executed" — holds by construction in the interpreter, {e provided} the
    machine itself is internally consistent.  {!validate} checks that. *)

type defect = { where : string; what : string }

val validate : t -> defect list
(** Structural defects: undeclared states/events/registers, duplicate
    labels, out-of-range initial values, empty domains. *)

val validate_exn : t -> t
(** Identity when {!validate} is empty; raises [Invalid_argument]
    otherwise. *)

val pp_defect : Format.formatter -> defect -> unit

(** {1 Queries} *)

val transitions_from : t -> string -> transition list
val find_transition : t -> string -> transition option
val is_accepting : t -> string -> bool
val has_event : t -> string -> bool
