type expr =
  | Int of int
  | Reg of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Mod of expr * expr

type cond =
  | True
  | False
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | Not of cond
  | And of cond * cond
  | Or of cond * cond

type action = Assign of string * expr

type register = { reg_name : string; init : int; domain : int }

type timer_op =
  | No_timer
  | Arm_timer of { after_ms : int; fire : string }
  | Cancel_timer

type transition = {
  t_label : string;
  src : string;
  dst : string;
  event : string;
  guard : cond;
  actions : action list;
  timer : timer_op;
}

type t = {
  machine_name : string;
  states : string list;
  events : string list;
  registers : register list;
  initial : string;
  accepting : string list;
  transitions : transition list;
  ignores : (string * string) list;
}

let machine ~name ~states ~events ?(registers = []) ~initial ?(accepting = [])
    ?(ignores = []) transitions =
  {
    machine_name = name;
    states;
    events;
    registers;
    initial;
    accepting;
    transitions;
    ignores;
  }

let trans ?label ?(guard = True) ?(actions = []) ?(timer = No_timer) ~src ~event
    ~dst () =
  let t_label =
    match label with Some l -> l | None -> Printf.sprintf "%s--%s->%s" src event dst
  in
  { t_label; src; dst; event; guard; actions; timer }

(* Durations must pack into a native-int timer word next to an event id
   (see [Step]); ~12 days at millisecond resolution is plenty. *)
let max_timer_ms = 0x3FFF_FFFF

let reg ?(init = 0) reg_name ~domain = { reg_name; init; domain }

type env = (string * int) list
type config = { state : string; regs : env }

let initial_config m =
  { state = m.initial; regs = List.map (fun r -> (r.reg_name, r.init)) m.registers }

let rec eval_expr env = function
  | Int n -> n
  | Reg r -> (
    match List.assoc_opt r env with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Machine.eval_expr: unknown register %S" r))
  | Add (a, b) -> eval_expr env a + eval_expr env b
  | Sub (a, b) -> eval_expr env a - eval_expr env b
  | Mul (a, b) -> eval_expr env a * eval_expr env b
  | Mod (a, b) ->
    let d = eval_expr env b in
    if d = 0 then invalid_arg "Machine.eval_expr: modulo by zero"
    else ((eval_expr env a mod d) + d) mod d

let rec eval_cond env = function
  | True -> true
  | False -> false
  | Eq (a, b) -> eval_expr env a = eval_expr env b
  | Ne (a, b) -> eval_expr env a <> eval_expr env b
  | Lt (a, b) -> eval_expr env a < eval_expr env b
  | Le (a, b) -> eval_expr env a <= eval_expr env b
  | Not c -> not (eval_cond env c)
  | And (a, b) -> eval_cond env a && eval_cond env b
  | Or (a, b) -> eval_cond env a || eval_cond env b

let enabled m config event =
  List.filter
    (fun t ->
      String.equal t.src config.state
      && String.equal t.event event
      && eval_cond config.regs t.guard)
    m.transitions

let domain_of m r =
  match List.find_opt (fun d -> String.equal d.reg_name r) m.registers with
  | Some d -> d.domain
  | None -> invalid_arg (Printf.sprintf "Machine.apply: unknown register %S" r)

let apply m config t =
  let regs =
    List.fold_left
      (fun regs (Assign (r, e)) ->
        let v = eval_expr regs e in
        let d = domain_of m r in
        let wrapped = ((v mod d) + d) mod d in
        (r, wrapped) :: List.remove_assoc r regs)
      config.regs t.actions
  in
  (* Keep register order canonical so that configs compare structurally. *)
  let regs =
    List.map (fun r -> (r.reg_name, List.assoc r.reg_name regs)) m.registers
  in
  { state = t.dst; regs }

let step m config event = List.map (apply m config) (enabled m config event)

let config_equal a b =
  String.equal a.state b.state
  && List.length a.regs = List.length b.regs
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && v1 = v2)
       a.regs b.regs

let compare_config a b =
  match String.compare a.state b.state with
  | 0 -> compare a.regs b.regs
  | c -> c

let pp_config ppf c =
  if c.regs = [] then Format.pp_print_string ppf c.state
  else
    Format.fprintf ppf "%s(%s)" c.state
      (String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) c.regs))

(* ------------------------------------------------------------------ *)
(* Structural validation *)

type defect = { where : string; what : string }

let pp_defect ppf d = Format.fprintf ppf "%s: %s" d.where d.what

let rec expr_regs = function
  | Int _ -> []
  | Reg r -> [ r ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) -> expr_regs a @ expr_regs b

let rec cond_regs = function
  | True | False -> []
  | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b) -> expr_regs a @ expr_regs b
  | Not c -> cond_regs c
  | And (a, b) | Or (a, b) -> cond_regs a @ cond_regs b

let validate m =
  let defects = ref [] in
  let add where what = defects := { where; what } :: !defects in
  let state_ok s = List.mem s m.states in
  let event_ok e = List.mem e m.events in
  let reg_ok r = List.exists (fun d -> String.equal d.reg_name r) m.registers in
  let dup what names =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun n ->
        if Hashtbl.mem seen n then add n (Printf.sprintf "duplicate %s" what)
        else Hashtbl.add seen n ())
      names
  in
  dup "state" m.states;
  dup "event" m.events;
  dup "register" (List.map (fun r -> r.reg_name) m.registers);
  dup "transition label" (List.map (fun t -> t.t_label) m.transitions);
  if m.states = [] then add m.machine_name "machine has no states";
  if not (state_ok m.initial) then
    add m.initial "initial state is not a declared state";
  List.iter
    (fun s -> if not (state_ok s) then add s "accepting state is not declared")
    m.accepting;
  List.iter
    (fun r ->
      if r.domain < 1 then
        add r.reg_name (Printf.sprintf "register domain %d is empty" r.domain);
      if r.init < 0 || (r.domain >= 1 && r.init >= r.domain) then
        add r.reg_name
          (Printf.sprintf "initial value %d outside domain [0, %d)" r.init r.domain))
    m.registers;
  List.iter
    (fun (s, e) ->
      if not (state_ok s) then add s "ignored pair names an undeclared state";
      if not (event_ok e) then add e "ignored pair names an undeclared event")
    m.ignores;
  List.iter
    (fun t ->
      if not (state_ok t.src) then
        add t.t_label (Printf.sprintf "source state %S not declared" t.src);
      if not (state_ok t.dst) then
        add t.t_label (Printf.sprintf "destination state %S not declared" t.dst);
      if not (event_ok t.event) then
        add t.t_label (Printf.sprintf "event %S not declared" t.event);
      List.iter
        (fun r ->
          if not (reg_ok r) then
            add t.t_label (Printf.sprintf "guard references unknown register %S" r))
        (cond_regs t.guard);
      List.iter
        (fun (Assign (r, e)) ->
          if not (reg_ok r) then
            add t.t_label (Printf.sprintf "action assigns unknown register %S" r);
          List.iter
            (fun r ->
              if not (reg_ok r) then
                add t.t_label
                  (Printf.sprintf "action expression references unknown register %S" r))
            (expr_regs e))
        t.actions;
      match t.timer with
      | No_timer | Cancel_timer -> ()
      | Arm_timer { after_ms; fire } ->
        if after_ms < 1 || after_ms > max_timer_ms then
          add t.t_label
            (Printf.sprintf "timeout duration %dms outside [1, %d]" after_ms
               max_timer_ms);
        if not (event_ok fire) then
          add t.t_label
            (Printf.sprintf "timeout fires undeclared event %S" fire))
    m.transitions;
  List.rev !defects

let validate_exn m =
  match validate m with
  | [] -> m
  | defects ->
    invalid_arg
      (Printf.sprintf "invalid machine %s:\n%s" m.machine_name
         (String.concat "\n"
            (List.map (fun d -> Format.asprintf "  %a" pp_defect d) defects)))

let transitions_from m s =
  List.filter (fun t -> String.equal t.src s) m.transitions

let find_transition m label =
  List.find_opt (fun t -> String.equal t.t_label label) m.transitions

let is_accepting m s = List.mem s m.accepting
let has_event m e = List.mem e m.events
