module M = Machine

type error =
  | Unknown_event of string
  | Unhandled of { state : string; event : string }
  | Nondeterministic of { event : string; labels : string list }

let pp_error ppf = function
  | Unknown_event e -> Format.fprintf ppf "unknown event %S" e
  | Unhandled { state; event } ->
    Format.fprintf ppf "event %S is not handled in state %S" event state
  | Nondeterministic { event; labels } ->
    Format.fprintf ppf "event %S enables several transitions: %s" event
      (String.concat ", " labels)

type t = {
  m : M.t;
  mutable cfg : M.config;
  mutable log : (string * M.transition) list; (* newest first *)
  on_transition : M.transition -> M.config -> unit;
  on_unhandled : string -> M.config -> unit;
}

let create ?(on_transition = fun _ _ -> ()) ?(on_unhandled = fun _ _ -> ()) m =
  let m = M.validate_exn m in
  { m; cfg = M.initial_config m; log = []; on_transition; on_unhandled }

(* A machine validated once, instantiated many times — one interpreter per
   flow (or per engine worker) without paying validation per instance. *)
type prepared = { p_machine : M.t; p_initial : M.config }

let prepare m =
  let m = M.validate_exn m in
  { p_machine = m; p_initial = M.initial_config m }

let prepared_machine p = p.p_machine

let instantiate ?(on_transition = fun _ _ -> ()) ?(on_unhandled = fun _ _ -> ()) p =
  { m = p.p_machine; cfg = p.p_initial; log = []; on_transition; on_unhandled }

let machine t = t.m
let config t = t.cfg
let state t = t.cfg.M.state

let register t name =
  match List.assoc_opt name t.cfg.M.regs with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Interp.register: unknown register %S" name)

let can_fire t event = M.enabled t.m t.cfg event <> []

let fire t event =
  if not (M.has_event t.m event) then Error (Unknown_event event)
  else
    match M.enabled t.m t.cfg event with
    | [] ->
      t.on_unhandled event t.cfg;
      Error (Unhandled { state = t.cfg.M.state; event })
    | [ tr ] ->
      let next = M.apply t.m t.cfg tr in
      t.cfg <- next;
      t.log <- (event, tr) :: t.log;
      t.on_transition tr next;
      Ok tr
    | trs ->
      Error
        (Nondeterministic
           { event; labels = List.map (fun (tr : M.transition) -> tr.t_label) trs })

let fire_exn t event =
  match fire t event with
  | Ok tr -> tr
  | Error e -> invalid_arg (Format.asprintf "Interp.fire_exn: %a" pp_error e)

let fire_all t events =
  let rec go = function
    | [] -> Ok ()
    | e :: rest -> ( match fire t e with Ok _ -> go rest | Error err -> Error err)
  in
  go events

let in_accepting t = M.is_accepting t.m t.cfg.M.state

let reset t =
  t.cfg <- M.initial_config t.m;
  t.log <- []

let history t = List.rev t.log
