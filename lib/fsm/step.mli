(** Compiled execution plans for machines: the behavioural hot path.

    {!Interp} walks the machine definition on every event — string-keyed
    states, an association-list register file, and a linear scan of the
    transition list.  That is the right shape for tooling, but it is an
    interpreter on the packet hot path.  [Step] closes that gap the same
    way {!Netdsl_format.View} and {!Netdsl_format.Emit} did for packet
    syntax: {!compile} validates a machine {e once} and lowers it into
    dense integer-indexed tables — states, events and registers interned
    to contiguous ids, one slot per (state, event) pair holding the
    candidate transitions with guards and actions pre-compiled into
    closures over a flat [int array] register file (domain wrap-around
    baked into each assignment).

    An {!instance} is a flat mutable record (state id + register array),
    O(registers) to mint per flow, and {!fire_id} allocates {e nothing}
    on the accept path while preserving {!Interp}'s exact semantics: it
    refuses unknown and unhandled events, detects nondeterminism instead
    of picking silently, and leaves the configuration untouched on every
    refusal.  The property suite in [test/test_fsm.ml] drives [Step] and
    [Interp] in lock-step over every shipped protocol machine and checks
    verdicts, labels and configurations agree on every event.

    Labels, register names and {!Machine.config} views remain available
    through the intern tables ({!transition}, {!config},
    {!enabled_labels}) — the opt-in slow path used for traces, hooks and
    error messages, never by the hot loop. *)

type plan
(** A machine validated and lowered once.  Immutable; share it freely
    across flows and worker domains. *)

type instance
(** One executable configuration of a plan: a state id and a register
    file.  Mutable and single-owner, like a socket. *)

(** The outcome of one {!fire_id}.  All constructors are constant, so
    returning a verdict allocates nothing. *)
type verdict =
  | Fired  (** exactly one guard admitted the event; the instance moved *)
  | Unknown_event  (** the event id is not one of the machine's events *)
  | Unhandled  (** no transition was enabled in the current configuration *)
  | Nondeterministic
      (** several transitions were enabled; nothing was executed *)

val compile : Machine.t -> plan
(** Validates ({!Machine.validate_exn} — [Invalid_argument] on defects)
    and lowers the machine.  Linear in the machine size; do it once. *)

val machine : plan -> Machine.t
(** The validated source definition. *)

(** {2 Intern tables}

    Ids are contiguous, starting at 0, in declaration order.  Resolve
    names once at setup time; run the hot loop on ids. *)

val n_states : plan -> int
val n_events : plan -> int
val n_registers : plan -> int

val event_id : plan -> string -> int
(** The id of a declared event, or [-1] if the name is unknown. *)

val state_id : plan -> string -> int
(** The id of a declared state, or [-1]. *)

val register_id : plan -> string -> int
(** The id of a declared register, or [-1]. *)

val event_name : plan -> int -> string
val state_name : plan -> int -> string
val register_name : plan -> int -> string

val transition : plan -> int -> Machine.transition
(** The source transition at a compiled index (see {!last_transition}) —
    the label-reconstruction slow path for hooks and traces. *)

(** {2 Compiled timer ops}

    Each transition's {!Machine.timer_op} lowers to one native int — the
    {e timer word} — so the engine's post-fire check is an array read
    compared against {!timer_none}.  An arm packs the duration and the
    interned id of the event the expiry fires:
    [(after_ms lsl 20) lor fire_event_id]. *)

val timer_word : plan -> int -> int
(** The packed timer op of the transition at a compiled index (feed it
    {!last_transition} after a [Fired] verdict).  Allocation-free. *)

val timer_none : int
(** [0] — the transition carries no timer op. *)

val timer_cancel : int
(** [-1] — the transition cancels the flow's pending timer. *)

val timer_after_ms : int -> int
(** Duration of an arm word (a word [> 0]). *)

val timer_event : int -> int
(** Interned id of the event an arm word fires on expiry. *)

val has_timers : plan -> bool
(** Whether any transition carries a timer op — lets the engine skip the
    wheel entirely for timerless machines. *)

(** {2 Instances} *)

val instance : plan -> instance
(** A fresh instance at the initial configuration.  O(registers); safe to
    mint per flow. *)

val plan_of : instance -> plan
val reset : instance -> unit

val fire_id : instance -> int -> verdict
(** [fire_id i ev] fires the unique enabled transition for event id [ev].
    Allocation-free; on any verdict other than {!Fired} the configuration
    is unchanged. *)

val fire : instance -> string -> verdict
(** Name-resolving convenience: [fire_id] after {!event_id}. *)

val state : instance -> int
val state_name_of : instance -> string
val in_accepting : instance -> bool

val register : instance -> int -> int
(** Register value by interned id ([Invalid_argument] if out of range). *)

val register_by_name : instance -> string -> int

val last_transition : instance -> int
(** Compiled index of the transition taken by the most recent successful
    {!fire_id}, or [-1] if none has fired since creation/{!reset}.  Feed
    it to {!transition} to recover the label — the hook slow path. *)

(** {2 The engine's timer cache}

    Per-instance scratch the engine uses to make the per-packet re-arm
    cheap.  [timer_hint] is the wheel entry last armed for this
    instance's flow (fed back to [Engine.Wheel.arm_hint] to skip the key
    lookup); [-1] at creation; a hint only — the wheel validates it —
    so staleness costs one lookup, never correctness.
    [timer_unchanged] checks the (timer word, wheel tick) signature of
    the last arm recorded by [note_timer_armed]: a match means the
    re-arm is bit-identical and the engine skips the wheel entirely, so
    the engine must [clear_timer_armed] whenever the flow's timer leaves
    the wheel behind its back (expiry delivery, cancel). *)

val timer_hint : instance -> int
val timer_unchanged : instance -> word:int -> wnow:int -> bool
val note_timer_armed : instance -> hint:int -> word:int -> wnow:int -> unit
val clear_timer_armed : instance -> unit

val config : instance -> Machine.config
(** Reconstruct the {!Machine.config} view (state and register names from
    the intern tables).  Allocates; diagnostics only. *)

val enabled_labels : instance -> string -> string list
(** Labels of the transitions the event would enable in the current
    configuration, in declaration order — what {!Interp} reports in its
    [Nondeterministic] error.  Slow path. *)

val describe : instance -> string -> verdict -> string
(** A human-readable account of a verdict for the given event name,
    matching {!Interp.pp_error}'s wording for the refusals. *)
