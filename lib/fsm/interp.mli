(** Runtime interpreter for machines: §3.2(iii), "a means of combining and
    executing valid state transitions".

    The interpreter {e cannot} execute an invalid transition: {!fire}
    refuses events that no guard admits in the current configuration
    (soundness at runtime) and reports nondeterminism instead of picking
    silently.  Hooks give the "behavioural hooks ... to allow adaptive
    behaviour" of §2.2: external policy can observe every transition. *)

type error =
  | Unknown_event of string
  | Unhandled of { state : string; event : string }
  | Nondeterministic of { event : string; labels : string list }

val pp_error : Format.formatter -> error -> unit

type t

val create :
  ?on_transition:(Machine.transition -> Machine.config -> unit) ->
  ?on_unhandled:(string -> Machine.config -> unit) ->
  Machine.t ->
  t
(** The machine is validated on creation ([Invalid_argument] on defects). *)

(** {2 Prepared machines}

    Validation is linear in the machine; per-flow instantiation should not
    be.  [prepare] validates once; [instantiate] then mints an independent
    interpreter in O(1) — the engine creates one per worker domain (and one
    per flow) from a single prepared machine. *)

type prepared

val prepare : Machine.t -> prepared
(** Validates ([Invalid_argument] on defects) and caches the initial
    configuration. *)

val prepared_machine : prepared -> Machine.t

val instantiate :
  ?on_transition:(Machine.transition -> Machine.config -> unit) ->
  ?on_unhandled:(string -> Machine.config -> unit) ->
  prepared ->
  t
(** A fresh interpreter at the initial configuration; no re-validation. *)

val machine : t -> Machine.t
val config : t -> Machine.config
val state : t -> string
val register : t -> string -> int

val can_fire : t -> string -> bool

val fire : t -> string -> (Machine.transition, error) result
(** Fires the unique enabled transition for the event, runs hooks, advances
    the configuration. *)

val fire_exn : t -> string -> Machine.transition

val fire_all : t -> string list -> (unit, error) result
(** Fires a sequence, stopping at the first error. *)

val in_accepting : t -> bool
val reset : t -> unit

val history : t -> (string * Machine.transition) list
(** Events fired so far with the transitions taken, oldest first. *)
