(** The fuzzing driver: corpus → mutate → oracle → shrink → report.

    One call fuzzes one target.  {!run_format} builds a {!Corpus}, checks
    every corpus seed through the {!Oracle} first (so [iters = 0] still
    exercises the golden samples), then drives [iters] structure-aware
    mutants through it; {!run_machine} delegates to {!Trace_fuzz}.  On
    the first disagreement the input is minimised — the mutation list
    with {!Shrink.list}, the resulting bytes with {!Shrink.bytes}, each
    candidate judged by a {e fresh} oracle so shrinking cannot be fooled
    by accumulated state — and returned as a committable {!Report.t}.
    Everything is a deterministic function of [(seed, iters)]. *)

type wire_stats = {
  ws_format : string;
  ws_mutants : int;  (** messages checked, corpus seeds included *)
  ws_accepted : int;  (** accepted by every path *)
  ws_rejected : int;  (** rejected by every path *)
}

val run_format :
  ?bug:Oracle.bug ->
  ?golden:string list ->
  seed:int ->
  iters:int ->
  Netdsl_format.Desc.t ->
  (wire_stats, Report.t) result

type chain_stats = {
  cs_stack : string;
  cs_mutants : int;  (** packets checked, chained seeds included *)
  cs_accepted : int;  (** accepted by both fused and sequential decode *)
  cs_rejected : int;
}

val run_stack :
  ?bug:Oracle.bug ->
  ?golden:string list ->
  seed:int ->
  iters:int ->
  string * Netdsl_format.Stack.t ->
  (chain_stats, Report.t) result
(** The chained-decode oracle leg: seeds from {!Corpus.stack_seeds} (plus
    [golden] raw-byte samples), cross-layer mutation via
    {!Mutate.random_chain} aimed with each seed's real layer windows, and
    every mutant judged by {!Oracle.Chain} — fused chain vs sequential
    per-layer decode on verdict, layer windows and every demanded
    register.  Raises [Invalid_argument] if the stack does not compile
    (callers should pre-compile to fail cleanly). *)

val run_machine :
  ?bug:bool ->
  seed:int ->
  iters:int ->
  string * Netdsl_fsm.Machine.t ->
  (Trace_fuzz.stats, Report.t) result
