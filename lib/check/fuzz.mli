(** The fuzzing driver: corpus → mutate → oracle → shrink → report.

    One call fuzzes one target.  {!run_format} builds a {!Corpus}, checks
    every corpus seed through the {!Oracle} first (so [iters = 0] still
    exercises the golden samples), then drives [iters] structure-aware
    mutants through it; {!run_machine} delegates to {!Trace_fuzz}.  On
    the first disagreement the input is minimised — the mutation list
    with {!Shrink.list}, the resulting bytes with {!Shrink.bytes}, each
    candidate judged by a {e fresh} oracle so shrinking cannot be fooled
    by accumulated state — and returned as a committable {!Report.t}.
    Everything is a deterministic function of [(seed, iters)]. *)

type wire_stats = {
  ws_format : string;
  ws_mutants : int;  (** messages checked, corpus seeds included *)
  ws_accepted : int;  (** accepted by every path *)
  ws_rejected : int;  (** rejected by every path *)
}

val run_format :
  ?bug:Oracle.bug ->
  ?golden:string list ->
  seed:int ->
  iters:int ->
  Netdsl_format.Desc.t ->
  (wire_stats, Report.t) result

val run_machine :
  ?bug:bool ->
  seed:int ->
  iters:int ->
  string * Netdsl_fsm.Machine.t ->
  (Trace_fuzz.stats, Report.t) result
