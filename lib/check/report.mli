(** Deterministic, committable repro blocks for fuzzer findings.

    A disagreement is worthless if it cannot be replayed: the report
    records everything needed to reproduce it from a clean checkout — the
    target (format or machine), the driving seed, the seed input, the
    mutation list and the final minimised input — in a stable textual
    form, so a repro can be pasted into a cram test or committed as a
    regression fixture.  Rendering is purely a function of the fields (no
    timestamps, no paths), so identical findings produce identical
    files. *)

type t =
  | Wire of {
      w_format : string;
      w_seed : int;
      w_check : string;  (** the oracle comparison that diverged *)
      w_detail : string;
      w_seed_packet : string;  (** raw bytes the mutation list applies to *)
      w_ops : Mutate.op list;
      w_bytes : string;  (** raw bytes of the minimised disagreeing input *)
    }
  | Trace of {
      t_machine : string;
      t_seed : int;
      t_detail : string;
      t_events : string list;  (** minimised event sequence *)
    }

val to_string : t -> string
(** The repro block, ending in a newline. *)

val filename : t -> string
(** Stable name for the dump: [repro-<kind>-<target>-seed<seed>.txt]. *)

val save : dir:string -> t -> string
(** Writes {!to_string} under {!filename} in [dir] (created if missing)
    and returns the full path. *)
