module Hexdump = Netdsl_util.Hexdump

type t =
  | Wire of {
      w_format : string;
      w_seed : int;
      w_check : string;
      w_detail : string;
      w_seed_packet : string;
      w_ops : Mutate.op list;
      w_bytes : string;
    }
  | Trace of {
      t_machine : string;
      t_seed : int;
      t_detail : string;
      t_events : string list;
    }

let to_string = function
  | Wire w ->
    let b = Buffer.create 256 in
    Buffer.add_string b "FUZZ DISAGREEMENT (wire)\n";
    Buffer.add_string b (Printf.sprintf "format: %s\n" w.w_format);
    Buffer.add_string b (Printf.sprintf "seed: %d\n" w.w_seed);
    Buffer.add_string b (Printf.sprintf "check: %s\n" w.w_check);
    Buffer.add_string b
      (Printf.sprintf "seed-packet: %s\n" (Hexdump.to_hex w.w_seed_packet));
    List.iter
      (fun op ->
        Buffer.add_string b (Printf.sprintf "mutation: %s\n" (Mutate.op_to_string op)))
      w.w_ops;
    Buffer.add_string b
      (Printf.sprintf "input: %s (%d bytes)\n" (Hexdump.to_hex w.w_bytes)
         (String.length w.w_bytes));
    Buffer.add_string b (Printf.sprintf "detail: %s\n" w.w_detail);
    Buffer.contents b
  | Trace t ->
    let b = Buffer.create 256 in
    Buffer.add_string b "FUZZ DISAGREEMENT (trace)\n";
    Buffer.add_string b (Printf.sprintf "machine: %s\n" t.t_machine);
    Buffer.add_string b (Printf.sprintf "seed: %d\n" t.t_seed);
    Buffer.add_string b
      (Printf.sprintf "trace: %s\n" (String.concat " " t.t_events));
    Buffer.add_string b (Printf.sprintf "detail: %s\n" t.t_detail);
    Buffer.contents b

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    name

let filename = function
  | Wire w -> Printf.sprintf "repro-wire-%s-seed%d.txt" (sanitize w.w_format) w.w_seed
  | Trace t ->
    Printf.sprintf "repro-trace-%s-seed%d.txt" (sanitize t.t_machine) t.t_seed

let save ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename t) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t));
  path
