(** Input minimisation for disagreement repros.

    A fuzzer finding is only useful once it is small: a 4-byte repro of a
    checksum disagreement points at the bug, a 400-byte one points at a
    haystack.  Both shrinkers are greedy delta-debugging loops: remove
    ever-smaller chunks while the caller's predicate keeps holding,
    deterministically (no randomness, so a repro shrinks to the same bytes
    on every machine) and bounded (the predicate is called at most
    [max_tests] times, so shrinking a pathological input terminates). *)

val bytes : ?max_tests:int -> (string -> bool) -> string -> string
(** [bytes holds s] minimises [s] under [holds] (which must hold for [s]
    itself; [max_tests] defaults to 4000).  Tries suffix/prefix cuts,
    chunk removal at halving granularity, and byte simplification towards
    ['\x00'].  The result always satisfies [holds]. *)

val list : ?max_tests:int -> ('a list -> bool) -> 'a list -> 'a list
(** Same loop over list elements (mutation ops, event traces): chunk
    removal at halving granularity, then single-element removal. *)
