(** The differential oracle: one mutant, every fast path, demand agreement.

    The compiled fast paths ({!Netdsl_format.View} decode,
    {!Netdsl_format.Emit} encode, the {!Netdsl_engine.Pipeline} built on
    both) are only trustworthy while they agree with the interpreted
    {!Netdsl_format.Codec} baseline on *adversarial* input, not just on
    generator output.  {!check} runs one wire message through four
    differential comparisons:

    + verdict and value: [View.decode] vs [Codec.decode] must agree on
      accept/reject, and on acceptance the materialised view value must
      equal the codec's byte for byte;
    + re-encode: on accepted input, [Emit.encode] of the decoded value
      must reproduce [Codec.encode] exactly (same bytes or same error);
    + engine: [Pipeline.process] must not raise, must reject exactly when
      the decoders reject, must never let a rejected mutant reach the
      verify stage, and must keep the per-stage {!Netdsl_engine.Stats}
      counters consistent with the packets actually fed;
    + fused: the {!Netdsl_format.View.Hot} fused decoder must agree with
      the codec verdict and, on acceptance, every demanded register must
      equal the interpreted view's value — and a second pipeline running
      in [Fused] mode over a {!Netdsl_engine.Flight} plan (demanding all
      hot-eligible fields) must agree too, with consistent counters:
      Fused ≡ Staged ≡ Codec.

    Any divergence — including an exception escaping a fast path — is a
    {!disagreement}.  The [bug] hook plants a known defect (inverting a
    verdict, as if a bounds check were flipped) so the harness can prove
    it would catch one. *)

type bug =
  | No_bug
  | Invert_view_accept
      (** report the view verdict inverted on successfully parsed input —
          the seeded-bug sanity check of the acceptance criteria *)
  | Invert_flight_accept
      (** report the fused hot-decoder verdict inverted on accepted input
          — proves the fused leg can catch a fusion bug *)
  | Invert_chain_accept
      (** report the fused {e chain} verdict inverted on accepted layered
          input, as if a chained bounds check were flipped — proves the
          {!Chain} leg can catch a stack-fusion bug *)
  | Drop_expiry
      (** the live timing wheel silently loses every second armed timer —
          the failure mode a broken cascade or clobbered freelist would
          produce (no crash, a deadline just never fires) — proves the
          {!Timers} leg can catch a wheel that loses timers *)

type disagreement = {
  d_check : string;
      (** which comparison diverged: ["verdict"], ["value"], ["reencode"],
          ["pipeline"], ["flight"], ["fused"], ["stats"], ["chain"],
          ["timers"] or ["crash"] *)
  d_detail : string;  (** rendered evidence: both sides of the divergence *)
}

val disagreement_to_string : disagreement -> string

type t
(** A reusable oracle for one format: the view, emitter and pipeline are
    compiled once; {!check} is then allocation-light per mutant. *)

val create : ?bug:bug -> Netdsl_format.Desc.t -> t
val format : t -> Netdsl_format.Desc.t

val check : t -> string -> (unit, disagreement) result
(** Run one wire message through all three comparisons.  [Ok] means every
    path agreed (whether the message was accepted or rejected). *)

val checked : t -> int
(** Messages checked so far. *)

val accepted : t -> int
(** Messages all decoders accepted — the accept side of the split that
    bench e14 reports. *)

(** {2 Chained-decode oracle leg}

    One fused {!Netdsl_format.Stack.plan} diffed against the sequential
    per-layer reference ({!Netdsl_format.Stack.Seq}) — same stack, two
    decode strategies.  On every packet the two must agree on the chain
    verdict; on acceptance, every layer window and every demanded
    register (each layer's hot-eligible static prefix, compared against
    {!Netdsl_format.View.find_int} on the sequential per-layer views,
    absent variant-case fields as [-1]) must match.  Cross-layer length
    lies need no special casing: an outer length lie moves the inner
    window, and both strategies must move it identically or the window
    comparison fires. *)
module Chain : sig
  type t

  val create : ?bug:bug -> Netdsl_format.Stack.t -> (t, string) result
  (** Compiles the fused plan demanding every per-layer hot-eligible
      field (candidates the chain compiler cannot extract are probed
      individually and dropped); [Error] only if the stack itself does
      not compile. *)

  val check : t -> string -> (unit, disagreement) result
  (** [d_check] is ["chain"] for any divergence, ["crash"] for an escaped
      exception. *)

  val checked : t -> int
  val accepted : t -> int

  val seed_windows : t -> string -> (int * int) array
  (** Per-layer [(byte_off, byte_len)] windows of a packet the sequential
      decoder accepts, for {!Mutate.random_chain}; [ [||] ] when it
      rejects. *)
end

(** {2 Socket oracle leg: the in-memory reply reference}

    The reference side of the loopback soak (lib/net's [Loopback]): the
    same flight spec, driven through an in-memory pipeline, with every
    emitted reply captured as a fresh string.  A reply read off a real
    socket must be byte-for-byte identical to {!Reply_ref.expected} for
    the same input — and a packet for which [expected] returns [None]
    must produce {e no} datagram.  Defaults to [Staged] mode so a fused
    server is diffed against the staged derivation of its own spec. *)
module Reply_ref : sig
  type t

  val create :
    ?config:Netdsl_engine.Pipeline.config ->
    ?mode:Netdsl_engine.Pipeline.mode ->
    ?machine:Netdsl_fsm.Machine.t ->
    flight:Netdsl_engine.Flight.spec ->
    Netdsl_format.Desc.t ->
    t

  val expected :
    t -> string -> Netdsl_engine.Pipeline.outcome * string option
  (** Run one packet; the captured reply, or [None] when the packet is
      rejected or matches no respond rule.  Flow state advances exactly
      as the server's pipeline does, so lock-step callers stay in sync. *)

  val stats : t -> Netdsl_engine.Stats.t
end

(** {2 Timer oracle leg: Step-with-wheel vs the simulator}

    A machine with [timeout] clauses, executed twice over one
    timeout-laced stimulus trace: once through the engine's
    {!Netdsl_engine.Wheel} in integer virtual time (the exact arm/cancel
    discipline the pipeline's step stage applies — the fired transition's
    packed timer word drives the wheel, expirations fire back through
    [fire_id], and an expiry's own transition may re-arm), and once
    through the discrete-event simulator (external events on a
    {!Netdsl_sim.Engine} heap, the flow's single timer a
    {!Netdsl_sim.Timer}).  Every delivered event's verdict, time, state
    and register file must match, as must the final configurations.

    A stimulus and an expiry due at the same instant deliver the stimulus
    first on both sides (the simulator's schedule order; the wheel is
    advanced only to [at - 1] before a stimulus at [at]). *)
module Timers : sig
  type t

  val create : ?bug:bug -> Netdsl_fsm.Machine.t -> t
  (** Compiles the machine once ([Invalid_argument] on defects — the
      same validation {!Netdsl_fsm.Step.compile} applies). *)

  val check : ?horizon_ms:int -> t -> (int * string) list -> (unit, disagreement) result
  (** [check t trace] runs the stimuli [(at_ms, event)] (sorted by time,
      ties in list order) through both executions and diffs the logs.
      After the last stimulus both sides keep running expiry chains for
      [horizon_ms] more milliseconds (default 4096) — far-future arms
      beyond the horizon never fire on either side.  [d_check] is
      ["timers"], or ["crash"] for an escaped exception.  Raises
      [Invalid_argument] on a negative time or unknown event name. *)

  val checked : t -> int
end
