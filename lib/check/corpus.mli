(** Seed packets for the fuzzer: generated, golden and handcrafted.

    A fuzzer is only as good as the valid packets it starts from — a mutant
    of garbage exercises nothing but the outermost length check.  A corpus
    for a format combines three sources:

    - {!Netdsl_format.Gen} output, when the format's derived-field
      dependencies can be inverted generically;
    - a handcrafted {!value_generator} for the shipped formats Gen cannot
      invert (IPv4 and TCP, whose header-length words feed their own
      checksums) — the single home of the generators that used to be
      duplicated across [test_view.ml] and [test_emit.ml];
    - golden wire samples (committed hex files under [test/corpus/],
      loaded with {!load_hex_file}).

    When none of the three applies, deterministic fallback seeds (zero
    runs and patterned bytes at the format's minimum size) keep the
    differential oracle running on the reject path. *)

type t

val shipped : (string * Netdsl_format.Desc.t) list
(** Every format the repository ships, by [format_name] — the fuzzing
    matrix of the test suite, bench e14 and CI. *)

val find_shipped : string -> Netdsl_format.Desc.t option

val value_generator :
  Netdsl_format.Desc.t -> (Netdsl_util.Prng.t -> Netdsl_format.Value.t) option
(** A random *valid* value generator for the format: handcrafted for the
    shipped formats {!Netdsl_format.Gen} cannot invert (matched by
    [format_name]), [Gen.generate] otherwise; [None] if neither applies. *)

val generator : Netdsl_format.Desc.t -> (Netdsl_util.Prng.t -> string) option
(** {!value_generator} composed with the codec: random valid wire bytes. *)

val load_hex_file : string -> string list
(** Reads a corpus file: one packet per line, hex encoded; blank lines and
    [#] comment lines are skipped.  Raises [Sys_error] or
    [Invalid_argument] on unreadable files or malformed hex — corpus files
    are committed artefacts, a defect in one should fail loudly. *)

val make :
  ?golden:string list ->
  ?count:int ->
  Netdsl_format.Desc.t ->
  Netdsl_util.Prng.t ->
  t
(** [make fmt rng] builds a corpus of [count] (default 16) generated seeds
    plus the [golden] wire samples (raw bytes, not hex).  Falls back to
    deterministic patterned seeds when the format has no generator and no
    golden samples. *)

val format : t -> Netdsl_format.Desc.t
val seeds : t -> string array
(** Non-empty. *)

val pick : t -> Netdsl_util.Prng.t -> string

val fallback_seeds : Netdsl_format.Desc.t -> string list
(** The deterministic reject-path patterns (zero runs, [0xff] runs,
    counting bytes) at the format's minimum size — what {!make} uses when
    a format has neither generator nor golden samples. *)

val stack_seeds : Netdsl_format.Stack.t -> string list
(** Chained golden packets built through the stack's own fused encoder:
    handcrafted {!Netdsl_formats.Stacks} values for the catalogue stacks
    ([inet_tftp], [eth_arp], [ipv4_icmp]), generically generated
    per-layer values (demux pinned to an accepted edge, carrier payload
    cleared) for any other stack whose layers are generable.  Empty when
    no layer generator applies — the chain fuzzer then falls back to
    patterned seeds of the outermost layer. *)
