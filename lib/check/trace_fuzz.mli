(** Differential fuzzing for machines: compiled {!Netdsl_fsm.Step} plans
    vs the {!Netdsl_fsm.Interp} interpreter, driven in lock-step.

    The wire fuzzer's behavioural twin (the attack-synthesis angle from
    PAPERS.md): event traces are mined from the definition with
    {!Netdsl_fsm.Testgen.transition_tour}, then perturbed with the
    classic adversarial channel moves — duplicated events, dropped
    events, reordered neighbours, unknown event names — plus purely
    random traces.  After every single event both executions must agree
    on the verdict (fired / unknown / unhandled / nondeterministic) and,
    via {!Netdsl_fsm.Machine.config_equal}, on the full configuration
    (state and every register).  A disagreeing trace is shrunk with
    {!Shrink.list} before being reported. *)

type stats = {
  traces : int;  (** traces executed *)
  events : int;  (** events fired across all traces *)
  fired : int;  (** events both executions accepted *)
  refused : int;  (** events both executions refused *)
}

type disagreement = {
  t_machine : string;
  t_trace : string list;  (** minimised event sequence from the initial state *)
  t_detail : string;  (** verdicts / configurations at the diverging event *)
}

val disagreement_to_string : disagreement -> string

val run :
  ?bug:bool ->
  seed:int ->
  iters:int ->
  string * Netdsl_fsm.Machine.t ->
  (stats, disagreement) result
(** [run ~seed ~iters (name, m)] replays the mined tour, then [iters]
    perturbed and random traces.  [bug] plants a defect in the comparison
    (the compiled configuration is reported with its state swapped after
    the first fired transition) to prove the lock-step check catches and
    minimises one.  Nondeterministic machines skip the mined tour
    (Testgen requires determinism) and run random traces only. *)
