module Prng = Netdsl_util.Prng
module Desc = Netdsl_format.Desc

type wire_stats = {
  ws_format : string;
  ws_mutants : int;
  ws_accepted : int;
  ws_rejected : int;
}

(* Shrinking judges every candidate with a fresh oracle: the oracle's
   stats-consistency model is stateful, and a candidate must stand on its
   own to be a valid repro. *)
let disagrees ?bug fmt s =
  match Oracle.check (Oracle.create ?bug fmt) s with
  | Ok () -> false
  | Error _ -> true

let shrink_budget = 600

let minimise ?bug fmt ~seed_packet ~ops =
  let holds = disagrees ?bug fmt in
  let initial = Mutate.apply ops seed_packet in
  (* A finding that only reproduces against the long-lived oracle (e.g. a
     counter drifted) cannot be shrunk input-wise; report it as found. *)
  if not (holds initial) then (ops, initial)
  else
    let ops =
      Shrink.list ~max_tests:shrink_budget
        (fun ops -> holds (Mutate.apply ops seed_packet))
        ops
    in
    let bytes =
      Shrink.bytes ~max_tests:shrink_budget holds (Mutate.apply ops seed_packet)
    in
    (ops, bytes)

let report ?bug fmt ~seed ~seed_packet ~ops =
  let ops, bytes = minimise ?bug fmt ~seed_packet ~ops in
  let check, detail =
    match Oracle.check (Oracle.create ?bug fmt) bytes with
    | Error d -> (d.Oracle.d_check, d.Oracle.d_detail)
    | Ok () -> ("unknown", "disagreement vanished while shrinking")
  in
  Report.Wire
    {
      w_format = fmt.Desc.format_name;
      w_seed = seed;
      w_check = check;
      w_detail = detail;
      w_seed_packet = seed_packet;
      w_ops = ops;
      w_bytes = bytes;
    }

let run_format ?bug ?golden ~seed ~iters fmt =
  let rng = Prng.of_int seed in
  let corpus = Corpus.make ?golden fmt rng in
  let oracle = Oracle.create ?bug fmt in
  let plan = Mutate.plan fmt in
  let failure = ref None in
  let fail_on ~seed_packet ~ops pkt =
    match Oracle.check oracle pkt with
    | Ok () -> ()
    | Error _ -> failure := Some (report ?bug fmt ~seed ~seed_packet ~ops)
  in
  (* every corpus seed goes through the oracle unmutated first: golden
     samples are exercised even at --iters 0 *)
  Array.iter
    (fun s -> if !failure = None then fail_on ~seed_packet:s ~ops:[] s)
    (Corpus.seeds corpus);
  let i = ref 0 in
  while !failure = None && !i < iters do
    incr i;
    let seed_packet = Corpus.pick corpus rng in
    let ops = Mutate.random plan rng seed_packet in
    fail_on ~seed_packet ~ops (Mutate.apply ops seed_packet)
  done;
  match !failure with
  | Some r -> Error r
  | None ->
    let checked = Oracle.checked oracle and accepted = Oracle.accepted oracle in
    Ok
      {
        ws_format = fmt.Desc.format_name;
        ws_mutants = checked;
        ws_accepted = accepted;
        ws_rejected = checked - accepted;
      }

type chain_stats = {
  cs_stack : string;
  cs_mutants : int;
  cs_accepted : int;
  cs_rejected : int;
}

(* The chain leg mirrors [run_format]: fresh oracles judge every shrink
   candidate, and the repro is an ordinary Wire report whose ops replay
   with [Mutate.apply]. *)
let chain_disagrees ?bug stack s =
  match Oracle.Chain.create ?bug stack with
  | Error _ -> false
  | Ok o -> Result.is_error (Oracle.Chain.check o s)

let minimise_chain ?bug stack ~seed_packet ~ops =
  let holds = chain_disagrees ?bug stack in
  let initial = Mutate.apply ops seed_packet in
  if not (holds initial) then (ops, initial)
  else
    let ops =
      Shrink.list ~max_tests:shrink_budget
        (fun ops -> holds (Mutate.apply ops seed_packet))
        ops
    in
    let bytes =
      Shrink.bytes ~max_tests:shrink_budget holds (Mutate.apply ops seed_packet)
    in
    (ops, bytes)

let report_chain ?bug name stack ~seed ~seed_packet ~ops =
  let ops, bytes = minimise_chain ?bug stack ~seed_packet ~ops in
  let check, detail =
    match Oracle.Chain.create ?bug stack with
    | Error e -> ("chain", "oracle failed to compile: " ^ e)
    | Ok o -> (
      match Oracle.Chain.check o bytes with
      | Error d -> (d.Oracle.d_check, d.Oracle.d_detail)
      | Ok () -> ("unknown", "disagreement vanished while shrinking"))
  in
  Report.Wire
    {
      w_format = name;
      w_seed = seed;
      w_check = check;
      w_detail = detail;
      w_seed_packet = seed_packet;
      w_ops = ops;
      w_bytes = bytes;
    }

let run_stack ?bug ?(golden = []) ~seed ~iters (name, stack) =
  let oracle =
    match Oracle.Chain.create ?bug stack with
    | Ok o -> o
    | Error e ->
      invalid_arg (Printf.sprintf "Fuzz.run_stack: stack %s: %s" name e)
  in
  let rng = Prng.of_int seed in
  let seeds =
    match golden @ Corpus.stack_seeds stack with
    | [] ->
      (* no chaining seed at all: reject-path patterns of the outer layer *)
      Corpus.fallback_seeds (Netdsl_format.Stack.layer_format stack 0)
    | seeds -> seeds
  in
  let seeds = Array.of_list seeds in
  let cp = Mutate.chain_plan stack in
  let failure = ref None in
  let fail_on ~seed_packet ~ops pkt =
    match Oracle.Chain.check oracle pkt with
    | Ok () -> ()
    | Error _ ->
      failure := Some (report_chain ?bug name stack ~seed ~seed_packet ~ops)
  in
  Array.iter
    (fun s -> if !failure = None then fail_on ~seed_packet:s ~ops:[] s)
    seeds;
  let i = ref 0 in
  while !failure = None && !i < iters do
    incr i;
    let seed_packet = Prng.pick rng seeds in
    let windows = Oracle.Chain.seed_windows oracle seed_packet in
    let ops = Mutate.random_chain cp ~windows rng seed_packet in
    fail_on ~seed_packet ~ops (Mutate.apply ops seed_packet)
  done;
  match !failure with
  | Some r -> Error r
  | None ->
    let checked = Oracle.Chain.checked oracle
    and accepted = Oracle.Chain.accepted oracle in
    Ok
      {
        cs_stack = name;
        cs_mutants = checked;
        cs_accepted = accepted;
        cs_rejected = checked - accepted;
      }

let run_machine ?bug ~seed ~iters (name, m) =
  match Trace_fuzz.run ?bug ~seed ~iters (name, m) with
  | Ok stats -> Ok stats
  | Error d ->
    Error
      (Report.Trace
         {
           t_machine = d.Trace_fuzz.t_machine;
           t_seed = seed;
           t_detail = d.Trace_fuzz.t_detail;
           t_events = d.Trace_fuzz.t_trace;
         })
