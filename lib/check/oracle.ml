module Desc = Netdsl_format.Desc
module Value = Netdsl_format.Value
module Codec = Netdsl_format.Codec
module View = Netdsl_format.View
module Emit = Netdsl_format.Emit
module Stack = Netdsl_format.Stack
module Pipeline = Netdsl_engine.Pipeline
module Flight = Netdsl_engine.Flight
module Stats = Netdsl_engine.Stats

type bug =
  | No_bug
  | Invert_view_accept
  | Invert_flight_accept
  | Invert_chain_accept
  | Drop_expiry

type disagreement = { d_check : string; d_detail : string }

let disagreement_to_string d = Printf.sprintf "%s: %s" d.d_check d.d_detail

type t = {
  o_fmt : Desc.t;
  o_bug : bug;
  o_view : View.t;
  o_emit : Emit.t;
  o_pipe : Pipeline.t;
  o_saw_verify : bool ref;
  (* check 4: the fused hot decoder, diffed register by register, plus a
     whole pipeline running in Fused mode over a flight plan demanding
     every hot-eligible field *)
  o_hot : View.Hot.t option;
  o_hot_slots : (string * int) array;
  o_fused : Pipeline.t;
  (* reference model of the pipelines' counters, advanced before each
     [process]; any drift is a stats-consistency disagreement *)
  mutable o_exp_decode_pkts : int;
  mutable o_exp_decode_rejects : int;
  mutable o_exp_verify_pkts : int;
  mutable o_exp_fused_pkts : int;
  mutable o_exp_fused_rejects : int;
  mutable o_checked : int;
  mutable o_accepted : int;
}

let create ?(bug = No_bug) fmt =
  let saw_verify = ref false in
  let pipe =
    Pipeline.create
      ~verify:(fun _ ->
        saw_verify := true;
        true)
      fmt
  in
  let eligible = View.Hot.eligible_fields fmt in
  let hot =
    match View.Hot.compile ~demand:eligible fmt with
    | Ok h -> Some h
    | Error _ -> None
  in
  let hot_slots =
    match hot with
    | None -> [||]
    | Some h ->
      Array.of_list (List.map (fun f -> (f, View.Hot.demand_slot h f)) eligible)
  in
  let fused =
    Pipeline.create ~mode:Pipeline.Fused
      ~flight:(Flight.spec ~demand:eligible ())
      fmt
  in
  {
    o_fmt = fmt;
    o_bug = bug;
    o_view = View.create fmt;
    o_emit = Emit.create fmt;
    o_pipe = pipe;
    o_saw_verify = saw_verify;
    o_hot = hot;
    o_hot_slots = hot_slots;
    o_fused = fused;
    o_exp_decode_pkts = 0;
    o_exp_decode_rejects = 0;
    o_exp_verify_pkts = 0;
    o_exp_fused_pkts = 0;
    o_exp_fused_rejects = 0;
    o_checked = 0;
    o_accepted = 0;
  }

let format t = t.o_fmt
let checked t = t.o_checked
let accepted t = t.o_accepted

let fail check fmt_ = Printf.ksprintf (fun s -> Error { d_check = check; d_detail = s }) fmt_

let err = Codec.error_to_string

(* Check 3: the engine built on the fast paths.  [codec_ok] is the
   baseline verdict both decoders already agreed on. *)
let check_pipeline t pkt ~codec_ok =
  t.o_saw_verify := false;
  t.o_exp_decode_pkts <- t.o_exp_decode_pkts + 1;
  if not codec_ok then t.o_exp_decode_rejects <- t.o_exp_decode_rejects + 1
  else t.o_exp_verify_pkts <- t.o_exp_verify_pkts + 1;
  let outcome = Pipeline.process t.o_pipe pkt in
  let stats = Pipeline.stats t.o_pipe in
  match (outcome, codec_ok) with
  | (Pipeline.Rejected_verify | Pipeline.Rejected_step | Pipeline.Rejected_encode), _
    ->
    fail "pipeline" "pipeline rejected past the decode stage with no predicate armed"
  | Pipeline.Accepted, false ->
    fail "pipeline" "pipeline accepted a packet the codec rejects"
  | Pipeline.Rejected_decode e, true ->
    fail "pipeline" "pipeline rejected a packet the codec accepts: %s" (err e)
  | Pipeline.Accepted, true when not !(t.o_saw_verify) ->
    fail "pipeline" "accepted packet never reached the verify stage"
  | Pipeline.Rejected_decode _, false when !(t.o_saw_verify) ->
    fail "pipeline" "rejected mutant leaked past decode into the verify stage"
  | _ ->
    let got_dp = Stats.stage_packets stats 0
    and got_dr = Stats.stage_rejects stats 0
    and got_vp = Stats.stage_packets stats 1 in
    if
      got_dp <> t.o_exp_decode_pkts
      || got_dr <> t.o_exp_decode_rejects
      || got_vp <> t.o_exp_verify_pkts
    then
      fail "stats"
        "stage counters drifted: decode %d/%d rejects %d/%d verify %d/%d (got/expected)"
        got_dp t.o_exp_decode_pkts got_dr t.o_exp_decode_rejects got_vp
        t.o_exp_verify_pkts
    else Ok ()

(* Check 4a: the fused hot decoder against the codec verdict, and — on
   acceptance — every demanded register against the interpreted view's
   value for the same field.  [t.o_view] holds the decoded packet when
   [codec_ok].  The planted fusion defect inverts the hot verdict on
   accepted input, as if a fused bounds check were flipped. *)
let check_hot t pkt ~codec_ok =
  match t.o_hot with
  | None -> Ok ()
  | Some h ->
    let ok = View.Hot.run h pkt in
    let ok = match (t.o_bug, ok) with Invert_flight_accept, true -> false | _ -> ok in
    if ok && not codec_ok then
      fail "flight" "fused decoder accepts a packet the codec rejects"
    else if (not ok) && codec_ok then
      fail "flight" "fused decoder rejects a packet the codec accepts"
    else if not ok then Ok ()
    else
      let n = Array.length t.o_hot_slots in
      let rec go i =
        if i >= n then Ok ()
        else begin
          let field, slot = t.o_hot_slots.(i) in
          let hv = Int64.of_int (View.Hot.get h slot) in
          let vv = View.get_int t.o_view field in
          if Int64.equal hv vv then go (i + 1)
          else
            fail "flight" "register %S diverged: fused %Ld, view %Ld" field hv
              vv
        end
      in
      go 0

(* Check 4b: a whole pipeline in Fused mode (flight plan demanding the
   hot-eligible fields) must agree with the codec verdict and keep its
   decode counters consistent — the Fused ≡ Staged ≡ Codec leg. *)
let check_fused t pkt ~codec_ok =
  t.o_exp_fused_pkts <- t.o_exp_fused_pkts + 1;
  if not codec_ok then t.o_exp_fused_rejects <- t.o_exp_fused_rejects + 1;
  let outcome = Pipeline.process t.o_fused pkt in
  match (outcome, codec_ok) with
  | ( ( Pipeline.Rejected_verify | Pipeline.Rejected_step
      | Pipeline.Rejected_encode ),
      _ ) ->
    fail "fused" "fused pipeline rejected past the decode stage with nothing armed"
  | Pipeline.Accepted, false ->
    fail "fused" "fused pipeline accepted a packet the codec rejects"
  | Pipeline.Rejected_decode e, true ->
    fail "fused" "fused pipeline rejected a packet the codec accepts: %s" (err e)
  | _ ->
    let stats = Pipeline.stats t.o_fused in
    let got_p = Stats.stage_packets stats 0
    and got_r = Stats.stage_rejects stats 0 in
    if got_p <> t.o_exp_fused_pkts || got_r <> t.o_exp_fused_rejects then
      fail "stats"
        "fused stage counters drifted: decode %d/%d rejects %d/%d (got/expected)"
        got_p t.o_exp_fused_pkts got_r t.o_exp_fused_rejects
    else Ok ()

let check_flight t pkt ~codec_ok =
  match check_hot t pkt ~codec_ok with
  | Error _ as e -> e
  | Ok () -> check_fused t pkt ~codec_ok

(* Check 2: compiled emit vs interpreting codec on the decoded value. *)
let check_reencode t value =
  match (Codec.encode t.o_fmt value, Emit.encode t.o_emit value) with
  | Ok c, Ok e when String.equal c e -> Ok ()
  | Ok c, Ok e ->
    fail "reencode" "same value, different bytes\ncodec: %s\nemit:  %s"
      (Netdsl_util.Hexdump.to_hex c) (Netdsl_util.Hexdump.to_hex e)
  | Error _, Error _ -> Ok ()
  | Ok _, Error e -> fail "reencode" "codec encodes, emit rejects: %s" (err e)
  | Error e, Ok _ -> fail "reencode" "emit encodes, codec rejects: %s" (err e)

let check_inner t pkt =
  let codec_r = Codec.decode t.o_fmt pkt in
  let view_r = View.decode t.o_view pkt in
  (* the planted defect: report parse success as rejection, as if a bounds
     check inside the view compiler were inverted *)
  let view_verdict =
    match (t.o_bug, view_r) with
    | Invert_view_accept, Ok () -> Error "planted bug: inverted accept"
    | _, Ok () -> Ok ()
    | _, Error e -> Error (err e)
  in
  match (codec_r, view_verdict) with
  | Ok _, Error ve -> fail "verdict" "codec accepts, view rejects: %s" ve
  | Error ce, Ok () -> fail "verdict" "view accepts, codec rejects: %s" (err ce)
  | Error _, Error _ -> (
    match check_flight t pkt ~codec_ok:false with
    | Error _ as e -> e
    | Ok () -> check_pipeline t pkt ~codec_ok:false)
  | Ok cv, Ok () -> (
    let vv = View.to_value t.o_view in
    if not (Value.equal cv vv) then
      fail "value" "decoders accept but values differ\ncodec: %s\nview:  %s"
        (Value.to_string cv) (Value.to_string vv)
    else
      match check_reencode t cv with
      | Error _ as e -> e
      | Ok () -> (
        match check_flight t pkt ~codec_ok:true with
        | Error _ as e -> e
        | Ok () -> (
          match check_pipeline t pkt ~codec_ok:true with
          | Error _ as e -> e
          | Ok () ->
            t.o_accepted <- t.o_accepted + 1;
            Ok ())))

let check t pkt =
  t.o_checked <- t.o_checked + 1;
  (* An exception escaping any fast path is itself a disagreement: the
     interpreted codec never throws on malformed input. *)
  match check_inner t pkt with
  | exception e -> fail "crash" "exception escaped a fast path: %s" (Printexc.to_string e)
  | r -> r

(* ---- the in-memory reply reference for the socket oracle leg ----

   [Loopback] (lib/net) reads replies off a real UDP socket and diffs
   them byte for byte against this: the same flight spec driven through
   an in-memory pipeline whose [on_response] captures the emitted reply
   as a fresh string.  Default mode is [Staged] so a fused server is
   cross-checked against the staged derivation of the same spec — the
   socket run then differences both the wire path *and* the mode. *)
module Reply_ref = struct
  type nonrec t = { r_pipe : Pipeline.t; r_last : string option ref }

  let create ?config ?(mode = Pipeline.Staged) ?machine ~flight fmt =
    let r_last = ref None in
    let r_pipe =
      Pipeline.create ?config ~mode ~flight ?machine
        ~on_response:(fun s -> r_last := Some s)
        fmt
    in
    { r_pipe; r_last }

  let expected t pkt =
    t.r_last := None;
    let outcome = Pipeline.process t.r_pipe pkt in
    (outcome, !(t.r_last))

  let stats t = Pipeline.stats t.r_pipe
end

(* ---- the chained-decode oracle leg ----

   One fused [Stack.plan] against the sequential per-layer reference
   ([Stack.Seq]): verdict, every demanded register, and every layer
   window must agree on every mutant.  Cross-layer length lies need no
   special casing — an outer length lie moves the inner window and both
   implementations must move it identically. *)
module Chain = struct
  type nonrec t = {
    c_bug : bug;
    c_plan : Stack.plan;
    c_seq : Stack.Seq.t;
    c_regs : (int * string * Stack.reg) array;
        (* layer index, bare field name, fused register *)
    c_layers : int;
    mutable c_checked : int;
    mutable c_accepted : int;
  }

  (* Every register the chain can serve: each layer's hot-eligible static
     prefix, qualified.  A candidate the chain compiler cannot extract is
     probed individually and dropped rather than failing the oracle. *)
  let demandable stack =
    List.concat
      (List.mapi
         (fun i lname ->
           List.map
             (fun f -> lname ^ "." ^ f)
             (View.Hot.eligible_fields (Stack.layer_format stack i)))
         (Stack.layer_names stack))

  let create ?(bug = No_bug) stack =
    let all = demandable stack in
    let compiled =
      match Stack.compile ~demand:all stack with
      | Ok p -> Ok p
      | Error _ ->
        let keep =
          List.filter
            (fun f -> Result.is_ok (Stack.compile ~demand:[ f ] stack))
            all
        in
        Stack.compile ~demand:keep stack
    in
    match compiled with
    | Error _ as e -> e
    | Ok plan ->
      let regs =
        List.filter_map
          (fun qualified ->
            match Stack.reg plan qualified with
            | Error _ -> None
            | Ok reg ->
              let dot = String.index qualified '.' in
              let lname = String.sub qualified 0 dot in
              let field =
                String.sub qualified (dot + 1) (String.length qualified - dot - 1)
              in
              let layer = Option.get (Stack.layer_index plan lname) in
              Some (layer, field, reg))
          all
      in
      Ok
        {
          c_bug = bug;
          c_plan = plan;
          c_seq = Stack.Seq.create plan;
          c_regs = Array.of_list regs;
          c_layers = Stack.layer_count plan;
          c_checked = 0;
          c_accepted = 0;
        }

  let checked t = t.c_checked
  let accepted t = t.c_accepted

  let check_inner t pkt =
    let fused = Stack.run t.c_plan pkt in
    (* the planted defect: the fused chain's accept verdict inverted, as
       if a chained bounds check were flipped *)
    let fused =
      match (t.c_bug, fused) with Invert_chain_accept, true -> false | _, v -> v
    in
    match (fused, Stack.Seq.decode t.c_seq pkt) with
    | true, Error reason ->
      fail "chain" "fused chain accepts a packet the sequential decode rejects: %s"
        reason
    | false, Ok () ->
      fail "chain" "fused chain rejects a packet the sequential decode accepts"
    | false, Error _ -> Ok ()
    | true, Ok () ->
      let rec windows i =
        if i >= t.c_layers then Ok ()
        else begin
          let fo = Stack.layer_off t.c_plan i
          and fl = Stack.layer_len t.c_plan i
          and so = Stack.Seq.layer_off t.c_seq i
          and sl = Stack.Seq.layer_len t.c_seq i in
          if fo <> so || fl <> sl then
            fail "chain"
              "layer %d window diverged: fused [%d, +%d), sequential [%d, +%d)" i
              fo fl so sl
          else windows (i + 1)
        end
      in
      let rec registers i =
        if i >= Array.length t.c_regs then Ok ()
        else begin
          let layer, field, reg = t.c_regs.(i) in
          let fv = Int64.of_int (Stack.reg_get t.c_plan reg) in
          let sv =
            match View.find_int (Stack.Seq.view t.c_seq layer) field with
            | Some v -> v
            | None -> -1L
          in
          if Int64.equal fv sv then registers (i + 1)
          else
            fail "chain" "register %d.%s diverged: fused %Ld, sequential %Ld"
              layer field fv sv
        end
      in
      (match windows 0 with
      | Error _ as e -> e
      | Ok () -> (
        match registers 0 with
        | Error _ as e -> e
        | Ok () ->
          t.c_accepted <- t.c_accepted + 1;
          Ok ()))

  let check t pkt =
    t.c_checked <- t.c_checked + 1;
    match check_inner t pkt with
    | exception e ->
      fail "crash" "exception escaped the fused chain: %s" (Printexc.to_string e)
    | r -> r

  (* Layer windows of an accepting seed, for aimed cross-layer mutation. *)
  let seed_windows t pkt =
    match Stack.Seq.decode t.c_seq pkt with
    | Error _ -> [||]
    | Ok () ->
      Array.init t.c_layers (fun i ->
          (Stack.Seq.layer_off t.c_seq i, Stack.Seq.layer_len t.c_seq i))
end

(* ---- the timer oracle leg ----

   One machine with [timeout] clauses, one timeout-laced stimulus trace,
   two executions of the same compiled [Step] plan:

   - live: an [Engine.Wheel] in integer virtual time — the exact
     arm/cancel discipline the pipeline's step stage applies (the fired
     transition's packed timer word drives the wheel, expirations fire
     back through [fire_id], and an expiry's own transition may re-arm);
   - reference: the discrete-event simulator — external events scheduled
     on a [Sim.Engine] heap, the flow's single timer a [Sim.Timer]
     (start replaces, stop cancels), the ladder's deterministic
     same-time order (schedule order) arbitrating ties.

   Both sides log every verdict with its virtual time, new state and
   register file; the logs — and the final configurations — must be
   identical.  The one deliberate alignment: the wheel is advanced only
   to [at - 1] before a stimulus at [at], so an expiry due exactly at a
   stimulus time fires after the stimulus — which is the simulator's
   order too (the stimulus was scheduled first).

   The planted defect [Drop_expiry] makes the live wheel silently lose
   every second armed timer, the failure mode a broken cascade or a
   clobbered freelist would produce: nothing crashes, a deadline just
   never fires.  The log comparison must catch it. *)
module Timers = struct
  module Step = Netdsl_fsm.Step
  module Wheel = Netdsl_engine.Wheel
  module Sim = Netdsl_sim

  type nonrec t = {
    tm_bug : bug;
    tm_plan : Step.plan;
    mutable tm_checked : int;
  }

  let create ?(bug = No_bug) machine =
    { tm_bug = bug; tm_plan = Step.compile machine; tm_checked = 0 }

  let checked t = t.tm_checked

  (* One log line per delivered event: time, verdict, configuration. *)
  let entry plan inst time ev = function
    | Step.Fired ->
      let buf = Buffer.create 48 in
      Buffer.add_string buf
        (Printf.sprintf "t=%d %s -> %s" time (Step.event_name plan ev)
           (Step.state_name_of inst));
      for r = 0 to Step.n_registers plan - 1 do
        Buffer.add_string buf
          (Printf.sprintf " %s=%d" (Step.register_name plan r)
             (Step.register inst r))
      done;
      Buffer.contents buf
    | v -> Printf.sprintf "t=%d %s %s" time (Step.event_name plan ev)
             (match v with
             | Step.Fired -> assert false
             | Step.Unknown_event -> "unknown"
             | Step.Unhandled -> "unhandled"
             | Step.Nondeterministic -> "nondeterministic")

  let run_live t trace ~horizon =
    let plan = t.tm_plan in
    let inst = Step.instance plan in
    let w = Wheel.create () in
    let log = ref [] in
    let arms = ref 0 in
    let fire time ev =
      let v = Step.fire_id inst ev in
      log := entry plan inst time ev v :: !log;
      if v = Step.Fired then begin
        let tw = Step.timer_word plan (Step.last_transition inst) in
        if tw > 0 then begin
          incr arms;
          (* the planted wheel defect: every second arm is lost *)
          if not (t.tm_bug = Drop_expiry && !arms land 1 = 0) then
            (* the deadline is relative to the event's own time: a
               stimulus at [at] fires while the wheel still sits at
               [at - 1] (the tie rule), so fold the lag into [after];
               expiry callbacks run with the wheel at their tick and
               the correction is zero *)
            Wheel.arm w ~key:0
              ~after:(time - Wheel.now w + Step.timer_after_ms tw)
              ~ev:(Step.timer_event tw)
        end
        else if tw = Step.timer_cancel then ignore (Wheel.cancel w 0)
      end
    in
    let fire_cb ~key:_ ~ev = fire (Wheel.now w) ev in
    List.iter
      (fun (at, ev) ->
        if at > 0 then ignore (Wheel.advance w ~now:(at - 1) fire_cb);
        fire at ev)
      trace;
    ignore (Wheel.advance w ~now:horizon fire_cb);
    (inst, List.rev !log)

  let run_ref t trace ~horizon =
    let plan = t.tm_plan in
    let inst = Step.instance plan in
    let eng = Sim.Engine.create () in
    let log = ref [] in
    let pending_ev = ref (-1) in
    let tmr = ref None in
    let rec fire ev =
      let time = int_of_float (Sim.Engine.now eng) in
      let v = Step.fire_id inst ev in
      log := entry plan inst time ev v :: !log;
      if v = Step.Fired then begin
        let tw = Step.timer_word plan (Step.last_transition inst) in
        if tw > 0 then begin
          pending_ev := Step.timer_event tw;
          timer_start (float_of_int (Step.timer_after_ms tw))
        end
        else if tw = Step.timer_cancel then Sim.Timer.stop (timer ())
      end
    and timer () =
      match !tmr with
      | Some tm -> tm
      | None ->
        let tm = Sim.Timer.create eng ~on_expiry:(fun () -> fire !pending_ev) in
        tmr := Some tm;
        tm
    and timer_start after = Sim.Timer.start (timer ()) ~after in
    List.iter
      (fun (at, ev) ->
        ignore
          (Sim.Engine.schedule_at eng ~time:(float_of_int at) (fun () ->
               fire ev)))
      trace;
    ignore (Sim.Engine.run ~until:(float_of_int horizon) eng);
    (inst, List.rev !log)

  let final plan inst =
    let buf = Buffer.create 32 in
    Buffer.add_string buf (Step.state_name_of inst);
    for r = 0 to Step.n_registers plan - 1 do
      Buffer.add_string buf
        (Printf.sprintf " %s=%d" (Step.register_name plan r)
           (Step.register inst r))
    done;
    Buffer.contents buf

  let check_inner t ?(horizon_ms = 4096) trace =
    let trace =
      List.stable_sort (fun (a, _) (b, _) -> compare a b) trace
      |> List.map (fun (at, name) ->
             if at < 0 then invalid_arg "Oracle.Timers.check: negative time";
             let ev = Step.event_id t.tm_plan name in
             if ev < 0 then
               invalid_arg
                 (Printf.sprintf "Oracle.Timers.check: unknown event %S" name);
             (at, ev))
    in
    let horizon =
      List.fold_left (fun acc (at, _) -> max acc at) 0 trace + horizon_ms
    in
    let inst_live, log_live = run_live t trace ~horizon in
    let inst_ref, log_ref = run_ref t trace ~horizon in
    let rec diff i a b =
      match (a, b) with
      | [], [] ->
        let fl = final t.tm_plan inst_live and fr = final t.tm_plan inst_ref in
        if String.equal fl fr then Ok ()
        else
          fail "timers" "final configurations diverged\nwheel: %s\nsim:   %s" fl
            fr
      | x :: a', y :: b' when String.equal x y -> diff (i + 1) a' b'
      | a, b ->
        let head = function [] -> "<nothing>" | x :: _ -> x in
        fail "timers"
          "step-with-wheel and simulator diverged at event #%d\nwheel: %s\nsim:   %s"
          i (head a) (head b)
    in
    diff 0 log_live log_ref

  let check ?horizon_ms t trace =
    t.tm_checked <- t.tm_checked + 1;
    match check_inner t ?horizon_ms trace with
    | exception (Invalid_argument _ as e) -> raise e
    | exception e ->
      fail "crash" "exception escaped the timer leg: %s" (Printexc.to_string e)
    | r -> r
end
