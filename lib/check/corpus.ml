module Prng = Netdsl_util.Prng
module Hexdump = Netdsl_util.Hexdump
module Desc = Netdsl_format.Desc
module Value = Netdsl_format.Value
module Codec = Netdsl_format.Codec
module Gen = Netdsl_format.Gen
module Sizing = Netdsl_format.Sizing
module Fm = Netdsl_formats
module Stack = Netdsl_format.Stack

type t = { c_fmt : Desc.t; c_seeds : string array }

let shipped =
  List.map
    (fun (fmt : Desc.t) -> (fmt.Desc.format_name, fmt))
    [ Fm.Arp.format; Fm.Arq.format; Fm.Dns.format; Fm.Ethernet.format;
      Fm.Icmp.format; Fm.Ipv4.format; Fm.Pcap.format; Fm.Tcp.format;
      Fm.Tftp.format; Fm.Tlv.format; Fm.Udp.format ]

let find_shipped name = List.assoc_opt name shipped

(* The two formats whose derived-field dependencies Gen cannot invert
   (header-length words feeding their own checksums).  These were
   previously duplicated in test_view.ml and test_emit.ml. *)

let gen_ipv4_value rng =
  let payload = String.make (Prng.int rng 400) 'p' in
  let options = String.make (4 * Prng.int rng 3) 'o' in
  Fm.Ipv4.make ~identification:(Prng.int rng 0x10000)
    ~ttl:(1 + Prng.int rng 255) ~options ~protocol:Fm.Ipv4.protocol_udp
    ~source:(Fm.Ipv4.addr_of_string "10.0.0.1")
    ~destination:(Fm.Ipv4.addr_of_string "10.0.0.2")
    ~payload ()

let gen_tcp_value rng =
  let payload = String.make (Prng.int rng 200) 'p' in
  let options = String.make (4 * Prng.int rng 3) '\x01' in
  Fm.Tcp.make ~syn:(Prng.bool rng) ~ack:(Prng.bool rng)
    ~window:(Prng.int rng 0x10000) ~options ~src_port:(Prng.int rng 0x10000)
    ~dst_port:(Prng.int rng 0x10000)
    ~seq_number:(Int64.of_int (Prng.int rng 1000000))
    ~payload ()

let handcrafted =
  [ (Fm.Ipv4.format.Desc.format_name, gen_ipv4_value);
    (Fm.Tcp.format.Desc.format_name, gen_tcp_value) ]

let generic_generable fmt =
  (* Probe with a private fixed-seed generator so the caller's stream is
     untouched and the answer is deterministic. *)
  match Gen.generate_opt (Prng.of_int 1) fmt with
  | Some _ -> true
  | None -> false

let value_generator fmt =
  match List.assoc_opt fmt.Desc.format_name handcrafted with
  | Some g -> Some g
  | None ->
    if generic_generable fmt then
      Some (fun rng ->
          match Gen.generate_opt rng fmt with
          | Some v -> v
          | None -> invalid_arg "Corpus.value_generator: generation failed")
    else None

let generator fmt =
  match value_generator fmt with
  | None -> None
  | Some g -> Some (fun rng -> Codec.encode_exn fmt (g rng))

let load_hex_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
          let line = String.trim line in
          if String.length line = 0 || line.[0] = '#' then loop acc
          else loop (Hexdump.of_hex line :: acc)
      in
      loop [])

(* Reject-path seeds for formats with neither generator nor goldens: the
   oracle still has to agree on *why* these fail. *)
let fallback_seeds fmt =
  let n = max 1 (Sizing.min_bytes fmt) in
  [ String.make n '\x00'; String.make n '\xff';
    String.init (2 * n) (fun i -> Char.chr (i land 0xff)) ]

let make ?(golden = []) ?(count = 16) fmt rng =
  let generated =
    match generator fmt with
    | None -> []
    | Some g -> List.init count (fun _ -> g rng)
  in
  let seeds =
    match golden @ generated with [] -> fallback_seeds fmt | seeds -> seeds
  in
  { c_fmt = fmt; c_seeds = Array.of_list seeds }

let format c = c.c_fmt
let seeds c = c.c_seeds
let pick c rng = Prng.pick rng c.c_seeds

exception No_chain_gen

(* Generic chained values for a stack the catalogue does not know: one
   generated value per layer, each carrier's demux field pinned to its
   first accepted edge and its payload cleared for the encoder to
   splice. *)
let generic_stack_values stack rng =
  let n = List.length (Stack.layer_names stack) in
  Array.init n (fun i ->
      let fmt = Stack.layer_format stack i in
      let v =
        match value_generator fmt with
        | Some g -> g rng
        | None -> raise No_chain_gen
      in
      if i = n - 1 then v
      else
        let field, edge =
          match Stack.layer_select stack i with
          | Some (f, e :: _) -> (f, e)
          | _ -> raise No_chain_gen
        in
        let via = Stack.layer_via stack i in
        Value.record
          (List.map
             (fun (name, x) ->
               if String.equal name field then (name, Value.int64 edge)
               else if String.equal name via then (name, Value.bytes "")
               else (name, x))
             (Value.to_record v)))

(* Chained golden seeds: recognised catalogue stacks get real layered
   packets built through their own fused encoder; anything else gets
   generically generated chains, so mutation starts from input that
   actually chain-decodes whenever the layers are generable at all. *)
let stack_seeds stack =
  match Stack.compile stack with
  | Error _ -> []
  | Ok plan ->
    let values =
      match Stack.name stack with
      | "inet_tftp" ->
        [ Fm.Stacks.inet_tftp_values (Fm.Tftp.Ack { block = 1 });
          Fm.Stacks.inet_tftp_values
            (Fm.Tftp.Data { block = 7; data = "payload-bytes" });
          Fm.Stacks.inet_tftp_values
            (Fm.Tftp.Rrq { filename = "boot.img"; mode = "octet" }) ]
      | "eth_arp" -> [ Fm.Stacks.eth_arp_values () ]
      | "ipv4_icmp" ->
        [ Fm.Stacks.ipv4_icmp_values ();
          Fm.Stacks.ipv4_icmp_values ~data:"abcdefgh" () ]
      | _ -> (
        let rng = Prng.of_int 20260806 in
        try List.init 4 (fun _ -> generic_stack_values stack rng)
        with No_chain_gen -> [])
    in
    List.filter_map
      (fun vs -> match Stack.encode plan vs with Ok s -> Some s | Error _ -> None)
      values
