module Prng = Netdsl_util.Prng
module Checksum = Netdsl_util.Checksum
module Desc = Netdsl_format.Desc
module Sizing = Netdsl_format.Sizing
module Stack = Netdsl_format.Stack

type kind = Scalar | Const | Computed | Checksum

type slot = {
  s_name : string;
  s_bit_off : int;
  s_bits : int;
  s_endian : Desc.endian;
  s_kind : kind;
}

type plan = { p_fmt : Desc.t; p_slots : slot list; p_min_bytes : int }

(* The static prefix: accumulate bit offsets while field sizes are known
   constants; the first variable-size or nested field ends the walk (the
   fixed-prefix rule View.key_extractor uses). *)
let plan fmt =
  let slots = ref [] in
  let bit = ref 0 in
  let stopped = ref false in
  let add name bits endian kind =
    slots := { s_name = name; s_bit_off = !bit; s_bits = bits;
               s_endian = endian; s_kind = kind }
              :: !slots;
    bit := !bit + bits
  in
  List.iter
    (fun (f : Desc.field) ->
      if not !stopped then
        match f.Desc.ty with
        | Desc.Uint { bits; endian } -> add f.Desc.name bits endian Scalar
        | Desc.Bool_flag -> add f.Desc.name 1 Desc.Big Scalar
        | Desc.Const { bits; endian; _ } -> add f.Desc.name bits endian Const
        | Desc.Enum { bits; endian; _ } -> add f.Desc.name bits endian Scalar
        | Desc.Computed { bits; endian; _ } -> add f.Desc.name bits endian Computed
        | Desc.Checksum { algorithm; _ } ->
          add f.Desc.name (Checksum.width_bits algorithm) Desc.Big Checksum
        | Desc.Padding { bits } -> bit := !bit + bits
        | Desc.Bytes (Desc.Len_fixed n) -> bit := !bit + (8 * n)
        | Desc.Bytes _ | Desc.Array _ | Desc.Record _ | Desc.Variant _ ->
          stopped := true)
    fmt.Desc.fields;
  { p_fmt = fmt; p_slots = List.rev !slots; p_min_bytes = Sizing.min_bytes fmt }

let slots p = p.p_slots
let format p = p.p_fmt

type op =
  | Flip_bit of int
  | Set_byte of int * int
  | Truncate of int
  | Extend of string
  | Field_set of { name : string; bit_off : int; bits : int;
                   endian : Desc.endian; value : int64 }
  | Dup_span of { off : int; len : int; at : int }
  | Remove_span of { off : int; len : int }
  | Swap_spans of { off1 : int; off2 : int; len : int }
  | Zero_span of { off : int; len : int }

(* ------------------------------------------------------------------ *)
(* Application.  Every operator is total: out-of-range targets degenerate
   to the identity so a mutation list replays on any (shrunk) input. *)

let set_bit b i v =
  let byte = i / 8 and mask = 0x80 lsr (i mod 8) in
  let c = Char.code (Bytes.get b byte) in
  Bytes.set b byte (Char.chr (if v then c lor mask else c land lnot mask))

let get_bit s i =
  let byte = i / 8 and mask = 0x80 lsr (i mod 8) in
  Char.code (Bytes.get s byte) land mask <> 0

let write_bits b ~bit_off ~bits ~endian v =
  if endian = Desc.Little && bits mod 8 = 0 && bit_off mod 8 = 0 then begin
    (* whole-byte little-endian: least significant byte first on the wire *)
    let base = bit_off / 8 and n = bits / 8 in
    for i = 0 to n - 1 do
      let byte =
        Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)
      in
      Bytes.set b (base + i) (Char.chr byte)
    done
  end
  else
    (* MSB-first big-endian bit write, any width or alignment *)
    for i = 0 to bits - 1 do
      let bitv =
        Int64.logand (Int64.shift_right_logical v (bits - 1 - i)) 1L <> 0L
      in
      set_bit b (bit_off + i) bitv
    done

let apply_one op s =
  let len = String.length s in
  match op with
  | Flip_bit i ->
    if i < 0 || i >= 8 * len then s
    else begin
      let b = Bytes.of_string s in
      set_bit b i (not (get_bit b i));
      Bytes.to_string b
    end
  | Set_byte (i, v) ->
    if i < 0 || i >= len then s
    else begin
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (v land 0xFF));
      Bytes.to_string b
    end
  | Truncate n -> if n < 0 || n >= len then s else String.sub s 0 n
  | Extend tail -> s ^ tail
  | Field_set { bit_off; bits; endian; value; _ } ->
    if bit_off + bits > 8 * len then s
    else begin
      let b = Bytes.of_string s in
      write_bits b ~bit_off ~bits ~endian value;
      Bytes.to_string b
    end
  | Dup_span { off; len = n; at } ->
    if off < 0 || n <= 0 || off + n > len || at < 0 || at > len then s
    else String.sub s 0 at ^ String.sub s off n ^ String.sub s at (len - at)
  | Remove_span { off; len = n } ->
    if off < 0 || n <= 0 || off + n > len then s
    else String.sub s 0 off ^ String.sub s (off + n) (len - off - n)
  | Swap_spans { off1; off2; len = n } ->
    let lo = min off1 off2 and hi = max off1 off2 in
    if lo < 0 || n <= 0 || lo + n > hi || hi + n > len then s
    else begin
      let b = Bytes.of_string s in
      Bytes.blit_string s hi b lo n;
      Bytes.blit_string s lo b hi n;
      Bytes.to_string b
    end
  | Zero_span { off; len = n } ->
    if off < 0 || n <= 0 || off + n > len then s
    else begin
      let b = Bytes.of_string s in
      Bytes.fill b off n '\x00';
      Bytes.to_string b
    end

let apply ops s = List.fold_left (fun s op -> apply_one op s) s ops

(* ------------------------------------------------------------------ *)
(* Random generation.  All randomness is drawn here and frozen into the
   op, so repros replay without the generator. *)

let mask_for bits =
  if bits >= 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L

(* Adversarial values for a [bits]-wide field: zero, one, all-ones,
   high bit, off-by-one, random. *)
let hostile_value rng bits =
  let all = mask_for bits in
  match Prng.int rng 6 with
  | 0 -> 0L
  | 1 -> 1L
  | 2 -> all
  | 3 -> Int64.shift_left 1L (bits - 1)
  | 4 -> Int64.logand (Int64.sub all 1L) all
  | _ -> Int64.logand (Prng.next_int64 rng) all

let random_blind rng len =
  match Prng.int rng 8 with
  | 0 | 1 -> Flip_bit (Prng.int rng (8 * len))
  | 2 -> Set_byte (Prng.int rng len, Prng.byte rng)
  | 3 -> Truncate (Prng.int rng len)
  | 4 -> Extend (Prng.string rng (1 + Prng.int rng 16))
  | 5 ->
    let n = 1 + Prng.int rng (max 1 (len / 2)) in
    let off = Prng.int rng (len - n + 1) in
    Dup_span { off; len = n; at = Prng.int rng (len + 1) }
  | 6 ->
    let n = 1 + Prng.int rng len in
    Remove_span { off = Prng.int rng (len - n + 1); len = n }
  | _ ->
    let n = 1 + Prng.int rng (max 1 (len / 2)) in
    Zero_span { off = Prng.int rng (len - n + 1); len = n }

let random_targeted rng slot =
  Field_set
    {
      name = slot.s_name;
      bit_off = slot.s_bit_off;
      bits = slot.s_bits;
      endian = slot.s_endian;
      value = hostile_value rng slot.s_bits;
    }

let random p rng s =
  let len = String.length s in
  if len = 0 then [ Extend (Prng.string rng (1 + Prng.int rng 8)) ]
  else begin
    let slots = Array.of_list p.p_slots in
    let n_ops = 1 + Prng.int rng 3 in
    List.init n_ops (fun _ ->
        if Array.length slots > 0 && Prng.int rng 5 < 2 then
          (* 40%: aimed at a compiled slot — a length lie when the slot is
             Computed, checksum corruption when it is Checksum, a magic
             smash when Const, a constraint/enum probe when Scalar *)
          random_targeted rng (Prng.pick rng slots)
        else if Prng.int rng 8 = 0 && p.p_min_bytes > 0 && len >= p.p_min_bytes
        then
          (* boundary truncation: cut exactly at the static prefix edge or
             one byte either side of the minimum size *)
          Truncate (max 0 (p.p_min_bytes - 1 + Prng.int rng 3))
        else random_blind rng len)
  end

(* ------------------------------------------------------------------ *)
(* Cross-layer mutation.  A chained packet's interesting lies live at
   layer boundaries: an outer length that undercounts the inner header, a
   demux field routed at the wrong next format, an outer byte corrupted
   while the inner checksum stays valid.  The per-layer slot plans are the
   same compiled tables as [plan]; the caller supplies the seed packet's
   layer windows (from an accepting sequential decode) so every targeted
   op lands at its chained wire offset. *)

type chain_plan = {
  cp_layers : plan array;
  cp_selects : (string * int64 list) option array;
}

let chain_plan stack =
  let n = List.length (Stack.layer_names stack) in
  {
    cp_layers = Array.init n (fun i -> plan (Stack.layer_format stack i));
    cp_selects = Array.init n (fun i -> Stack.layer_select stack i);
  }

let find_slot p name = List.find_opt (fun s -> String.equal s.s_name name) p.p_slots

let shift_slot ~byte_off slot value =
  Field_set
    {
      name = slot.s_name;
      bit_off = slot.s_bit_off + (8 * byte_off);
      bits = slot.s_bits;
      endian = slot.s_endian;
      value;
    }

let random_chain cp ~windows rng s =
  let len = String.length s in
  let n = Array.length cp.cp_layers in
  if len = 0 || Array.length windows <> n then
    (* the seed never chain-decoded; aim at the outermost layer only *)
    random cp.cp_layers.(0) rng s
  else begin
    (* bytes of layer [i]'s own header: up to where the next layer starts *)
    let header_len i =
      let off, l = windows.(i) in
      if i + 1 < n then fst windows.(i + 1) - off else l
    in
    let carrier () = Prng.int rng (n - 1) in
    let gen_one () =
      match Prng.int rng 10 with
      | 0 | 1 | 2 -> (
        (* any compiled slot of any layer, at its chained offset *)
        let i = Prng.int rng n in
        let slots = Array.of_list cp.cp_layers.(i).p_slots in
        if Array.length slots = 0 then random_blind rng len
        else
          let slot = Prng.pick rng slots in
          shift_slot ~byte_off:(fst windows.(i)) slot
            (hostile_value rng slot.s_bits))
      | 3 | 4 -> (
        (* demux lie: route a carrier at the wrong next format *)
        let i = carrier () in
        match cp.cp_selects.(i) with
        | Some (field, vs) -> (
          match find_slot cp.cp_layers.(i) field with
          | Some slot ->
            let wrong =
              match Prng.int rng 3 with
              | 0 -> Int64.add (List.nth vs (Prng.int rng (List.length vs))) 1L
              | 1 -> 0L
              | _ -> hostile_value rng slot.s_bits
            in
            shift_slot ~byte_off:(fst windows.(i)) slot wrong
          | None -> random_blind rng len)
        | None -> random_blind rng len)
      | 5 | 6 -> (
        (* outer length lie: shorter than the inner layers need *)
        let i = carrier () in
        match List.filter (fun sl -> sl.s_kind = Computed) cp.cp_layers.(i).p_slots with
        | [] -> random_blind rng len
        | computed ->
          let slot = List.nth computed (Prng.int rng (List.length computed)) in
          let lie = Int64.of_int (Prng.int rng (header_len i + 4)) in
          shift_slot ~byte_off:(fst windows.(i)) slot lie)
      | 7 ->
        (* corrupt one outer header byte, inner layers untouched: every
           inner checksum stays valid under the outer corruption *)
        let i = carrier () in
        let off = fst windows.(i) and hl = max 1 (header_len i) in
        Set_byte (off + Prng.int rng hl, Prng.byte rng)
      | _ -> random_blind rng len
    in
    List.init (1 + Prng.int rng 3) (fun _ -> gen_one ())
  end

let op_to_string = function
  | Flip_bit i -> Printf.sprintf "flip_bit %d" i
  | Set_byte (i, v) -> Printf.sprintf "set_byte %d 0x%02x" i v
  | Truncate n -> Printf.sprintf "truncate %d" n
  | Extend s -> Printf.sprintf "extend %s" (Netdsl_util.Hexdump.to_hex s)
  | Field_set { name; bit_off; bits; value; _ } ->
    Printf.sprintf "field_set %s@%d:%d=%Ld" name bit_off bits value
  | Dup_span { off; len; at } -> Printf.sprintf "dup_span %d+%d@%d" off len at
  | Remove_span { off; len } -> Printf.sprintf "remove_span %d+%d" off len
  | Swap_spans { off1; off2; len } ->
    Printf.sprintf "swap_spans %d<->%d+%d" off1 off2 len
  | Zero_span { off; len } -> Printf.sprintf "zero_span %d+%d" off len
