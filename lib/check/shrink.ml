(* Greedy bounded delta debugging.  Both shrinkers maintain the invariant
   that [best] satisfies the predicate, and only replace it with a
   strictly smaller (or simpler) candidate that also satisfies it. *)

let with_budget max_tests holds =
  let used = ref 0 in
  fun candidate ->
    if !used >= max_tests then false
    else begin
      incr used;
      holds candidate
    end

let bytes ?(max_tests = 4000) holds s =
  if not (holds s) then
    invalid_arg "Shrink.bytes: predicate does not hold on the input";
  let try_ = with_budget max_tests holds in
  let best = ref s in
  (* Phase 1: structural — cut chunks at halving granularity. *)
  let progress = ref true in
  while !progress do
    progress := false;
    let n = String.length !best in
    (* suffix and prefix cuts first: boundary bugs shrink in two steps *)
    List.iter
      (fun k ->
        let n = String.length !best in
        if k > 0 && k < n then begin
          let suffix_cut = String.sub !best 0 (n - k) in
          if try_ suffix_cut then begin best := suffix_cut; progress := true end
          else
            let prefix_cut = String.sub !best k (n - k) in
            if try_ prefix_cut then begin best := prefix_cut; progress := true end
        end)
      [ n / 2; n / 4; 1 ];
    (* chunk removal in the middle *)
    let chunk = ref (max 1 (String.length !best / 2)) in
    while !chunk >= 1 do
      let n = String.length !best in
      let i = ref 0 in
      while !i + !chunk <= n && String.length !best = n do
        let cand =
          String.sub !best 0 !i
          ^ String.sub !best (!i + !chunk) (n - !i - !chunk)
        in
        if String.length cand < n && try_ cand then begin
          best := cand;
          progress := true
        end
        else i := !i + !chunk
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done
  done;
  (* Phase 2: simplify surviving bytes towards zero, one pass. *)
  let n = String.length !best in
  for i = 0 to n - 1 do
    let cur = !best in
    if i < String.length cur && cur.[i] <> '\x00' then begin
      let b = Bytes.of_string cur in
      Bytes.set b i '\x00';
      let cand = Bytes.to_string b in
      if try_ cand then best := cand
    end
  done;
  !best

let list ?(max_tests = 4000) holds xs =
  if not (holds xs) then
    invalid_arg "Shrink.list: predicate does not hold on the input";
  let try_ = with_budget max_tests holds in
  let best = ref xs in
  let remove_span xs i k =
    List.filteri (fun j _ -> j < i || j >= i + k) xs
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let chunk = ref (max 1 (List.length !best / 2)) in
    while !chunk >= 1 do
      let n = List.length !best in
      let i = ref 0 in
      while !i + !chunk <= List.length !best && List.length !best = n do
        let cand = remove_span !best !i !chunk in
        if try_ cand then begin
          best := cand;
          progress := true
        end
        else i := !i + !chunk
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done
  done;
  !best
