(** Structure-aware wire mutation driven by a format description.

    A plain bit-flip fuzzer spends most of its budget re-discovering the
    outermost validation layer; the interesting rejection paths (length
    fields that lie about the data they describe, checksums over corrupted
    regions, truncation exactly at a field boundary) sit behind structure
    it cannot see.  {!plan} compiles a {!Netdsl_format.Desc.t} once into a table of the
    fixed-offset scalar slots of the format — which bits hold a plain
    integer, which a derived length, which a checksum — so the mutator can
    aim: length-field lies, checksum corruption, enum/constraint
    violations, boundary truncation, plus the classic blind operators
    (bit flips, chunk duplication/reorder/removal, zero runs, trailing
    garbage).

    Every {!op} carries all of its own randomness, so a mutation list in a
    repro replays bit-for-bit with {!apply} — no generator state needed. *)

type kind =
  | Scalar  (** uint / bool / enum: plain value-bearing bits *)
  | Const  (** fixed magic, checked on decode *)
  | Computed  (** derived on encode, re-derived and compared on decode —
                  the length-of / header-length fields *)
  | Checksum  (** computed on encode, verified on decode *)

type slot = {
  s_name : string;
  s_bit_off : int;  (** absolute bit offset from the start of the message *)
  s_bits : int;
  s_endian : Netdsl_format.Desc.endian;
  s_kind : kind;
}
(** One fixed-offset scalar field of the format's static prefix. *)

type plan

val plan : Netdsl_format.Desc.t -> plan
(** Walks the top-level fields of the description, accumulating bit
    offsets while sizes are static; the walk stops at the first
    variable-size or nested field (the same fixed-prefix rule as
    {!View.key_extractor}). *)

val slots : plan -> slot list
val format : plan -> Netdsl_format.Desc.t

(** A single self-contained mutation.  [Field_set] targets a compiled
    {!slot} — with the slot's kind it is a length lie, a checksum
    corruption, a constant smash or a constraint violation. *)
type op =
  | Flip_bit of int  (** absolute bit index *)
  | Set_byte of int * int
  | Truncate of int  (** keep only the first [n] bytes *)
  | Extend of string  (** append trailing bytes *)
  | Field_set of { name : string; bit_off : int; bits : int;
                   endian : Netdsl_format.Desc.endian; value : int64 }
  | Dup_span of { off : int; len : int; at : int }
      (** insert a copy of [off, off+len) at byte position [at] —
          duplicated TLVs / array elements *)
  | Remove_span of { off : int; len : int }
  | Swap_spans of { off1 : int; off2 : int; len : int }
      (** reorder two non-overlapping equal-length spans *)
  | Zero_span of { off : int; len : int }

val apply : op list -> string -> string
(** Applies the ops left to right.  Total: an op that no longer fits the
    (possibly already truncated) message degenerates to the identity, so a
    shrunk input still replays the same list. *)

val random : plan -> Netdsl_util.Prng.t -> string -> op list
(** A random mutation list (1–3 ops) for one seed packet: targeted slot
    mutations when the plan has slots, blind operators always. *)

val op_to_string : op -> string
(** Compact deterministic rendering used by {!Report} repros. *)

(** {2 Cross-layer mutation}

    For layered packets ({!Netdsl_format.Stack}), the lies that matter
    straddle layer boundaries: an outer length field undercounting the
    inner header, a demux field routed at the wrong next format, an outer
    byte corrupted while the inner checksum stays valid.  {!chain_plan}
    compiles one slot {!plan} per layer plus the chain's demux edges;
    {!random_chain} then emits ordinary {!op}s whose offsets are shifted
    to each layer's window in the concrete seed packet — repros replay
    with plain {!apply}, exactly like single-format mutations. *)

type chain_plan

val chain_plan : Netdsl_format.Stack.t -> chain_plan

val random_chain :
  chain_plan -> windows:(int * int) array -> Netdsl_util.Prng.t -> string -> op list
(** [random_chain cp ~windows rng seed] draws 1–3 ops aimed at chained
    offsets; [windows] gives each layer's [(byte_off, byte_len)] in
    [seed], as reported by an accepting {!Netdsl_format.Stack.Seq} decode.
    Pass [ [||] ] for a seed that does not chain-decode — mutation then
    falls back to the outermost layer's plan. *)
