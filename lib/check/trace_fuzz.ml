module Prng = Netdsl_util.Prng
module Machine = Netdsl_fsm.Machine
module Interp = Netdsl_fsm.Interp
module Step = Netdsl_fsm.Step
module Testgen = Netdsl_fsm.Testgen

type stats = { traces : int; events : int; fired : int; refused : int }

type disagreement = {
  t_machine : string;
  t_trace : string list;
  t_detail : string;
}

let disagreement_to_string d =
  Printf.sprintf "machine %s, trace [%s]: %s" d.t_machine
    (String.concat " " d.t_trace)
    d.t_detail

(* An event name no machine declares: the "unknown event" injection. *)
let unknown_event = "__fuzz_unknown__"

let interp_error_to_string e = Format.asprintf "%a" Interp.pp_error e

let config_to_string c = Format.asprintf "%a" Machine.pp_config c

(* Replay one trace on a fresh instance pair, comparing verdict and full
   configuration after every event.  [bug] corrupts the compiled side's
   reported configuration once a transition has fired — the planted
   defect the self-test must catch. *)
let replay ~bug plan prepared trace =
  let step = Step.instance plan in
  let interp = Interp.instantiate prepared in
  let fired = ref 0 and refused = ref 0 in
  let rec go = function
    | [] -> Ok (!fired, !refused)
    | ev :: rest -> (
      let sv = Step.fire step ev in
      let ir = Interp.fire interp ev in
      let verdicts_agree =
        match (sv, ir) with
        | Step.Fired, Ok _ -> true
        | Step.Unknown_event, Error (Interp.Unknown_event _) -> true
        | Step.Unhandled, Error (Interp.Unhandled _) -> true
        | Step.Nondeterministic, Error (Interp.Nondeterministic _) -> true
        | _ -> false
      in
      if not verdicts_agree then
        Error
          (Printf.sprintf "verdicts diverge on %S: step %s, interp %s" ev
             (Step.describe step ev sv)
             (match ir with
             | Ok t -> Printf.sprintf "fired [%s]" t.Machine.t_label
             | Error e -> interp_error_to_string e))
      else begin
        (match sv with Step.Fired -> incr fired | _ -> incr refused);
        let sc = Step.config step in
        let sc =
          if bug && sv = Step.Fired then
            { sc with Machine.state = sc.Machine.state ^ "'" }
          else sc
        in
        let ic = Interp.config interp in
        if not (Machine.config_equal sc ic) then
          Error
            (Printf.sprintf "configurations diverge after %S: step %s, interp %s"
               ev (config_to_string sc) (config_to_string ic))
        else go rest
      end)
  in
  go trace

let random_trace rng events =
  let len = 1 + Prng.int rng 24 in
  List.init len (fun _ ->
      if Prng.int rng 16 = 0 then unknown_event else Prng.pick rng events)

(* Adversarial channel moves over a mined trace. *)
let perturb rng events trace =
  let arr = ref (Array.of_list trace) in
  let splice a i insert remove =
    let n = Array.length a in
    Array.concat
      [ Array.sub a 0 i; Array.of_list insert;
        Array.sub a (i + remove) (n - i - remove) ]
  in
  let n_ops = 1 + Prng.int rng 3 in
  for _ = 1 to n_ops do
    let a = !arr in
    let n = Array.length a in
    if n > 0 then
      let i = Prng.int rng n in
      arr :=
        (match Prng.int rng 5 with
        | 0 -> splice a i [ a.(i) ] 0 (* duplicate *)
        | 1 -> splice a i [] 1 (* drop *)
        | 2 when i + 1 < n ->
          let b = Array.copy a in
          b.(i) <- a.(i + 1);
          b.(i + 1) <- a.(i);
          b (* reorder neighbours *)
        | 3 -> splice a i [ unknown_event ] 0 (* unknown injection *)
        | _ -> splice a i [ Prng.pick rng events ] 0 (* random insertion *))
  done;
  Array.to_list !arr

let run ?(bug = false) ~seed ~iters (name, m) =
  let plan = Step.compile m in
  let prepared = Interp.prepare m in
  let rng = Prng.of_int seed in
  let events = Array.of_list m.Machine.events in
  let mined =
    (* Testgen requires determinism; a nondeterministic machine is fuzzed
       with random traces only. *)
    match Testgen.transition_tour m with
    | segments -> segments
    | exception Invalid_argument _ -> []
  in
  let totals = ref { traces = 0; events = 0; fired = 0; refused = 0 } in
  let failure = ref None in
  let disagrees trace =
    match replay ~bug plan prepared trace with Ok _ -> false | Error _ -> true
  in
  let run_trace trace =
    if !failure = None then
      match replay ~bug plan prepared trace with
      | Ok (fired, refused) ->
        let t = !totals in
        totals :=
          {
            traces = t.traces + 1;
            events = t.events + List.length trace;
            fired = t.fired + fired;
            refused = t.refused + refused;
          }
      | Error _ ->
        let small = Shrink.list disagrees trace in
        let detail =
          match replay ~bug plan prepared small with
          | Error d -> d
          | Ok _ -> "disagreement vanished while shrinking"
        in
        failure := Some { t_machine = name; t_trace = small; t_detail = detail }
  in
  List.iter run_trace mined;
  for _ = 1 to iters do
    if !failure = None then
      run_trace
        (match mined with
        | [] -> random_trace rng events
        | _ ->
          if Prng.bool rng then perturb rng events (Prng.pick_list rng mined)
          else random_trace rng events)
  done;
  match !failure with Some d -> Error d | None -> Ok !totals
