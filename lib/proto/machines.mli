(** First-class [Machine.t] control planes for the shipped ARQ family.

    {!Stop_and_wait}, {!Go_back_n} and {!Selective_repeat} are executable
    simulator protocols; these are their guarded-FSM counterparts in the
    paper's §3.4 datatype style — registers for sequence counters and
    retry budgets, guards for window occupancy, wrap-on-assign for
    sequence arithmetic.  They serve as equivalence fixtures for the
    [Step ≡ Interp] property suite and as workloads for bench E13, so
    they deliberately exercise every construct the guard language has:
    modular window arithmetic, complementary guards on one event, and
    registers that wrap.

    {!all} collects every shipped machine (these plus {!Abp} and
    {!Arq_fsm}) under stable names. *)

val stop_and_wait :
  ?max_attempts:int -> ?timeout_ms:int -> unit -> Netdsl_fsm.Machine.t
(** Alternating-bit stop-and-wait sender with a bounded retry budget.
    Registers [alt] (domain 2) and [attempts] (domain [max_attempts + 1],
    default 3).  [timeout] retransmits while attempts remain and moves to
    ["failed"] once the budget is spent — two guarded transitions on the
    same (state, event) pair.  With [timeout_ms] the machine declares its
    own deadline: every send and retransmission arms a [timeout_ms]
    retransmission timer firing [timeout]; the matching ack — and giving
    up — cancels it. *)

val go_back_n :
  ?seq_bits:int -> ?window:int -> ?timeout_ms:int -> unit ->
  Netdsl_fsm.Machine.t
(** Go-back-N sender over a [2^seq_bits] sequence space (default 3 bits,
    window 4).  Registers [base] and [next]; the send guard computes the
    window occupancy as [(next - base) mod 2^seq_bits], so sequence
    wrap-around is on the hot path.  [timeout] rewinds [next] to [base] —
    the eponymous go-back.  A send with the window full is {e unhandled},
    not ignored.  With [timeout_ms], sends, rewinds and
    window-leaves-frames-in-flight acks (re-)arm the retransmission
    timer; the ack that empties the window cancels it (the single [ack]
    transition splits into [gbn_ack_more]/[gbn_ack_last]). *)

val selective_repeat :
  ?seq_bits:int -> ?window:int -> ?timeout_ms:int -> unit ->
  Netdsl_fsm.Machine.t
(** Selective-repeat sender: like {!go_back_n} but a [nak] marks exactly
    one outstanding frame lost ([lost] flag register) and [resend]
    retransmits only that frame, leaving [base] and [next] alone.  With
    [timeout_ms] the machine gains a [timeout] event whose expiry marks
    the oldest outstanding frame lost (so the ordinary [resend] path
    recovers it), armed by sends/naks/resends and partial acks, cancelled
    by the window-emptying ack ([sr_ack_more]/[sr_ack_last] split). *)

val all : (string * Netdsl_fsm.Machine.t) list
(** Every shipped protocol machine under a stable name: the five {!Abp}
    machines, {!Arq_fsm} sender and receiver at 3 sequence bits, and the
    three machines above at their defaults.  The [Step ≡ Interp] suite
    and bench E13 iterate this list. *)
