module M = Netdsl_fsm.Machine

let t = M.trans
let pow2 bits = 1 lsl bits

(* The [?timeout_ms] variants attach wheel ops to the existing transitions:
   every data-bearing or retransmitting move re-arms the flow's single
   timer (the retransmission idiom), and the move that empties the window
   cancels it.  [None] compiles to the exact timer-free machines the rest
   of the suite fixtures against. *)
let timer_ops timeout_ms =
  match timeout_ms with
  | None -> (M.No_timer, M.No_timer)
  | Some ms -> (M.Arm_timer { after_ms = ms; fire = "timeout" }, M.Cancel_timer)

let stop_and_wait ?(max_attempts = 3) ?timeout_ms () =
  M.machine ~name:"saw_sender"
    ~states:[ "idle"; "awaiting_ack"; "failed"; "closed" ]
    ~events:[ "send"; "ack0"; "ack1"; "timeout"; "close" ]
    ~registers:
      [ M.reg "alt" ~domain:2; M.reg "attempts" ~domain:(max_attempts + 1) ]
    ~initial:"idle" ~accepting:[ "idle"; "closed" ]
    ~ignores:
      [
        ("idle", "timeout");
        ("awaiting_ack", "send"); ("awaiting_ack", "close");
        ("failed", "send"); ("failed", "ack0"); ("failed", "ack1");
        ("failed", "timeout");
        ("closed", "send"); ("closed", "ack0"); ("closed", "ack1");
        ("closed", "timeout"); ("closed", "close");
      ]
    (let arm, cancel = timer_ops timeout_ms in
    [
      t ~label:"saw_send" ~src:"idle" ~event:"send" ~dst:"awaiting_ack"
        ~actions:[ M.Assign ("attempts", M.Int 0) ]
        ~timer:arm ();
      (* The matching acknowledgement flips the alternating bit; the stale
         one is consumed in place.  Each ack event carries two
         complementary guards on the same (state, event) slot. *)
      t ~label:"saw_acked0" ~src:"awaiting_ack" ~event:"ack0" ~dst:"idle"
        ~guard:(M.Eq (M.Reg "alt", M.Int 0))
        ~actions:[ M.Assign ("alt", M.Add (M.Reg "alt", M.Int 1)) ]
        ~timer:cancel ();
      t ~label:"saw_stale0" ~src:"awaiting_ack" ~event:"ack0"
        ~dst:"awaiting_ack"
        ~guard:(M.Eq (M.Reg "alt", M.Int 1))
        ();
      t ~label:"saw_acked1" ~src:"awaiting_ack" ~event:"ack1" ~dst:"idle"
        ~guard:(M.Eq (M.Reg "alt", M.Int 1))
        ~actions:[ M.Assign ("alt", M.Add (M.Reg "alt", M.Int 1)) ]
        ~timer:cancel ();
      t ~label:"saw_stale1" ~src:"awaiting_ack" ~event:"ack1"
        ~dst:"awaiting_ack"
        ~guard:(M.Eq (M.Reg "alt", M.Int 0))
        ();
      t ~label:"saw_retransmit" ~src:"awaiting_ack" ~event:"timeout"
        ~dst:"awaiting_ack"
        ~guard:(M.Lt (M.Reg "attempts", M.Int max_attempts))
        ~actions:[ M.Assign ("attempts", M.Add (M.Reg "attempts", M.Int 1)) ]
        ~timer:arm ();
      t ~label:"saw_give_up" ~src:"awaiting_ack" ~event:"timeout" ~dst:"failed"
        ~guard:(M.Not (M.Lt (M.Reg "attempts", M.Int max_attempts)))
        ~timer:cancel ();
      (* Late acknowledgements after the round closed are absorbed. *)
      t ~label:"saw_late0" ~src:"idle" ~event:"ack0" ~dst:"idle" ();
      t ~label:"saw_late1" ~src:"idle" ~event:"ack1" ~dst:"idle" ();
      t ~label:"saw_close" ~src:"idle" ~event:"close" ~dst:"closed" ();
    ])

let go_back_n ?(seq_bits = 3) ?(window = 4) ?timeout_ms () =
  let d = pow2 seq_bits in
  let occupancy = M.Mod (M.Sub (M.Reg "next", M.Reg "base"), M.Int d) in
  let arm, cancel = timer_ops timeout_ms in
  let outstanding = M.Ne (M.Reg "base", M.Reg "next") in
  (* An ack that leaves frames in flight must re-arm the retransmission
     timer; the ack that empties the window cancels it.  With timers off
     that distinction is moot and one transition covers both. *)
  let acks =
    match timeout_ms with
    | None ->
      [
        t ~label:"gbn_ack" ~src:"open" ~event:"ack" ~dst:"open"
          ~guard:outstanding
          ~actions:[ M.Assign ("base", M.Add (M.Reg "base", M.Int 1)) ]
          ();
      ]
    | Some _ ->
      let empties =
        M.Eq (M.Mod (M.Add (M.Reg "base", M.Int 1), M.Int d), M.Reg "next")
      in
      [
        t ~label:"gbn_ack_more" ~src:"open" ~event:"ack" ~dst:"open"
          ~guard:(M.And (outstanding, M.Not empties))
          ~actions:[ M.Assign ("base", M.Add (M.Reg "base", M.Int 1)) ]
          ~timer:arm ();
        t ~label:"gbn_ack_last" ~src:"open" ~event:"ack" ~dst:"open"
          ~guard:(M.And (outstanding, empties))
          ~actions:[ M.Assign ("base", M.Add (M.Reg "base", M.Int 1)) ]
          ~timer:cancel ();
      ]
  in
  M.machine ~name:"gbn_sender"
    ~states:[ "open"; "done" ]
    ~events:[ "send"; "ack"; "timeout"; "finish" ]
    ~registers:[ M.reg "base" ~domain:d; M.reg "next" ~domain:d ]
    ~initial:"open" ~accepting:[ "done" ]
    ~ignores:
      [
        ("done", "send"); ("done", "ack"); ("done", "timeout");
        ("done", "finish");
      ]
    ([
       (* Window occupancy is (next - base) mod 2^bits, so the guard rides
          the wrap-around; a send with the window full is unhandled. *)
       t ~label:"gbn_send" ~src:"open" ~event:"send" ~dst:"open"
         ~guard:(M.Lt (occupancy, M.Int window))
         ~actions:[ M.Assign ("next", M.Add (M.Reg "next", M.Int 1)) ]
         ~timer:arm ();
     ]
    @ acks
    @ [
        (* The go-back: every unacknowledged frame is retransmitted, so the
           send counter rewinds to the window base. *)
        t ~label:"gbn_timeout" ~src:"open" ~event:"timeout" ~dst:"open"
          ~guard:outstanding
          ~actions:[ M.Assign ("next", M.Reg "base") ]
          ~timer:arm ();
        t ~label:"gbn_finish" ~src:"open" ~event:"finish" ~dst:"done"
          ~guard:(M.Eq (M.Reg "base", M.Reg "next"))
          ~timer:cancel ();
      ])

let selective_repeat ?(seq_bits = 3) ?(window = 4) ?timeout_ms () =
  let d = pow2 seq_bits in
  let occupancy = M.Mod (M.Sub (M.Reg "next", M.Reg "base"), M.Int d) in
  let nothing_lost = M.Eq (M.Reg "lost", M.Int 0) in
  let arm, cancel = timer_ops timeout_ms in
  let outstanding = M.Ne (M.Reg "base", M.Reg "next") in
  (* Same split as {!go_back_n}: with timers on, the ack that empties the
     window cancels where every other ack re-arms. *)
  let acks =
    match timeout_ms with
    | None ->
      [
        t ~label:"sr_ack" ~src:"open" ~event:"ack" ~dst:"open"
          ~guard:(M.And (outstanding, nothing_lost))
          ~actions:[ M.Assign ("base", M.Add (M.Reg "base", M.Int 1)) ]
          ();
      ]
    | Some _ ->
      let empties =
        M.Eq (M.Mod (M.Add (M.Reg "base", M.Int 1), M.Int d), M.Reg "next")
      in
      [
        t ~label:"sr_ack_more" ~src:"open" ~event:"ack" ~dst:"open"
          ~guard:(M.And (M.And (outstanding, nothing_lost), M.Not empties))
          ~actions:[ M.Assign ("base", M.Add (M.Reg "base", M.Int 1)) ]
          ~timer:arm ();
        t ~label:"sr_ack_last" ~src:"open" ~event:"ack" ~dst:"open"
          ~guard:(M.And (M.And (outstanding, nothing_lost), empties))
          ~actions:[ M.Assign ("base", M.Add (M.Reg "base", M.Int 1)) ]
          ~timer:cancel ();
      ]
  in
  (* The timer-free machine has no timeout event at all; the timed variant
     grows one, whose expiry marks the oldest outstanding frame lost so
     the ordinary [resend] path retransmits it. *)
  let timeouts =
    match timeout_ms with
    | None -> []
    | Some _ ->
      [
        t ~label:"sr_timeout" ~src:"open" ~event:"timeout" ~dst:"open"
          ~guard:outstanding
          ~actions:[ M.Assign ("lost", M.Int 1) ]
          ~timer:arm ();
      ]
  in
  M.machine ~name:"sr_sender"
    ~states:[ "open"; "done" ]
    ~events:
      ([ "send"; "ack"; "nak"; "resend"; "finish" ]
      @ if timeout_ms = None then [] else [ "timeout" ])
    ~registers:
      [ M.reg "base" ~domain:d; M.reg "next" ~domain:d; M.reg "lost" ~domain:2 ]
    ~initial:"open" ~accepting:[ "done" ]
    ~ignores:
      ([
         ("done", "send"); ("done", "ack"); ("done", "nak");
         ("done", "resend"); ("done", "finish");
       ]
      @ if timeout_ms = None then [] else [ ("done", "timeout") ])
    ([
       t ~label:"sr_send" ~src:"open" ~event:"send" ~dst:"open"
         ~guard:(M.And (M.Lt (occupancy, M.Int window), nothing_lost))
         ~actions:[ M.Assign ("next", M.Add (M.Reg "next", M.Int 1)) ]
         ~timer:arm ();
     ]
    @ acks
    @ [
        t ~label:"sr_nak" ~src:"open" ~event:"nak" ~dst:"open"
          ~guard:(M.And (outstanding, nothing_lost))
          ~actions:[ M.Assign ("lost", M.Int 1) ]
          ~timer:arm ();
        (* Unlike go-back-N, only the one reported frame is retransmitted:
           base and next are untouched. *)
        t ~label:"sr_resend" ~src:"open" ~event:"resend" ~dst:"open"
          ~guard:(M.Eq (M.Reg "lost", M.Int 1))
          ~actions:[ M.Assign ("lost", M.Int 0) ]
          ~timer:arm ();
        t ~label:"sr_finish" ~src:"open" ~event:"finish" ~dst:"done"
          ~guard:(M.And (M.Eq (M.Reg "base", M.Reg "next"), nothing_lost))
          ~timer:cancel ();
      ]
    @ timeouts)

let all =
  [
    ("abp_sender", Abp.sender);
    ("abp_data_channel", Abp.data_channel);
    ("abp_ack_channel", Abp.ack_channel);
    ("abp_receiver", Abp.receiver);
    ("abp_buggy_receiver", Abp.buggy_receiver);
    ("arq_sender", Arq_fsm.sender ~seq_bits:3);
    ("arq_receiver", Arq_fsm.receiver ~seq_bits:3);
    ("stop_and_wait", stop_and_wait ());
    ("go_back_n", go_back_n ());
    ("selective_repeat", selective_repeat ());
  ]
