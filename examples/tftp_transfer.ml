(* A TFTP read transfer (RFC 1350) over a lossy simulated link: the client
   requests a file, the server sends 512-byte DATA blocks, each
   acknowledged lock-step, with retransmission on timeout — the paper's
   stop-and-wait ARQ as it ships in a real protocol, using the TFTP wire
   format defined in the DSL.

   Run with: dune exec examples/tftp_transfer.exe *)

open Netdsl

let block_size = 512

(* The served file: big enough for several blocks, with a non-full final
   block so the termination rule (short block ends the transfer) fires. *)
let file_bytes =
  String.concat ""
    (List.init 40 (fun i -> Printf.sprintf "line %03d of the served file.\n" i))

let block_of_file n =
  (* 1-based block numbers, RFC 1350. *)
  let off = (n - 1) * block_size in
  if off >= String.length file_bytes then ""
  else String.sub file_bytes off (min block_size (String.length file_bytes - off))

let () =
  let engine = Sim_engine.create () in
  let rng = Prng.create 77L in
  let cfg = Channel.config ~loss:0.25 ~delay:(Channel.Uniform (0.01, 0.03)) () in
  let to_server = ref (fun (_ : string) -> ()) in
  let to_client = ref (fun (_ : string) -> ()) in
  let client_ch = Channel.create engine (Prng.split rng) cfg ~deliver:(fun b -> !to_server b) in
  let server_ch = Channel.create engine (Prng.split rng) cfg ~deliver:(fun b -> !to_client b) in

  let retransmissions = ref 0 in

  (* Server: answers RRQ with block 1; on ACK n sends block n+1; resends
     the outstanding block on timeout. *)
  let server_block = ref 0 in
  let server_timer = ref None in
  let server_send n =
    let data = block_of_file n in
    Channel.send server_ch (Formats.Tftp.to_bytes_exn (Formats.Tftp.Data { block = n; data }));
    match !server_timer with Some t -> Timer.start t ~after:0.15 | None -> ()
  in
  server_timer :=
    Some
      (Timer.create engine ~on_expiry:(fun () ->
           if !server_block > 0 then begin
             incr retransmissions;
             server_send !server_block
           end));
  let last_block = 1 + (String.length file_bytes / block_size) in
  (to_server :=
     fun bytes ->
       match Formats.Tftp.of_bytes bytes with
       | Ok (Formats.Tftp.Rrq { filename; mode }) ->
         Printf.printf "%8.3fs server: RRQ for %S (%s)\n" (Sim_engine.now engine) filename mode;
         server_block := 1;
         server_send 1
       | Ok (Formats.Tftp.Ack { block }) ->
         if block = !server_block then
           if block >= last_block then begin
             Printf.printf "%8.3fs server: transfer complete\n" (Sim_engine.now engine);
             server_block := 0;
             match !server_timer with Some t -> Timer.stop t | None -> ()
           end
           else begin
             server_block := block + 1;
             server_send (block + 1)
           end
       | Ok _ -> ()
       | Error _ -> () (* a corrupt frame would simply be dropped *));

  (* Client: expects blocks in order, re-acks duplicates, finishes on a
     short block. *)
  let received = Buffer.create 1024 in
  let expected = ref 1 in
  let done_at = ref None in
  (to_client :=
     fun bytes ->
       match Formats.Tftp.of_bytes bytes with
       | Ok (Formats.Tftp.Data { block; data }) ->
         if block = !expected then begin
           Buffer.add_string received data;
           Printf.printf "%8.3fs client: block %d (%d bytes)\n" (Sim_engine.now engine) block
             (String.length data);
           Channel.send client_ch (Formats.Tftp.to_bytes_exn (Formats.Tftp.Ack { block }));
           if String.length data < block_size && !done_at = None then
             done_at := Some (Sim_engine.now engine)
           else incr expected
         end
         else
           (* Duplicate (our ACK was lost): re-acknowledge, do not store. *)
           Channel.send client_ch (Formats.Tftp.to_bytes_exn (Formats.Tftp.Ack { block }))
       | Ok _ | Error _ -> ());

  Printf.printf "requesting %d-byte file over a 25%%-lossy link\n\n" (String.length file_bytes);
  Channel.send client_ch
    (Formats.Tftp.to_bytes_exn (Formats.Tftp.Rrq { filename = "served.txt"; mode = "octet" }));
  ignore (Sim_engine.run ~until:60.0 engine);

  let ok = String.equal (Buffer.contents received) file_bytes in
  Printf.printf "\nreceived %d bytes, identical to the served file: %b\n"
    (Buffer.length received) ok;
  Printf.printf "server retransmissions: %d; finished at %s\n" !retransmissions
    (match !done_at with Some t -> Printf.sprintf "%.3fs" t | None -> "never");
  if not ok then exit 1
