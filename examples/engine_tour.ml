(* A tour of the packet-processing runtime (Netdsl.Engine): the same DSL
   format descriptions that drive the codec, the simulator and the
   verifier here drive a high-throughput engine — zero-copy validated
   decode, a batched pipeline with an attached protocol machine, automatic
   responses, per-stage counters, and multicore flow sharding.

   Three scenes:
     1. an ARQ receiver pipeline that acknowledges valid DATA packets and
        counts the corrupted ones it refused;
     2. a TFTP server loop built from a classify/respond pair on the
        variant-dispatched TFTP format;
     3. the same ARQ traffic sharded across worker domains by the
        DSL-declared "seq" field.

   Run with: dune exec examples/engine_tour.exe *)

open Netdsl

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

(* ------------------------------------------------------------------ *)
(* Scene 1: ARQ receive path.  The pipeline decodes with the zero-copy
   view (checksum verified before any field is surfaced), steps the
   paper's receiver machine on each valid DATA packet, and emits the
   matching ACK.  Corrupted packets never reach the machine. *)

let arq_traffic rng n =
  Array.init n (fun i ->
      let pkt =
        Formats.Arq.to_bytes
          (Formats.Arq.Data { seq = i mod 256; payload = "segment " ^ string_of_int i })
      in
      (* every 7th packet is damaged in flight *)
      if i mod 7 = 3 then Gen.mutate rng ~flips:2 pkt else pkt)

let scene_receiver () =
  rule "1. ARQ receiver pipeline: decode, step, acknowledge";
  let acks = ref 0 in
  let pipeline =
    Engine.Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Arq_fsm.receiver ~seq_bits:8)
      ~respond:(fun view _machine ->
        if View.get_int view "kind" = 0L then
          let seq = Int64.to_int (View.get_int view "seq") in
          Some
            (Value.record
               [ ("seq", Value.int seq); ("kind", Value.int 1);
                 ("payload", Value.bytes "") ])
        else None)
      ~on_response:(fun _ack -> incr acks)
      Formats.Arq.format
  in
  let rng = Prng.of_int 42 in
  let pkts = arq_traffic rng 2000 in
  Array.iter (fun pkt -> ignore (Engine.Pipeline.process pipeline pkt)) pkts;
  let stats = Engine.Pipeline.stats pipeline in
  let d = Engine.Stats.stage_index stats "decode" in
  Printf.printf "packets in          : %d\n" (Array.length pkts);
  Printf.printf "refused at decode   : %d (checksum/length/constraint)\n"
    (Engine.Stats.stage_rejects stats d);
  Printf.printf "acknowledgements out: %d\n" !acks

(* ------------------------------------------------------------------ *)
(* Scene 2: a TFTP server loop.  TFTP dispatches on an opcode variant;
   [classify] turns validated views into machine-free events and
   [respond] answers DATA n with ACK n — the lock-step rule of RFC 1350
   written as two small functions over views. *)

(* The server side of RFC 1350 as a machine: idle until a read request,
   then acknowledging DATA blocks in lock-step. *)
let tftp_server_machine =
  Machine.machine ~name:"tftp_server"
    ~states:[ "idle"; "sending" ]
    ~events:[ "rrq"; "data" ]
    ~initial:"idle" ~accepting:[ "idle"; "sending" ]
    ~ignores:[ ("sending", "rrq") ]
    [ Machine.trans ~label:"RRQ" ~src:"idle" ~event:"rrq" ~dst:"sending" ();
      Machine.trans ~label:"DATA" ~src:"sending" ~event:"data" ~dst:"sending" () ]

let scene_tftp () =
  rule "2. TFTP server loop: variant dispatch, lock-step ACKs";
  let replies = ref [] in
  let pipeline =
    Engine.Pipeline.create
      ~classify:(fun view ->
        match View.variant_case view "body" with
        | Some ("rrq" | "data") as ev -> ev
        | _ -> None)
      ~machine:tftp_server_machine
      ~respond:(fun view _ ->
        (* view accessors address top-level fields; for the block number
           inside the variant body, materialise the value (the same full
           tree the codec would have built) *)
        match Value.get (View.to_value view) "body" with
        | Value.Variant ("data", body) ->
          let block = Value.get_int body "block" in
          Some
            (Value.record
               [ ("opcode", Value.int 4);
                 ("body", Value.variant "ack" (Value.record [ ("block", Value.int block) ]))
               ])
        | _ -> None)
      ~on_response:(fun bytes -> replies := bytes :: !replies)
      Formats.Tftp.format
  in
  let transfer =
    Formats.Tftp.to_bytes_exn (Formats.Tftp.Rrq { filename = "notes.txt"; mode = "octet" })
    :: List.concat_map
         (fun block ->
           [ Formats.Tftp.to_bytes_exn
               (Formats.Tftp.Data { block; data = String.make (if block < 4 then 512 else 131) 'd' }) ])
         [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun pkt ->
      match Formats.Tftp.of_bytes pkt with
      | Ok p ->
        let outcome = Engine.Pipeline.process pipeline pkt in
        Printf.printf "%-28s %s\n"
          (Format.asprintf "%a" Formats.Tftp.pp_packet p)
          (match outcome with Engine.Pipeline.Accepted -> "accepted" | _ -> "refused")
      | Error _ -> ())
    transfer;
  List.iter
    (fun bytes ->
      match Formats.Tftp.of_bytes bytes with
      | Ok p -> Format.printf "  server replied: %a@." Formats.Tftp.pp_packet p
      | Error e -> Format.printf "  server replied with junk: %s@." e)
    (List.rev !replies)

(* ------------------------------------------------------------------ *)
(* Scene 3: flow sharding.  [Shard.feed] reads the declared key straight
   from the raw bytes (no decode) and hashes it to a worker domain; every
   packet of a flow lands on the same domain, so per-flow machines need
   no locks.  On a single-core container the domains interleave rather
   than parallelise — the structure is the point here; experiment E11
   measures the throughput. *)

let scene_shard () =
  rule "3. Multicore flow sharding by the DSL-declared \"seq\" field";
  let config = { Engine.Shard.workers = 2; pipeline = Engine.Pipeline.default_config } in
  (* two workers on purpose even on a one-core box: the sharding structure
     is the point of the scene, so opt out of the core clamp *)
  match
    Engine.Shard.create ~config ~allow_oversubscribe:true ~key:"seq"
      Formats.Arq.format
  with
  | Error e -> Printf.printf "shard setup refused: %s\n" e
  | Ok shard ->
    Engine.Shard.start shard;
    let rng = Prng.of_int 43 in
    let pkts = arq_traffic rng 4000 in
    Array.iter (fun pkt -> ignore (Engine.Shard.feed shard pkt)) pkts;
    Engine.Shard.drain shard;
    Array.iteri
      (fun i p ->
        let st = Engine.Pipeline.stats p in
        let d = Engine.Stats.stage_index st "decode" in
        Printf.printf "worker %d: %4d packets, %3d refused\n" i
          (Engine.Stats.stage_packets st d)
          (Engine.Stats.stage_rejects st d))
      (Engine.Shard.pipelines shard);
    print_string (Engine.Stats.to_text (Engine.Shard.stats shard))

let () =
  scene_receiver ();
  scene_tftp ();
  scene_shard ()
