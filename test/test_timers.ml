(* Time in the engine: the hierarchical wheel proven against a
   sorted-list reference model, the Step-with-wheel vs simulator oracle
   leg (including the planted [Drop_expiry] bug), virtual-clock pipeline
   timers, and the lossy virtual-time loopback where go-back-N and
   selective-repeat flows must end in success-or-timeout — never stuck. *)

open Netdsl_engine
module Fm = Netdsl_formats
module Prng = Netdsl_util.Prng
module Step = Netdsl_fsm.Step
module Machines = Netdsl_proto.Machines
module Oracle = Netdsl_check.Oracle
module Lossy = Netdsl_net.Loopback.Lossy
module Channel = Netdsl_sim.Channel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* The reference model: a sorted list of (expiry, arm order) pairs.     *)

module Model = struct
  type entry = {
    e_key : int;
    mutable e_exp : int;
    mutable e_ev : int;
    mutable e_seq : int;
  }

  type t = {
    mutable m_now : int;
    mutable m_seq : int;
    mutable m_entries : entry list;
    mutable m_expired : int;
    mutable m_cancelled : int;
  }

  let create () =
    { m_now = 0; m_seq = 0; m_entries = []; m_expired = 0; m_cancelled = 0 }

  let arm m ~key ~after ~ev =
    let e = m.m_now + max 1 after in
    match List.find_opt (fun en -> en.e_key = key) m.m_entries with
    | Some en when en.e_exp = e && en.e_ev = ev ->
      (* identical re-arm: a no-op, keeping the original arm order (the
         wheel's per-packet fast path has the same contract) *)
      ()
    | Some en ->
      en.e_exp <- e;
      en.e_ev <- ev;
      en.e_seq <- m.m_seq;
      m.m_seq <- m.m_seq + 1
    | None ->
      m.m_entries <-
        { e_key = key; e_exp = e; e_ev = ev; e_seq = m.m_seq } :: m.m_entries;
      m.m_seq <- m.m_seq + 1

  let cancel m key =
    if List.exists (fun en -> en.e_key = key) m.m_entries then begin
      m.m_entries <- List.filter (fun en -> en.e_key <> key) m.m_entries;
      m.m_cancelled <- m.m_cancelled + 1;
      true
    end
    else false

  let armed m key = List.exists (fun en -> en.e_key = key) m.m_entries
  let live m = List.length m.m_entries

  (* Fire strictly in (expiry, arm order): one timer at a time, so the
     callback's own arms and cancels are honoured mid-pass exactly as
     the wheel honours them. *)
  let advance m ~now:target fire =
    let fired = ref 0 in
    let rec loop () =
      match List.filter (fun en -> en.e_exp <= target) m.m_entries with
      | [] -> ()
      | first :: rest ->
        let best =
          List.fold_left
            (fun a b ->
              if b.e_exp < a.e_exp || (b.e_exp = a.e_exp && b.e_seq < a.e_seq)
              then b
              else a)
            first rest
        in
        m.m_now <- max m.m_now best.e_exp;
        m.m_entries <- List.filter (fun en -> en != best) m.m_entries;
        m.m_expired <- m.m_expired + 1;
        incr fired;
        fire ~key:best.e_key ~ev:best.e_ev;
        loop ()
    in
    loop ();
    if m.m_now < target then m.m_now <- target;
    !fired
end

(* ------------------------------------------------------------------ *)
(* Wheel vs model                                                      *)

let wheel_matches_model =
  QCheck.Test.make
    ~name:
      "engine: wheel fires the model's expiry set in the model's order \
       under random arm/rearm/cancel/advance"
    ~count:60 QCheck.int64
    (fun seed ->
      let rng = Prng.create seed in
      let nkeys = 24 in
      let w = Wheel.create () in
      let m = Model.create () in
      let wlog = Buffer.create 512 and mlog = Buffer.create 512 in
      (* the callback mutates the wheel it fires from — deterministically
         by (key, ev), the same on both sides *)
      let mk_cb log now arm cancel ~key ~ev =
        Buffer.add_string log (Printf.sprintf "%d/%d@%d;" key ev (now ()));
        match (key + ev) land 3 with
        | 0 -> arm ~key ~after:(1 + (ev * 7 mod 60)) ~ev:(ev + 1)
        | 1 -> ignore (cancel ((key + 1) mod nkeys))
        | _ -> ()
      in
      let wcb = mk_cb wlog (fun () -> Wheel.now w) (Wheel.arm w) (Wheel.cancel w) in
      let mcb =
        mk_cb mlog (fun () -> m.Model.m_now) (Model.arm m) (Model.cancel m)
      in
      let ok = ref true in
      (* per-key hint cookies for [arm_hint], as the pipeline keeps them;
         deliberately left stale across cancels and expiries *)
      let hints = Array.make nkeys (-1) in
      for _ = 1 to 140 do
        match Prng.int rng 10 with
        | 0 | 1 | 2 | 3 ->
          let key = Prng.int rng nkeys and ev = Prng.int rng 40 in
          let after =
            match Prng.int rng 8 with
            | 0 -> Prng.int rng 4 (* incl. the <= 0 clamp *)
            | 1 | 2 | 3 -> 1 + Prng.int rng 256
            | 4 | 5 -> 1 + Prng.int rng 66_000 (* level-1/2 cascades *)
            | 6 -> 1 lsl (16 + Prng.int rng 3)
            | _ -> (1 lsl 32) + Prng.int rng 1_000 (* beyond the span *)
          in
          (* three arm front doors, one semantics: plain, hinted (kept or
             stale cookie), and hinted with junk *)
          (match Prng.int rng 4 with
          | 0 | 1 -> Wheel.arm w ~key ~after ~ev
          | 2 ->
            hints.(key) <-
              Wheel.arm_hint w ~hint:hints.(key) ~key ~after ~ev
          | _ ->
            let junk =
              match Prng.int rng 3 with
              | 0 -> -1
              | 1 -> Prng.int rng 1_000 (* maybe someone else's entry *)
              | _ -> max_int
            in
            hints.(key) <- Wheel.arm_hint w ~hint:junk ~key ~after ~ev);
          Model.arm m ~key ~after ~ev
        | 4 ->
          let key = Prng.int rng nkeys in
          if Wheel.cancel w key <> Model.cancel m key then ok := false
        | _ ->
          let d =
            match Prng.int rng 6 with
            | 0 -> 1
            | 1 -> Prng.int rng 16
            | 2 | 3 -> Prng.int rng 400
            | 4 -> Prng.int rng 5_000
            | _ -> 20_000 + Prng.int rng 50_000
          in
          let target = Wheel.now w + d in
          let fw = Wheel.advance w ~now:target wcb in
          let fm = Model.advance m ~now:target mcb in
          if fw <> fm then ok := false
      done;
      let armed_agree =
        List.for_all
          (fun k -> Wheel.armed w k = Model.armed m k)
          (List.init nkeys Fun.id)
      in
      if not !ok then QCheck.Test.fail_report "cancel/advance result diverged";
      if Buffer.contents wlog <> Buffer.contents mlog then
        QCheck.Test.fail_reportf "fire logs diverged\nwheel: %s\nmodel: %s"
          (Buffer.contents wlog) (Buffer.contents mlog);
      armed_agree
      && Wheel.live w = Model.live m
      && Wheel.expired w = m.Model.m_expired
      && Wheel.cancelled w = m.Model.m_cancelled)

let wheel_basics () =
  let w = Wheel.create () in
  check_int "empty next_due" (-1) (Wheel.next_due w);
  let log = ref [] in
  let fire ~key ~ev = log := (key, ev, Wheel.now w) :: !log in
  Wheel.arm w ~key:5 ~after:10 ~ev:1;
  Wheel.arm w ~key:6 ~after:10 ~ev:2;
  Wheel.arm w ~key:5 ~after:20 ~ev:3;
  (* re-arm replaced, not added *)
  check_int "live after re-arm" 2 (Wheel.live w);
  check_bool "cancel of unarmed key" false (Wheel.cancel w 42);
  check_int "one due by 15" 1 (Wheel.advance w ~now:15 fire);
  check_bool "key 6 fired at its tick" true (!log = [ (6, 2, 10) ]);
  check_int "re-armed key due at 20" 1 (Wheel.advance w ~now:20 fire);
  check_bool "new deadline and payload" true (List.hd !log = (5, 3, 20));
  check_int "expired counter" 2 (Wheel.expired w);
  Wheel.arm w ~key:7 ~after:0 ~ev:9;
  check_int "after <= 0 clamps to one tick" 1
    (Wheel.advance w ~now:(Wheel.now w + 1) fire);
  Wheel.arm w ~key:8 ~after:5 ~ev:1;
  check_bool "cancel of armed key" true (Wheel.cancel w 8);
  check_int "cancelled counter" 1 (Wheel.cancelled w);
  check_int "idle wheel skips" 0 (Wheel.advance w ~now:1_000_000 fire);
  check_int "now after skip" 1_000_000 (Wheel.now w)

let wheel_deep_cascade () =
  let w = Wheel.create () in
  let log = Buffer.create 64 in
  let fire ~key ~ev =
    Buffer.add_string log (Printf.sprintf "%d/%d@%d;" key ev (Wheel.now w))
  in
  Wheel.arm w ~key:1 ~after:300 ~ev:10 (* level 1 *);
  Wheel.arm w ~key:2 ~after:70_000 ~ev:20 (* level 2 *);
  Wheel.arm w ~key:3 ~after:((1 lsl 24) + 5) ~ev:30 (* level 3 *);
  Wheel.arm w ~key:4 ~after:((1 lsl 32) + 50) ~ev:40 (* beyond the span *);
  check_int "three fired" 3 (Wheel.advance w ~now:((1 lsl 24) + 10) fire);
  check_string "in expiry order, each on its own tick"
    (Printf.sprintf "1/10@300;2/20@70000;3/30@%d;" ((1 lsl 24) + 5))
    (Buffer.contents log);
  check_bool "cascades happened" true (Wheel.cascaded w > 0);
  check_int "far-future timer still parked" 1 (Wheel.live w);
  check_bool "and still armed" true (Wheel.armed w 4)

let wheel_next_due () =
  let w = Wheel.create () in
  Wheel.arm w ~key:9 ~after:70_000 ~ev:1;
  let fired_at = ref (-1) in
  let wakes = ref 0 in
  while Wheel.live w > 0 && !wakes < 100_000 do
    incr wakes;
    let due = Wheel.next_due w in
    check_bool "deadline is in the future" true (due > Wheel.now w);
    ignore
      (Wheel.advance w ~now:due (fun ~key:_ ~ev:_ -> fired_at := Wheel.now w))
  done;
  (* sleeping to next_due never overshoots: the timer fires exactly on
     its tick, in a bounded number of wakes *)
  check_int "fired exactly on time" 70_000 !fired_at;
  check_bool "bounded wakes" true (!wakes <= (70_000 / 256) + 8);
  check_int "empty again" (-1) (Wheel.next_due w)

let wheel_rearm_in_callback () =
  let w = Wheel.create () in
  let fires = ref 0 in
  let fire ~key ~ev:_ =
    incr fires;
    if !fires < 3 then Wheel.arm w ~key ~after:7 ~ev:0
  in
  Wheel.arm w ~key:1 ~after:7 ~ev:0;
  ignore (Wheel.advance w ~now:100 fire);
  check_int "retransmission chain of three" 3 !fires;
  check_int "nothing left armed" 0 (Wheel.live w)

let wheel_same_tick_mutation () =
  let w = Wheel.create () in
  let log = ref [] in
  Wheel.arm w ~key:1 ~after:5 ~ev:0;
  Wheel.arm w ~key:2 ~after:5 ~ev:0;
  Wheel.arm w ~key:3 ~after:5 ~ev:0;
  (* key 1 fires first (arm order) and mutates the two entries due on
     the very same tick: one cancelled, one pushed out *)
  let fire ~key ~ev:_ =
    log := key :: !log;
    if key = 1 then begin
      ignore (Wheel.cancel w 2);
      Wheel.arm w ~key:3 ~after:4 ~ev:1
    end
  in
  check_int "only key 1 fires at 5" 1 (Wheel.advance w ~now:5 fire);
  check_int "key 3 fires at its new deadline" 1 (Wheel.advance w ~now:9 fire);
  check_bool "order" true (!log = [ 3; 1 ])

(* ------------------------------------------------------------------ *)
(* Oracle.Timers: Step-with-wheel vs the simulator                     *)

let random_trace rng events n =
  let t = ref 0 in
  List.init n (fun _ ->
      t := !t + Prng.int rng 220;
      (!t, List.nth events (Prng.int rng (List.length events))))

let timers_oracle_agrees name machine events =
  let o = Oracle.Timers.create machine in
  QCheck.Test.make ~name ~count:60 QCheck.int64 (fun seed ->
      let rng = Prng.create seed in
      let trace = random_trace rng events (1 + Prng.int rng 24) in
      match Oracle.Timers.check o trace with
      | Ok () -> true
      | Error d ->
        QCheck.Test.fail_report (Oracle.disagreement_to_string d))

let saw_agrees =
  timers_oracle_agrees
    "check: stop-and-wait with timeouts — wheel agrees with the simulator"
    (Machines.stop_and_wait ~timeout_ms:150 ())
    [ "send"; "ack0"; "ack1"; "timeout"; "close" ]

let gbn_agrees =
  timers_oracle_agrees
    "check: go-back-N with timeouts — wheel agrees with the simulator"
    (Machines.go_back_n ~timeout_ms:120 ())
    [ "send"; "ack"; "timeout"; "finish" ]

let sr_agrees =
  timers_oracle_agrees
    "check: selective repeat with timeouts — wheel agrees with the simulator"
    (Machines.selective_repeat ~timeout_ms:90 ())
    [ "send"; "ack"; "nak"; "resend"; "finish"; "timeout" ]

(* Two arms, the second silently dropped by the planted bug: the
   simulator retransmits at 170 ms while the live side sleeps forever. *)
let drop_expiry_trace = [ (0, "send"); (10, "ack0"); (20, "send") ]

let oracle_catches_drop_expiry () =
  let machine = Machines.stop_and_wait ~timeout_ms:150 () in
  (match
     Oracle.Timers.check (Oracle.Timers.create machine) drop_expiry_trace
   with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Oracle.disagreement_to_string d));
  match
    Oracle.Timers.check
      (Oracle.Timers.create ~bug:Oracle.Drop_expiry machine)
      drop_expiry_trace
  with
  | Ok () -> Alcotest.fail "planted Drop_expiry went undetected"
  | Error d -> check_string "flagged leg" "timers" d.Oracle.d_check

(* ------------------------------------------------------------------ *)
(* Pipeline timers under a virtual clock                               *)

let arq_data ~seq payload = Fm.Arq.to_bytes (Fm.Arq.Data { seq; payload })

(* payload length is the event: the driver's side channel into the
   machine, leaving seq free to be the flow key *)
let classify_saw v =
  match Int64.to_int (Netdsl_format.View.get_int v "len") with
  | 1 -> Some "send"
  | 2 -> Some "ack0"
  | _ -> None

let pipe_virtual_clock () =
  let now = ref 0 in
  let machine = Machines.stop_and_wait ~timeout_ms:100 () in
  let p =
    Pipeline.create ~classify:classify_saw ~machine ~flow_key:"seq"
      ~clock_ms:(fun () -> !now)
      Fm.Arq.format
  in
  check_bool "nothing armed yet" true (Pipeline.next_timer_s p = None);
  ignore (Pipeline.process p (arq_data ~seq:7 "x"));
  check_int "send armed the flow's timer" 1 (Pipeline.timers_live p);
  (match Pipeline.next_timer_s p with
  | Some d -> check_bool "deadline ~100 ms out" true (d > 0.0 && d <= 0.101)
  | None -> Alcotest.fail "expected a deadline");
  now := 99;
  check_int "one tick early: silent" 0 (Pipeline.poll_timers p);
  now := 100;
  check_int "expiry fires through the step stage" 1 (Pipeline.poll_timers p);
  (match Pipeline.peek_flow p 7 with
  | Some inst ->
    check_string "still awaiting" "awaiting_ack" (Step.state_name_of inst);
    check_int "one retransmission" 1 (Step.register_by_name inst "attempts")
  | None -> Alcotest.fail "flow should be live");
  (* each expiry re-arms until attempts run out: 200, 300, then give_up *)
  now := 500;
  check_int "expiry chain to failure" 3 (Pipeline.poll_timers p);
  (match Pipeline.peek_flow p 7 with
  | Some inst -> check_string "gave up" "failed" (Step.state_name_of inst)
  | None -> Alcotest.fail "flow should be live");
  check_int "nothing armed after give-up" 0 (Pipeline.timers_live p);
  check_int "expired counted" 4 (Stats.timers_expired (Pipeline.stats p));
  (* a second flow whose ack lands in time cancels its timer *)
  ignore (Pipeline.process p (arq_data ~seq:8 "y"));
  ignore (Pipeline.process p (arq_data ~seq:8 "yy"));
  check_int "ack cancelled the timer" 1
    (Stats.timers_cancelled (Pipeline.stats p));
  check_int "unseen key peeks to None" 0
    (match Pipeline.peek_flow p 99 with None -> 0 | Some _ -> 1)

let pipe_tick_granularity () =
  let now = ref 0 in
  let machine = Machines.stop_and_wait ~timeout_ms:95 () in
  let p =
    Pipeline.create ~classify:classify_saw ~machine ~flow_key:"seq"
      ~clock_ms:(fun () -> !now)
      ~tick_ms:10 Fm.Arq.format
  in
  ignore (Pipeline.process p (arq_data ~seq:1 "x"));
  now := 99;
  check_int "95 ms rounds up to tick 10" 0 (Pipeline.poll_timers p);
  now := 100;
  check_int "fires on the coarse tick" 1 (Pipeline.poll_timers p)

(* ------------------------------------------------------------------ *)
(* Lossy loopback: success-or-timeout, never stuck                     *)

let classify_window v =
  match Int64.to_int (Netdsl_format.View.get_int v "len") with
  | 1 -> Some "send"
  | 2 -> Some "ack"
  | 3 -> Some "finish"
  | 4 -> Some "resend"
  | 5 -> Some "nak"
  | _ -> None

let key_of pkt = Char.code pkt.[0]

(* The driver is the application and the far end at once: it offers
   [total] abstract frames per flow, acks every accepted data frame
   through the lossy channel, and infers delivered acks from the
   movement of [base].  Dropped acks stall [base] until the flow's
   timer expires — go-back-N rewinds, selective repeat marks a loss for
   [resend] — so completion genuinely rides on the wheel. *)
let run_lossy ~style ~workers ~seed ~loss ~flows ~total ~horizon () =
  let d = 8 and window = 4 in
  let machine =
    match style with
    | `Gbn -> Machines.go_back_n ~timeout_ms:120 ()
    | `Sr -> Machines.selective_repeat ~timeout_ms:120 ()
  in
  let chan =
    Channel.config ~loss ~duplicate:0.05
      ~delay:(Channel.Uniform (4.0, 28.0))
      ()
  in
  let lb =
    Lossy.create ~workers ~channel:chan ~seed ~machine
      ~classify:classify_window ~flow_key:"seq" ~key_of Fm.Arq.format
  in
  let cum = Array.make flows 0 in
  let prev_base = Array.make flows 0 in
  let data f n = arq_data ~seq:f (String.make n 'd') in
  let on_tick _now =
    for f = 0 to flows - 1 do
      match Lossy.peek lb f with
      | Some inst when Step.state_name_of inst = "done" -> ()
      | inst_opt ->
        let base, next, lost =
          match inst_opt with
          | None -> (0, 0, 0)
          | Some inst ->
            ( Step.register_by_name inst "base",
              Step.register_by_name inst "next",
              match style with
              | `Sr -> Step.register_by_name inst "lost"
              | `Gbn -> 0 )
        in
        cum.(f) <- cum.(f) + ((base - prev_base.(f) + d) mod d);
        prev_base.(f) <- base;
        let occ = (next - base + d) mod d in
        if lost = 1 then begin
          if Lossy.inject lb (data f 4) = Pipeline.Accepted then
            Lossy.send lb (data f 2)
        end
        else if cum.(f) >= total && occ = 0 then
          ignore (Lossy.inject lb (data f 3))
        else if cum.(f) + occ < total && occ < window then
          if Lossy.inject lb (data f 1) = Pipeline.Accepted then
            Lossy.send lb (data f 2)
    done
  in
  Lossy.run lb ~until:horizon ~on_tick;
  lb

let flow_config style lb f =
  match Lossy.peek lb f with
  | None -> "absent"
  | Some i ->
    Printf.sprintf "%s base=%d next=%d lost=%d" (Step.state_name_of i)
      (Step.register_by_name i "base")
      (Step.register_by_name i "next")
      (match style with
      | `Sr -> Step.register_by_name i "lost"
      | `Gbn -> 0)

(* Nightly soak hook: NETDSL_LOSSY_SEED reseeds the lossy channel — every
   run stays a deterministic function of the seed, so a red nightly
   replays exactly by exporting the same value locally. *)
let lossy_seed default =
  match Sys.getenv_opt "NETDSL_LOSSY_SEED" with
  | Some s -> Int64.of_string s
  | None -> default

let lossy_completes style () =
  let flows = 6 and total = 5 in
  let lb =
    run_lossy ~style ~workers:1 ~seed:(lossy_seed 0xBEEFL) ~loss:0.25 ~flows
      ~total ~horizon:15_000 ()
  in
  for f = 0 to flows - 1 do
    match Lossy.peek lb f with
    | Some inst ->
      check_string
        (Printf.sprintf "flow %d reached success-or-timeout" f)
        "done" (Step.state_name_of inst)
    | None -> Alcotest.fail (Printf.sprintf "flow %d never started" f)
  done;
  let s = Lossy.stats lb in
  check_bool "losses forced expirations" true (Stats.timers_expired s > 0);
  check_bool "emptied windows cancelled timers" true
    (Stats.timers_cancelled s > 0);
  let cs = Lossy.channel_stats lb in
  check_bool "the channel really dropped acks" true (cs.Channel.dropped > 0)

let lossy_sharded_matches style () =
  let flows = 6 and total = 4 in
  let run workers =
    run_lossy ~style ~workers ~seed:(lossy_seed 0xC0FFEEL) ~loss:0.2 ~flows
      ~total ~horizon:15_000 ()
  in
  let a = run 1 and b = run 2 in
  for f = 0 to flows - 1 do
    check_string
      (Printf.sprintf "flow %d: sharded config equals reference" f)
      (flow_config style a f) (flow_config style b f)
  done;
  check_int "expired folds across workers"
    (Stats.timers_expired (Lossy.stats a))
    (Stats.timers_expired (Lossy.stats b));
  check_int "cancelled folds across workers"
    (Stats.timers_cancelled (Lossy.stats a))
    (Stats.timers_cancelled (Lossy.stats b))

(* ------------------------------------------------------------------ *)
(* Stats: merged timer counters are the per-worker sums                *)

let stats_merge_timers () =
  let mk e c k =
    let s = Stats.create Pipeline.stage_names in
    Stats.note_timers ~expired:e ~cancelled:c ~cascaded:k s;
    s
  in
  let m = Stats.merge [ mk 3 1 7; mk 5 2 0; mk 11 0 4 ] in
  check_int "expired" 19 (Stats.timers_expired m);
  check_int "cancelled" 3 (Stats.timers_cancelled m);
  check_int "cascaded" 11 (Stats.timers_cascaded m)

(* ------------------------------------------------------------------ *)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "timers.wheel",
      [
        Alcotest.test_case "basics" `Quick wheel_basics;
        Alcotest.test_case "deep cascade" `Quick wheel_deep_cascade;
        Alcotest.test_case "next_due convergence" `Quick wheel_next_due;
        Alcotest.test_case "re-arm in callback" `Quick wheel_rearm_in_callback;
        Alcotest.test_case "same-tick mutation" `Quick wheel_same_tick_mutation;
        qt wheel_matches_model;
      ] );
    ( "timers.oracle",
      [
        qt saw_agrees;
        qt gbn_agrees;
        qt sr_agrees;
        Alcotest.test_case "planted Drop_expiry is caught" `Quick
          oracle_catches_drop_expiry;
      ] );
    ( "timers.pipeline",
      [
        Alcotest.test_case "virtual clock" `Quick pipe_virtual_clock;
        Alcotest.test_case "tick granularity" `Quick pipe_tick_granularity;
      ] );
    ( "timers.lossy",
      [
        Alcotest.test_case "go-back-N completes" `Quick
          (lossy_completes `Gbn);
        Alcotest.test_case "selective repeat completes" `Quick
          (lossy_completes `Sr);
        Alcotest.test_case "go-back-N sharded = single" `Quick
          (lossy_sharded_matches `Gbn);
        Alcotest.test_case "selective repeat sharded = single" `Quick
          (lossy_sharded_matches `Sr);
      ] );
    ("timers.stats", [ Alcotest.test_case "merge sums" `Quick stats_merge_timers ]);
  ]
