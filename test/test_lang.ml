open Netdsl_lang
module D = Netdsl_format.Desc
module V = Netdsl_format.Value
module C = Netdsl_format.Codec
module M = Netdsl_fsm.Machine

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let parse_ok src =
  match Parser.parse_string src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" (Format.asprintf "%a" Parser.pp_error e)

let parse_err src =
  match Parser.parse_string src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "format x { a : uint8; } // comment") in
  Alcotest.(check int) "token count" 9 (List.length toks);
  match toks with
  | [ IDENT "format"; IDENT "x"; LBRACE; IDENT "a"; COLON; IDENT "uint8"; SEMI; RBRACE; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_literals () =
  match List.map fst (Lexer.tokenize "255 0xFF \"hi\\n\" ..") with
  | [ INT 255L; INT 0xFFL; STRING "hi\n"; DOTDOT; EOF ] -> ()
  | _ -> Alcotest.fail "literal lexing"

let test_lexer_operators () =
  match List.map fst (Lexer.tokenize ":= -> == != <= >= && || !") with
  | [ ASSIGN; ARROW; EQEQ; NEQ; LE; GE; ANDAND; OROR; BANG; EOF ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_errors_located () =
  (match Lexer.tokenize "a\n  @" with
  | _ -> Alcotest.fail "stray @ accepted"
  | exception Lexer.Error { loc; _ } ->
    check_int "line" 2 loc.Loc.line;
    check_int "col" 3 loc.Loc.col);
  match Lexer.tokenize "\"unterminated" with
  | _ -> Alcotest.fail "unterminated string accepted"
  | exception Lexer.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Parsing formats *)

let arq_src =
  {|
  // the paper's ARQ packet
  format arq_packet {
    seq     : uint8 "Sequence Number";
    kind    : enum uint8 { data = 0, ack = 1 };
    len     : uint16 = len(payload);
    chk     : checksum internet over message;
    payload : bytes[len];
  }
  |}

let test_parse_arq_equivalent_to_library () =
  let p = parse_ok arq_src in
  let fmt = Option.get (Parser.find_format p "arq_packet") in
  (* The parsed format encodes byte-identically to the hand-built library
     one. *)
  let v =
    V.record [ ("seq", V.int 5); ("kind", V.int 0); ("payload", V.bytes "hello") ]
  in
  let ours = C.encode_exn fmt v in
  let libs = C.encode_exn Netdsl_formats.Arq.format v in
  check_str "byte identical" (Netdsl_util.Hexdump.to_hex libs)
    (Netdsl_util.Hexdump.to_hex ours)

let ipv4_src =
  {|
  format ipv4 {
    version         : const uint4 = 4 "Version";
    ihl             : uint4 = (len(options) + 20) / 4 "IHL";
    tos             : uint8 "Type of Service";
    total_length    : uint16 = len(message) "Total Length";
    identification  : uint16 "Identification";
    flags           : uint3 "Flags";
    fragment_offset : uint13 "Fragment Offset";
    ttl             : uint8 "Time to Live";
    protocol        : uint8 "Protocol";
    header_checksum : checksum internet over version..options "Header Checksum";
    source          : uint32 "Source Address";
    destination     : uint32 "Destination Address";
    options         : bytes[ihl * 4 - 20];
    payload         : bytes[..];
  }
  |}

let test_parse_ipv4_decodes_real_header () =
  let p = parse_ok ipv4_src in
  let fmt = Option.get (Parser.find_format p "ipv4") in
  let bytes =
    Netdsl_util.Hexdump.of_hex "4500003c1c4640004006b1e6ac100a63ac100a0c"
    ^ String.make 40 '\000'
  in
  match C.decode fmt bytes with
  | Ok v ->
    check_int "ttl" 64 (V.get_int v "ttl");
    check_int "total length" 60 (V.get_int v "total_length")
  | Error e -> Alcotest.failf "decode failed: %s" (C.error_to_string e)

let test_parse_nested_and_arrays () =
  let src =
    {|
    format point { x : uint16; y : uint16; }
    format path {
      n      : uint8;
      points : point[n];
      origin : point;
      rest   : point[..];
    }
    |}
  in
  let p = parse_ok src in
  let path = Option.get (Parser.find_format p "path") in
  let v =
    V.record
      [
        ("n", V.int 1);
        ("points", V.list [ V.record [ ("x", V.int 1); ("y", V.int 2) ] ]);
        ("origin", V.record [ ("x", V.int 3); ("y", V.int 4) ]);
        ("rest", V.list []);
      ]
  in
  let bytes = C.encode_exn path v in
  check_str "wire" "010001000200030004" (Netdsl_util.Hexdump.to_hex bytes)

let test_parse_variant_and_constraints () =
  let src =
    {|
    format ping { token : uint32; }
    format pong { token : uint32; hops : uint8 where 1..64; }
    format msg {
      kind : enum uint8 open { ping = 1, pong = 2 };
      body : variant on kind {
        ping(1) : ping;
        pong(2) : pong;
        default : raw;
      }
    }
    format raw { data : bytes[..]; }
    |}
  in
  (* 'raw' is referenced before its definition: that is an error... *)
  let e = parse_err src in
  check_bool "mentions unknown format" true
    (Testutil.contains e.Parser.message "unknown format");
  (* ...so reorder, and it parses. *)
  let src_ok =
    {|
    format ping { token : uint32; }
    format pong { token : uint32; hops : uint8 where 1..64; }
    format raw { data : bytes[..]; }
    format msg {
      kind : enum uint8 open { ping = 1, pong = 2 };
      body : variant on kind {
        ping(1) : ping;
        pong(2) : pong;
        default : raw;
      }
    }
    |}
  in
  let p = parse_ok src_ok in
  let msg = Option.get (Parser.find_format p "msg") in
  let decoded = C.decode_exn msg "\x02\x00\x00\x00\x07\x20" in
  (match V.get decoded "body" with
  | V.Variant ("pong", body) ->
    check_int "hops" 32 (V.get_int body "hops")
  | other -> Alcotest.failf "wrong case: %s" (V.to_string other));
  (* Constraint from the source is enforced. *)
  match C.decode msg "\x02\x00\x00\x00\x07\x00" with
  | Ok _ -> Alcotest.fail "hops=0 accepted"
  | Error (C.Constraint_violation _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e)

let test_parse_le_and_padding_and_open_constraints () =
  let src =
    {|
    format hdr {
      magic : const uint16 = 0xBEEF;
      size  : uint32 le;
      flags : uint8 where in { 0, 1, 2 };
      pad   : padding 8;
      tag   : uint8 where != 0;
    }
    |}
  in
  let p = parse_ok src in
  let fmt = Option.get (Parser.find_format p "hdr") in
  let v = V.record [ ("size", V.int 0x11223344); ("flags", V.int 1); ("tag", V.int 9) ] in
  check_str "wire" "beef44332211010009" (Netdsl_util.Hexdump.to_hex (C.encode_exn fmt v))

(* ------------------------------------------------------------------ *)
(* Parsing machines *)

let sender_src =
  {|
  machine sender {
    registers { seq : mod 4 = 0; }
    states { ready init; wait; timeout; sent accepting; }
    events { send, ok, fail, timer, finish, retry }
    on send:   ready -> wait;
    on ok:     wait -> ready { seq := seq + 1 } as "OK";
    on fail:   wait -> ready;
    on timer:  wait -> timeout;
    on retry:  timeout -> ready;
    on finish: ready -> sent;
    ignore ok in ready;
    ignore timer in ready;
  }
  |}

let test_parse_machine () =
  let p = parse_ok sender_src in
  let m = Option.get (Parser.find_machine p "sender") in
  check_int "states" 4 (List.length m.M.states);
  check_str "initial" "ready" m.M.initial;
  Alcotest.(check (list string)) "accepting" [ "sent" ] m.M.accepting;
  check_int "transitions" 6 (List.length m.M.transitions);
  check_int "ignores" 2 (List.length m.M.ignores);
  (* The machine runs: OK increments the register modulo 4. *)
  let i = Netdsl_fsm.Interp.create m in
  (match Netdsl_fsm.Interp.fire_all i [ "send"; "ok"; "send"; "ok"; "send"; "ok"; "send"; "ok" ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "run failed: %a" Netdsl_fsm.Interp.pp_error e);
  check_int "wrapped" 0 (Netdsl_fsm.Interp.register i "seq")

let test_parse_machine_guards () =
  let src =
    {|
    machine counter {
      registers { n : mod 10; }
      states { low init accepting; high; }
      events { inc }
      on inc: low -> low { n := n + 1 } when n < 4;
      on inc: low -> high { n := n + 1 } when n == 4;
      on inc: high -> high when n >= 5 && !(n == 9);
    }
    |}
  in
  let p = parse_ok src in
  let m = Option.get (Parser.find_machine p "counter") in
  (* Guards partition: deterministic everywhere. *)
  check_int "deterministic" 0
    (List.length (Netdsl_fsm.Analysis.nondeterministic_configs m));
  let i = Netdsl_fsm.Interp.create m in
  for _ = 1 to 5 do
    ignore (Netdsl_fsm.Interp.fire_exn i "inc")
  done;
  check_str "reached high" "high" (Netdsl_fsm.Interp.state i)

let test_machine_errors () =
  (* No initial state. *)
  let e =
    parse_err
      {| machine m { states { a; b; } events { e } on e: a -> b; } |}
  in
  check_bool "no init reported" true (Testutil.contains e.Parser.message "init");
  (* Undeclared state in a transition is caught by validation. *)
  let e2 =
    parse_err
      {| machine m { states { a init; } events { e } on e: a -> ghost; } |}
  in
  check_bool "ghost state reported" true (Testutil.contains e2.Parser.message "ghost");
  (* Unknown register in action. *)
  let e3 =
    parse_err
      {| machine m { states { a init; } events { e } on e: a -> a { x := 1 }; } |}
  in
  check_bool "unknown register" true (Testutil.contains e3.Parser.message "x")

let test_format_errors_located () =
  (* Well-formedness failures surface as parse errors naming the format. *)
  let e = parse_err {| format f { a : uint8; a : uint8; } |} in
  check_bool "duplicate field" true (Testutil.contains e.Parser.message "duplicate");
  let e2 = parse_err {| format f { p : bytes[later]; later : uint8; } |} in
  check_bool "forward length ref" true (Testutil.contains e2.Parser.message "decoded later");
  let e3 = parse_err {| format f { c : checksum sha256; } |} in
  check_bool "unknown algorithm" true (Testutil.contains e3.Parser.message "sha256")

let test_syntax_error_location () =
  let e = parse_err "format f {\n  a : uint8\n}" in
  (* Missing semicolon: reported on line 3 where '}' appears. *)
  check_int "line" 3 e.Parser.loc.Loc.line

let test_duplicate_format_rejected () =
  let e = parse_err {| format f { a : uint8; } format f { b : uint8; } |} in
  check_bool "duplicate format" true (Testutil.contains e.Parser.message "duplicate")

(* ------------------------------------------------------------------ *)
(* Code generation *)

let test_codegen_structure () =
  let p = parse_ok (arq_src ^ sender_src) in
  let code = Codegen.to_ocaml p in
  List.iter
    (fun fragment ->
      check_bool (Printf.sprintf "contains %s" fragment) true
        (Testutil.contains code fragment))
    [
      "let format_arq_packet : D.t";
      "D.format \"arq_packet\"";
      "(D.Byte_len \"payload\")";
      "algorithm_of_string \"internet\"";
      "let machine_sender : M.t";
      "~initial:\"ready\"";
      "M.Assign (\"seq\", (M.Add ((M.Reg \"seq\"), (M.Int 1))))";
      "let formats : (string * D.t) list";
      "let machines : (string * M.t) list";
    ]

let test_codegen_roundtrip_through_parser () =
  (* The generated OCaml reconstructs the same descriptions.  We cannot
     compile OCaml here, but we can check the emitted constructors cover
     every field of a rich format. *)
  let p = parse_ok ipv4_src in
  let code = Codegen.to_ocaml p in
  List.iter
    (fun field -> check_bool field true (Testutil.contains code (Printf.sprintf "%S" field)))
    [ "version"; "ihl"; "tos"; "total_length"; "identification"; "flags";
      "fragment_offset"; "ttl"; "protocol"; "header_checksum"; "source";
      "destination"; "options"; "payload" ]

(* ------------------------------------------------------------------ *)
(* Stacks *)

let stack_src =
  {|
  format a { tag : uint8; payload : bytes[..]; }
  format b { kind : uint16; body : bytes[..]; }
  format c { x : uint8; }
  stack abc {
    a select tag = 1;
    b as mid select kind in { 2, 3 } via body;
    c;
  }
  |}

let test_parse_stack () =
  let p = parse_ok stack_src in
  let st = Option.get (Parser.find_stack p "abc") in
  let module S = Netdsl_format.Stack in
  Alcotest.(check (list string)) "layer names" [ "a"; "mid"; "c" ] (S.layer_names st);
  check_str "via" "body" (S.layer_via st 1);
  (match S.layer_select st 0 with
  | Some ("tag", [ 1L ]) -> ()
  | _ -> Alcotest.fail "layer 0 select");
  (match S.layer_select st 1 with
  | Some ("kind", [ 2L; 3L ]) -> ()
  | _ -> Alcotest.fail "layer 1 select");
  check_bool "terminal has no select" true (S.layer_select st 2 = None);
  (* The parsed stack compiles and routes a real chained packet. *)
  let plan = Result.get_ok (S.compile st) in
  check_bool "accepts chain" true (S.run plan "\x01\x00\x02\x2a");
  check_bool "demux alternative" true (S.run plan "\x01\x00\x03\x2a");
  check_bool "wrong outer demux" false (S.run plan "\x02\x00\x02\x2a");
  check_bool "wrong inner demux" false (S.run plan "\x01\x00\x04\x2a");
  check_bool "truncated inner" false (S.run plan "\x01\x00\x02")

let test_stack_errors () =
  let e = parse_err {| stack s { nope select t = 1; also_nope; } |} in
  check_bool "unknown format" true (Testutil.contains e.Parser.message "unknown format");
  let e2 =
    parse_err
      {| format a { tag : uint8; payload : bytes[..]; }
         format c { x : uint8; }
         stack s { a; c; } |}
  in
  check_bool "missing demux" true (Testutil.contains e2.Parser.message "demux");
  let e3 =
    parse_err
      {| format a { tag : uint8; payload : bytes[..]; }
         format c { x : uint8; }
         stack s { a select tag = 1; c; }
         stack s { a select tag = 2; c; } |}
  in
  check_bool "duplicate stack" true (Testutil.contains e3.Parser.message "duplicate stack");
  let e4 =
    parse_err
      {| format a { tag : uint8; payload : bytes[..]; }
         stack s { a select tag; a2; } |}
  in
  check_bool "select needs = or in" true (Testutil.contains e4.Parser.message "expected '=' or 'in'")

let test_stack_codegen () =
  let p = parse_ok stack_src in
  let code = Codegen.to_ocaml p in
  List.iter
    (fun fragment ->
      check_bool (Printf.sprintf "contains %s" fragment) true
        (Testutil.contains code fragment))
    [
      "module S = Netdsl_format.Stack";
      "let stack_abc : S.t";
      "S.v ~name:\"abc\"";
      "S.layer ~name:\"a\" ~select:(\"tag\", [ 1L ]) format_a";
      "S.layer ~name:\"mid\" ~select:(\"kind\", [ 2L; 3L ]) ~via:\"body\" format_b";
      "S.layer ~name:\"c\" format_c";
      "let stacks : (string * S.t) list";
    ]

(* ------------------------------------------------------------------ *)
(* End-to-end: DSL-defined protocol spec is analysable and model-checkable *)

let test_dsl_machine_analysable () =
  let p = parse_ok sender_src in
  let m = Option.get (Parser.find_machine p "sender") in
  let report = Netdsl_fsm.Analysis.analyse m in
  (* The DSL sender has a few deliberately unhandled pairs (no ignore
     clauses were written for them) — the analysis reports rather than
     hides them. *)
  check_bool "analysis runs" true (report.Netdsl_fsm.Analysis.explored_configs > 0)

let suite =
  [
    ( "lang.lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "literals" `Quick test_lexer_literals;
        Alcotest.test_case "operators" `Quick test_lexer_operators;
        Alcotest.test_case "errors located" `Quick test_lexer_errors_located;
      ] );
    ( "lang.formats",
      [
        Alcotest.test_case "ARQ equals library format" `Quick test_parse_arq_equivalent_to_library;
        Alcotest.test_case "IPv4 decodes real header" `Quick test_parse_ipv4_decodes_real_header;
        Alcotest.test_case "nested records and arrays" `Quick test_parse_nested_and_arrays;
        Alcotest.test_case "variants and constraints" `Quick test_parse_variant_and_constraints;
        Alcotest.test_case "le, padding, in/!= constraints" `Quick test_parse_le_and_padding_and_open_constraints;
        Alcotest.test_case "wf errors surfaced" `Quick test_format_errors_located;
        Alcotest.test_case "syntax error location" `Quick test_syntax_error_location;
        Alcotest.test_case "duplicate format" `Quick test_duplicate_format_rejected;
      ] );
    ( "lang.machines",
      [
        Alcotest.test_case "sender machine" `Quick test_parse_machine;
        Alcotest.test_case "guards" `Quick test_parse_machine_guards;
        Alcotest.test_case "machine errors" `Quick test_machine_errors;
        Alcotest.test_case "analysable" `Quick test_dsl_machine_analysable;
      ] );
    ( "lang.codegen",
      [
        Alcotest.test_case "structure" `Quick test_codegen_structure;
        Alcotest.test_case "covers all fields" `Quick test_codegen_roundtrip_through_parser;
      ] );
    ( "lang.stacks",
      [
        Alcotest.test_case "parse, compile, route" `Quick test_parse_stack;
        Alcotest.test_case "errors" `Quick test_stack_errors;
        Alcotest.test_case "codegen" `Quick test_stack_codegen;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Printer: parse . print = id (up to elaboration) *)

let reparses_identically src =
  let p = parse_ok src in
  let printed = Printer.program_to_ndsl p in
  match Parser.parse_string printed with
  | Error e ->
    Alcotest.failf "printed program does not re-parse: %s\n--- printed ---\n%s"
      (Format.asprintf "%a" Parser.pp_error e)
      printed
  | Ok p' ->
    List.iter2
      (fun (n1, f1) (n2, f2) ->
        check_str "format name" n1 n2;
        (* Structural equality of the elaborated descriptions. *)
        check_bool (Printf.sprintf "format %s identical" n1) true (f1 = f2))
      p.Parser.formats p'.Parser.formats;
    List.iter2
      (fun (n1, m1) (n2, m2) ->
        check_str "machine name" n1 n2;
        check_bool (Printf.sprintf "machine %s identical" n1) true (m1 = m2))
      p.Parser.machines p'.Parser.machines;
    List.iter2
      (fun (n1, s1) (n2, s2) ->
        check_str "stack name" n1 n2;
        check_bool (Printf.sprintf "stack %s identical" n1) true (s1 = s2))
      p.Parser.stacks p'.Parser.stacks

let test_print_parse_roundtrip_arq () = reparses_identically arq_src
let test_print_parse_roundtrip_ipv4 () = reparses_identically ipv4_src
let test_print_parse_roundtrip_machine () = reparses_identically sender_src
let test_print_parse_roundtrip_stack () = reparses_identically stack_src

let test_print_parse_roundtrip_rich () =
  reparses_identically
    {|
    format inner { x : uint16 le; tag : flag; z : padding 7; name : cstring; }
    format outer {
      magic : const uint8 = 0x7F;
      mode  : enum uint4 open { a = 0, b = 1 };
      pad   : padding 4;
      n     : uint8 where 0..16;
      elems : inner[n];
      body  : variant on mode {
        alpha(0) : inner;
        default  : inner;
      }
      crc   : checksum crc32 over magic..body;
      rest  : bytes[..];
    }
    machine g {
      registers { k : mod 7 = 2; }
      states { s init accepting; t; }
      events { e, f }
      on e: s -> t when (k < 5) && (!(k == 3)) { k := (k * 2) mod 7 };
      on f: t -> s when k >= 1 || false;
      ignore f in s;
      ignore e in t;
    }
    |}

let printer_suite =
  ( "lang.printer",
    [
      Alcotest.test_case "roundtrip: arq" `Quick test_print_parse_roundtrip_arq;
      Alcotest.test_case "roundtrip: ipv4" `Quick test_print_parse_roundtrip_ipv4;
      Alcotest.test_case "roundtrip: machine" `Quick test_print_parse_roundtrip_machine;
      Alcotest.test_case "roundtrip: rich program" `Quick test_print_parse_roundtrip_rich;
      Alcotest.test_case "roundtrip: stack" `Quick test_print_parse_roundtrip_stack;
    ] )

let suite = suite @ [ printer_suite ]

(* ------------------------------------------------------------------ *)
(* The ABP system written in .ndsl elaborates to machines behaviourally
   equivalent to the OCaml-defined ones, and verifies identically. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find_spec name =
  List.find_opt Sys.file_exists
    [ "specs/" ^ name; "../specs/" ^ name; "../../specs/" ^ name;
      "../../../specs/" ^ name; "../../../../specs/" ^ name ]

let with_abp_spec f =
  match find_spec "abp.ndsl" with
  | None -> () (* source tree not available; exercised via cram instead *)
  | Some path -> f (parse_ok (read_file path))

let test_abp_spec_machines_equivalent () =
  with_abp_spec (fun p ->
      List.iter
        (fun (name, reference) ->
          let parsed = Option.get (Parser.find_machine p name) in
          match Netdsl_fsm.Equiv.check reference parsed with
          | Ok () -> ()
          | Error ce ->
            Alcotest.failf "%s differs: %s" name
              (Format.asprintf "%a" Netdsl_fsm.Equiv.pp_counterexample ce))
        [
          ("sender", Netdsl_proto.Abp.sender);
          ("data_channel", Netdsl_proto.Abp.data_channel);
          ("receiver", Netdsl_proto.Abp.receiver);
          ("ack_channel", Netdsl_proto.Abp.ack_channel);
        ])

let test_abp_spec_verifies () =
  with_abp_spec (fun p ->
      let sys =
        Netdsl_fsm.Compose.create ~name:"abp_from_dsl" (List.map snd p.Parser.machines)
      in
      (match
         Netdsl_fsm.Model_check.check_invariant sys (fun global ->
             not
               (List.exists (fun c -> String.equal c.M.state "bad") global))
       with
      | Netdsl_fsm.Model_check.Holds -> ()
      | _ -> Alcotest.fail "no-duplicate-delivery failed on DSL-defined ABP");
      match Netdsl_fsm.Model_check.check_deadlock_free sys with
      | Netdsl_fsm.Model_check.Holds -> ()
      | _ -> Alcotest.fail "deadlock freedom failed on DSL-defined ABP")

let test_specs_parse_and_check () =
  List.iter
    (fun name ->
      match find_spec name with
      | None -> ()
      | Some path ->
        let p = parse_ok (read_file path) in
        (* Every machine in every shipped spec is structurally valid and
           passes analysis without defects. *)
        List.iter
          (fun (_, m) ->
            Alcotest.(check (list string)) (name ^ " machine defects") []
              (List.map (fun d -> d.M.what) (M.validate m)))
          p.Parser.machines)
    [ "arq.ndsl"; "ipv4.ndsl"; "sensor.ndsl"; "abp.ndsl"; "tftp.ndsl"; "stacks.ndsl" ]

let test_stacks_spec_compiles () =
  (* Every stack in the shipped spec lowers to a fused plan, and the
     four-layer chain accepts a packet built by the library catalogue
     (specs/stacks.ndsl mirrors lib/formats wire layouts). *)
  match find_spec "stacks.ndsl" with
  | None -> ()
  | Some path ->
    let module S = Netdsl_format.Stack in
    let p = parse_ok (read_file path) in
    check_int "three stacks" 3 (List.length p.Parser.stacks);
    List.iter
      (fun (name, st) ->
        match S.compile st with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "stack %s does not compile: %s" name e)
      p.Parser.stacks;
    let st = Option.get (Parser.find_stack p "inet_tftp") in
    let plan = Result.get_ok (S.compile st) in
    let lib_plan = Result.get_ok (S.compile Netdsl_formats.Stacks.inet_tftp) in
    let pkt =
      Result.get_ok
        (S.encode lib_plan
           (Netdsl_formats.Stacks.inet_tftp_values
              (Netdsl_formats.Tftp.Ack { block = 1 })))
    in
    check_bool "spec stack accepts library chain" true (S.run plan pkt)

let spec_suite =
  ( "lang.specs",
    [
      Alcotest.test_case "ABP spec equivalent to library" `Quick test_abp_spec_machines_equivalent;
      Alcotest.test_case "ABP spec verifies" `Quick test_abp_spec_verifies;
      Alcotest.test_case "all shipped specs valid" `Quick test_specs_parse_and_check;
      Alcotest.test_case "stacks spec compiles and routes" `Quick test_stacks_spec_compiles;
    ] )

let suite = suite @ [ spec_suite ]

let test_arq_spec_sender_equivalent_to_library () =
  (* The .ndsl sender speaks of a "timer" event where the library machine
     says "timeout"; after renaming, the two are behaviourally equivalent
     (labels and ignore-lists play no role in the language). *)
  match find_spec "arq.ndsl" with
  | None -> ()
  | Some path ->
    let p = parse_ok (read_file path) in
    let parsed = Option.get (Parser.find_machine p "sender") in
    let rename e = if String.equal e "timer" then "timeout" else e in
    let renamed =
      {
        parsed with
        M.events = List.map rename parsed.M.events;
        transitions =
          List.map
            (fun (t : M.transition) -> { t with M.event = rename t.event })
            parsed.M.transitions;
        ignores = List.map (fun (s, e) -> (s, rename e)) parsed.M.ignores;
      }
    in
    let reference = Netdsl_proto.Arq_fsm.sender ~seq_bits:8 in
    (match Netdsl_fsm.Equiv.check ~max_pairs:2_000_000 reference renamed with
    | Ok () -> ()
    | Error ce ->
      Alcotest.failf "spec sender differs from library sender: %s"
        (Format.asprintf "%a" Netdsl_fsm.Equiv.pp_counterexample ce))

let () = ignore test_arq_spec_sender_equivalent_to_library

let spec_equiv_suite =
  ( "lang.spec_equiv",
    [
      Alcotest.test_case "ARQ spec sender = library sender" `Quick
        test_arq_spec_sender_equivalent_to_library;
    ] )

let suite = suite @ [ spec_equiv_suite ]
