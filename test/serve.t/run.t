`netdsl serve` binds real sockets, so every failure must exit 1 with a
clear message before any traffic flows.  A format to serve:

  $ cat > ping.ndsl <<'SPEC'
  > format ping {
  >   token : uint32 "Token";
  >   hops  : uint8 where 1..16 "Hops";
  >   chk   : checksum xor8 over message "Check";
  > }
  > SPEC

No listener at all:

  $ netdsl serve ping.ndsl
  netdsl: nothing to listen on (give --udp PORT and/or --tcp PORT)
  [1]

A port outside the valid range:

  $ netdsl serve ping.ndsl --udp 70000
  netdsl: invalid port 70000 (expected 0..65535)
  [1]

  $ netdsl serve ping.ndsl --tcp=-1
  netdsl: invalid port -1 (expected 0..65535)
  [1]

An address that is not ours to bind (TEST-NET-3 is reserved):

  $ netdsl serve ping.ndsl --udp 0 --host 203.0.113.7
  netdsl: cannot bind udp 203.0.113.7:0: address not available
  [1]

A host that is not a numeric address:

  $ netdsl serve ping.ndsl --udp 0 --host not-an-ip
  netdsl: invalid listen address "not-an-ip"
  [1]

An unknown format:

  $ netdsl serve ping.ndsl --udp 0 --format pong
  no format named "pong" (have: ping)
  [1]

A --patch that names a field the format does not have, or a non-integer
value — both rejected before binding:

  $ netdsl serve ping.ndsl --udp 0 --patch ttl=7
  netdsl: unknown field "ttl" in --patch (have: token, hops, chk)
  [1]

  $ netdsl serve ping.ndsl --udp 0 --patch hops=many
  netdsl: bad --patch value "many" (expected an integer)
  [1]

  $ netdsl serve ping.ndsl --udp 0 --patch hops
  netdsl: bad --patch "hops" (expected FIELD=VALUE)
  [1]

A patch the respond stage could never apply in place (hops is covered by
an xor8 checksum, which has no incremental update) — refused up front
rather than silently rejecting every reply at runtime:

  $ netdsl serve ping.ndsl --udp 0 --patch hops=2
  netdsl: cannot patch field "hops" in place: checksum algorithm xor8 has no incremental update
  [1]

The batched-I/O knobs reject nonsense before binding: a zero batch, a
zero tick, a forced mmsg flavor where the kernel stubs are unavailable
(masked here with NETDSL_NO_MMSG), and mmsg over a TCP listener:

  $ netdsl serve ping.ndsl --udp 0 --io-batch 0
  netdsl: --io-batch must be a positive batch size
  [1]

  $ netdsl serve ping.ndsl --udp 0 --tick 0
  netdsl: --tick must be a positive millisecond count
  [1]

  $ NETDSL_NO_MMSG=1 netdsl serve ping.ndsl --udp 0 --io mmsg --max-packets 0
  netdsl: batched I/O unavailable: the recvmmsg/epoll stubs report unsupported on this kernel (or NETDSL_NO_MMSG is set); use --io legacy
  [1]

  $ netdsl serve ping.ndsl --udp 0 --tcp 0 --io mmsg --max-packets 0
  netdsl: batched I/O serves UDP listeners only
  [1]

The green path is deterministic with --max-packets 0: bind an ephemeral
port (masked below), process nothing, report the (all-zero) per-listener
and per-stage counters, exit 0.

  $ netdsl serve ping.ndsl --udp 0 --max-packets 0 | sed -E 's/127\.0\.0\.1:[0-9]+/127.0.0.1:PORT/'
  serving ping on udp 127.0.0.1:PORT (fused mode)
  processed 0 packet(s)
  udp 127.0.0.1:PORT
    rx 0 pkts / 0 B   tx 0 pkts / 0 B   drops 0
    send-eagain 0   short-writes 0   tx-errors 0   hwm drain 0 pkts, datagram 0 B
    syscalls 0   batched-rx 0   batched-tx 0   hwm 0 pkts/syscall
  event loop
    rx 0 pkts / 0 B   tx 0 pkts / 0 B   drops 0
    send-eagain 0   short-writes 0   tx-errors 0   hwm drain 0 pkts, datagram 0 B
    syscalls 0   batched-rx 0   batched-tx 0   hwm 0 pkts/syscall
  stage         packets          bytes   rejects       mean     ~p50     ~p99
  decode              0              0         0        0ns      0ns      0ns
  verify              0              0         0        0ns      0ns      0ns
  step                0              0         0        0ns      0ns      0ns
  encode              0              0         0        0ns      0ns      0ns

Both termination flags parse together (still zero packets):

  $ netdsl serve ping.ndsl --udp 0 --mode staged --max-packets 0 --duration 0.01 | sed -E 's/127\.0\.0\.1:[0-9]+/127.0.0.1:PORT/'
  serving ping on udp 127.0.0.1:PORT (staged mode)
  processed 0 packet(s)
  udp 127.0.0.1:PORT
    rx 0 pkts / 0 B   tx 0 pkts / 0 B   drops 0
    send-eagain 0   short-writes 0   tx-errors 0   hwm drain 0 pkts, datagram 0 B
    syscalls 0   batched-rx 0   batched-tx 0   hwm 0 pkts/syscall
  event loop
    rx 0 pkts / 0 B   tx 0 pkts / 0 B   drops 0
    send-eagain 0   short-writes 0   tx-errors 0   hwm drain 0 pkts, datagram 0 B
    syscalls 0   batched-rx 0   batched-tx 0   hwm 0 pkts/syscall
  stage         packets          bytes   rejects       mean     ~p50     ~p99
  decode              0              0         0        0ns      0ns      0ns
  verify              0              0         0        0ns      0ns      0ns
  step                0              0         0        0ns      0ns      0ns
  encode              0              0         0        0ns      0ns      0ns
