(* The socket front end: loopback round trips through real UDP/TCP
   sockets, framing, backpressure counters, shutdown draining, and the
   socket leg of the differential oracle. *)

module Fm = Netdsl_formats
module Prng = Netdsl_util.Prng
module Pipeline = Netdsl_engine.Pipeline
module Flight = Netdsl_engine.Flight
module Corpus = Netdsl_check.Corpus
module Mutate = Netdsl_check.Mutate
module Server = Netdsl_net.Server
module Nstats = Netdsl_net.Stats
module Loopback = Netdsl_net.Loopback

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let arq_data ~seq payload = Fm.Arq.to_bytes (Fm.Arq.Data { seq; payload })

(* Reply = the validated request, unchanged: valid for every format. *)
let echo_flight = Flight.spec ~respond:[ { Flight.re_when = All []; re_set = [] } ] ()

(* The ARQ responder of bench e15: verify, classify to "ok", key flows
   by seq, answer data packets with an in-place kind:=ack patch. *)
let arq_flight =
  Flight.spec
    ~verify:(Flight.Cmp (Flight.Lt, Flight.Field "seq", Flight.Const 256L))
    ~classify:
      [ { Flight.ev_when = Flight.Cmp (Flight.Eq, Flight.Field "kind", Flight.Const 0L);
          ev_name = "ok" } ]
    ~flow_key:"seq"
    ~respond:
      [ { Flight.re_when = Flight.Cmp (Flight.Eq, Flight.Field "kind", Flight.Const 0L);
          re_set = [ { Flight.set_field = "kind"; set_to = Flight.Const 1L } ] } ]
    ()

let loopback port =
  Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port)

let udp_client () = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_DGRAM 0

let send fd port pkt =
  ignore (Unix.sendto fd (Bytes.of_string pkt) 0 (String.length pkt) [] (loopback port))

let recv_timeout ?(timeout = 5.0) fd =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> None
  | _ ->
    let buf = Bytes.create 65536 in
    let n, _ = Unix.recvfrom fd buf 0 (Bytes.length buf) [] in
    Some (Bytes.sub_string buf 0 n)

(* ------------------------------------------------------------------ *)
(* process_buffer: the zero-copy batch-drain entry point *)

let process_buffer_matches_process () =
  let mk () =
    Pipeline.create ~mode:Pipeline.Fused ~flight:arq_flight
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8) Fm.Arq.format
  in
  let p1 = mk () and p2 = mk () in
  let tag = function
    | Pipeline.Accepted -> "accepted"
    | Pipeline.Rejected_decode _ -> "rejected_decode"
    | Pipeline.Rejected_verify -> "rejected_verify"
    | Pipeline.Rejected_step -> "rejected_step"
    | Pipeline.Rejected_encode -> "rejected_encode"
  in
  let rng = Prng.of_int 7 in
  let plan = Mutate.plan Fm.Arq.format in
  for i = 0 to 199 do
    let valid = arq_data ~seq:(i land 0xff) (String.make (i mod 32) 'x') in
    let pkt =
      if i mod 3 = 0 then Mutate.apply (Mutate.random plan rng valid) valid
      else valid
    in
    (* oversize the buffer so ~len does the bounding, as a slab slot does *)
    let buf = Bytes.make (String.length pkt + 16) '\xee' in
    Bytes.blit_string pkt 0 buf 0 (String.length pkt);
    check_string "same outcome"
      (tag (Pipeline.process p1 pkt))
      (tag (Pipeline.process_buffer p2 buf ~len:(String.length pkt)))
  done

(* ------------------------------------------------------------------ *)
(* UDP round trips *)

(* One request/reply round trip through a real socket for every shipped
   format that has a value generator — the "answers real UDP datagrams
   for every shipped spec" acceptance criterion. *)
let udp_roundtrip_every_format () =
  let rng = Prng.of_int 42 in
  let config =
    { Pipeline.default_config with slot_bytes = 65536; ring_capacity = 64 }
  in
  let covered = ref 0 in
  List.iter
    (fun (name, fmt) ->
      match Corpus.generator fmt with
      | None -> ()
      | Some gen -> (
        match
          Server.create ~config ~mode:Pipeline.Fused ~signals:false
            ~flight:echo_flight
            ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
            fmt
        with
        | Error e -> Alcotest.failf "%s: server: %s" name e
        | Ok srv ->
          Fun.protect
            ~finally:(fun () -> Server.close srv)
            (fun () ->
              let port = Option.get (Server.udp_port srv) in
              let dom =
                Domain.spawn (fun () -> Server.run ~max_packets:1 srv)
              in
              let fd = udp_client () in
              Fun.protect
                ~finally:(fun () -> Unix.close fd)
                (fun () ->
                  let pkt = gen rng in
                  send fd port pkt;
                  (match recv_timeout fd with
                  | None -> Alcotest.failf "%s: no reply" name
                  | Some reply -> check_string (name ^ " echoed") pkt reply);
                  check_int (name ^ " processed") 1 (Domain.join dom);
                  incr covered))))
    Corpus.shipped;
  check_bool "covered most shipped formats" true (!covered >= 8)

let udp_truncated_rejected () =
  match
    Server.create ~mode:Pipeline.Fused ~signals:false ~flight:echo_flight
      ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
      Fm.Arq.format
  with
  | Error e -> Alcotest.fail e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Server.close srv)
      (fun () ->
        let port = Option.get (Server.udp_port srv) in
        let dom = Domain.spawn (fun () -> Server.run ~max_packets:2 srv) in
        let fd = udp_client () in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let valid = arq_data ~seq:3 "payload" in
            let truncated = String.sub valid 0 (String.length valid - 1) in
            send fd port truncated;
            send fd port valid;
            (* the truncated datagram must stay silent; the next reply
               on the socket is the echo of the valid packet — order
               preserved across the rejection *)
            (match recv_timeout fd with
            | None -> Alcotest.fail "no reply to the valid packet"
            | Some reply -> check_string "valid echoed" valid reply);
            check_bool "no second reply" true (recv_timeout ~timeout:0.1 fd = None);
            check_int "both processed" 2 (Domain.join dom);
            let st = Server.net_stats srv in
            check_int "rx counted" 2 st.Nstats.rx_pkts;
            check_int "one reply sent" 1 st.Nstats.tx_pkts))

(* Datagrams queued in the kernel when stop is requested are still
   answered: the graceful path sweeps the sockets once, drains the slab
   and flushes every reply before [run] returns. *)
let shutdown_drains_in_flight () =
  match
    Server.create ~mode:Pipeline.Fused ~signals:false ~flight:echo_flight
      ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
      Fm.Arq.format
  with
  | Error e -> Alcotest.fail e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Server.close srv)
      (fun () ->
        let port = Option.get (Server.udp_port srv) in
        let fd = udp_client () in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let n = 50 in
            for i = 0 to n - 1 do
              send fd port (arq_data ~seq:(i land 0xff) "inflight")
            done;
            (* loopback delivery is synchronous: all [n] sit in the
               server's kernel buffer before stop is requested *)
            Server.request_stop srv;
            check_int "drained on stop" n (Server.run srv);
            for i = 0 to n - 1 do
              match recv_timeout fd with
              | None -> Alcotest.failf "reply %d missing" i
              | Some _ -> ()
            done;
            (* run-twice: high-water marks are per-run observations *)
            check_bool "hwm recorded" true
              ((Server.net_stats srv).Nstats.hwm_drain > 0);
            Server.request_stop srv;
            check_int "idle second run" 0 (Server.run srv);
            check_int "hwm reset between runs" 0
              (Server.net_stats srv).Nstats.hwm_drain;
            check_int "cumulative rx survives the reset" n
              (Server.net_stats srv).Nstats.rx_pkts))

(* ------------------------------------------------------------------ *)
(* TCP framing *)

let tcp_frame pkt =
  let n = String.length pkt in
  let b = Bytes.create (n + 2) in
  Bytes.set b 0 (Char.chr (n lsr 8));
  Bytes.set b 1 (Char.chr (n land 0xff));
  Bytes.blit_string pkt 0 b 2 n;
  Bytes.to_string b

let read_exactly fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    match Unix.read fd buf !got (n - !got) with
    | 0 -> Alcotest.fail "connection closed mid-frame"
    | k -> got := !got + k
  done;
  Bytes.to_string buf

let tcp_roundtrip_framed () =
  match
    Server.create ~mode:Pipeline.Fused ~signals:false ~flight:echo_flight
      ~listeners:[ Server.Tcp { host = "127.0.0.1"; port = 0 } ]
      Fm.Arq.format
  with
  | Error e -> Alcotest.fail e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Server.close srv)
      (fun () ->
        let port =
          match Server.bound srv with
          | [ ("tcp", _, p) ] -> p
          | _ -> Alcotest.fail "expected one tcp listener"
        in
        let dom = Domain.spawn (fun () -> Server.run ~max_packets:2 srv) in
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Unix.connect fd (loopback port);
            let a = arq_data ~seq:1 "first" in
            let b = arq_data ~seq:2 "second, longer" in
            (* both frames in one write: the reframer must cut them *)
            let two = tcp_frame a ^ tcp_frame b in
            ignore (Unix.write_substring fd two 0 (String.length two));
            let reply_of expect =
              let hdr = read_exactly fd 2 in
              let n = (Char.code hdr.[0] lsl 8) lor Char.code hdr.[1] in
              check_string "framed echo" expect (read_exactly fd n)
            in
            reply_of a;
            reply_of b;
            check_int "both processed" 2 (Domain.join dom);
            let st = Server.net_stats srv in
            check_int "conn accepted" 1 st.Nstats.conns_accepted;
            check_int "tx frames" 2 st.Nstats.tx_pkts))

(* ------------------------------------------------------------------ *)
(* create-time red paths *)

let create_red_paths () =
  let contains msg sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length msg
      && (String.equal (String.sub msg i n) sub || go (i + 1))
    in
    go 0
  in
  let fail_is expect = function
    | Error msg ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg expect)
        true (contains msg expect)
    | Ok srv ->
      Server.close srv;
      Alcotest.failf "expected an error mentioning %S" expect
  in
  let mk listeners =
    Server.create ~signals:false ~flight:echo_flight ~listeners Fm.Arq.format
  in
  fail_is "no listeners" (mk []);
  fail_is "invalid port" (mk [ Server.Udp { host = "127.0.0.1"; port = 70000 } ]);
  fail_is "invalid listen address" (mk [ Server.Udp { host = "not-an-ip"; port = 0 } ]);
  (* a TEST-NET address is guaranteed not to be local *)
  fail_is "address not available"
    (mk [ Server.Udp { host = "203.0.113.7"; port = 0 } ]);
  (* a port already held by a listening TCP socket *)
  match mk [ Server.Tcp { host = "127.0.0.1"; port = 0 } ] with
  | Error e -> Alcotest.fail e
  | Ok first ->
    Fun.protect
      ~finally:(fun () -> Server.close first)
      (fun () ->
        let port =
          match Server.bound first with
          | [ (_, _, p) ] -> p
          | _ -> Alcotest.fail "expected one listener"
        in
        fail_is "address already in use"
          (mk [ Server.Tcp { host = "127.0.0.1"; port } ]))

(* ------------------------------------------------------------------ *)
(* sharded mode *)

(* Two worker domains behind one UDP socket: the listener steers each
   datagram by its seq field into a per-worker SPSC ring; replies come
   back from the worker domains' own [sendto].  Every flow must be
   answered (kind patched to ack), rx charged to the listener and tx to
   the worker rows. *)
let sharded_udp_roundtrip () =
  match
    Server.create ~mode:Pipeline.Fused ~signals:false ~flight:arq_flight
      ~workers:2 ~allow_oversubscribe:true
      ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
      Fm.Arq.format
  with
  | Error e -> Alcotest.fail e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Server.close srv)
      (fun () ->
        check_int "two workers" 2 (Server.workers srv);
        let port = Option.get (Server.udp_port srv) in
        let n = 64 in
        let dom = Domain.spawn (fun () -> Server.run ~max_packets:n srv) in
        let fd = udp_client () in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let sent = Hashtbl.create n in
            for i = 1 to n do
              let pkt = arq_data ~seq:(i land 0xFF) (Printf.sprintf "m%02d" i) in
              Hashtbl.replace sent (i land 0xFF) pkt;
              send fd port pkt
            done;
            (* run returns only after the worker rings are drained, so
               every reply has left a worker's sendto by now *)
            check_int "all steered and served" n (Domain.join dom);
            let got = ref 0 in
            let continue = ref true in
            while !continue do
              match recv_timeout ~timeout:1.0 fd with
              | None -> continue := false
              | Some reply ->
                incr got;
                let seq = Char.code reply.[0] in
                check_bool "reply to a sent flow" true (Hashtbl.mem sent seq);
                check_int "kind patched to ack" 1 (Char.code reply.[1]);
                check_int "reply keeps the length"
                  (String.length (Hashtbl.find sent seq))
                  (String.length reply)
            done;
            check_int "every packet answered" n !got;
            let es = Server.engine_stats srv in
            let module Estats = Netdsl_engine.Stats in
            check_int "every packet decoded" n
              (Estats.stage_packets es (Estats.stage_index es "decode"));
            let st = Server.net_stats srv in
            check_int "rx counted (listener)" n st.Nstats.rx_pkts;
            check_int "tx counted (workers)" n st.Nstats.tx_pkts;
            (* the listener's own stats carry no tx: replies never touch
               the select thread *)
            let l_st =
              match Server.listener_stats srv with
              | (_, st) :: _ -> st
              | [] -> Alcotest.fail "no listener row"
            in
            check_int "listener tx untouched" 0 l_st.Nstats.tx_pkts))

let sharded_create_red_paths () =
  let contains msg sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length msg
      && (String.equal (String.sub msg i n) sub || go (i + 1))
    in
    go 0
  in
  let fail_is expect = function
    | Error msg ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg expect)
        true (contains msg expect)
    | Ok srv ->
      Server.close srv;
      Alcotest.failf "expected an error mentioning %S" expect
  in
  (* TCP cannot shard: replies would interleave on the stream *)
  fail_is "UDP"
    (Server.create ~signals:false ~flight:arq_flight ~workers:2
       ~allow_oversubscribe:true
       ~listeners:[ Server.Tcp { host = "127.0.0.1"; port = 0 } ]
       Fm.Arq.format);
  (* echo_flight declares no flow key and none is supplied *)
  fail_is "steering key"
    (Server.create ~signals:false ~flight:echo_flight ~workers:2
       ~allow_oversubscribe:true
       ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
       Fm.Arq.format);
  (* an explicit ~shard_key must exist in the format *)
  fail_is "bad steering key"
    (Server.create ~signals:false ~flight:echo_flight ~workers:2
       ~allow_oversubscribe:true ~shard_key:"nope"
       ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
       Fm.Arq.format)

(* ------------------------------------------------------------------ *)
(* serving a layered chain *)

(* A chained TFTP request over real UDP: the server decodes the whole
   eth -> ipv4 -> udp -> tftp chain through the fused plan, verifies on
   an inner register, keys flows on the UDP layer and answers with the
   IPv4 TTL patched inside its recorded layer window — which drags the
   header checksum along incrementally (RFC 1624), so the reply is still
   a valid chain.  A packet whose outer demux lies never produces a
   datagram. *)
let stacked_serve_chained_tftp () =
  let module Stack = Netdsl_format.Stack in
  let stack = Fm.Stacks.inet_tftp in
  let req =
    match Corpus.stack_seeds stack with
    | r :: _ -> r
    | [] -> Alcotest.fail "no chained seeds for inet_tftp"
  in
  let plan = Result.get_ok (Stack.compile stack) in
  let seq = Stack.Seq.create plan in
  (match Stack.Seq.decode seq req with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chained seed does not decode: %s" e);
  let broken_demux =
    (* ethertype (bytes 12-13 of the ethernet header) no longer selects
       the ipv4 edge: the chain rejects, the socket stays silent *)
    let b = Bytes.of_string req in
    Bytes.set b 13 '\x01';
    Bytes.to_string b
  in
  let flight =
    Flight.spec
      ~verify:(Flight.Cmp (Flight.Lt, Flight.Field "tftp.opcode", Flight.Const 6L))
      ~flow_key:"udp.src_port"
      ~respond:
        [ { Flight.re_when = All [];
            re_set = [ { Flight.set_field = "ipv4.ttl"; set_to = Flight.Const 7L } ] } ]
      ()
  in
  match
    Server.create ~mode:Pipeline.Fused ~signals:false ~stack ~flight
      ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
      (Stack.layer_format stack 0)
  with
  | Error e -> Alcotest.fail e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Server.close srv)
      (fun () ->
        let port = Option.get (Server.udp_port srv) in
        let dom = Domain.spawn (fun () -> Server.run ~max_packets:2 srv) in
        let fd = udp_client () in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            send fd port broken_demux;
            send fd port req;
            (match recv_timeout fd with
            | None -> Alcotest.fail "no reply to the chained request"
            | Some reply ->
              check_int "reply keeps the chained length" (String.length req)
                (String.length reply);
              (match Stack.Seq.decode seq reply with
              | Error e -> Alcotest.failf "reply does not chain-decode: %s" e
              | Ok () ->
                check_int "ttl patched inside the ipv4 window" 7
                  (Int64.to_int
                     (Netdsl_format.View.get_int (Stack.Seq.view seq 1) "ttl"));
                let tftp_off = Stack.Seq.layer_off seq 3 in
                let tftp_len = Stack.Seq.layer_len seq 3 in
                check_string "tftp window untouched"
                  (String.sub req tftp_off tftp_len)
                  (String.sub reply tftp_off tftp_len)));
            check_bool "no reply to the broken chain" true
              (recv_timeout ~timeout:0.1 fd = None);
            check_int "both processed" 2 (Domain.join dom);
            let st = Server.net_stats srv in
            check_int "rx counted" 2 st.Nstats.rx_pkts;
            check_int "one reply sent" 1 st.Nstats.tx_pkts))

(* ------------------------------------------------------------------ *)
(* socket-side stats: the batching counters fold like the others *)

let stats_merge_folds_batch_counters () =
  let a = Nstats.create () and b = Nstats.create () in
  a.Nstats.rx_pkts <- 3;
  a.Nstats.syscalls <- 10;
  a.Nstats.batched_rx <- 100;
  a.Nstats.batched_tx <- 50;
  a.Nstats.hwm_pkts_per_syscall <- 8;
  b.Nstats.rx_pkts <- 4;
  b.Nstats.syscalls <- 5;
  b.Nstats.batched_rx <- 7;
  b.Nstats.batched_tx <- 3;
  b.Nstats.hwm_pkts_per_syscall <- 32;
  let m = Nstats.merge [ a; b ] in
  check_int "rx adds" 7 m.Nstats.rx_pkts;
  check_int "syscalls add" 15 m.Nstats.syscalls;
  check_int "batched rx adds" 107 m.Nstats.batched_rx;
  check_int "batched tx adds" 53 m.Nstats.batched_tx;
  check_int "pkts/syscall hwm maxes" 32 m.Nstats.hwm_pkts_per_syscall;
  (* inputs untouched; the hwm is per-run, the counters are cumulative *)
  check_int "input untouched" 100 a.Nstats.batched_rx;
  Nstats.reset_highwater a;
  check_int "hwm resets" 0 a.Nstats.hwm_pkts_per_syscall;
  check_int "cumulative counters survive the reset" 10 a.Nstats.syscalls

(* ------------------------------------------------------------------ *)
(* the batched (recvmmsg/sendmmsg + epoll) receive loop *)

let mmsg_available () =
  Netdsl_net.Mmsg.available () && Netdsl_net.Mmsg.Epoll.available ()

(* Forced-mmsg server, plain per-packet client: every data packet
   acked through the batched drain / staged-flush path, the batching
   counters actually ticking. *)
let mmsg_udp_roundtrip () =
  if not (mmsg_available ()) then ()
  else
    match
      Server.create ~mode:Pipeline.Fused ~signals:false ~flight:arq_flight
        ~io:Server.Mmsg ~io_batch:8
        ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
        Fm.Arq.format
    with
    | Error e -> Alcotest.fail e
    | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Server.close srv)
        (fun () ->
          check_bool "batched io resolved" true (Server.batched_io srv);
          let port = Option.get (Server.udp_port srv) in
          let n = 40 in
          let dom = Domain.spawn (fun () -> Server.run ~max_packets:n srv) in
          let fd = udp_client () in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              for i = 1 to n do
                send fd port (arq_data ~seq:(i land 0xFF) (Printf.sprintf "b%02d" i))
              done;
              check_int "all processed" n (Domain.join dom);
              let got = ref 0 in
              let continue = ref true in
              while !continue do
                match recv_timeout ~timeout:1.0 fd with
                | None -> continue := false
                | Some reply ->
                  incr got;
                  check_int "kind patched to ack" 1 (Char.code reply.[1])
              done;
              check_int "every packet answered" n !got;
              let st = Server.net_stats srv in
              check_int "rx counted" n st.Nstats.rx_pkts;
              check_int "tx counted" n st.Nstats.tx_pkts;
              check_int "all rx arrived batched" n st.Nstats.batched_rx;
              check_int "all tx left batched" n st.Nstats.batched_tx;
              check_bool "syscalls counted" true (st.Nstats.syscalls > 0);
              check_bool "a batch amortized" true
                (st.Nstats.hwm_pkts_per_syscall >= 1)))

(* The same graceful-shutdown guarantee as the legacy loop: datagrams
   already queued in the kernel when stop lands are drained, answered
   and flushed before [run] returns. *)
let mmsg_shutdown_drains_in_flight () =
  if not (mmsg_available ()) then ()
  else
    match
      Server.create ~mode:Pipeline.Fused ~signals:false ~flight:echo_flight
        ~io:Server.Mmsg ~io_batch:16
        ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
        Fm.Arq.format
    with
    | Error e -> Alcotest.fail e
    | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Server.close srv)
        (fun () ->
          let port = Option.get (Server.udp_port srv) in
          let fd = udp_client () in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              let n = 50 in
              for i = 0 to n - 1 do
                send fd port (arq_data ~seq:(i land 0xff) "inflight")
              done;
              Server.request_stop srv;
              check_int "drained on stop" n (Server.run srv);
              for i = 0 to n - 1 do
                match recv_timeout fd with
                | None -> Alcotest.failf "reply %d missing" i
                | Some _ -> ()
              done;
              check_bool "multi-packet batches observed" true
                ((Server.net_stats srv).Nstats.hwm_pkts_per_syscall > 1)))

(* Forcing the legacy loop must behave exactly like the default used to:
   the fallback stays a first-class, tested path. *)
let legacy_forced_roundtrip () =
  match
    Server.create ~mode:Pipeline.Fused ~signals:false ~flight:echo_flight
      ~io:Server.Legacy
      ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
      Fm.Arq.format
  with
  | Error e -> Alcotest.fail e
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Server.close srv)
      (fun () ->
        check_bool "legacy io resolved" true (not (Server.batched_io srv));
        let port = Option.get (Server.udp_port srv) in
        let dom = Domain.spawn (fun () -> Server.run ~max_packets:1 srv) in
        let fd = udp_client () in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let pkt = arq_data ~seq:9 "legacy" in
            send fd port pkt;
            (match recv_timeout fd with
            | None -> Alcotest.fail "no reply on the legacy path"
            | Some reply -> check_string "echoed" pkt reply);
            check_int "processed" 1 (Domain.join dom);
            check_int "no batched rx on legacy" 0
              (Server.net_stats srv).Nstats.batched_rx))

let mmsg_create_red_paths () =
  let contains msg sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length msg
      && (String.equal (String.sub msg i n) sub || go (i + 1))
    in
    go 0
  in
  let fail_is expect = function
    | Error msg ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg expect)
        true (contains msg expect)
    | Ok srv ->
      Server.close srv;
      Alcotest.failf "expected an error mentioning %S" expect
  in
  (* batched I/O is a UDP story: the TCP reframer needs recv/read *)
  fail_is "UDP"
    (Server.create ~signals:false ~flight:echo_flight ~io:Server.Mmsg
       ~listeners:[ Server.Tcp { host = "127.0.0.1"; port = 0 } ]
       Fm.Arq.format);
  fail_is "io-batch"
    (Server.create ~signals:false ~flight:echo_flight ~io_batch:0
       ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
       Fm.Arq.format);
  (* the kill switch makes the stubs report unavailable, so a forced
     Mmsg must refuse rather than silently serve legacy *)
  Unix.putenv "NETDSL_NO_MMSG" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "NETDSL_NO_MMSG" "")
    (fun () ->
      fail_is "unavailable"
        (Server.create ~signals:false ~flight:echo_flight ~io:Server.Mmsg
           ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
           Fm.Arq.format);
      (* Auto under the kill switch degrades quietly to legacy *)
      match
        Server.create ~signals:false ~flight:echo_flight
          ~listeners:[ Server.Udp { host = "127.0.0.1"; port = 0 } ]
          Fm.Arq.format
      with
      | Error e -> Alcotest.fail e
      | Ok srv ->
        Fun.protect
          ~finally:(fun () -> Server.close srv)
          (fun () ->
            check_bool "auto degrades to legacy" true
              (not (Server.batched_io srv))))

(* ------------------------------------------------------------------ *)
(* the socket oracle leg *)

(* 5k structure-aware mutants (1 in 4 packets mutated) through a real
   socket pair in fused mode, every reply diffed byte-for-byte against
   the staged in-memory reference: the smoke-sized version of bench
   e16's soak. *)
let loopback_soak_agrees () =
  let rng = Prng.of_int 2026 in
  let plan = Mutate.plan Fm.Arq.format in
  let packets i =
    let seq = i land 0xff in
    let valid =
      if i mod 7 = 0 then Fm.Arq.to_bytes (Fm.Arq.Ack { seq })
      else arq_data ~seq (String.make (i mod 48) 'p')
    in
    if i mod 4 = 3 then Mutate.apply (Mutate.random plan rng valid) valid
    else valid
  in
  match
    Loopback.soak ~mode:Pipeline.Fused
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8) ~flight:arq_flight
      ~packets ~count:5000 Fm.Arq.format
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (match r.Loopback.first_disagreement with
    | None -> ()
    | Some d -> Alcotest.failf "disagreement: %s" d);
    check_int "0 disagreements" 0 r.Loopback.disagreements;
    check_int "all packets processed" 5000 r.Loopback.server_processed;
    check_bool "some replies flowed" true (r.Loopback.expected_replies > 1000);
    check_int "every expected reply arrived" r.Loopback.expected_replies
      r.Loopback.replies

(* The same differential soak with the server forced onto the batched
   drain/flush path: byte-for-byte agreement with the in-memory staged
   reference is the correctness gate for the mmsg rework. *)
let loopback_soak_mmsg_agrees () =
  if not (mmsg_available ()) then ()
  else begin
    let rng = Prng.of_int 1177 in
    let plan = Mutate.plan Fm.Arq.format in
    let packets i =
      let seq = i land 0xff in
      let valid =
        if i mod 7 = 0 then Fm.Arq.to_bytes (Fm.Arq.Ack { seq })
        else arq_data ~seq (String.make (i mod 48) 'q')
      in
      if i mod 4 = 3 then Mutate.apply (Mutate.random plan rng valid) valid
      else valid
    in
    match
      Loopback.soak ~mode:Pipeline.Fused
        ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
        ~flight:arq_flight ~io:Server.Mmsg ~io_batch:8 ~packets ~count:2000
        Fm.Arq.format
    with
    | Error e -> Alcotest.fail e
    | Ok r ->
      (match r.Loopback.first_disagreement with
      | None -> ()
      | Some d -> Alcotest.failf "disagreement: %s" d);
      check_int "0 disagreements" 0 r.Loopback.disagreements;
      check_int "all packets processed" 2000 r.Loopback.server_processed;
      check_int "every expected reply arrived" r.Loopback.expected_replies
        r.Loopback.replies
  end

let suite =
  [ ( "net.pipeline",
      [ Alcotest.test_case "process_buffer = process" `Quick
          process_buffer_matches_process ] );
    ( "net.server",
      [ Alcotest.test_case "udp round trip, every shipped format" `Quick
          udp_roundtrip_every_format;
        Alcotest.test_case "truncated datagram rejected, order kept" `Quick
          udp_truncated_rejected;
        Alcotest.test_case "shutdown drains in-flight" `Quick
          shutdown_drains_in_flight;
        Alcotest.test_case "tcp framed round trip" `Quick tcp_roundtrip_framed;
        Alcotest.test_case "chained tftp served through the fused stack" `Quick
          stacked_serve_chained_tftp;
        Alcotest.test_case "create red paths" `Quick create_red_paths;
        Alcotest.test_case "sharded udp round trip" `Quick
          sharded_udp_roundtrip;
        Alcotest.test_case "sharded create red paths" `Quick
          sharded_create_red_paths ] );
    ( "net.stats",
      [ Alcotest.test_case "merge folds the batching counters" `Quick
          stats_merge_folds_batch_counters ] );
    ( "net.mmsg",
      [ Alcotest.test_case "batched udp round trip" `Quick mmsg_udp_roundtrip;
        Alcotest.test_case "batched shutdown drains in-flight" `Quick
          mmsg_shutdown_drains_in_flight;
        Alcotest.test_case "forced legacy round trip" `Quick
          legacy_forced_roundtrip;
        Alcotest.test_case "batched create red paths" `Quick
          mmsg_create_red_paths ] );
    ( "net.loopback",
      [ Alcotest.test_case "5k-mutant socket soak agrees with memory" `Quick
          loopback_soak_agrees;
        Alcotest.test_case "2k-mutant soak through the batched path" `Quick
          loopback_soak_mmsg_agrees ] ) ]
