(* The fuzzing harness testing itself: golden corpus samples through the
   differential oracle, quick fuzz runs over every shipped format and
   machine (zero disagreements expected), and the planted-bug sanity
   checks — a harness that cannot catch a known-bad fast path proves
   nothing by staying green. *)

module Ck = Netdsl_check
module Desc = Netdsl_format.Desc
module Codec = Netdsl_format.Codec
module Prng = Netdsl_util.Prng
module Fm = Netdsl_formats

let seed = 20260806

let golden_paths fmt =
  let name = fmt.Desc.format_name in
  ("corpus/" ^ name ^ "-valid.hex", "corpus/" ^ name ^ "-malformed.hex")

let golden fmt =
  let valid, malformed = golden_paths fmt in
  Ck.Corpus.load_hex_file valid @ Ck.Corpus.load_hex_file malformed

let fail_report r = Alcotest.failf "unexpected disagreement:\n%s" (Ck.Report.to_string r)

(* Golden samples: the valid one must decode, the malformed one must be
   rejected — and the oracle must agree with itself on both. *)
let golden_case (name, fmt) =
  Alcotest.test_case name `Quick (fun () ->
      let valid_path, malformed_path = golden_paths fmt in
      (match Ck.Corpus.load_hex_file valid_path with
      | [ pkt ] -> (
        match Codec.decode fmt pkt with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "golden valid sample rejected: %s"
            (Codec.error_to_string e))
      | l -> Alcotest.failf "expected 1 packet in %s, got %d" valid_path (List.length l));
      (match Ck.Corpus.load_hex_file malformed_path with
      | [ pkt ] -> (
        match Codec.decode fmt pkt with
        | Ok _ -> Alcotest.failf "golden malformed sample accepted"
        | Error _ -> ())
      | l ->
        Alcotest.failf "expected 1 packet in %s, got %d" malformed_path
          (List.length l));
      let oracle = Ck.Oracle.create fmt in
      List.iter
        (fun pkt ->
          match Ck.Oracle.check oracle pkt with
          | Ok () -> ()
          | Error d ->
            Alcotest.failf "oracle disagreement on golden sample: %s"
              (Ck.Oracle.disagreement_to_string d))
        (golden fmt))

(* --iters 0 still exercises every corpus seed through the oracle. *)
let zero_iters_case (name, fmt) =
  Alcotest.test_case name `Quick (fun () ->
      match Ck.Fuzz.run_format ~golden:(golden fmt) ~seed ~iters:0 fmt with
      | Error r -> fail_report r
      | Ok stats ->
        if stats.Ck.Fuzz.ws_mutants < 2 then
          Alcotest.failf "only %d seeds checked at iters=0" stats.Ck.Fuzz.ws_mutants)

(* The main property: a few hundred structure-aware mutants per format,
   zero disagreements between View, Codec, Emit and the Pipeline.  The
   10k-per-format depth runs in CI via `netdsl fuzz`. *)
let fuzz_case (name, fmt) =
  Alcotest.test_case name `Quick (fun () ->
      match Ck.Fuzz.run_format ~golden:(golden fmt) ~seed ~iters:400 fmt with
      | Error r -> fail_report r
      | Ok stats ->
        if stats.Ck.Fuzz.ws_mutants < 400 then
          Alcotest.failf "only %d mutants checked" stats.Ck.Fuzz.ws_mutants;
        if stats.Ck.Fuzz.ws_accepted + stats.Ck.Fuzz.ws_rejected
           <> stats.Ck.Fuzz.ws_mutants
        then Alcotest.fail "accept/reject split does not sum to total")

(* The seeded-bug sanity check of the acceptance criteria: inverting the
   view's accept verdict must be caught and shrunk to a small repro. *)
let planted_wire_bug () =
  match
    Ck.Fuzz.run_format ~bug:Ck.Oracle.Invert_view_accept
      ~golden:(golden Fm.Arq.format) ~seed ~iters:50 Fm.Arq.format
  with
  | Ok _ -> Alcotest.fail "planted view bug not caught"
  | Error (Ck.Report.Trace _) -> Alcotest.fail "wire bug reported as trace"
  | Error (Ck.Report.Wire { w_bytes; _ } as r) ->
    if String.length w_bytes > 64 then
      Alcotest.failf "repro not shrunk: %d bytes" (String.length w_bytes);
    let rendered = Ck.Report.to_string r in
    List.iter
      (fun needle ->
        if
          not
            (List.exists
               (fun line ->
                 String.length line >= String.length needle
                 && String.sub line 0 (String.length needle) = needle)
               (String.split_on_char '\n' rendered))
        then Alcotest.failf "repro missing %S line:\n%s" needle rendered)
      [ "FUZZ DISAGREEMENT"; "format:"; "seed:"; "check:"; "input:"; "detail:" ]

(* Same sanity check for the fused leg: inverting the fused decoder's
   accept verdict must be caught by the "flight" comparison and shrunk —
   proof the new leg can catch a fusion bug. *)
let planted_flight_bug () =
  match
    Ck.Fuzz.run_format ~bug:Ck.Oracle.Invert_flight_accept
      ~golden:(golden Fm.Arq.format) ~seed ~iters:50 Fm.Arq.format
  with
  | Ok _ -> Alcotest.fail "planted fusion bug not caught"
  | Error (Ck.Report.Trace _) -> Alcotest.fail "fusion bug reported as trace"
  | Error (Ck.Report.Wire { w_check; w_bytes; _ }) ->
    Alcotest.(check string) "caught by the flight leg" "flight" w_check;
    if String.length w_bytes > 64 then
      Alcotest.failf "repro not shrunk: %d bytes" (String.length w_bytes)

(* Determinism: the same (seed, iters) must find the same repro, ops
   included — that is what makes a dump committable. *)
let planted_bug_deterministic () =
  let run () =
    Ck.Fuzz.run_format ~bug:Ck.Oracle.Invert_view_accept
      ~golden:(golden Fm.Arq.format) ~seed ~iters:50 Fm.Arq.format
  in
  match (run (), run ()) with
  | Error a, Error b ->
    Alcotest.(check string)
      "identical repro" (Ck.Report.to_string a) (Ck.Report.to_string b)
  | _ -> Alcotest.fail "planted bug not caught"

(* Mutation ops are self-contained: replaying a list is pure. *)
let mutation_replay () =
  let fmt = Fm.Ipv4.format in
  let plan = Ck.Mutate.plan fmt in
  if Ck.Mutate.slots plan = [] then Alcotest.fail "ipv4 plan has no slots";
  let rng = Prng.of_int seed in
  let gen = Option.get (Ck.Corpus.generator fmt) in
  for _ = 1 to 100 do
    let pkt = gen rng in
    let ops = Ck.Mutate.random plan rng pkt in
    let a = Ck.Mutate.apply ops pkt and b = Ck.Mutate.apply ops pkt in
    Alcotest.(check string) "replay is pure" a b;
    (* ops survive rendering (used in repro dumps) without raising *)
    List.iter (fun op -> ignore (Ck.Mutate.op_to_string op)) ops
  done;
  (* ops degrade to the identity out of range instead of raising *)
  let ops =
    [ Ck.Mutate.Flip_bit 100_000; Ck.Mutate.Set_byte (5000, 1);
      Ck.Mutate.Truncate 9999;
      Ck.Mutate.Remove_span { off = 50; len = 100 };
      Ck.Mutate.Zero_span { off = -1; len = 4 } ]
  in
  Alcotest.(check string) "oversized ops are identity" "ab" (Ck.Mutate.apply ops "ab")

let shrink_bytes () =
  let holds s = String.contains s 'Z' in
  let shrunk = Ck.Shrink.bytes holds ("prefix-Z-suffix" ^ String.make 100 'x') in
  Alcotest.(check string) "minimal witness" "Z" shrunk

let shrink_list () =
  let holds l = List.mem 7 l in
  let shrunk = Ck.Shrink.list holds [ 1; 2; 3; 7; 9; 11; 13 ] in
  Alcotest.(check (list int)) "minimal witness" [ 7 ] shrunk

(* The chained-decode leg: a quick cross-layer fuzz over every catalogue
   stack must find zero disagreements between the fused chain and the
   sequential per-layer decode. *)
let chain_golden name =
  Ck.Corpus.load_hex_file ("corpus/" ^ name ^ "-chain-valid.hex")
  @ Ck.Corpus.load_hex_file ("corpus/" ^ name ^ "-chain-malformed.hex")

(* Committed chained goldens: every valid sample must decode through both
   the fused chain and the sequential reference, every malformed one must
   be rejected by both. *)
let chain_golden_case (name, stack) =
  Alcotest.test_case name `Quick (fun () ->
      let plan = Result.get_ok (Netdsl_format.Stack.compile stack) in
      let seq = Netdsl_format.Stack.Seq.create plan in
      let verdict pkt = (Netdsl_format.Stack.run plan pkt,
                         Result.is_ok (Netdsl_format.Stack.Seq.decode seq pkt)) in
      List.iter
        (fun pkt ->
          match verdict pkt with
          | true, true -> ()
          | f, s ->
            Alcotest.failf "valid chained golden rejected (fused %b, seq %b)" f s)
        (Ck.Corpus.load_hex_file ("corpus/" ^ name ^ "-chain-valid.hex"));
      List.iter
        (fun pkt ->
          match verdict pkt with
          | false, false -> ()
          | f, s ->
            Alcotest.failf "malformed chained golden accepted (fused %b, seq %b)"
              f s)
        (Ck.Corpus.load_hex_file ("corpus/" ^ name ^ "-chain-malformed.hex")))

let chain_fuzz_case (name, stack) =
  Alcotest.test_case name `Quick (fun () ->
      match
        Ck.Fuzz.run_stack ~golden:(chain_golden name) ~seed ~iters:400
          (name, stack)
      with
      | Error r -> fail_report r
      | Ok stats ->
        if stats.Ck.Fuzz.cs_mutants < 400 then
          Alcotest.failf "only %d mutants checked" stats.Ck.Fuzz.cs_mutants;
        if stats.Ck.Fuzz.cs_accepted = 0 then
          Alcotest.failf "no mutant ever chain-decoded on %s — the fuzz is vacuous"
            name;
        if stats.Ck.Fuzz.cs_accepted + stats.Ck.Fuzz.cs_rejected
           <> stats.Ck.Fuzz.cs_mutants
        then Alcotest.fail "accept/reject split does not sum to total")

(* Planted chain bug: inverting the fused chain's accept verdict — a
   deliberately flipped chained bounds check — must be caught by the
   "chain" comparison and shrunk, on the very first golden seed. *)
let planted_chain_bug () =
  match
    Ck.Fuzz.run_stack ~bug:Ck.Oracle.Invert_chain_accept ~seed ~iters:50
      ("inet_tftp", Fm.Stacks.inet_tftp)
  with
  | Ok _ -> Alcotest.fail "planted chain bug not caught"
  | Error (Ck.Report.Trace _) -> Alcotest.fail "chain bug reported as trace"
  | Error (Ck.Report.Wire { w_check; w_format; _ }) ->
    Alcotest.(check string) "caught by the chain leg" "chain" w_check;
    Alcotest.(check string) "against the right stack" "inet_tftp" w_format

let chain_seeds_decode () =
  List.iter
    (fun (name, stack) ->
      let seeds = Ck.Corpus.stack_seeds stack in
      if seeds = [] then Alcotest.failf "no chained seeds for %s" name;
      let plan = Result.get_ok (Netdsl_format.Stack.compile stack) in
      let seq = Netdsl_format.Stack.Seq.create plan in
      List.iter
        (fun pkt ->
          if not (Netdsl_format.Stack.run plan pkt) then
            Alcotest.failf "fused chain rejects a %s corpus seed" name;
          match Netdsl_format.Stack.Seq.decode seq pkt with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "sequential decode rejects a %s corpus seed: %s" name e)
        seeds)
    Fm.Stacks.all

(* Step vs Interp lock-step over every shipped machine. *)
let trace_case (name, m) =
  Alcotest.test_case name `Quick (fun () ->
      match Ck.Fuzz.run_machine ~seed ~iters:80 (name, m) with
      | Error r -> fail_report r
      | Ok stats ->
        if stats.Ck.Trace_fuzz.traces = 0 then Alcotest.fail "no traces executed";
        if stats.Ck.Trace_fuzz.fired = 0 then
          Alcotest.failf "no event ever fired on %s — the fuzz is vacuous" name)

let planted_trace_bug () =
  let target = List.hd Netdsl_proto.Machines.all in
  match Ck.Fuzz.run_machine ~bug:true ~seed ~iters:50 target with
  | Ok _ -> Alcotest.fail "planted trace bug not caught"
  | Error (Ck.Report.Wire _) -> Alcotest.fail "trace bug reported as wire"
  | Error (Ck.Report.Trace { t_events; _ }) ->
    (* minimal repro: exactly the first transition that can fire *)
    if List.length t_events > 2 then
      Alcotest.failf "trace not shrunk: %d events" (List.length t_events)

let suite =
  [ ("check.golden", List.map golden_case Ck.Corpus.shipped);
    ("check.zero_iters", List.map zero_iters_case Ck.Corpus.shipped);
    ("check.fuzz", List.map fuzz_case Ck.Corpus.shipped);
    ( "check.self",
      [ Alcotest.test_case "planted wire bug caught+shrunk" `Quick planted_wire_bug;
        Alcotest.test_case "planted fusion bug caught+shrunk" `Quick
          planted_flight_bug;
        Alcotest.test_case "planted bug deterministic" `Quick
          planted_bug_deterministic;
        Alcotest.test_case "mutation replay" `Quick mutation_replay;
        Alcotest.test_case "shrink bytes" `Quick shrink_bytes;
        Alcotest.test_case "shrink list" `Quick shrink_list;
        Alcotest.test_case "planted trace bug caught+shrunk" `Quick
          planted_trace_bug ] );
    ("check.chain_golden", List.map chain_golden_case Fm.Stacks.all);
    ("check.chain", List.map chain_fuzz_case Fm.Stacks.all);
    ( "check.chain_self",
      [ Alcotest.test_case "chained corpus seeds decode" `Quick chain_seeds_decode;
        Alcotest.test_case "planted chain bug caught" `Quick planted_chain_bug ] );
    ("check.trace", List.map trace_case Netdsl_proto.Machines.all) ]
