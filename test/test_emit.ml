(* Equivalence of the compiled [Emit] encoder and the interpreting [Codec]:
   for every shipped format and any generated value both must produce the
   same bytes (or the same rejection), and [Emit.patch] must produce
   exactly what a decode → mutate → full re-encode round trip would —
   incremental checksum included.  This is the licence for the engine's
   respond path to never call the full encoder. *)

open Netdsl_format
module Fm = Netdsl_formats
module Prng = Netdsl_util.Prng
module Ck = Netdsl_util.Checksum

let trials = 200

module Check = Netdsl_check

(* The handcrafted IPv4/TCP value generators that used to live here (and
   in test_view.ml) are now centralised in [Netdsl_check.Corpus]. *)
let all_formats = Check.Corpus.shipped

let sample rng fmt =
  match Check.Corpus.value_generator fmt with
  | Some g -> g rng
  | None -> Alcotest.failf "no value generator for %s" fmt.Desc.format_name

let gen_ipv4_value rng =
  match Check.Corpus.value_generator Fm.Ipv4.format with
  | Some g -> g rng
  | None -> Alcotest.fail "no ipv4 generator"

let hex = Netdsl_util.Hexdump.to_hex

(* One value through both encoders; fails the test on any disagreement. *)
let check_same_bytes name fmt emitter value =
  match (Codec.encode fmt value, Emit.encode emitter value) with
  | Ok c, Ok e ->
    if not (String.equal c e) then
      Alcotest.failf "%s: encoders disagree\ncodec: %s\nemit:  %s" name (hex c)
        (hex e)
  | Error _, Error _ -> ()
  | Ok _, Error e ->
    Alcotest.failf "%s: codec encodes, emit rejects: %s" name
      (Codec.error_to_string e)
  | Error e, Ok _ ->
    Alcotest.failf "%s: emit encodes, codec rejects: %s" name
      (Codec.error_to_string e)

let equivalence_case (name, fmt) =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Prng.of_int 20260806 in
      let emitter = Emit.create fmt in
      for _ = 1 to trials do
        let value = sample rng fmt in
        check_same_bytes name fmt emitter value
      done)

(* Adversarial re-encode: corpus seeds mutated by the structure-aware
   fuzzer, through the differential oracle — which re-encodes whatever
   both decoders accept with Emit and Codec and demands identical bytes. *)
let mutant_case (name, fmt) =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Prng.of_int 46 in
      let oracle = Check.Oracle.create fmt in
      let corpus = Check.Corpus.make fmt rng in
      let plan = Check.Mutate.plan fmt in
      for _ = 1 to trials do
        let seed_pkt = Check.Corpus.pick corpus rng in
        let mutant =
          Check.Mutate.apply (Check.Mutate.random plan rng seed_pkt) seed_pkt
        in
        match Check.Oracle.check oracle mutant with
        | Ok () -> ()
        | Error d ->
          Alcotest.failf "%s: %s" name (Check.Oracle.disagreement_to_string d)
      done)

(* encode_into: bytes land at the requested offset, the rest of the buffer
   is untouched, and an undersized buffer is a clean Truncated error. *)
let encode_into_offsets () =
  let rng = Prng.of_int 31 in
  let emitter = Emit.create Fm.Arq.format in
  let buf = Bytes.create 256 in
  for _ = 1 to 50 do
    Bytes.fill buf 0 (Bytes.length buf) '\xAA';
    let value = Gen.generate rng Fm.Arq.format in
    let expected = Codec.encode_exn Fm.Arq.format value in
    let off = Prng.int rng 32 in
    match Emit.encode_into emitter ~off buf value with
    | Error e -> Alcotest.failf "encode_into: %s" (Codec.error_to_string e)
    | Ok n ->
      Alcotest.(check int) "length" (String.length expected) n;
      Alcotest.(check string)
        "bytes at offset" expected
        (Bytes.sub_string buf off n);
      Alcotest.(check char) "byte after message untouched" '\xAA'
        (Bytes.get buf (off + n));
      if off > 0 then
        Alcotest.(check char) "preceding byte untouched" '\xAA'
          (Bytes.get buf (off - 1))
  done;
  let value = Gen.generate rng Fm.Arq.format in
  match Emit.encode_into emitter Bytes.empty value with
  | Error (Codec.Io { error = Netdsl_util.Bitio.Truncated _; _ }) -> ()
  | Error e -> Alcotest.failf "expected Truncated, got %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "encode into empty buffer succeeded"

(* A reused emitter must never leak bytes of a longer previous message
   into a shorter next one. *)
let buffer_reuse () =
  let emitter = Emit.create Fm.Arq.format in
  let big = Value.(record [ ("seq", int 1); ("kind", int 0);
                            ("payload", bytes (String.make 300 '\xFF')) ]) in
  let small = Value.(record [ ("seq", int 2); ("kind", int 0);
                              ("payload", bytes "") ]) in
  List.iter
    (fun v -> check_same_bytes "arq reuse" Fm.Arq.format emitter v)
    [ big; small; big; small ]

(* ------------------------------------------------------------------ *)
(* View-to-wire *)

let decode_view fmt pkt =
  let view = View.create fmt in
  match View.decode view pkt with
  | Ok () -> view
  | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e)

(* Re-emitting a decoded message reproduces it byte for byte. *)
let view_roundtrip_case (name, fmt) =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Prng.of_int 4242 in
      let emitter = Emit.create fmt in
      let view = View.create fmt in
      for _ = 1 to 50 do
        match Codec.encode fmt (sample rng fmt) with
        | Error _ -> ()
        | Ok pkt -> (
          match View.decode view pkt with
          | Error e ->
            Alcotest.failf "%s: decode failed: %s" name (Codec.error_to_string e)
          | Ok () -> (
            match Emit.encode_view emitter view with
            | Ok pkt' ->
              if not (String.equal pkt pkt') then
                Alcotest.failf "%s: view round trip differs\nin:  %s\nout: %s"
                  name (hex pkt) (hex pkt')
            | Error (Codec.Type_mismatch { expected; _ })
              when String.length expected >= 14
                   && String.equal (String.sub expected 0 14) "explicit value" ->
              (* nested structure cannot be sourced from a view, by design *)
              ()
            | Error e ->
              Alcotest.failf "%s: encode_view failed: %s" name
                (Codec.error_to_string e)))
      done)

(* [Value.strip_derived] drops computed / checksum / const entries so the
   mutated value can be re-encoded by the codec as the oracle. *)
let strip_derived = Value.strip_derived

let set_field name v value =
  match value with
  | Value.Record fields ->
    Value.Record
      (List.map (fun (n, old) -> (n, if String.equal n name then v else old)) fields)
  | other -> other

(* encode_view ~set against the reference: decode, strip derived fields,
   substitute, full re-encode. *)
let view_override () =
  let rng = Prng.of_int 99 in
  let emitter = Emit.create Fm.Arq.format in
  for _ = 1 to 100 do
    let pkt = Gen.generate_bytes rng Fm.Arq.format in
    let view = decode_view Fm.Arq.format pkt in
    let seq = Int64.of_int (Prng.int rng 256) in
    let expected =
      Codec.encode_exn Fm.Arq.format
        (set_field "seq" (Value.Int seq)
           (strip_derived Fm.Arq.format (Codec.decode_exn Fm.Arq.format pkt)))
    in
    match Emit.encode_view emitter ~set:[ ("seq", Value.Int seq) ] view with
    | Ok got -> Alcotest.(check string) "override bytes" expected got
    | Error e -> Alcotest.failf "encode_view ~set: %s" (Codec.error_to_string e)
  done

(* ------------------------------------------------------------------ *)
(* In-place patching *)

let get_patcher fmt name =
  match Emit.patcher fmt name with
  | Ok p -> p
  | Error e -> Alcotest.failf "patcher %s: %s" name e

(* The oracle: patched bytes = decode → strip derived → substitute →
   re-encode, and the result must still decode cleanly. *)
let check_patch fmt patcher field pkt v =
  let buf = Bytes.of_string pkt in
  (match Emit.patch patcher buf v with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "patch %s=%Ld: %s" field v (Codec.error_to_string e));
  let got = Bytes.to_string buf in
  let expected =
    Codec.encode_exn fmt
      (set_field field (Value.Int v)
         (strip_derived fmt (Codec.decode_exn fmt pkt)))
  in
  if not (String.equal expected got) then
    Alcotest.failf "patch %s=%Ld differs from re-encode\nwant: %s\ngot:  %s"
      field v (hex expected) (hex got);
  match Codec.decode fmt got with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "patched %s=%Ld does not re-decode: %s" field v
      (Codec.error_to_string e)

let patch_arq () =
  let rng = Prng.of_int 7131 in
  let p_seq = get_patcher Fm.Arq.format "seq" in
  let p_kind = get_patcher Fm.Arq.format "kind" in
  for _ = 1 to 100 do
    let pkt = Gen.generate_bytes rng Fm.Arq.format in
    check_patch Fm.Arq.format p_seq "seq" pkt (Int64.of_int (Prng.int rng 256));
    check_patch Fm.Arq.format p_kind "kind" pkt (Int64.of_int (Prng.int rng 2))
  done;
  (* the ones'-complement corner: patching towards an all-zero message must
     fall back to the canonical 0xffff checksum *)
  let zero =
    Codec.encode_exn Fm.Arq.format
      Value.(record [ ("seq", int 0); ("kind", int 0); ("payload", bytes "") ])
  in
  let one =
    Codec.encode_exn Fm.Arq.format
      Value.(record [ ("seq", int 1); ("kind", int 0); ("payload", bytes "") ])
  in
  check_patch Fm.Arq.format p_seq "seq" zero 0L;
  check_patch Fm.Arq.format p_seq "seq" one 0L;
  check_patch Fm.Arq.format p_seq "seq" zero 1L

let patch_ipv4 () =
  let rng = Prng.of_int 555 in
  let fields =
    [ ("tos", fun rng -> Int64.of_int (Prng.int rng 256));
      ("identification", fun rng -> Int64.of_int (Prng.int rng 0x10000));
      ("ttl", fun rng -> Int64.of_int (1 + Prng.int rng 255));
      ("protocol", fun rng -> Int64.of_int (Prng.int rng 256));
      ("source", fun rng -> Int64.of_int (Prng.int rng 0x40000000)) ]
  in
  let patchers = List.map (fun (n, _) -> (n, get_patcher Fm.Ipv4.format n)) fields in
  for _ = 1 to 60 do
    let pkt = Codec.encode_exn Fm.Ipv4.format (gen_ipv4_value rng) in
    List.iter
      (fun (name, gen) ->
        check_patch Fm.Ipv4.format (List.assoc name patchers) name pkt (gen rng))
      fields
  done

(* Patching inside a window of a larger buffer. *)
let patch_windowed () =
  let rng = Prng.of_int 12 in
  let p_seq = get_patcher Fm.Arq.format "seq" in
  let pkt = Gen.generate_bytes rng Fm.Arq.format in
  let buf = Bytes.of_string ("HDR" ^ pkt ^ "TRAILER") in
  (match Emit.patch p_seq ~off:3 ~len:(String.length pkt) buf 77L with
  | Ok () -> ()
  | Error e -> Alcotest.failf "windowed patch: %s" (Codec.error_to_string e));
  let got = Bytes.sub_string buf 3 (String.length pkt) in
  let expected =
    Codec.encode_exn Fm.Arq.format
      (set_field "seq" (Value.Int 77L)
         (strip_derived Fm.Arq.format (Codec.decode_exn Fm.Arq.format pkt)))
  in
  Alcotest.(check string) "windowed patch bytes" expected got;
  Alcotest.(check string) "prefix intact" "HDR" (Bytes.sub_string buf 0 3);
  Alcotest.(check string) "suffix intact" "TRAILER"
    (Bytes.sub_string buf (3 + String.length pkt) 7)

(* Validation: a patch must reject exactly what the full encoder would. *)
let patch_validation () =
  let p_kind = get_patcher Fm.Arq.format "kind" in
  let pkt = Fm.Arq.to_bytes (Fm.Arq.Data { seq = 1; payload = "x" }) in
  (match Emit.patch p_kind (Bytes.of_string pkt) 7L with
  | Error (Codec.Enum_unknown _) -> ()
  | Error e -> Alcotest.failf "expected Enum_unknown, got %s" (Codec.error_to_string e)
  | Ok () -> Alcotest.fail "out-of-enum kind accepted");
  let p_seq = get_patcher Fm.Arq.format "seq" in
  (match Emit.patch p_seq (Bytes.of_string pkt) 256L with
  | Error (Codec.Value_out_of_range _) -> ()
  | Error e ->
    Alcotest.failf "expected Value_out_of_range, got %s" (Codec.error_to_string e)
  | Ok () -> Alcotest.fail "overwide seq accepted");
  match Emit.patch p_seq (Bytes.of_string "\x00") 1L with
  | Error (Codec.Io { error = Netdsl_util.Bitio.Truncated _; _ }) -> ()
  | Error e -> Alcotest.failf "expected Truncated, got %s" (Codec.error_to_string e)
  | Ok () -> Alcotest.fail "truncated message accepted"

(* Fields that cannot be patched must be rejected at compile time, with a
   reason. *)
let patcher_rejections () =
  let expect_error fmt name =
    match Emit.patcher fmt name with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "patcher %S unexpectedly compiled" name
  in
  expect_error Fm.Arq.format "len" (* computed *);
  expect_error Fm.Arq.format "chk" (* checksum *);
  expect_error Fm.Arq.format "payload" (* not a scalar *);
  expect_error Fm.Arq.format "nope" (* unknown *);
  expect_error Fm.Ipv4.format "flags" (* not byte-aligned *);
  expect_error Fm.Ipv4.format "version" (* constant *);
  expect_error Fm.Tftp.format "opcode" (* variant tag: others derive from it *)

(* RFC 1624 incremental update against full recomputation. *)
let internet_delta_matches () =
  let rng = Prng.of_int 90125 in
  for _ = 1 to 500 do
    let len = 2 * (1 + Prng.int rng 32) in
    let b = Bytes.init len (fun _ -> Char.chr (Prng.int rng 256)) in
    let before = Ck.internet_checksum (Bytes.to_string b) in
    let i = Prng.int rng len in
    let old_byte = Char.code (Bytes.get b i) in
    let new_byte = Prng.int rng 256 in
    Bytes.set b i (Char.chr new_byte);
    let after = Ck.internet_checksum (Bytes.to_string b) in
    let w = if i land 1 = 0 then 8 else 0 in
    let delta =
      Ck.internet_delta ~checksum:before ~removed:(old_byte lsl w)
        ~added:(new_byte lsl w)
    in
    (* modulo the ±0 ambiguity, which full recomputation also canonicalises *)
    let canon c = if c = 0 then 0xFFFF else c in
    if canon delta <> canon after then
      Alcotest.failf "delta %04x <> recomputed %04x (byte %d: %02x -> %02x)"
        delta after i old_byte new_byte
  done

let suite =
  [ ( "emit.equivalence",
      List.map equivalence_case all_formats
      @ List.map mutant_case all_formats
      @ [ Alcotest.test_case "encode_into offsets" `Quick encode_into_offsets;
          Alcotest.test_case "buffer reuse" `Quick buffer_reuse ] );
    ( "emit.view",
      List.map view_roundtrip_case all_formats
      @ [ Alcotest.test_case "override" `Quick view_override ] );
    ( "emit.patch",
      [ Alcotest.test_case "arq fields" `Quick patch_arq;
        Alcotest.test_case "ipv4 fields" `Quick patch_ipv4;
        Alcotest.test_case "windowed" `Quick patch_windowed;
        Alcotest.test_case "validation" `Quick patch_validation;
        Alcotest.test_case "rejections" `Quick patcher_rejections;
        Alcotest.test_case "internet delta" `Quick internet_delta_matches ] ) ]
