open Netdsl_fsm
module M = Machine
module P = Netdsl_proto

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* A small deterministic traffic-light machine used by several tests. *)
let light =
  M.machine ~name:"light"
    ~states:[ "red"; "green"; "yellow" ]
    ~events:[ "go"; "caution"; "stop" ]
    ~initial:"red" ~accepting:[ "red" ]
    ~ignores:
      [
        ("red", "caution"); ("red", "stop");
        ("green", "go"); ("green", "stop");
        ("yellow", "go"); ("yellow", "caution");
      ]
    [
      M.trans ~label:"g" ~src:"red" ~event:"go" ~dst:"green" ();
      M.trans ~label:"c" ~src:"green" ~event:"caution" ~dst:"yellow" ();
      M.trans ~label:"s" ~src:"yellow" ~event:"stop" ~dst:"red" ();
    ]

(* A bounded counter with guards, to exercise registers. *)
let counter max =
  M.machine ~name:"counter"
    ~states:[ "counting"; "full" ]
    ~events:[ "inc"; "reset" ]
    ~registers:[ M.reg "n" ~domain:(max + 1) ]
    ~initial:"counting" ~accepting:[ "counting" ]
    ~ignores:[ ("full", "inc"); ("counting", "reset") ]
    [
      M.trans ~label:"inc" ~src:"counting" ~event:"inc" ~dst:"counting"
        ~guard:(M.Lt (M.Reg "n", M.Int (max - 1)))
        ~actions:[ M.Assign ("n", M.Add (M.Reg "n", M.Int 1)) ]
        ();
      M.trans ~label:"fill" ~src:"counting" ~event:"inc" ~dst:"full"
        ~guard:(M.Eq (M.Reg "n", M.Int (max - 1)))
        ~actions:[ M.Assign ("n", M.Add (M.Reg "n", M.Int 1)) ]
        ();
      M.trans ~label:"reset" ~src:"full" ~event:"reset" ~dst:"counting"
        ~actions:[ M.Assign ("n", M.Int 0) ]
        ();
    ]

(* ------------------------------------------------------------------ *)
(* Machine basics *)

let test_initial_config () =
  let c = M.initial_config (counter 3) in
  check_str "state" "counting" c.M.state;
  check_int "n" 0 (List.assoc "n" c.M.regs)

let test_step_and_guards () =
  let m = counter 2 in
  let c = M.initial_config m in
  (match M.step m c "inc" with
  | [ c1 ] -> (
    check_int "n=1" 1 (List.assoc "n" c1.M.regs);
    match M.step m c1 "inc" with
    | [ c2 ] ->
      check_str "full" "full" c2.M.state;
      check_int "n=2" 2 (List.assoc "n" c2.M.regs)
    | other -> Alcotest.failf "expected one successor, got %d" (List.length other))
  | other -> Alcotest.failf "expected one successor, got %d" (List.length other))

let test_register_wraps () =
  let m =
    M.machine ~name:"wrap" ~states:[ "s" ] ~events:[ "e" ]
      ~registers:[ M.reg "x" ~domain:4 ]
      ~initial:"s"
      [
        M.trans ~label:"t" ~src:"s" ~event:"e" ~dst:"s"
          ~actions:[ M.Assign ("x", M.Add (M.Reg "x", M.Int 3)) ]
          ();
      ]
  in
  let c = M.initial_config m in
  let c1 = List.hd (M.step m c "e") in
  let c2 = List.hd (M.step m c1 "e") in
  check_int "3" 3 (List.assoc "x" c1.M.regs);
  check_int "wraps to 2" 2 (List.assoc "x" c2.M.regs)

let test_eval_expr_and_cond () =
  let env = [ ("a", 5); ("b", 2) ] in
  check_int "arith" 13 (M.eval_expr env (M.Add (M.Reg "a", M.Mul (M.Reg "b", M.Int 4))));
  check_int "mod" 1 (M.eval_expr env (M.Mod (M.Reg "a", M.Reg "b")));
  check_int "mod negative" 1 (M.eval_expr env (M.Mod (M.Sub (M.Int 0, M.Reg "a"), M.Int 2)));
  check_bool "cond" true
    (M.eval_cond env (M.And (M.Lt (M.Reg "b", M.Reg "a"), M.Not (M.Eq (M.Reg "a", M.Int 0)))));
  check_bool "or" true (M.eval_cond env (M.Or (M.False, M.Le (M.Int 2, M.Reg "b"))))

let test_validate_clean () =
  Alcotest.(check (list string))
    "no defects" []
    (List.map (fun d -> d.M.what) (M.validate light))

let test_validate_catches_defects () =
  let bad =
    M.machine ~name:"bad" ~states:[ "a" ] ~events:[ "e" ]
      ~registers:[ M.reg "r" ~init:5 ~domain:3 ]
      ~initial:"nowhere"
      [
        M.trans ~label:"t" ~src:"a" ~event:"missing" ~dst:"ghost"
          ~guard:(M.Eq (M.Reg "unknown", M.Int 0))
          ~actions:[ M.Assign ("also_unknown", M.Int 1) ]
          ();
        M.trans ~label:"t" ~src:"a" ~event:"e" ~dst:"a" ();
      ]
  in
  let defects = M.validate bad in
  check_bool "several defects" true (List.length defects >= 5);
  match M.validate_exn bad with
  | _ -> Alcotest.fail "validate_exn accepted a broken machine"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_explore_counts () =
  let e = Analysis.explore (counter 3) in
  (* counting(n=0..3) reachable as counting(0..2)? counting holds n in
     0..2 before filling; full(3).  Configurations: counting@0,1,2 and
     full@3. *)
  check_int "configs" 4 (List.length e.Analysis.configs);
  check_bool "complete" true e.Analysis.complete

let test_explore_truncation () =
  let m =
    M.machine ~name:"big" ~states:[ "s" ] ~events:[ "e" ]
      ~registers:[ M.reg "x" ~domain:1000 ]
      ~initial:"s"
      [
        M.trans ~label:"t" ~src:"s" ~event:"e" ~dst:"s"
          ~actions:[ M.Assign ("x", M.Add (M.Reg "x", M.Int 1)) ]
          ();
      ]
  in
  let e = Analysis.explore ~max_configs:10 m in
  check_bool "truncated" false e.Analysis.complete;
  check_int "capped" 10 (List.length e.Analysis.configs)

let test_unhandled_pairs () =
  let m =
    M.machine ~name:"gap" ~states:[ "a"; "b" ] ~events:[ "e"; "f" ] ~initial:"a"
      [ M.trans ~label:"t" ~src:"a" ~event:"e" ~dst:"b" () ]
  in
  let pairs = Analysis.unhandled_pairs m in
  check_int "three gaps" 3 (List.length pairs);
  check_bool "a/f missing" true (List.mem ("a", "f") pairs);
  (* Ignores silence them. *)
  let silenced = { m with M.ignores = [ ("a", "f"); ("b", "e"); ("b", "f") ] } in
  Alcotest.(check (list (pair string string))) "silenced" [] (Analysis.unhandled_pairs silenced)

let test_unhandled_configs_guard_gap () =
  (* Transitions exist for the pair but guards leave a hole at n=1. *)
  let m =
    M.machine ~name:"hole" ~states:[ "s" ] ~events:[ "e" ]
      ~registers:[ M.reg "n" ~domain:3 ]
      ~initial:"s"
      [
        M.trans ~label:"zero" ~src:"s" ~event:"e" ~dst:"s"
          ~guard:(M.Eq (M.Reg "n", M.Int 0))
          ~actions:[ M.Assign ("n", M.Int 1) ]
          ();
      ]
  in
  (* From n=0 we reach n=1 where nothing is enabled: a semantic gap that
     syntactic completeness misses. *)
  Alcotest.(check (list (pair string string))) "syntactically complete" []
    (Analysis.unhandled_pairs m);
  let gaps = Analysis.unhandled_configs m in
  check_bool "semantic gap found" true
    (List.exists (fun (c, e) -> String.equal e "e" && List.assoc "n" c.M.regs = 1) gaps)

let test_nondeterminism_detection () =
  let m =
    M.machine ~name:"nd" ~states:[ "s"; "t"; "u" ] ~events:[ "e" ] ~initial:"s"
      [
        M.trans ~label:"one" ~src:"s" ~event:"e" ~dst:"t" ();
        M.trans ~label:"two" ~src:"s" ~event:"e" ~dst:"u" ();
      ]
  in
  match Analysis.nondeterministic_configs m with
  | [ (_, "e", labels) ] ->
    Alcotest.(check (list string)) "labels" [ "one"; "two" ] (List.sort compare labels)
  | other -> Alcotest.failf "expected one conflict, got %d" (List.length other)

let test_guards_make_deterministic () =
  check_int "counter deterministic" 0
    (List.length (Analysis.nondeterministic_configs (counter 3)))

let test_unreachable_and_dead () =
  let m =
    M.machine ~name:"island" ~states:[ "a"; "b"; "island" ] ~events:[ "e" ]
      ~initial:"a"
      [
        M.trans ~label:"ab" ~src:"a" ~event:"e" ~dst:"b" ();
        M.trans ~label:"island_loop" ~src:"island" ~event:"e" ~dst:"island" ();
        M.trans ~label:"never" ~src:"a" ~event:"e" ~dst:"island" ~guard:M.False ();
      ]
  in
  Alcotest.(check (list string)) "unreachable" [ "island" ] (Analysis.unreachable_states m);
  Alcotest.(check (list string))
    "dead" [ "island_loop"; "never" ]
    (List.sort compare (Analysis.dead_transitions m))

let test_stuck_configs () =
  let m =
    M.machine ~name:"jam" ~states:[ "a"; "pit" ] ~events:[ "e" ] ~initial:"a"
      ~accepting:[ "a" ]
      [ M.trans ~label:"fall" ~src:"a" ~event:"e" ~dst:"pit" () ]
  in
  match Analysis.stuck_configs m with
  | [ c ] -> check_str "pit" "pit" c.M.state
  | other -> Alcotest.failf "expected one stuck config, got %d" (List.length other)

let test_analyse_report_clean () =
  let r = Analysis.analyse light in
  check_bool "clean" true (Analysis.is_clean r);
  let rendered = Format.asprintf "%a" Analysis.pp_report r in
  check_bool "mentions clean" true
    (Testutil.contains rendered "clean")

(* ------------------------------------------------------------------ *)
(* ARQ sender (the paper's machine) *)

let test_arq_sender_analysis () =
  let m = P.Arq_fsm.sender ~seq_bits:2 in
  let r = Analysis.analyse m in
  if not (Analysis.is_clean r) then
    Alcotest.failf "ARQ sender not clean:@.%a" Analysis.pp_report r

let test_arq_sender_explored_configs () =
  (* 4 states x 4 sequence values, minus Wait/Timeout/Sent configs that are
     unreachable for some seq?  All are reachable: seq cycles via OK. *)
  let e = Analysis.explore (P.Arq_fsm.sender ~seq_bits:2) in
  check_int "4 states x 4 seqs" 16 (List.length e.Analysis.configs)

let test_arq_state_space_grows_exponentially () =
  let count bits =
    List.length (Analysis.explore (P.Arq_fsm.sender ~seq_bits:bits)).Analysis.configs
  in
  check_int "1 bit" 8 (count 1);
  check_int "3 bits" 32 (count 3);
  check_int "5 bits" 128 (count 5)

(* ------------------------------------------------------------------ *)
(* Composition *)

let test_compose_sync () =
  let sys = P.Arq_fsm.system ~seq_bits:1 in
  let g0 = Compose.initial sys in
  (* "send" is sender-only. *)
  (match Compose.step sys g0 "send" with
  | [ (g1, fired) ] -> (
    check_int "one machine fired" 1 (List.length fired);
    (* "ok" synchronises sender and receiver. *)
    match Compose.step sys g1 "ok" with
    | [ (g2, fired2) ] ->
      check_int "two machines fired" 2 (List.length fired2);
      check_bool "still in sync" true (P.Arq_fsm.in_sync g2)
    | other -> Alcotest.failf "ok: expected 1 successor, got %d" (List.length other))
  | other -> Alcotest.failf "send: expected 1 successor, got %d" (List.length other));
  (* "ok" is blocked when the sender is not waiting. *)
  check_int "ok blocked initially" 0 (List.length (Compose.step sys g0 "ok"))

let test_compose_alphabet () =
  let sys = P.Abp.system in
  let a = Compose.alphabet sys in
  check_bool "has snd0" true (List.mem "snd0" a);
  check_bool "has drop_data" true (List.mem "drop_data" a);
  check_int "participants of snd0" 2 (List.length (Compose.participants sys "snd0"))

let test_compose_rejects_duplicates () =
  match Compose.create ~name:"dup" [ light; light ] with
  | _ -> Alcotest.fail "duplicate machines accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Model checking: the paper's ARQ correctness claims *)

let test_abp_invariant_holds () =
  match Model_check.check_invariant P.Abp.system P.Abp.no_duplicate_delivery with
  | Model_check.Holds -> ()
  | Model_check.Violated (g, trace) ->
    Alcotest.failf "violated at %a after %d steps" Compose.pp_global g
      (List.length trace)
  | Model_check.Unknown -> Alcotest.fail "exploration truncated"

let test_abp_buggy_receiver_caught () =
  match Model_check.check_invariant P.Abp.buggy_system P.Abp.no_duplicate_delivery with
  | Model_check.Violated (_, trace) ->
    check_bool "non-empty counterexample" true (List.length trace > 0);
    (* The counterexample must involve a data retransmission (timeout). *)
    check_bool "involves timeout" true
      (List.exists (fun s -> String.equal s.Model_check.event "timeout") trace)
  | Model_check.Holds -> Alcotest.fail "bug not found"
  | Model_check.Unknown -> Alcotest.fail "exploration truncated"

let test_abp_deadlock_free () =
  match Model_check.check_deadlock_free P.Abp.system with
  | Model_check.Holds -> ()
  | Model_check.Violated (g, _) ->
    Alcotest.failf "deadlock at %a" Compose.pp_global g
  | Model_check.Unknown -> Alcotest.fail "truncated"

let test_abp_eventually_accepting () =
  (* The paper's property 4: every run can still end consistently. *)
  match Model_check.check_eventually_accepting P.Abp.system with
  | Model_check.Holds -> ()
  | Model_check.Violated (g, _) ->
    Alcotest.failf "no way to finish from %a" Compose.pp_global g
  | Model_check.Unknown -> Alcotest.fail "truncated"

let test_abp_delivery_possible () =
  (* Sanity: the system can actually deliver data (the monitor moves). *)
  check_bool "delivery reachable" true
    (Model_check.reachable P.Abp.system (fun g ->
         match List.rev g with
         | mon :: _ -> String.equal mon.M.state "m1"
         | [] -> false))

let test_arq_in_sync_invariant () =
  match
    Model_check.check_invariant (P.Arq_fsm.system ~seq_bits:3) P.Arq_fsm.in_sync
  with
  | Model_check.Holds -> ()
  | Model_check.Violated (g, _) -> Alcotest.failf "out of sync at %a" Compose.pp_global g
  | Model_check.Unknown -> Alcotest.fail "truncated"

let test_model_check_stats_grow () =
  let states bits =
    (Model_check.explore (P.Arq_fsm.system ~seq_bits:bits)).Model_check.num_states
  in
  let s1 = states 1 and s3 = states 3 in
  check_bool "exponential growth" true (s3 >= 4 * s1 - 8)

let test_truncated_is_unknown () =
  match
    Model_check.check_invariant ~max_states:3 (P.Arq_fsm.system ~seq_bits:4)
      (fun _ -> true)
  with
  | Model_check.Unknown -> ()
  | Model_check.Holds -> Alcotest.fail "truncated exploration claimed Holds"
  | Model_check.Violated _ -> Alcotest.fail "true invariant violated"

(* ------------------------------------------------------------------ *)
(* Test generation *)

let test_transition_tests_cover_and_pass () =
  let m = P.Arq_fsm.sender ~seq_bits:1 in
  let tests = Testgen.transition_tests m in
  (* Every syntactic transition is reachable here. *)
  check_int "one test per transition" (List.length m.M.transitions) (List.length tests);
  List.iter
    (fun tc ->
      match Testgen.run_test m tc with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "test %s failed: %s" tc.Testgen.tc_name msg)
    tests

let test_transition_tour_full_coverage () =
  let m = P.Arq_fsm.sender ~seq_bits:2 in
  let tour = Testgen.transition_tour m in
  let covered, total = Testgen.coverage_of_tour m tour in
  check_int "full coverage" total covered;
  check_bool "tour not empty" true (tour <> [] && List.concat tour <> [])

let test_tour_beats_random_walk () =
  let m = P.Arq_fsm.sender ~seq_bits:3 in
  let tour = Testgen.transition_tour m in
  let tour_events = List.length (List.concat tour) in
  let rng = Netdsl_util.Prng.create 2024L in
  match Testgen.random_walk_to_coverage rng m with
  | None -> Alcotest.fail "random walk never covered"
  | Some steps ->
    (* The directed tour is never longer than the random walk needed. *)
    check_bool "tour <= walk" true (tour_events <= steps)

let test_detects_wrong_expectation () =
  let m = light in
  let bogus =
    { Testgen.tc_name = "bogus"; events = [ "go" ]; expected = M.initial_config m }
  in
  match Testgen.run_test m bogus with
  | Ok () -> Alcotest.fail "wrong expectation passed"
  | Error _ -> ()

let test_testgen_rejects_nondeterminism () =
  let nd =
    M.machine ~name:"nd" ~states:[ "s"; "t" ] ~events:[ "e" ] ~initial:"s"
      [
        M.trans ~label:"a" ~src:"s" ~event:"e" ~dst:"t" ();
        M.trans ~label:"b" ~src:"s" ~event:"e" ~dst:"s" ();
      ]
  in
  match Testgen.transition_tour nd with
  | _ -> Alcotest.fail "nondeterministic machine accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let test_interp_fire () =
  let i = Interp.create light in
  check_str "initial" "red" (Interp.state i);
  (match Interp.fire i "go" with
  | Ok t -> check_str "label" "g" t.M.t_label
  | Error e -> Alcotest.failf "fire failed: %a" Interp.pp_error e);
  check_str "now green" "green" (Interp.state i)

let test_interp_unhandled () =
  let i = Interp.create light in
  match Interp.fire i "stop" with
  | Error (Interp.Unhandled { state = "red"; event = "stop" }) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Interp.pp_error e
  | Ok _ -> Alcotest.fail "invalid transition executed"

let test_interp_unknown_event () =
  let i = Interp.create light in
  match Interp.fire i "warp" with
  | Error (Interp.Unknown_event "warp") -> ()
  | _ -> Alcotest.fail "unknown event not rejected"

let test_interp_hooks_and_history () =
  let observed = ref [] in
  let i =
    Interp.create
      ~on_transition:(fun t _ -> observed := t.M.t_label :: !observed)
      light
  in
  (match Interp.fire_all i [ "go"; "caution"; "stop" ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sequence failed: %a" Interp.pp_error e);
  Alcotest.(check (list string)) "hook saw all" [ "g"; "c"; "s" ] (List.rev !observed);
  check_int "history length" 3 (List.length (Interp.history i));
  check_bool "accepting" true (Interp.in_accepting i);
  Interp.reset i;
  check_str "reset" "red" (Interp.state i);
  check_int "history cleared" 0 (List.length (Interp.history i))

let test_interp_registers () =
  let i = Interp.create (counter 2) in
  (match Interp.fire_all i [ "inc"; "inc" ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "failed: %a" Interp.pp_error e);
  check_int "register read" 2 (Interp.register i "n");
  check_str "full" "full" (Interp.state i)

(* ------------------------------------------------------------------ *)
(* DOT export *)

let test_dot_machine () =
  let dot = Dot.of_machine light in
  check_bool "digraph" true (Testutil.contains dot "digraph");
  check_bool "edge" true (Testutil.contains dot "\"red\" -> \"green\"");
  check_bool "accepting doubled" true (Testutil.contains dot "doublecircle")

let test_dot_guard_rendering () =
  let dot = Dot.of_machine (counter 2) in
  check_bool "guard shown" true (Testutil.contains dot "n < 1");
  check_bool "action shown" true (Testutil.contains dot "n := (n + 1)")

let test_dot_system () =
  let dot = Dot.of_system P.Abp.system in
  check_bool "clusters" true (Testutil.contains dot "subgraph cluster_0");
  check_bool "all machines" true (Testutil.contains dot "buggy" = false);
  check_bool "receiver present" true (Testutil.contains dot "receiver")

let suite =
  [
    ( "fsm.machine",
      [
        Alcotest.test_case "initial config" `Quick test_initial_config;
        Alcotest.test_case "step and guards" `Quick test_step_and_guards;
        Alcotest.test_case "register wraps" `Quick test_register_wraps;
        Alcotest.test_case "expr and cond eval" `Quick test_eval_expr_and_cond;
        Alcotest.test_case "validate clean" `Quick test_validate_clean;
        Alcotest.test_case "validate catches defects" `Quick test_validate_catches_defects;
      ] );
    ( "fsm.analysis",
      [
        Alcotest.test_case "explore counts" `Quick test_explore_counts;
        Alcotest.test_case "explore truncation" `Quick test_explore_truncation;
        Alcotest.test_case "unhandled pairs" `Quick test_unhandled_pairs;
        Alcotest.test_case "guard gaps found" `Quick test_unhandled_configs_guard_gap;
        Alcotest.test_case "nondeterminism detection" `Quick test_nondeterminism_detection;
        Alcotest.test_case "guards make deterministic" `Quick test_guards_make_deterministic;
        Alcotest.test_case "unreachable and dead" `Quick test_unreachable_and_dead;
        Alcotest.test_case "stuck configs" `Quick test_stuck_configs;
        Alcotest.test_case "clean report" `Quick test_analyse_report_clean;
        Alcotest.test_case "ARQ sender clean" `Quick test_arq_sender_analysis;
        Alcotest.test_case "ARQ sender config count" `Quick test_arq_sender_explored_configs;
        Alcotest.test_case "state space exponential" `Quick test_arq_state_space_grows_exponentially;
      ] );
    ( "fsm.compose",
      [
        Alcotest.test_case "synchronisation" `Quick test_compose_sync;
        Alcotest.test_case "alphabet and participants" `Quick test_compose_alphabet;
        Alcotest.test_case "rejects duplicates" `Quick test_compose_rejects_duplicates;
      ] );
    ( "fsm.model_check",
      [
        Alcotest.test_case "ABP invariant holds" `Quick test_abp_invariant_holds;
        Alcotest.test_case "buggy receiver caught" `Quick test_abp_buggy_receiver_caught;
        Alcotest.test_case "ABP deadlock free" `Quick test_abp_deadlock_free;
        Alcotest.test_case "ABP eventually accepting" `Quick test_abp_eventually_accepting;
        Alcotest.test_case "delivery reachable" `Quick test_abp_delivery_possible;
        Alcotest.test_case "ARQ in-sync invariant" `Quick test_arq_in_sync_invariant;
        Alcotest.test_case "state count grows" `Quick test_model_check_stats_grow;
        Alcotest.test_case "truncation reports Unknown" `Quick test_truncated_is_unknown;
      ] );
    ( "fsm.testgen",
      [
        Alcotest.test_case "transition tests pass" `Quick test_transition_tests_cover_and_pass;
        Alcotest.test_case "tour covers everything" `Quick test_transition_tour_full_coverage;
        Alcotest.test_case "tour beats random walk" `Quick test_tour_beats_random_walk;
        Alcotest.test_case "wrong expectation detected" `Quick test_detects_wrong_expectation;
        Alcotest.test_case "nondeterminism rejected" `Quick test_testgen_rejects_nondeterminism;
      ] );
    ( "fsm.interp",
      [
        Alcotest.test_case "fire" `Quick test_interp_fire;
        Alcotest.test_case "unhandled refused" `Quick test_interp_unhandled;
        Alcotest.test_case "unknown event" `Quick test_interp_unknown_event;
        Alcotest.test_case "hooks and history" `Quick test_interp_hooks_and_history;
        Alcotest.test_case "registers" `Quick test_interp_registers;
      ] );
    ( "fsm.dot",
      [
        Alcotest.test_case "machine export" `Quick test_dot_machine;
        Alcotest.test_case "guards rendered" `Quick test_dot_guard_rendering;
        Alcotest.test_case "system export" `Quick test_dot_system;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Equivalence checking *)

let test_equiv_reflexive () =
  check_bool "self-equivalent" true (Equiv.equivalent light light);
  check_bool "counter self-equivalent" true (Equiv.equivalent (counter 3) (counter 3))

let test_equiv_detects_receiver_bug () =
  match Equiv.check P.Abp.receiver P.Abp.buggy_receiver with
  | Ok () -> Alcotest.fail "buggy receiver declared equivalent"
  | Error ce ->
    (* The machines diverge after a duplicate arrives: the correct one
       re-acks, the buggy one re-delivers. *)
    check_bool "mentions a distinguishing event" true (List.length ce.Equiv.prefix > 0)

let test_equiv_register_renaming_is_fine () =
  (* Same behaviour, different register names: equivalent. *)
  let variant_of (m : M.t) suffix =
    {
      m with
      M.machine_name = m.M.machine_name ^ suffix;
      registers =
        List.map (fun r -> { r with M.reg_name = r.M.reg_name ^ suffix }) m.M.registers;
      transitions =
        List.map
          (fun (t : M.transition) ->
            let rec rename_e : M.expr -> M.expr = function
              | M.Reg r -> M.Reg (r ^ suffix)
              | M.Int n -> M.Int n
              | M.Add (a, b) -> M.Add (rename_e a, rename_e b)
              | M.Sub (a, b) -> M.Sub (rename_e a, rename_e b)
              | M.Mul (a, b) -> M.Mul (rename_e a, rename_e b)
              | M.Mod (a, b) -> M.Mod (rename_e a, rename_e b)
            in
            let rec rename_c : M.cond -> M.cond = function
              | M.True -> M.True
              | M.False -> M.False
              | M.Eq (a, b) -> M.Eq (rename_e a, rename_e b)
              | M.Ne (a, b) -> M.Ne (rename_e a, rename_e b)
              | M.Lt (a, b) -> M.Lt (rename_e a, rename_e b)
              | M.Le (a, b) -> M.Le (rename_e a, rename_e b)
              | M.Not c -> M.Not (rename_c c)
              | M.And (a, b) -> M.And (rename_c a, rename_c b)
              | M.Or (a, b) -> M.Or (rename_c a, rename_c b)
            in
            {
              t with
              M.guard = rename_c t.M.guard;
              actions =
                List.map (fun (M.Assign (r, e)) -> M.Assign (r ^ suffix, rename_e e)) t.M.actions;
            })
          m.M.transitions;
    }
  in
  let m = P.Arq_fsm.sender ~seq_bits:2 in
  check_bool "renamed registers equivalent" true (Equiv.equivalent m (variant_of m "_x"))

let test_equiv_alphabet_difference () =
  let base =
    M.machine ~name:"base" ~states:[ "s" ] ~events:[ "e" ] ~initial:"s"
      ~accepting:[ "s" ]
      [ M.trans ~label:"t" ~src:"s" ~event:"e" ~dst:"s" () ]
  in
  let extra =
    M.machine ~name:"extra" ~states:[ "s" ] ~events:[ "e"; "f" ] ~initial:"s"
      ~accepting:[ "s" ]
      [
        M.trans ~label:"t" ~src:"s" ~event:"e" ~dst:"s" ();
        M.trans ~label:"u" ~src:"s" ~event:"f" ~dst:"s" ();
      ]
  in
  match Equiv.check base extra with
  | Ok () -> Alcotest.fail "different alphabets declared equivalent"
  | Error ce -> check_bool "names the extra event" true (Testutil.contains ce.Equiv.reason "f")

let test_equiv_acceptance_difference () =
  let a =
    M.machine ~name:"acc" ~states:[ "s" ] ~events:[ "e" ] ~initial:"s" ~accepting:[ "s" ]
      [ M.trans ~label:"t" ~src:"s" ~event:"e" ~dst:"s" () ]
  in
  let b = { a with M.machine_name = "noacc"; accepting = [] } in
  match Equiv.check a b with
  | Ok () -> Alcotest.fail "acceptance difference missed"
  | Error ce -> check_bool "empty prefix (differ at start)" true (ce.Equiv.prefix = [])

let test_equiv_shortest_counterexample () =
  (* Machines that agree for two steps then diverge: the prefix has
     exactly the divergence depth. *)
  let chain name third =
    M.machine ~name ~states:[ "a"; "b"; "c"; "d" ] ~events:[ "e"; "f" ] ~initial:"a"
      ([
         M.trans ~label:"1" ~src:"a" ~event:"e" ~dst:"b" ();
         M.trans ~label:"2" ~src:"b" ~event:"e" ~dst:"c" ();
       ]
      @ if third then [ M.trans ~label:"3" ~src:"c" ~event:"f" ~dst:"d" () ] else [])
  in
  match Equiv.check (chain "with3" true) (chain "without3" false) with
  | Ok () -> Alcotest.fail "divergence missed"
  | Error ce -> Alcotest.(check (list string)) "prefix" [ "e"; "e"; "f" ] ce.Equiv.prefix

let equiv_suite =
  ( "fsm.equiv",
    [
      Alcotest.test_case "reflexive" `Quick test_equiv_reflexive;
      Alcotest.test_case "detects receiver bug" `Quick test_equiv_detects_receiver_bug;
      Alcotest.test_case "register renaming ok" `Quick test_equiv_register_renaming_is_fine;
      Alcotest.test_case "alphabet difference" `Quick test_equiv_alphabet_difference;
      Alcotest.test_case "acceptance difference" `Quick test_equiv_acceptance_difference;
      Alcotest.test_case "shortest counterexample" `Quick test_equiv_shortest_counterexample;
    ] )

let suite = suite @ [ equiv_suite ]

(* ------------------------------------------------------------------ *)
(* Properties over randomly generated machines: the analyses agree with
   each other on arbitrary inputs, not just the hand-built fixtures. *)

let random_machine rng =
  let n_states = 2 + Netdsl_util.Prng.int rng 4 in
  let n_events = 1 + Netdsl_util.Prng.int rng 3 in
  let states = List.init n_states (fun i -> Printf.sprintf "q%d" i) in
  let events = List.init n_events (fun i -> Printf.sprintf "ev%d" i) in
  let n_trans = 1 + Netdsl_util.Prng.int rng (2 * n_states) in
  let transitions =
    List.init n_trans (fun i ->
        M.trans
          ~label:(Printf.sprintf "t%d" i)
          ~src:(Netdsl_util.Prng.pick_list rng states)
          ~event:(Netdsl_util.Prng.pick_list rng events)
          ~dst:(Netdsl_util.Prng.pick_list rng states)
          ())
  in
  M.machine ~name:"random" ~states ~events ~initial:(List.hd states)
    ~accepting:(List.filter (fun _ -> Netdsl_util.Prng.bool rng) states)
    transitions

let prop_analysis_consistency =
  QCheck.Test.make ~name:"fsm: analyses are mutually consistent on random machines"
    ~count:200 QCheck.int64 (fun seed ->
      let rng = Netdsl_util.Prng.create seed in
      let m = random_machine rng in
      let explored = Analysis.explore m in
      let reachable = Analysis.reachable_states m in
      let unreachable = Analysis.unreachable_states m in
      let dead = Analysis.dead_transitions m in
      (* 1. reachable and unreachable partition the declared states. *)
      List.length reachable + List.length unreachable = List.length m.M.states
      (* 2. the initial state is reachable. *)
      && List.mem m.M.initial reachable
      (* 3. every edge's endpoints are reachable states. *)
      && List.for_all
           (fun (c, _, c') ->
             List.mem c.M.state reachable && List.mem c'.M.state reachable)
           explored.Analysis.edges
      (* 4. a dead transition never appears among the explored edges. *)
      && List.for_all
           (fun l ->
             not
               (List.exists
                  (fun (_, (t : M.transition), _) -> String.equal t.t_label l)
                  explored.Analysis.edges))
           dead
      (* 5. a transition out of an unreachable source is dead. *)
      && List.for_all
           (fun (t : M.transition) ->
             (not (List.mem t.src unreachable)) || List.mem t.t_label dead)
           m.M.transitions)

let prop_equiv_reflexive_random =
  QCheck.Test.make ~name:"fsm: every deterministic random machine equals itself"
    ~count:200 QCheck.int64 (fun seed ->
      let rng = Netdsl_util.Prng.create seed in
      let m = random_machine rng in
      (* Only meaningful for deterministic machines. *)
      if Analysis.nondeterministic_configs m <> [] then QCheck.assume_fail ()
      else Equiv.equivalent m m)

let prop_tour_matches_tests =
  QCheck.Test.make
    ~name:"fsm: tour coverage equals the number of derived tests" ~count:150
    QCheck.int64 (fun seed ->
      let rng = Netdsl_util.Prng.create seed in
      let m = random_machine rng in
      if Analysis.nondeterministic_configs m <> [] then QCheck.assume_fail ()
      else begin
        let tests = Testgen.transition_tests m in
        let tour = Testgen.transition_tour m in
        let covered, total = Testgen.coverage_of_tour m tour in
        covered = total
        && total = List.length tests
        && List.for_all (fun tc -> Testgen.run_test m tc = Ok ()) tests
      end)

let random_suite =
  ( "fsm.random",
    [
      QCheck_alcotest.to_alcotest prop_analysis_consistency;
      QCheck_alcotest.to_alcotest prop_equiv_reflexive_random;
      QCheck_alcotest.to_alcotest prop_tour_matches_tests;
    ] )

let suite = suite @ [ random_suite ]

(* ------------------------------------------------------------------ *)
(* Step ≡ Interp: the compiled plan must agree with the interpreter on
   every shipped machine, over mined and PRNG traces, on accepts and on
   every refusal — same verdicts, same labels, same configurations. *)

let sorted_regs (c : M.config) = List.sort compare c.M.regs

let configs_agree inst interp =
  let sc = Step.config inst and ic = Interp.config interp in
  String.equal sc.M.state ic.M.state && sorted_regs sc = sorted_regs ic

(* One lock-step event; [Error msg] pinpoints the first disagreement. *)
let lockstep_event inst interp name =
  let expected_labels = Step.enabled_labels inst name in
  let sv = Step.fire inst name in
  let iv = Interp.fire interp name in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let verdicts_agree =
    match (sv, iv) with
    | Step.Fired, Ok tr ->
      let taken = Step.transition (Step.plan_of inst) (Step.last_transition inst) in
      if String.equal tr.M.t_label taken.M.t_label then Ok ()
      else
        fail "labels differ on %S: interp %s, step %s" name tr.M.t_label
          taken.M.t_label
    | Step.Unknown_event, Error (Interp.Unknown_event e) when String.equal e name ->
      Ok ()
    | Step.Unhandled, Error (Interp.Unhandled { state; event })
      when String.equal event name && String.equal state (Step.state_name_of inst)
      ->
      Ok ()
    | Step.Nondeterministic, Error (Interp.Nondeterministic { event; labels })
      when String.equal event name ->
      if labels = expected_labels then Ok ()
      else
        fail "nondet labels differ on %S: interp [%s], step [%s]" name
          (String.concat "," labels)
          (String.concat "," expected_labels)
    | _ ->
      fail "verdicts differ on %S: step says %S, interp says %s" name
        (Step.describe inst name sv)
        (match iv with
        | Ok tr -> Printf.sprintf "fired %s" tr.M.t_label
        | Error e -> Format.asprintf "%a" Interp.pp_error e)
  in
  match verdicts_agree with
  | Error _ as e -> e
  | Ok () ->
    if configs_agree inst interp then Ok ()
    else fail "configurations differ after %S" name

let run_lockstep (m : M.t) trace =
  let inst = Step.instance (Step.compile m) in
  let interp = Interp.create m in
  List.iter
    (fun ev ->
      match lockstep_event inst interp ev with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" m.M.machine_name msg)
    trace

let step_matches_interp_on_mined_tours () =
  (* Testgen-mined traces: every transition of every (deterministic)
     shipped machine is exercised at least once. *)
  List.iter
    (fun (_, m) ->
      match Testgen.transition_tour m with
      | tour -> List.iter (run_lockstep m) tour
      | exception Invalid_argument _ -> () (* nondeterministic: PRNG path *))
    P.Machines.all

let step_refusal_verdicts () =
  (* A machine with real nondeterminism and a real gap: both refusals must
     match the interpreter exactly, leave the configuration in place, and
     [describe] must render the interpreter's wording. *)
  let nd =
    M.machine ~name:"nd" ~states:[ "s"; "t" ] ~events:[ "e"; "f" ] ~initial:"s"
      [
        M.trans ~label:"one" ~src:"s" ~event:"e" ~dst:"t" ();
        M.trans ~label:"two" ~src:"s" ~event:"e" ~dst:"s" ();
      ]
  in
  let inst = Step.instance (Step.compile nd) in
  let interp = Interp.create nd in
  List.iter
    (fun ev ->
      (match lockstep_event inst interp ev with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "nd: %s" msg);
      check_str "state untouched" "s" (Step.state_name_of inst))
    [ "e" (* nondeterministic *); "f" (* unhandled *); "warp" (* unknown *) ];
  (* describe matches pp_error word for word *)
  check_str "nondet wording"
    (Format.asprintf "%a" Interp.pp_error
       (Interp.Nondeterministic { event = "e"; labels = [ "one"; "two" ] }))
    (Step.describe inst "e" Step.Nondeterministic);
  check_str "unhandled wording"
    (Format.asprintf "%a" Interp.pp_error
       (Interp.Unhandled { state = "s"; event = "f" }))
    (Step.describe inst "f" Step.Unhandled);
  check_str "unknown wording"
    (Format.asprintf "%a" Interp.pp_error (Interp.Unknown_event "warp"))
    (Step.describe inst "warp" Step.Unknown_event)

let step_register_wraparound () =
  (* Assignments that go negative and overflow must wrap exactly like
     [Machine.apply]: ((v mod d) + d) mod d. *)
  let m =
    M.machine ~name:"wrap" ~states:[ "s" ] ~events:[ "dec"; "inc" ]
      ~registers:[ M.reg "x" ~domain:5 ]
      ~initial:"s"
      [
        M.trans ~label:"dec" ~src:"s" ~event:"dec" ~dst:"s"
          ~actions:[ M.Assign ("x", M.Sub (M.Reg "x", M.Int 3)) ]
          ();
        M.trans ~label:"inc" ~src:"s" ~event:"inc" ~dst:"s"
          ~actions:[ M.Assign ("x", M.Add (M.Reg "x", M.Int 4)) ]
          ();
      ]
  in
  let inst = Step.instance (Step.compile m) in
  let interp = Interp.create m in
  List.iter
    (fun ev ->
      match lockstep_event inst interp ev with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "wrap: %s" msg)
    [ "dec"; "dec"; "inc"; "inc"; "dec"; "inc"; "dec"; "dec" ];
  (* spot-check the first wrap: 0 - 3 wraps to 2 in domain 5 *)
  let i2 = Step.instance (Step.plan_of inst) in
  check_bool "fresh dec fires" true (Step.fire i2 "dec" = Step.Fired);
  check_int "0 - 3 wraps to 2" 2 (Step.register_by_name i2 "x")

let step_instance_independence () =
  (* Instances of one plan are independent; reset restores the initial
     configuration and clears last_transition. *)
  let plan = Step.compile (counter 3) in
  let a = Step.instance plan and b = Step.instance plan in
  check_bool "a inc" true (Step.fire a "inc" = Step.Fired);
  check_bool "a inc" true (Step.fire a "inc" = Step.Fired);
  check_int "a advanced" 2 (Step.register_by_name a "n");
  check_int "b untouched" 0 (Step.register_by_name b "n");
  check_bool "ids roundtrip" true
    (Step.event_name plan (Step.event_id plan "inc") = "inc");
  check_int "unknown name is -1" (-1) (Step.event_id plan "nope");
  Step.reset a;
  check_int "reset regs" 0 (Step.register_by_name a "n");
  check_int "reset last" (-1) (Step.last_transition a);
  check_str "reset state" "counting" (Step.state_name_of a)

let prng_trace_agrees rng (m : M.t) =
  let events = Array.of_list ("__not_an_event__" :: m.M.events) in
  let inst = Step.instance (Step.compile m) in
  let interp = Interp.create m in
  let steps = 1 + Netdsl_util.Prng.int rng 120 in
  let rec go k =
    if k = 0 then true
    else
      let ev = events.(Netdsl_util.Prng.int rng (Array.length events)) in
      match lockstep_event inst interp ev with
      | Ok () -> go (k - 1)
      | Error msg -> QCheck.Test.fail_report (m.M.machine_name ^ ": " ^ msg)
  in
  go steps

let prop_step_equiv_interp_shipped =
  QCheck.Test.make
    ~name:"fsm: Step ≡ Interp on every shipped machine (PRNG traces)"
    ~count:400 QCheck.int64 (fun seed ->
      let rng = Netdsl_util.Prng.create seed in
      let _, m = Netdsl_util.Prng.pick_list rng P.Machines.all in
      prng_trace_agrees rng m)

let prop_step_equiv_interp_random =
  (* Random machines are frequently nondeterministic and full of gaps, so
     this hammers the refusal paths far harder than the shipped set. *)
  QCheck.Test.make ~name:"fsm: Step ≡ Interp on random machines" ~count:300
    QCheck.int64 (fun seed ->
      let rng = Netdsl_util.Prng.create seed in
      prng_trace_agrees rng (random_machine rng))

let step_suite =
  ( "fsm.step",
    [
      Alcotest.test_case "mined tours agree" `Quick step_matches_interp_on_mined_tours;
      Alcotest.test_case "refusal verdicts agree" `Quick step_refusal_verdicts;
      Alcotest.test_case "register wraparound" `Quick step_register_wraparound;
      Alcotest.test_case "instances independent" `Quick step_instance_independence;
      QCheck_alcotest.to_alcotest prop_step_equiv_interp_shipped;
      QCheck_alcotest.to_alcotest prop_step_equiv_interp_random;
    ] )

let suite = suite @ [ step_suite ]
