(* Parse-graph correctness: the fused chained decoder must agree with the
   sequential per-layer reference on verdict, layer windows and register
   values for every input — golden chains, hostile mutants, cross-layer
   lies — and the fused encoder's back-patched bytes must be identical to
   the naive innermost-first re-encode.  The heavier structure-aware
   oracle leg lives in [Netdsl_check]; these are the direct properties. *)

open Netdsl_format
module Fm = Netdsl_formats
module Stacks = Netdsl_formats.Stacks
module Tftp = Netdsl_formats.Tftp
module Prng = Netdsl_util.Prng

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let demand_inet =
  [ "tftp.opcode"; "udp.src_port"; "udp.dst_port"; "ipv4.source"; "ipv4.destination" ]

let compile_inet () =
  ok_exn "compile inet_tftp" (Stack.compile ~demand:demand_inet Stacks.inet_tftp)

let tftp_samples =
  [
    Tftp.Rrq { filename = "hosts"; mode = "octet" };
    Tftp.Wrq { filename = "x"; mode = "netascii" };
    Tftp.Data { block = 7; data = String.make 32 'Q' };
    Tftp.Data { block = 65535; data = "" };
    Tftp.Ack { block = 1 };
    Tftp.Error { code = 2; message = "denied" };
  ]

let chain_bytes plan pkt =
  ok_exn "encode chain" (Stack.encode plan (Stacks.inet_tftp_values pkt))

(* Fused and sequential must agree on the verdict (and, on accept, on
   every layer window) for arbitrary bytes. *)
let agree plan seq ~what data =
  let fused = Stack.run plan data in
  let refd = Stack.Seq.decode seq data in
  (match (fused, refd) with
  | true, Ok () -> ()
  | false, Error _ -> ()
  | true, Error e -> Alcotest.failf "%s: fused accepts, reference rejects (%s)" what e
  | false, Ok () -> Alcotest.failf "%s: fused rejects, reference accepts" what);
  if fused then
    for i = 0 to Stack.layer_count plan - 1 do
      Alcotest.(check (pair int int))
        (Printf.sprintf "%s: layer %d window" what i)
        (Stack.Seq.layer_off seq i, Stack.Seq.layer_len seq i)
        (Stack.layer_off plan i, Stack.layer_len plan i)
    done;
  fused

let test_golden_roundtrip () =
  let plan = compile_inet () in
  let seq = Stack.Seq.create plan in
  let opcode = ok_exn "reg" (Stack.reg plan "tftp.opcode") in
  let dst_port = ok_exn "reg" (Stack.reg plan "udp.dst_port") in
  List.iter
    (fun pkt ->
      let data = chain_bytes plan pkt in
      if not (agree plan seq ~what:"golden chain" data) then
        Alcotest.fail "golden chain rejected";
      Alcotest.(check int) "udp.dst_port register" 69 (Stack.reg_get plan dst_port);
      let expect_op =
        match pkt with
        | Tftp.Rrq _ -> 1 | Tftp.Wrq _ -> 2 | Tftp.Data _ -> 3
        | Tftp.Ack _ -> 4 | Tftp.Error _ -> 5
      in
      Alcotest.(check int) "tftp.opcode register" expect_op
        (Stack.reg_get plan opcode))
    tftp_samples

let test_fused_encode_equals_seq () =
  let plan = compile_inet () in
  List.iter
    (fun pkt ->
      let values = Stacks.inet_tftp_values pkt in
      let fused = ok_exn "fused encode" (Stack.encode plan values) in
      let naive = ok_exn "seq encode" (Stack.encode_seq plan values) in
      Alcotest.(check string) "fused == naive bytes" naive fused)
    tftp_samples;
  let arp = ok_exn "compile eth_arp" (Stack.compile Stacks.eth_arp) in
  let av = Stacks.eth_arp_values () in
  Alcotest.(check string)
    "eth_arp fused == naive"
    (ok_exn "seq" (Stack.encode_seq arp av))
    (ok_exn "fused" (Stack.encode arp av));
  let icmp = ok_exn "compile ipv4_icmp" (Stack.compile Stacks.ipv4_icmp) in
  let iv = Stacks.ipv4_icmp_values () in
  Alcotest.(check string)
    "ipv4_icmp fused == naive"
    (ok_exn "seq" (Stack.encode_seq icmp iv))
    (ok_exn "fused" (Stack.encode icmp iv))

(* The two-layer and default-arm chains decode through their own engine
   shapes (fully linear terminal; variant-with-default terminal). *)
let test_other_chains () =
  let arp = ok_exn "compile eth_arp" (Stack.compile Stacks.eth_arp) in
  let arp_seq = Stack.Seq.create arp in
  let data = ok_exn "arp encode" (Stack.encode arp (Stacks.eth_arp_values ())) in
  if not (agree arp arp_seq ~what:"eth_arp" data) then
    Alcotest.fail "eth_arp golden rejected";
  let icmp = ok_exn "compile ipv4_icmp" (Stack.compile Stacks.ipv4_icmp) in
  let icmp_seq = Stack.Seq.create icmp in
  let data = ok_exn "icmp encode" (Stack.encode icmp (Stacks.ipv4_icmp_values ())) in
  if not (agree icmp icmp_seq ~what:"ipv4_icmp" data) then
    Alcotest.fail "ipv4_icmp golden rejected"

(* Red paths: a demux lie, a truncated inner header and an outer length
   lie must all be rejected by both decoders, and the reference must name
   the failing layer. *)
let set_byte s i v =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr v);
  Bytes.to_string b

let expect_reject plan seq ~what ~layer data =
  if Stack.run plan data then Alcotest.failf "%s: fused accepted" what;
  match Stack.Seq.decode seq data with
  | Ok () -> Alcotest.failf "%s: reference accepted" what
  | Error e ->
    if not (String.length e >= String.length layer
            && String.sub e 0 (String.length layer) = layer)
    then Alcotest.failf "%s: error %S does not name %S" what e layer

let test_red_paths () =
  let plan = compile_inet () in
  let seq = Stack.Seq.create plan in
  let data = chain_bytes plan (Tftp.Data { block = 3; data = "payload!" }) in
  if not (Stack.run plan data) then Alcotest.fail "golden rejected";
  (* layer windows recorded by the accepting run, used for the lie below *)
  let ip_fmt = Stack.layer_fmt plan 1 in
  let ip_off = Stack.layer_off plan 1 and ip_len = Stack.layer_len plan 1 in
  (* ethertype 0x0800 -> 0x0806: valid enum value, wrong edge *)
  let demux_lie = set_byte (set_byte data 12 0x08) 13 0x06 in
  expect_reject plan seq ~what:"demux lie" ~layer:"layer ethernet" demux_lie;
  (* chop into the inner tftp header *)
  let truncated = String.sub data 0 (String.length data - 9) in
  expect_reject plan seq ~what:"truncated inner" ~layer:"layer ipv4" truncated;
  (* shrink ipv4.total_length below the udp header it must cover; repair
     the header checksum so only the cross-layer inconsistency remains *)
  let tl = ok_exn "patcher" (Emit.patcher ~computed:true ip_fmt "total_length") in
  let lying = Bytes.of_string data in
  (match Emit.patch_window tl ~off:ip_off ~len:ip_len lying 24L with
  | Ok () -> ()
  | Error e -> Alcotest.failf "length-lie patch: %s" (Codec.error_to_string e));
  expect_reject plan seq ~what:"outer length lie" ~layer:"layer ipv4"
    (Bytes.to_string lying)

(* Satellite: Emit back-patch ordering on nested derived fields.  Growing
   or rewriting the inner UDP payload and re-emitting through the fused
   encoder must equal the naive decode→mutate→re-encode route, byte for
   byte — outer total_length and header_checksum included. *)
let test_backpatch_ordering () =
  let plan = compile_inet () in
  let rng = Prng.of_int 20260808 in
  for _ = 1 to 100 do
    let n = Prng.int rng 64 in
    let data = String.init n (fun _ -> Char.chr (Prng.int rng 256)) in
    let pkt = Tftp.Data { block = 1 + Prng.int rng 1000; data } in
    let values = Stacks.inet_tftp_values pkt in
    let fused = ok_exn "fused" (Stack.encode plan values) in
    let naive = ok_exn "naive" (Stack.encode_seq plan values) in
    Alcotest.(check string) "grown inner payload" naive fused
  done;
  (* In-place patch route: rewrite udp.src_port and swap the ipv4
     addresses on the wire with Emit.patcher against the recorded layer
     windows (the address patches exercise the RFC 1624 header-checksum
     repair), then compare against a full re-encode with the same
     changes.  dst_port stays 69 so the chain still matches its demux
     edge. *)
  let pkt = Tftp.Ack { block = 9 } in
  let data = chain_bytes plan pkt in
  if not (Stack.run plan data) then Alcotest.fail "golden rejected";
  let udp_fmt = Stack.layer_fmt plan 2 in
  let u_off = Stack.layer_off plan 2 and u_len = Stack.layer_len plan 2 in
  let ip_fmt = Stack.layer_fmt plan 1 in
  let i_off = Stack.layer_off plan 1 and i_len = Stack.layer_len plan 1 in
  let apply what p off len buf v =
    match Emit.patch_window p ~off ~len buf v with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %s" what (Codec.error_to_string e)
  in
  let src = ok_exn "patcher src" (Emit.patcher udp_fmt "src_port") in
  let ip_src = ok_exn "patcher ip src" (Emit.patcher ip_fmt "source") in
  let ip_dst = ok_exn "patcher ip dst" (Emit.patcher ip_fmt "destination") in
  let a = Fm.Ipv4.addr_of_string "192.0.2.1"
  and b = Fm.Ipv4.addr_of_string "192.0.2.2" in
  let patched = Bytes.of_string data in
  apply "patch src_port" src u_off u_len patched 4242L;
  apply "patch ip source" ip_src i_off i_len patched b;
  apply "patch ip destination" ip_dst i_off i_len patched a;
  let patched = Bytes.to_string patched in
  if not (Stack.run plan patched) then Alcotest.fail "patched chain rejected";
  let values = Stacks.inet_tftp_values pkt in
  let swapped =
    Array.mapi
      (fun i v ->
        if i = 2 then Fm.Udp.make ~src_port:4242 ~dst_port:69 ~payload:"" ()
        else if i = 1 then
          Fm.Ipv4.make ~protocol:Fm.Ipv4.protocol_udp ~source:b ~destination:a
            ~payload:"" ()
        else v)
      values
  in
  Alcotest.(check string)
    "patch ≡ decode→mutate→re-encode"
    (ok_exn "re-encode" (Stack.encode_seq plan swapped))
    patched

(* Verdict lock-step under unstructured hostility: random byte flips and
   truncations of golden chains.  (Structure-aware cross-layer mutants go
   through the lib/check chain oracle.) *)
let test_mutant_agreement () =
  let rng = Prng.of_int 20260808 in
  List.iter
    (fun (stack, golden) ->
      let plan = ok_exn "compile" (Stack.compile stack) in
      let seq = Stack.Seq.create plan in
      for _ = 1 to 400 do
        let b = Bytes.of_string golden in
        for _ = 0 to Prng.int rng 3 do
          let i = Prng.int rng (Bytes.length b) in
          Bytes.set b i (Char.chr (Prng.int rng 256))
        done;
        let s = Bytes.to_string b in
        let s =
          if Prng.int rng 4 = 0 then String.sub s 0 (Prng.int rng (String.length s))
          else s
        in
        ignore (agree plan seq ~what:"mutant" s)
      done)
    [
      ( Stacks.inet_tftp,
        chain_bytes (compile_inet ()) (Tftp.Data { block = 2; data = "0123456789" }) );
      ( Stacks.eth_arp,
        ok_exn "arp"
          (Stack.encode
             (ok_exn "compile" (Stack.compile Stacks.eth_arp))
             (Stacks.eth_arp_values ())) );
      ( Stacks.ipv4_icmp,
        ok_exn "icmp"
          (Stack.encode
             (ok_exn "compile" (Stack.compile Stacks.ipv4_icmp))
             (Stacks.ipv4_icmp_values ())) );
    ]

(* Unknown TFTP opcode: the flattened-case dispatcher must reject (no
   default arm) exactly as the exhaustive enum check does. *)
let test_unknown_tag () =
  let plan = compile_inet () in
  let seq = Stack.Seq.create plan in
  let data = chain_bytes plan (Tftp.Ack { block = 1 }) in
  if not (Stack.run plan data) then Alcotest.fail "golden rejected";
  let t_off = Stack.layer_off plan 3 in
  let bad = set_byte data (t_off + 1) 9 in
  ignore (agree plan seq ~what:"unknown opcode" bad);
  if Stack.run plan bad then Alcotest.fail "unknown opcode accepted"

let test_compile_rejects () =
  (* Demanding a field of an unknown layer, an unextractable field, and a
     stack whose carrier is not linear must all fail with a reason. *)
  (match Stack.compile ~demand:[ "nosuch.field" ] Stacks.inet_tftp with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown layer accepted");
  (match Stack.compile ~demand:[ "tftp" ] Stacks.inet_tftp with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unqualified demand accepted");
  (match
     Stack.v ~name:"bad"
       [ Stack.layer Fm.Ethernet.format; Stack.layer Fm.Arp.format ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "carrier without select accepted");
  match
    Stack.v ~name:"bad2"
      [
        Stack.layer ~select:("opcode", [ 1L ]) ~via:"body" Fm.Tftp.format;
        Stack.layer Fm.Arp.format;
      ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "variant via-field accepted"

let suite =
  [
    ( "stack",
      [
        Alcotest.test_case "golden chains round-trip, registers read" `Quick
          test_golden_roundtrip;
        Alcotest.test_case "fused encode == sequential encode" `Quick
          test_fused_encode_equals_seq;
        Alcotest.test_case "2-layer and default-arm chains" `Quick test_other_chains;
        Alcotest.test_case "red paths: demux lie, truncation, length lie" `Quick
          test_red_paths;
        Alcotest.test_case "back-patch ordering == decode-mutate-re-encode" `Quick
          test_backpatch_ordering;
        Alcotest.test_case "fused/sequential verdict lock-step on mutants" `Quick
          test_mutant_agreement;
        Alcotest.test_case "unknown variant tag rejected in lock-step" `Quick
          test_unknown_tag;
        Alcotest.test_case "compile/validation red paths" `Quick test_compile_rejects;
      ] );
  ]
