let () =
  Alcotest.run "netdsl"
    (List.concat
       [
         Test_util.suite;
         Test_format.suite;
         Test_formats.suite;
         Test_fsm.suite;
         Test_sim.suite;
         Test_proto.suite;
         Test_typed.suite;
         Test_adapt.suite;
         Test_lang.suite;
         Test_view.suite;
         Test_emit.suite;
         Test_stack.suite;
         Test_engine.suite;
         Test_check.suite;
         Test_net.suite;
         Test_timers.suite;
       ])
