(* The packet-processing engine: ring hand-off, per-stage stats, the
   batched pipeline over pooled views, and multicore flow sharding. *)

open Netdsl_engine
module Fm = Netdsl_formats
module Prng = Netdsl_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Ring *)

let ring_fifo () =
  let r = Ring.create ~capacity:4 in
  List.iter (fun i -> ignore (Ring.push r i)) [ 1; 2; 3 ];
  check_int "length" 3 (Ring.length r);
  check_bool "pop 1" true (Ring.pop r = Some 1);
  check_bool "pop 2" true (Ring.pop r = Some 2);
  check_bool "pop 3" true (Ring.pop r = Some 3)

let ring_close_drains () =
  let r = Ring.create ~capacity:4 in
  ignore (Ring.push r "a");
  Ring.close r;
  check_bool "push after close" false (Ring.push r "b");
  check_bool "drain" true (Ring.pop r = Some "a");
  check_bool "closed empty" true (Ring.pop r = None)

let ring_blocking_producer () =
  (* A full ring must block the producer until the consumer pops — run the
     producer on a second domain and check it only completes after pops. *)
  let r = Ring.create ~capacity:2 in
  ignore (Ring.push r 0);
  ignore (Ring.push r 1);
  let pushed = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore (Ring.push r 2);
        Atomic.set pushed true)
  in
  Domain.cpu_relax ();
  (* Cannot assert "still blocked" without a race; assert the data is
     complete and ordered instead. *)
  check_bool "pop 0" true (Ring.pop r = Some 0);
  check_bool "pop 1" true (Ring.pop r = Some 1);
  check_bool "pop 2" true (Ring.pop r = Some 2);
  Domain.join d;
  check_bool "producer finished" true (Atomic.get pushed)

let ring_pop_into () =
  let r = Ring.create ~capacity:8 in
  for i = 1 to 5 do
    ignore (Ring.push r i)
  done;
  let out = Array.make 3 0 in
  let n = Ring.pop_into r out in
  check_int "batch of 3" 3 n;
  check_bool "batch contents" true (Array.to_list out = [ 1; 2; 3 ]);
  let n = Ring.pop_into r out in
  check_int "batch of 2" 2 n;
  Ring.close r;
  check_int "after close+drain" 0 (Ring.pop_into r out)

(* ------------------------------------------------------------------ *)
(* Slab *)

let slab_contents s n = List.init n (fun i -> Bytes.sub_string (Slab.buf s i) 0 (Slab.len s i))

let slab_fifo_wraparound () =
  (* PRNG-driven push/pop against a queue model, forcing the ring to wrap
     many times over a small capacity. *)
  let s = Slab.create ~slot_bytes:32 ~capacity:4 () in
  let rng = Prng.of_int 42 in
  let model = Queue.create () in
  let fed = ref 0 in
  for _ = 1 to 300 do
    let free = Slab.capacity s - Slab.length s in
    let pushes = Prng.int rng (free + 1) in
    for _ = 1 to pushes do
      incr fed;
      let pkt = Printf.sprintf "pkt-%d-%s" !fed (String.make (Prng.int rng 16) 'x') in
      Queue.push pkt model;
      check_bool "pushed" true (Slab.push s pkt)
    done;
    if Slab.length s > 0 then begin
      let n = Slab.pop_batch s ~max:(1 + Prng.int rng 4) in
      List.iter
        (fun got ->
          let want = Queue.pop model in
          Alcotest.(check string) "fifo across wrap" want got)
        (slab_contents s n);
      Slab.release s
    end
  done

let slab_batch_across_seam () =
  (* A batch enqueue whose index run crosses the wrap seam must come out
     whole and ordered. *)
  let s = Slab.create ~slot_bytes:8 ~capacity:4 () in
  ignore (Slab.push s "a");
  ignore (Slab.push s "b");
  let n = Slab.pop_batch s ~max:4 in
  check_int "warmup drained" 2 n;
  Slab.release s;
  (* tail is now at slot 2: a 4-packet batch occupies slots 2,3,0,1 *)
  let pkts = [| "c"; "d"; "e"; "f" |] in
  check_bool "batch pushed" true (Slab.push_batch s pkts 4);
  check_int "full" 4 (Slab.length s);
  let n = Slab.pop_batch s ~max:8 in
  check_int "whole run" 4 n;
  check_bool "ordered across seam" true
    (slab_contents s n = [ "c"; "d"; "e"; "f" ]);
  Slab.release s

let slab_backpressure () =
  (* A full slab must block the producer until the consumer releases — run
     the producer on a second domain, same shape as the Ring test. *)
  let s = Slab.create ~capacity:2 () in
  ignore (Slab.push s "0");
  ignore (Slab.push s "1");
  let pushed = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore (Slab.push_batch s [| "2"; "3" |] 2);
        Atomic.set pushed true)
  in
  Domain.cpu_relax ();
  let n = Slab.pop_batch s ~max:2 in
  check_bool "first run" true (slab_contents s n = [ "0"; "1" ]);
  Slab.release s;
  let seen = ref [] in
  while List.length !seen < 2 do
    let n = Slab.pop_batch s ~max:2 in
    seen := !seen @ slab_contents s n;
    Slab.release s
  done;
  check_bool "blocked batch completed in order" true (!seen = [ "2"; "3" ]);
  Domain.join d;
  check_bool "producer finished" true (Atomic.get pushed)

let slab_lease_discipline () =
  let s = Slab.create ~slot_bytes:16 ~capacity:2 () in
  (* zero-copy ingest: lease, fill in place, publish *)
  (match Slab.lease s with
  | None -> Alcotest.fail "lease on open slab"
  | Some buf ->
    Bytes.blit_string "hello" 0 buf 0 5;
    (* a second lease or a push while leased violates the discipline *)
    (try
       ignore (Slab.lease s);
       Alcotest.fail "double lease allowed"
     with Invalid_argument _ -> ());
    (try
       ignore (Slab.push s "x");
       Alcotest.fail "push while leased allowed"
     with Invalid_argument _ -> ());
    Slab.publish s 5);
  (* abandon returns the slot unpublished *)
  (match Slab.lease s with
  | None -> Alcotest.fail "second lease"
  | Some _ -> Slab.abandon s);
  check_int "only the published slot" 1 (Slab.length s);
  let n = Slab.pop_batch s ~max:4 in
  check_bool "leased slot readable" true (slab_contents s n = [ "hello" ]);
  (* consumer-side discipline: no second batch before release, no release
     without a batch *)
  (try
     ignore (Slab.pop_batch s ~max:1);
     Alcotest.fail "pop_batch with batch outstanding allowed"
   with Invalid_argument _ -> ());
  Slab.release s;
  (try
     Slab.release s;
     Alcotest.fail "double release allowed"
   with Invalid_argument _ -> ());
  (* oversized packets are a caller bug, not silent truncation *)
  try
    ignore (Slab.push s (String.make 17 'q'));
    Alcotest.fail "oversize push allowed"
  with Invalid_argument _ -> ()

(* The contiguous-run lease behind the recvmmsg drain: lease a run,
   fill slots in place (lengths through [raw_lens], as the C stub
   does), publish the filled prefix. *)
let slab_lease_run () =
  let s = Slab.create ~slot_bytes:16 ~capacity:4 () in
  let k = Slab.lease_run s ~max:3 in
  check_int "run of 3" 3 k;
  let base = Slab.producer_slot s in
  check_int "run starts at the ring head" 0 base;
  let bufs = Slab.raw_bufs s and lens = Slab.raw_lens s in
  Bytes.blit_string "aa" 0 bufs.(base) 0 2;
  lens.(base) <- 2;
  Bytes.blit_string "bbb" 0 bufs.(base + 1) 0 3;
  lens.(base + 1) <- 3;
  (* the run is one lease: single-slot leases and pushes must refuse *)
  (try
     ignore (Slab.lease s);
     Alcotest.fail "lease over an outstanding run allowed"
   with Invalid_argument _ -> ());
  (* a short syscall publishes only the filled prefix *)
  Slab.publish_run s ~n:2;
  check_int "published prefix only" 2 (Slab.length s);
  let n = Slab.pop_batch s ~max:4 in
  check_bool "filled in place" true (slab_contents s n = [ "aa"; "bbb" ]);
  (* batch_slot maps a consumer batch index to its absolute slot (the
     sidecar-state key: source addresses are filed by slot) *)
  check_int "batch_slot 0" 0 (Slab.batch_slot s 0);
  check_int "batch_slot 1" 1 (Slab.batch_slot s 1);
  Slab.release s;
  (* the run never wraps the ring seam: tail is at 2 of 4, so a max-4
     ask clips to the 2 seam slots even though 4 are free *)
  let k = Slab.lease_run s ~max:4 in
  check_int "clipped at the seam" 2 k;
  check_int "producer slot after the seam clip" 2 (Slab.producer_slot s);
  (* publishing beyond the run refuses — and drops the lease, so the
     ring stays usable after the caller bug *)
  (try
     Slab.publish_run s ~n:3;
     Alcotest.fail "publishing beyond the run allowed"
   with Invalid_argument _ -> ());
  (* publishing 0 abandons the run *)
  let k = Slab.lease_run s ~max:4 in
  check_int "re-leased after the refused publish" 2 k;
  Slab.publish_run s ~n:0;
  check_int "nothing published" 0 (Slab.length s);
  (* an oversize kernel length is a stub bug, not silent corruption *)
  let k = Slab.lease_run s ~max:1 in
  check_int "one slot" 1 k;
  lens.(Slab.producer_slot s) <- 99;
  (try
     Slab.publish_run s ~n:1;
     Alcotest.fail "oversize slot length allowed"
   with Invalid_argument _ -> ());
  (* the failed publish dropped the lease: nothing landed, ring usable *)
  check_int "nothing published by the refused run" 0 (Slab.length s);
  (* fill the ring through run leases; a full ring leases nothing *)
  let fill () =
    let k = Slab.lease_run s ~max:4 in
    for i = 0 to k - 1 do
      lens.(Slab.producer_slot s + i) <- 1
    done;
    Slab.publish_run s ~n:k;
    k
  in
  check_int "seam half" 2 (fill ());
  check_int "second half" 2 (fill ());
  check_int "full ring leases nothing" 0 (Slab.lease_run s ~max:4);
  (* closed slab leases nothing either *)
  Slab.close s;
  check_int "closed leases nothing" 0 (Slab.lease_run s ~max:4)

let slab_close_drains () =
  let s = Slab.create ~capacity:4 () in
  ignore (Slab.push s "a");
  Slab.close s;
  check_bool "push after close" false (Slab.push s "b");
  check_bool "lease after close" true (Slab.lease s = None);
  let n = Slab.pop_batch s ~max:4 in
  check_bool "drains remainder" true (slab_contents s n = [ "a" ]);
  Slab.release s;
  check_int "closed and drained" 0 (Slab.pop_batch s ~max:4)

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats_counters () =
  let s = Stats.create [ "a"; "b" ] in
  let ia = Stats.stage_index s "a" and ib = Stats.stage_index s "b" in
  Stats.record s ia ~bytes:100 ~ns:500;
  Stats.record s ia ~bytes:50 ~ns:1500;
  Stats.reject s ib ~bytes:10;
  check_int "a packets" 2 (Stats.stage_packets s ia);
  check_int "a bytes" 150 (Stats.stage_bytes s ia);
  check_int "b rejects" 1 (Stats.stage_rejects s ib);
  check_int "a mean" 1000 (Stats.stage_mean_ns s ia);
  (* [packets] counts every packet seen at a stage; rejects are a subset *)
  let p, b, rj = Stats.totals s in
  check_int "total packets" 3 p;
  check_int "total bytes" 160 b;
  check_int "total rejects" 1 rj

let stats_merge () =
  let a = Stats.create [ "x" ] and b = Stats.create [ "x" ] in
  Stats.record a 0 ~bytes:10 ~ns:100;
  Stats.record b 0 ~bytes:20 ~ns:300;
  Stats.merge_into ~into:a b;
  check_int "merged packets" 2 (Stats.stage_packets a 0);
  check_int "merged bytes" 30 (Stats.stage_bytes a 0);
  check_int "merged mean" 200 (Stats.stage_mean_ns a 0)

let stats_batch () =
  let s = Stats.create [ "x" ] in
  Stats.record_batch s 0 ~packets:10 ~bytes:1000 ~rejects:2 ~elapsed_ns:5000;
  check_int "batch packets" 10 (Stats.stage_packets s 0);
  check_int "batch rejects" 2 (Stats.stage_rejects s 0);
  (* to_text must render without raising *)
  check_bool "text" true (String.length (Stats.to_text s) > 0)

let stats_warnings () =
  let a = Stats.create [ "x" ] and b = Stats.create [ "x" ] in
  Stats.note_warning a "w1";
  Stats.note_warning a "w1" (* duplicates collapse *);
  Stats.note_warning b "w2";
  Stats.merge_into ~into:a b;
  check_bool "union survives merge" true (Stats.warnings a = [ "w1"; "w2" ]);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "rendered" true (contains (Stats.to_text a) "w1");
  let m = Stats.merge [ a; b ] in
  check_bool "merge list" true (Stats.warnings m = [ "w1"; "w2" ])

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let arq_data ~seq payload = Fm.Arq.to_bytes (Fm.Arq.Data { seq; payload })

let pipeline_accepts_and_rejects () =
  let p = Pipeline.create Fm.Arq.format in
  let good = arq_data ~seq:1 "hello" in
  check_bool "accept" true (Pipeline.process p good = Pipeline.Accepted);
  let corrupt = Bytes.of_string good in
  Bytes.set corrupt 4 (Char.chr (Char.code (Bytes.get corrupt 4) lxor 0xFF));
  (match Pipeline.process p (Bytes.to_string corrupt) with
  | Pipeline.Rejected_decode _ -> ()
  | _ -> Alcotest.fail "corrupt packet not rejected at decode");
  let s = Pipeline.stats p in
  let d = Stats.stage_index s "decode" in
  check_int "decode packets" 2 (Stats.stage_packets s d);
  check_int "decode rejects" 1 (Stats.stage_rejects s d)

let pipeline_verify_stage () =
  let p =
    Pipeline.create
      ~verify:(fun v -> Netdsl_format.View.get_int v "seq" <> 13L)
      Fm.Arq.format
  in
  check_bool "passes" true (Pipeline.process p (arq_data ~seq:1 "x") = Accepted);
  check_bool "vetoed" true (Pipeline.process p (arq_data ~seq:13 "x") = Rejected_verify);
  let s = Pipeline.stats p in
  check_int "verify rejects" 1 (Stats.stage_rejects s (Stats.stage_index s "verify"))

let pipeline_machine_flows () =
  (* The ARQ receiver machine accepts any data packet ("ok" event); with
     [flow_key] each seq value gets its own machine instance. *)
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let p =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine ~flow_key:"seq" Fm.Arq.format
  in
  for seq = 0 to 4 do
    check_bool "stepped" true (Pipeline.process p (arq_data ~seq "d") = Accepted)
  done;
  check_int "one machine per flow" 5 (Pipeline.flow_count p)

let pipeline_batch_matches_singles () =
  let rng = Prng.of_int 5 in
  let n = 200 in
  let pkts =
    Array.init n (fun i ->
        let good = arq_data ~seq:(i land 0xFF) "payload" in
        if i mod 3 = 0 then Netdsl_format.Gen.mutate rng ~flips:4 good else good)
  in
  let p1 = Pipeline.create Fm.Arq.format in
  Array.iter (fun pkt -> ignore (Pipeline.process p1 pkt)) pkts;
  let p2 =
    Pipeline.create
      ~config:{ Pipeline.default_config with batch = 64; ring_capacity = 64 }
      Fm.Arq.format
  in
  let i = ref 0 in
  while !i < n do
    let take = min 64 (n - !i) in
    Pipeline.process_batch p2 (Array.sub pkts !i take) take;
    i := !i + take
  done;
  let s1 = Pipeline.stats p1 and s2 = Pipeline.stats p2 in
  List.iteri
    (fun idx name ->
      check_int (name ^ " packets equal") (Stats.stage_packets s1 idx)
        (Stats.stage_packets s2 idx);
      check_int (name ^ " rejects equal") (Stats.stage_rejects s1 idx)
        (Stats.stage_rejects s2 idx))
    Pipeline.stage_names

let pipeline_ring_driven () =
  let p = Pipeline.create Fm.Arq.format in
  let consumer = Domain.spawn (fun () -> Pipeline.run p) in
  for i = 1 to 500 do
    check_bool "fed" true (Pipeline.feed p (arq_data ~seq:(i land 0xFF) "zz"))
  done;
  Pipeline.close_input p;
  Domain.join consumer;
  let s = Pipeline.stats p in
  check_int "all decoded" 500 (Stats.stage_packets s (Stats.stage_index s "decode"))

let pipeline_responder () =
  (* Respond to every data packet with the matching Ack; check the replies
     are valid ARQ packets with the right seq. *)
  let acks = ref [] in
  let module V = Netdsl_format.Value in
  let p =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~respond:(fun v _ ->
        if Netdsl_format.View.get_int v "kind" = 0L then
          let seq = Int64.to_int (Netdsl_format.View.get_int v "seq") in
          Some
            (V.record
               [ ("seq", V.int seq); ("kind", V.int 1); ("payload", V.bytes "") ])
        else None)
      ~on_response:(fun s -> acks := s :: !acks)
      Fm.Arq.format
  in
  check_bool "data accepted" true (Pipeline.process p (arq_data ~seq:7 "pp") = Accepted);
  check_int "one ack" 1 (List.length !acks);
  match Fm.Arq.of_bytes (List.hd !acks) with
  | Ok (Fm.Arq.Ack { seq }) -> check_int "ack seq" 7 seq
  | Ok _ -> Alcotest.fail "expected an ack"
  | Error e -> Alcotest.failf "ack does not decode: %s" e

let pipeline_patch_responder () =
  (* The in-place fast path: answer each data packet by flipping its kind
     field to Ack and truncating nothing — the reply must be exactly what
     the value-building responder produces. *)
  let acks = ref [] in
  let p =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~respond_patch:(fun v _ ->
        if Netdsl_format.View.get_int v "kind" = 0L then Some [ ("kind", 1L) ]
        else None)
      ~on_response:(fun s -> acks := s :: !acks)
      Fm.Arq.format
  in
  check_bool "data accepted" true
    (Pipeline.process p (arq_data ~seq:7 "pp") = Accepted);
  check_bool "ack passes through unanswered" true
    (Pipeline.process p (Fm.Arq.to_bytes (Fm.Arq.Ack { seq = 3 })) = Accepted);
  check_int "one ack" 1 (List.length !acks);
  (let module V = Netdsl_format.Value in
   match Netdsl_format.Codec.decode Fm.Arq.format (List.hd !acks) with
   | Ok reply ->
     check_int "reply kind" 1 (V.get_int reply "kind");
     check_int "reply seq" 7 (V.get_int reply "seq");
     Alcotest.(check string) "payload kept" "pp" (V.get_bytes reply "payload")
   | Error e ->
     Alcotest.failf "patched reply does not decode: %s"
       (Netdsl_format.Codec.error_to_string e));
  (* an unpatchable field is a clean encode-stage reject, not a crash *)
  let p2 =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~respond_patch:(fun _ _ -> Some [ ("chk", 0L) ])
      Fm.Arq.format
  in
  check_bool "derived field rejected at encode" true
    (Pipeline.process p2 (arq_data ~seq:1 "x") = Rejected_encode)

let pipeline_flow_eviction () =
  (* max_flows bounds the table and eviction is oldest-idle: with room for
     3 flows, touching flow 0 must protect it from the next eviction. *)
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let p =
    Pipeline.create
      ~config:{ Pipeline.default_config with max_flows = 3 }
      ~classify:(fun _ -> Some "ok")
      ~machine ~flow_key:"seq" Fm.Arq.format
  in
  let step seq =
    check_bool "stepped" true (Pipeline.process p (arq_data ~seq "d") = Accepted)
  in
  step 0; step 1; step 2;
  check_int "table full" 3 (Pipeline.flow_count p);
  check_int "nothing evicted yet" 0 (Stats.evicted_flows (Pipeline.stats p));
  step 0; (* touch: flow 0 becomes most recent, flow 1 the oldest idle *)
  step 3; (* must evict flow 1, not flow 0 *)
  check_int "still bounded" 3 (Pipeline.flow_count p);
  check_int "one eviction" 1 (Stats.evicted_flows (Pipeline.stats p));
  step 0; (* if LRU ignored the touch, flow 0 would be gone and this would
             mint a new instance, evicting again *)
  check_int "touched flow survived" 1 (Stats.evicted_flows (Pipeline.stats p))

let pipeline_eviction_churn () =
  (* Adversarial churn over a max_flows-sized table: 64 flows hammered
     through an 8-slot table, interleaved with malformed packets.  A
     reference LRU model predicts, for every accepted packet, the exact
     per-flow counter the machine instance must hold — so any of the three
     failure modes (eviction count drifting, a mutant touching the table,
     an evicted flow resuming from stale state instead of a fresh
     instance) shows up as a concrete mismatch. *)
  let module M = Netdsl_fsm.Machine in
  let module Step = Netdsl_fsm.Step in
  let max_flows = 8 and n_flows = 64 in
  let machine =
    M.machine ~name:"flow_counter" ~states:[ "s" ] ~events:[ "ok" ]
      ~registers:[ M.reg "n" ~init:0 ~domain:65536 ]
      ~initial:"s"
      [ M.trans ~label:"COUNT"
          ~actions:[ M.Assign ("n", M.Add (M.Reg "n", M.Int 1)) ]
          ~src:"s" ~event:"ok" ~dst:"s" () ]
  in
  let observed = ref None in
  let p =
    Pipeline.create
      ~config:{ Pipeline.default_config with max_flows }
      ~classify:(fun _ -> Some "ok")
      ~machine ~flow_key:"seq"
      ~respond:(fun view inst ->
        observed :=
          Some
            ( Netdsl_format.View.get_int view "seq",
              Step.register_by_name inst "n" );
        None)
      Fm.Arq.format
  in
  (* reference model: seq -> count, plus MRU-first recency order *)
  let counts = Hashtbl.create 16 in
  let order = ref [] in
  let evictions = ref 0 in
  let model_touch seq =
    match Hashtbl.find_opt counts seq with
    | Some c ->
      Hashtbl.replace counts seq (c + 1);
      order := seq :: List.filter (fun s -> s <> seq) !order;
      c + 1
    | None ->
      if Hashtbl.length counts = max_flows then begin
        match List.rev !order with
        | lru :: _ ->
          Hashtbl.remove counts lru;
          order := List.filter (fun s -> s <> lru) !order;
          incr evictions
        | [] -> assert false
      end;
      Hashtbl.replace counts seq 1;
      order := seq :: !order;
      1
  in
  let rng = Prng.of_int 20260806 in
  for i = 1 to 2000 do
    if Prng.int rng 4 = 0 then begin
      (* malformed packets must bounce at decode without touching flows *)
      match Pipeline.process p "\xff" with
      | Rejected_decode _ -> ()
      | _ -> Alcotest.fail "garbage survived decode"
    end
    else begin
      let seq =
        match Prng.int rng 3 with
        | 0 -> i mod n_flows (* sweep: steady eviction pressure *)
        | 1 -> Prng.int rng n_flows (* random revisits *)
        | _ -> Prng.int rng max_flows (* hot set that should stay resident *)
      in
      let expected = model_touch seq in
      observed := None;
      check_bool "accepted" true (Pipeline.process p (arq_data ~seq "d") = Accepted);
      match !observed with
      | None -> Alcotest.fail "responder not consulted for accepted packet"
      | Some (got_seq, got_n) ->
        check_int "responder saw the packet's flow" seq (Int64.to_int got_seq);
        if got_n <> expected then
          Alcotest.failf
            "flow %d: instance register %d, model %d — stale or lost state after \
             %d evictions"
            seq got_n expected !evictions
    end
  done;
  check_int "table stayed bounded" max_flows (Pipeline.flow_count p);
  check_int "evictions match the model" !evictions
    (Stats.evicted_flows (Pipeline.stats p));
  check_int "live flows match the model" (Hashtbl.length counts)
    (Pipeline.flow_count p)

let pipeline_classify_id_fast_path () =
  (* The id-returning classifier: negative = pass-through, a valid id
     fires, and the opt-in hook sees the reconstructed transition. *)
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let labels = ref [] in
  let ok_id = ref (-1) in
  let p =
    Pipeline.create
      ~classify_id:(fun v ->
        if Netdsl_format.View.get_int v "kind" = 0L then !ok_id else -1)
      ~machine ~flow_key:"seq"
      ~on_transition:(fun tr -> labels := tr.Netdsl_fsm.Machine.t_label :: !labels)
      Fm.Arq.format
  in
  let plan = Option.get (Pipeline.machine_plan p) in
  ok_id := Netdsl_fsm.Step.event_id plan "ok";
  check_bool "resolved" true (!ok_id >= 0);
  check_bool "data fires" true (Pipeline.process p (arq_data ~seq:1 "x") = Accepted);
  check_bool "ack passes through" true
    (Pipeline.process p (Fm.Arq.to_bytes (Fm.Arq.Ack { seq = 1 })) = Accepted);
  check_int "one flow (ack passed through)" 1 (Pipeline.flow_count p);
  check_bool "hook saw RECV" true (!labels = [ "RECV" ]);
  (* an id the plan does not know is refused at the step stage *)
  let p2 =
    Pipeline.create
      ~classify_id:(fun _ -> 99)
      ~machine Fm.Arq.format
  in
  check_bool "unknown id rejected" true
    (Pipeline.process p2 (arq_data ~seq:1 "x") = Rejected_step)

(* ------------------------------------------------------------------ *)
(* Flight / fused mode *)

(* The ARQ responder as a flight spec: classify data packets to the "ok"
   event, key flows by seq, answer data with an in-place kind:=ack patch. *)
let arq_flight =
  Flight.spec
    ~verify:(Flight.Cmp (Flight.Lt, Flight.Field "seq", Flight.Const 256L))
    ~classify:
      [ { Flight.ev_when = Flight.Cmp (Flight.Eq, Flight.Field "kind", Flight.Const 0L);
          ev_name = "ok" } ]
    ~flow_key:"seq"
    ~respond:
      [ { Flight.re_when = Flight.Cmp (Flight.Eq, Flight.Field "kind", Flight.Const 0L);
          re_set = [ { Flight.set_field = "kind"; set_to = Flight.Const 1L } ] } ]
    ()

let outcome_tag = function
  | Pipeline.Accepted -> "accepted"
  | Pipeline.Rejected_decode _ -> "rejected_decode"
  | Pipeline.Rejected_verify -> "rejected_verify"
  | Pipeline.Rejected_step -> "rejected_step"
  | Pipeline.Rejected_encode -> "rejected_encode"

let fused_is_linear () =
  (* The ARQ format must actually take the fast tier — otherwise the
     fused-vs-staged diff only exercises the fallback engine. *)
  let p =
    Pipeline.create ~mode:Pipeline.Fused ~flight:arq_flight
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8) Fm.Arq.format
  in
  check_bool "linear tier" true (Pipeline.flight_tier p = Some `Linear)

(* The lock-step property: one flight spec, two pipelines (Staged and
   Fused), identical mixed traffic — per-packet outcomes, reply bytes and
   every stage counter must agree exactly. *)
let fused_matches_staged () =
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let mk mode replies =
    Pipeline.create ~mode ~flight:arq_flight ~machine
      ~on_response:(fun s -> replies := s :: !replies)
      Fm.Arq.format
  in
  let staged_replies = ref [] and fused_replies = ref [] in
  let staged = mk Pipeline.Staged staged_replies in
  let fused = mk Pipeline.Fused fused_replies in
  let rng = Prng.of_int 77 in
  for i = 1 to 1000 do
    let pkt =
      match Prng.int rng 4 with
      | 0 -> Fm.Arq.to_bytes (Fm.Arq.Ack { seq = i land 0xFF })
      | 1 ->
        (* structure-aware mutants: mostly rejects, some accepts *)
        Netdsl_format.Gen.mutate rng ~flips:2 (arq_data ~seq:(i land 0xFF) "mm")
      | _ -> arq_data ~seq:(i land 0xFF) (String.make (Prng.int rng 20) 'p')
    in
    let a = Pipeline.process staged pkt and b = Pipeline.process fused pkt in
    if outcome_tag a <> outcome_tag b then
      Alcotest.failf "packet %d: staged %s, fused %s" i (outcome_tag a)
        (outcome_tag b)
  done;
  check_int "same reply count" (List.length !staged_replies)
    (List.length !fused_replies);
  List.iter2
    (fun a b -> Alcotest.(check string) "same reply bytes" a b)
    !staged_replies !fused_replies;
  check_int "same flow count" (Pipeline.flow_count staged)
    (Pipeline.flow_count fused);
  let ss = Pipeline.stats staged and sf = Pipeline.stats fused in
  List.iteri
    (fun idx name ->
      check_int (name ^ " packets equal") (Stats.stage_packets ss idx)
        (Stats.stage_packets sf idx);
      check_int (name ^ " rejects equal") (Stats.stage_rejects ss idx)
        (Stats.stage_rejects sf idx);
      check_int (name ^ " bytes equal") (Stats.stage_bytes ss idx)
        (Stats.stage_bytes sf idx))
    Pipeline.stage_names

let fused_verify_and_passthrough () =
  (* Fused semantics corners: the verify cond vetoes, acks pass through
     the classifier without a response, and both land in the counters. *)
  let spec =
    Flight.spec
      ~verify:(Flight.Cmp (Flight.Ne, Flight.Field "seq", Flight.Const 13L))
      ~classify:
        [ { Flight.ev_when =
              Flight.Cmp (Flight.Eq, Flight.Field "kind", Flight.Const 0L);
            ev_name = "ok" } ]
      ~flow_key:"seq"
      ~respond:
        [ { Flight.re_when =
              Flight.Cmp (Flight.Eq, Flight.Field "kind", Flight.Const 0L);
            re_set = [ { Flight.set_field = "kind"; set_to = Flight.Const 1L } ] } ]
      ()
  in
  let replies = ref 0 in
  let p =
    Pipeline.create ~mode:Pipeline.Fused ~flight:spec
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~on_response:(fun _ -> incr replies)
      Fm.Arq.format
  in
  check_bool "vetoed before any step" true
    (Pipeline.process p (arq_data ~seq:13 "x") = Pipeline.Rejected_verify);
  check_int "no flow minted for vetoed packet" 0 (Pipeline.flow_count p);
  check_int "no reply for vetoed packet" 0 !replies;
  check_bool "ack passes through" true
    (Pipeline.process p (Fm.Arq.to_bytes (Fm.Arq.Ack { seq = 2 })) = Accepted);
  check_int "pass-through does not respond" 0 !replies;
  check_bool "data responds" true
    (Pipeline.process p (arq_data ~seq:1 "x") = Accepted);
  check_int "one reply" 1 !replies

let fused_rejected_decode_error () =
  (* The fast tier collapses decode errors to a verdict; [process] must
     still recover a faithful error for the one-packet API. *)
  let p = Pipeline.create ~mode:Pipeline.Fused ~flight:(Flight.spec ()) Fm.Arq.format in
  match Pipeline.process p "\xff" with
  | Pipeline.Rejected_decode _ -> ()
  | o -> Alcotest.failf "expected decode reject, got %s" (outcome_tag o)

let reply_buf_high_water_reset () =
  (* Regression: one oversized reply used to pin a big buffer forever.
     Now the buffer shrinks back once the batch's high-water mark drops. *)
  let p =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~respond_patch:(fun v _ ->
        if Netdsl_format.View.get_int v "kind" = 0L then Some [ ("kind", 1L) ]
        else None)
      Fm.Arq.format
  in
  let base = Pipeline.reply_capacity p in
  check_bool "small reply fits the base buffer" true
    (Pipeline.process p (arq_data ~seq:1 "x") = Accepted
    && Pipeline.reply_capacity p = base);
  (* one jumbo request grows the buffer for its batch... *)
  let jumbo = arq_data ~seq:2 (String.make 4000 'J') in
  check_bool "jumbo accepted" true (Pipeline.process p jumbo = Accepted);
  check_bool "buffer grew" true (Pipeline.reply_capacity p >= 4000);
  (* ...and the next small batch lets it shrink back to the base size *)
  check_bool "small again" true (Pipeline.process p (arq_data ~seq:3 "x") = Accepted);
  check_int "high-water reset" base (Pipeline.reply_capacity p);
  (* steady traffic near the buffer size must not churn it *)
  let mid = arq_data ~seq:4 (String.make (base * 2) 'M') in
  check_bool "mid accepted" true (Pipeline.process p mid = Accepted);
  let grown = Pipeline.reply_capacity p in
  check_bool "mid again" true (Pipeline.process p mid = Accepted);
  check_int "no churn while the high-water holds" grown (Pipeline.reply_capacity p)

let pipeline_slab_driven_both_modes () =
  (* The slab-driven [run] loop in both modes, batch hand-off included:
     every packet fed must be decoded, replies must flow. *)
  List.iter
    (fun mode ->
      let replies = ref 0 in
      let p =
        Pipeline.create ~mode ~flight:arq_flight
          ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
          ~on_reply:(fun _ _ -> incr replies)
          Fm.Arq.format
      in
      let consumer = Domain.spawn (fun () -> Pipeline.run p) in
      let batch = Array.init 50 (fun i -> arq_data ~seq:(i land 0xFF) "zz") in
      for _ = 1 to 6 do
        check_bool "batch fed" true (Pipeline.feed_batch p batch 50)
      done;
      for i = 1 to 200 do
        check_bool "fed" true (Pipeline.feed p (arq_data ~seq:(i land 0xFF) "y"))
      done;
      Pipeline.close_input p;
      Domain.join consumer;
      let s = Pipeline.stats p in
      check_int "all decoded" 500
        (Stats.stage_packets s (Stats.stage_index s "decode"));
      check_int "all answered" 500 !replies)
    [ Pipeline.Staged; Pipeline.Fused ]

(* ------------------------------------------------------------------ *)
(* Stack pipelines: layered chains through the fused engine *)

module FF = Netdsl_format

let inet_tftp_plan =
  lazy
    (match FF.Stack.compile Fm.Stacks.inet_tftp with
    | Ok p -> p
    | Error e -> failwith e)

let tftp_chain ?src_port pkt =
  match
    FF.Stack.encode (Lazy.force inet_tftp_plan)
      (Fm.Stacks.inet_tftp_values ?src_port pkt)
  with
  | Ok s -> s
  | Error e -> failwith e

(* The TFTP responder over the 4-layer chain as a stacked flight: answer
   an ACK with the same datagram, UDP ports and IPv4 addresses swapped
   (the IPv4 checksum is repaired incrementally), keyed by client port.
   Operand registers read the *request's* run, so the two swap patches
   cannot see each other. *)
let stack_flight =
  Flight.spec
    ~verify:(Flight.Cmp (Flight.Le, Flight.Field "tftp.opcode", Flight.Const 5L))
    ~flow_key:"udp.src_port"
    ~respond:
      [ { Flight.re_when =
            Flight.Cmp (Flight.Eq, Flight.Field "tftp.opcode", Flight.Const 4L);
          re_set =
            [ { Flight.set_field = "udp.dst_port";
                set_to = Flight.Field "udp.src_port" };
              { Flight.set_field = "udp.src_port"; set_to = Flight.Const 69L };
              { Flight.set_field = "ipv4.source";
                set_to = Flight.Field "ipv4.destination" };
              { Flight.set_field = "ipv4.destination";
                set_to = Flight.Field "ipv4.source" } ] } ]
    ()

let stack_pipeline_serves_chain () =
  let replies = ref [] in
  let p =
    Pipeline.create ~mode:Pipeline.Fused ~stack:Fm.Stacks.inet_tftp
      ~flight:stack_flight
      ~on_response:(fun s -> replies := s :: !replies)
      Fm.Ethernet.format
  in
  check_bool "stacked tier" true (Pipeline.flight_tier p = Some `Stacked);
  let ack = tftp_chain ~src_port:50000 (Fm.Tftp.Ack { block = 7 }) in
  check_bool "ack accepted" true (Pipeline.process p ack = Pipeline.Accepted);
  (* a read request is accepted but matches no respond rule *)
  let rrq = tftp_chain (Fm.Tftp.Rrq { filename = "f"; mode = "octet" }) in
  check_bool "rrq passes through" true
    (Pipeline.process p rrq = Pipeline.Accepted);
  match !replies with
  | [ reply ] ->
    check_int "same length" (String.length ack) (String.length reply);
    (* fixed layout: eth 14 B, ipv4 20 B (no options) — addresses at
       26/30, UDP ports at 34/36, IPv4 checksum at 24 *)
    let u16 s i = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1] in
    check_int "reply source port is 69" 69 (u16 reply 34);
    check_int "reply destination is the client port" 50000 (u16 reply 36);
    check_bool "addresses swapped" true
      (String.sub reply 26 4 = String.sub ack 30 4
      && String.sub reply 30 4 = String.sub ack 26 4);
    check_int "ipv4 checksum repaired" 0
      (Netdsl_util.Checksum.internet_checksum ~off:14 ~len:20 reply);
    String.iteri
      (fun i c ->
        (* every byte outside the four patched fields and the repaired
           checksum must be the request's *)
        let patched = i >= 24 && i < 38 in
        if (not patched) && c <> ack.[i] then
          Alcotest.failf "reply byte %d changed unexpectedly" i)
      reply
  | l -> Alcotest.failf "expected one reply, got %d" (List.length l)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let stack_pipeline_red_paths () =
  (match
     Pipeline.create ~mode:Pipeline.Fused ~stack:Fm.Stacks.inet_tftp
       Fm.Ethernet.format
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stack without flight accepted");
  (match
     Pipeline.create ~stack:Fm.Stacks.inet_tftp ~flight:(Flight.spec ())
       Fm.Ethernet.format
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "staged stack pipeline accepted");
  let p =
    Pipeline.create ~mode:Pipeline.Fused ~stack:Fm.Stacks.inet_tftp
      ~flight:(Flight.spec ()) Fm.Ethernet.format
  in
  let ack = Bytes.of_string (tftp_chain (Fm.Tftp.Ack { block = 1 })) in
  (* ethertype := ARP — the chain's first demux edge must refuse, and the
     recovered error detail must name the failing layer *)
  Bytes.set ack 12 '\x08';
  Bytes.set ack 13 '\x06';
  match Pipeline.process p (Bytes.to_string ack) with
  | Pipeline.Rejected_decode (FF.Codec.Eval_error { reason; _ }) ->
    check_bool
      (Printf.sprintf "reason names the layer (%s)" reason)
      true (contains_sub reason "ethernet")
  | o -> Alcotest.failf "expected layered decode reject, got %s" (outcome_tag o)

let stack_pipeline_zero_alloc () =
  let replies = ref 0 in
  let p =
    Pipeline.create ~mode:Pipeline.Fused ~stack:Fm.Stacks.inet_tftp
      ~flight:stack_flight
      ~on_reply:(fun _ _ -> incr replies)
      Fm.Ethernet.format
  in
  let ack = Bytes.of_string (tftp_chain (Fm.Tftp.Ack { block = 3 })) in
  let len = Bytes.length ack in
  for _ = 1 to 100 do
    (* warm-up: sizes the reply buffer *)
    ignore (Pipeline.process_buffer p ack ~len)
  done;
  let n = 10_000 in
  let before = Gc.allocated_bytes () in
  for _ = 1 to n do
    ignore (Pipeline.process_buffer p ack ~len)
  done;
  let per_pkt = (Gc.allocated_bytes () -. before) /. float_of_int n in
  check_bool
    (Printf.sprintf "steady state allocates nothing (%.3f B/pkt)" per_pkt)
    true (per_pkt < 1.0);
  check_int "every ack answered" (100 + n) !replies

(* ------------------------------------------------------------------ *)
(* Shard *)

let shard_all_packets_one_worker_per_flow () =
  let config = { Shard.workers = 2; pipeline = Pipeline.default_config } in
  (* CI boxes may expose a single core: opt into oversubscription so the
     test still exercises two workers *)
  match Shard.create ~config ~allow_oversubscribe:true ~key:"seq" Fm.Arq.format with
  | Error e -> Alcotest.failf "shard create: %s" e
  | Ok sh ->
    Shard.start sh;
    let n = 2000 in
    for i = 1 to n do
      ignore (Shard.feed sh (arq_data ~seq:(i land 0xFF) "payload"))
    done;
    ignore (Shard.feed sh "" (* too short to carry the key: unkeyed *));
    Shard.drain sh;
    let s = Shard.stats sh in
    let d = Stats.stage_index s "decode" in
    (* n valid packets plus the short unkeyed one, all seen at decode *)
    check_int "every packet decoded" (n + 1) (Stats.stage_packets s d);
    check_int "short packet rejected" 1 (Stats.stage_rejects s d);
    check_int "unkeyed counted" 1 (Shard.unkeyed sh);
    (* both workers saw traffic: 256 flows over 2 workers *)
    let per_worker =
      Array.map
        (fun p ->
          let st = Pipeline.stats p in
          Stats.stage_packets st (Stats.stage_index st "decode"))
        (Shard.pipelines sh)
    in
    Array.iter (fun c -> check_bool "worker busy" true (c > 0)) per_worker;
    check_int "workers sum to total" (n + 1) (Array.fold_left ( + ) 0 per_worker)

let shard_clamps_oversubscription () =
  let cores = Domain.recommended_domain_count () in
  let config =
    { Shard.workers = cores + 2; pipeline = Pipeline.default_config }
  in
  (* default: clamp to the available cores and say so *)
  (match Shard.create ~config ~key:"seq" Fm.Arq.format with
  | Error e -> Alcotest.failf "shard create: %s" e
  | Ok sh ->
    check_int "clamped" cores (Shard.workers sh);
    check_bool "warned" true (Shard.warning sh <> None);
    check_bool "warning lands in stats" true
      (Stats.warnings (Shard.stats sh) <> []));
  (* explicit opt-in: keep the requested count, still warn *)
  match Shard.create ~config ~allow_oversubscribe:true ~key:"seq" Fm.Arq.format with
  | Error e -> Alcotest.failf "shard create: %s" e
  | Ok sh ->
    check_int "kept" (cores + 2) (Shard.workers sh);
    check_bool "warned anyway" true (Shard.warning sh <> None)

let shard_fused_mode () =
  (* Shard + flight + fused mode end to end on a couple of workers. *)
  let config = { Shard.workers = 2; pipeline = Pipeline.default_config } in
  match
    Shard.create ~config ~allow_oversubscribe:true ~key:"seq"
      ~mode:Pipeline.Fused ~flight:arq_flight
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8) Fm.Arq.format
  with
  | Error e -> Alcotest.failf "shard create: %s" e
  | Ok sh ->
    Shard.start sh;
    let n = 1000 in
    for i = 1 to n do
      ignore (Shard.feed sh (arq_data ~seq:(i land 0xFF) "payload"))
    done;
    Shard.drain sh;
    let s = Shard.stats sh in
    check_int "every packet decoded" n
      (Stats.stage_packets s (Stats.stage_index s "decode"));
    check_int "every packet answered" n
      (Stats.stage_packets s (Stats.stage_index s "encode"));
    check_int "no rejects" 0
      (let _, _, r = Stats.totals s in
       r)

let shard_key_must_be_fixed_offset () =
  (* "payload" sits after a variable-length region boundary? For ARQ all
     header fields are fixed; use a field that does not exist instead. *)
  match Shard.create ~key:"nope" Fm.Arq.format with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key_extractor accepted a missing field"

(* ------------------------------------------------------------------ *)
(* Spsc *)

let spsc_fifo_wraparound () =
  (* PRNG-driven push/poll against a queue model over a tiny ring, forcing
     many wraps; tags must travel with their packets. *)
  let r = Spsc.create ~slot_bytes:32 ~capacity:4 () in
  check_int "capacity rounded" 4 (Spsc.capacity r);
  let rng = Prng.of_int 99 in
  let model = Queue.create () in
  let fed = ref 0 in
  for _ = 1 to 300 do
    let pushes = Prng.int rng (Spsc.capacity r - Spsc.length r + 1) in
    for _ = 1 to pushes do
      incr fed;
      let pkt = Printf.sprintf "p%d" !fed in
      Queue.push (pkt, !fed land 0xFF) model;
      check_bool "pushed" true
        (Spsc.try_push r ~tag:(!fed land 0xFF) ~len:(String.length pkt) pkt)
    done;
    if Spsc.length r > 0 then begin
      let n = Spsc.poll r ~max:(1 + Prng.int rng 4) in
      for i = 0 to n - 1 do
        let want_pkt, want_tag = Queue.pop model in
        Alcotest.(check string) "fifo across wrap" want_pkt
          (Bytes.sub_string (Spsc.buf r i) 0 (Spsc.len r i));
        check_int "tag travels" want_tag (Spsc.tag r i)
      done;
      Spsc.release r
    end
  done

let spsc_two_domains () =
  (* The actual SPSC contract: a producer domain races a consumer domain
     over a small ring; every packet must arrive exactly once, in order. *)
  let r = Spsc.create ~slot_bytes:16 ~capacity:8 () in
  let n = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          let pkt = Printf.sprintf "%d" i in
          let k = ref 0 in
          while not (Spsc.try_push r ~tag:i ~len:(String.length pkt) pkt) do
            Spsc.backoff !k;
            incr k
          done
        done;
        Spsc.close r)
  in
  let next = ref 1 in
  let running = ref true in
  let k = ref 0 in
  while !running do
    match Spsc.poll r ~max:4 with
    | -1 -> running := false
    | 0 ->
      Spsc.backoff !k;
      incr k
    | m ->
      k := 0;
      for i = 0 to m - 1 do
        check_int "in order"
          !next
          (int_of_string (Bytes.sub_string (Spsc.buf r i) 0 (Spsc.len r i)));
        check_int "tag in order" !next (Spsc.tag r i);
        incr next
      done;
      Spsc.release r
  done;
  Domain.join producer;
  check_int "every packet arrived" (n + 1) !next

let spsc_backpressure_and_close () =
  let r = Spsc.create ~capacity:2 () in
  check_bool "space" true (Spsc.try_push r ~len:1 "a");
  check_bool "space" true (Spsc.try_push r ~len:1 "b");
  check_bool "full" false (Spsc.has_space r);
  check_bool "push refused" false (Spsc.try_push r ~len:1 "c");
  Spsc.close r;
  (* close does not lose the backlog *)
  let m = Spsc.poll r ~max:8 in
  check_int "backlog claimed" 2 m;
  Spsc.release r;
  check_int "then drained" (-1) (Spsc.poll r ~max:8);
  check_bool "space after release" true (Spsc.has_space r)

let spsc_claim_discipline () =
  let r = Spsc.create ~capacity:4 () in
  ignore (Spsc.try_push r ~len:1 "a");
  ignore (Spsc.poll r ~max:4);
  (match Spsc.poll r ~max:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double poll accepted");
  Spsc.release r;
  match Spsc.release r with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "release without claim accepted"

let spsc_positions_are_absolute () =
  (* head_pos/producer_pos keep counting past the capacity — the property
     the migration fences rely on. *)
  let r = Spsc.create ~capacity:2 () in
  for i = 1 to 10 do
    ignore (Spsc.try_push r ~len:1 "x");
    check_int "producer pos" i (Spsc.producer_pos r);
    ignore (Spsc.poll r ~max:1);
    Spsc.release r;
    check_int "head pos" i (Spsc.head_pos r)
  done

(* ------------------------------------------------------------------ *)
(* Steer *)

let steer_distribution () =
  (* The Fibonacci hash must spread both sequential and strided keys:
     either pattern fed to [worker_of_key] should load every worker with
     a reasonable share (a plain mask would collapse strided keys onto
     one worker). *)
  let workers = 4 in
  let st = Shard.Steer.create ~workers () in
  check_int "buckets power of two" 256 (Shard.Steer.buckets st);
  let spread label keys =
    let counts = Array.make workers 0 in
    List.iter
      (fun k ->
        let w = Shard.Steer.worker_of_key st k in
        counts.(w) <- counts.(w) + 1)
      keys;
    let total = List.length keys in
    Array.iteri
      (fun w c ->
        check_bool
          (Printf.sprintf "%s: worker %d got %d/%d" label w c total)
          true
          (c * 100 / total >= 10))
      counts
  in
  spread "sequential" (List.init 10_000 (fun i -> i));
  spread "strided 4096" (List.init 10_000 (fun i -> i * 4096));
  spread "strided 65536" (List.init 10_000 (fun i -> i * 65536));
  (* unkeyed packets pin to worker 0 *)
  check_int "no_key to worker 0" 0
    (Shard.Steer.worker_of_key st Netdsl_format.View.no_key)

let steer_bucket_rounding () =
  let st = Shard.Steer.create ~buckets:100 ~workers:3 () in
  check_int "rounded up" 128 (Shard.Steer.buckets st);
  let st = Shard.Steer.create ~buckets:1 ~workers:5 () in
  check_bool "at least workers" true (Shard.Steer.buckets st >= 5)

(* ------------------------------------------------------------------ *)
(* Key extractor fast path *)

let key_int_agrees_with_key_option () =
  let module V = Netdsl_format.View in
  let ke =
    match V.key_extractor Fm.Arq.format "seq" with
    | Ok ke -> ke
    | Error e -> Alcotest.failf "key_extractor: %s" e
  in
  let rng = Prng.of_int 5 in
  (* real packets, random garbage, and every truncation length *)
  let inputs =
    List.init 64 (fun i -> arq_data ~seq:(i * 4 land 0xFF) "pp")
    @ List.init 64 (fun _ ->
          String.init (Prng.int rng 12) (fun _ -> Char.chr (Prng.int rng 256)))
    @ (let full = arq_data ~seq:200 "x" in
       List.init (String.length full) (fun l -> String.sub full 0 l))
  in
  List.iter
    (fun pkt ->
      let opt = V.extract_key ke pkt in
      let fast = V.extract_key_int ke pkt in
      (match opt with
      | None -> check_bool "no_key on short" true (fast = V.no_key)
      | Some v -> check_int "same key" v fast);
      (* the min-bytes bound is exactly the no_key frontier *)
      check_bool "key_min_bytes frontier" true
        ((String.length pkt >= V.key_min_bytes ke) = (fast <> V.no_key)))
    inputs

(* ------------------------------------------------------------------ *)
(* Stats: unkeyed *)

let stats_unkeyed_merge () =
  let a = Stats.create [ "decode" ] in
  let b = Stats.create [ "decode" ] in
  Stats.note_unkeyed a;
  Stats.note_unkeyed ~n:4 b;
  check_int "count" 1 (Stats.unkeyed a);
  let into = Stats.create [ "decode" ] in
  Stats.merge_into ~into a;
  Stats.merge_into ~into b;
  check_int "merged" 5 (Stats.unkeyed into);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "rendered" true (contains (Stats.to_text into) "unkeyed");
  check_bool "silent when zero" false
    (contains (Stats.to_text (Stats.create [ "decode" ])) "unkeyed")

(* ------------------------------------------------------------------ *)
(* Sharded vs single determinism *)

(* Thread-safe per-flow reply log: the reply's own seq field (read with
   the steering extractor) keys the table; per-flow append order is the
   engine's per-flow processing order. *)
let reply_log () =
  let module V = Netdsl_format.View in
  let ke =
    match V.key_extractor Fm.Arq.format "seq" with
    | Ok ke -> ke
    | Error e -> Alcotest.failf "key_extractor: %s" e
  in
  let m = Mutex.create () in
  let tbl : (int, string list) Hashtbl.t = Hashtbl.create 64 in
  let on_response r =
    let key = V.extract_key_int ke r in
    Mutex.lock m;
    let prev = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (r :: prev);
    Mutex.unlock m
  in
  (tbl, on_response)

let check_same_replies ~label reference got =
  let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare in
  check_bool
    (Printf.sprintf "%s: same flow set" label)
    true
    (keys reference = keys got);
  Hashtbl.iter
    (fun k want ->
      let have = try Hashtbl.find got k with Not_found -> [] in
      check_bool
        (Printf.sprintf "%s: flow %d reply sequence (%d vs %d replies)" label
           k (List.length want) (List.length have))
        true (want = have))
    reference

let shard_determinism ~stealing () =
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let flows = 64 in
  let counters = Array.make flows 0 in
  let rng = Prng.of_int 7 in
  let fed = ref [] in
  let sh_tbl, sh_response = reply_log () in
  let config = { Shard.workers = 2; pipeline = Pipeline.default_config } in
  let steal_threshold = if stealing then Some 0 else None in
  (match
     Shard.create ~config ~allow_oversubscribe:true ~stealing ?steal_threshold
       ~key:"seq" ~mode:Pipeline.Fused ~flight:arq_flight ~machine
       ~on_response:sh_response Fm.Arq.format
   with
  | Error e -> Alcotest.failf "shard create: %s" e
  | Ok sh ->
    Shard.start sh;
    let feed_burst n =
      for _ = 1 to n do
        let f = Prng.int rng flows in
        counters.(f) <- counters.(f) + 1;
        let pkt = arq_data ~seq:f (Printf.sprintf "c%04d" counters.(f)) in
        fed := pkt :: !fed;
        ignore (Shard.feed sh pkt)
      done
    in
    feed_burst 2000;
    if stealing then begin
      (* pulse: let the workers run dry (and go hungry), then burst again
         so the rebalancer has a hungry thief and a backlogged victim *)
      let rounds = ref 0 in
      while Shard.steals sh = 0 && !rounds < 100 do
        incr rounds;
        Unix.sleepf 0.002;
        feed_burst 200
      done
    end;
    Shard.drain sh;
    if stealing then
      check_bool "stealing actually exercised" true (Shard.steals sh > 0)
    else begin
      check_int "no steals without stealing" 0 (Shard.steals sh);
      (* without migration every flow lives on exactly one worker *)
      let live =
        Array.fold_left
          (fun acc p -> acc + Pipeline.flow_count p)
          0 (Shard.pipelines sh)
      in
      check_int "one instance per flow" flows live
    end);
  (* reference: the same packets, same order, through one pipeline *)
  let ref_tbl, ref_response = reply_log () in
  let p =
    Pipeline.create ~mode:Pipeline.Fused ~flight:arq_flight ~machine
      ~on_response:ref_response Fm.Arq.format
  in
  List.iter (fun pkt -> ignore (Pipeline.process p pkt)) (List.rev !fed);
  check_same_replies
    ~label:(if stealing then "stealing" else "plain")
    ref_tbl sh_tbl

let shard_determinism_plain () = shard_determinism ~stealing:false ()
let shard_determinism_stealing () = shard_determinism ~stealing:true ()

(* ------------------------------------------------------------------ *)

let suite =
  [ ( "engine.ring",
      [ Alcotest.test_case "fifo" `Quick ring_fifo;
        Alcotest.test_case "close drains" `Quick ring_close_drains;
        Alcotest.test_case "blocking producer" `Quick ring_blocking_producer;
        Alcotest.test_case "pop_into batches" `Quick ring_pop_into ] );
    ( "engine.slab",
      [ Alcotest.test_case "fifo across wraparound" `Quick slab_fifo_wraparound;
        Alcotest.test_case "batch across the wrap seam" `Quick
          slab_batch_across_seam;
        Alcotest.test_case "blocked producer backpressure" `Quick
          slab_backpressure;
        Alcotest.test_case "lease/return discipline" `Quick
          slab_lease_discipline;
        Alcotest.test_case "contiguous-run lease" `Quick slab_lease_run;
        Alcotest.test_case "close drains" `Quick slab_close_drains ] );
    ( "engine.stats",
      [ Alcotest.test_case "counters" `Quick stats_counters;
        Alcotest.test_case "merge" `Quick stats_merge;
        Alcotest.test_case "batch record" `Quick stats_batch;
        Alcotest.test_case "warnings" `Quick stats_warnings ] );
    ( "engine.pipeline",
      [ Alcotest.test_case "accept and reject" `Quick pipeline_accepts_and_rejects;
        Alcotest.test_case "verify stage" `Quick pipeline_verify_stage;
        Alcotest.test_case "machine per flow" `Quick pipeline_machine_flows;
        Alcotest.test_case "batch = singles" `Quick pipeline_batch_matches_singles;
        Alcotest.test_case "ring-driven run" `Quick pipeline_ring_driven;
        Alcotest.test_case "responder" `Quick pipeline_responder;
        Alcotest.test_case "patch responder" `Quick pipeline_patch_responder;
        Alcotest.test_case "flow eviction" `Quick pipeline_flow_eviction;
        Alcotest.test_case "eviction under adversarial churn" `Quick
          pipeline_eviction_churn;
        Alcotest.test_case "classify_id fast path" `Quick
          pipeline_classify_id_fast_path ] );
    ( "engine.flight",
      [ Alcotest.test_case "arq flight takes the linear tier" `Quick
          fused_is_linear;
        Alcotest.test_case "fused = staged lock-step" `Quick fused_matches_staged;
        Alcotest.test_case "verify veto and pass-through" `Quick
          fused_verify_and_passthrough;
        Alcotest.test_case "decode error recovered" `Quick
          fused_rejected_decode_error;
        Alcotest.test_case "reply buffer high-water reset" `Quick
          reply_buf_high_water_reset;
        Alcotest.test_case "slab-driven run, both modes" `Quick
          pipeline_slab_driven_both_modes ] );
    ( "engine.stack",
      [ Alcotest.test_case "stacked chain responder" `Quick
          stack_pipeline_serves_chain;
        Alcotest.test_case "stack misuse + layered error detail" `Quick
          stack_pipeline_red_paths;
        Alcotest.test_case "steady state allocation-free" `Quick
          stack_pipeline_zero_alloc ] );
    ( "engine.shard",
      [ Alcotest.test_case "shards cover all packets" `Quick
          shard_all_packets_one_worker_per_flow;
        Alcotest.test_case "oversubscription clamped+warned" `Quick
          shard_clamps_oversubscription;
        Alcotest.test_case "fused sharded responder" `Quick shard_fused_mode;
        Alcotest.test_case "bad key rejected" `Quick shard_key_must_be_fixed_offset ] );
    ( "engine.spsc",
      [ Alcotest.test_case "fifo + tags across wraparound" `Quick
          spsc_fifo_wraparound;
        Alcotest.test_case "two-domain hand-off" `Quick spsc_two_domains;
        Alcotest.test_case "backpressure and close drain" `Quick
          spsc_backpressure_and_close;
        Alcotest.test_case "claim discipline" `Quick spsc_claim_discipline;
        Alcotest.test_case "absolute positions" `Quick
          spsc_positions_are_absolute ] );
    ( "engine.steer",
      [ Alcotest.test_case "fibonacci distribution" `Quick steer_distribution;
        Alcotest.test_case "bucket table rounding" `Quick steer_bucket_rounding;
        Alcotest.test_case "fast key read = slow key read" `Quick
          key_int_agrees_with_key_option;
        Alcotest.test_case "unkeyed stats merge" `Quick stats_unkeyed_merge ] );
    ( "engine.shard.determinism",
      [ Alcotest.test_case "sharded = single (per flow)" `Quick
          shard_determinism_plain;
        Alcotest.test_case "sharded = single under stealing" `Quick
          shard_determinism_stealing ] )
  ]
