(* The packet-processing engine: ring hand-off, per-stage stats, the
   batched pipeline over pooled views, and multicore flow sharding. *)

open Netdsl_engine
module Fm = Netdsl_formats
module Prng = Netdsl_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Ring *)

let ring_fifo () =
  let r = Ring.create ~capacity:4 in
  List.iter (fun i -> ignore (Ring.push r i)) [ 1; 2; 3 ];
  check_int "length" 3 (Ring.length r);
  check_bool "pop 1" true (Ring.pop r = Some 1);
  check_bool "pop 2" true (Ring.pop r = Some 2);
  check_bool "pop 3" true (Ring.pop r = Some 3)

let ring_close_drains () =
  let r = Ring.create ~capacity:4 in
  ignore (Ring.push r "a");
  Ring.close r;
  check_bool "push after close" false (Ring.push r "b");
  check_bool "drain" true (Ring.pop r = Some "a");
  check_bool "closed empty" true (Ring.pop r = None)

let ring_blocking_producer () =
  (* A full ring must block the producer until the consumer pops — run the
     producer on a second domain and check it only completes after pops. *)
  let r = Ring.create ~capacity:2 in
  ignore (Ring.push r 0);
  ignore (Ring.push r 1);
  let pushed = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore (Ring.push r 2);
        Atomic.set pushed true)
  in
  Domain.cpu_relax ();
  (* Cannot assert "still blocked" without a race; assert the data is
     complete and ordered instead. *)
  check_bool "pop 0" true (Ring.pop r = Some 0);
  check_bool "pop 1" true (Ring.pop r = Some 1);
  check_bool "pop 2" true (Ring.pop r = Some 2);
  Domain.join d;
  check_bool "producer finished" true (Atomic.get pushed)

let ring_pop_into () =
  let r = Ring.create ~capacity:8 in
  for i = 1 to 5 do
    ignore (Ring.push r i)
  done;
  let out = Array.make 3 0 in
  let n = Ring.pop_into r out in
  check_int "batch of 3" 3 n;
  check_bool "batch contents" true (Array.to_list out = [ 1; 2; 3 ]);
  let n = Ring.pop_into r out in
  check_int "batch of 2" 2 n;
  Ring.close r;
  check_int "after close+drain" 0 (Ring.pop_into r out)

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats_counters () =
  let s = Stats.create [ "a"; "b" ] in
  let ia = Stats.stage_index s "a" and ib = Stats.stage_index s "b" in
  Stats.record s ia ~bytes:100 ~ns:500;
  Stats.record s ia ~bytes:50 ~ns:1500;
  Stats.reject s ib ~bytes:10;
  check_int "a packets" 2 (Stats.stage_packets s ia);
  check_int "a bytes" 150 (Stats.stage_bytes s ia);
  check_int "b rejects" 1 (Stats.stage_rejects s ib);
  check_int "a mean" 1000 (Stats.stage_mean_ns s ia);
  (* [packets] counts every packet seen at a stage; rejects are a subset *)
  let p, b, rj = Stats.totals s in
  check_int "total packets" 3 p;
  check_int "total bytes" 160 b;
  check_int "total rejects" 1 rj

let stats_merge () =
  let a = Stats.create [ "x" ] and b = Stats.create [ "x" ] in
  Stats.record a 0 ~bytes:10 ~ns:100;
  Stats.record b 0 ~bytes:20 ~ns:300;
  Stats.merge_into ~into:a b;
  check_int "merged packets" 2 (Stats.stage_packets a 0);
  check_int "merged bytes" 30 (Stats.stage_bytes a 0);
  check_int "merged mean" 200 (Stats.stage_mean_ns a 0)

let stats_batch () =
  let s = Stats.create [ "x" ] in
  Stats.record_batch s 0 ~packets:10 ~bytes:1000 ~rejects:2 ~elapsed_ns:5000;
  check_int "batch packets" 10 (Stats.stage_packets s 0);
  check_int "batch rejects" 2 (Stats.stage_rejects s 0);
  (* to_text must render without raising *)
  check_bool "text" true (String.length (Stats.to_text s) > 0)

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let arq_data ~seq payload = Fm.Arq.to_bytes (Fm.Arq.Data { seq; payload })

let pipeline_accepts_and_rejects () =
  let p = Pipeline.create Fm.Arq.format in
  let good = arq_data ~seq:1 "hello" in
  check_bool "accept" true (Pipeline.process p good = Pipeline.Accepted);
  let corrupt = Bytes.of_string good in
  Bytes.set corrupt 4 (Char.chr (Char.code (Bytes.get corrupt 4) lxor 0xFF));
  (match Pipeline.process p (Bytes.to_string corrupt) with
  | Pipeline.Rejected_decode _ -> ()
  | _ -> Alcotest.fail "corrupt packet not rejected at decode");
  let s = Pipeline.stats p in
  let d = Stats.stage_index s "decode" in
  check_int "decode packets" 2 (Stats.stage_packets s d);
  check_int "decode rejects" 1 (Stats.stage_rejects s d)

let pipeline_verify_stage () =
  let p =
    Pipeline.create
      ~verify:(fun v -> Netdsl_format.View.get_int v "seq" <> 13L)
      Fm.Arq.format
  in
  check_bool "passes" true (Pipeline.process p (arq_data ~seq:1 "x") = Accepted);
  check_bool "vetoed" true (Pipeline.process p (arq_data ~seq:13 "x") = Rejected_verify);
  let s = Pipeline.stats p in
  check_int "verify rejects" 1 (Stats.stage_rejects s (Stats.stage_index s "verify"))

let pipeline_machine_flows () =
  (* The ARQ receiver machine accepts any data packet ("ok" event); with
     [flow_key] each seq value gets its own machine instance. *)
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let p =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine ~flow_key:"seq" Fm.Arq.format
  in
  for seq = 0 to 4 do
    check_bool "stepped" true (Pipeline.process p (arq_data ~seq "d") = Accepted)
  done;
  check_int "one machine per flow" 5 (Pipeline.flow_count p)

let pipeline_batch_matches_singles () =
  let rng = Prng.of_int 5 in
  let n = 200 in
  let pkts =
    Array.init n (fun i ->
        let good = arq_data ~seq:(i land 0xFF) "payload" in
        if i mod 3 = 0 then Netdsl_format.Gen.mutate rng ~flips:4 good else good)
  in
  let p1 = Pipeline.create Fm.Arq.format in
  Array.iter (fun pkt -> ignore (Pipeline.process p1 pkt)) pkts;
  let p2 =
    Pipeline.create
      ~config:{ Pipeline.default_config with batch = 64; ring_capacity = 64 }
      Fm.Arq.format
  in
  let i = ref 0 in
  while !i < n do
    let take = min 64 (n - !i) in
    Pipeline.process_batch p2 (Array.sub pkts !i take) take;
    i := !i + take
  done;
  let s1 = Pipeline.stats p1 and s2 = Pipeline.stats p2 in
  List.iteri
    (fun idx name ->
      check_int (name ^ " packets equal") (Stats.stage_packets s1 idx)
        (Stats.stage_packets s2 idx);
      check_int (name ^ " rejects equal") (Stats.stage_rejects s1 idx)
        (Stats.stage_rejects s2 idx))
    Pipeline.stage_names

let pipeline_ring_driven () =
  let p = Pipeline.create Fm.Arq.format in
  let consumer = Domain.spawn (fun () -> Pipeline.run p) in
  for i = 1 to 500 do
    check_bool "fed" true (Pipeline.feed p (arq_data ~seq:(i land 0xFF) "zz"))
  done;
  Pipeline.close_input p;
  Domain.join consumer;
  let s = Pipeline.stats p in
  check_int "all decoded" 500 (Stats.stage_packets s (Stats.stage_index s "decode"))

let pipeline_responder () =
  (* Respond to every data packet with the matching Ack; check the replies
     are valid ARQ packets with the right seq. *)
  let acks = ref [] in
  let module V = Netdsl_format.Value in
  let p =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~respond:(fun v _ ->
        if Netdsl_format.View.get_int v "kind" = 0L then
          let seq = Int64.to_int (Netdsl_format.View.get_int v "seq") in
          Some
            (V.record
               [ ("seq", V.int seq); ("kind", V.int 1); ("payload", V.bytes "") ])
        else None)
      ~on_response:(fun s -> acks := s :: !acks)
      Fm.Arq.format
  in
  check_bool "data accepted" true (Pipeline.process p (arq_data ~seq:7 "pp") = Accepted);
  check_int "one ack" 1 (List.length !acks);
  match Fm.Arq.of_bytes (List.hd !acks) with
  | Ok (Fm.Arq.Ack { seq }) -> check_int "ack seq" 7 seq
  | Ok _ -> Alcotest.fail "expected an ack"
  | Error e -> Alcotest.failf "ack does not decode: %s" e

let pipeline_patch_responder () =
  (* The in-place fast path: answer each data packet by flipping its kind
     field to Ack and truncating nothing — the reply must be exactly what
     the value-building responder produces. *)
  let acks = ref [] in
  let p =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~respond_patch:(fun v _ ->
        if Netdsl_format.View.get_int v "kind" = 0L then Some [ ("kind", 1L) ]
        else None)
      ~on_response:(fun s -> acks := s :: !acks)
      Fm.Arq.format
  in
  check_bool "data accepted" true
    (Pipeline.process p (arq_data ~seq:7 "pp") = Accepted);
  check_bool "ack passes through unanswered" true
    (Pipeline.process p (Fm.Arq.to_bytes (Fm.Arq.Ack { seq = 3 })) = Accepted);
  check_int "one ack" 1 (List.length !acks);
  (let module V = Netdsl_format.Value in
   match Netdsl_format.Codec.decode Fm.Arq.format (List.hd !acks) with
   | Ok reply ->
     check_int "reply kind" 1 (V.get_int reply "kind");
     check_int "reply seq" 7 (V.get_int reply "seq");
     Alcotest.(check string) "payload kept" "pp" (V.get_bytes reply "payload")
   | Error e ->
     Alcotest.failf "patched reply does not decode: %s"
       (Netdsl_format.Codec.error_to_string e));
  (* an unpatchable field is a clean encode-stage reject, not a crash *)
  let p2 =
    Pipeline.create
      ~classify:(fun _ -> Some "ok")
      ~machine:(Netdsl_proto.Arq_fsm.receiver ~seq_bits:8)
      ~respond_patch:(fun _ _ -> Some [ ("chk", 0L) ])
      Fm.Arq.format
  in
  check_bool "derived field rejected at encode" true
    (Pipeline.process p2 (arq_data ~seq:1 "x") = Rejected_encode)

let pipeline_flow_eviction () =
  (* max_flows bounds the table and eviction is oldest-idle: with room for
     3 flows, touching flow 0 must protect it from the next eviction. *)
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let p =
    Pipeline.create
      ~config:{ Pipeline.default_config with max_flows = 3 }
      ~classify:(fun _ -> Some "ok")
      ~machine ~flow_key:"seq" Fm.Arq.format
  in
  let step seq =
    check_bool "stepped" true (Pipeline.process p (arq_data ~seq "d") = Accepted)
  in
  step 0; step 1; step 2;
  check_int "table full" 3 (Pipeline.flow_count p);
  check_int "nothing evicted yet" 0 (Stats.evicted_flows (Pipeline.stats p));
  step 0; (* touch: flow 0 becomes most recent, flow 1 the oldest idle *)
  step 3; (* must evict flow 1, not flow 0 *)
  check_int "still bounded" 3 (Pipeline.flow_count p);
  check_int "one eviction" 1 (Stats.evicted_flows (Pipeline.stats p));
  step 0; (* if LRU ignored the touch, flow 0 would be gone and this would
             mint a new instance, evicting again *)
  check_int "touched flow survived" 1 (Stats.evicted_flows (Pipeline.stats p))

let pipeline_eviction_churn () =
  (* Adversarial churn over a max_flows-sized table: 64 flows hammered
     through an 8-slot table, interleaved with malformed packets.  A
     reference LRU model predicts, for every accepted packet, the exact
     per-flow counter the machine instance must hold — so any of the three
     failure modes (eviction count drifting, a mutant touching the table,
     an evicted flow resuming from stale state instead of a fresh
     instance) shows up as a concrete mismatch. *)
  let module M = Netdsl_fsm.Machine in
  let module Step = Netdsl_fsm.Step in
  let max_flows = 8 and n_flows = 64 in
  let machine =
    M.machine ~name:"flow_counter" ~states:[ "s" ] ~events:[ "ok" ]
      ~registers:[ M.reg "n" ~init:0 ~domain:65536 ]
      ~initial:"s"
      [ M.trans ~label:"COUNT"
          ~actions:[ M.Assign ("n", M.Add (M.Reg "n", M.Int 1)) ]
          ~src:"s" ~event:"ok" ~dst:"s" () ]
  in
  let observed = ref None in
  let p =
    Pipeline.create
      ~config:{ Pipeline.default_config with max_flows }
      ~classify:(fun _ -> Some "ok")
      ~machine ~flow_key:"seq"
      ~respond:(fun view inst ->
        observed :=
          Some
            ( Netdsl_format.View.get_int view "seq",
              Step.register_by_name inst "n" );
        None)
      Fm.Arq.format
  in
  (* reference model: seq -> count, plus MRU-first recency order *)
  let counts = Hashtbl.create 16 in
  let order = ref [] in
  let evictions = ref 0 in
  let model_touch seq =
    match Hashtbl.find_opt counts seq with
    | Some c ->
      Hashtbl.replace counts seq (c + 1);
      order := seq :: List.filter (fun s -> s <> seq) !order;
      c + 1
    | None ->
      if Hashtbl.length counts = max_flows then begin
        match List.rev !order with
        | lru :: _ ->
          Hashtbl.remove counts lru;
          order := List.filter (fun s -> s <> lru) !order;
          incr evictions
        | [] -> assert false
      end;
      Hashtbl.replace counts seq 1;
      order := seq :: !order;
      1
  in
  let rng = Prng.of_int 20260806 in
  for i = 1 to 2000 do
    if Prng.int rng 4 = 0 then begin
      (* malformed packets must bounce at decode without touching flows *)
      match Pipeline.process p "\xff" with
      | Rejected_decode _ -> ()
      | _ -> Alcotest.fail "garbage survived decode"
    end
    else begin
      let seq =
        match Prng.int rng 3 with
        | 0 -> i mod n_flows (* sweep: steady eviction pressure *)
        | 1 -> Prng.int rng n_flows (* random revisits *)
        | _ -> Prng.int rng max_flows (* hot set that should stay resident *)
      in
      let expected = model_touch seq in
      observed := None;
      check_bool "accepted" true (Pipeline.process p (arq_data ~seq "d") = Accepted);
      match !observed with
      | None -> Alcotest.fail "responder not consulted for accepted packet"
      | Some (got_seq, got_n) ->
        check_int "responder saw the packet's flow" seq (Int64.to_int got_seq);
        if got_n <> expected then
          Alcotest.failf
            "flow %d: instance register %d, model %d — stale or lost state after \
             %d evictions"
            seq got_n expected !evictions
    end
  done;
  check_int "table stayed bounded" max_flows (Pipeline.flow_count p);
  check_int "evictions match the model" !evictions
    (Stats.evicted_flows (Pipeline.stats p));
  check_int "live flows match the model" (Hashtbl.length counts)
    (Pipeline.flow_count p)

let pipeline_classify_id_fast_path () =
  (* The id-returning classifier: negative = pass-through, a valid id
     fires, and the opt-in hook sees the reconstructed transition. *)
  let machine = Netdsl_proto.Arq_fsm.receiver ~seq_bits:8 in
  let labels = ref [] in
  let ok_id = ref (-1) in
  let p =
    Pipeline.create
      ~classify_id:(fun v ->
        if Netdsl_format.View.get_int v "kind" = 0L then !ok_id else -1)
      ~machine ~flow_key:"seq"
      ~on_transition:(fun tr -> labels := tr.Netdsl_fsm.Machine.t_label :: !labels)
      Fm.Arq.format
  in
  let plan = Option.get (Pipeline.machine_plan p) in
  ok_id := Netdsl_fsm.Step.event_id plan "ok";
  check_bool "resolved" true (!ok_id >= 0);
  check_bool "data fires" true (Pipeline.process p (arq_data ~seq:1 "x") = Accepted);
  check_bool "ack passes through" true
    (Pipeline.process p (Fm.Arq.to_bytes (Fm.Arq.Ack { seq = 1 })) = Accepted);
  check_int "one flow (ack passed through)" 1 (Pipeline.flow_count p);
  check_bool "hook saw RECV" true (!labels = [ "RECV" ]);
  (* an id the plan does not know is refused at the step stage *)
  let p2 =
    Pipeline.create
      ~classify_id:(fun _ -> 99)
      ~machine Fm.Arq.format
  in
  check_bool "unknown id rejected" true
    (Pipeline.process p2 (arq_data ~seq:1 "x") = Rejected_step)

(* ------------------------------------------------------------------ *)
(* Shard *)

let shard_all_packets_one_worker_per_flow () =
  let config = { Shard.workers = 2; pipeline = Pipeline.default_config } in
  match Shard.create ~config ~key:"seq" Fm.Arq.format with
  | Error e -> Alcotest.failf "shard create: %s" e
  | Ok sh ->
    Shard.start sh;
    let n = 2000 in
    for i = 1 to n do
      ignore (Shard.feed sh (arq_data ~seq:(i land 0xFF) "payload"))
    done;
    ignore (Shard.feed sh "" (* too short to carry the key: unkeyed *));
    Shard.drain sh;
    let s = Shard.stats sh in
    let d = Stats.stage_index s "decode" in
    (* n valid packets plus the short unkeyed one, all seen at decode *)
    check_int "every packet decoded" (n + 1) (Stats.stage_packets s d);
    check_int "short packet rejected" 1 (Stats.stage_rejects s d);
    check_int "unkeyed counted" 1 (Shard.unkeyed sh);
    (* both workers saw traffic: 256 flows over 2 workers *)
    let per_worker =
      Array.map
        (fun p ->
          let st = Pipeline.stats p in
          Stats.stage_packets st (Stats.stage_index st "decode"))
        (Shard.pipelines sh)
    in
    Array.iter (fun c -> check_bool "worker busy" true (c > 0)) per_worker;
    check_int "workers sum to total" (n + 1) (Array.fold_left ( + ) 0 per_worker)

let shard_key_must_be_fixed_offset () =
  (* "payload" sits after a variable-length region boundary? For ARQ all
     header fields are fixed; use a field that does not exist instead. *)
  match Shard.create ~key:"nope" Fm.Arq.format with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key_extractor accepted a missing field"

(* ------------------------------------------------------------------ *)

let suite =
  [ ( "engine.ring",
      [ Alcotest.test_case "fifo" `Quick ring_fifo;
        Alcotest.test_case "close drains" `Quick ring_close_drains;
        Alcotest.test_case "blocking producer" `Quick ring_blocking_producer;
        Alcotest.test_case "pop_into batches" `Quick ring_pop_into ] );
    ( "engine.stats",
      [ Alcotest.test_case "counters" `Quick stats_counters;
        Alcotest.test_case "merge" `Quick stats_merge;
        Alcotest.test_case "batch record" `Quick stats_batch ] );
    ( "engine.pipeline",
      [ Alcotest.test_case "accept and reject" `Quick pipeline_accepts_and_rejects;
        Alcotest.test_case "verify stage" `Quick pipeline_verify_stage;
        Alcotest.test_case "machine per flow" `Quick pipeline_machine_flows;
        Alcotest.test_case "batch = singles" `Quick pipeline_batch_matches_singles;
        Alcotest.test_case "ring-driven run" `Quick pipeline_ring_driven;
        Alcotest.test_case "responder" `Quick pipeline_responder;
        Alcotest.test_case "patch responder" `Quick pipeline_patch_responder;
        Alcotest.test_case "flow eviction" `Quick pipeline_flow_eviction;
        Alcotest.test_case "eviction under adversarial churn" `Quick
          pipeline_eviction_churn;
        Alcotest.test_case "classify_id fast path" `Quick
          pipeline_classify_id_fast_path ] );
    ( "engine.shard",
      [ Alcotest.test_case "shards cover all packets" `Quick
          shard_all_packets_one_worker_per_flow;
        Alcotest.test_case "bad key rejected" `Quick shard_key_must_be_fixed_offset ] )
  ]
