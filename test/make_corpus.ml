(* Regenerates the committed golden corpus under test/corpus/: for every
   shipped format one well-formed wire sample and one canonically
   malformed one (the first corruption, in a fixed candidate order, that
   the codec rejects); for every catalogue stack the chained golden
   packets plus canonical cross-layer malformed variants (truncated
   mid-chain, demux mismatch, outer length lie).  Deterministic: fixed
   seeds, so re-running produces identical files.

     dune exec test/make_corpus.exe            (writes into test/corpus)
     dune exec test/make_corpus.exe -- DIR     (writes into DIR)
*)

module Codec = Netdsl_format.Codec
module Desc = Netdsl_format.Desc
module Stack = Netdsl_format.Stack
module Hexdump = Netdsl_util.Hexdump
module Prng = Netdsl_util.Prng
module Corpus = Netdsl_check.Corpus
module Mutate = Netdsl_check.Mutate
module Fm = Netdsl_formats

let rejects fmt pkt =
  match Codec.decode fmt pkt with Ok _ -> false | Error _ -> true

(* Candidate corruptions, mildest first; the malformed golden is the first
   one the codec refuses. *)
let malformed_of fmt valid =
  let n = String.length valid in
  let set i c =
    let b = Bytes.of_string valid in
    Bytes.set b i c;
    Bytes.to_string b
  in
  let candidates =
    [ (if n > 0 then String.sub valid 0 (n - 1) else valid);
      (if n > 0 then set (n - 1) (Char.chr (Char.code valid.[n - 1] lxor 0xff))
       else valid);
      (if n > 0 then set 0 (Char.chr (Char.code valid.[0] lxor 0x80)) else valid);
      valid ^ "\xff\xff\xff\xff";
      String.make (max 1 n) '\x00';
      (* permissive formats (no checksum, trailing payload absorbs bytes):
         make an interior count/length field lie, then truncate hard *)
      (if n > 5 then set 5 '\xff' else valid);
      (if n > 1 then String.sub valid 0 (n / 2) else valid);
      (if n > 1 then String.sub valid 0 1 else valid) ]
  in
  match List.find_opt (rejects fmt) candidates with
  | Some m -> m
  | None ->
    Printf.eprintf "no corruption of %s rejects — corpus would be vacuous\n"
      fmt.Desc.format_name;
    exit 1

(* Cross-layer corruptions of a chained packet, mildest first; each must
   make the fused chain (and therefore the sequential reference — the
   oracle guarantees they agree) reject.  [windows] are the accepting
   per-layer byte windows of [valid]. *)
let chain_malformed stack plan valid =
  let seq = Stack.Seq.create plan in
  (match Stack.Seq.decode seq valid with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "chained golden for %s does not decode: %s\n"
      (Stack.name stack) e;
    exit 1);
  let n = Stack.layer_count plan in
  let windows =
    Array.init n (fun i -> (Stack.Seq.layer_off seq i, Stack.Seq.layer_len seq i))
  in
  (* the demux slot of carrier layer [i], shifted to its chained offset *)
  let demux_lie i value =
    match Stack.layer_select stack i with
    | None -> None
    | Some (field, _) -> (
      let slots = Mutate.slots (Mutate.plan (Stack.layer_format stack i)) in
      match
        List.find_opt (fun s -> String.equal s.Mutate.s_name field) slots
      with
      | None -> None
      | Some s ->
        let off, _ = windows.(i) in
        Some
          [ Mutate.Field_set
              { name = s.Mutate.s_name; bit_off = s.Mutate.s_bit_off + (8 * off);
                bits = s.Mutate.s_bits; endian = s.Mutate.s_endian; value } ])
  in
  (* an outer length-class slot undercounting the layers it carries *)
  let length_lie i =
    let slots = Mutate.slots (Mutate.plan (Stack.layer_format stack i)) in
    match
      List.find_opt (fun s -> s.Mutate.s_kind = Mutate.Computed) slots
    with
    | None -> None
    | Some s ->
      let off, _ = windows.(i) in
      let header = fst windows.(i + 1) - off in
      Some
        [ Mutate.Field_set
            { name = s.Mutate.s_name; bit_off = s.Mutate.s_bit_off + (8 * off);
              bits = s.Mutate.s_bits; endian = s.Mutate.s_endian;
              value = Int64.of_int (max 0 (header - 1)) } ]
  in
  let inner_off = fst windows.(n - 1) in
  let candidates =
    [ (* truncated mid-chain: the innermost header cut short *)
      Some [ Mutate.Truncate (inner_off + 1) ];
      (* demux mismatch on the outermost edge *)
      demux_lie 0 0xdeadL;
      (* outer length lying about the inner layers *)
      length_lie 0 ]
    @ List.init (n - 1) (fun i -> demux_lie i 0L)
  in
  let malformed =
    List.filter_map
      (fun ops ->
        match ops with
        | None -> None
        | Some ops ->
          let m = Mutate.apply ops valid in
          if (not (Stack.run plan m)) && not (String.equal m valid) then Some m
          else None)
      candidates
  in
  if malformed = [] then begin
    Printf.eprintf "no cross-layer corruption of %s rejects — corpus would be vacuous\n"
      (Stack.name stack);
    exit 1
  end;
  malformed

let write_file path lines =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, fmt) ->
      let gen =
        match Corpus.generator fmt with
        | Some g -> g
        | None ->
          Printf.eprintf "format %s has no generator\n" name;
          exit 1
      in
      let valid = gen (Prng.of_int 20260806) in
      assert (not (rejects fmt valid));
      let malformed = malformed_of fmt valid in
      write_file
        (Filename.concat dir (name ^ "-valid.hex"))
        [ Printf.sprintf "# %s: well-formed golden wire sample" name;
          Hexdump.to_hex valid ];
      write_file
        (Filename.concat dir (name ^ "-malformed.hex"))
        [ Printf.sprintf "# %s: canonical malformed sample (codec rejects)" name;
          Hexdump.to_hex malformed ];
      Printf.printf "%-10s valid %d bytes, malformed %d bytes\n" name
        (String.length valid)
        (String.length malformed))
    Corpus.shipped;
  List.iter
    (fun (name, stack) ->
      let plan =
        match Stack.compile stack with
        | Ok p -> p
        | Error e ->
          Printf.eprintf "stack %s does not fuse: %s\n" name e;
          exit 1
      in
      let valid = Corpus.stack_seeds stack in
      if valid = [] then begin
        Printf.eprintf "stack %s has no chained seeds\n" name;
        exit 1
      end;
      let malformed = chain_malformed stack plan (List.hd valid) in
      write_file
        (Filename.concat dir (name ^ "-chain-valid.hex"))
        (Printf.sprintf "# %s: well-formed chained packets (every layer decodes)"
           name
        :: List.map Hexdump.to_hex valid);
      write_file
        (Filename.concat dir (name ^ "-chain-malformed.hex"))
        (Printf.sprintf
           "# %s: cross-layer malformed chains (truncated mid-chain, demux \
            mismatch, outer length lie)"
           name
        :: List.map Hexdump.to_hex malformed);
      Printf.printf "%-10s %d chained packets, %d malformed chains\n" name
        (List.length valid) (List.length malformed))
    Fm.Stacks.all
