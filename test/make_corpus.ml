(* Regenerates the committed golden corpus under test/corpus/: for every
   shipped format one well-formed wire sample and one canonically
   malformed one (the first corruption, in a fixed candidate order, that
   the codec rejects).  Deterministic: fixed seeds, so re-running produces
   identical files.

     dune exec test/make_corpus.exe            (writes into test/corpus)
     dune exec test/make_corpus.exe -- DIR     (writes into DIR)
*)

module Codec = Netdsl_format.Codec
module Desc = Netdsl_format.Desc
module Hexdump = Netdsl_util.Hexdump
module Prng = Netdsl_util.Prng
module Corpus = Netdsl_check.Corpus

let rejects fmt pkt =
  match Codec.decode fmt pkt with Ok _ -> false | Error _ -> true

(* Candidate corruptions, mildest first; the malformed golden is the first
   one the codec refuses. *)
let malformed_of fmt valid =
  let n = String.length valid in
  let set i c =
    let b = Bytes.of_string valid in
    Bytes.set b i c;
    Bytes.to_string b
  in
  let candidates =
    [ (if n > 0 then String.sub valid 0 (n - 1) else valid);
      (if n > 0 then set (n - 1) (Char.chr (Char.code valid.[n - 1] lxor 0xff))
       else valid);
      (if n > 0 then set 0 (Char.chr (Char.code valid.[0] lxor 0x80)) else valid);
      valid ^ "\xff\xff\xff\xff";
      String.make (max 1 n) '\x00';
      (* permissive formats (no checksum, trailing payload absorbs bytes):
         make an interior count/length field lie, then truncate hard *)
      (if n > 5 then set 5 '\xff' else valid);
      (if n > 1 then String.sub valid 0 (n / 2) else valid);
      (if n > 1 then String.sub valid 0 1 else valid) ]
  in
  match List.find_opt (rejects fmt) candidates with
  | Some m -> m
  | None ->
    Printf.eprintf "no corruption of %s rejects — corpus would be vacuous\n"
      fmt.Desc.format_name;
    exit 1

let write_file path lines =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, fmt) ->
      let gen =
        match Corpus.generator fmt with
        | Some g -> g
        | None ->
          Printf.eprintf "format %s has no generator\n" name;
          exit 1
      in
      let valid = gen (Prng.of_int 20260806) in
      assert (not (rejects fmt valid));
      let malformed = malformed_of fmt valid in
      write_file
        (Filename.concat dir (name ^ "-valid.hex"))
        [ Printf.sprintf "# %s: well-formed golden wire sample" name;
          Hexdump.to_hex valid ];
      write_file
        (Filename.concat dir (name ^ "-malformed.hex"))
        [ Printf.sprintf "# %s: canonical malformed sample (codec rejects)" name;
          Hexdump.to_hex malformed ];
      Printf.printf "%-10s valid %d bytes, malformed %d bytes\n" name
        (String.length valid)
        (String.length malformed))
    Corpus.shipped
