Layered stacks: an ordered chain of formats where a demux field of each
carrier routes to the next layer and the trailing payload bytes carry
it.  The CLI decodes, fuzzes and serves them through the fused plan
compiled by lib/format/stack.ml.  A three-layer chain on the spot:

  $ cat > stacked.ndsl <<'SPEC'
  > format outer {
  >   proto   : uint8 "Proto";
  >   payload : bytes[..];
  > }
  > format mid {
  >   kind : uint16 "Kind";
  >   body : bytes[..];
  > }
  > format inner {
  >   tag : const uint8 = 0x2a "Tag";
  >   v   : uint8 "V";
  > }
  > stack demo {
  >   outer select proto = 7;
  >   mid as middle select kind in { 1, 2 } via body;
  >   inner;
  > }
  > SPEC

check reports the chain and proves it fuses:

  $ netdsl check stacked.ndsl
  format outer: ok (at least 8 bits)
  format mid: ok (at least 16 bits)
  format inner: ok (exactly 16 bits)
  stack demo: ok (3 layers: outer -> middle -> inner)

The canonical printer round-trips stack declarations:

  $ netdsl print stacked.ndsl | sed -n '/^stack/,$p'
  stack demo {
    outer select proto = 7;
    mid as middle select kind in { 1, 2 } via body;
    inner;
  }

Chained decode walks every layer and prints each one's fields with its
byte window (outer proto 7 -> middle kind 1 -> inner tag 0x2a, v 5):

  $ netdsl decode stacked.ndsl --stack demo 0700012a05
  -- outer (outer) bytes [0, 5) --
  {proto = 7; payload = 0x00012a05}
  -- middle (mid) bytes [1, 5) --
  {kind = 1; body = 0x2a05}
  -- inner (inner) bytes [3, 5) --
  {tag = 42; v = 5}

  $ netdsl decode stacked.ndsl --stack demo 0700012a05 --json
  { "outer": {"proto":7,"payload":"hex:00012a05"}, "middle": {"kind":1,"body":"hex:2a05"}, "inner": {"tag":42,"v":5} }

A demux mismatch is a clear exit-1 failure naming the layer whose edge
selects no next format:

  $ netdsl decode stacked.ndsl --stack demo 0600012a05
  netdsl: invalid layered packet: layer outer: proto = 6 selects no next layer
  [1]

  $ netdsl decode stacked.ndsl --stack demo 0700032a05
  netdsl: invalid layered packet: layer middle: kind = 3 selects no next layer
  [1]

So is an inner header truncated by the outer payload, or an inner
constant smashed under a perfectly valid carrier:

  $ netdsl decode stacked.ndsl --stack demo 0700012a
  netdsl: invalid layered packet: layer inner: v: truncated input: need 8 bits, have 0
  [1]

  $ netdsl decode stacked.ndsl --stack demo 070001ff05
  netdsl: invalid layered packet: layer inner: tag: constant mismatch: expected 42, found 255
  [1]

An unknown stack name lists what the file defines:

  $ netdsl decode stacked.ndsl --stack nope 0700012a05
  no stack named "nope" (have: demo)
  [1]

Fuzzing a stack diffs the fused chained decode against the sequential
per-layer reference on every cross-layer mutant (--stack selects just
this target):

  $ netdsl fuzz stacked.ndsl --stack demo --seed 7 --iters 500
  stack demo: 504 mutants (29 chained, 475 rejected) — fused = sequential
  fuzzed 0 format(s), 1 stack(s), 0 machine(s): no disagreements

The chain leg must be able to catch a real defect: --plant-bug inverts
the fused chain's accept verdict (a flipped chained bounds check) and
the oracle reports it on the very first chained seed:

  $ netdsl fuzz stacked.ndsl --stack demo --seed 7 --iters 50 --plant-bug
  FUZZ DISAGREEMENT (wire)
  format: demo
  seed: 7
  check: chain
  seed-packet: 0700012a86
  input: 0700012a00 (5 bytes)
  detail: fused chain rejects a packet the sequential decode accepts
  netdsl: fuzzing found a disagreement
  [1]

Serving a stack is fused-only — the staged pipeline has no chained
tier, so the combination is refused before any socket is bound:

  $ netdsl serve stacked.ndsl --stack demo --mode staged --udp 0
  netdsl: --stack serves through the fused chain only (drop --mode staged)
  [1]

Patches on a stacked server are qualified layer.field names, validated
against the owning layer's format before binding:

  $ netdsl serve stacked.ndsl --stack demo --udp 0 --patch v=9
  netdsl: --patch "v": patches on a stack are qualified "layer.field" (layers: outer, middle, inner)
  [1]

  $ netdsl serve stacked.ndsl --stack demo --udp 0 --patch nope.v=9
  netdsl: unknown layer "nope" in --patch (have: outer, middle, inner)
  [1]

  $ netdsl serve stacked.ndsl --stack demo --udp 0 --patch inner.zz=9
  netdsl: unknown field "zz" in layer inner (have: tag, v)
  [1]

The green path binds, reports the chain it serves, and exits after zero
packets:

  $ netdsl serve stacked.ndsl --stack demo --udp 0 --max-packets 0 --patch inner.v=9 | sed -E 's/127\.0\.0\.1:[0-9]+/127.0.0.1:PORT/'
  serving stack demo (outer -> middle -> inner) on udp 127.0.0.1:PORT (fused mode)
  processed 0 packet(s)
  udp 127.0.0.1:PORT
    rx 0 pkts / 0 B   tx 0 pkts / 0 B   drops 0
    send-eagain 0   short-writes 0   tx-errors 0   hwm drain 0 pkts, datagram 0 B
    syscalls 0   batched-rx 0   batched-tx 0   hwm 0 pkts/syscall
  event loop
    rx 0 pkts / 0 B   tx 0 pkts / 0 B   drops 0
    send-eagain 0   short-writes 0   tx-errors 0   hwm drain 0 pkts, datagram 0 B
    syscalls 0   batched-rx 0   batched-tx 0   hwm 0 pkts/syscall
  stage         packets          bytes   rejects       mean     ~p50     ~p99
  decode              0              0         0        0ns      0ns      0ns
  verify              0              0         0        0ns      0ns      0ns
  step                0              0         0        0ns      0ns      0ns
  encode              0              0         0        0ns      0ns      0ns
