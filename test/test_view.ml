(* Equivalence of the zero-copy [View] decoder and the allocating [Codec]:
   for every shipped format and any input — valid, structure-aware mutant,
   bit-flipped, truncated, or garbage — both decoders must agree on the
   accept/reject verdict, and on acceptance the view must materialise
   exactly the codec's value.  This is the safety argument for using the
   zero-copy path in the engine: it surfaces no field the full validator
   would have rejected.

   The adversarial inputs come from [Netdsl_check]: corpus seeds mutated
   by the structure-aware fuzzer, judged by the differential oracle
   (which also cross-checks Emit and the Pipeline on the same bytes).
   The ad-hoc IPv4/TCP generators that used to live here are now
   [Netdsl_check.Corpus.value_generator]. *)

open Netdsl_format
module Fm = Netdsl_formats
module Prng = Netdsl_util.Prng
module Ck = Netdsl_check

let trials = 200

let all_formats = Ck.Corpus.shipped

let expect_agreement name oracle ~what pkt =
  match Ck.Oracle.check oracle pkt with
  | Ok () -> ()
  | Error d ->
    Alcotest.failf "%s (%s): %s" name what (Ck.Oracle.disagreement_to_string d)

(* Valid packets, structure-aware mutants and random truncations, all
   through the differential oracle. *)
let equivalence_case (name, fmt) =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Prng.of_int 20260806 in
      let oracle = Ck.Oracle.create fmt in
      let corpus = Ck.Corpus.make fmt rng in
      let plan = Ck.Mutate.plan fmt in
      Array.iter
        (fun s -> expect_agreement name oracle ~what:"corpus seed" s)
        (Ck.Corpus.seeds corpus);
      for _ = 1 to trials do
        let seed_pkt = Ck.Corpus.pick corpus rng in
        let mutant =
          Ck.Mutate.apply (Ck.Mutate.random plan rng seed_pkt) seed_pkt
        in
        expect_agreement name oracle ~what:"mutant" mutant;
        expect_agreement name oracle ~what:"bit flips"
          (Gen.mutate rng ~flips:(1 + Prng.int rng 8) seed_pkt);
        if String.length seed_pkt > 0 then
          expect_agreement name oracle ~what:"truncated"
            (Gen.truncate_random rng seed_pkt)
      done)

(* The view must also reject garbage the way the codec does, not crash. *)
let random_garbage () =
  let rng = Prng.of_int 4096 in
  List.iter
    (fun (name, fmt) ->
      let oracle = Ck.Oracle.create fmt in
      for _ = 1 to 100 do
        let len = Prng.int rng 64 in
        let s = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
        expect_agreement name oracle ~what:"garbage" s
      done)
    all_formats

(* Reuse: a view that just rejected must decode the next packet cleanly. *)
let reuse_after_reject () =
  let rng = Prng.of_int 7 in
  let view = View.create Fm.Arq.format in
  let good = Gen.generate_bytes rng Fm.Arq.format in
  (match View.decode view good with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid arq rejected: %s" (Codec.error_to_string e));
  let before = View.to_value view in
  (match View.decode view (Gen.mutate rng ~flips:4 good) with
  | Ok () -> () (* a flip can land in the payload and keep the packet valid *)
  | Error _ -> ());
  (match View.decode view good with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "valid arq rejected after reuse: %s" (Codec.error_to_string e));
  Alcotest.(check bool)
    "same value after pool reuse" true
    (Value.equal before (View.to_value view))

(* Windowed decode: the view validates a sub-range of a larger buffer
   in place, checksums included. *)
let windowed_decode () =
  let rng = Prng.of_int 11 in
  let pkt = Gen.generate_bytes rng Fm.Arq.format in
  let buf = "HDR" ^ pkt ^ "TRAILER" in
  let view = View.create Fm.Arq.format in
  (match View.decode view ~off:3 ~len:(String.length pkt) buf with
  | Ok () -> ()
  | Error e -> Alcotest.failf "windowed decode failed: %s" (Codec.error_to_string e));
  let direct = Codec.decode_exn Fm.Arq.format pkt in
  Alcotest.(check bool)
    "windowed value matches" true
    (Value.equal direct (View.to_value view))

let accessors () =
  let pkt =
    match Fm.Arq.to_bytes (Fm.Arq.Data { seq = 42; payload = "hello" }) with
    | s -> s
  in
  let view = View.create Fm.Arq.format in
  (match View.decode view pkt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e));
  Alcotest.(check int64) "seq" 42L (View.get_int view "seq");
  Alcotest.(check string) "payload" "hello" (View.get_bytes view "payload");
  Alcotest.(check bool) "missing find_int" true (View.find_int view "nope" = None)

let key_extraction () =
  let pkt =
    match Fm.Arq.to_bytes (Fm.Arq.Data { seq = 99; payload = "x" }) with
    | s -> s
  in
  match View.key_extractor Fm.Arq.format "seq" with
  | Error e -> Alcotest.failf "key_extractor: %s" e
  | Ok kx ->
    Alcotest.(check bool) "key value" true (View.extract_key kx pkt = Some 99)

let suite =
  [ ( "view.equivalence",
      List.map equivalence_case all_formats
      @ [ Alcotest.test_case "random garbage" `Quick random_garbage ] );
    ( "view.behaviour",
      [ Alcotest.test_case "pool reuse after reject" `Quick reuse_after_reject;
        Alcotest.test_case "windowed decode" `Quick windowed_decode;
        Alcotest.test_case "accessors" `Quick accessors;
        Alcotest.test_case "key extraction" `Quick key_extraction ] ) ]
