(* Equivalence of the zero-copy [View] decoder and the allocating [Codec]:
   for every shipped format and any input — valid, bit-flipped, or
   truncated — both decoders must agree on the accept/reject verdict, and
   on acceptance the view must materialise exactly the codec's value.
   This is the safety argument for using the zero-copy path in the engine:
   it surfaces no field the full validator would have rejected. *)

open Netdsl_format
module Fm = Netdsl_formats
module Prng = Netdsl_util.Prng

let trials = 200

(* Formats whose derived-field dependencies Gen cannot invert get a
   handcrafted generator instead. *)
let gen_ipv4 rng =
  let payload = String.make (Prng.int rng 400) 'p' in
  let options = String.make (4 * Prng.int rng 3) 'o' in
  let v =
    Fm.Ipv4.make ~identification:(Prng.int rng 0x10000)
      ~ttl:(1 + Prng.int rng 255) ~options ~protocol:Fm.Ipv4.protocol_udp
      ~source:(Fm.Ipv4.addr_of_string "10.0.0.1")
      ~destination:(Fm.Ipv4.addr_of_string "10.0.0.2")
      ~payload ()
  in
  Codec.encode_exn Fm.Ipv4.format v

let gen_tcp rng =
  let payload = String.make (Prng.int rng 200) 'p' in
  let options = String.make (4 * Prng.int rng 3) '\x01' in
  let v =
    Fm.Tcp.make ~syn:(Prng.bool rng) ~ack:(Prng.bool rng)
      ~window:(Prng.int rng 0x10000) ~options ~src_port:(Prng.int rng 0x10000)
      ~dst_port:(Prng.int rng 0x10000)
      ~seq_number:(Int64.of_int (Prng.int rng 1000000))
      ~payload ()
  in
  Codec.encode_exn Fm.Tcp.format v

let all_formats =
  [ ("arp", Fm.Arp.format, None);
    ("arq", Fm.Arq.format, None);
    ("dns", Fm.Dns.format, None);
    ("ethernet", Fm.Ethernet.format, None);
    ("icmp", Fm.Icmp.format, None);
    ("ipv4", Fm.Ipv4.format, Some gen_ipv4);
    ("pcap", Fm.Pcap.format, None);
    ("tcp", Fm.Tcp.format, Some gen_tcp);
    ("tftp", Fm.Tftp.format, None);
    ("tlv", Fm.Tlv.format, None);
    ("udp", Fm.Udp.format, None) ]

let sample rng fmt custom =
  match custom with
  | Some g -> g rng
  | None -> Gen.generate_bytes rng fmt

(* One packet through both decoders; fails the test on any disagreement. *)
let check_agree name fmt view packet ~what =
  let codec_r = Codec.decode fmt packet in
  let view_r = View.decode view packet in
  match (codec_r, view_r) with
  | Ok cv, Ok () ->
    let vv = View.to_value view in
    if not (Value.equal cv vv) then
      Alcotest.failf "%s (%s): decoders accept but values differ\ncodec: %s\nview:  %s"
        name what (Value.to_string cv) (Value.to_string vv)
  | Error _, Error _ -> ()
  | Ok _, Error e ->
    Alcotest.failf "%s (%s): codec accepts, view rejects: %s" name what
      (Codec.error_to_string e)
  | Error e, Ok () ->
    Alcotest.failf "%s (%s): view accepts, codec rejects: %s" name what
      (Codec.error_to_string e)

let equivalence_case (name, fmt, custom) =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Prng.of_int 20260806 in
      let view = View.create fmt in
      for _ = 1 to trials do
        let packet = sample rng fmt custom in
        check_agree name fmt view packet ~what:"valid";
        check_agree name fmt view
          (Gen.mutate rng ~flips:(1 + Prng.int rng 8) packet)
          ~what:"mutated";
        if String.length packet > 0 then
          check_agree name fmt view (Gen.truncate_random rng packet)
            ~what:"truncated"
      done)

(* The view must also reject garbage the way the codec does, not crash. *)
let random_garbage () =
  let rng = Prng.of_int 4096 in
  List.iter
    (fun (name, fmt, _) ->
      let view = View.create fmt in
      for _ = 1 to 100 do
        let len = Prng.int rng 64 in
        let s = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
        check_agree name fmt view s ~what:"garbage"
      done)
    all_formats

(* Reuse: a view that just rejected must decode the next packet cleanly. *)
let reuse_after_reject () =
  let rng = Prng.of_int 7 in
  let view = View.create Fm.Arq.format in
  let good = Gen.generate_bytes rng Fm.Arq.format in
  (match View.decode view good with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid arq rejected: %s" (Codec.error_to_string e));
  let before = View.to_value view in
  (match View.decode view (Gen.mutate rng ~flips:4 good) with
  | Ok () -> () (* a flip can land in the payload and keep the packet valid *)
  | Error _ -> ());
  (match View.decode view good with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "valid arq rejected after reuse: %s" (Codec.error_to_string e));
  Alcotest.(check bool)
    "same value after pool reuse" true
    (Value.equal before (View.to_value view))

(* Windowed decode: the view validates a sub-range of a larger buffer
   in place, checksums included. *)
let windowed_decode () =
  let rng = Prng.of_int 11 in
  let pkt = Gen.generate_bytes rng Fm.Arq.format in
  let buf = "HDR" ^ pkt ^ "TRAILER" in
  let view = View.create Fm.Arq.format in
  (match View.decode view ~off:3 ~len:(String.length pkt) buf with
  | Ok () -> ()
  | Error e -> Alcotest.failf "windowed decode failed: %s" (Codec.error_to_string e));
  let direct = Codec.decode_exn Fm.Arq.format pkt in
  Alcotest.(check bool)
    "windowed value matches" true
    (Value.equal direct (View.to_value view))

let accessors () =
  let pkt =
    match Fm.Arq.to_bytes (Fm.Arq.Data { seq = 42; payload = "hello" }) with
    | s -> s
  in
  let view = View.create Fm.Arq.format in
  (match View.decode view pkt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e));
  Alcotest.(check int64) "seq" 42L (View.get_int view "seq");
  Alcotest.(check string) "payload" "hello" (View.get_bytes view "payload");
  Alcotest.(check bool) "missing find_int" true (View.find_int view "nope" = None)

let key_extraction () =
  let pkt =
    match Fm.Arq.to_bytes (Fm.Arq.Data { seq = 99; payload = "x" }) with
    | s -> s
  in
  match View.key_extractor Fm.Arq.format "seq" with
  | Error e -> Alcotest.failf "key_extractor: %s" e
  | Ok kx ->
    Alcotest.(check bool) "key value" true (View.extract_key kx pkt = Some 99)

let suite =
  [ ( "view.equivalence",
      List.map equivalence_case all_formats
      @ [ Alcotest.test_case "random garbage" `Quick random_garbage ] );
    ( "view.behaviour",
      [ Alcotest.test_case "pool reuse after reject" `Quick reuse_after_reject;
        Alcotest.test_case "windowed decode" `Quick windowed_decode;
        Alcotest.test_case "accessors" `Quick accessors;
        Alcotest.test_case "key extraction" `Quick key_extraction ] ) ]
