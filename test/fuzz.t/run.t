The differential fuzzer: structure-aware wire mutants must be judged
identically by the interpreted Codec and every compiled fast path
(View, Emit, the engine Pipeline); adversarial event traces must keep
the compiled Step plan in lock-step with the Interp reference.

  $ cat > ping.ndsl <<'SPEC'
  > format ping {
  >   token : uint32 "Token";
  >   hops  : uint8 where 1..16 "Hops";
  >   chk   : checksum xor8 over message "Check";
  > }
  > machine pinger {
  >   states { idle init accepting; waiting; }
  >   events { send, pong, give_up }
  >   on send: idle -> waiting;
  >   on pong: waiting -> idle;
  >   on give_up: waiting -> idle;
  >   ignore pong in idle; ignore give_up in idle; ignore send in waiting;
  > }
  > SPEC

A clean run exits 0 and reports the accept/reject split per format and
the fired/refused split per machine:

  $ netdsl fuzz ping.ndsl --seed 7 --iters 2000
  format ping: 2016 mutants (58 accepted, 1958 rejected) — all paths agree
  machine pinger: 2001 traces, 17229 events (8314 fired, 8915 refused) — step = interp
  fuzzed 1 format(s), 0 stack(s), 1 machine(s): no disagreements

--iters 0 still pushes every corpus seed through the oracle and every
mined behavioural trace through the step/interp lock-step:

  $ netdsl fuzz ping.ndsl --seed 7 --iters 0
  format ping: 16 mutants (16 accepted, 0 rejected) — all paths agree
  machine pinger: 1 traces, 4 events (4 fired, 0 refused) — step = interp
  fuzzed 1 format(s), 0 stack(s), 1 machine(s): no disagreements

The harness must be able to catch a real defect.  --plant-bug inverts
the view's accept verdict; the fuzzer finds it on the very first corpus
seed, shrinks the witness, and prints a committable repro:

  $ netdsl fuzz ping.ndsl --seed 7 --iters 100 --plant-bug --repro-dir repros
  FUZZ DISAGREEMENT (wire)
  format: ping
  seed: 7
  check: verdict
  seed-packet: 59320dd708b9
  input: 59320dd708b9 (6 bytes)
  detail: codec accepts, view rejects: planted bug: inverted accept
  repro saved to repros/repro-wire-ping-seed7.txt
  netdsl: fuzzing found a disagreement
  [1]

The saved dump is exactly what was printed, so CI can archive it:

  $ cat repros/repro-wire-ping-seed7.txt
  FUZZ DISAGREEMENT (wire)
  format: ping
  seed: 7
  check: verdict
  seed-packet: 59320dd708b9
  input: 59320dd708b9 (6 bytes)
  detail: codec accepts, view rejects: planted bug: inverted accept
